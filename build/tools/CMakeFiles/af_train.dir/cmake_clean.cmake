file(REMOVE_RECURSE
  "CMakeFiles/af_train.dir/af_train.cpp.o"
  "CMakeFiles/af_train.dir/af_train.cpp.o.d"
  "af_train"
  "af_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/af_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
