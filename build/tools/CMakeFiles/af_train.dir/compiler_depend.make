# Empty compiler generated dependencies file for af_train.
# This may be replaced when dependencies are built.
