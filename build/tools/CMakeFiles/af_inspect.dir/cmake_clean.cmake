file(REMOVE_RECURSE
  "CMakeFiles/af_inspect.dir/af_inspect.cpp.o"
  "CMakeFiles/af_inspect.dir/af_inspect.cpp.o.d"
  "af_inspect"
  "af_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/af_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
