# Empty dependencies file for af_inspect.
# This may be replaced when dependencies are built.
