file(REMOVE_RECURSE
  "CMakeFiles/af_collect.dir/af_collect.cpp.o"
  "CMakeFiles/af_collect.dir/af_collect.cpp.o.d"
  "af_collect"
  "af_collect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/af_collect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
