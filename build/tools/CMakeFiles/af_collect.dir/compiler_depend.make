# Empty compiler generated dependencies file for af_collect.
# This may be replaced when dependencies are built.
