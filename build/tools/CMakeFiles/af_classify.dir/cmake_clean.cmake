file(REMOVE_RECURSE
  "CMakeFiles/af_classify.dir/af_classify.cpp.o"
  "CMakeFiles/af_classify.dir/af_classify.cpp.o.d"
  "af_classify"
  "af_classify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/af_classify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
