# Empty compiler generated dependencies file for af_classify.
# This may be replaced when dependencies are built.
