file(REMOVE_RECURSE
  "CMakeFiles/scroll_browser.dir/scroll_browser.cpp.o"
  "CMakeFiles/scroll_browser.dir/scroll_browser.cpp.o.d"
  "scroll_browser"
  "scroll_browser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scroll_browser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
