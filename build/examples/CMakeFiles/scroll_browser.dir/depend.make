# Empty dependencies file for scroll_browser.
# This may be replaced when dependencies are built.
