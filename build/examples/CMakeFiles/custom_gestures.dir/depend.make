# Empty dependencies file for custom_gestures.
# This may be replaced when dependencies are built.
