file(REMOVE_RECURSE
  "CMakeFiles/custom_gestures.dir/custom_gestures.cpp.o"
  "CMakeFiles/custom_gestures.dir/custom_gestures.cpp.o.d"
  "custom_gestures"
  "custom_gestures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_gestures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
