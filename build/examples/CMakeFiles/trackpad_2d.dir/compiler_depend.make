# Empty compiler generated dependencies file for trackpad_2d.
# This may be replaced when dependencies are built.
