file(REMOVE_RECURSE
  "CMakeFiles/trackpad_2d.dir/trackpad_2d.cpp.o"
  "CMakeFiles/trackpad_2d.dir/trackpad_2d.cpp.o.d"
  "trackpad_2d"
  "trackpad_2d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trackpad_2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
