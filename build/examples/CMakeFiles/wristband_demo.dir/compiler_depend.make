# Empty compiler generated dependencies file for wristband_demo.
# This may be replaced when dependencies are built.
