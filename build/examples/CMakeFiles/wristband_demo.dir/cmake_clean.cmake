file(REMOVE_RECURSE
  "CMakeFiles/wristband_demo.dir/wristband_demo.cpp.o"
  "CMakeFiles/wristband_demo.dir/wristband_demo.cpp.o.d"
  "wristband_demo"
  "wristband_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wristband_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
