# Empty compiler generated dependencies file for bench_ablation_cross2d.
# This may be replaced when dependencies are built.
