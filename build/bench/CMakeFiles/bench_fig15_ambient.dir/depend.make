# Empty dependencies file for bench_fig15_ambient.
# This may be replaced when dependencies are built.
