file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_ambient.dir/fig15_ambient.cpp.o"
  "CMakeFiles/bench_fig15_ambient.dir/fig15_ambient.cpp.o.d"
  "bench_fig15_ambient"
  "bench_fig15_ambient.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_ambient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
