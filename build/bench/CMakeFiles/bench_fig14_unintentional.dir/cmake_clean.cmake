file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_unintentional.dir/fig14_unintentional.cpp.o"
  "CMakeFiles/bench_fig14_unintentional.dir/fig14_unintentional.cpp.o.d"
  "bench_fig14_unintentional"
  "bench_fig14_unintentional.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_unintentional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
