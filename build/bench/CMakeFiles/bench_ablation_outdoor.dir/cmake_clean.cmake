file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_outdoor.dir/ablation_outdoor.cpp.o"
  "CMakeFiles/bench_ablation_outdoor.dir/ablation_outdoor.cpp.o.d"
  "bench_ablation_outdoor"
  "bench_ablation_outdoor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_outdoor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
