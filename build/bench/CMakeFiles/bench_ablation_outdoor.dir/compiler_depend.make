# Empty compiler generated dependencies file for bench_ablation_outdoor.
# This may be replaced when dependencies are built.
