file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_wristband.dir/fig17_wristband.cpp.o"
  "CMakeFiles/bench_fig17_wristband.dir/fig17_wristband.cpp.o.d"
  "bench_fig17_wristband"
  "bench_fig17_wristband.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_wristband.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
