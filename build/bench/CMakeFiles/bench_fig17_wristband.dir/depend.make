# Empty dependencies file for bench_fig17_wristband.
# This may be replaced when dependencies are built.
