file(REMOVE_RECURSE
  "CMakeFiles/af_bench_support.dir/support.cpp.o"
  "CMakeFiles/af_bench_support.dir/support.cpp.o.d"
  "libaf_bench_support.a"
  "libaf_bench_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/af_bench_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
