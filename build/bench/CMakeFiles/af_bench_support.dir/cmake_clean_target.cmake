file(REMOVE_RECURSE
  "libaf_bench_support.a"
)
