# Empty dependencies file for af_bench_support.
# This may be replaced when dependencies are built.
