# Empty compiler generated dependencies file for bench_fig03_waveforms.
# This may be replaced when dependencies are built.
