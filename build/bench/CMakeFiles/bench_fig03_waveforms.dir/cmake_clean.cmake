file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_waveforms.dir/fig03_waveforms.cpp.o"
  "CMakeFiles/bench_fig03_waveforms.dir/fig03_waveforms.cpp.o.d"
  "bench_fig03_waveforms"
  "bench_fig03_waveforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_waveforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
