file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_distance.dir/fig08_distance.cpp.o"
  "CMakeFiles/bench_fig08_distance.dir/fig08_distance.cpp.o.d"
  "bench_fig08_distance"
  "bench_fig08_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
