# Empty dependencies file for bench_fig08_distance.
# This may be replaced when dependencies are built.
