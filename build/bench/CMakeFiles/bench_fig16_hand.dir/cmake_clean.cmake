file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_hand.dir/fig16_hand.cpp.o"
  "CMakeFiles/bench_fig16_hand.dir/fig16_hand.cpp.o.d"
  "bench_fig16_hand"
  "bench_fig16_hand.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_hand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
