# Empty dependencies file for bench_fig05_sbc_dt.
# This may be replaced when dependencies are built.
