file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_sbc_dt.dir/fig05_sbc_dt.cpp.o"
  "CMakeFiles/bench_fig05_sbc_dt.dir/fig05_sbc_dt.cpp.o.d"
  "bench_fig05_sbc_dt"
  "bench_fig05_sbc_dt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_sbc_dt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
