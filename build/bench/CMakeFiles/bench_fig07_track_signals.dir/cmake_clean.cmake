file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_track_signals.dir/fig07_track_signals.cpp.o"
  "CMakeFiles/bench_fig07_track_signals.dir/fig07_track_signals.cpp.o.d"
  "bench_fig07_track_signals"
  "bench_fig07_track_signals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_track_signals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
