# Empty dependencies file for bench_fig07_track_signals.
# This may be replaced when dependencies are built.
