file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_distinguish.dir/fig13_distinguish.cpp.o"
  "CMakeFiles/bench_fig13_distinguish.dir/fig13_distinguish.cpp.o.d"
  "bench_fig13_distinguish"
  "bench_fig13_distinguish.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_distinguish.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
