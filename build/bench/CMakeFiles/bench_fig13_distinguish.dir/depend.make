# Empty dependencies file for bench_fig13_distinguish.
# This may be replaced when dependencies are built.
