# Empty dependencies file for bench_fig09_classifiers.
# This may be replaced when dependencies are built.
