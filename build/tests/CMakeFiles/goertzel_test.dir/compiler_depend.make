# Empty compiler generated dependencies file for goertzel_test.
# This may be replaced when dependencies are built.
