file(REMOVE_RECURSE
  "CMakeFiles/goertzel_test.dir/goertzel_test.cpp.o"
  "CMakeFiles/goertzel_test.dir/goertzel_test.cpp.o.d"
  "goertzel_test"
  "goertzel_test.pdb"
  "goertzel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/goertzel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
