
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/determinism_test.cpp" "tests/CMakeFiles/determinism_test.dir/determinism_test.cpp.o" "gcc" "tests/CMakeFiles/determinism_test.dir/determinism_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/af_core.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/af_features.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/af_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/af_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/sensor/CMakeFiles/af_sensor.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/af_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/optics/CMakeFiles/af_optics.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/af_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
