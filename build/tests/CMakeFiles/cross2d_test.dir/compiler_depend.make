# Empty compiler generated dependencies file for cross2d_test.
# This may be replaced when dependencies are built.
