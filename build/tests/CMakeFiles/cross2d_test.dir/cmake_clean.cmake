file(REMOVE_RECURSE
  "CMakeFiles/cross2d_test.dir/cross2d_test.cpp.o"
  "CMakeFiles/cross2d_test.dir/cross2d_test.cpp.o.d"
  "cross2d_test"
  "cross2d_test.pdb"
  "cross2d_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross2d_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
