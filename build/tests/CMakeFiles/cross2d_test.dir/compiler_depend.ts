# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for cross2d_test.
