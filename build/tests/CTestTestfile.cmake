# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/optics_test[1]_include.cmake")
include("/root/repo/build/tests/sensor_test[1]_include.cmake")
include("/root/repo/build/tests/dsp_test[1]_include.cmake")
include("/root/repo/build/tests/features_test[1]_include.cmake")
include("/root/repo/build/tests/ml_test[1]_include.cmake")
include("/root/repo/build/tests/synth_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/serialize_test[1]_include.cmake")
include("/root/repo/build/tests/dtw_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/hmm_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/cnn_test[1]_include.cmake")
include("/root/repo/build/tests/cross2d_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_test[1]_include.cmake")
include("/root/repo/build/tests/determinism_test[1]_include.cmake")
include("/root/repo/build/tests/goertzel_test[1]_include.cmake")
