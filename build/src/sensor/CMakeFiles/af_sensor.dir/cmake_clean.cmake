file(REMOVE_RECURSE
  "CMakeFiles/af_sensor.dir/adc.cpp.o"
  "CMakeFiles/af_sensor.dir/adc.cpp.o.d"
  "CMakeFiles/af_sensor.dir/prototype.cpp.o"
  "CMakeFiles/af_sensor.dir/prototype.cpp.o.d"
  "CMakeFiles/af_sensor.dir/recorder.cpp.o"
  "CMakeFiles/af_sensor.dir/recorder.cpp.o.d"
  "CMakeFiles/af_sensor.dir/trace.cpp.o"
  "CMakeFiles/af_sensor.dir/trace.cpp.o.d"
  "libaf_sensor.a"
  "libaf_sensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/af_sensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
