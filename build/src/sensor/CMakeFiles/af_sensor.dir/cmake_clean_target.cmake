file(REMOVE_RECURSE
  "libaf_sensor.a"
)
