
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sensor/adc.cpp" "src/sensor/CMakeFiles/af_sensor.dir/adc.cpp.o" "gcc" "src/sensor/CMakeFiles/af_sensor.dir/adc.cpp.o.d"
  "/root/repo/src/sensor/prototype.cpp" "src/sensor/CMakeFiles/af_sensor.dir/prototype.cpp.o" "gcc" "src/sensor/CMakeFiles/af_sensor.dir/prototype.cpp.o.d"
  "/root/repo/src/sensor/recorder.cpp" "src/sensor/CMakeFiles/af_sensor.dir/recorder.cpp.o" "gcc" "src/sensor/CMakeFiles/af_sensor.dir/recorder.cpp.o.d"
  "/root/repo/src/sensor/trace.cpp" "src/sensor/CMakeFiles/af_sensor.dir/trace.cpp.o" "gcc" "src/sensor/CMakeFiles/af_sensor.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/optics/CMakeFiles/af_optics.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/af_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
