# Empty compiler generated dependencies file for af_sensor.
# This may be replaced when dependencies are built.
