
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsp/autocorr.cpp" "src/dsp/CMakeFiles/af_dsp.dir/autocorr.cpp.o" "gcc" "src/dsp/CMakeFiles/af_dsp.dir/autocorr.cpp.o.d"
  "/root/repo/src/dsp/dynamic_threshold.cpp" "src/dsp/CMakeFiles/af_dsp.dir/dynamic_threshold.cpp.o" "gcc" "src/dsp/CMakeFiles/af_dsp.dir/dynamic_threshold.cpp.o.d"
  "/root/repo/src/dsp/fft.cpp" "src/dsp/CMakeFiles/af_dsp.dir/fft.cpp.o" "gcc" "src/dsp/CMakeFiles/af_dsp.dir/fft.cpp.o.d"
  "/root/repo/src/dsp/filters.cpp" "src/dsp/CMakeFiles/af_dsp.dir/filters.cpp.o" "gcc" "src/dsp/CMakeFiles/af_dsp.dir/filters.cpp.o.d"
  "/root/repo/src/dsp/goertzel.cpp" "src/dsp/CMakeFiles/af_dsp.dir/goertzel.cpp.o" "gcc" "src/dsp/CMakeFiles/af_dsp.dir/goertzel.cpp.o.d"
  "/root/repo/src/dsp/sbc.cpp" "src/dsp/CMakeFiles/af_dsp.dir/sbc.cpp.o" "gcc" "src/dsp/CMakeFiles/af_dsp.dir/sbc.cpp.o.d"
  "/root/repo/src/dsp/wavelet.cpp" "src/dsp/CMakeFiles/af_dsp.dir/wavelet.cpp.o" "gcc" "src/dsp/CMakeFiles/af_dsp.dir/wavelet.cpp.o.d"
  "/root/repo/src/dsp/xcorr.cpp" "src/dsp/CMakeFiles/af_dsp.dir/xcorr.cpp.o" "gcc" "src/dsp/CMakeFiles/af_dsp.dir/xcorr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/af_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
