file(REMOVE_RECURSE
  "libaf_dsp.a"
)
