file(REMOVE_RECURSE
  "CMakeFiles/af_dsp.dir/autocorr.cpp.o"
  "CMakeFiles/af_dsp.dir/autocorr.cpp.o.d"
  "CMakeFiles/af_dsp.dir/dynamic_threshold.cpp.o"
  "CMakeFiles/af_dsp.dir/dynamic_threshold.cpp.o.d"
  "CMakeFiles/af_dsp.dir/fft.cpp.o"
  "CMakeFiles/af_dsp.dir/fft.cpp.o.d"
  "CMakeFiles/af_dsp.dir/filters.cpp.o"
  "CMakeFiles/af_dsp.dir/filters.cpp.o.d"
  "CMakeFiles/af_dsp.dir/goertzel.cpp.o"
  "CMakeFiles/af_dsp.dir/goertzel.cpp.o.d"
  "CMakeFiles/af_dsp.dir/sbc.cpp.o"
  "CMakeFiles/af_dsp.dir/sbc.cpp.o.d"
  "CMakeFiles/af_dsp.dir/wavelet.cpp.o"
  "CMakeFiles/af_dsp.dir/wavelet.cpp.o.d"
  "CMakeFiles/af_dsp.dir/xcorr.cpp.o"
  "CMakeFiles/af_dsp.dir/xcorr.cpp.o.d"
  "libaf_dsp.a"
  "libaf_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/af_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
