
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/airfinger.cpp" "src/core/CMakeFiles/af_core.dir/airfinger.cpp.o" "gcc" "src/core/CMakeFiles/af_core.dir/airfinger.cpp.o.d"
  "/root/repo/src/core/ascending.cpp" "src/core/CMakeFiles/af_core.dir/ascending.cpp.o" "gcc" "src/core/CMakeFiles/af_core.dir/ascending.cpp.o.d"
  "/root/repo/src/core/data_processor.cpp" "src/core/CMakeFiles/af_core.dir/data_processor.cpp.o" "gcc" "src/core/CMakeFiles/af_core.dir/data_processor.cpp.o.d"
  "/root/repo/src/core/detect_recognizer.cpp" "src/core/CMakeFiles/af_core.dir/detect_recognizer.cpp.o" "gcc" "src/core/CMakeFiles/af_core.dir/detect_recognizer.cpp.o.d"
  "/root/repo/src/core/interference_filter.cpp" "src/core/CMakeFiles/af_core.dir/interference_filter.cpp.o" "gcc" "src/core/CMakeFiles/af_core.dir/interference_filter.cpp.o.d"
  "/root/repo/src/core/trainer.cpp" "src/core/CMakeFiles/af_core.dir/trainer.cpp.o" "gcc" "src/core/CMakeFiles/af_core.dir/trainer.cpp.o.d"
  "/root/repo/src/core/training.cpp" "src/core/CMakeFiles/af_core.dir/training.cpp.o" "gcc" "src/core/CMakeFiles/af_core.dir/training.cpp.o.d"
  "/root/repo/src/core/type_router.cpp" "src/core/CMakeFiles/af_core.dir/type_router.cpp.o" "gcc" "src/core/CMakeFiles/af_core.dir/type_router.cpp.o.d"
  "/root/repo/src/core/zebra.cpp" "src/core/CMakeFiles/af_core.dir/zebra.cpp.o" "gcc" "src/core/CMakeFiles/af_core.dir/zebra.cpp.o.d"
  "/root/repo/src/core/zebra2d.cpp" "src/core/CMakeFiles/af_core.dir/zebra2d.cpp.o" "gcc" "src/core/CMakeFiles/af_core.dir/zebra2d.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/features/CMakeFiles/af_features.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/af_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/af_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/sensor/CMakeFiles/af_sensor.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/af_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/optics/CMakeFiles/af_optics.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/af_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
