file(REMOVE_RECURSE
  "CMakeFiles/af_core.dir/airfinger.cpp.o"
  "CMakeFiles/af_core.dir/airfinger.cpp.o.d"
  "CMakeFiles/af_core.dir/ascending.cpp.o"
  "CMakeFiles/af_core.dir/ascending.cpp.o.d"
  "CMakeFiles/af_core.dir/data_processor.cpp.o"
  "CMakeFiles/af_core.dir/data_processor.cpp.o.d"
  "CMakeFiles/af_core.dir/detect_recognizer.cpp.o"
  "CMakeFiles/af_core.dir/detect_recognizer.cpp.o.d"
  "CMakeFiles/af_core.dir/interference_filter.cpp.o"
  "CMakeFiles/af_core.dir/interference_filter.cpp.o.d"
  "CMakeFiles/af_core.dir/trainer.cpp.o"
  "CMakeFiles/af_core.dir/trainer.cpp.o.d"
  "CMakeFiles/af_core.dir/training.cpp.o"
  "CMakeFiles/af_core.dir/training.cpp.o.d"
  "CMakeFiles/af_core.dir/type_router.cpp.o"
  "CMakeFiles/af_core.dir/type_router.cpp.o.d"
  "CMakeFiles/af_core.dir/zebra.cpp.o"
  "CMakeFiles/af_core.dir/zebra.cpp.o.d"
  "CMakeFiles/af_core.dir/zebra2d.cpp.o"
  "CMakeFiles/af_core.dir/zebra2d.cpp.o.d"
  "libaf_core.a"
  "libaf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/af_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
