file(REMOVE_RECURSE
  "CMakeFiles/af_features.dir/bank.cpp.o"
  "CMakeFiles/af_features.dir/bank.cpp.o.d"
  "CMakeFiles/af_features.dir/measures.cpp.o"
  "CMakeFiles/af_features.dir/measures.cpp.o.d"
  "libaf_features.a"
  "libaf_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/af_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
