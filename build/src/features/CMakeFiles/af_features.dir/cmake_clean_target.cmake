file(REMOVE_RECURSE
  "libaf_features.a"
)
