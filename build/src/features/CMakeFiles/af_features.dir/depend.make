# Empty dependencies file for af_features.
# This may be replaced when dependencies are built.
