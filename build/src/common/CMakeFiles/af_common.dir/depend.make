# Empty dependencies file for af_common.
# This may be replaced when dependencies are built.
