file(REMOVE_RECURSE
  "CMakeFiles/af_common.dir/cli.cpp.o"
  "CMakeFiles/af_common.dir/cli.cpp.o.d"
  "CMakeFiles/af_common.dir/csv.cpp.o"
  "CMakeFiles/af_common.dir/csv.cpp.o.d"
  "CMakeFiles/af_common.dir/matrix.cpp.o"
  "CMakeFiles/af_common.dir/matrix.cpp.o.d"
  "CMakeFiles/af_common.dir/parallel.cpp.o"
  "CMakeFiles/af_common.dir/parallel.cpp.o.d"
  "CMakeFiles/af_common.dir/rng.cpp.o"
  "CMakeFiles/af_common.dir/rng.cpp.o.d"
  "CMakeFiles/af_common.dir/stats.cpp.o"
  "CMakeFiles/af_common.dir/stats.cpp.o.d"
  "CMakeFiles/af_common.dir/table.cpp.o"
  "CMakeFiles/af_common.dir/table.cpp.o.d"
  "libaf_common.a"
  "libaf_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/af_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
