# Empty dependencies file for af_synth.
# This may be replaced when dependencies are built.
