file(REMOVE_RECURSE
  "libaf_synth.a"
)
