
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/dataset.cpp" "src/synth/CMakeFiles/af_synth.dir/dataset.cpp.o" "gcc" "src/synth/CMakeFiles/af_synth.dir/dataset.cpp.o.d"
  "/root/repo/src/synth/io.cpp" "src/synth/CMakeFiles/af_synth.dir/io.cpp.o" "gcc" "src/synth/CMakeFiles/af_synth.dir/io.cpp.o.d"
  "/root/repo/src/synth/motion_kind.cpp" "src/synth/CMakeFiles/af_synth.dir/motion_kind.cpp.o" "gcc" "src/synth/CMakeFiles/af_synth.dir/motion_kind.cpp.o.d"
  "/root/repo/src/synth/scenario.cpp" "src/synth/CMakeFiles/af_synth.dir/scenario.cpp.o" "gcc" "src/synth/CMakeFiles/af_synth.dir/scenario.cpp.o.d"
  "/root/repo/src/synth/smooth_noise.cpp" "src/synth/CMakeFiles/af_synth.dir/smooth_noise.cpp.o" "gcc" "src/synth/CMakeFiles/af_synth.dir/smooth_noise.cpp.o.d"
  "/root/repo/src/synth/trajectory.cpp" "src/synth/CMakeFiles/af_synth.dir/trajectory.cpp.o" "gcc" "src/synth/CMakeFiles/af_synth.dir/trajectory.cpp.o.d"
  "/root/repo/src/synth/user.cpp" "src/synth/CMakeFiles/af_synth.dir/user.cpp.o" "gcc" "src/synth/CMakeFiles/af_synth.dir/user.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sensor/CMakeFiles/af_sensor.dir/DependInfo.cmake"
  "/root/repo/build/src/optics/CMakeFiles/af_optics.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/af_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
