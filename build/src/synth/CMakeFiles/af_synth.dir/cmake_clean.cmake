file(REMOVE_RECURSE
  "CMakeFiles/af_synth.dir/dataset.cpp.o"
  "CMakeFiles/af_synth.dir/dataset.cpp.o.d"
  "CMakeFiles/af_synth.dir/io.cpp.o"
  "CMakeFiles/af_synth.dir/io.cpp.o.d"
  "CMakeFiles/af_synth.dir/motion_kind.cpp.o"
  "CMakeFiles/af_synth.dir/motion_kind.cpp.o.d"
  "CMakeFiles/af_synth.dir/scenario.cpp.o"
  "CMakeFiles/af_synth.dir/scenario.cpp.o.d"
  "CMakeFiles/af_synth.dir/smooth_noise.cpp.o"
  "CMakeFiles/af_synth.dir/smooth_noise.cpp.o.d"
  "CMakeFiles/af_synth.dir/trajectory.cpp.o"
  "CMakeFiles/af_synth.dir/trajectory.cpp.o.d"
  "CMakeFiles/af_synth.dir/user.cpp.o"
  "CMakeFiles/af_synth.dir/user.cpp.o.d"
  "libaf_synth.a"
  "libaf_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/af_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
