file(REMOVE_RECURSE
  "libaf_optics.a"
)
