file(REMOVE_RECURSE
  "CMakeFiles/af_optics.dir/ambient.cpp.o"
  "CMakeFiles/af_optics.dir/ambient.cpp.o.d"
  "CMakeFiles/af_optics.dir/cross_board.cpp.o"
  "CMakeFiles/af_optics.dir/cross_board.cpp.o.d"
  "CMakeFiles/af_optics.dir/emitter.cpp.o"
  "CMakeFiles/af_optics.dir/emitter.cpp.o.d"
  "CMakeFiles/af_optics.dir/photodiode.cpp.o"
  "CMakeFiles/af_optics.dir/photodiode.cpp.o.d"
  "CMakeFiles/af_optics.dir/scene.cpp.o"
  "CMakeFiles/af_optics.dir/scene.cpp.o.d"
  "libaf_optics.a"
  "libaf_optics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/af_optics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
