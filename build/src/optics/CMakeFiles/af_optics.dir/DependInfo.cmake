
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/optics/ambient.cpp" "src/optics/CMakeFiles/af_optics.dir/ambient.cpp.o" "gcc" "src/optics/CMakeFiles/af_optics.dir/ambient.cpp.o.d"
  "/root/repo/src/optics/cross_board.cpp" "src/optics/CMakeFiles/af_optics.dir/cross_board.cpp.o" "gcc" "src/optics/CMakeFiles/af_optics.dir/cross_board.cpp.o.d"
  "/root/repo/src/optics/emitter.cpp" "src/optics/CMakeFiles/af_optics.dir/emitter.cpp.o" "gcc" "src/optics/CMakeFiles/af_optics.dir/emitter.cpp.o.d"
  "/root/repo/src/optics/photodiode.cpp" "src/optics/CMakeFiles/af_optics.dir/photodiode.cpp.o" "gcc" "src/optics/CMakeFiles/af_optics.dir/photodiode.cpp.o.d"
  "/root/repo/src/optics/scene.cpp" "src/optics/CMakeFiles/af_optics.dir/scene.cpp.o" "gcc" "src/optics/CMakeFiles/af_optics.dir/scene.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/af_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
