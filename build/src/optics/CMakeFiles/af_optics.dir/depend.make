# Empty dependencies file for af_optics.
# This may be replaced when dependencies are built.
