file(REMOVE_RECURSE
  "CMakeFiles/af_ml.dir/classifier.cpp.o"
  "CMakeFiles/af_ml.dir/classifier.cpp.o.d"
  "CMakeFiles/af_ml.dir/cnn.cpp.o"
  "CMakeFiles/af_ml.dir/cnn.cpp.o.d"
  "CMakeFiles/af_ml.dir/data.cpp.o"
  "CMakeFiles/af_ml.dir/data.cpp.o.d"
  "CMakeFiles/af_ml.dir/decision_tree.cpp.o"
  "CMakeFiles/af_ml.dir/decision_tree.cpp.o.d"
  "CMakeFiles/af_ml.dir/dtw.cpp.o"
  "CMakeFiles/af_ml.dir/dtw.cpp.o.d"
  "CMakeFiles/af_ml.dir/hmm.cpp.o"
  "CMakeFiles/af_ml.dir/hmm.cpp.o.d"
  "CMakeFiles/af_ml.dir/logistic.cpp.o"
  "CMakeFiles/af_ml.dir/logistic.cpp.o.d"
  "CMakeFiles/af_ml.dir/metrics.cpp.o"
  "CMakeFiles/af_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/af_ml.dir/naive_bayes.cpp.o"
  "CMakeFiles/af_ml.dir/naive_bayes.cpp.o.d"
  "CMakeFiles/af_ml.dir/random_forest.cpp.o"
  "CMakeFiles/af_ml.dir/random_forest.cpp.o.d"
  "CMakeFiles/af_ml.dir/serialize.cpp.o"
  "CMakeFiles/af_ml.dir/serialize.cpp.o.d"
  "libaf_ml.a"
  "libaf_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/af_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
