file(REMOVE_RECURSE
  "libaf_ml.a"
)
