# Empty compiler generated dependencies file for af_ml.
# This may be replaced when dependencies are built.
