
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/classifier.cpp" "src/ml/CMakeFiles/af_ml.dir/classifier.cpp.o" "gcc" "src/ml/CMakeFiles/af_ml.dir/classifier.cpp.o.d"
  "/root/repo/src/ml/cnn.cpp" "src/ml/CMakeFiles/af_ml.dir/cnn.cpp.o" "gcc" "src/ml/CMakeFiles/af_ml.dir/cnn.cpp.o.d"
  "/root/repo/src/ml/data.cpp" "src/ml/CMakeFiles/af_ml.dir/data.cpp.o" "gcc" "src/ml/CMakeFiles/af_ml.dir/data.cpp.o.d"
  "/root/repo/src/ml/decision_tree.cpp" "src/ml/CMakeFiles/af_ml.dir/decision_tree.cpp.o" "gcc" "src/ml/CMakeFiles/af_ml.dir/decision_tree.cpp.o.d"
  "/root/repo/src/ml/dtw.cpp" "src/ml/CMakeFiles/af_ml.dir/dtw.cpp.o" "gcc" "src/ml/CMakeFiles/af_ml.dir/dtw.cpp.o.d"
  "/root/repo/src/ml/hmm.cpp" "src/ml/CMakeFiles/af_ml.dir/hmm.cpp.o" "gcc" "src/ml/CMakeFiles/af_ml.dir/hmm.cpp.o.d"
  "/root/repo/src/ml/logistic.cpp" "src/ml/CMakeFiles/af_ml.dir/logistic.cpp.o" "gcc" "src/ml/CMakeFiles/af_ml.dir/logistic.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/ml/CMakeFiles/af_ml.dir/metrics.cpp.o" "gcc" "src/ml/CMakeFiles/af_ml.dir/metrics.cpp.o.d"
  "/root/repo/src/ml/naive_bayes.cpp" "src/ml/CMakeFiles/af_ml.dir/naive_bayes.cpp.o" "gcc" "src/ml/CMakeFiles/af_ml.dir/naive_bayes.cpp.o.d"
  "/root/repo/src/ml/random_forest.cpp" "src/ml/CMakeFiles/af_ml.dir/random_forest.cpp.o" "gcc" "src/ml/CMakeFiles/af_ml.dir/random_forest.cpp.o.d"
  "/root/repo/src/ml/serialize.cpp" "src/ml/CMakeFiles/af_ml.dir/serialize.cpp.o" "gcc" "src/ml/CMakeFiles/af_ml.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dsp/CMakeFiles/af_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/af_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
