// Multi-device serving: one trained ModelBundle, many concurrent wearables.
//
// Trains a bundle once, then spins up a MultiSessionHost with one Session
// per simulated device and fans frames to them round-robin — the shape a
// hub (phone, smart speaker) would use to serve several rings/wristbands
// with a single resident copy of the forests. The pump runs the sessions
// in parallel on the shared thread pool, and the drained events are
// bit-identical at any thread count (AF_THREADS).
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/multi_device --devices 4
#include <iostream>

#include "common/cli.hpp"
#include "common/parallel.hpp"
#include "core/multi_session_host.hpp"
#include "core/trainer.hpp"
#include "synth/dataset.hpp"

using namespace airfinger;

int main(int argc, char** argv) {
  common::Cli cli("multi_device",
                  "serve several simulated wearables from one model bundle");
  cli.add_flag("seed", "42", "master random seed");
  cli.add_flag("devices", "4", "simulated concurrent wearables");
  cli.add_flag("turn", "64", "frames fanned to each device per turn");
  if (!cli.parse(argc, argv)) return 0;

  const auto devices = static_cast<std::size_t>(cli.get_int("devices"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  std::cout << "airFinger multi-device serving\n"
            << "==============================\n\n"
            << "Training one shared bundle...\n";

  core::TrainerConfig trainer;
  trainer.seed = seed;
  const auto bundle = core::build_bundle(trainer);

  // Each device streams its own user's gesture mix; distinct seeds keep the
  // devices out of phase, like real independent wearers.
  const std::vector<synth::MotionKind> mix{
      synth::MotionKind::kCircle,   synth::MotionKind::kClick,
      synth::MotionKind::kScrollUp, synth::MotionKind::kScrollDown,
  };
  std::vector<sensor::MultiChannelTrace> traces;
  std::vector<std::vector<synth::MotionKind>> truth;
  for (std::size_t d = 0; d < devices; ++d) {
    synth::CollectionConfig config;
    config.users = 1;
    config.seed = seed ^ (0xDEC0 + d);
    auto stream = synth::make_gesture_stream(config, mix, config.seed);
    truth.push_back(stream.kinds);
    traces.push_back(std::move(stream.trace));
  }

  std::cout << "Serving " << devices << " devices over "
            << common::resolve_thread_count() << " thread(s)...\n\n";

  core::MultiSessionHost host(bundle, devices);
  const auto events = host.run_round_robin(
      traces, static_cast<std::size_t>(cli.get_int("turn")));

  for (std::size_t d = 0; d < devices; ++d) {
    std::cout << "device " << d << " (truth:";
    for (auto k : truth[d]) std::cout << " " << synth::motion_name(k);
    std::cout << ")\n";
    for (const auto& e : events)
      if (e.session == d) std::cout << "    " << e.event.describe() << "\n";
  }

  std::cout << "\nDone: " << events.size() << " events from "
            << host.frames_processed() << " frames across " << devices
            << " sessions sharing one bundle.\n";
  return 0;
}
