// 2-D trackpad: the paper's Sec. VI multi-dimensional sensing area as an
// application. A synthetic finger swipes over the cross board in random
// directions; ZEBRA-2D moves a cursor on a character grid.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/trackpad_2d
#include <cmath>
#include <iostream>
#include <numbers>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/zebra2d.hpp"
#include "sensor/recorder.hpp"
#include "synth/trajectory.hpp"

using namespace airfinger;

namespace {

constexpr double kPi = std::numbers::pi;

core::ProcessedTrace record_swipe(double angle_rad, common::Rng& rng) {
  optics::AmbientConditions ambient;
  ambient.hour_of_day = 10.0;
  const auto scene =
      optics::make_cross_scene({}, optics::AmbientModel(ambient));
  sensor::AdcSpec adc;
  adc.gain = 90.0;
  sensor::Recorder recorder(scene, sensor::AdcModel(adc), 100.0);

  const double standoff = rng.uniform(0.015, 0.021);
  const optics::Vec3 dir{std::cos(angle_rad), std::sin(angle_rad), 0.0};
  auto provider = [=](double t) {
    sensor::SceneState state;
    optics::ReflectorPatch finger;
    const double raw = std::clamp((t - 0.3) / 0.6, 0.0, 1.0);
    finger.position = dir * (-0.025 + 0.05 * synth::minimum_jerk(raw));
    finger.position.z = standoff;
    const double entry = std::max(0.0, 1.0 - raw / 0.2);
    const double exit = std::max(0.0, (raw - 0.8) / 0.2);
    finger.position.z += 0.025 * (entry * entry + exit * exit);
    state.patches.push_back(finger);
    return state;
  };
  const auto trace = recorder.record(provider, 1.2, rng);
  return core::DataProcessor{}.process(trace);
}

void render(int x, int y, int w, int h) {
  for (int row = h - 1; row >= 0; --row) {
    std::cout << "  ";
    for (int col = 0; col < w; ++col)
      std::cout << (col == x && row == y ? '@' : '.');
    std::cout << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  common::Cli cli("trackpad_2d",
                  "drive a cursor with 2-D swipes over the cross board");
  cli.add_flag("seed", "99", "random seed");
  cli.add_flag("swipes", "8", "number of swipes");
  if (!cli.parse(argc, argv)) return 0;
  common::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));

  const core::Zebra2dTracker tracker;
  const int w = 21, h = 9;
  int x = w / 2, y = h / 2;
  std::cout << "2-D trackpad on the cross board (Sec. VI extension)\n";
  render(x, y, w, h);

  int correct = 0, total = 0;
  for (int i = 0; i < cli.get_int("swipes"); ++i) {
    const double angle =
        static_cast<double>(rng.below(8)) * kPi / 4.0 +
        rng.uniform(-0.1, 0.1);
    const auto p = record_swipe(angle, rng);
    const auto swipe = tracker.track(p, {0, p.energy.size()});
    std::cout << "\n  swipe at " << common::Table::num(angle * 180 / kPi, 0)
              << "°: ";
    ++total;
    if (!swipe) {
      std::cout << "not tracked\n";
      continue;
    }
    const int dx = static_cast<int>(std::lround(std::cos(swipe->angle_rad) * 3));
    const int dy = static_cast<int>(std::lround(std::sin(swipe->angle_rad) * 3));
    x = std::clamp(x + dx, 0, w - 1);
    y = std::clamp(y + dy, 0, h - 1);
    std::cout << "tracked "
              << common::Table::num(swipe->angle_rad * 180 / kPi, 0)
              << "°, cursor moves (" << dx << "," << dy << ")\n";
    double err = std::fabs(swipe->angle_rad - angle);
    while (err > kPi) err = std::fabs(err - 2 * kPi);
    if (err < kPi / 8) ++correct;
    render(x, y, w, h);
  }
  std::cout << "\n" << correct << "/" << total
            << " swipes tracked within ±22.5°.\n";
  return 0;
}
