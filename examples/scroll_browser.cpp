// Scroll browser: the paper's Sec. V-G demo — a real-time reading interface
// driven by track-aimed gestures. A synthetic user scrolls through an
// article with a mix of full and partial scrolls; ZEBRA's direction,
// velocity, and displacement drive the viewport, and the session ends with
// the tracking-fidelity rating of Table II.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/scroll_browser
#include <cmath>
#include <iostream>
#include <vector>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/trainer.hpp"
#include "core/training.hpp"
#include "synth/dataset.hpp"

using namespace airfinger;

namespace {

/// A fake article: one line per "paragraph".
std::vector<std::string> make_article() {
  std::vector<std::string> lines;
  for (int i = 1; i <= 40; ++i)
    lines.push_back("¶ " + std::to_string(i) +
                    "  — lorem ipsum dolor sit amet, consectetur …");
  return lines;
}

void render_viewport(const std::vector<std::string>& article, double offset,
                     int height = 5) {
  const int top = std::clamp(
      static_cast<int>(offset), 0,
      static_cast<int>(article.size()) - height);
  std::cout << "  ┌──────────────────────────────────────────────────┐\n";
  for (int i = top; i < top + height; ++i)
    std::cout << "  │ " << article[static_cast<std::size_t>(i)] << "\n";
  std::cout << "  └─────────────────────────────── line " << top << "/"
            << article.size() << " ───┘\n";
}

}  // namespace

int main(int argc, char** argv) {
  common::Cli cli("scroll_browser",
                  "drive a reading interface with track-aimed gestures");
  cli.add_flag("seed", "2024", "random seed");
  cli.add_flag("scrolls", "10", "number of scroll gestures in the session");
  if (!cli.parse(argc, argv)) return 0;

  std::cout << "Training the airFinger engine...\n";
  core::TrainerConfig trainer;
  trainer.users = 3;
  trainer.sessions = 2;
  trainer.repetitions = 8;
  trainer.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  core::AirFinger engine = core::build_engine(trainer);

  // A fresh user scrolls through the article.
  synth::CollectionConfig config;
  config.users = 1;
  config.sessions = 1;
  config.repetitions = static_cast<int>(cli.get_int("scrolls"));
  config.kinds = {synth::MotionKind::kScrollUp,
                  synth::MotionKind::kScrollDown};
  config.seed = trainer.seed ^ 0x5C011;
  const auto session = synth::DatasetBuilder(config).collect();

  const auto article = make_article();
  double offset = 18.0;  // start mid-article
  // Displacement (metres) → article lines: an application-level mapping, as
  // the paper notes ("maps to different scales according to demands").
  const double lines_per_metre = 150.0;

  std::cout << "\nScrolling session — " << session.size()
            << " gestures:\n";
  int rated = 0;
  double rating_sum = 0.0;
  for (const auto& s : session.samples) {
    const auto v = core::run_sample(engine, s);
    std::cout << "\n  user performs: " << synth::motion_name(s.kind)
              << " (true displacement "
              << common::Table::num(s.scroll->displacement_m * 1000.0, 0)
              << " mm)\n";
    if (!v.scroll) {
      std::cout << "  engine: no scroll detected — viewport unchanged\n";
      render_viewport(article, offset);
      continue;
    }
    const double lines =
        v.scroll->final_displacement() * lines_per_metre;
    offset = std::clamp(offset - lines, 0.0,
                        static_cast<double>(article.size() - 5));
    std::cout << "  engine: scroll "
              << (v.scroll->direction > 0 ? "up" : "down") << ", v = "
              << common::Table::num(v.scroll->velocity_mps * 1000.0, 0)
              << " mm/s, moved "
              << common::Table::num(std::fabs(lines), 1) << " lines\n";
    render_viewport(article, offset);

    // Rating per Table II's surrogate scale.
    if (v.scroll->direction == s.scroll->direction) {
      const double rel = std::fabs(std::fabs(v.scroll->final_displacement()) -
                                   s.scroll->displacement_m) /
                         s.scroll->displacement_m;
      rating_sum += rel < 0.25 ? 3 : rel < 0.60 ? 2 : 1;
    } else {
      rating_sum += 1;
    }
    ++rated;
  }

  if (rated > 0)
    std::cout << "\nSession tracking rating: "
              << common::Table::num(rating_sum / rated, 1)
              << "/3.0 (paper's volunteers rated 2.6/3.0)\n";
  return 0;
}
