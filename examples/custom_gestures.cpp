// Custom gestures: the paper's Sec. VI future-work item — user-defined
// gesture vocabularies. The recognition stack is vocabulary-agnostic: this
// example trains a recognizer on a custom 4-gesture set (two of the paper's
// gestures plus two motions the stock vocabulary treats as noise) from a
// handful of user demonstrations, then evaluates it on fresh repetitions.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/custom_gestures
#include <iostream>
#include <map>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/detect_recognizer.hpp"
#include "core/training.hpp"
#include "synth/dataset.hpp"

using namespace airfinger;

namespace {

/// The user's personal vocabulary: any motion kinds, any names.
struct CustomGesture {
  synth::MotionKind kind;
  std::string name;
};

/// Featurizes a dataset against an arbitrary vocabulary (label = index in
/// the vocabulary). This is all it takes to support self-defined gestures:
/// the feature bank and classifier never assume the stock gesture set.
ml::SampleSet featurize_custom(const synth::Dataset& data,
                               const std::vector<CustomGesture>& vocab) {
  const core::DataProcessor processor;
  const features::FeatureBank bank;
  std::map<synth::MotionKind, int> label_of;
  for (std::size_t i = 0; i < vocab.size(); ++i)
    label_of[vocab[i].kind] = static_cast<int>(i);

  ml::SampleSet set;
  for (const auto& sample : data.samples) {
    const auto it = label_of.find(sample.kind);
    if (it == label_of.end()) continue;
    const auto processed = processor.process(sample.trace);
    const double rate = sample.trace.sample_rate_hz();
    const auto seg = core::DataProcessor::select_segment(
        processed,
        static_cast<std::size_t>(sample.gesture_start_s * rate),
        static_cast<std::size_t>(sample.gesture_end_s * rate));
    if (seg.length() < 4) continue;
    const auto padded = core::pad_segment(
        seg, processed.energy.size(), processor.config().feature_pad_s,
        rate);
    std::vector<std::span<const double>> windows;
    for (const auto& ch : processed.delta_rss2)
      windows.emplace_back(ch.data() + padded.begin, padded.length());
    set.features.push_back(bank.extract(
        std::span<const std::span<const double>>(windows)));
    set.labels.push_back(it->second);
  }
  return set;
}

}  // namespace

int main(int argc, char** argv) {
  common::Cli cli("custom_gestures",
                  "train a user-defined gesture vocabulary");
  cli.add_flag("seed", "808", "random seed");
  cli.add_flag("demos", "10", "demonstrations per custom gesture");
  if (!cli.parse(argc, argv)) return 0;
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  // The user's vocabulary: "poke" and "spiral" reuse stock kinematics;
  // "lift-off" and "swipe-across" repurpose motions the stock vocabulary
  // rejects as unintentional.
  const std::vector<CustomGesture> vocab{
      {synth::MotionKind::kClick, "poke"},
      {synth::MotionKind::kDoubleCircle, "spiral"},
      {synth::MotionKind::kExtend, "lift-off"},
      {synth::MotionKind::kReposition, "swipe-across"},
  };

  std::cout << "Recording " << cli.get_int("demos")
            << " demonstrations of each custom gesture...\n";
  synth::CollectionConfig config;
  config.users = 1;  // personal vocabulary: one user
  config.sessions = 3;
  config.repetitions = static_cast<int>(cli.get_int("demos"));
  config.kinds.clear();
  for (const auto& g : vocab) config.kinds.push_back(g.kind);
  config.seed = seed;
  const auto all = synth::DatasetBuilder(config).collect();
  // Demonstrations from the first two sessions train the vocabulary; the
  // third (a later day) evaluates it.
  synth::Dataset train_data, test_data;
  for (const auto& sample : all.samples)
    (sample.session_id < 2 ? train_data : test_data)
        .samples.push_back(sample);
  const auto train_set = featurize_custom(train_data, vocab);

  core::DetectRecognizerConfig rc;
  rc.selected_features = 20;  // small vocabularies need fewer features
  core::DetectRecognizer recognizer(rc);
  recognizer.fit(train_set);
  std::cout << "  trained on " << train_set.size() << " demonstrations ("
            << recognizer.selected_features().size()
            << " features selected)\n";

  // Evaluate on the held-out later session of the same user.
  const auto test_set = featurize_custom(test_data, vocab);

  std::vector<std::string> names;
  for (const auto& g : vocab) names.push_back(g.name);
  ml::ConfusionMatrix cm(static_cast<int>(vocab.size()), names);
  for (std::size_t i = 0; i < test_set.size(); ++i)
    cm.add(test_set.labels[i], recognizer.predict(test_set.features[i]));

  std::cout << "\nCustom vocabulary on a fresh session:\n" << cm.to_string()
            << "  accuracy: " << common::Table::pct(cm.accuracy()) << "\n"
            << "\nThe same pipeline (SBC → DT → feature bank → RF with "
               "importance selection) supports any\nvocabulary — the "
               "paper's personalization story needs no new machinery.\n";
  return 0;
}
