// Wristband demo: the paper's Sec. V-K deployment — the sensor worn on a
// wristband while the user sits, stands, and walks. Streams continuous
// multi-gesture episodes through the real-time engine under each activity
// and reports per-condition recognition quality.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/wristband_demo
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/trainer.hpp"
#include "core/training.hpp"
#include "synth/dataset.hpp"

using namespace airfinger;

int main(int argc, char** argv) {
  common::Cli cli("wristband_demo",
                  "recognition on a wristband while sitting / standing / "
                  "walking");
  cli.add_flag("seed", "31337", "random seed");
  cli.add_flag("reps", "12", "repetitions per gesture per condition");
  if (!cli.parse(argc, argv)) return 0;

  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  std::cout << "Training the airFinger engine (worn-device profile: "
               "demonstrations collected while sitting, standing, and "
               "walking)...\n";
  synth::Dataset gestures, non_gestures;
  for (auto activity : {synth::Activity::kSitting,
                        synth::Activity::kStanding,
                        synth::Activity::kWalking}) {
    synth::CollectionConfig config;
    config.users = 3;
    config.sessions = 2;
    config.repetitions = 6;
    config.activity = activity;
    config.seed = seed ^ static_cast<std::uint64_t>(activity);
    const auto part = synth::DatasetBuilder(config).collect();
    gestures.samples.insert(gestures.samples.end(), part.samples.begin(),
                            part.samples.end());
    synth::CollectionConfig non_config = config;
    non_config.kinds = {synth::non_gestures().begin(),
                        synth::non_gestures().end()};
    non_config.repetitions = 5;
    non_config.seed = config.seed ^ 0xF00D;
    const auto non_part = synth::DatasetBuilder(non_config).collect();
    non_gestures.samples.insert(non_gestures.samples.end(),
                                non_part.samples.begin(),
                                non_part.samples.end());
  }
  core::AirFinger engine =
      core::build_engine_from(core::AirFingerConfig{}, gestures,
                              non_gestures);

  common::Table table({"condition", "gestures", "recognized", "accuracy",
                       "scroll direction"});
  for (auto activity : {synth::Activity::kSitting,
                        synth::Activity::kStanding,
                        synth::Activity::kWalking}) {
    // The wearer enrolled the device (their own demonstrations are part of
    // the training set above, users 0-2 of this seed); evaluate on their
    // later sessions.
    synth::CollectionConfig config;
    config.users = 2;
    config.sessions = 1;
    config.repetitions = static_cast<int>(cli.get_int("reps"));
    config.activity = activity;
    config.seed = seed ^ static_cast<std::uint64_t>(activity);
    const auto data = synth::DatasetBuilder(config).collect();

    int correct = 0, dir_total = 0, dir_ok = 0;
    for (const auto& s : data.samples) {
      const auto v = core::run_sample(engine, s);
      if (v.predicted == s.kind) ++correct;
      if (synth::is_track_aimed(s.kind) && v.scroll) {
        ++dir_total;
        if (v.scroll->direction == s.scroll->direction) ++dir_ok;
      }
    }
    table.add_row(
        {std::string(synth::activity_name(activity)),
         std::to_string(data.size()), std::to_string(correct),
         common::Table::pct(static_cast<double>(correct) /
                            static_cast<double>(data.size())),
         dir_total ? common::Table::pct(static_cast<double>(dir_ok) /
                                        dir_total)
                   : "-"});
    std::cout << "  " << synth::activity_name(activity) << ": " << correct
              << "/" << data.size() << " recognized\n";
  }

  std::cout << "\nWristband summary (paper: 97.17% averaged accuracy "
               "across conditions):\n";
  table.print(std::cout);
  std::cout << "At this demo scale per-condition numbers are noisy; "
               "bench_fig17_wristband runs the paper's\nfull protocol "
               "(per-condition 3-fold CV) and shows the sitting ≥ standing "
               "> walking shape.\n";
  return 0;
}
