// Quickstart: train an airFinger model bundle on synthesized data, round-trip
// it through the single-file artifact, and stream a few gestures through a
// Session built from the loaded copy.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>
#include <sstream>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "core/session.hpp"
#include "core/trainer.hpp"
#include "synth/dataset.hpp"

using namespace airfinger;

int main(int argc, char** argv) {
  common::Cli cli("quickstart",
                  "train an airFinger bundle and recognize a gesture mix");
  cli.add_flag("seed", "42", "master random seed");
  cli.add_flag("users", "3", "synthetic volunteers in the training set");
  cli.add_flag("reps", "6", "repetitions per gesture per session");
  if (!cli.parse(argc, argv)) return 0;

  std::cout << "airFinger quickstart\n"
            << "====================\n\n"
            << "Training models on synthesized NIR sensor data...\n";

  core::TrainerConfig trainer;
  trainer.users = static_cast<int>(cli.get_int("users"));
  trainer.sessions = 2;
  trainer.repetitions = static_cast<int>(cli.get_int("reps"));
  trainer.seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  core::TrainingReport report;
  const auto trained = core::build_bundle(trainer, &report);

  std::cout << "  trained on " << report.gesture_samples
            << " gesture samples and " << report.non_gesture_samples
            << " non-gesture samples\n  selected features:";
  for (std::size_t i = 0; i < report.selected_feature_names.size(); ++i) {
    if (i % 6 == 0) std::cout << "\n    ";
    std::cout << report.selected_feature_names[i] << "  ";
  }

  // Round-trip through the versioned single-file artifact. On disk this is
  // `trained->save_file("models.af")` / `ModelBundle::load_file("models.af")`;
  // a stringstream keeps the example self-contained. Hex-float serialization
  // makes the loaded copy bit-identical to the trained one.
  std::stringstream artifact;
  trained->save(artifact);
  const auto bundle = core::ModelBundle::load(artifact);
  std::cout << "\n\nSaved + reloaded bundle ("
            << artifact.str().size() << " bytes, afbundle v"
            << core::ModelBundle::kFormatVersion << ").\n";

  std::cout << "\nStreaming a live gesture mix through a Session:\n";

  // A fresh user (not in the training roster) performs a mix of gestures.
  synth::CollectionConfig stream_config;
  stream_config.users = 1;
  stream_config.seed = trainer.seed ^ 0xD15C0;
  const std::vector<synth::MotionKind> sequence{
      synth::MotionKind::kCircle,     synth::MotionKind::kClick,
      synth::MotionKind::kScrollUp,   synth::MotionKind::kDoubleRub,
      synth::MotionKind::kScrollDown, synth::MotionKind::kScratch,
      synth::MotionKind::kDoubleClick,
  };
  const synth::GestureStream stream = synth::make_gesture_stream(
      stream_config, sequence, stream_config.seed);

  std::cout << "  ground truth:";
  for (auto k : stream.kinds) std::cout << " [" << synth::motion_name(k) << "]";
  std::cout << "\n\n  session events:\n";

  // O(1) construction: the session shares the bundle's forests and only
  // allocates its own per-stream buffers.
  core::Session session(bundle);
  const auto events = session.process_trace(stream.trace);
  for (const auto& e : events) std::cout << "    " << e.describe() << "\n";

  std::cout << "\nDone: " << events.size() << " events from "
            << stream.trace.sample_count() << " frames ("
            << stream.trace.duration_s() << " s of signal).\n";
  return 0;
}
