// af_train — train the airFinger models from a corpus and save them.
//
//   af_train --corpus corpus.csv --bundle models.af
//
// The default output is the single-file `afbundle` artifact (config +
// recognizer + optional interference filter, see core/model_bundle.hpp).
// The legacy two-file layout is still available via --recognizer/--filter.
//
// The corpus must contain the designed gestures; the interference filter
// additionally needs non-gesture samples (af_collect --non_gestures).
// Exits non-zero on any parse/validation failure.
#include <fstream>
#include <iostream>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "core/model_bundle.hpp"
#include "core/training.hpp"
#include "synth/io.hpp"

using namespace airfinger;

namespace {

int run(int argc, char** argv) {
  common::Cli cli("af_train", "train and save airFinger models");
  cli.add_flag("corpus", "corpus.csv", "input corpus (af_collect output)");
  cli.add_flag("bundle", "models.af",
               "output single-file model bundle ('' to skip)");
  cli.add_flag("recognizer", "",
               "also write the legacy recognizer file ('' to skip)");
  cli.add_flag("filter", "",
               "also write the legacy interference-filter file ('' to skip)");
  if (!cli.parse(argc, argv)) return 0;

  std::cout << "loading " << cli.get("corpus") << "...\n";
  const auto dataset = synth::load_dataset_csv(cli.get("corpus"));
  std::cout << "  " << dataset.size() << " samples\n";

  const core::DataProcessor processor;
  core::DetectRecognizer recognizer;
  const auto set = core::build_feature_set(
      dataset, processor, recognizer.bank(), core::LabelScheme::kAllEight);
  std::cout << "training recognizer on " << set.size() << " samples × "
            << set.feature_count() << " features...\n";
  recognizer.fit(set);

  // Interference filter: only trainable when the corpus carries both
  // designed gestures and non-gestures.
  std::optional<core::InterferenceFilter> filter;
  const auto binary = core::build_feature_set(
      dataset, processor, recognizer.bank(),
      core::LabelScheme::kGestureVsNonGesture);
  bool has_both = false;
  for (std::size_t i = 1; i < binary.labels.size(); ++i)
    if (binary.labels[i] != binary.labels[0]) has_both = true;
  if (has_both) {
    filter.emplace(recognizer.bank());
    filter->fit(binary);
  } else {
    std::cout << "  corpus has no non-gesture samples — interference "
                 "filtering disabled (re-collect with --non_gestures)\n";
  }

  if (!cli.get("recognizer").empty()) {
    // Binary mode keeps the hex-float text byte-identical across platforms
    // (no newline translation).
    std::ofstream out(cli.get("recognizer"), std::ios::binary);
    AF_EXPECT(static_cast<bool>(out),
              "cannot open " + cli.get("recognizer") + " for writing");
    recognizer.save(out);
    std::cout << "  wrote " << cli.get("recognizer") << " (legacy)\n";
  }
  if (!cli.get("filter").empty() && filter) {
    std::ofstream out(cli.get("filter"), std::ios::binary);
    AF_EXPECT(static_cast<bool>(out),
              "cannot open " + cli.get("filter") + " for writing");
    filter->save(out);
    std::cout << "  wrote " << cli.get("filter") << " (legacy)\n";
  }

  if (!cli.get("bundle").empty()) {
    core::AirFingerConfig config;
    config.interference_filtering = filter.has_value();
    const auto bundle = core::ModelBundle::create(
        config, std::move(recognizer), std::move(filter));
    bundle->save_file(cli.get("bundle"));
    std::cout << "  wrote " << cli.get("bundle") << " (afbundle v"
              << core::ModelBundle::kFormatVersion << ", filter "
              << (bundle->filter() ? "included" : "absent") << ")\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const airfinger::PreconditionError& e) {
    std::cerr << "af_train: " << e.what() << "\n";
    return 1;
  }
}
