// af_train — train the airFinger models from a corpus and save them.
//
//   af_train --corpus corpus.csv --recognizer rec.af --filter filter.af
//
// The corpus must contain the designed gestures; the interference filter
// additionally needs non-gesture samples (af_collect --non_gestures).
#include <fstream>
#include <iostream>

#include "common/cli.hpp"
#include "core/interference_filter.hpp"
#include "core/training.hpp"
#include "synth/io.hpp"

using namespace airfinger;

int main(int argc, char** argv) {
  common::Cli cli("af_train", "train and save airFinger models");
  cli.add_flag("corpus", "corpus.csv", "input corpus (af_collect output)");
  cli.add_flag("recognizer", "recognizer.af", "output recognizer model");
  cli.add_flag("filter", "filter.af",
               "output interference-filter model ('' to skip)");
  if (!cli.parse(argc, argv)) return 0;

  std::cout << "loading " << cli.get("corpus") << "...\n";
  const auto dataset = synth::load_dataset_csv(cli.get("corpus"));
  std::cout << "  " << dataset.size() << " samples\n";

  const core::DataProcessor processor;
  core::DetectRecognizer recognizer;
  const auto set = core::build_feature_set(
      dataset, processor, recognizer.bank(), core::LabelScheme::kAllEight);
  std::cout << "training recognizer on " << set.size() << " samples × "
            << set.feature_count() << " features...\n";
  recognizer.fit(set);
  {
    std::ofstream out(cli.get("recognizer"));
    recognizer.save(out);
  }
  std::cout << "  wrote " << cli.get("recognizer") << "\n";

  if (!cli.get("filter").empty()) {
    const auto binary = core::build_feature_set(
        dataset, processor, recognizer.bank(),
        core::LabelScheme::kGestureVsNonGesture);
    bool has_both = false;
    for (std::size_t i = 1; i < binary.labels.size(); ++i)
      if (binary.labels[i] != binary.labels[0]) has_both = true;
    if (!has_both) {
      std::cout << "  corpus has no non-gesture samples — skipping the "
                   "filter (re-collect with --non_gestures)\n";
    } else {
      core::InterferenceFilter filter(recognizer.bank());
      filter.fit(binary);
      std::ofstream out(cli.get("filter"));
      filter.save(out);
      std::cout << "  wrote " << cli.get("filter") << "\n";
    }
  }
  return 0;
}
