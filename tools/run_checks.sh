#!/usr/bin/env bash
# Full verification gauntlet, CI-runnable: exits non-zero on any failure.
#
#   1. tier-1: standard build + full ctest suite
#   2. observability: the instrumentation determinism/aggregation suites
#   3. asan:   ASan/UBSan build of the model/session/concurrency suites
#   4. bench:  hot-path microbenchmark smoke (incl. 0-allocs/frame check)
#   5. tsan:   tools/run_tsan.sh (ThreadSanitizer, multi-thread pool)
#
# Usage: tools/run_checks.sh [--soak] [--robustness-smoke] [--trace-smoke]
# [build-dir]   (default build-dir: build)
# --soak additionally runs the 10k-session host soak (ctest label `soak`,
# AF_SOAK=1) under the TSan tree — minutes of wall-clock, off by default.
# --robustness-smoke additionally runs the bench_robustness quality gates
# (per-class artifact detection rate, clean-trace false positives,
# 0 allocs/frame under storms) on a small substrate.
# --trace-smoke additionally builds an -DAF_OBS_TRACE=ON aux tree, replays
# a golden gesture through af_trace twice, and checks that the exported
# Chrome trace JSON parses and is byte-identical across the two runs
# (the TickClock determinism contract for the trace exporter).
# Canonical build-dir layout (README.md): the tier-1 tree lives at
# <build-dir> and every auxiliary tree nests under <build-dir>/aux
# (<build-dir>/aux/asan, /aux/tsan, /aux/bench), so one ignored root holds
# all generated trees. The aux/ level is load-bearing: the tier-1 tree
# writes a CTestTestfile.cmake for every source subdir (bench/, tests/,
# ...), so a nested full configure at e.g. <build-dir>/bench would
# overwrite it and leak the auxiliary tree's tests into tier-1 ctest.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
SOAK=0
ROBUSTNESS_SMOKE=0
TRACE_SMOKE=0
while [[ "${1:-}" == --* ]]; do
  case "$1" in
    --soak) SOAK=1 ;;
    --robustness-smoke) ROBUSTNESS_SMOKE=1 ;;
    --trace-smoke) TRACE_SMOKE=1 ;;
    *) echo "run_checks: unknown flag $1" >&2; exit 2 ;;
  esac
  shift
done
BUILD="${1:-${ROOT}/build}"

echo "== tier-1: build + ctest =="
cmake -B "${BUILD}" -S "${ROOT}"
cmake --build "${BUILD}" -j
ctest --test-dir "${BUILD}" --output-on-failure -j "$(nproc)"

echo "== robustness: fault-injection + fuzz + golden-replay suites =="
ctest --test-dir "${BUILD}" --output-on-failure -L robustness -j "$(nproc)"

echo "== probe parity: goldens must replay byte-identical with the =="
echo "== incremental probe disabled (AF_PROBE_INCREMENTAL=0)        =="
# The default suite above replayed the goldens over the incremental
# probe; replaying them again over the batch probe proves the two probe
# implementations emit byte-identical streams both ways, not just on the
# synthetic corpora the unit tests cover.
AF_PROBE_INCREMENTAL=0 "${BUILD}/tests/golden_replay_test"
AF_PROBE_INCREMENTAL=0 "${BUILD}/tests/probe_test" \
  --gtest_filter='IncrementalProbe.ParallelFeedersAreBitIdenticalToInlineHost'

echo "== observability: metrics/tracing determinism suites =="
ctest --test-dir "${BUILD}" --output-on-failure -L observability -j "$(nproc)"

echo "== asan/ubsan: model + session + concurrency + robustness suites =="
ASAN_BUILD="${BUILD}/aux/asan"
cmake -B "${ASAN_BUILD}" -S "${ROOT}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DAF_SANITIZE=address,undefined
cmake --build "${ASAN_BUILD}" -j \
  --target bundle_test serialize_test core_test parallel_test spsc_ring_test host_shard_test probe_test compiled_forest_test simd_test fault_injection_test artifact_test obs_test obs_pipeline_test trace_test
"${ASAN_BUILD}/tests/bundle_test"
"${ASAN_BUILD}/tests/serialize_test"
"${ASAN_BUILD}/tests/core_test"
"${ASAN_BUILD}/tests/parallel_test"
"${ASAN_BUILD}/tests/spsc_ring_test"
"${ASAN_BUILD}/tests/host_shard_test"
"${ASAN_BUILD}/tests/probe_test"
"${ASAN_BUILD}/tests/compiled_forest_test"
"${ASAN_BUILD}/tests/simd_test"
"${ASAN_BUILD}/tests/fault_injection_test"
"${ASAN_BUILD}/tests/artifact_test"
"${ASAN_BUILD}/tests/obs_test"
"${ASAN_BUILD}/tests/obs_pipeline_test"
"${ASAN_BUILD}/tests/trace_test"

echo "== simd-off cross-check: -DAF_SIMD=OFF tree must replay the goldens =="
# The default (AF_SIMD=ON) tree already proved golden byte-identity above;
# replaying the same goldens from a scalar-only tree proves the two trees
# produce byte-identical pipelines transitively, and simd_test keeps the
# kernel layer honest when only the scalar table is compiled in.
SIMD_OFF_BUILD="${BUILD}/aux/simd-off"
cmake -B "${SIMD_OFF_BUILD}" -S "${ROOT}" -DAF_SIMD=OFF
cmake --build "${SIMD_OFF_BUILD}" -j \
  --target golden_replay_test simd_test compiled_forest_test dsp_test features_test
"${SIMD_OFF_BUILD}/tests/golden_replay_test"
"${SIMD_OFF_BUILD}/tests/simd_test"
"${SIMD_OFF_BUILD}/tests/compiled_forest_test"
"${SIMD_OFF_BUILD}/tests/dsp_test"
"${SIMD_OFF_BUILD}/tests/features_test"

if [[ "${TRACE_SMOKE}" == "1" ]]; then
  echo "== trace smoke: exporter determinism + cross-gate golden guard =="
  # Replay one golden gesture through af_trace twice from an explicit
  # -DAF_OBS_TRACE=ON tree: the exported Chrome trace JSON must parse and
  # be byte-identical across runs (TickClock pins every span timestamp).
  TRACE_BUILD="${BUILD}/aux/trace"
  cmake -B "${TRACE_BUILD}" -S "${ROOT}" -DAF_OBS_TRACE=ON
  cmake --build "${TRACE_BUILD}" -j --target af_trace
  TRACE_A="$(mktemp /tmp/af_trace.a.XXXXXX.json)"
  TRACE_B="$(mktemp /tmp/af_trace.b.XXXXXX.json)"
  "${TRACE_BUILD}/tools/af_trace" \
    --input "${ROOT}/tests/golden/circle.aftrace" --out "${TRACE_A}"
  "${TRACE_BUILD}/tools/af_trace" \
    --input "${ROOT}/tests/golden/circle.aftrace" --out "${TRACE_B}"
  cmp "${TRACE_A}" "${TRACE_B}"
  if command -v python3 >/dev/null 2>&1; then
    python3 -c 'import json, sys; json.load(open(sys.argv[1]))' "${TRACE_A}"
  else
    grep -q '"traceEvents"' "${TRACE_A}"
  fi
  # Cross-gate golden guard: an -DAF_OBS_TRACE=OFF tree must replay the
  # goldens byte-identically (tracing adds zero clock reads, so compiling
  # it out cannot move an emission), and the unconditional trace_test
  # cases must still pass with the gate closed.
  TRACE_OFF_BUILD="${BUILD}/aux/trace-off"
  cmake -B "${TRACE_OFF_BUILD}" -S "${ROOT}" -DAF_OBS_TRACE=OFF
  cmake --build "${TRACE_OFF_BUILD}" -j --target golden_replay_test trace_test
  "${TRACE_OFF_BUILD}/tests/golden_replay_test"
  "${TRACE_OFF_BUILD}/tests/trace_test"
  echo "run_checks: trace smoke clean (deterministic export at ${TRACE_A})"
fi

echo "== bench smoke: hot-path microbenchmark builds and runs =="
"${ROOT}/tools/run_bench.sh" --smoke "${BUILD}/aux/bench"

if [[ "${ROBUSTNESS_SMOKE}" == "1" ]]; then
  echo "== robustness smoke: artifact detection-quality gates =="
  ROBUST_BUILD="${BUILD}/aux/bench"
  cmake --build "${ROBUST_BUILD}" -j --target bench_robustness
  ROBUST_OUT="$(mktemp /tmp/BENCH_robustness.smoke.XXXXXX.json)"
  "${ROBUST_BUILD}/bench/bench_robustness" --smoke 1 --users 2 \
    --sessions 1 --reps 3 --out "${ROBUST_OUT}"
  echo "run_checks: robustness smoke gates pass (report at ${ROBUST_OUT})"
fi

echo "== tsan: race-check the concurrency contract =="
"${ROOT}/tools/run_tsan.sh" "${BUILD}/aux/tsan"

if [[ "${SOAK}" == "1" ]]; then
  echo "== soak: 10k-session sharded host under TSan (AF_SOAK=1) =="
  TSAN_BUILD="${BUILD}/aux/tsan"
  cmake --build "${TSAN_BUILD}" -j --target host_soak_test
  AF_SOAK=1 ctest --test-dir "${TSAN_BUILD}" --output-on-failure -L soak
fi

echo "run_checks: all gates clean"
