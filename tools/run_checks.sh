#!/usr/bin/env bash
# Full verification gauntlet, CI-runnable: exits non-zero on any failure.
#
#   1. tier-1: standard build + full ctest suite
#   2. asan:   ASan/UBSan build of the model/session/concurrency suites
#   3. tsan:   tools/run_tsan.sh (ThreadSanitizer, multi-thread pool)
#
# Usage: tools/run_checks.sh [build-dir]   (default: build)
# Sanitizer builds go to <build-dir>-asan / build-tsan.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-${ROOT}/build}"

echo "== tier-1: build + ctest =="
cmake -B "${BUILD}" -S "${ROOT}"
cmake --build "${BUILD}" -j
ctest --test-dir "${BUILD}" --output-on-failure -j "$(nproc)"

echo "== robustness: fault-injection + fuzz + golden-replay suites =="
ctest --test-dir "${BUILD}" --output-on-failure -L robustness -j "$(nproc)"

echo "== asan/ubsan: model + session + concurrency + robustness suites =="
ASAN_BUILD="${BUILD}-asan"
cmake -B "${ASAN_BUILD}" -S "${ROOT}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DAF_SANITIZE=address,undefined
cmake --build "${ASAN_BUILD}" -j \
  --target bundle_test serialize_test core_test parallel_test compiled_forest_test fault_injection_test
"${ASAN_BUILD}/tests/bundle_test"
"${ASAN_BUILD}/tests/serialize_test"
"${ASAN_BUILD}/tests/core_test"
"${ASAN_BUILD}/tests/parallel_test"
"${ASAN_BUILD}/tests/compiled_forest_test"
"${ASAN_BUILD}/tests/fault_injection_test"

echo "== bench smoke: hot-path microbenchmark builds and runs =="
"${ROOT}/tools/run_bench.sh" --smoke "${BUILD}-bench"

echo "== tsan: race-check the concurrency contract =="
"${ROOT}/tools/run_tsan.sh"

echo "run_checks: all gates clean"
