// af_trace — replay a recorded trace and emit its gesture span trees.
//
//   af_trace --input tests/golden/circle.aftrace
//   af_trace --input run.aftrace --model models.af --out run.trace.json
//
// Runs one committed `.aftrace` recording through the full streaming path
// (Session::process_trace, every frame span-traced) and prints the
// gesture-scoped trace tree each candidate segment produced: the per-frame
// and per-decision stage spans, emission markers, outcome, and end-to-end
// first-frame→emission latency (DESIGN.md §18). --out additionally writes
// the traces as Chrome trace-event JSON, loadable in Perfetto or
// chrome://tracing.
//
// The session runs under a deterministic TickClock by default, so both the
// text report and the exported JSON are byte-identical across runs and
// machines — tools/run_checks.sh --trace-smoke relies on that. Pass
// --tick-ns 0 for real wall-clock spans instead.
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "core/session.hpp"
#include "core/trainer.hpp"
#include "obs/clock.hpp"
#include "obs/trace.hpp"
#include "sensor/trace_io.hpp"

using namespace airfinger;

namespace {

std::shared_ptr<const core::ModelBundle> obtain_bundle(
    const std::string& path, std::uint64_t seed) {
  if (!path.empty()) return core::ModelBundle::load_file(path);
  core::TrainerConfig trainer;
  trainer.users = 2;
  trainer.sessions = 1;
  trainer.repetitions = 3;
  trainer.non_gesture_repetitions = 3;
  trainer.seed = seed;
  return core::build_bundle(trainer);
}

void print_spans(const char* label, const obs::TraceSpan* spans,
                 std::size_t count) {
  if (count == 0) return;
  std::cout << "  " << label << ":\n";
  for (std::size_t i = 0; i < count; ++i)
    std::cout << "    " << obs::trace_stage_name(spans[i].stage) << " t0="
              << spans[i].t0_ns << "ns dur=" << spans[i].dur_ns << "ns\n";
}

void print_trace(const obs::GestureTrace& t) {
  std::cout << "trace " << t.trace_id << ": segment [" << t.begin << ", "
            << t.end << ") frames [" << t.open_frame << ", "
            << t.close_frame << "] outcome=" << obs::outcome_name(t.outcome);
  if (t.e2e_ns() >= 0) std::cout << " e2e=" << t.e2e_ns() << "ns";
  if (t.spans_dropped != 0)
    std::cout << " spans_dropped=" << t.spans_dropped;
  std::cout << "\n";
  print_spans("frame spans", t.frame_spans.data(), t.frame_span_count);
  print_spans("decide spans", t.decide_spans.data(), t.decide_span_count);
  if (t.mark_count != 0) {
    std::cout << "  emissions:\n";
    for (std::size_t i = 0; i < t.mark_count; ++i)
      std::cout << "    type=" << static_cast<int>(t.marks[i].emit_type)
                << " frame=" << t.marks[i].frame << " t="
                << t.marks[i].t_ns << "ns\n";
  }
}

int run(int argc, char** argv) {
  common::Cli cli("af_trace",
                  "replay a recorded trace and emit its gesture span trees");
  cli.add_flag("input", "", "recorded .aftrace file to replay (required)");
  cli.add_flag("model", "",
               "afbundle artifact to serve (empty: train the small "
               "reference bundle in-process)");
  cli.add_flag("seed", "11", "training seed for the in-process bundle");
  cli.add_flag("tick-ns", "1000",
               "deterministic clock step per read in ns (0: real clock)");
  cli.add_flag("out", "",
               "write the traces as Chrome trace-event JSON to this path "
               "(loadable in Perfetto / chrome://tracing)");
  if (!cli.parse(argc, argv)) return 0;

  const std::string input = cli.get("input");
  AF_EXPECT(!input.empty(), "--input is required");
  std::ifstream in(input, std::ios::binary);
  AF_EXPECT(static_cast<bool>(in), "cannot open " + input);
  const sensor::MultiChannelTrace trace = sensor::parse_trace(in);
  AF_EXPECT(trace.sample_count() > 0, input + " holds no samples");

  const auto bundle = obtain_bundle(
      cli.get("model"), static_cast<std::uint64_t>(cli.get_int("seed")));
  core::Session session(bundle);
  auto& obs = session.observability();
  obs.set_sample_every(1);  // offline analysis: span-trace every frame
  const auto tick_ns = static_cast<std::uint64_t>(cli.get_int("tick-ns"));
  if (tick_ns > 0) obs.set_clock(std::make_unique<obs::TickClock>(tick_ns));

  const auto events = session.process_trace(trace);
  const obs::TraceRecorder& recorder = obs.tracer();
  const std::vector<obs::GestureTrace> completed = recorder.completed();

  std::cout << "af_trace: " << input << " — " << trace.sample_count()
            << " frames, " << events.size() << " emissions, "
            << recorder.completed_total() << " gesture trace(s) ("
            << completed.size() << " retained, " << recorder.dropped()
            << " evicted)\n";
  for (const obs::GestureTrace& t : completed) print_trace(t);

  const std::string out_path = cli.get("out");
  if (!out_path.empty()) {
    std::vector<obs::SessionTraces> sessions;
    sessions.push_back(obs::SessionTraces{recorder.stream(), completed});
    std::ofstream out(out_path, std::ios::binary);
    AF_EXPECT(out.good(), "cannot open --out path " + out_path);
    obs::write_chrome_trace(out, sessions);
    std::cerr << "af_trace: wrote " << completed.size()
              << " trace(s) to " << out_path << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const airfinger::PreconditionError& e) {
    std::cerr << "af_trace: " << e.what() << "\n";
    return 1;
  }
}
