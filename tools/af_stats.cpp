// af_stats — host-aggregated pipeline metrics for a multi-stream run.
//
//   af_stats                         # 4 synthesized streams, small bundle
//   af_stats --model models.af --streams 8 --format json
//
// Exercises the production serving shape end-to-end: one ModelBundle
// (loaded from --model, or trained in-process at interactive scale when the
// flag is empty), a MultiSessionHost with one Session per stream, and a
// round-robin fan-out of synthesized gesture streams. After the run the
// host's aggregate_metrics() snapshot — every session's registry merged in
// deterministic lane order plus the host-level series — is written in the
// requested exposition format (DESIGN.md §13).
//
// The host shape is configurable: --shards picks the worker shard count
// (0 = auto from AF_THREADS, 1 = shardless inline reference), --ring the
// per-lane ingest ring capacity, --admission the full-ring policy
// (block/reject) — see DESIGN.md §14.
//
// Sessions run under a deterministic TickClock by default (--tick-ns per
// clock read), so the full output is byte-identical across runs, machines,
// shard counts, and AF_THREADS settings; pass --tick-ns 0 to time with the
// real monotonic clock instead. --load-series 1 opts into the
// scheduling-dependent backpressure series (ring high-water, blocked
// feeds, shard count), which trades that byte-identity away.
#include <fstream>
#include <iostream>
#include <memory>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/table.hpp"
#include "core/multi_session_host.hpp"
#include "core/trainer.hpp"
#include "obs/exposition.hpp"
#include "obs/trace.hpp"
#include "synth/dataset.hpp"

using namespace airfinger;

namespace {

std::shared_ptr<const core::ModelBundle> obtain_bundle(
    const std::string& path, std::uint64_t seed) {
  if (!path.empty()) return core::ModelBundle::load_file(path);
  core::TrainerConfig trainer;
  trainer.users = 2;
  trainer.sessions = 1;
  trainer.repetitions = 3;
  trainer.non_gesture_repetitions = 3;
  trainer.seed = seed;
  return core::build_bundle(trainer);
}

/// Human-oriented view: one row per metric, histograms summarized by
/// count/p50/p99 instead of their full bucket vectors.
void print_table(const obs::MetricsSnapshot& snapshot) {
  common::Table table({"metric", "value", "p50", "p99"});
  for (const auto& e : snapshot.entries) {
    switch (e.type) {
      case obs::MetricEntry::Type::kCounter:
        table.add_row({e.name, std::to_string(e.count), "", ""});
        break;
      case obs::MetricEntry::Type::kGauge:
        table.add_row({e.name, std::to_string(e.value), "", ""});
        break;
      case obs::MetricEntry::Type::kHistogram:
        table.add_row(
            {e.name, std::to_string(e.count) + " obs",
             std::to_string(obs::histogram_quantile(e, 0.50)),
             std::to_string(obs::histogram_quantile(e, 0.99))});
        break;
    }
  }
  table.print(std::cout);
}

/// Per-shard utilization table (table mode + --load-series only): how the
/// load was actually served, which legitimately varies run to run.
void print_shard_table(const core::MultiSessionHost& host) {
  std::cout << "\nper-shard utilization:\n";
  common::Table table({"shard", "lanes", "busy", "frames", "batch p50",
                       "wait p50 ns", "wait p99 ns", "parks", "occ hw"});
  for (std::size_t s = 0; s < host.shard_count(); ++s) {
    const core::ShardTelemetry t = host.shard_telemetry(s);
    table.add_row({std::to_string(t.shard), std::to_string(t.lanes),
                   common::Table::pct(t.busy_fraction()),
                   std::to_string(t.frames_drained),
                   common::Table::num(t.drain_batch_p50, 1),
                   common::Table::num(t.queue_wait_p50_ns, 0),
                   common::Table::num(t.queue_wait_p99_ns, 0),
                   std::to_string(t.parks),
                   std::to_string(t.occupancy_high_water)});
  }
  table.print(std::cout);
}

int run(int argc, char** argv) {
  common::Cli cli("af_stats",
                  "dump host-aggregated pipeline metrics for a "
                  "multi-stream run");
  cli.add_flag("model", "",
               "afbundle artifact to serve (empty: train a small "
               "reference bundle in-process)");
  cli.add_flag("streams", "4", "concurrent simulated streams");
  cli.add_flag("turn", "64", "frames fanned to each stream per turn");
  cli.add_flag("seed", "11", "master random seed for synthesis/training");
  cli.add_flag("tick-ns", "1000",
               "deterministic clock step per read in ns (0: real clock)");
  cli.add_flag("shards", "0",
               "worker shards for the host (0: auto from AF_THREADS; "
               "1: shardless inline reference)");
  cli.add_flag("ring", "1024", "per-lane ingest ring capacity in frames");
  cli.add_flag("admission", "block",
               "full-ring policy: block (lossless) or reject (bounded "
               "latency, counted)");
  cli.add_flag("load-series", "0",
               "1: include the scheduling-dependent load series (shards, "
               "ring high-water, blocked feeds) — these vary across "
               "machines and runs, so the output is no longer "
               "byte-identical");
  cli.add_flag("format", "prometheus",
               "output format: prometheus, json, or table");
  cli.add_flag("trace", "",
               "write completed gesture traces as Chrome trace-event JSON "
               "to this path (load in Perfetto / chrome://tracing); "
               "byte-identical across runs under the deterministic clock");
  if (!cli.parse(argc, argv)) return 0;

  const std::string format = cli.get("format");
  AF_EXPECT(format == "prometheus" || format == "json" || format == "table",
            "--format must be prometheus, json, or table");
  const auto streams = static_cast<std::size_t>(cli.get_int("streams"));
  AF_EXPECT(streams >= 1, "--streams must be >= 1");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const auto tick_ns = static_cast<std::uint64_t>(cli.get_int("tick-ns"));

  const auto bundle = obtain_bundle(cli.get("model"), seed);

  // One synthesized gesture stream per lane, seeded apart so the lanes are
  // out of phase like independent wearers.
  const std::vector<synth::MotionKind> mix{
      synth::MotionKind::kCircle,   synth::MotionKind::kClick,
      synth::MotionKind::kScrollUp, synth::MotionKind::kScrollDown,
  };
  std::vector<sensor::MultiChannelTrace> traces;
  traces.reserve(streams);
  for (std::size_t s = 0; s < streams; ++s) {
    synth::CollectionConfig config;
    config.users = 1;
    config.seed = seed ^ (0x5747 + s);
    traces.push_back(
        synth::make_gesture_stream(config, mix, config.seed).trace);
  }

  const std::string admission = cli.get("admission");
  AF_EXPECT(admission == "block" || admission == "reject",
            "--admission must be block or reject");
  core::HostConfig host_config;
  host_config.shards = static_cast<std::size_t>(cli.get_int("shards"));
  host_config.ring_frames = static_cast<std::size_t>(cli.get_int("ring"));
  host_config.admission = admission == "reject" ? core::Admission::kReject
                                                : core::Admission::kBlock;
  core::MultiSessionHost host(bundle, streams,
                              bundle->config().fault_policy, host_config);
  for (std::size_t s = 0; s < streams; ++s) {
    auto& obs = host.mutable_session(s).observability();
    // Offline analysis: trace every frame rather than the serving path's
    // sampled default.
    obs.set_sample_every(1);
    if (tick_ns > 0)
      obs.set_clock(std::make_unique<obs::TickClock>(tick_ns));
  }

  const auto events =
      host.run_round_robin(traces,
                           static_cast<std::size_t>(cli.get_int("turn")));

  std::cerr << "af_stats: " << streams << " streams, "
            << host.frames_processed() << " frames, " << events.size()
            << " events over " << host.shard_count() << " shard(s)\n";

  const bool load_series = cli.get_int("load-series") == 1;
  const obs::MetricsSnapshot snapshot = host.aggregate_metrics(load_series);
  if (format == "json")
    obs::write_json(std::cout, snapshot);
  else if (format == "table")
    print_table(snapshot);
  else
    obs::write_prometheus(std::cout, snapshot);
  if (format == "table" && load_series) print_shard_table(host);

  const std::string trace_path = cli.get("trace");
  if (!trace_path.empty()) {
    std::vector<obs::SessionTraces> sessions;
    sessions.reserve(streams);
    std::size_t total = 0;
    for (std::size_t s = 0; s < streams; ++s) {
      const auto& recorder = host.session(s).observability().tracer();
      sessions.push_back(obs::SessionTraces{s, recorder.completed()});
      total += sessions.back().traces.size();
    }
    std::ofstream out(trace_path, std::ios::binary);
    AF_EXPECT(out.good(), "cannot open --trace path " + trace_path);
    obs::write_chrome_trace(out, sessions);
    std::cerr << "af_stats: wrote " << total << " gesture trace(s) to "
              << trace_path << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const airfinger::PreconditionError& e) {
    std::cerr << "af_stats: " << e.what() << "\n";
    return 1;
  }
}
