#!/usr/bin/env bash
# Builds the Release benchmark targets and refreshes the tracked inference
# baseline: runs bench_inference (frames/sec, p50/p99 latency, allocations
# per frame via the counting allocator hook, per-stage latency breakdown
# from the observability spans) and bench_host_scaling, and writes
# BENCH_inference.json at the repository root with the schema
#   {frames_per_sec, p50_us, p99_us, allocs_per_frame, stages, ...}
# The full run also refreshes BENCH_robustness.json (bench_robustness:
# per-class artifact detection rates, clean-trace false-positive gate,
# repaired-vs-unrepaired event recall) whose quality gates are enforced by
# the bench itself.
#
# Usage: tools/run_bench.sh [--smoke] [build-dir]   (default:
# build/aux/bench — see the canonical build-dir layout in README.md;
# auxiliary trees live under build/aux/ so they can never collide with the
# CTestTestfile.cmake the tier-1 tree writes for same-named source dirs)
#   --smoke   tiny configuration for CI gating (run_checks.sh): verifies the
#             benches build and run and that the hot path stays at
#             0 allocs/frame with spans enabled; writes the report to a temp
#             file so the tracked baseline is not overwritten by an
#             unrepresentative run.
#
# The full (non-smoke) run additionally enforces the observability overhead
# budget: a second tree is built with both -DAF_OBS_SPANS=OFF and
# -DAF_OBS_TRACE=OFF (all hot-path instrumentation compiled out) and the
# instrumented build must reach at least (1 - AF_OBS_OVERHEAD_TOL) of its
# frames/sec (default tolerance 0.03 = 3%). Each build is benchmarked
# AF_BENCH_REPEATS times (default 3) and the best run represents it: a
# single run's frames/sec swings by double-digit percentages when the
# machine hiccups (one preempted probe inflates the tail), while the best
# of a few runs converges on the build's true capability — a real
# instrumentation tax shows up in every run, so the guard still catches it.
#
# BASELINE_FPS embeds the single-thread frames/sec of the path being
# compared against (default: the pre-compiled-forest hot path measured on
# the reference machine) so speedup_vs_baseline lands in the report.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
SMOKE=0
if [[ "${1:-}" == "--smoke" ]]; then
  SMOKE=1
  shift
fi
BUILD="${1:-${ROOT}/build/aux/bench}"
BASELINE_FPS="${BASELINE_FPS:-34467.7}"
OVERHEAD_TOL="${AF_OBS_OVERHEAD_TOL:-0.03}"
REPEATS="${AF_BENCH_REPEATS:-3}"

# Pulls a scalar field out of the bench's flat JSON report.
json_field() {
  sed -n "s/^  \"$2\": \([0-9eE.+-]*\),*$/\1/p" "$1" | head -n 1
}

# Fails unless the report says the measured window allocated nothing.
check_zero_allocs() {
  local allocs
  allocs="$(json_field "$1" allocs_per_frame)"
  if [[ -z "${allocs}" ]] || ! awk -v a="${allocs}" 'BEGIN{exit !(a == 0)}'; then
    echo "run_bench: FAIL — allocs_per_frame=${allocs:-missing} (expected 0)" >&2
    exit 1
  fi
  echo "run_bench: allocs_per_frame=0 confirmed (spans enabled)"
}

cmake -B "${BUILD}" -S "${ROOT}" -DCMAKE_BUILD_TYPE=Release -DAF_OBS_SPANS=ON
cmake --build "${BUILD}" -j --target bench_inference bench_host_scaling bench_robustness

if [[ "${SMOKE}" == 1 ]]; then
  OUT="$(mktemp /tmp/BENCH_inference.smoke.XXXXXX.json)"
  HOST_OUT="$(mktemp /tmp/bench_host_scaling.smoke.XXXXXX.json)"
  ROBUST_OUT="$(mktemp /tmp/BENCH_robustness.smoke.XXXXXX.json)"
  "${BUILD}/bench/bench_inference" --passes 1 --streams 2 \
    --baseline-fps "${BASELINE_FPS}" --out "${OUT}"
  # Artifact-detection quality gates (per-class detection rate, clean-trace
  # false positives, 0 allocs/frame under storms): the bench enforces them
  # itself and exits non-zero on a miss.
  "${BUILD}/bench/bench_robustness" --smoke 1 --users 2 --sessions 1 \
    --reps 3 --out "${ROBUST_OUT}"
  echo "run_bench: smoke robustness gates: $(sed -n 's/^  \"gates\": \"\(.*\)\"$/\1/p' "${ROBUST_OUT}")"
  # 2000-session big workload with --min-speedup 1.0: the seeded
  # false-sharing/contention regression gate — on a >=4-hw-thread machine
  # a 4-shard host that is *slower* than 1 shard fails the smoke run
  # (the bench also enforces monotone scaling with 5% tolerance; on
  # narrower machines it records the gate as skipped).
  "${BUILD}/bench/bench_host_scaling" --streams 2 --rounds 1 \
    --big-streams 2000 --big-frames 128 --min-speedup 1.0 \
    --out "${HOST_OUT}"
  echo "run_bench: smoke contention gate: $(sed -n 's/^  \"scaling_gate\": \"\(.*\)\",$/\1/p' "${HOST_OUT}")"
  check_zero_allocs "${OUT}"
  echo "run_bench: smoke OK (report at ${OUT}, tracked baseline untouched)"
  exit 0
fi

# Runs the given bench binary REPEATS times and leaves the fastest run's
# report at $2 (its frames/sec in BEST_FPS). Extra arguments after $2 are
# passed through to the bench.
BEST_FPS=""
best_of() {
  local bin="$1" keep="$2" out fps
  shift 2
  BEST_FPS=""
  for ((i = 1; i <= REPEATS; ++i)); do
    out="$(mktemp /tmp/BENCH_inference.run.XXXXXX.json)"
    "${bin}" --passes 4 --streams 16 \
      --baseline-fps "${BASELINE_FPS}" --out "${out}" "$@"
    fps="$(json_field "${out}" frames_per_sec)"
    if [[ -z "${BEST_FPS}" ]] ||
        awk -v f="${fps}" -v b="${BEST_FPS}" 'BEGIN{exit !(f > b)}'; then
      BEST_FPS="${fps}"
      cp "${out}" "${keep}"
    fi
    rm -f "${out}"
  done
}

# SIMD reference: one bench pass from a -DAF_SIMD=OFF tree gives the
# scalar-only per-stage p50s; the main run records its selected SIMD tier
# and per-stage speedups against them (stage_speedup_vs_ref) so the
# kernel layer's effect stays visible in the tracked baseline.
SIMD_OFF_BUILD="${BUILD}-simd-off"
SIMD_REF="$(mktemp /tmp/BENCH_inference.simdoff.XXXXXX.json)"
cmake -B "${SIMD_OFF_BUILD}" -S "${ROOT}" -DCMAKE_BUILD_TYPE=Release \
  -DAF_OBS_SPANS=ON -DAF_SIMD=OFF
cmake --build "${SIMD_OFF_BUILD}" -j --target bench_inference
"${SIMD_OFF_BUILD}/bench/bench_inference" --passes 2 --streams 2 \
  --baseline-fps "${BASELINE_FPS}" --out "${SIMD_REF}"

# Incremental-probe reference: the SAME build run with the batch probe
# (AF_PROBE_INCREMENTAL=0) gives the O(n·w)-per-probe per-stage p50s; the
# main run records probe_speedup_vs_ref against them so the event-driven
# probe's win stays visible in the tracked baseline.
PROBE_REF="$(mktemp /tmp/BENCH_inference.batchprobe.XXXXXX.json)"
AF_PROBE_INCREMENTAL=0 "${BUILD}/bench/bench_inference" --passes 2 \
  --streams 2 --baseline-fps "${BASELINE_FPS}" --out "${PROBE_REF}"

# The tracked baseline carries the 10k-stream sharded-host sweep
# (host_scaling_10k) alongside the single-session numbers.
best_of "${BUILD}/bench/bench_inference" "${ROOT}/BENCH_inference.json" \
  --big-streams 10000 --ref-report "${SIMD_REF}" \
  --probe-ref-report "${PROBE_REF}"
FPS_ON="${BEST_FPS}"
echo "run_bench: probe speedup vs batch probe: $(sed -n 's/^  \"probe_speedup_vs_ref\": \(.*\),$/\1/p' "${ROOT}/BENCH_inference.json")"
echo "run_bench: simd tier $(sed -n 's/^  "simd_tier": "\(.*\)",$/\1/p' "${ROOT}/BENCH_inference.json"), stage speedups vs scalar: $(sed -n 's/^  "stage_speedup_vs_ref": \(.*\),$/\1/p' "${ROOT}/BENCH_inference.json")"
# bench_host_scaling enforces its own scaling gates (bit identity across
# shard counts always; the >=1.6x 4-shard speedup and monotonicity floors
# whenever the hardware actually has >=4 threads) and exits non-zero on a
# regression, which fails this script via `set -e`.
HOST_REPORT="${BUILD}/bench_host_scaling.json"
"${BUILD}/bench/bench_host_scaling" --out "${HOST_REPORT}"
echo "run_bench: host scaling gate: $(sed -n 's/^  "scaling_gate": "\(.*\)",$/\1/p' "${HOST_REPORT}")"
check_zero_allocs "${ROOT}/BENCH_inference.json"

# The tracked artifact-detection quality baseline rides the same refresh:
# bench_robustness enforces its own gates (per-class detection rates,
# clean-trace false positives, 0 allocs/frame under storms) and exits
# non-zero on a miss, which fails this script via `set -e`.
"${BUILD}/bench/bench_robustness" --out "${ROOT}/BENCH_robustness.json"
echo "run_bench: robustness gates: $(sed -n 's/^  \"gates\": \"\(.*\)\"$/\1/p' "${ROOT}/BENCH_robustness.json")"

echo "== observability overhead guard (tolerance ${OVERHEAD_TOL}, best of ${REPEATS}) =="
NOSPANS_BUILD="${BUILD}-nospans"
NOSPANS_OUT="$(mktemp /tmp/BENCH_inference.nospans.XXXXXX.json)"
cmake -B "${NOSPANS_BUILD}" -S "${ROOT}" -DCMAKE_BUILD_TYPE=Release \
  -DAF_OBS_SPANS=OFF -DAF_OBS_TRACE=OFF
cmake --build "${NOSPANS_BUILD}" -j --target bench_inference
best_of "${NOSPANS_BUILD}/bench/bench_inference" "${NOSPANS_OUT}"
FPS_OFF="${BEST_FPS}"
if [[ -z "${FPS_ON}" || -z "${FPS_OFF}" ]]; then
  echo "run_bench: FAIL — could not read frames_per_sec from the reports" >&2
  exit 1
fi
if ! awk -v on="${FPS_ON}" -v off="${FPS_OFF}" -v tol="${OVERHEAD_TOL}" \
    'BEGIN{exit !(on >= off * (1 - tol))}'; then
  echo "run_bench: FAIL — instrumented ${FPS_ON} fps vs compiled-out ${FPS_OFF} fps exceeds the ${OVERHEAD_TOL} overhead budget" >&2
  exit 1
fi
awk -v on="${FPS_ON}" -v off="${FPS_OFF}" \
  'BEGIN{printf "run_bench: span+trace overhead %.2f%% (instrumented %s fps, compiled-out %s fps) within budget\n", (1 - on / off) * 100, on, off}'
echo "run_bench: wrote ${ROOT}/BENCH_inference.json"
