#!/usr/bin/env bash
# Builds the Release benchmark targets and refreshes the tracked inference
# baseline: runs bench_inference (frames/sec, p50/p99 latency, allocations
# per frame via the counting allocator hook) and bench_host_scaling, and
# writes BENCH_inference.json at the repository root with the schema
#   {frames_per_sec, p50_us, p99_us, allocs_per_frame, threads, ...}
#
# Usage: tools/run_bench.sh [--smoke] [build-dir]   (default: build-bench)
#   --smoke   tiny configuration for CI gating (run_checks.sh): verifies the
#             benches build and run; writes the report to a temp file so the
#             tracked baseline is not overwritten by an unrepresentative run.
#
# BASELINE_FPS embeds the single-thread frames/sec of the path being
# compared against (default: the pre-compiled-forest hot path measured on
# the reference machine) so speedup_vs_baseline lands in the report.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
SMOKE=0
if [[ "${1:-}" == "--smoke" ]]; then
  SMOKE=1
  shift
fi
BUILD="${1:-${ROOT}/build-bench}"
BASELINE_FPS="${BASELINE_FPS:-34467.7}"

cmake -B "${BUILD}" -S "${ROOT}" -DCMAKE_BUILD_TYPE=Release
cmake --build "${BUILD}" -j --target bench_inference bench_host_scaling

if [[ "${SMOKE}" == 1 ]]; then
  OUT="$(mktemp /tmp/BENCH_inference.smoke.XXXXXX.json)"
  HOST_OUT="$(mktemp /tmp/bench_host_scaling.smoke.XXXXXX.json)"
  "${BUILD}/bench/bench_inference" --passes 1 --streams 2 \
    --baseline-fps "${BASELINE_FPS}" --out "${OUT}"
  "${BUILD}/bench/bench_host_scaling" --streams 2 --rounds 1 \
    --out "${HOST_OUT}"
  echo "run_bench: smoke OK (report at ${OUT}, tracked baseline untouched)"
  exit 0
fi

"${BUILD}/bench/bench_inference" --passes 4 --streams 16 \
  --baseline-fps "${BASELINE_FPS}" --out "${ROOT}/BENCH_inference.json"
"${BUILD}/bench/bench_host_scaling"
echo "run_bench: wrote ${ROOT}/BENCH_inference.json"
