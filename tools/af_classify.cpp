// af_classify — classify a corpus with saved models and report accuracy.
//
//   af_classify --corpus test.csv --bundle models.af
//   af_classify --corpus test.csv --recognizer rec.af [--filter f.af]
//
// Accepts either the single-file `afbundle` artifact or the legacy
// two-file layout. Exits non-zero on any parse/validation failure.
#include <fstream>
#include <iostream>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/table.hpp"
#include "core/airfinger.hpp"
#include "core/training.hpp"
#include "synth/io.hpp"

using namespace airfinger;

namespace {

std::shared_ptr<const core::ModelBundle> load_models(
    const common::Cli& cli) {
  if (!cli.get("bundle").empty()) {
    return core::ModelBundle::load_file(cli.get("bundle"));
  }
  // Legacy two-file layout. Binary mode: hex-float text round-trips
  // byte-identically across platforms.
  std::ifstream rec_in(cli.get("recognizer"), std::ios::binary);
  AF_EXPECT(static_cast<bool>(rec_in),
            "cannot open " + cli.get("recognizer"));
  if (cli.get("filter").empty())
    return core::ModelBundle::load_legacy(rec_in, nullptr);
  std::ifstream filter_in(cli.get("filter"), std::ios::binary);
  AF_EXPECT(static_cast<bool>(filter_in),
            "cannot open " + cli.get("filter"));
  return core::ModelBundle::load_legacy(rec_in, &filter_in);
}

int run(int argc, char** argv) {
  common::Cli cli("af_classify",
                  "classify a corpus with saved models and report accuracy");
  cli.add_flag("corpus", "corpus.csv", "input corpus");
  cli.add_flag("bundle", "",
               "single-file model bundle ('' = use --recognizer/--filter)");
  cli.add_flag("recognizer", "recognizer.af",
               "legacy recognizer model (ignored when --bundle is set)");
  cli.add_flag("filter", "",
               "legacy interference filter ('' = filtering disabled)");
  if (!cli.parse(argc, argv)) return 0;

  const auto dataset = synth::load_dataset_csv(cli.get("corpus"));
  core::AirFinger engine(load_models(cli));

  ml::ConfusionMatrix cm(synth::kGestureCount + 1, [] {
    std::vector<std::string> names =
        core::class_names(core::LabelScheme::kAllEight);
    names.push_back("(rejected/missed)");
    return names;
  }());
  const int rejected_class = synth::kGestureCount;
  for (const auto& s : dataset.samples) {
    if (!synth::is_gesture(s.kind)) continue;
    const auto v = core::run_sample(engine, s);
    const int predicted = (v.predicted && !v.rejected)
                              ? static_cast<int>(*v.predicted)
                              : rejected_class;
    cm.add(static_cast<int>(s.kind), predicted);
  }
  std::cout << cm.to_string() << "overall accuracy: "
            << common::Table::pct(cm.accuracy()) << " over " << cm.total()
            << " gesture samples\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const airfinger::PreconditionError& e) {
    std::cerr << "af_classify: " << e.what() << "\n";
    return 1;
  }
}
