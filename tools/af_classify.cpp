// af_classify — classify a corpus with saved models and report accuracy.
//
//   af_classify --corpus test.csv --recognizer rec.af [--filter f.af]
#include <fstream>
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/airfinger.hpp"
#include "core/training.hpp"
#include "synth/io.hpp"

using namespace airfinger;

int main(int argc, char** argv) {
  common::Cli cli("af_classify",
                  "classify a corpus with saved models and report accuracy");
  cli.add_flag("corpus", "corpus.csv", "input corpus");
  cli.add_flag("recognizer", "recognizer.af", "trained recognizer model");
  cli.add_flag("filter", "", "trained interference filter ('' = disabled)");
  if (!cli.parse(argc, argv)) return 0;

  const auto dataset = synth::load_dataset_csv(cli.get("corpus"));
  std::ifstream rec_in(cli.get("recognizer"));
  if (!rec_in) {
    std::cerr << "cannot open " << cli.get("recognizer") << "\n";
    return 1;
  }
  core::DetectRecognizer recognizer = core::DetectRecognizer::load(rec_in);

  core::AirFingerConfig config;
  std::optional<core::InterferenceFilter> filter;
  if (!cli.get("filter").empty()) {
    std::ifstream filter_in(cli.get("filter"));
    if (!filter_in) {
      std::cerr << "cannot open " << cli.get("filter") << "\n";
      return 1;
    }
    filter = core::InterferenceFilter::load(filter_in, recognizer.bank());
  } else {
    config.interference_filtering = false;
  }
  core::AirFinger engine(config, std::move(recognizer), std::move(filter));

  ml::ConfusionMatrix cm(synth::kGestureCount + 1, [] {
    std::vector<std::string> names =
        core::class_names(core::LabelScheme::kAllEight);
    names.push_back("(rejected/missed)");
    return names;
  }());
  const int rejected_class = synth::kGestureCount;
  for (const auto& s : dataset.samples) {
    if (!synth::is_gesture(s.kind)) continue;
    const auto v = core::run_sample(engine, s);
    const int predicted = (v.predicted && !v.rejected)
                              ? static_cast<int>(*v.predicted)
                              : rejected_class;
    cm.add(static_cast<int>(s.kind), predicted);
  }
  std::cout << cm.to_string() << "overall accuracy: "
            << common::Table::pct(cm.accuracy()) << " over " << cm.total()
            << " gesture samples\n";
  return 0;
}
