// af_collect — synthesize a gesture corpus and export it to CSV.
//
//   af_collect --users 10 --sessions 5 --reps 25 --out corpus.csv
//
// The exported corpus freezes one realization of the collection protocol
// (Sec. V-B) so training and evaluation can run on identical data across
// machines, or be inspected in pandas/R.
#include <iostream>

#include "common/cli.hpp"
#include "synth/io.hpp"

using namespace airfinger;

int main(int argc, char** argv) {
  common::Cli cli("af_collect", "synthesize and export a gesture corpus");
  cli.add_flag("users", "4", "synthetic volunteers");
  cli.add_flag("sessions", "2", "sessions per volunteer");
  cli.add_flag("reps", "5", "repetitions per gesture per session");
  cli.add_flag("seed", "7", "master random seed");
  cli.add_flag("non_gestures", "false",
               "also record scratch/extend/reposition motions");
  cli.add_flag("out", "corpus.csv", "output CSV path");
  if (!cli.parse(argc, argv)) return 0;

  synth::CollectionConfig config;
  config.users = static_cast<int>(cli.get_int("users"));
  config.sessions = static_cast<int>(cli.get_int("sessions"));
  config.repetitions = static_cast<int>(cli.get_int("reps"));
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  if (cli.get_bool("non_gestures"))
    config.kinds.insert(config.kinds.end(), synth::non_gestures().begin(),
                        synth::non_gestures().end());

  std::cout << "collecting " << config.users << " users × "
            << config.sessions << " sessions × " << config.kinds.size()
            << " kinds × " << config.repetitions << " repetitions...\n";
  const auto dataset = synth::DatasetBuilder(config).collect();
  synth::save_dataset_csv(dataset, cli.get("out"));
  std::cout << "wrote " << dataset.size() << " samples to " << cli.get("out")
            << "\n";
  return 0;
}
