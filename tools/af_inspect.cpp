// af_inspect — show what a saved model artifact contains and learned.
//
//   af_inspect --model models.af        # afbundle or legacy recognizer
//   af_inspect --model models.af --stats --trace rec.aftrace
//
// The format is sniffed from the header: an `afbundle` artifact prints its
// version, configuration summary, and filter block in addition to the
// recognizer's selected features; a legacy `af_recognizer` file prints the
// feature table only. Exits non-zero on any parse failure.
//
// With --stats, an `.aftrace` recording (sensor/trace_io.hpp) is replayed
// through one Session over the bundle under a deterministic TickClock
// (--tick-ns per clock read), then the session's metric registry and
// structured pipeline-event log are printed — the same numbers a serving
// host would export, reproducible byte-for-byte across runs (DESIGN.md
// §13). --format selects prometheus (default) or json for the metrics.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <memory>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/table.hpp"
#include "core/model_bundle.hpp"
#include "core/session.hpp"
#include "obs/exposition.hpp"
#include "sensor/trace_io.hpp"

using namespace airfinger;

namespace {

void print_feature_table(const core::DetectRecognizer& rec) {
  // Importances of the selected columns, sorted descending.
  const auto& names = rec.bank().names();
  const auto& selected = rec.selected_features();
  const auto& importances = rec.final_importances();
  std::vector<std::size_t> order(selected.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return importances[a] > importances[b];
  });

  common::Table table({"rank", "feature", "importance"});
  for (std::size_t r = 0; r < order.size(); ++r)
    table.add_row({std::to_string(r + 1), names[selected[order[r]]],
                   common::Table::pct(importances[order[r]], 1)});
  std::cout << selected.size() << " selected features of "
            << rec.bank().feature_count() << " candidates\n";
  table.print(std::cout);
}

void print_bundle(const std::string& path,
                  const core::ModelBundle& bundle) {
  const auto& config = bundle.config();
  std::cout << path << ": afbundle v" << core::ModelBundle::kFormatVersion
            << "\n";
  common::Table meta({"field", "value"});
  meta.add_row({"sample rate", std::to_string(config.sample_rate_hz) + " Hz"});
  meta.add_row({"channels", std::to_string(config.channels)});
  meta.add_row({"hybrid routing", config.hybrid_routing ? "on" : "off"});
  meta.add_row({"interference filter",
                bundle.filter() ? "fitted (" +
                    std::to_string(bundle.filter()->feature_indices().size()) +
                    " features)" : "absent"});
  meta.add_row({"rejection threshold",
                std::to_string(config.rejection_threshold)});
  meta.add_row({"zebra velocity gain",
                std::to_string(config.zebra.velocity_gain)});
  meta.add_row({"history limit",
                std::to_string(config.history_limit) + " samples"});
  meta.print(std::cout);
  std::cout << "\nrecognizer: ";
  print_feature_table(bundle.recognizer());
}

/// --stats: replay a recording through one instrumented Session and print
/// the pipeline metrics and event log the run produced.
void print_stats(const std::shared_ptr<const core::ModelBundle>& bundle,
                 const std::string& trace_path, std::uint64_t tick_ns,
                 const std::string& format) {
  AF_EXPECT(format == "prometheus" || format == "json",
            "--format must be prometheus or json");
  const sensor::MultiChannelTrace trace =
      sensor::load_trace_file(trace_path);
  core::Session session(bundle);
  // Deterministic virtual time: every clock read advances tick_ns, so the
  // emitted spans and event timestamps are identical across runs/machines.
  session.observability().set_clock(
      std::make_unique<obs::TickClock>(tick_ns));
  // Offline replay: trace every frame rather than the sampled default.
  session.observability().set_sample_every(1);
  const auto events = session.process_trace(trace);

  std::cout << "replayed " << trace.sample_count() << " frames ("
            << trace.channel_count() << " channels) -> " << events.size()
            << " events; bundle load "
            << static_cast<double>(bundle->load_ns()) * 1e-6 << " ms\n";
  std::cout << "\n# metrics (" << format << ")\n";
  const obs::MetricsSnapshot snapshot =
      session.observability().registry().snapshot();
  if (format == "json")
    obs::write_json(std::cout, snapshot);
  else
    obs::write_prometheus(std::cout, snapshot);
  std::cout << "\n# pipeline events (oldest first, ring capacity "
            << session.observability().ring().capacity() << ")\n";
  session.observability().dump_events(std::cout);
}

int run(int argc, char** argv) {
  common::Cli cli("af_inspect",
                  "inspect a saved model bundle or legacy recognizer");
  cli.add_flag("model", "models.af",
               "model file (afbundle or legacy af_recognizer format)");
  cli.add_flag("stats", "false",
               "replay --trace through a Session and print its metrics");
  cli.add_flag("trace", "", "aftrace recording to replay (with --stats)");
  cli.add_flag("tick-ns", "1000",
               "deterministic clock step per read in ns (with --stats)");
  cli.add_flag("format", "prometheus",
               "metrics output format: prometheus or json (with --stats)");
  if (!cli.parse(argc, argv)) return 0;

  const std::string path = cli.get("model");
  std::ifstream in(path, std::ios::binary);
  AF_EXPECT(static_cast<bool>(in), "cannot open " + path);

  if (cli.get_bool("stats")) {
    AF_EXPECT(core::ModelBundle::sniff_bundle(in),
              "--stats requires an afbundle artifact");
    AF_EXPECT(!cli.get("trace").empty(),
              "--stats requires --trace <file.aftrace>");
    print_stats(core::ModelBundle::load(in), cli.get("trace"),
                static_cast<std::uint64_t>(cli.get_int("tick-ns")),
                cli.get("format"));
    return 0;
  }

  if (core::ModelBundle::sniff_bundle(in)) {
    print_bundle(path, *core::ModelBundle::load(in));
  } else {
    const core::DetectRecognizer rec = core::DetectRecognizer::load(in);
    std::cout << path << ": legacy recognizer\n";
    print_feature_table(rec);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const airfinger::PreconditionError& e) {
    std::cerr << "af_inspect: " << e.what() << "\n";
    return 1;
  }
}
