// af_inspect — show what a saved model artifact contains and learned.
//
//   af_inspect --model models.af        # afbundle or legacy recognizer
//
// The format is sniffed from the header: an `afbundle` artifact prints its
// version, configuration summary, and filter block in addition to the
// recognizer's selected features; a legacy `af_recognizer` file prints the
// feature table only. Exits non-zero on any parse failure.
#include <algorithm>
#include <fstream>
#include <iostream>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/table.hpp"
#include "core/model_bundle.hpp"

using namespace airfinger;

namespace {

void print_feature_table(const core::DetectRecognizer& rec) {
  // Importances of the selected columns, sorted descending.
  const auto& names = rec.bank().names();
  const auto& selected = rec.selected_features();
  const auto& importances = rec.final_importances();
  std::vector<std::size_t> order(selected.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return importances[a] > importances[b];
  });

  common::Table table({"rank", "feature", "importance"});
  for (std::size_t r = 0; r < order.size(); ++r)
    table.add_row({std::to_string(r + 1), names[selected[order[r]]],
                   common::Table::pct(importances[order[r]], 1)});
  std::cout << selected.size() << " selected features of "
            << rec.bank().feature_count() << " candidates\n";
  table.print(std::cout);
}

void print_bundle(const std::string& path,
                  const core::ModelBundle& bundle) {
  const auto& config = bundle.config();
  std::cout << path << ": afbundle v" << core::ModelBundle::kFormatVersion
            << "\n";
  common::Table meta({"field", "value"});
  meta.add_row({"sample rate", std::to_string(config.sample_rate_hz) + " Hz"});
  meta.add_row({"channels", std::to_string(config.channels)});
  meta.add_row({"hybrid routing", config.hybrid_routing ? "on" : "off"});
  meta.add_row({"interference filter",
                bundle.filter() ? "fitted (" +
                    std::to_string(bundle.filter()->feature_indices().size()) +
                    " features)" : "absent"});
  meta.add_row({"rejection threshold",
                std::to_string(config.rejection_threshold)});
  meta.add_row({"zebra velocity gain",
                std::to_string(config.zebra.velocity_gain)});
  meta.add_row({"history limit",
                std::to_string(config.history_limit) + " samples"});
  meta.print(std::cout);
  std::cout << "\nrecognizer: ";
  print_feature_table(bundle.recognizer());
}

int run(int argc, char** argv) {
  common::Cli cli("af_inspect",
                  "inspect a saved model bundle or legacy recognizer");
  cli.add_flag("model", "models.af",
               "model file (afbundle or legacy af_recognizer format)");
  if (!cli.parse(argc, argv)) return 0;

  const std::string path = cli.get("model");
  std::ifstream in(path, std::ios::binary);
  AF_EXPECT(static_cast<bool>(in), "cannot open " + path);

  if (core::ModelBundle::sniff_bundle(in)) {
    print_bundle(path, *core::ModelBundle::load(in));
  } else {
    const core::DetectRecognizer rec = core::DetectRecognizer::load(in);
    std::cout << path << ": legacy recognizer\n";
    print_feature_table(rec);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const airfinger::PreconditionError& e) {
    std::cerr << "af_inspect: " << e.what() << "\n";
    return 1;
  }
}
