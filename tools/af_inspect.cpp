// af_inspect — show what a saved recognizer model learned: the selected
// feature names and their importances in the final forest.
#include <algorithm>
#include <fstream>
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/detect_recognizer.hpp"

using namespace airfinger;

int main(int argc, char** argv) {
  common::Cli cli("af_inspect", "inspect a saved recognizer model");
  cli.add_flag("recognizer", "recognizer.af", "trained recognizer model");
  if (!cli.parse(argc, argv)) return 0;

  std::ifstream in(cli.get("recognizer"));
  if (!in) {
    std::cerr << "cannot open " << cli.get("recognizer") << "\n";
    return 1;
  }
  const core::DetectRecognizer rec = core::DetectRecognizer::load(in);

  // Importances of the selected columns, sorted descending.
  const auto& names = rec.bank().names();
  const auto& selected = rec.selected_features();
  const auto& importances = rec.final_importances();
  std::vector<std::size_t> order(selected.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return importances[a] > importances[b];
  });

  common::Table table({"rank", "feature", "importance"});
  for (std::size_t r = 0; r < order.size(); ++r)
    table.add_row({std::to_string(r + 1), names[selected[order[r]]],
                   common::Table::pct(importances[order[r]], 1)});
  std::cout << cli.get("recognizer") << ": " << selected.size()
            << " selected features of " << rec.bank().feature_count()
            << " candidates\n";
  table.print(std::cout);
  return 0;
}
