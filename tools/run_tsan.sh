#!/usr/bin/env bash
# Builds the concurrency-sensitive targets under ThreadSanitizer and runs
# the thread-pool + core suites with a multi-thread pool. CI-runnable:
# exits non-zero on any data race or test failure.
#
# Usage: tools/run_tsan.sh [build-dir]   (default: build/aux/tsan — see
# the canonical build-dir layout in README.md)
# AF_THREADS controls the pool width under test (default 4).
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-${ROOT}/build/aux/tsan}"

cmake -B "${BUILD}" -S "${ROOT}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DAF_SANITIZE=thread
cmake --build "${BUILD}" -j --target parallel_test spsc_ring_test host_shard_test probe_test determinism_test core_test bundle_test compiled_forest_test simd_test fault_injection_test artifact_test obs_test obs_pipeline_test trace_test

export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"
export AF_THREADS="${AF_THREADS:-4}"

"${BUILD}/tests/parallel_test"
# SPSC ring + sharded host: the release/acquire publish contract and the
# park/unpark fence handshake are exactly what TSan exists to check.
"${BUILD}/tests/spsc_ring_test"
"${BUILD}/tests/host_shard_test"
# Incremental probe + the multi-producer round-robin driver (one feeder
# thread per shard hitting disjoint lanes concurrently).
"${BUILD}/tests/probe_test"
"${BUILD}/tests/determinism_test"
"${BUILD}/tests/core_test"
"${BUILD}/tests/bundle_test"
"${BUILD}/tests/compiled_forest_test"
# simd_test flips the process-wide kernel table; running it under TSan
# checks the atomic dispatch pointer against the sharded host's readers.
"${BUILD}/tests/simd_test"
"${BUILD}/tests/fault_injection_test"
# Artifact detectors + graded repair/escalation: per-session state only,
# but the storm sweeps replay through full Sessions so the held-frame
# resume path runs under the same instrumentation as the rest of core.
"${BUILD}/tests/artifact_test"
# Observability: per-session registry writes + host-side aggregation must
# be race-free at a multi-thread pool (the single-writer contract).
"${BUILD}/tests/obs_test"
"${BUILD}/tests/obs_pipeline_test"
# Gesture traces + per-shard telemetry: lane-fault post-mortems are
# captured on the worker thread and read after quiesce(); the shard stat
# registries are single-writer with the same handoff. TSan checks both.
"${BUILD}/tests/trace_test"

echo "tsan: all suites clean (AF_THREADS=${AF_THREADS})"
