#include "features/bank.hpp"

#include <algorithm>
#include <cmath>
#include <complex>

#include "common/error.hpp"
#include "common/reduce.hpp"
#include "common/simd.hpp"
#include "common/stats.hpp"
#include "dsp/autocorr.hpp"
#include "dsp/fft.hpp"
#include "dsp/filters.hpp"
#include "dsp/wavelet.hpp"
#include "dsp/xcorr.hpp"
#include "features/measures.hpp"

namespace airfinger::features {

namespace {

/// Marks the Table I families reused by the interference filter.
const char* kInterferenceFamilies[] = {
    "std",        "variance",        "sample_entropy",
    "kurtosis",   "num_peaks_s3",    "mean_abs_change",
    "log_energy", "log_length",      "trend_slope",
};

bool is_interference_family(const std::string& name) {
  for (const char* f : kInterferenceFamilies)
    if (name == f) return true;
  return false;
}

}  // namespace

FeatureBank::FeatureBank(FeatureBankOptions options)
    : options_(std::move(options)) {
  AF_EXPECT(options_.canonical_length >= 16,
            "canonical length too short for the configured lags");
  AF_EXPECT(options_.acf_lags >= 1 && options_.pacf_lags >= 1 &&
                options_.ar_order >= 1,
            "lag orders must be >= 1");
  AF_EXPECT(options_.envelope_smooth >= 1,
            "envelope smoothing must be >= 1");

  // Sample each CWT wavelet once; ±5 widths of support matches
  // dsp::cwt_row_into, so the precomputed taps are the exact values the
  // per-frame path would have produced.
  cwt_wavelets_.reserve(options_.cwt_widths.size());
  for (const double a : options_.cwt_widths) {
    const auto half = static_cast<std::size_t>(std::ceil(5.0 * a));
    cwt_wavelets_.push_back(dsp::ricker_wavelet(2 * half + 1, a));
  }

  // Assemble the name list in the exact order extract() fills values.
  auto add = [this](const std::string& n) { names_.push_back(n); };

  // -- Shape features on the canonical (log1p + resampled + z-normalized)
  //    summed-energy form.
  add("std");
  add("variance");
  add("skewness");
  add("kurtosis");
  add("count_above_mean");
  add("count_below_mean");
  add("first_loc_max");
  add("first_loc_min");
  add("last_loc_max");
  add("last_loc_min");
  add("longest_strike_above_mean");
  add("longest_strike_below_mean");
  add("mean_abs_change");
  add("cid");
  add("sample_entropy");
  add("approx_entropy");
  add("adf_stat");
  add("trend_slope");
  add("trend_intercept");
  for (std::size_t k = 1; k <= options_.acf_lags; ++k)
    add("acf_l" + std::to_string(k));
  // Fractional-lag autocorrelation: a double gesture repeats its waveform
  // at half the segment, a single one does not — acf at n/2 (and n/4, n/3
  // for faster repetition rates) fingerprints the repetition count
  // independent of absolute duration.
  add("acf_frac_q4");
  add("acf_frac_q3");
  add("acf_frac_q2");
  for (std::size_t k = 1; k <= options_.pacf_lags; ++k)
    add("pacf_l" + std::to_string(k));
  for (std::size_t k = 1; k <= options_.ar_order; ++k)
    add("ar_c" + std::to_string(k));
  for (std::size_t lag : options_.c3_lags)
    add("c3_l" + std::to_string(lag));
  for (std::size_t lag : options_.tra_lags)
    add("tra_l" + std::to_string(lag));
  for (std::size_t s : options_.peak_supports)
    add("num_peaks_s" + std::to_string(s));
  for (double q : options_.quantiles)
    add("quantile_" + std::to_string(static_cast<int>(q * 100)));
  for (std::size_t c = 0; c < options_.energy_chunks; ++c)
    add("energy_chunk_" + std::to_string(c));

  // -- Envelope burst structure.
  add("env_burst_count");
  add("env_null_fraction");
  add("env_max_burst_len");
  add("env_burst_len_cv");
  add("env_first_burst_pos");
  add("env_last_burst_end");
  add("env_peak_count");
  add("env_period_lag");
  add("env_period_strength");

  // -- Frequency domain.
  for (std::size_t k = 0; k < options_.fft_coefficients; ++k)
    add("fft_mag_" + std::to_string(k));
  add("spectral_centroid");
  add("low_band_ratio");
  for (std::size_t w = 0; w < options_.cwt_widths.size(); ++w)
    add("cwt_energy_w" + std::to_string(w));
  for (std::size_t w = 0; w < options_.cwt_widths.size(); ++w)
    add("cwt_max_w" + std::to_string(w));

  // -- Cross-channel (spatial) features.
  if (options_.cross_channel) {
    add("xc_energy_frac_first");
    add("xc_energy_frac_mid");
    add("xc_energy_frac_last");
    add("xc_corr_outer");
    add("xc_corr_first_mid");
    add("xc_corr_mid_last");
    add("xc_asym_delta");
    add("xc_asym_range");
    add("xc_asym_mean");
    add("xc_tau_spread");
  }

  // -- Scale features on the raw summed segment (log-compressed).
  add("log_length");
  add("log_energy");
  add("log_peak");
  add("log_mean");
  add("coeff_variation");

  for (std::size_t i = 0; i < names_.size(); ++i)
    if (is_interference_family(names_[i])) interference_indices_.push_back(i);
  AF_ASSERT(interference_indices_.size() == 9,
            "interference feature subset must have 9 entries");
}

std::vector<double> FeatureBank::extract(
    std::span<const double> segment) const {
  const std::span<const double> one[] = {segment};
  return extract(std::span<const std::span<const double>>(one));
}

std::vector<double> FeatureBank::extract(
    std::span<const std::span<const double>> channels) const {
  Workspace workspace;
  std::vector<double> out(names_.size(), 0.0);
  extract_into(channels, workspace, out);
  return out;
}

void FeatureBank::extract_into(
    std::span<const std::span<const double>> channels, Workspace& workspace,
    std::span<double> out) const {
  AF_EXPECT(!channels.empty(), "extract requires at least one channel");
  AF_EXPECT(out.size() == names_.size(),
            "extract output size must match feature_count()");
  const std::size_t n = channels.front().size();
  AF_EXPECT(n >= 4, "segment too short for feature extraction");
  for (const auto& ch : channels)
    AF_EXPECT(ch.size() == n, "channels must be equal length");

  common::ScratchArena& arena = workspace.arena;
  const auto extraction_frame = arena.frame();

  // Summed energy across channels, one contiguous accumulate per channel.
  const std::span<double> energy = arena.alloc<double>(n);
  for (const auto& ch : channels)
    simd::kernels().accumulate(energy.data(), ch.data(), n);

  // Canonical form: log compression, fixed length, zero mean, unit var.
  // The linear resampler reads only the two samples bracketing each
  // output position, so the log compression is applied lazily to exactly
  // those — the same resample_linear_into interpolation arithmetic, hence
  // bit-identical to compressing all n samples first, at ~2×canonical
  // log1p calls instead of n.
  const std::span<double> resampled =
      arena.alloc<double>(options_.canonical_length);
  const auto logc = [&energy](std::size_t i) {
    return std::log1p(std::max(energy[i], 0.0));
  };
  if (resampled.size() == 1) {
    resampled[0] = logc(0);
  } else {
    for (std::size_t i = 0; i < resampled.size(); ++i) {
      const double pos = static_cast<double>(i) * static_cast<double>(n - 1) /
                         static_cast<double>(resampled.size() - 1);
      const auto lo = static_cast<std::size_t>(pos);
      const double frac = pos - static_cast<double>(lo);
      resampled[i] = (lo + 1 < n)
                         ? logc(lo) * (1.0 - frac) + logc(lo + 1) * frac
                         : logc(lo);
    }
  }
  const std::span<double> canon =
      arena.alloc<double>(options_.canonical_length);
  common::znormalize_into(resampled, canon);
  const double n_canon = static_cast<double>(canon.size());

  std::size_t filled = 0;
  auto push = [&out, &filled](double v) {
    out[filled++] = std::isfinite(v) ? v : 0.0;
  };

  // Shape features. Note: std/variance of the canonical form are trivially
  // 1 unless the raw segment was constant (then 0) — they act as a
  // degeneracy flag; the interference filter's variance signal comes from
  // the scale block below combined with this flag.
  push(common::stddev(canon));
  push(common::variance(canon));
  push(common::skewness(canon));
  push(common::kurtosis(canon));
  push(static_cast<double>(common::count_above_mean(canon)) / n_canon);
  push(static_cast<double>(common::count_below_mean(canon)) / n_canon);
  push(static_cast<double>(common::argmax(canon)) / n_canon);
  push(static_cast<double>(common::argmin(canon)) / n_canon);
  push(static_cast<double>(common::last_argmax(canon)) / n_canon);
  push(static_cast<double>(common::last_argmin(canon)) / n_canon);
  push(static_cast<double>(common::longest_strike_above_mean(canon)) /
       n_canon);
  push(static_cast<double>(common::longest_strike_below_mean(canon)) /
       n_canon);
  push(common::mean_abs_change(canon));
  push(cid_ce(canon, /*normalize=*/false));  // canon is already normalized
  {
    // SampEn and ApEn share every template comparison; the fused sweep
    // is bit-identical to the two separate calls.
    const auto [sampen, apen] = entropy_pair(canon, arena);
    push(sampen);
    push(apen);
  }
  push(adf_statistic(canon));
  {
    const auto [slope, intercept] = common::linear_trend(canon);
    push(slope * n_canon);  // slope per full segment, scale-free
    push(intercept);
  }
  {
    const auto frame = arena.frame();
    const std::span<double> a = arena.alloc<double>(options_.acf_lags + 1);
    dsp::acf_into(canon, arena, a);
    for (std::size_t k = 1; k <= options_.acf_lags; ++k) push(a[k]);
    push(dsp::autocorrelation(canon, canon.size() / 4));
    push(dsp::autocorrelation(canon, canon.size() / 3));
    push(dsp::autocorrelation(canon, canon.size() / 2));
  }
  {
    const auto frame = arena.frame();
    const std::span<double> p = arena.alloc<double>(options_.pacf_lags);
    dsp::pacf_into(canon, arena, p);
    for (double v : p) push(v);
  }
  {
    const auto frame = arena.frame();
    const std::span<double> ar = arena.alloc<double>(options_.ar_order);
    dsp::ar_coefficients_into(canon, arena, ar);
    for (double v : ar) push(v);
  }
  for (std::size_t lag : options_.c3_lags) push(c3(canon, lag));
  for (std::size_t lag : options_.tra_lags)
    push(time_reversal_asymmetry(canon, lag));
  for (std::size_t s : options_.peak_supports)
    push(static_cast<double>(dsp::count_peaks(canon, s)));
  {
    // One sort serves every quantile: quantile_sorted over the sorted copy
    // is bit-identical to quantile_with's per-q copy+sort of the same
    // multiset.
    const auto frame = arena.frame();
    const std::span<double> sorted = arena.alloc<double>(canon.size());
    std::copy(canon.begin(), canon.end(), sorted.begin());
    std::sort(sorted.begin(), sorted.end());
    for (double q : options_.quantiles)
      push(common::quantile_sorted(sorted, q));
  }
  for (std::size_t c = 0; c < options_.energy_chunks; ++c)
    push(energy_ratio_by_chunks(canon, options_.energy_chunks, c));

  // Envelope burst structure (on the smoothed canonical energy, linear
  // scale so nulls are real nulls).
  {
    const auto frame = arena.frame();
    const std::span<double> env_raw =
        arena.alloc<double>(options_.canonical_length);
    dsp::resample_linear_into(energy, env_raw);
    const std::span<double> env =
        arena.alloc<double>(options_.canonical_length);
    dsp::moving_average_into(env_raw, options_.envelope_smooth, env);
    double peak = common::reduce::max_with(env, 0.0);
    if (peak <= 0.0) peak = 1.0;
    const double burst_level = 0.30 * peak;
    const double null_level = 0.08 * peak;

    // Bursts are disjoint above-level runs, so at most len/2 + 1 fit.
    const std::span<std::size_t> burst_begin =
        arena.alloc<std::size_t>(env.size() / 2 + 1);
    const std::span<std::size_t> burst_end =
        arena.alloc<std::size_t>(env.size() / 2 + 1);
    std::size_t burst_count = 0;
    std::size_t nulls = 0;
    bool inside = false;
    std::size_t begin = 0;
    for (std::size_t i = 0; i < env.size(); ++i) {
      if (env[i] < null_level) ++nulls;
      const bool above = env[i] >= burst_level;
      if (above && !inside) {
        inside = true;
        begin = i;
      } else if (!above && inside) {
        inside = false;
        burst_begin[burst_count] = begin;
        burst_end[burst_count] = i;
        ++burst_count;
      }
    }
    if (inside) {
      burst_begin[burst_count] = begin;
      burst_end[burst_count] = env.size();
      ++burst_count;
    }

    push(static_cast<double>(burst_count));
    push(static_cast<double>(nulls) / n_canon);
    double max_len = 0.0, mean_len = 0.0, var_len = 0.0;
    for (std::size_t b = 0; b < burst_count; ++b) {
      const double len = static_cast<double>(burst_end[b] - burst_begin[b]);
      max_len = std::max(max_len, len);
      mean_len += len;
    }
    if (burst_count > 0) mean_len /= static_cast<double>(burst_count);
    for (std::size_t b = 0; b < burst_count; ++b) {
      const double len = static_cast<double>(burst_end[b] - burst_begin[b]);
      var_len += (len - mean_len) * (len - mean_len);
    }
    if (burst_count > 0) var_len /= static_cast<double>(burst_count);
    push(max_len / n_canon);
    push(mean_len > 0.0 ? std::sqrt(var_len) / mean_len : 0.0);
    push(burst_count == 0
             ? 0.0
             : static_cast<double>(burst_begin[0]) / n_canon);
    push(burst_count == 0
             ? 0.0
             : static_cast<double>(burst_end[burst_count - 1]) / n_canon);
    push(static_cast<double>(dsp::count_peaks(env, 4)));

    // Dominant periodicity of the envelope: strongest ACF peak beyond a
    // short dead zone. Double gestures repeat; singles do not.
    const std::size_t max_lag = env.size() / 2;
    double best_acf = 0.0;
    std::size_t best_lag = 0;
    if (max_lag >= 6) {
      const std::span<double> acf = arena.alloc<double>(max_lag + 1);
      dsp::acf_into(env, arena, acf);
      for (std::size_t lag = 5; lag <= max_lag; ++lag) {
        if (acf[lag] > best_acf) {
          best_acf = acf[lag];
          best_lag = lag;
        }
      }
    }
    push(static_cast<double>(best_lag) / n_canon);
    push(best_acf);
  }

  // Frequency domain: power-normalized magnitudes so amplitude cancels.
  // One spectrum of the canonical form feeds all three spectral features —
  // the FFT is deterministic, so the shared values match the reference
  // path's three independent transforms bit for bit.
  {
    const auto frame = arena.frame();
    const std::span<const std::complex<double>> spec =
        dsp::fft_real_scratch(canon, arena);
    const std::span<double> mags =
        arena.alloc<double>(options_.fft_coefficients);
    dsp::fft_magnitudes_from(spec, mags);
    const double total = common::reduce::sum(mags);
    for (double m : mags) push(total > 0.0 ? m / total : 0.0);
    push(canon.size() < 2 ? 0.0 : dsp::spectral_centroid_from(spec));
    push(canon.size() < 2 ? 0.0
                          : dsp::spectral_energy_ratio_from(spec, 0.2));
  }
  {
    const auto frame = arena.frame();
    const std::span<double> energies =
        arena.alloc<double>(options_.cwt_widths.size());
    const std::span<double> maxima =
        arena.alloc<double>(options_.cwt_widths.size());
    const std::span<double> row = arena.alloc<double>(canon.size());
    double total = 0.0;
    for (std::size_t w = 0; w < options_.cwt_widths.size(); ++w) {
      dsp::cwt_row_with_wavelet_into(canon, cwt_wavelets_[w], row);
      const double e = common::energy(row);
      energies[w] = e;
      total += e;
      double peak = 0.0;
      for (double v : row) peak = std::max(peak, std::fabs(v));
      maxima[w] = peak;
    }
    for (double e : energies) push(total > 0.0 ? e / total : 0.0);
    for (double m : maxima) push(m);
  }

  // Cross-channel spatial features.
  if (options_.cross_channel) {
    if (channels.size() >= 2) {
      const auto frame = arena.frame();
      // Bounded cost: the smoothing window below grows with the segment
      // (nb/16), making this block O(n²/16) — fine for gestures, quadratic
      // blow-up for multi-second scrolls. Above the cap every channel is
      // decimated with the deterministic linear resampler first; the ten
      // features here are scale-free shape ratios, so they survive the
      // decimation, and every segment at or under the cap (all training
      // and test gestures) keeps its exact historical bits.
      std::span<const std::span<const double>> xch = channels;
      std::size_t nb = n;
      const std::size_t cap = options_.cross_channel_cap;
      if (cap > 0 && n > cap) {
        nb = std::max<std::size_t>(cap, 4);
        const std::span<std::span<const double>> views =
            arena.alloc<std::span<const double>>(channels.size());
        for (std::size_t c = 0; c < channels.size(); ++c) {
          const std::span<double> buf = arena.alloc<double>(nb);
          dsp::resample_linear_into(channels[c], buf);
          views[c] = buf;
        }
        xch = views;
      }
      const auto& first = xch.front();
      const auto& last = xch.back();
      const std::size_t mid_idx = xch.size() / 2;
      const auto& mid = xch[mid_idx];

      // Three independent serial accumulators (the former interleaved loop
      // kept them separate too, so splitting is bit-identical).
      const double e_first = common::reduce::sum(first);
      const double e_mid = common::reduce::sum(mid);
      const double e_last = common::reduce::sum(last);
      // e_total accumulates continuously across channels in channel order —
      // summing per-channel subtotals would reassociate it.
      double e_total = 0.0;
      for (const auto& ch : xch)
        for (double v : ch) e_total += v;
      if (e_total <= 0.0) e_total = 1.0;
      push(e_first / e_total);
      push(e_mid / e_total);
      push(e_last / e_total);

      const std::size_t smooth = std::max<std::size_t>(3, nb / 16);
      // One contiguous SoA block for the three smoothed channels, so the
      // kernels below see adjacent spans.
      const std::span<double> smoothed = arena.alloc<double>(3 * nb);
      const std::span<double> s_first = smoothed.subspan(0, nb);
      const std::span<double> s_mid = smoothed.subspan(nb, nb);
      const std::span<double> s_last = smoothed.subspan(2 * nb, nb);
      dsp::moving_average_into(first, smooth, s_first);
      dsp::moving_average_into(mid, smooth, s_mid);
      dsp::moving_average_into(last, smooth, s_last);
      push(nb >= 2 ? common::pearson(s_first, s_last) : 0.0);
      push(nb >= 2 ? common::pearson(s_first, s_mid) : 0.0);
      push(nb >= 2 ? common::pearson(s_mid, s_last) : 0.0);

      // Asymmetry sweep statistics (same construction as the router's).
      const std::span<double> esum = arena.alloc<double>(nb);
      for (std::size_t i = 0; i < nb; ++i)
        esum[i] = s_first[i] + s_mid[i] + s_last[i];
      const double esum_peak = common::reduce::max_with(esum, 0.0);
      const double eps = std::max(esum_peak * 0.05, 1e-12);
      double w_total = 0.0, a_mean = 0.0;
      double a_min = 0.0, a_max = 0.0, a_w_early = 0.0, a_w_late = 0.0;
      double w_early = 0.0, w_late = 0.0, t_centroid_num = 0.0;
      bool have = false;
      const double energy_gate = esum_peak * 0.08;
      for (std::size_t i = 0; i < nb; ++i) {
        const double a = (s_last[i] - s_first[i]) / (esum[i] + eps);
        const double w =
            esum[i] > energy_gate ? std::fabs(s_last[i] - s_first[i]) : 0.0;
        if (w <= 0.0) continue;
        if (!have) {
          a_min = a_max = a;
          have = true;
        }
        a_min = std::min(a_min, a);
        a_max = std::max(a_max, a);
        a_mean += a * w;
        w_total += w;
        t_centroid_num += static_cast<double>(i) * w;
        if (i < nb / 2) {
          a_w_early += a * w;
          w_early += w;
        } else {
          a_w_late += a * w;
          w_late += w;
        }
      }
      const double delta =
          (w_early > 0.0 && w_late > 0.0)
              ? a_w_late / w_late - a_w_early / w_early
              : 0.0;
      push(delta);
      push(have ? a_max - a_min : 0.0);
      push(w_total > 0.0 ? a_mean / w_total : 0.0);

      // τ spread: energy-centroid time difference of the outer channels,
      // normalized by the window length. Four independent accumulators,
      // each still in ascending-i order.
      const double tau_first = common::reduce::weighted_index_sum(s_first);
      const double ef = common::reduce::sum(s_first);
      const double tau_last = common::reduce::weighted_index_sum(s_last);
      const double el = common::reduce::sum(s_last);
      const double spread =
          (ef > 0.0 && el > 0.0)
              ? (tau_last / el - tau_first / ef) / static_cast<double>(nb)
              : 0.0;
      push(spread);
    } else {
      for (int i = 0; i < 10; ++i) push(0.0);
    }
  }

  // Scale features on the raw summed segment. The mean used to be
  // recomputed three times (mean, then twice inside stddev); one mean +
  // one centred pass runs the identical arithmetic in the identical
  // order, so the bits are unchanged.
  push(std::log(static_cast<double>(n)));
  push(std::log1p(common::energy(energy)));
  push(std::log1p(common::max(energy)));
  {
    const double m = common::mean(energy);
    push(std::log1p(std::fabs(m)));
    double s = 0.0;
    for (double v : energy) s += (v - m) * (v - m);
    const double sd = std::sqrt(s / static_cast<double>(n));
    push(m != 0.0 ? sd / std::fabs(m) : 0.0);
  }

  AF_ASSERT(filled == names_.size(),
            "feature vector arity diverged from the name list");
}

}  // namespace airfinger::features
