// Per-owner scratch state for allocation-free feature extraction.
//
// FeatureBank::extract_into() evaluates ~90 features, most of which need
// short-lived working arrays (canonical forms, envelopes, spectra, CWT
// rows). A Workspace bundles the ScratchArena those arrays come from; after
// the first extraction sizes its blocks, every further call is free of heap
// traffic. Ownership rule (DESIGN.md §11): one Workspace per core::Session
// and one per training worker thread — never shared across threads.
#pragma once

#include "common/arena.hpp"

namespace airfinger::obs {
class PipelineObservability;
}

namespace airfinger::features {

struct Workspace {
  common::ScratchArena arena;
  /// Optional stage tracing sink (owned by the Session this workspace
  /// belongs to; nullptr for training workers and plain batch callers).
  /// The bundle's decision core records ZEBRA/feature/forest spans into
  /// it — record-only, never consulted for any decision.
  obs::PipelineObservability* obs = nullptr;
};

}  // namespace airfinger::features
