// Per-owner scratch state for allocation-free feature extraction.
//
// FeatureBank::extract_into() evaluates ~90 features, most of which need
// short-lived working arrays (canonical forms, envelopes, spectra, CWT
// rows). A Workspace bundles the ScratchArena those arrays come from; after
// the first extraction sizes its blocks, every further call is free of heap
// traffic. Ownership rule (DESIGN.md §11): one Workspace per core::Session
// and one per training worker thread — never shared across threads.
#pragma once

#include "common/arena.hpp"

namespace airfinger::features {

struct Workspace {
  common::ScratchArena arena;
};

}  // namespace airfinger::features
