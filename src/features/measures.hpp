// Time-series complexity measures backing Table I's feature set.
//
// Each function reproduces the mathematical definition used by tsfresh (the
// toolbox the paper extracts candidate features with): sample entropy,
// approximate entropy, complexity-invariant distance (Batista et al. 2014),
// the c3 nonlinearity statistic (Schreiber & Schmitz 1997), the time
// reversal asymmetry statistic, energy ratio by chunks, and a simplified
// augmented Dickey-Fuller test statistic.
#pragma once

#include <span>
#include <utility>
#include <vector>

namespace airfinger::common {
class ScratchArena;
}

namespace airfinger::features {

/// Sample entropy SampEn(m, r) with embedding m and tolerance r (absolute).
/// Standard convention: returns 0 for degenerate inputs (n <= m+1) and a
/// large-but-finite value (log of count bound) when no template matches.
double sample_entropy(std::span<const double> x, unsigned m = 2,
                      double r = -1.0);

/// Approximate entropy ApEn(m, r). r < 0 means 0.2·stddev(x) (the common
/// default, also applied by sample_entropy).
double approximate_entropy(std::span<const double> x, unsigned m = 2,
                           double r = -1.0);

/// {sample_entropy(x, m, r), approximate_entropy(x, m, r)} from one fused
/// pair sweep — the two measures share every Chebyshev template
/// comparison, so computing them together halves the O(n²·m) work.
/// Bit-identical to the two separate calls on every SIMD tier (the
/// underlying counts are integers; the ApEn log-mean keeps its serial
/// template order). The arena only holds the per-template count scratch
/// for the duration of the call.
std::pair<double, double> entropy_pair(std::span<const double> x,
                                       common::ScratchArena& arena,
                                       unsigned m = 2, double r = -1.0);

/// Complexity-invariant distance complexity estimate:
/// CE(x) = sqrt(Σ (x[i+1]-x[i])²). 0 for n < 2.
double cid_ce(std::span<const double> x, bool normalize = true);

/// c3 statistic: mean of x[i+2l]·x[i+l]·x[i] (measure of nonlinearity).
/// 0 when n <= 2·lag.
double c3(std::span<const double> x, std::size_t lag);

/// Time reversal asymmetry statistic:
/// mean of x[i+2l]²·x[i+l] − x[i+l]·x[i]². 0 when n <= 2·lag.
double time_reversal_asymmetry(std::span<const double> x, std::size_t lag);

/// Energy of chunk `focus` of `num_chunks` equal splits, as a fraction of
/// total energy. 0 when the total energy is 0. Requires focus < num_chunks
/// and non-empty input.
double energy_ratio_by_chunks(std::span<const double> x,
                              std::size_t num_chunks, std::size_t focus);

/// Simplified augmented Dickey-Fuller test statistic: the t-statistic of γ
/// in Δx[t] = α + γ·x[t-1] + β·Δx[t-1] + ε. Large negative values indicate
/// stationarity. Returns 0 for degenerate inputs (n < 6 or singular fit).
double adf_statistic(std::span<const double> x);

}  // namespace airfinger::features
