#include "features/measures.hpp"

#include <algorithm>
#include <cmath>

#include <utility>
#include <vector>

#include "common/arena.hpp"
#include "common/error.hpp"
#include "common/simd.hpp"
#include "common/stats.hpp"

namespace airfinger::features {

namespace {

double default_tolerance(std::span<const double> x, double r) {
  if (r >= 0.0) return r;
  return 0.2 * common::stddev(x);
}

/// Counts template matches of length m within tolerance r (Chebyshev
/// distance), excluding self-matches — shared by SampEn. Match counting
/// is integer, so the AF_SIMD lane-parallel kernel is exact.
std::size_t count_matches(std::span<const double> x, unsigned m, double r) {
  return simd::kernels().count_matches(x.data(), x.size(), m, r);
}

}  // namespace

double sample_entropy(std::span<const double> x, unsigned m, double r) {
  const std::size_t n = x.size();
  if (n <= m + 1) return 0.0;
  const double tol = default_tolerance(x, r);
  if (tol <= 0.0) return 0.0;  // constant signal: perfectly regular
  const auto b = static_cast<double>(count_matches(x, m, tol));
  const auto a = static_cast<double>(count_matches(x, m + 1, tol));
  if (b == 0.0) return 0.0;  // no templates match at length m either
  if (a == 0.0) {
    // Convention: cap at the information content of one match among all
    // possible pairs, keeping the feature finite.
    const double pairs = static_cast<double>(n - m) *
                         static_cast<double>(n - m - 1) / 2.0;
    return std::log(std::max(pairs, 2.0));
  }
  return -std::log(a / b);
}

double approximate_entropy(std::span<const double> x, unsigned m, double r) {
  const std::size_t n = x.size();
  if (n <= m + 1) return 0.0;
  const double tol = default_tolerance(x, r);
  if (tol <= 0.0) return 0.0;

  // The kernel's per-template counts include the self-match, per the ApEn
  // definition; the log-mean accumulates in template order on every tier.
  const auto& k = simd::kernels();
  return k.apen_phi(x.data(), n, m, tol) -
         k.apen_phi(x.data(), n, m + 1, tol);
}

std::pair<double, double> entropy_pair(std::span<const double> x,
                                       common::ScratchArena& arena,
                                       unsigned m, double r) {
  const std::size_t n = x.size();
  if (n <= m + 1) return {0.0, 0.0};  // both measures' degenerate case
  const double tol = default_tolerance(x, r);
  if (tol <= 0.0) return {0.0, 0.0};

  const std::size_t tm = n - m + 1;
  const std::size_t tm1 = n - m;
  const auto frame = arena.frame();
  const std::span<std::uint32_t> cm = arena.alloc<std::uint32_t>(tm);
  const std::span<std::uint32_t> cm1 = arena.alloc<std::uint32_t>(tm1);
  std::size_t pairs_m = 0, pairs_m1 = 0;
  simd::kernels().entropy_counts(x.data(), n, m, tol, cm.data(), cm1.data(),
                                 &pairs_m, &pairs_m1);

  // SampEn from the pair totals, with sample_entropy's exact special
  // cases (the counts equal count_matches(m) / count_matches(m+1)).
  double sampen;
  const auto b = static_cast<double>(pairs_m);
  const auto a = static_cast<double>(pairs_m1);
  if (b == 0.0) {
    sampen = 0.0;
  } else if (a == 0.0) {
    const double pairs = static_cast<double>(n - m) *
                         static_cast<double>(n - m - 1) / 2.0;
    sampen = std::log(std::max(pairs, 2.0));
  } else {
    sampen = -std::log(a / b);
  }

  // ApEn: the log-mean accumulates in ascending template order, exactly
  // the apen_phi reference, so phi(m) - phi(m+1) keeps its bits.
  double phi_m = 0.0;
  for (std::size_t i = 0; i < tm; ++i)
    phi_m += std::log(static_cast<double>(cm[i]) / static_cast<double>(tm));
  phi_m /= static_cast<double>(tm);
  double phi_m1 = 0.0;
  for (std::size_t i = 0; i < tm1; ++i)
    phi_m1 +=
        std::log(static_cast<double>(cm1[i]) / static_cast<double>(tm1));
  phi_m1 /= static_cast<double>(tm1);
  return {sampen, phi_m - phi_m1};
}

double cid_ce(std::span<const double> x, bool normalize) {
  if (x.size() < 2) return 0.0;
  if (!normalize) {
    // Differences of the raw values need no working copy.
    double s = 0.0;
    for (std::size_t i = 1; i < x.size(); ++i) {
      const double d = x[i] - x[i - 1];
      s += d * d;
    }
    return std::sqrt(s);
  }
  const std::vector<double> v = common::znormalize(x);
  double s = 0.0;
  for (std::size_t i = 1; i < v.size(); ++i) {
    const double d = v[i] - v[i - 1];
    s += d * d;
  }
  return std::sqrt(s);
}

double c3(std::span<const double> x, std::size_t lag) {
  AF_EXPECT(lag >= 1, "c3 requires lag >= 1");
  if (x.size() <= 2 * lag) return 0.0;
  double s = 0.0;
  const std::size_t n = x.size() - 2 * lag;
  for (std::size_t i = 0; i < n; ++i)
    s += x[i + 2 * lag] * x[i + lag] * x[i];
  return s / static_cast<double>(n);
}

double time_reversal_asymmetry(std::span<const double> x, std::size_t lag) {
  AF_EXPECT(lag >= 1, "time_reversal_asymmetry requires lag >= 1");
  if (x.size() <= 2 * lag) return 0.0;
  double s = 0.0;
  const std::size_t n = x.size() - 2 * lag;
  for (std::size_t i = 0; i < n; ++i) {
    const double a = x[i + 2 * lag], b = x[i + lag], c = x[i];
    s += a * a * b - b * c * c;
  }
  return s / static_cast<double>(n);
}

double energy_ratio_by_chunks(std::span<const double> x,
                              std::size_t num_chunks, std::size_t focus) {
  AF_EXPECT(!x.empty(), "energy_ratio_by_chunks requires non-empty input");
  AF_EXPECT(num_chunks >= 1 && focus < num_chunks,
            "energy_ratio_by_chunks: focus must be < num_chunks");
  const double total = common::energy(x);
  if (total <= 0.0) return 0.0;
  // tsfresh splits into num_chunks contiguous chunks (last may be shorter).
  const std::size_t chunk_len =
      (x.size() + num_chunks - 1) / num_chunks;  // ceil
  const std::size_t begin = focus * chunk_len;
  if (begin >= x.size()) return 0.0;
  const std::size_t end = std::min(begin + chunk_len, x.size());
  return common::energy(x.subspan(begin, end - begin)) / total;
}

namespace {

/// 3×3 Gaussian elimination mirroring common::solve_linear step for step
/// (partial pivoting, 1e-14 singularity threshold, identical operation
/// order) but on stack storage, so adf_statistic stays allocation-free.
/// Mutates a/b; returns false where solve_linear would throw.
bool solve3(double a[3][3], double b[3], double out[3]) {
  constexpr std::size_t n = 3;
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r)
      if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) pivot = r;
    if (std::fabs(a[pivot][col]) < 1e-14) return false;
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a[pivot][c], a[col][c]);
      std::swap(b[pivot], b[col]);
    }
    const double inv = 1.0 / a[col][col];
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a[r][col] * inv;
      if (f == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a[r][c] -= f * a[col][c];
      b[r] -= f * b[col];
    }
  }
  for (std::size_t ri = n; ri-- > 0;) {
    double s = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) s -= a[ri][c] * out[c];
    out[ri] = s / a[ri][ri];
  }
  return true;
}

}  // namespace

double adf_statistic(std::span<const double> x) {
  const std::size_t n = x.size();
  if (n < 6) return 0.0;
  // Regression: Δx[t] = α + γ·x[t-1] + β·Δx[t-1] + ε, t = 2..n-1. The
  // design matrix is never materialized: X'X and X'y accumulate directly on
  // the stack in common::ols's order (upper triangle, row-outer, ridge
  // 1e-8, lower mirrored), which keeps the statistic bit-identical to the
  // earlier Matrix-based formulation.
  const std::size_t rows = n - 2;
  double xtx[3][3] = {{0.0, 0.0, 0.0}, {0.0, 0.0, 0.0}, {0.0, 0.0, 0.0}};
  double xty[3] = {0.0, 0.0, 0.0};
  for (std::size_t t = 2; t < n; ++t) {
    const double row[3] = {1.0, x[t - 1], x[t - 1] - x[t - 2]};
    const double yr = x[t] - x[t - 1];
    for (std::size_t i = 0; i < 3; ++i) {
      xty[i] += row[i] * yr;
      for (std::size_t j = i; j < 3; ++j) xtx[i][j] += row[i] * row[j];
    }
  }
  for (std::size_t i = 0; i < 3; ++i) {
    xtx[i][i] += 1e-8;
    for (std::size_t j = 0; j < i; ++j) xtx[i][j] = xtx[j][i];
  }

  double a[3][3], b[3], beta[3];
  std::copy(&xtx[0][0], &xtx[0][0] + 9, &a[0][0]);
  std::copy(xty, xty + 3, b);
  if (!solve3(a, b, beta)) return 0.0;

  // Residual variance and the standard error of γ (coefficient 1).
  double rss = 0.0;
  for (std::size_t t = 2; t < n; ++t) {
    const double d1 = x[t - 1], d2 = x[t - 1] - x[t - 2];
    const double fit = beta[0] + beta[1] * d1 + beta[2] * d2;
    const double e = (x[t] - x[t - 1]) - fit;
    rss += e * e;
  }
  const double dof = static_cast<double>(rows) - 3.0;
  if (dof <= 0.0) return 0.0;
  const double sigma2 = rss / dof;

  // SE(γ) via the (X'X)^-1 [1][1] entry: solve X'X e1 = unit vector.
  double unit[3] = {0.0, 1.0, 0.0}, col[3];
  std::copy(&xtx[0][0], &xtx[0][0] + 9, &a[0][0]);
  if (!solve3(a, unit, col)) return 0.0;
  const double se = std::sqrt(std::max(sigma2 * col[1], 0.0));
  if (se <= 0.0) return 0.0;
  return beta[1] / se;
}

}  // namespace airfinger::features
