#include "features/measures.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/matrix.hpp"
#include "common/stats.hpp"

namespace airfinger::features {

namespace {

double default_tolerance(std::span<const double> x, double r) {
  if (r >= 0.0) return r;
  return 0.2 * common::stddev(x);
}

/// Counts template matches of length m within tolerance r (Chebyshev
/// distance), excluding self-matches — shared by SampEn.
std::size_t count_matches(std::span<const double> x, unsigned m, double r) {
  const std::size_t n = x.size();
  if (n < m) return 0;
  const std::size_t templates = n - m + 1;
  std::size_t count = 0;
  for (std::size_t i = 0; i < templates; ++i) {
    for (std::size_t j = i + 1; j < templates; ++j) {
      bool match = true;
      for (unsigned k = 0; k < m && match; ++k)
        match = std::fabs(x[i + k] - x[j + k]) <= r;
      if (match) ++count;
    }
  }
  return count;
}

}  // namespace

double sample_entropy(std::span<const double> x, unsigned m, double r) {
  const std::size_t n = x.size();
  if (n <= m + 1) return 0.0;
  const double tol = default_tolerance(x, r);
  if (tol <= 0.0) return 0.0;  // constant signal: perfectly regular
  const auto b = static_cast<double>(count_matches(x, m, tol));
  const auto a = static_cast<double>(count_matches(x, m + 1, tol));
  if (b == 0.0) return 0.0;  // no templates match at length m either
  if (a == 0.0) {
    // Convention: cap at the information content of one match among all
    // possible pairs, keeping the feature finite.
    const double pairs = static_cast<double>(n - m) *
                         static_cast<double>(n - m - 1) / 2.0;
    return std::log(std::max(pairs, 2.0));
  }
  return -std::log(a / b);
}

double approximate_entropy(std::span<const double> x, unsigned m, double r) {
  const std::size_t n = x.size();
  if (n <= m + 1) return 0.0;
  const double tol = default_tolerance(x, r);
  if (tol <= 0.0) return 0.0;

  auto phi = [&](unsigned mm) {
    const std::size_t templates = n - mm + 1;
    double acc = 0.0;
    for (std::size_t i = 0; i < templates; ++i) {
      std::size_t count = 0;
      for (std::size_t j = 0; j < templates; ++j) {
        bool match = true;
        for (unsigned k = 0; k < mm && match; ++k)
          match = std::fabs(x[i + k] - x[j + k]) <= tol;
        if (match) ++count;  // includes the self-match, per ApEn definition
      }
      acc += std::log(static_cast<double>(count) /
                      static_cast<double>(templates));
    }
    return acc / static_cast<double>(templates);
  };
  return phi(m) - phi(m + 1);
}

double cid_ce(std::span<const double> x, bool normalize) {
  if (x.size() < 2) return 0.0;
  std::vector<double> v(x.begin(), x.end());
  if (normalize) v = common::znormalize(v);
  double s = 0.0;
  for (std::size_t i = 1; i < v.size(); ++i) {
    const double d = v[i] - v[i - 1];
    s += d * d;
  }
  return std::sqrt(s);
}

double c3(std::span<const double> x, std::size_t lag) {
  AF_EXPECT(lag >= 1, "c3 requires lag >= 1");
  if (x.size() <= 2 * lag) return 0.0;
  double s = 0.0;
  const std::size_t n = x.size() - 2 * lag;
  for (std::size_t i = 0; i < n; ++i)
    s += x[i + 2 * lag] * x[i + lag] * x[i];
  return s / static_cast<double>(n);
}

double time_reversal_asymmetry(std::span<const double> x, std::size_t lag) {
  AF_EXPECT(lag >= 1, "time_reversal_asymmetry requires lag >= 1");
  if (x.size() <= 2 * lag) return 0.0;
  double s = 0.0;
  const std::size_t n = x.size() - 2 * lag;
  for (std::size_t i = 0; i < n; ++i) {
    const double a = x[i + 2 * lag], b = x[i + lag], c = x[i];
    s += a * a * b - b * c * c;
  }
  return s / static_cast<double>(n);
}

double energy_ratio_by_chunks(std::span<const double> x,
                              std::size_t num_chunks, std::size_t focus) {
  AF_EXPECT(!x.empty(), "energy_ratio_by_chunks requires non-empty input");
  AF_EXPECT(num_chunks >= 1 && focus < num_chunks,
            "energy_ratio_by_chunks: focus must be < num_chunks");
  const double total = common::energy(x);
  if (total <= 0.0) return 0.0;
  // tsfresh splits into num_chunks contiguous chunks (last may be shorter).
  const std::size_t chunk_len =
      (x.size() + num_chunks - 1) / num_chunks;  // ceil
  const std::size_t begin = focus * chunk_len;
  if (begin >= x.size()) return 0.0;
  const std::size_t end = std::min(begin + chunk_len, x.size());
  return common::energy(x.subspan(begin, end - begin)) / total;
}

double adf_statistic(std::span<const double> x) {
  const std::size_t n = x.size();
  if (n < 6) return 0.0;
  // Regression: Δx[t] = α + γ·x[t-1] + β·Δx[t-1] + ε, t = 2..n-1.
  const std::size_t rows = n - 2;
  common::Matrix design(rows, 3);
  std::vector<double> y(rows);
  for (std::size_t t = 2; t < n; ++t) {
    const std::size_t r = t - 2;
    design(r, 0) = 1.0;
    design(r, 1) = x[t - 1];
    design(r, 2) = x[t - 1] - x[t - 2];
    y[r] = x[t] - x[t - 1];
  }
  std::vector<double> beta;
  try {
    beta = common::ols(design, y, 1e-8);
  } catch (const NumericError&) {
    return 0.0;
  }
  // Residual variance and the standard error of γ (coefficient 1).
  double rss = 0.0;
  for (std::size_t r = 0; r < rows; ++r) {
    const double fit = beta[0] + beta[1] * design(r, 1) +
                       beta[2] * design(r, 2);
    const double e = y[r] - fit;
    rss += e * e;
  }
  const double dof = static_cast<double>(rows) - 3.0;
  if (dof <= 0.0) return 0.0;
  const double sigma2 = rss / dof;

  // SE(γ) via the (X'X)^-1 [1][1] entry: solve X'X e1 = unit vector.
  common::Matrix xtx(3, 3);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t i = 0; i < 3; ++i)
      for (std::size_t j = 0; j < 3; ++j)
        xtx(i, j) += design(r, i) * design(r, j);
  for (std::size_t i = 0; i < 3; ++i) xtx(i, i) += 1e-8;
  std::vector<double> unit{0.0, 1.0, 0.0};
  std::vector<double> col;
  try {
    col = common::solve_linear(xtx, unit);
  } catch (const NumericError&) {
    return 0.0;
  }
  const double se = std::sqrt(std::max(sigma2 * col[1], 0.0));
  if (se <= 0.0) return 0.0;
  return beta[1] / se;
}

}  // namespace airfinger::features
