// The feature bank: every Table I feature family, evaluated on a segmented
// multi-channel ΔRSS² window.
//
// Views (this is what makes the features robust to individual diversity and
// gesture inconsistency, Sec. IV-C-1):
//   - *shape features* are computed on a canonical form of the summed
//     energy — log1p-compressed (ΔRSS² is heavy-tailed), linearly resampled
//     to a fixed length, and z-normalized — so finger speed, standoff
//     distance, and amplitude do not leak absolute values;
//   - *envelope features* describe the burst structure of the smoothed
//     energy (stroke counts, nulls, periodicity) that separates cyclic
//     gestures from single sweeps and single from double gestures;
//   - *cross-channel features* capture the spatial structure across the
//     photodiodes (energy shares, asymmetry sweep, inter-channel
//     correlations) — the information ZEBRA uses for direction;
//   - *scale features* (length, absolute energy, peak level) are kept but
//     log-compressed: duration separates double gestures from single ones,
//     which is genuinely discriminative, while log compression bounds the
//     influence of between-user amplitude differences.
//
// The 9 bold Table I features (reused by the interference filter of
// Sec. IV-F) are exposed through interference_indices(). The paper's PDF
// bolding did not survive text extraction, so the subset is chosen from the
// named families; the substitution is documented in DESIGN.md.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "features/workspace.hpp"

namespace airfinger::features {

/// Tunable structure of the bank (defaults mirror tsfresh's defaults where
/// the paper does not specify).
struct FeatureBankOptions {
  std::size_t canonical_length = 96;  ///< Resampled segment length.
  std::size_t fft_coefficients = 8;   ///< |FFT| coefficients kept.
  std::vector<double> cwt_widths{2.0, 5.0, 10.0, 20.0};
  std::size_t acf_lags = 5;
  std::size_t pacf_lags = 5;
  std::size_t ar_order = 4;
  std::vector<double> quantiles{0.1, 0.25, 0.75, 0.9};
  std::vector<std::size_t> peak_supports{1, 3, 5};
  std::size_t energy_chunks = 5;
  std::vector<std::size_t> c3_lags{1, 2, 3};
  std::vector<std::size_t> tra_lags{1, 2};  ///< time-reversal asymmetry
  std::size_t envelope_smooth = 7;  ///< MA window (canonical samples).
  /// Cross-channel block (requires >= 2 channels at extraction; zeros for
  /// single-channel input).
  bool cross_channel = true;
  /// Cost bound for the cross-channel block, whose smoothing window grows
  /// with the segment (making it O(n²/16)): segments longer than this are
  /// decimated to exactly this many samples (deterministic linear
  /// resampling, every channel) before the block runs, turning an
  /// unbounded quadratic into a constant. Segments at or under the cap —
  /// every training/evaluation gesture — are bit-identical to the uncapped
  /// path; only multi-second segments (long scrolls) trade spatial
  /// resolution the block's scale-free ratios don't need. 0 disables the
  /// cap.
  std::size_t cross_channel_cap = 384;
};

/// Stateless (after construction) feature evaluator.
class FeatureBank {
 public:
  explicit FeatureBank(FeatureBankOptions options = {});

  std::size_t feature_count() const { return names_.size(); }
  const std::vector<std::string>& names() const { return names_; }
  const FeatureBankOptions& options() const { return options_; }

  /// Indices of the 9 interference-filter features (Table I bold subset).
  const std::vector<std::size_t>& interference_indices() const {
    return interference_indices_;
  }

  /// Evaluates all features on a multi-channel ΔRSS² window (channels must
  /// be equal length >= 4; typically the segment slice of each photodiode).
  std::vector<double> extract(
      std::span<const std::span<const double>> channels) const;

  /// Single-channel convenience (cross-channel block evaluates to zeros).
  std::vector<double> extract(std::span<const double> segment) const;

  /// extract() writing into caller storage of size feature_count(), with
  /// all working arrays drawn from `workspace`. Once the workspace arena
  /// reaches its high-water mark no heap allocation happens; outputs are
  /// bit-identical to extract().
  void extract_into(std::span<const std::span<const double>> channels,
                    Workspace& workspace, std::span<double> out) const;

 private:
  FeatureBankOptions options_;
  std::vector<std::string> names_;
  std::vector<std::size_t> interference_indices_;
  /// Ricker wavelets sampled once per configured CWT width at
  /// construction — extract_into() convolves with these instead of
  /// re-evaluating the transcendental-heavy wavelet every frame.
  std::vector<std::vector<double>> cwt_wavelets_;
};

}  // namespace airfinger::features
