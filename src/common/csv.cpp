#include "common/csv.hpp"

#include <stdexcept>

#include "common/error.hpp"

namespace airfinger::common {

std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string csv_line(const std::vector<std::string>& fields) {
  std::string line;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) line += ',';
    line += csv_escape(fields[i]);
  }
  return line;
}

std::vector<std::string> csv_split(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c != '\r') {
      current += c;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

CsvWriter::CsvWriter(const std::string& path,
                     std::vector<std::string> header)
    : out_(path), arity_(header.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  AF_EXPECT(arity_ > 0, "CsvWriter requires at least one column");
  out_ << csv_line(header) << "\n";
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  AF_EXPECT(fields.size() == arity_, "CsvWriter row arity mismatch");
  out_ << csv_line(fields) << "\n";
  ++rows_;
}

}  // namespace airfinger::common
