#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace airfinger::common {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  AF_EXPECT(!headers_.empty(), "Table requires at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  AF_EXPECT(cells.size() == headers_.size(),
            "Table row arity must match headers");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << v;
  return os.str();
}

std::string Table::pct(double ratio, int decimals) {
  return num(ratio * 100.0, decimals) + "%";
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c)
      os << " " << std::setw(static_cast<int>(widths[c])) << std::left
         << row[c] << " |";
    os << "\n";
  };
  auto print_sep = [&] {
    os << "+";
    for (std::size_t w : widths) os << std::string(w + 2, '-') << "+";
    os << "\n";
  };

  print_sep();
  print_row(headers_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

void print_banner(std::ostream& os, const std::string& title) {
  os << "\n== " << title << " ==\n";
}

}  // namespace airfinger::common
