// AVX2 backend of the AF_SIMD kernel layer (4 lanes).
//
// This translation unit alone is compiled with -mavx2 — deliberately NOT
// -mfma: with FMA available the compiler could contract the mul+add
// sequences in the generic templates into fused operations, which round
// once instead of twice and would break the bit-identity contract against
// the scalar reference. Runtime dispatch (simd.cpp) guarantees this code
// only runs on CPUs reporting AVX2.
//
// Beyond the generic templates, AVX2 supplies the two kernels that need
// its specific instructions: the radix-2 FFT stage (two complex
// butterflies per vector via addsub) and the batched forest descent (four
// trees per lane-group via masked gathers).
#include "common/simd.hpp"

#if AF_SIMD_ENABLED && (defined(__x86_64__) || defined(_M_X64))

#include <immintrin.h>

#include "common/simd_kernels.inl"

namespace airfinger::simd::detail {

namespace {

struct Avx2Ops {
  static constexpr std::size_t kW = 4;
  using V = __m256d;
  static V load(const double* p) { return _mm256_loadu_pd(p); }
  static void store(double* p, V v) { _mm256_storeu_pd(p, v); }
  static V broadcast(double v) { return _mm256_set1_pd(v); }
  static V zero() { return _mm256_setzero_pd(); }
  static V add(V a, V b) { return _mm256_add_pd(a, b); }
  static V sub(V a, V b) { return _mm256_sub_pd(a, b); }
  static V mul(V a, V b) { return _mm256_mul_pd(a, b); }
  static V div(V a, V b) { return _mm256_div_pd(a, b); }
  static unsigned gt_mask(V a, V b) {
    return static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_cmp_pd(a, b, _CMP_GT_OQ)));
  }
  static unsigned ge_mask(V a, V b) {
    return static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_cmp_pd(a, b, _CMP_GE_OQ)));
  }
  static unsigned within_mask(V a, V b, V r) {
    const V diff = _mm256_sub_pd(a, b);
    const V magnitude = _mm256_andnot_pd(_mm256_set1_pd(-0.0), diff);
    return static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_cmp_pd(magnitude, r, _CMP_LE_OQ)));
  }
};

// One FFT stage, two interleaved complex values per 256-bit vector.
// Complex product (ar,ai)*(br,bi): even lanes ar*br - ai*bi via the
// subtract half of addsub, odd lanes ai*br + ar*bi via the add half —
// the same two products and one add/sub as the scalar reference (IEEE
// addition is commutative, so ai*br + ar*bi == ar*bi + ai*br bitwise).
void avx2_fft_stage(double* reim, std::size_t n, std::size_t len,
                    const double* tw) {
  const std::size_t half = len / 2;
  for (std::size_t i = 0; i < n; i += len) {
    double* ub = reim + 2 * i;
    double* vb = reim + 2 * (i + half);
    std::size_t k = 0;
    for (; k + 2 <= half; k += 2) {
      const __m256d u = _mm256_loadu_pd(ub + 2 * k);
      const __m256d v = _mm256_loadu_pd(vb + 2 * k);
      const __m256d w = _mm256_loadu_pd(tw + 2 * k);
      const __m256d wr = _mm256_movedup_pd(w);       // (br0,br0,br1,br1)
      const __m256d wi = _mm256_permute_pd(w, 0xF);  // (bi0,bi0,bi1,bi1)
      const __m256d vs = _mm256_permute_pd(v, 0x5);  // (ai0,ar0,ai1,ar1)
      const __m256d vw =
          _mm256_addsub_pd(_mm256_mul_pd(v, wr), _mm256_mul_pd(vs, wi));
      _mm256_storeu_pd(ub + 2 * k, _mm256_add_pd(u, vw));
      _mm256_storeu_pd(vb + 2 * k, _mm256_sub_pd(u, vw));
    }
    for (; k < half; ++k)
      scalar_butterfly_one(ub + 2 * k, vb + 2 * k, tw[2 * k], tw[2 * k + 1]);
  }
}

// Forest descent deliberately has no gather variant. A masked
// _mm256_mask_i32gather_pd version was measured SLOWER than the serial
// scalar walk on this generation (each tree level chains four dependent
// gathers — feature, x, threshold, child — and the lane-group moves in
// lockstep at the deepest tree's depth). interleaved_forest_leaves keeps
// the walks in scalar registers and lets the out-of-order core overlap
// them instead; see simd_kernels.inl and DESIGN.md §15.

}  // namespace

const Kernels& avx2_table() {
  static const Kernels table = {
      Tier::kAVX2,
      &accumulate_v<Avx2Ops>,
      &moving_average_range_v<Avx2Ops>,
      &acf_numerators_v<Avx2Ops>,
      &conv_clipped_v<Avx2Ops>,
      &count_matches_v<Avx2Ops>,
      &apen_phi_v<Avx2Ops>,
      &entropy_counts_v<Avx2Ops>,
      &count_peaks_at_least_v<Avx2Ops>,
      &goertzel_batch_v<Avx2Ops>,
      &avx2_fft_stage,
      &interleaved_forest_leaves,
      &sum_fast_v<Avx2Ops>,
      &dot_fast_v<Avx2Ops>,
  };
  return table;
}

}  // namespace airfinger::simd::detail

#endif  // AF_SIMD_ENABLED && x86-64
