#include "common/rng.hpp"

#include <cmath>

#include "common/error.hpp"

namespace airfinger::common {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Expand the seed through splitmix64 as recommended by the xoshiro authors;
  // guarantees a nonzero state for any seed.
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_raw() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::operator()() { return next_raw(); }

double Rng::uniform() {
  // 53 top bits → double in [0,1) with full mantissa resolution.
  return static_cast<double>(next_raw() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  AF_EXPECT(lo <= hi, "uniform(lo,hi) requires lo <= hi");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::below(std::uint64_t n) {
  AF_EXPECT(n > 0, "below(n) requires n > 0");
  // Lemire-style rejection to remove modulo bias.
  const std::uint64_t threshold = (~n + 1) % n;  // = 2^64 mod n
  for (;;) {
    const std::uint64_t r = next_raw();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  AF_EXPECT(lo <= hi, "range(lo,hi) requires lo <= hi");
  const auto span =
      static_cast<std::uint64_t>(hi - lo) + 1;  // safe: hi >= lo
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  has_spare_normal_ = true;
  return u * factor;
}

double Rng::normal(double mean, double sd) {
  AF_EXPECT(sd >= 0.0, "normal(mean,sd) requires sd >= 0");
  return mean + sd * normal();
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

Rng Rng::split(std::uint64_t stream_id) const {
  // Key material: the parent's full state folded to 64 bits, decorrelated
  // from the id by running each through an independent splitmix64 chain.
  // splitmix64 is a bijection of its advanced state, so distinct ids can
  // never collapse to the same child seed for a given parent state.
  std::uint64_t state_key =
      s_[0] ^ rotl(s_[1], 17) ^ rotl(s_[2], 29) ^ rotl(s_[3], 41);
  std::uint64_t id_key = stream_id ^ 0xD1B54A32D192ED03ULL;
  return Rng(splitmix64(state_key) ^ splitmix64(id_key));
}

Rng Rng::split() {
  // Mix the current state with a fork counter through splitmix64 so child
  // streams are decorrelated from the parent and from each other.
  std::uint64_t mix = s_[0] ^ rotl(s_[2], 29) ^ (0xA3EC647659359ACDULL +
                                                 ++fork_counter_);
  return Rng(splitmix64(mix));
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  shuffle(idx);
  return idx;
}

}  // namespace airfinger::common
