#include "common/cli.hpp"

#include <iostream>
#include <sstream>

#include "common/error.hpp"

namespace airfinger::common {

Cli::Cli(std::string program_name, std::string description)
    : program_(std::move(program_name)), description_(std::move(description)) {}

void Cli::add_flag(const std::string& name, const std::string& default_value,
                   const std::string& help) {
  AF_EXPECT(!flags_.count(name), "duplicate flag: " + name);
  flags_[name] = Flag{default_value, default_value, help};
  order_.push_back(name);
}

bool Cli::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << usage();
      return false;
    }
    AF_EXPECT(arg.rfind("--", 0) == 0, "expected --flag, got: " + arg);
    arg = arg.substr(2);
    std::string name, value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      auto it = flags_.find(name);
      AF_EXPECT(it != flags_.end(), "unknown flag: --" + name);
      const bool is_bool = it->second.default_value == "true" ||
                           it->second.default_value == "false";
      if (is_bool) {
        value = "true";
      } else {
        AF_EXPECT(i + 1 < argc, "flag --" + name + " expects a value");
        value = argv[++i];
      }
    }
    auto it = flags_.find(name);
    AF_EXPECT(it != flags_.end(), "unknown flag: --" + name);
    it->second.value = value;
  }
  return true;
}

std::string Cli::get(const std::string& name) const {
  auto it = flags_.find(name);
  AF_EXPECT(it != flags_.end(), "unregistered flag: " + name);
  return it->second.value;
}

std::int64_t Cli::get_int(const std::string& name) const {
  const std::string v = get(name);
  try {
    return std::stoll(v);
  } catch (const std::exception&) {
    throw PreconditionError("flag --" + name + " is not an integer: " + v);
  }
}

double Cli::get_double(const std::string& name) const {
  const std::string v = get(name);
  try {
    return std::stod(v);
  } catch (const std::exception&) {
    throw PreconditionError("flag --" + name + " is not a number: " + v);
  }
}

bool Cli::get_bool(const std::string& name) const {
  const std::string v = get(name);
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  throw PreconditionError("flag --" + name + " is not a boolean: " + v);
}

std::string Cli::usage() const {
  std::ostringstream os;
  os << program_;
  if (!description_.empty()) os << " — " << description_;
  os << "\n\nFlags:\n";
  for (const auto& name : order_) {
    const auto& f = flags_.at(name);
    os << "  --" << name << " (default: " << f.default_value << ")\n      "
       << f.help << "\n";
  }
  return os.str();
}

}  // namespace airfinger::common
