// Kernel bodies shared by every AF_SIMD backend (DESIGN.md §15).
//
// Two families live here, both in airfinger::simd::detail:
//
//   scalar_*   — the authoritative scalar reference implementations. These
//                are the exact loops that used to be open-coded in
//                dsp/filters.cpp, dsp/autocorr.cpp, dsp/wavelet.cpp,
//                features/measures.cpp and ml/compiled_forest.cpp; the
//                scalar dispatch table is built from them, and the vector
//                templates reuse them for edges and tails.
//
//   *_v<Ops>   — lane-group templates instantiated by each vector backend
//                with its Ops pack (kW lanes, load/store/add/mul/...,
//                movemask-style predicates). Every template lanes across
//                INDEPENDENT outputs so each lane runs the scalar
//                accumulation order unchanged, or counts integers, which
//                keeps the results bit-identical to scalar_* (§15 lays
//                out the argument per kernel). Masked/zero-padded tails
//                are never used for float accumulation — a masked +0.0
//                would flip a -0.0 sum — so tails run the scalar code.
//
// This file is included by simd.cpp and by each simd_<arch>.cpp; all
// definitions are inline or templates.
#pragma once

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>

namespace airfinger::simd::detail {

// ---------------------------------------------------------------------------
// Scalar reference kernels.
// ---------------------------------------------------------------------------

inline void scalar_accumulate(double* acc, const double* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) acc[i] += x[i];
}

inline void scalar_moving_average_one(const double* x, std::size_t n,
                                      std::size_t half, std::size_t i,
                                      double* out) {
  const std::size_t lo = i >= half ? i - half : 0;
  const std::size_t hi = std::min(i + half + 1, n);
  double s = 0.0;
  for (std::size_t j = lo; j < hi; ++j) s += x[j];
  out[i] = s / static_cast<double>(hi - lo);
}

inline void scalar_moving_average_range(const double* x, std::size_t n,
                                        std::size_t w, std::size_t from,
                                        std::size_t to, double* out) {
  const std::size_t half = w / 2;
  for (std::size_t i = from; i < to; ++i)
    scalar_moving_average_one(x, n, half, i, out);
}

inline void scalar_acf_numerators(const double* d, std::size_t n,
                                  std::size_t lag0, std::size_t count,
                                  double* out) {
  for (std::size_t j = 0; j < count; ++j) {
    const std::size_t lag = lag0 + j;
    double s = 0.0;
    for (std::size_t i = 0; i + lag < n; ++i) s += d[i] * d[i + lag];
    out[j] = s;
  }
}

// Valid tap range of output i in the clipped convolution: taps k with
// 0 <= i + k - half < n. Iterating only the valid ks visits the same
// multiplications in the same order as the historical skip-with-continue
// loop, so the tightened bounds are bit-identical.
inline std::size_t conv_k_lo(std::size_t i, std::size_t half) {
  return half > i ? half - i : 0;
}
inline std::size_t conv_k_hi(std::size_t i, std::size_t n, std::size_t half) {
  return std::min(2 * half + 1, n + half - i);
}

inline void scalar_conv_clipped_one(const double* x, std::size_t n,
                                    const double* w, std::size_t half,
                                    std::size_t i, double* out) {
  const std::size_t k1 = conv_k_hi(i, n, half);
  double acc = 0.0;
  for (std::size_t k = conv_k_lo(i, half); k < k1; ++k)
    acc += x[i + k - half] * w[k];
  out[i] = acc;
}

inline void scalar_conv_clipped(const double* x, std::size_t n,
                                const double* w, std::size_t half,
                                double* out) {
  for (std::size_t i = 0; i < n; ++i)
    scalar_conv_clipped_one(x, n, w, half, i, out);
}

inline bool scalar_template_match(const double* x, std::size_t i,
                                  std::size_t j, std::size_t m, double r) {
  bool match = true;
  for (std::size_t k = 0; k < m && match; ++k)
    match = std::fabs(x[i + k] - x[j + k]) <= r;
  return match;
}

inline std::size_t scalar_count_matches(const double* x, std::size_t n,
                                        std::size_t m, double r) {
  if (n < m) return 0;
  const std::size_t templates = n - m + 1;
  std::size_t count = 0;
  for (std::size_t i = 0; i < templates; ++i)
    for (std::size_t j = i + 1; j < templates; ++j)
      if (scalar_template_match(x, i, j, m, r)) ++count;
  return count;
}

inline double scalar_apen_phi(const double* x, std::size_t n, std::size_t m,
                              double r) {
  const std::size_t templates = n - m + 1;
  double acc = 0.0;
  for (std::size_t i = 0; i < templates; ++i) {
    std::size_t count = 0;
    for (std::size_t j = 0; j < templates; ++j)
      if (scalar_template_match(x, i, j, m, r)) ++count;
    acc += std::log(static_cast<double>(count) /
                    static_cast<double>(templates));
  }
  return acc / static_cast<double>(templates);
}

inline std::size_t scalar_count_peaks_at_least(const double* x, std::size_t n,
                                               std::size_t support,
                                               double level) {
  std::size_t count = 0;
  if (n < 2 * support + 1) return count;
  for (std::size_t i = support; i + support < n; ++i) {
    bool is_peak = true;
    for (std::size_t k = 1; k <= support && is_peak; ++k)
      is_peak = x[i] > x[i - k] && x[i] > x[i + k];
    if (is_peak && x[i] >= level) ++count;
  }
  return count;
}

inline void scalar_goertzel_batch(const double* x, std::size_t n,
                                  const double* coeff, std::size_t k,
                                  double* s1, double* s2) {
  for (std::size_t f = 0; f < k; ++f) {
    const double c = coeff[f];
    double a = 0.0, b = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double s0 = x[i] + c * a - b;
      b = a;
      a = s0;
    }
    s1[f] = a;
    s2[f] = b;
  }
}

// One complex butterfly: (vr, vi) = v * w with the compiler's finite-path
// complex-multiply order (ac - bd, ad + bc), then u +- v.
inline void scalar_butterfly_one(double* u, double* v, double wr, double wi) {
  const double vr = v[0] * wr - v[1] * wi;
  const double vi = v[0] * wi + v[1] * wr;
  const double ur = u[0], ui = u[1];
  u[0] = ur + vr;
  u[1] = ui + vi;
  v[0] = ur - vr;
  v[1] = ui - vi;
}

inline void scalar_fft_stage(double* reim, std::size_t n, std::size_t len,
                             const double* tw) {
  const std::size_t half = len / 2;
  for (std::size_t i = 0; i < n; i += len)
    for (std::size_t k = 0; k < half; ++k)
      scalar_butterfly_one(reim + 2 * (i + k), reim + 2 * (i + k + half),
                           tw[2 * k], tw[2 * k + 1]);
}

inline void scalar_forest_leaves(const std::int32_t* feature,
                                 const double* threshold,
                                 const std::int32_t* child, const double* x,
                                 std::int32_t* idx, std::size_t count) {
  for (std::size_t t = 0; t < count; ++t) {
    auto i = static_cast<std::size_t>(idx[t]);
    std::int32_t f = feature[i];
    while (f >= 0) {
      i = static_cast<std::size_t>(child[i]) +
          (x[static_cast<std::size_t>(f)] < threshold[i] ? 0u : 1u);
      f = feature[i];
    }
    idx[t] = static_cast<std::int32_t>(i);
  }
}

// Descends four trees at once in software-interleaved scalar code. The
// four walks are data-independent, so the out-of-order core overlaps
// their dependent node loads instead of serializing one pointer-chase
// per tree — measured ~2x over the serial walk and ~2.4x over an AVX2
// masked-gather descent on the reference host (the gathers just stack
// four dependent gather latencies per level; DESIGN.md §15). Leaf
// indices are integers, so any descent order is bit-identical; every
// vector tier shares this body.
inline void interleaved_forest_leaves(const std::int32_t* feature,
                                      const double* threshold,
                                      const std::int32_t* child,
                                      const double* x, std::int32_t* idx,
                                      std::size_t count) {
  std::size_t t = 0;
  for (; t + 4 <= count; t += 4) {
    auto i0 = static_cast<std::size_t>(idx[t]);
    auto i1 = static_cast<std::size_t>(idx[t + 1]);
    auto i2 = static_cast<std::size_t>(idx[t + 2]);
    auto i3 = static_cast<std::size_t>(idx[t + 3]);
    std::int32_t f0 = feature[i0], f1 = feature[i1], f2 = feature[i2],
                 f3 = feature[i3];
    // The AND of the four feature words has the sign bit set only once
    // every walk has reached a leaf (feature < 0), so this loop runs to
    // the deepest walk while finished lanes idle on their leaf.
    while ((f0 & f1 & f2 & f3) >= 0) {
      if (f0 >= 0) {
        i0 = static_cast<std::size_t>(child[i0]) +
             (x[static_cast<std::size_t>(f0)] < threshold[i0] ? 0u : 1u);
        f0 = feature[i0];
      }
      if (f1 >= 0) {
        i1 = static_cast<std::size_t>(child[i1]) +
             (x[static_cast<std::size_t>(f1)] < threshold[i1] ? 0u : 1u);
        f1 = feature[i1];
      }
      if (f2 >= 0) {
        i2 = static_cast<std::size_t>(child[i2]) +
             (x[static_cast<std::size_t>(f2)] < threshold[i2] ? 0u : 1u);
        f2 = feature[i2];
      }
      if (f3 >= 0) {
        i3 = static_cast<std::size_t>(child[i3]) +
             (x[static_cast<std::size_t>(f3)] < threshold[i3] ? 0u : 1u);
        f3 = feature[i3];
      }
    }
    idx[t] = static_cast<std::int32_t>(i0);
    idx[t + 1] = static_cast<std::int32_t>(i1);
    idx[t + 2] = static_cast<std::int32_t>(i2);
    idx[t + 3] = static_cast<std::int32_t>(i3);
  }
  scalar_forest_leaves(feature, threshold, child, x, idx + t, count - t);
}

inline void scalar_entropy_counts(const double* x, std::size_t n,
                                  std::size_t m, double r, std::uint32_t* cm,
                                  std::uint32_t* cm1, std::size_t* pairs_m,
                                  std::size_t* pairs_m1) {
  const std::size_t tm = n - m + 1;   // templates of length m
  const std::size_t tm1 = n - m;      // templates of length m + 1
  for (std::size_t i = 0; i < tm; ++i) cm[i] = 1;  // ApEn self-match
  for (std::size_t i = 0; i < tm1; ++i) cm1[i] = 1;
  std::size_t pm = 0, pm1 = 0;
  for (std::size_t i = 0; i < tm; ++i)
    for (std::size_t j = i + 1; j < tm; ++j)
      if (scalar_template_match(x, i, j, m, r)) {
        ++pm;
        ++cm[i];
        ++cm[j];
        // A length-(m+1) match is a length-m match whose final offset is
        // also within r — defined only when both templates still fit
        // (j < tm1 implies i < tm1 since i < j).
        if (j < tm1 && std::fabs(x[i + m] - x[j + m]) <= r) {
          ++pm1;
          ++cm1[i];
          ++cm1[j];
        }
      }
  *pairs_m = pm;
  *pairs_m1 = pm1;
}

inline double scalar_sum_fast(const double* x, std::size_t n) {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) s += x[i];
  return s;
}

inline double scalar_dot_fast(const double* a, const double* b,
                              std::size_t n) {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) s += a[i] * b[i];
  return s;
}

// ---------------------------------------------------------------------------
// Generic lane-group templates over an Ops pack:
//   kW lanes of double in Ops::V; load/store/broadcast/zero;
//   add/sub/mul/div; gt_mask/ge_mask/within_mask returning a kW-bit
//   movemask (bit l set when lane l satisfies the predicate).
// ---------------------------------------------------------------------------

template <class O>
void accumulate_v(double* acc, const double* x, std::size_t n) {
  constexpr std::size_t W = O::kW;
  std::size_t i = 0;
  for (; i + W <= n; i += W)
    O::store(acc + i, O::add(O::load(acc + i), O::load(x + i)));
  for (; i < n; ++i) acc[i] += x[i];
}

template <class O>
void moving_average_range_v(const double* x, std::size_t n, std::size_t w,
                            std::size_t from, std::size_t to, double* out) {
  constexpr std::size_t W = O::kW;
  const std::size_t half = w / 2;
  std::size_t i = from;
  // Left edge: clipped windows, scalar.
  for (const std::size_t lead = std::min(to, std::min(half, n)); i < lead; ++i)
    scalar_moving_average_one(x, n, half, i, out);
  // Interior: every lane owns one output position whose full window
  // [i-half, i+half] is in range; per-lane accumulation runs the scalar
  // left-to-right order.
  if (n > half) {
    const std::size_t hi = std::min(to, n - half);
    const std::size_t taps = 2 * half + 1;
    const typename O::V count = O::broadcast(static_cast<double>(taps));
    // Four output groups in flight: one group's window sum is a serial
    // add chain (every step waits on the previous add), which leaves the
    // FP adder idle most cycles at the window widths the callers use.
    // Independent chains fill those slots; each output still accumulates
    // its own window left-to-right, so the bits are the scalar bits.
    for (; i + 4 * W <= hi; i += 4 * W) {
      typename O::V a0 = O::zero(), a1 = O::zero(), a2 = O::zero(),
                    a3 = O::zero();
      const double* base = x + (i - half);
      for (std::size_t t = 0; t < taps; ++t) {
        a0 = O::add(a0, O::load(base + t));
        a1 = O::add(a1, O::load(base + W + t));
        a2 = O::add(a2, O::load(base + 2 * W + t));
        a3 = O::add(a3, O::load(base + 3 * W + t));
      }
      O::store(out + i, O::div(a0, count));
      O::store(out + i + W, O::div(a1, count));
      O::store(out + i + 2 * W, O::div(a2, count));
      O::store(out + i + 3 * W, O::div(a3, count));
    }
    for (; i + W <= hi; i += W) {
      typename O::V acc = O::zero();
      const double* base = x + (i - half);
      for (std::size_t t = 0; t < taps; ++t)
        acc = O::add(acc, O::load(base + t));
      O::store(out + i, O::div(acc, count));
    }
    for (; i < hi; ++i) scalar_moving_average_one(x, n, half, i, out);
  }
  // Right edge: clipped windows, scalar.
  for (; i < to; ++i) scalar_moving_average_one(x, n, half, i, out);
}

template <class O>
void acf_numerators_v(const double* d, std::size_t n, std::size_t lag0,
                      std::size_t count, double* out) {
  constexpr std::size_t W = O::kW;
  std::size_t j = 0;
  for (; j + W <= count; j += W) {
    // Lane l sums d[i] * d[i + L0 + l]; the first `shared` iterations are
    // valid for every lane and run vectorized, the per-lane remainder
    // continues in the same ascending-i order.
    const std::size_t L0 = lag0 + j;
    const std::size_t Lmax = L0 + W - 1;
    const std::size_t shared = n > Lmax ? n - Lmax : 0;
    typename O::V acc = O::zero();
    for (std::size_t i = 0; i < shared; ++i)
      acc = O::add(acc, O::mul(O::broadcast(d[i]), O::load(d + i + L0)));
    double lanes[W];
    O::store(lanes, acc);
    for (std::size_t l = 0; l < W; ++l) {
      const std::size_t lag = L0 + l;
      double s = lanes[l];
      for (std::size_t i = shared; i + lag < n; ++i) s += d[i] * d[i + lag];
      out[j + l] = s;
    }
  }
  if (j < count) scalar_acf_numerators(d, n, lag0 + j, count - j, out + j);
}

template <class O>
void conv_clipped_v(const double* x, std::size_t n, const double* w,
                    std::size_t half, double* out) {
  constexpr std::size_t W = O::kW;
  const std::size_t taps = 2 * half + 1;
  std::size_t i0 = 0;
  while (i0 + W <= n) {
    // Fully-interior fast path, four output groups in flight: a group's
    // multiply-accumulate chain is latency-bound exactly like the moving
    // average's, so independent chains quadruple the adder's occupancy.
    // Every lane runs its full tap range [0, taps) ascending with one
    // accumulator — the identical op sequence to the general path below,
    // hence the identical bits.
    if (i0 >= half && i0 + 4 * W + half <= n) {
      typename O::V a0 = O::zero(), a1 = O::zero(), a2 = O::zero(),
                    a3 = O::zero();
      const double* base = x + (i0 - half);
      for (std::size_t k = 0; k < taps; ++k) {
        const typename O::V wk = O::broadcast(w[k]);
        a0 = O::add(a0, O::mul(O::load(base + k), wk));
        a1 = O::add(a1, O::mul(O::load(base + W + k), wk));
        a2 = O::add(a2, O::mul(O::load(base + 2 * W + k), wk));
        a3 = O::add(a3, O::mul(O::load(base + 3 * W + k), wk));
      }
      O::store(out + i0, a0);
      O::store(out + i0 + W, a1);
      O::store(out + i0 + 2 * W, a2);
      O::store(out + i0 + 3 * W, a3);
      i0 += 4 * W;
      continue;
    }
    // General (clipped) path. Shared tap range valid for every lane of a
    // group: conv_k_lo is non-increasing and conv_k_hi non-increasing in
    // i, so lane 0 bounds the left and lane W-1 the right. Leading and
    // trailing clipped taps run scalar per lane in ascending k, the
    // shared middle runs vectorized — per lane that is one accumulator
    // visiting its full tap range left-to-right, the scalar order.
    const auto lead = [&](std::size_t g, std::size_t ks_lo, double* lanes) {
      for (std::size_t l = 0; l < W; ++l) {
        const std::size_t i = g + l;
        const std::size_t stop = std::min(ks_lo, conv_k_hi(i, n, half));
        for (std::size_t k = conv_k_lo(i, half); k < stop; ++k)
          lanes[l] += x[i + k - half] * w[k];
      }
    };
    const auto tail = [&](std::size_t g, std::size_t ks, double* lanes) {
      for (std::size_t l = 0; l < W; ++l) {
        const std::size_t i = g + l;
        const std::size_t k1 = conv_k_hi(i, n, half);
        for (std::size_t k = std::max(ks, conv_k_lo(i, half)); k < k1; ++k)
          lanes[l] += x[i + k - half] * w[k];
        out[i] = lanes[l];
      }
    };
    const std::size_t ks_lo = conv_k_lo(i0, half);
    const std::size_t ks_hi = conv_k_hi(i0 + W - 1, n, half);
    const std::size_t ks = ks_hi > ks_lo ? ks_hi : ks_lo;
    double lanes[W] = {};
    lead(i0, ks_lo, lanes);
    // Paired groups: clipped windows (wide CWT wavelets on short canonical
    // segments) never reach the fully-interior fast path above, yet their
    // shared loops are the same latency-bound chain. Walking two adjacent
    // groups' shared ranges in lockstep keeps two chains in flight; each
    // group's own ks order is untouched.
    if (i0 + 2 * W <= n) {
      const std::size_t g1 = i0 + W;
      const std::size_t ks_lo1 = conv_k_lo(g1, half);
      const std::size_t ks_hi1 = conv_k_hi(g1 + W - 1, n, half);
      const std::size_t ks1 = ks_hi1 > ks_lo1 ? ks_hi1 : ks_lo1;
      double lanes1[W] = {};
      lead(g1, ks_lo1, lanes1);
      typename O::V a0 = O::load(lanes);
      typename O::V a1 = O::load(lanes1);
      std::size_t k0 = ks_lo;
      std::size_t k1 = ks_lo1;
      for (; k0 < ks_hi && k1 < ks_hi1; ++k0, ++k1) {
        a0 = O::add(a0,
                    O::mul(O::load(x + (i0 + k0 - half)), O::broadcast(w[k0])));
        a1 = O::add(a1,
                    O::mul(O::load(x + (g1 + k1 - half)), O::broadcast(w[k1])));
      }
      for (; k0 < ks_hi; ++k0)
        a0 = O::add(a0,
                    O::mul(O::load(x + (i0 + k0 - half)), O::broadcast(w[k0])));
      for (; k1 < ks_hi1; ++k1)
        a1 = O::add(a1,
                    O::mul(O::load(x + (g1 + k1 - half)), O::broadcast(w[k1])));
      O::store(lanes, a0);
      O::store(lanes1, a1);
      tail(i0, ks, lanes);
      tail(g1, ks1, lanes1);
      i0 += 2 * W;
      continue;
    }
    if (ks_hi > ks_lo) {
      typename O::V acc = O::load(lanes);
      for (std::size_t k = ks_lo; k < ks_hi; ++k)
        acc = O::add(acc,
                     O::mul(O::load(x + (i0 + k - half)), O::broadcast(w[k])));
      O::store(lanes, acc);
    }
    tail(i0, ks, lanes);
    i0 += W;
  }
  for (; i0 < n; ++i0) scalar_conv_clipped_one(x, n, w, half, i0, out);
}

// Chebyshev template-match mask across W candidate js; match counting is
// integer, hence order-free and exactly equal to the scalar double loop.
template <class O>
unsigned match_mask(const double* x, std::size_t i, std::size_t j,
                    std::size_t m, typename O::V vr) {
  constexpr unsigned full = (1u << O::kW) - 1u;
  unsigned mask = full;
  for (std::size_t k = 0; k < m && mask; ++k)
    mask &= O::within_mask(O::broadcast(x[i + k]), O::load(x + j + k), vr);
  return mask;
}

template <class O>
std::size_t count_matches_v(const double* x, std::size_t n, std::size_t m,
                            double r) {
  if (n < m) return 0;
  constexpr std::size_t W = O::kW;
  const std::size_t templates = n - m + 1;
  const typename O::V vr = O::broadcast(r);
  std::size_t count = 0;
  for (std::size_t i = 0; i < templates; ++i) {
    std::size_t j = i + 1;
    for (; j + W <= templates; j += W)
      count += static_cast<std::size_t>(
          std::popcount(match_mask<O>(x, i, j, m, vr)));
    for (; j < templates; ++j)
      if (scalar_template_match(x, i, j, m, r)) ++count;
  }
  return count;
}

template <class O>
double apen_phi_v(const double* x, std::size_t n, std::size_t m, double r) {
  constexpr std::size_t W = O::kW;
  const std::size_t templates = n - m + 1;
  const typename O::V vr = O::broadcast(r);
  double acc = 0.0;
  for (std::size_t i = 0; i < templates; ++i) {
    std::size_t count = 0;
    std::size_t j = 0;
    for (; j + W <= templates; j += W)
      count += static_cast<std::size_t>(
          std::popcount(match_mask<O>(x, i, j, m, vr)));
    for (; j < templates; ++j)
      if (scalar_template_match(x, i, j, m, r)) ++count;
    acc += std::log(static_cast<double>(count) /
                    static_cast<double>(templates));
  }
  return acc / static_cast<double>(templates);
}

template <class O>
void entropy_counts_v(const double* x, std::size_t n, std::size_t m, double r,
                      std::uint32_t* cm, std::uint32_t* cm1,
                      std::size_t* pairs_m, std::size_t* pairs_m1) {
  constexpr std::size_t W = O::kW;
  const std::size_t tm = n - m + 1;
  const std::size_t tm1 = n - m;
  for (std::size_t i = 0; i < tm; ++i) cm[i] = 1;
  for (std::size_t i = 0; i < tm1; ++i) cm1[i] = 1;
  const typename O::V vr = O::broadcast(r);
  std::size_t pm = 0, pm1 = 0;
  for (std::size_t i = 0; i < tm; ++i) {
    std::size_t j = i + 1;
    for (; j + W <= tm; j += W) {
      const unsigned mask = match_mask<O>(x, i, j, m, vr);
      if (!mask) continue;
      const auto pc = static_cast<std::size_t>(std::popcount(mask));
      pm += pc;
      cm[i] += static_cast<std::uint32_t>(pc);
      for (unsigned mm = mask; mm; mm &= mm - 1)
        ++cm[j + static_cast<std::size_t>(std::countr_zero(mm))];
      // Extend matched lanes by the final offset. The vector load of
      // x[j+m .. j+m+W-1] is only in bounds while every lane's m+1
      // template fits (j + W <= tm1); the last group of the row checks
      // its lanes one by one instead.
      unsigned mask1 = 0;
      if (j + W <= tm1) {
        mask1 = mask & O::within_mask(O::broadcast(x[i + m]),
                                      O::load(x + j + m), vr);
      } else {
        for (unsigned mm = mask; mm; mm &= mm - 1) {
          const auto l = static_cast<std::size_t>(std::countr_zero(mm));
          if (j + l < tm1 && std::fabs(x[i + m] - x[j + l + m]) <= r)
            mask1 |= 1u << l;
        }
      }
      if (!mask1) continue;
      const auto pc1 = static_cast<std::size_t>(std::popcount(mask1));
      pm1 += pc1;
      cm1[i] += static_cast<std::uint32_t>(pc1);
      for (unsigned mm = mask1; mm; mm &= mm - 1)
        ++cm1[j + static_cast<std::size_t>(std::countr_zero(mm))];
    }
    for (; j < tm; ++j)
      if (scalar_template_match(x, i, j, m, r)) {
        ++pm;
        ++cm[i];
        ++cm[j];
        if (j < tm1 && std::fabs(x[i + m] - x[j + m]) <= r) {
          ++pm1;
          ++cm1[i];
          ++cm1[j];
        }
      }
  }
  *pairs_m = pm;
  *pairs_m1 = pm1;
}

template <class O>
std::size_t count_peaks_at_least_v(const double* x, std::size_t n,
                                   std::size_t support, double level) {
  if (n < 2 * support + 1) return 0;
  constexpr std::size_t W = O::kW;
  const typename O::V vlevel = O::broadcast(level);
  const std::size_t end = n - support;
  std::size_t count = 0;
  std::size_t i = support;
  for (; i + W <= end; i += W) {
    const typename O::V centre = O::load(x + i);
    unsigned mask = (1u << W) - 1u;
    for (std::size_t k = 1; k <= support && mask; ++k) {
      mask &= O::gt_mask(centre, O::load(x + i - k));
      mask &= O::gt_mask(centre, O::load(x + i + k));
    }
    mask &= O::ge_mask(centre, vlevel);
    count += static_cast<std::size_t>(std::popcount(mask));
  }
  for (; i < end; ++i) {
    bool is_peak = true;
    for (std::size_t k = 1; k <= support && is_peak; ++k)
      is_peak = x[i] > x[i - k] && x[i] > x[i + k];
    if (is_peak && x[i] >= level) ++count;
  }
  return count;
}

template <class O>
void goertzel_batch_v(const double* x, std::size_t n, const double* coeff,
                      std::size_t k, double* s1, double* s2) {
  constexpr std::size_t W = O::kW;
  std::size_t f = 0;
  for (; f + W <= k; f += W) {
    const typename O::V c = O::load(coeff + f);
    typename O::V a = O::zero(), b = O::zero();
    for (std::size_t i = 0; i < n; ++i) {
      // Per lane: (x + c*a) - b, the exact scalar recurrence order.
      const typename O::V s0 =
          O::sub(O::add(O::broadcast(x[i]), O::mul(c, a)), b);
      b = a;
      a = s0;
    }
    O::store(s1 + f, a);
    O::store(s2 + f, b);
  }
  if (f < k) scalar_goertzel_batch(x, n, coeff + f, k - f, s1 + f, s2 + f);
}

template <class O>
double sum_fast_v(const double* x, std::size_t n) {
  constexpr std::size_t W = O::kW;
  typename O::V acc = O::zero();
  std::size_t i = 0;
  for (; i + W <= n; i += W) acc = O::add(acc, O::load(x + i));
  double lanes[W];
  O::store(lanes, acc);
  double s = 0.0;
  for (std::size_t l = 0; l < W; ++l) s += lanes[l];
  for (; i < n; ++i) s += x[i];
  return s;
}

template <class O>
double dot_fast_v(const double* a, const double* b, std::size_t n) {
  constexpr std::size_t W = O::kW;
  typename O::V acc = O::zero();
  std::size_t i = 0;
  for (; i + W <= n; i += W)
    acc = O::add(acc, O::mul(O::load(a + i), O::load(b + i)));
  double lanes[W];
  O::store(lanes, acc);
  double s = 0.0;
  for (std::size_t l = 0; l < W; ++l) s += lanes[l];
  for (; i < n; ++i) s += a[i] * b[i];
  return s;
}

}  // namespace airfinger::simd::detail
