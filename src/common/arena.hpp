// Chunked bump allocator for per-stream scratch memory (DESIGN.md §11).
//
// The inference hot path evaluates dozens of short-lived numeric arrays per
// frame (smoothed envelopes, asymmetry paths, feature rows). Allocating
// them from the general heap costs a malloc/free pair each — and worse,
// makes per-frame latency depend on allocator state. A ScratchArena turns
// all of them into pointer bumps inside blocks that are retained across
// frames: after a short warmup the arena reaches its high-water mark and
// the steady state performs zero heap allocations.
//
// Properties the callers rely on:
//   - *Stable spans.* Growth appends a new block; existing blocks never
//     move, so spans handed out earlier stay valid while their frame is
//     open (unlike a std::vector-backed bump allocator).
//   - *Frame rewind.* ScratchArena::Frame is an RAII mark/rewind pair:
//     everything allocated after the mark is reclaimed (not freed) when
//     the frame is destroyed. Frames nest.
//   - *No destructors.* alloc<T>() requires trivially destructible T;
//     rewinding is a pointer reset, never a destructor walk.
//
// Arenas are single-threaded by design: each Session (and each training
// worker) owns its own. Sharing one across threads is a data race.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace airfinger::common {

/// Bump allocator over a chain of geometrically growing blocks.
class ScratchArena {
 public:
  /// `initial_bytes` sizes the first block (allocated lazily on first use).
  explicit ScratchArena(std::size_t initial_bytes = 1 << 16);

  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;
  ScratchArena(ScratchArena&&) = default;
  ScratchArena& operator=(ScratchArena&&) = default;

  /// Allocates `count` value-initialized (zeroed, for arithmetic types)
  /// elements. The span stays valid until the enclosing Frame is rewound
  /// (or reset() is called). T must be trivially destructible.
  template <typename T>
  std::span<T> alloc(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "ScratchArena never runs destructors");
    if (count == 0) return {};
    void* p = allocate_bytes(count * sizeof(T), alignof(T));
    T* data = static_cast<T*>(p);
    std::uninitialized_value_construct_n(data, count);
    return {data, count};
  }

  /// RAII mark/rewind: reclaims everything allocated after construction.
  class Frame {
   public:
    explicit Frame(ScratchArena& arena)
        : arena_(&arena),
          block_(arena.current_),
          used_(arena.blocks_.empty() ? 0 : arena.blocks_[block_].used) {}
    ~Frame() { arena_->rewind(block_, used_); }
    Frame(const Frame&) = delete;
    Frame& operator=(const Frame&) = delete;

   private:
    ScratchArena* arena_;
    std::size_t block_;
    std::size_t used_;
  };

  /// Opens a frame scoped to the caller.
  Frame frame() { return Frame(*this); }

  /// Rewinds everything (all blocks are kept for reuse).
  void reset() { rewind(0, 0); }

  /// Bytes currently reserved across all blocks (the high-water footprint).
  std::size_t capacity_bytes() const;

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  void* allocate_bytes(std::size_t bytes, std::size_t align);
  void rewind(std::size_t block, std::size_t used);

  std::vector<Block> blocks_;
  std::size_t current_ = 0;  // index of the block being bumped
  std::size_t initial_bytes_;
};

}  // namespace airfinger::common
