// Error handling primitives shared across the airFinger libraries.
//
// The library reports precondition violations and invalid-argument errors via
// exceptions (per C++ Core Guidelines E.2/E.3: use exceptions for error
// handling only, and design interfaces so that exceptions are rare).
#pragma once

#include <stdexcept>
#include <string>

namespace airfinger {

/// Thrown when a caller violates a documented precondition.
class PreconditionError : public std::invalid_argument {
 public:
  explicit PreconditionError(const std::string& what)
      : std::invalid_argument(what) {}
};

/// Thrown when an internal invariant is found broken (a bug in the library).
class InvariantError : public std::logic_error {
 public:
  explicit InvariantError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when numeric routines fail to converge or hit singular systems.
class NumericError : public std::runtime_error {
 public:
  explicit NumericError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a sensor stream delivers corrupt data (e.g. non-finite
/// samples) and the receiving session's fault policy does not permit
/// degraded-mode handling. Unlike PreconditionError this is a runtime
/// condition of the *input stream*, not a caller bug: serving hosts catch
/// it, quarantine the offending stream, and keep siblings running.
class StreamFaultError : public std::runtime_error {
 public:
  explicit StreamFaultError(const std::string& what)
      : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_precondition(const char* expr, const char* file,
                                            int line, const std::string& msg) {
  throw PreconditionError(std::string(file) + ":" + std::to_string(line) +
                          ": precondition failed: " + expr +
                          (msg.empty() ? "" : " — " + msg));
}
[[noreturn]] inline void throw_invariant(const char* expr, const char* file,
                                         int line, const std::string& msg) {
  throw InvariantError(std::string(file) + ":" + std::to_string(line) +
                       ": invariant broken: " + expr +
                       (msg.empty() ? "" : " — " + msg));
}
}  // namespace detail

}  // namespace airfinger

/// Validates a documented precondition of a public API entry point.
#define AF_EXPECT(cond, msg)                                              \
  do {                                                                    \
    if (!(cond))                                                          \
      ::airfinger::detail::throw_precondition(#cond, __FILE__, __LINE__,  \
                                              (msg));                     \
  } while (0)

/// Validates an internal invariant; failure indicates a library bug.
#define AF_ASSERT(cond, msg)                                           \
  do {                                                                 \
    if (!(cond))                                                       \
      ::airfinger::detail::throw_invariant(#cond, __FILE__, __LINE__, \
                                           (msg));                    \
  } while (0)
