// Descriptive statistics over contiguous double sequences.
//
// These are the numeric primitives shared by the DSP and feature-extraction
// layers. All functions take std::span<const double> and are pure. Functions
// document their behaviour on empty/degenerate input; most require n >= 1 and
// throw PreconditionError otherwise so silent NaN propagation cannot hide
// pipeline bugs.
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

namespace airfinger::common {

/// Arithmetic mean. Requires non-empty input.
double mean(std::span<const double> x);

/// Population variance (divides by n). Requires non-empty input.
double variance(std::span<const double> x);

/// Sample variance (divides by n-1). Requires n >= 2.
double sample_variance(std::span<const double> x);

/// Population standard deviation. Requires non-empty input.
double stddev(std::span<const double> x);

/// Minimum value. Requires non-empty input.
double min(std::span<const double> x);

/// Maximum value. Requires non-empty input.
double max(std::span<const double> x);

/// Sum of all elements (0 for empty input).
double sum(std::span<const double> x);

/// Sum of squares (0 for empty input). aka absolute energy.
double energy(std::span<const double> x);

/// Median via partial sort of a copy. Requires non-empty input.
double median(std::span<const double> x);

/// Linear-interpolated quantile, q in [0,1]. Requires non-empty input.
double quantile(std::span<const double> x, double q);

/// quantile() with caller-provided scratch (scratch.size() >= x.size());
/// x is copied into scratch and the two bracketing order statistics are
/// selected in O(n) (bit-identical to a full sort), so no allocation
/// happens. The scratch prefix is left partially reordered, not sorted.
double quantile_with(std::span<const double> x, double q,
                     std::span<double> scratch);

/// The interpolation step of quantile() on an already ascending-sorted
/// sequence: bit-identical to quantile() over the same multiset of values,
/// without the copy and sort. Requires non-empty input.
double quantile_sorted(std::span<const double> sorted, double q);

/// Fisher skewness (0 when variance is 0). Requires non-empty input.
double skewness(std::span<const double> x);

/// Excess kurtosis (0 when variance is 0). Requires non-empty input.
double kurtosis(std::span<const double> x);

/// Index of the first minimum element. Requires non-empty input.
std::size_t argmin(std::span<const double> x);

/// Index of the first maximum element. Requires non-empty input.
std::size_t argmax(std::span<const double> x);

/// Index of the last maximum element. Requires non-empty input.
std::size_t last_argmax(std::span<const double> x);

/// Index of the last minimum element. Requires non-empty input.
std::size_t last_argmin(std::span<const double> x);

/// Number of elements strictly below the mean. Requires non-empty input.
std::size_t count_below_mean(std::span<const double> x);

/// Number of elements strictly above the mean. Requires non-empty input.
std::size_t count_above_mean(std::span<const double> x);

/// Longest run of consecutive elements strictly above the mean.
std::size_t longest_strike_above_mean(std::span<const double> x);

/// Longest run of consecutive elements strictly below the mean.
std::size_t longest_strike_below_mean(std::span<const double> x);

/// Pearson correlation of two equal-length sequences; 0 if either side has
/// zero variance. Requires equal sizes and n >= 2.
double pearson(std::span<const double> x, std::span<const double> y);

/// Mean of |x[i+1]-x[i]| (0 for n < 2).
double mean_abs_change(std::span<const double> x);

/// Slope and intercept of the least-squares line y = a*t + b over t=0..n-1.
/// Returns {slope, intercept}. Requires n >= 2.
std::pair<double, double> linear_trend(std::span<const double> x);

/// z-normalizes a copy of x: (x - mean) / stddev. If stddev == 0 the result
/// is all zeros. Requires non-empty input.
std::vector<double> znormalize(std::span<const double> x);

/// znormalize() writing into caller storage; out.size() == x.size().
void znormalize_into(std::span<const double> x, std::span<double> out);

}  // namespace airfinger::common
