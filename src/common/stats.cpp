#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/reduce.hpp"

namespace airfinger::common {

namespace {
void require_nonempty(std::span<const double> x, const char* fn) {
  AF_EXPECT(!x.empty(), std::string(fn) + " requires non-empty input");
}
}  // namespace

double mean(std::span<const double> x) {
  require_nonempty(x, "mean");
  return reduce::sum(x) / static_cast<double>(x.size());
}

double variance(std::span<const double> x) {
  require_nonempty(x, "variance");
  const double m = mean(x);
  double s = 0.0;
  for (double v : x) s += (v - m) * (v - m);
  return s / static_cast<double>(x.size());
}

double sample_variance(std::span<const double> x) {
  AF_EXPECT(x.size() >= 2, "sample_variance requires n >= 2");
  const double m = mean(x);
  double s = 0.0;
  for (double v : x) s += (v - m) * (v - m);
  return s / static_cast<double>(x.size() - 1);
}

double stddev(std::span<const double> x) { return std::sqrt(variance(x)); }

double min(std::span<const double> x) {
  require_nonempty(x, "min");
  return *std::min_element(x.begin(), x.end());
}

double max(std::span<const double> x) {
  require_nonempty(x, "max");
  return *std::max_element(x.begin(), x.end());
}

double sum(std::span<const double> x) { return reduce::sum(x); }

double energy(std::span<const double> x) { return reduce::energy(x); }

double median(std::span<const double> x) { return quantile(x, 0.5); }

double quantile(std::span<const double> x, double q) {
  require_nonempty(x, "quantile");
  std::vector<double> scratch(x.size());
  return quantile_with(x, q, scratch);
}

double quantile_with(std::span<const double> x, double q,
                     std::span<double> scratch) {
  require_nonempty(x, "quantile");
  AF_EXPECT(q >= 0.0 && q <= 1.0, "quantile q must lie in [0,1]");
  AF_EXPECT(scratch.size() >= x.size(), "quantile scratch too small");
  std::copy(x.begin(), x.end(), scratch.begin());
  const std::span<double> copy = scratch.first(x.size());
  // One quantile needs two order statistics, not a full sort:
  // nth_element places the lo-th exactly where the sorted copy would,
  // and the (lo+1)-th is the minimum of the right partition. Order
  // statistics are value-identical however they are obtained, so this
  // returns the same bits as the historical copy+sort+quantile_sorted
  // at O(n) instead of O(n log n).
  if (copy.size() == 1) return copy[0];
  const double pos = q * static_cast<double>(copy.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  const auto nth = copy.begin() + static_cast<std::ptrdiff_t>(lo);
  std::nth_element(copy.begin(), nth, copy.end());
  if (lo + 1 >= copy.size()) return copy[lo];
  const double next = *std::min_element(nth + 1, copy.end());
  return copy[lo] * (1.0 - frac) + next * frac;
}

double quantile_sorted(std::span<const double> sorted, double q) {
  require_nonempty(sorted, "quantile");
  AF_EXPECT(q >= 0.0 && q <= 1.0, "quantile q must lie in [0,1]");
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double skewness(std::span<const double> x) {
  require_nonempty(x, "skewness");
  const double m = mean(x);
  double m2 = 0.0, m3 = 0.0;
  for (double v : x) {
    const double d = v - m;
    m2 += d * d;
    m3 += d * d * d;
  }
  const double n = static_cast<double>(x.size());
  m2 /= n;
  m3 /= n;
  if (m2 <= 0.0) return 0.0;
  return m3 / std::pow(m2, 1.5);
}

double kurtosis(std::span<const double> x) {
  require_nonempty(x, "kurtosis");
  const double m = mean(x);
  double m2 = 0.0, m4 = 0.0;
  for (double v : x) {
    const double d = v - m;
    m2 += d * d;
    m4 += d * d * d * d;
  }
  const double n = static_cast<double>(x.size());
  m2 /= n;
  m4 /= n;
  if (m2 <= 0.0) return 0.0;
  return m4 / (m2 * m2) - 3.0;
}

std::size_t argmin(std::span<const double> x) {
  require_nonempty(x, "argmin");
  return static_cast<std::size_t>(
      std::min_element(x.begin(), x.end()) - x.begin());
}

std::size_t argmax(std::span<const double> x) {
  require_nonempty(x, "argmax");
  return static_cast<std::size_t>(
      std::max_element(x.begin(), x.end()) - x.begin());
}

std::size_t last_argmax(std::span<const double> x) {
  require_nonempty(x, "last_argmax");
  std::size_t best = 0;
  for (std::size_t i = 1; i < x.size(); ++i)
    if (x[i] >= x[best]) best = i;
  return best;
}

std::size_t last_argmin(std::span<const double> x) {
  require_nonempty(x, "last_argmin");
  std::size_t best = 0;
  for (std::size_t i = 1; i < x.size(); ++i)
    if (x[i] <= x[best]) best = i;
  return best;
}

std::size_t count_below_mean(std::span<const double> x) {
  const double m = mean(x);
  std::size_t c = 0;
  for (double v : x)
    if (v < m) ++c;
  return c;
}

std::size_t count_above_mean(std::span<const double> x) {
  const double m = mean(x);
  std::size_t c = 0;
  for (double v : x)
    if (v > m) ++c;
  return c;
}

namespace {
template <typename Pred>
std::size_t longest_run(std::span<const double> x, Pred pred) {
  std::size_t best = 0, run = 0;
  for (double v : x) {
    run = pred(v) ? run + 1 : 0;
    best = std::max(best, run);
  }
  return best;
}
}  // namespace

std::size_t longest_strike_above_mean(std::span<const double> x) {
  require_nonempty(x, "longest_strike_above_mean");
  const double m = mean(x);
  return longest_run(x, [m](double v) { return v > m; });
}

std::size_t longest_strike_below_mean(std::span<const double> x) {
  require_nonempty(x, "longest_strike_below_mean");
  const double m = mean(x);
  return longest_run(x, [m](double v) { return v < m; });
}

double pearson(std::span<const double> x, std::span<const double> y) {
  AF_EXPECT(x.size() == y.size(), "pearson requires equal sizes");
  AF_EXPECT(x.size() >= 2, "pearson requires n >= 2");
  const double mx = mean(x), my = mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx, dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double mean_abs_change(std::span<const double> x) {
  if (x.size() < 2) return 0.0;
  double s = 0.0;
  for (std::size_t i = 1; i < x.size(); ++i) s += std::fabs(x[i] - x[i - 1]);
  return s / static_cast<double>(x.size() - 1);
}

std::pair<double, double> linear_trend(std::span<const double> x) {
  AF_EXPECT(x.size() >= 2, "linear_trend requires n >= 2");
  const double n = static_cast<double>(x.size());
  // Closed-form OLS on t = 0..n-1: mean(t) = (n-1)/2, var(t) = (n^2-1)/12.
  const double mt = (n - 1.0) / 2.0;
  const double mx = mean(x);
  double stx = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i)
    stx += (static_cast<double>(i) - mt) * (x[i] - mx);
  const double stt = n * (n * n - 1.0) / 12.0;
  const double slope = stx / stt;
  return {slope, mx - slope * mt};
}

std::vector<double> znormalize(std::span<const double> x) {
  require_nonempty(x, "znormalize");
  std::vector<double> out(x.size());
  znormalize_into(x, out);
  return out;
}

void znormalize_into(std::span<const double> x, std::span<double> out) {
  require_nonempty(x, "znormalize");
  AF_EXPECT(out.size() == x.size(), "znormalize output size mismatch");
  const double m = mean(x);
  const double sd = stddev(x);
  if (sd <= 0.0) {
    for (double& o : out) o = 0.0;  // all zeros
    return;
  }
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = (x[i] - m) / sd;
}

}  // namespace airfinger::common
