// CSV emission for benchmark data series, so figure data can be re-plotted
// offline. Quoting follows RFC 4180 (fields containing comma, quote, or
// newline are quoted; embedded quotes are doubled).
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace airfinger::common {

/// Escapes a single CSV field per RFC 4180.
std::string csv_escape(const std::string& field);

/// Joins fields into one CSV line (no trailing newline).
std::string csv_line(const std::vector<std::string>& fields);

/// Splits one CSV line into fields, honouring RFC 4180 quoting.
std::vector<std::string> csv_split(const std::string& line);

/// Streaming CSV writer bound to a file path.
class CsvWriter {
 public:
  /// Opens (truncates) the file and writes the header row.
  /// Throws NumericError's sibling std::runtime_error on I/O failure.
  CsvWriter(const std::string& path, std::vector<std::string> header);

  /// Writes one data row; arity must match the header.
  void write_row(const std::vector<std::string>& fields);

  std::size_t rows_written() const { return rows_; }

 private:
  std::ofstream out_;
  std::size_t arity_;
  std::size_t rows_ = 0;
};

}  // namespace airfinger::common
