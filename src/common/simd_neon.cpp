// NEON backend of the AF_SIMD kernel layer (aarch64, 2 lanes).
//
// aarch64 has fused multiply-add in its baseline ISA and GCC defaults to
// -ffp-contract=fast there, so the *scalar reference* mul+add loops may
// already be compiled with fused operations. An intrinsics backend using
// separate vmulq/vaddq would then diverge from the reference by the
// intermediate rounding the fusion removed. Rather than fight the
// compiler's contraction choices per kernel, this table only registers
// vector kernels whose bit-identity cannot depend on contraction:
//
//   - accumulate, moving_average_range: additions only, nothing to fuse.
//   - count_matches, apen_phi, count_peaks_at_least: compare + integer
//     count; the subtraction inside the Chebyshev test is a lone sub.
//   - sum_fast / dot_fast: epsilon contract by definition.
//
// The mul+add kernels (acf_numerators, conv_clipped, goertzel_batch,
// fft_stage) keep the scalar reference — on NEON both "variants" are
// then the same code, trivially identical. DESIGN.md §15 records this
// caveat. forest_leaves takes the shared 4-way software-interleaved
// descent: it is pure integer/compare scalar ISA (no contraction
// hazard) and wins on ILP alone.
#include "common/simd.hpp"

#if AF_SIMD_ENABLED && defined(__aarch64__)

#include <arm_neon.h>

#include "common/simd_kernels.inl"

namespace airfinger::simd::detail {

namespace {

struct NeonOps {
  static constexpr std::size_t kW = 2;
  using V = float64x2_t;
  static V load(const double* p) { return vld1q_f64(p); }
  static void store(double* p, V v) { vst1q_f64(p, v); }
  static V broadcast(double v) { return vdupq_n_f64(v); }
  static V zero() { return vdupq_n_f64(0.0); }
  static V add(V a, V b) { return vaddq_f64(a, b); }
  static V sub(V a, V b) { return vsubq_f64(a, b); }
  static V mul(V a, V b) { return vmulq_f64(a, b); }
  static V div(V a, V b) { return vdivq_f64(a, b); }
  static unsigned movemask(uint64x2_t m) {
    return static_cast<unsigned>(vgetq_lane_u64(m, 0) & 1u) |
           static_cast<unsigned>((vgetq_lane_u64(m, 1) & 1u) << 1);
  }
  static unsigned gt_mask(V a, V b) { return movemask(vcgtq_f64(a, b)); }
  static unsigned ge_mask(V a, V b) { return movemask(vcgeq_f64(a, b)); }
  static unsigned within_mask(V a, V b, V r) {
    return movemask(vcleq_f64(vabsq_f64(vsubq_f64(a, b)), r));
  }
};

}  // namespace

const Kernels& neon_table() {
  static const Kernels table = {
      Tier::kNEON,
      &accumulate_v<NeonOps>,
      &moving_average_range_v<NeonOps>,
      &scalar_acf_numerators,  // mul+add: contraction hazard, see header
      &scalar_conv_clipped,    // mul+add: contraction hazard
      &count_matches_v<NeonOps>,
      &apen_phi_v<NeonOps>,
      &entropy_counts_v<NeonOps>,
      &count_peaks_at_least_v<NeonOps>,
      &scalar_goertzel_batch,  // mul+add: contraction hazard
      &scalar_fft_stage,       // mul+add: contraction hazard
      &interleaved_forest_leaves,  // ILP descent, scalar ISA: no hazard
      &sum_fast_v<NeonOps>,
      &dot_fast_v<NeonOps>,
  };
  return table;
}

}  // namespace airfinger::simd::detail

#endif  // AF_SIMD_ENABLED && __aarch64__
