// Shared scalar reduction loops (satellite of DESIGN.md §15).
//
// Before the SIMD layer landed, the same handful of reduction loops —
// plain sum, dot product, sum of squares, seeded max, weighted index sum —
// were open-coded in dsp/, features/measures.cpp, features/bank.cpp and
// core/ascending.cpp. They now live here once, as inline serial loops, so
// every caller shares one definition and one accumulation order.
//
// Under -DAF_SIMD_FAST_MATH=ON the floating-point accumulating reductions
// (sum / dot / energy) route through the reassociated simd kernels
// (sum_fast / dot_fast), trading bit-stability for lane parallelism; the
// epsilon contract is covered by tests/simd_test.cpp. min/max/argmax-style
// reductions are order-free and never change.
#pragma once

#include <cstddef>
#include <span>

#include "common/simd.hpp"

#ifndef AF_SIMD_FAST_MATH
#define AF_SIMD_FAST_MATH 0
#endif

namespace airfinger::common::reduce {

/// Sum of all elements in ascending order (0 for empty input).
inline double sum(std::span<const double> x) {
#if AF_SIMD_FAST_MATH
  return simd::kernels().sum_fast(x.data(), x.size());
#else
  double s = 0.0;
  for (const double v : x) s += v;
  return s;
#endif
}

/// Dot product in ascending order. Requires a.size() == b.size().
inline double dot(std::span<const double> a, std::span<const double> b) {
#if AF_SIMD_FAST_MATH
  return simd::kernels().dot_fast(a.data(), b.data(), a.size());
#else
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
#endif
}

/// Sum of squares in ascending order (0 for empty input).
inline double energy(std::span<const double> x) {
#if AF_SIMD_FAST_MATH
  return simd::kernels().dot_fast(x.data(), x.data(), x.size());
#else
  double s = 0.0;
  for (const double v : x) s += v * v;
  return s;
#endif
}

/// Maximum of `seed` and every element, via sequential `v > m` updates —
/// the open-coded peak-scan idiom (NaN elements never replace m).
inline double max_with(std::span<const double> x, double seed) {
  double m = seed;
  for (const double v : x) {
    if (v > m) m = v;
  }
  return m;
}

/// First minimum element (std::min_element semantics). Requires non-empty.
inline double min_value(std::span<const double> x) {
  double m = x[0];
  for (std::size_t i = 1; i < x.size(); ++i) {
    if (x[i] < m) m = x[i];
  }
  return m;
}

/// First maximum element (std::max_element semantics). Requires non-empty.
inline double max_value(std::span<const double> x) {
  double m = x[0];
  for (std::size_t i = 1; i < x.size(); ++i) {
    if (x[i] > m) m = x[i];
  }
  return m;
}

/// sum_i i * x[i] in ascending order (0 for empty input) — the centroid /
/// tau numerator idiom.
inline double weighted_index_sum(std::span<const double> x) {
  double s = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i)
    s += static_cast<double>(i) * x[i];
  return s;
}

}  // namespace airfinger::common::reduce
