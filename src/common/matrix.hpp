// Minimal dense linear algebra used by the regression-based features (ADF,
// autoregressive fits) and the logistic-regression trainer.
//
// Matrix is a row-major dense double matrix with value semantics. The solver
// set is intentionally small: partial-pivot Gaussian elimination and an OLS
// helper built on the normal equations with ridge fallback for rank-deficient
// designs.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace airfinger::common {

/// Dense row-major matrix of doubles with value semantics.
class Matrix {
 public:
  Matrix() = default;

  /// Zero-initialized rows x cols matrix.
  Matrix(std::size_t rows, std::size_t cols);

  /// Builds from nested initializer data; all rows must be equal length.
  static Matrix from_rows(const std::vector<std::vector<double>>& rows);

  /// Identity matrix of size n.
  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;

  /// Contiguous view of row r.
  std::span<double> row(std::size_t r);
  std::span<const double> row(std::size_t r) const;

  /// Matrix transpose.
  Matrix transposed() const;

  /// Matrix product this * other. Requires cols() == other.rows().
  Matrix operator*(const Matrix& other) const;

  /// Matrix-vector product. Requires cols() == v.size().
  std::vector<double> apply(std::span<const double> v) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solves A x = b by Gaussian elimination with partial pivoting.
/// Requires A square and b.size() == A.rows(). Throws NumericError when the
/// system is numerically singular.
std::vector<double> solve_linear(Matrix a, std::vector<double> b);

/// Ordinary least squares: returns beta minimizing ||X beta - y||^2 via the
/// normal equations (X'X + ridge*I) beta = X'y. ridge defaults to a tiny
/// jitter that regularizes rank-deficient designs without visibly biasing
/// well-conditioned ones. Requires X.rows() == y.size() and X.rows() >= 1.
std::vector<double> ols(const Matrix& x, std::span<const double> y,
                        double ridge = 1e-10);

}  // namespace airfinger::common
