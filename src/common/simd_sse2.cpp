// SSE2 backend of the AF_SIMD kernel layer (x86-64 baseline, 2 lanes).
//
// Compiled without any extra ISA flags: SSE2 is part of the x86-64
// baseline, and crucially no FMA is available, so mul+add sequences in the
// templates cannot be contracted and stay bit-identical to the scalar
// reference. The FFT-stage kernel keeps the scalar implementation — a
// 2-lane complex multiply costs more shuffling than it saves — and
// forest descent uses the shared software-interleaved walk (gathers
// lose on every tier; see simd_kernels.inl).
#include "common/simd.hpp"

#if AF_SIMD_ENABLED && (defined(__x86_64__) || defined(_M_X64))

#include <emmintrin.h>

#include "common/simd_kernels.inl"

namespace airfinger::simd::detail {

namespace {

struct Sse2Ops {
  static constexpr std::size_t kW = 2;
  using V = __m128d;
  static V load(const double* p) { return _mm_loadu_pd(p); }
  static void store(double* p, V v) { _mm_storeu_pd(p, v); }
  static V broadcast(double v) { return _mm_set1_pd(v); }
  static V zero() { return _mm_setzero_pd(); }
  static V add(V a, V b) { return _mm_add_pd(a, b); }
  static V sub(V a, V b) { return _mm_sub_pd(a, b); }
  static V mul(V a, V b) { return _mm_mul_pd(a, b); }
  static V div(V a, V b) { return _mm_div_pd(a, b); }
  static unsigned gt_mask(V a, V b) {
    return static_cast<unsigned>(_mm_movemask_pd(_mm_cmpgt_pd(a, b)));
  }
  static unsigned ge_mask(V a, V b) {
    return static_cast<unsigned>(_mm_movemask_pd(_mm_cmpge_pd(a, b)));
  }
  static unsigned within_mask(V a, V b, V r) {
    // |a - b| <= r; clearing the sign bit is exactly std::fabs, and the
    // ordered compare is false on NaN like the scalar <=.
    const V diff = _mm_sub_pd(a, b);
    const V magnitude = _mm_andnot_pd(_mm_set1_pd(-0.0), diff);
    return static_cast<unsigned>(_mm_movemask_pd(_mm_cmple_pd(magnitude, r)));
  }
};

}  // namespace

const Kernels& sse2_table() {
  static const Kernels table = {
      Tier::kSSE2,
      &accumulate_v<Sse2Ops>,
      &moving_average_range_v<Sse2Ops>,
      &acf_numerators_v<Sse2Ops>,
      &conv_clipped_v<Sse2Ops>,
      &count_matches_v<Sse2Ops>,
      &apen_phi_v<Sse2Ops>,
      &entropy_counts_v<Sse2Ops>,
      &count_peaks_at_least_v<Sse2Ops>,
      &goertzel_batch_v<Sse2Ops>,
      &scalar_fft_stage,
      &interleaved_forest_leaves,
      &sum_fast_v<Sse2Ops>,
      &dot_fast_v<Sse2Ops>,
  };
  return table;
}

}  // namespace airfinger::simd::detail

#endif  // AF_SIMD_ENABLED && x86-64
