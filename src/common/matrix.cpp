#include "common/matrix.hpp"

#include <cmath>

#include "common/error.hpp"

namespace airfinger::common {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix Matrix::from_rows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return {};
  Matrix m(rows.size(), rows[0].size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    AF_EXPECT(rows[r].size() == m.cols_, "from_rows: ragged row lengths");
    for (std::size_t c = 0; c < m.cols_; ++c) m(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  AF_ASSERT(r < rows_ && c < cols_, "matrix index out of range");
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  AF_ASSERT(r < rows_ && c < cols_, "matrix index out of range");
  return data_[r * cols_ + c];
}

std::span<double> Matrix::row(std::size_t r) {
  AF_EXPECT(r < rows_, "row index out of range");
  return {data_.data() + r * cols_, cols_};
}

std::span<const double> Matrix::row(std::size_t r) const {
  AF_EXPECT(r < rows_, "row index out of range");
  return {data_.data() + r * cols_, cols_};
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::operator*(const Matrix& other) const {
  AF_EXPECT(cols_ == other.rows_, "matrix product dimension mismatch");
  Matrix out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < other.cols_; ++c)
        out(r, c) += a * other(k, c);
    }
  }
  return out;
}

std::vector<double> Matrix::apply(std::span<const double> v) const {
  AF_EXPECT(cols_ == v.size(), "matrix-vector dimension mismatch");
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double s = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) s += (*this)(r, c) * v[c];
    out[r] = s;
  }
  return out;
}

std::vector<double> solve_linear(Matrix a, std::vector<double> b) {
  AF_EXPECT(a.rows() == a.cols(), "solve_linear requires a square matrix");
  AF_EXPECT(a.rows() == b.size(), "solve_linear rhs size mismatch");
  const std::size_t n = a.rows();
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting: bring the largest remaining |entry| to the diagonal.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r)
      if (std::fabs(a(r, col)) > std::fabs(a(pivot, col))) pivot = r;
    if (std::fabs(a(pivot, col)) < 1e-14)
      throw NumericError("solve_linear: singular system");
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a(pivot, c), a(col, c));
      std::swap(b[pivot], b[col]);
    }
    const double inv = 1.0 / a(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a(r, col) * inv;
      if (f == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a(r, c) -= f * a(col, c);
      b[r] -= f * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t ri = n; ri-- > 0;) {
    double s = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) s -= a(ri, c) * x[c];
    x[ri] = s / a(ri, ri);
  }
  return x;
}

std::vector<double> ols(const Matrix& x, std::span<const double> y,
                        double ridge) {
  AF_EXPECT(x.rows() == y.size(), "ols: X row count must match y size");
  AF_EXPECT(x.rows() >= 1, "ols requires at least one observation");
  const std::size_t p = x.cols();
  Matrix xtx(p, p);
  std::vector<double> xty(p, 0.0);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto row = x.row(r);
    for (std::size_t i = 0; i < p; ++i) {
      xty[i] += row[i] * y[r];
      for (std::size_t j = i; j < p; ++j) xtx(i, j) += row[i] * row[j];
    }
  }
  for (std::size_t i = 0; i < p; ++i) {
    xtx(i, i) += ridge;
    for (std::size_t j = 0; j < i; ++j) xtx(i, j) = xtx(j, i);
  }
  return solve_linear(std::move(xtx), std::move(xty));
}

}  // namespace airfinger::common
