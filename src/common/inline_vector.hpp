// Fixed-capacity inline vector for small per-channel result structs.
//
// The timing analysis of the hot path (core/ascending.hpp) returns a few
// per-channel values — one entry per photodiode, bounded by the hardware
// (the paper's prototype has 3). Holding them in std::vector costs a heap
// allocation per analysis call, which runs every frame while a segment is
// open. InlineVector stores up to N elements in place with the familiar
// vector surface (size/resize/push_back/front/back/iteration), so the
// structs stay value types with zero heap traffic. Exceeding the capacity
// is a precondition violation, not a reallocation.
#pragma once

#include <array>
#include <cstddef>

#include "common/error.hpp"

namespace airfinger::common {

template <typename T, std::size_t N>
class InlineVector {
 public:
  InlineVector() = default;

  static constexpr std::size_t capacity() { return N; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() { size_ = 0; }

  /// Grows with value-initialized (or `fill`) elements, or shrinks.
  /// Requires n <= capacity().
  void resize(std::size_t n, const T& fill = T{}) {
    AF_EXPECT(n <= N, "InlineVector capacity exceeded");
    for (std::size_t i = size_; i < n; ++i) data_[i] = fill;
    size_ = n;
  }

  void push_back(const T& v) {
    AF_EXPECT(size_ < N, "InlineVector capacity exceeded");
    data_[size_++] = v;
  }

  T& operator[](std::size_t i) {
    AF_ASSERT(i < size_, "InlineVector index out of range");
    return data_[i];
  }
  const T& operator[](std::size_t i) const {
    AF_ASSERT(i < size_, "InlineVector index out of range");
    return data_[i];
  }

  T& front() { return (*this)[0]; }
  const T& front() const { return (*this)[0]; }
  T& back() { return (*this)[size_ - 1]; }
  const T& back() const { return (*this)[size_ - 1]; }

  T* begin() { return data_.data(); }
  T* end() { return data_.data() + size_; }
  const T* begin() const { return data_.data(); }
  const T* end() const { return data_.data() + size_; }

  bool operator==(const InlineVector& other) const {
    if (size_ != other.size_) return false;
    for (std::size_t i = 0; i < size_; ++i)
      if (!(data_[i] == other.data_[i])) return false;
    return true;
  }

 private:
  std::array<T, N> data_{};
  std::size_t size_ = 0;
};

}  // namespace airfinger::common
