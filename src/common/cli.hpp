// Minimal command-line flag parsing for the bench and example binaries.
//
// Supports --name=value and --name value forms plus boolean switches. Unknown
// flags are an error so typos in sweep scripts fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace airfinger::common {

/// Declarative flag set parsed from argv.
class Cli {
 public:
  /// program_name is used in the --help banner.
  explicit Cli(std::string program_name, std::string description = "");

  /// Registers a flag with a default value and help text. Call before parse.
  void add_flag(const std::string& name, const std::string& default_value,
                const std::string& help);

  /// Parses argv. Returns false (after printing usage) when --help was given.
  /// Throws PreconditionError for unknown flags or missing values.
  bool parse(int argc, const char* const* argv);

  /// Typed accessors. Throw if the flag was never registered.
  std::string get(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  /// Usage string listing all registered flags.
  std::string usage() const;

 private:
  struct Flag {
    std::string value;
    std::string default_value;
    std::string help;
  };
  std::string program_;
  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;
};

}  // namespace airfinger::common
