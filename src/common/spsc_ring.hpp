// Bounded single-producer / single-consumer ring buffer.
//
// The serving host's ingest lanes need a queue that is (a) fixed-capacity —
// admission control wants a hard bound, and the steady-state path must not
// allocate — and (b) wait-free on both ends for exactly one producer and
// one consumer thread. This is the classic Lamport ring with monotonically
// increasing 64-bit positions (slot = position % capacity, so capacity does
// not need to be a power of two) plus the standard refinement of caching
// the opposite end's position: the producer re-reads the consumer's `head_`
// only when its cached copy says the ring looks full, and the consumer
// re-reads `tail_` only when it looks empty, so steady-state pushes and
// pops touch a single shared atomic each.
//
// Memory ordering contract: the producer writes payload slots and then
// publishes them with a release store of `tail_`; the consumer acquires
// `tail_` before reading the slots, and releases `head_` after it is done
// so the producer may overwrite them. This is the same publish/consume
// pattern TSan verifies on the obs::EventRing tests, here with two threads.
//
// Bulk operations are all-or-nothing: `try_push(span)` either enqueues the
// whole span or nothing, which is how the host keeps multi-channel frames
// frame-aligned in a ring of doubles (capacity a multiple of the channel
// count, pushes and pops always one frame wide).
//
// Optional ingest stamps: constructed with `stamp_stride` == the span
// width, the ring keeps one uint64 side-slot per span position, written by
// `try_push(values, stamp)` and read back by `try_pop(out, &stamp)`. The
// stamp is published by the same release store of `tail_` that publishes
// the payload, so the consumer's acquire covers both. The host stamps each
// frame with its ingest tick at feed() time, which is what turns ring
// residency into the measured queue_wait stage (DESIGN.md §18). Stride 0
// (the default) allocates no stamp storage and changes nothing.
//
// Not a general MPMC queue: exactly one thread may push and exactly one
// may pop at a time. Ownership of an end may migrate between threads only
// through an external happens-before edge (the host's park/unpark mutex).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "common/error.hpp"

namespace airfinger::common {

template <typename T>
class SpscRing {
  static_assert(std::is_nothrow_copy_assignable_v<T>,
                "SpscRing requires nothrow-copyable elements");

 public:
  /// Allocates storage for exactly `capacity` elements (>= 1), plus one
  /// stamp slot per `stamp_stride`-wide span when a stride is given (the
  /// capacity must then be a multiple of it). Construction is the only
  /// allocation the ring ever performs.
  explicit SpscRing(std::size_t capacity, std::size_t stamp_stride = 0)
      : buffer_(capacity),
        stamp_stride_(stamp_stride),
        stamps_(stamp_stride == 0 ? 0 : capacity / stamp_stride) {
    AF_EXPECT(capacity >= 1, "SpscRing capacity must be >= 1");
    AF_EXPECT(stamp_stride == 0 || capacity % stamp_stride == 0,
              "SpscRing stamp stride must divide the capacity");
  }

  std::size_t capacity() const { return buffer_.size(); }
  std::size_t stamp_stride() const { return stamp_stride_; }

  /// Elements currently queued. Exact from either owning thread when the
  /// other end is quiescent; a consistent lower/upper bound while both
  /// ends run (each position is monotone, so the difference never reads
  /// negative or above capacity).
  std::size_t size() const {
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(tail - head);
  }

  bool empty() const { return size() == 0; }
  bool full() const { return size() == capacity(); }

  // ------------------------------------------------------------ producer

  /// Enqueues one element; false (and no effect) when the ring is full.
  bool try_push(const T& value) {
    return try_push(std::span<const T>(&value, 1));
  }

  /// Enqueues the whole span or nothing. Spans wider than the capacity can
  /// never fit and always fail.
  bool try_push(std::span<const T> values) { return try_push(values, 0); }

  /// Enqueues the whole span or nothing, recording `stamp` in the span's
  /// stamp slot when the ring was constructed with a stride (the span must
  /// then be exactly one stride wide). The stamp rides the same release
  /// publish as the payload.
  bool try_push(std::span<const T> values, std::uint64_t stamp) {
    const std::size_t n = values.size();
    if (n == 0) return true;
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (free_slots(tail) < n) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (free_slots(tail) < n) return false;
    }
    for (std::size_t i = 0; i < n; ++i)
      buffer_[static_cast<std::size_t>((tail + i) % buffer_.size())] =
          values[i];
    if (stamp_stride_ != 0) {
      AF_EXPECT(n == stamp_stride_,
                "stamped pushes must be exactly one stride wide");
      stamps_[static_cast<std::size_t>((tail / stamp_stride_) %
                                       stamps_.size())] = stamp;
    }
    tail_.store(tail + n, std::memory_order_release);
    return true;
  }

  // ------------------------------------------------------------ consumer

  /// Dequeues one element; false (and no effect) when the ring is empty.
  bool try_pop(T& out) { return try_pop(std::span<T>(&out, 1)); }

  /// Dequeues exactly `out.size()` elements or nothing.
  bool try_pop(std::span<T> out) { return try_pop(out, nullptr); }

  /// Dequeues exactly `out.size()` elements or nothing, also reading the
  /// span's ingest stamp when `stamp` is non-null and the ring carries
  /// stamps (the span must then be exactly one stride wide).
  bool try_pop(std::span<T> out, std::uint64_t* stamp) {
    const std::size_t n = out.size();
    if (n == 0) return true;
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (queued(head) < n) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (queued(head) < n) return false;
    }
    for (std::size_t i = 0; i < n; ++i)
      out[i] = buffer_[static_cast<std::size_t>((head + i) % buffer_.size())];
    if (stamp != nullptr && stamp_stride_ != 0) {
      AF_EXPECT(n == stamp_stride_,
                "stamped pops must be exactly one stride wide");
      *stamp = stamps_[static_cast<std::size_t>((head / stamp_stride_) %
                                                stamps_.size())];
    }
    head_.store(head + n, std::memory_order_release);
    return true;
  }

  /// Discards everything queued, returning how many elements were thrown
  /// away. Consumer-side operation (it advances `head_`).
  std::size_t discard_all() {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    cached_tail_ = tail_.load(std::memory_order_acquire);
    const std::uint64_t n = cached_tail_ - head;
    if (n != 0) head_.store(cached_tail_, std::memory_order_release);
    return static_cast<std::size_t>(n);
  }

 private:
  std::size_t free_slots(std::uint64_t tail) const {
    return buffer_.size() - static_cast<std::size_t>(tail - cached_head_);
  }
  std::size_t queued(std::uint64_t head) const {
    return static_cast<std::size_t>(cached_tail_ - head);
  }

  // Field layout is cache-line-conscious: the buffer header (read-only
  // after construction) shares the leading line; each end then owns
  // exactly one 64-byte line holding its published position *and* its
  // cached copy of the opposite position. A steady-state push touches the
  // producer line only (plus payload slots); a pop the consumer line —
  // the two ends never write the same line, and because alignof == 64
  // the trailing line is padded out, whatever the containing object
  // places after the ring cannot false-share with the consumer's fields.
  std::vector<T> buffer_;
  /// Stamp side-channel (read-only header + producer-written slots). One
  /// uint64 per stride-wide span; empty when stride == 0. Written before
  /// and published by the tail_ release store, read after the consumer's
  /// acquire — never concurrently touched by both ends.
  std::size_t stamp_stride_ = 0;
  std::vector<std::uint64_t> stamps_;
  /// Producer line: tail_ is the producer position (monotone); elements
  /// [head_, tail_) are queued. cached_head_ is the producer's copy of
  /// head_, refreshed only on apparent full.
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  std::uint64_t cached_head_ = 0;
  /// Consumer line: head_ is the consumer position (monotone);
  /// cached_tail_ its copy of tail_, refreshed only on apparent empty.
  alignas(64) std::atomic<std::uint64_t> head_{0};
  std::uint64_t cached_tail_ = 0;
};

static_assert(alignof(SpscRing<double>) == 64 &&
                  sizeof(SpscRing<double>) % 64 == 0,
              "ring ends must own whole cache lines (no false sharing)");

}  // namespace airfinger::common
