#include "common/parallel.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>

namespace airfinger::common {

namespace {
thread_local bool tl_on_worker = false;

// Active ScopedThreads override; null = use the global pool. Installed and
// removed from the main thread only (documented on ScopedThreads).
ThreadPool* g_override_pool = nullptr;
}  // namespace

std::size_t resolve_thread_count() {
  if (const char* env = std::getenv("AF_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1)
      return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? static_cast<std::size_t>(hw) : 1;
}

std::size_t current_thread_count() {
  return detail::current_pool().size();
}

struct ThreadPool::State {
  std::mutex mutex;
  std::condition_variable wake;
  std::deque<std::function<void()>> queue;
  bool stop = false;
};

ThreadPool::ThreadPool(std::size_t workers)
    : size_(std::max<std::size_t>(workers, 1)),
      state_(std::make_unique<State>()) {
  if (size_ < 2) return;  // serial pool: no threads, submit() runs inline
  workers_.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    state_->stop = true;
  }
  state_->wake.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    state_->queue.push_back(std::move(task));
  }
  state_->wake.notify_one();
}

bool ThreadPool::on_worker_thread() { return tl_on_worker; }

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(resolve_thread_count());
  return pool;
}

void ThreadPool::worker_loop() {
  tl_on_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(state_->mutex);
      state_->wake.wait(lock, [this] {
        return state_->stop || !state_->queue.empty();
      });
      if (state_->queue.empty()) return;  // stop requested, queue drained
      task = std::move(state_->queue.front());
      state_->queue.pop_front();
    }
    task();
  }
}

ScopedThreads::ScopedThreads(std::size_t workers)
    : owned_(std::make_unique<ThreadPool>(workers)),
      previous_(g_override_pool) {
  g_override_pool = owned_.get();
}

ScopedThreads::~ScopedThreads() { g_override_pool = previous_; }

namespace detail {
ThreadPool& current_pool() {
  return g_override_pool != nullptr ? *g_override_pool
                                    : ThreadPool::global();
}
}  // namespace detail

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn) {
  if (end <= begin) return;
  const std::size_t n = end - begin;
  // Serial fallbacks: 1-sized pools, single-index ranges, and nested calls
  // from inside a worker (running the range inline keeps the pool free and
  // cannot deadlock). All three are bit-identical to the parallel path by
  // the determinism contract, so the choice is invisible to callers.
  if (pool.size() <= 1 || n == 1 || ThreadPool::on_worker_thread()) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }

  const std::size_t chunks = std::min(pool.size(), n);
  struct Join {
    std::mutex mutex;
    std::condition_variable done;
    std::size_t remaining;
    std::exception_ptr error;
  } join;
  join.remaining = chunks;

  for (std::size_t c = 0; c < chunks; ++c) {
    // Static chunking: contiguous, near-equal ranges fixed up front.
    const std::size_t lo = begin + n * c / chunks;
    const std::size_t hi = begin + n * (c + 1) / chunks;
    pool.submit([&join, &fn, lo, hi] {
      std::exception_ptr error;
      try {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      } catch (...) {
        error = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(join.mutex);
      if (error && !join.error) join.error = error;
      if (--join.remaining == 0) join.done.notify_all();
    });
  }

  std::unique_lock<std::mutex> lock(join.mutex);
  join.done.wait(lock, [&join] { return join.remaining == 0; });
  if (join.error) std::rethrow_exception(join.error);
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn) {
  parallel_for(detail::current_pool(), begin, end, fn);
}

}  // namespace airfinger::common
