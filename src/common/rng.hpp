// Deterministic pseudo-random number generation for reproducible simulation.
//
// Every stochastic component in the repository draws from a seeded Rng; no
// code uses std::random_device or wall-clock seeding. Rng implements
// xoshiro256++ (Blackman & Vigna), which is fast, has a 2^256-1 period, and
// passes BigCrush. Independent substreams are derived with split(), which
// uses splitmix64 on a fork counter so parallel consumers never correlate.
#pragma once

#include <cstdint>
#include <vector>

namespace airfinger::common {

/// Seedable xoshiro256++ generator with normal/uniform helpers.
///
/// Satisfies UniformRandomBitGenerator so it can drive <random>
/// distributions, though the built-in helpers below are preferred for
/// reproducibility across standard-library implementations.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Constructs a generator from a 64-bit seed (expanded via splitmix64).
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  /// Next raw 64-bit output.
  std::uint64_t operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0. Unbiased (rejection method).
  std::uint64_t below(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Standard normal deviate (Marsaglia polar method, cached spare).
  double normal();

  /// Normal deviate with the given mean and standard deviation (sd >= 0).
  double normal(double mean, double sd);

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Derives an independent substream; deterministic in fork order.
  Rng split();

  /// Derives an independent substream keyed by a caller-chosen stream id.
  /// Unlike split(), this neither consumes nor mutates the parent: the
  /// child is a pure function of the parent's current state and the id, so
  /// parallel consumers (one stream per repetition, per tree, per fold)
  /// obtain identical substreams regardless of execution order or thread
  /// count. Distinct ids yield decorrelated streams (SplitMix64-mixed).
  Rng split(std::uint64_t stream_id) const;

  /// Fisher-Yates shuffle of an index vector [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t next_raw();

  std::uint64_t s_[4]{};
  std::uint64_t fork_counter_ = 0;
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

/// splitmix64 step; exposed for seeding helpers and tests.
std::uint64_t splitmix64(std::uint64_t& state);

}  // namespace airfinger::common
