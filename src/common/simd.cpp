// Scalar reference table + runtime tier dispatch for the AF_SIMD kernel
// layer (DESIGN.md §15).
#include "common/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <optional>

#include "common/simd_kernels.inl"

namespace airfinger::simd {

namespace detail {

const Kernels& scalar_table() {
  static const Kernels table = {
      Tier::kScalar,
      &scalar_accumulate,
      &scalar_moving_average_range,
      &scalar_acf_numerators,
      &scalar_conv_clipped,
      &scalar_count_matches,
      &scalar_apen_phi,
      &scalar_entropy_counts,
      &scalar_count_peaks_at_least,
      &scalar_goertzel_batch,
      &scalar_fft_stage,
      &scalar_forest_leaves,
      &scalar_sum_fast,
      &scalar_dot_fast,
  };
  return table;
}

#if AF_SIMD_ENABLED && (defined(__x86_64__) || defined(_M_X64))
#define AF_SIMD_HAVE_X86 1
const Kernels& sse2_table();  // simd_sse2.cpp
const Kernels& avx2_table();  // simd_avx2.cpp
#else
#define AF_SIMD_HAVE_X86 0
#endif

#if AF_SIMD_ENABLED && defined(__aarch64__)
#define AF_SIMD_HAVE_NEON 1
const Kernels& neon_table();  // simd_neon.cpp
#else
#define AF_SIMD_HAVE_NEON 0
#endif

}  // namespace detail

namespace {

/// Table for a tier, or nullptr when the build or the CPU lacks it.
const Kernels* table_for(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return &detail::scalar_table();
    case Tier::kSSE2:
#if AF_SIMD_HAVE_X86
      return &detail::sse2_table();  // SSE2 is x86-64 baseline
#else
      return nullptr;
#endif
    case Tier::kAVX2:
#if AF_SIMD_HAVE_X86
      return __builtin_cpu_supports("avx2") ? &detail::avx2_table()
                                            : nullptr;
#else
      return nullptr;
#endif
    case Tier::kNEON:
#if AF_SIMD_HAVE_NEON
      return &detail::neon_table();  // NEON is aarch64 baseline
#else
      return nullptr;
#endif
  }
  return nullptr;
}

std::optional<Tier> parse_tier(const char* name) {
  if (std::strcmp(name, "scalar") == 0) return Tier::kScalar;
  if (std::strcmp(name, "sse2") == 0) return Tier::kSSE2;
  if (std::strcmp(name, "avx2") == 0) return Tier::kAVX2;
  if (std::strcmp(name, "neon") == 0) return Tier::kNEON;
  return std::nullopt;
}

std::atomic<const Kernels*> g_active{nullptr};

const Kernels* initial_table() {
  Tier tier = detected_tier();
  if (const char* env = std::getenv("AF_SIMD_TIER")) {
    // An unknown or unavailable override is ignored rather than fatal:
    // the variable is a test/diagnostic hook, not configuration.
    if (const auto requested = parse_tier(env);
        requested && table_for(*requested))
      tier = *requested;
  }
  return table_for(tier);
}

}  // namespace

const char* tier_name(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kSSE2:
      return "sse2";
    case Tier::kAVX2:
      return "avx2";
    case Tier::kNEON:
      return "neon";
  }
  return "scalar";
}

Tier detected_tier() {
#if AF_SIMD_HAVE_X86
  if (__builtin_cpu_supports("avx2")) return Tier::kAVX2;
  return Tier::kSSE2;
#elif AF_SIMD_HAVE_NEON
  return Tier::kNEON;
#else
  return Tier::kScalar;
#endif
}

const Kernels& kernels() {
  const Kernels* active = g_active.load(std::memory_order_acquire);
  if (active == nullptr) {
    const Kernels* resolved = initial_table();
    // Lost races are benign: every first-caller resolves the same table,
    // and a concurrent set_tier() simply wins.
    const Kernels* expected = nullptr;
    g_active.compare_exchange_strong(expected, resolved,
                                     std::memory_order_acq_rel);
    active = g_active.load(std::memory_order_acquire);
  }
  return *active;
}

Tier active_tier() { return kernels().tier; }

bool set_tier(Tier tier) {
  const Kernels* table = table_for(tier);
  if (table == nullptr) return false;
  g_active.store(table, std::memory_order_release);
  return true;
}

}  // namespace airfinger::simd
