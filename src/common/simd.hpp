// AF_SIMD kernel layer: runtime-dispatched vector kernels for the
// dsp/features/ml hot path (DESIGN.md §15).
//
// The layer is a table of function pointers (`Kernels`) resolved once at
// startup from the best tier the CPU supports (scalar / SSE2 / AVX2 on
// x86-64, NEON on aarch64). Call sites fetch the table via kernels() and
// never branch on the architecture themselves.
//
// Exactness contract: every kernel above the `fast-math` divider is
// BIT-IDENTICAL to the scalar reference implementation on every tier. The
// vector variants achieve this by laning across *independent outputs*
// (moving-average positions, ACF lags, CWT output samples, Goertzel
// frequencies, trees) so each lane reproduces the scalar accumulation
// order, or by counting integers (entropy matches, peaks), which is
// order-free. No backend is compiled with FMA, so mul+add sequences cannot
// be contracted. The scalar table entries ARE the reference: the former
// open-coded loops in dsp/ and features/ moved here verbatim.
//
// The two kernels below the divider (sum_fast / dot_fast) reassociate a
// single reduction across lanes and are only epsilon-equivalent; call
// sites route through them solely under -DAF_SIMD_FAST_MATH=ON (see
// common/reduce.hpp). They exist in every table — including scalar, where
// they fall back to the serial order — so tests can gate them in any
// build.
//
// Thread safety: kernels() is safe to call concurrently. set_tier() is a
// test hook; call it only while no other thread is inside a kernel.
#pragma once

#include <cstddef>
#include <cstdint>

#ifndef AF_SIMD_ENABLED
#define AF_SIMD_ENABLED 0
#endif

namespace airfinger::simd {

enum class Tier : std::uint8_t { kScalar = 0, kSSE2, kAVX2, kNEON };

/// Lower-case tier name ("scalar", "sse2", "avx2", "neon").
const char* tier_name(Tier tier);

struct Kernels {
  Tier tier = Tier::kScalar;

  // ---- exact tier: bit-identical to the scalar reference on all tiers ----

  /// acc[i] += x[i] for i in [0, n).
  void (*accumulate)(double* acc, const double* x, std::size_t n);

  /// Centred moving average of window w over x[0..n): writes out[i] for
  /// i in [from, to) only (out must be sized n). Edges use the available
  /// neighbourhood; each output accumulates its window left to right.
  void (*moving_average_range)(const double* x, std::size_t n, std::size_t w,
                               std::size_t from, std::size_t to, double* out);

  /// ACF numerators over the centred signal d: out[j] = sum_i d[i] *
  /// d[i + lag0 + j] for j in [0, count), i ascending per lag.
  void (*acf_numerators)(const double* d, std::size_t n, std::size_t lag0,
                         std::size_t count, double* out);

  /// Same-size clipped convolution (CWT row): out[i] = sum_k x[i + k -
  /// half] * w[k] over the taps k of the (2*half+1)-long kernel that land
  /// inside [0, n), k ascending.
  void (*conv_clipped)(const double* x, std::size_t n, const double* w,
                       std::size_t half, double* out);

  /// Sample-entropy pair count: templates of length m within Chebyshev
  /// tolerance r, self-matches excluded (j > i).
  std::size_t (*count_matches)(const double* x, std::size_t n, std::size_t m,
                               double r);

  /// Approximate-entropy phi(m): mean over templates i of log(C_i /
  /// templates) where C_i counts all j (self included) within tolerance r.
  /// Requires n > m.
  double (*apen_phi)(const double* x, std::size_t n, std::size_t m, double r);

  /// Fused SampEn/ApEn pair sweep: one pass over ordered template pairs
  /// (i < j) of length m yields the SampEn totals for m and m+1
  /// (pairs_m / pairs_m1) and the ApEn per-template neighbour counts
  /// with the self-match included (cm sized n-m+1, cm1 sized n-m). A
  /// length-(m+1) match is a length-m match whose final offset is also
  /// within r, counted only while both templates fit. Every output is
  /// an integer, hence order-free and exactly equal on every tier to
  /// what count_matches(m), count_matches(m+1), and apen_phi's inner
  /// counts would produce. Requires n > m + 1.
  void (*entropy_counts)(const double* x, std::size_t n, std::size_t m,
                         double r, std::uint32_t* cm, std::uint32_t* cm1,
                         std::size_t* pairs_m, std::size_t* pairs_m1);

  /// Peaks strictly above their `support` neighbours on both sides whose
  /// value is >= level. level = -HUGE_VAL counts every peak.
  std::size_t (*count_peaks_at_least)(const double* x, std::size_t n,
                                      std::size_t support, double level);

  /// k Goertzel recurrences over the same window, one lane per frequency:
  /// s0 = (x[i] + coeff*s1) - s2. Final states land in s1/s2 (size k).
  void (*goertzel_batch)(const double* x, std::size_t n, const double* coeff,
                         std::size_t k, double* s1, double* s2);

  /// One radix-2 FFT stage over n complex values stored as interleaved
  /// (re, im) doubles: for every block of `len` values, butterflies
  /// u' = u + v*w, v' = u - v*w with the len/2 precomputed twiddles in
  /// `tw` (interleaved re, im). Requires len >= 2 and len | n.
  void (*fft_stage)(double* reim, std::size_t n, std::size_t len,
                    const double* tw);

  /// Batched forest descent: idx[t] holds the root node of tree t on
  /// entry and its reached leaf on exit. Nodes are the CompiledForest SoA
  /// arrays (feature < 0 marks a leaf; right child = child + 1; descend
  /// left iff x[feature] < threshold, NaN routing right like the scalar
  /// ternary).
  void (*forest_leaves)(const std::int32_t* feature, const double* threshold,
                        const std::int32_t* child, const double* x,
                        std::int32_t* idx, std::size_t count);

  // ---- fast-math tier: reassociated, epsilon contract only ----

  /// sum(x) with lane-parallel partial sums. NOT bit-stable across tiers.
  double (*sum_fast)(const double* x, std::size_t n);

  /// dot(a, b) with lane-parallel partial sums. NOT bit-stable across
  /// tiers. dot_fast(x, x, n) is the fast energy reduction.
  double (*dot_fast)(const double* a, const double* b, std::size_t n);
};

/// The active kernel table. First call resolves the tier: the best the
/// CPU supports, unless the AF_SIMD_TIER environment variable ("scalar",
/// "sse2", "avx2", "neon") names an available tier.
const Kernels& kernels();

/// Tier of the active table.
Tier active_tier();

/// Best tier this build + CPU supports, ignoring overrides.
Tier detected_tier();

/// Forces the active table (test hook). Returns false — leaving the
/// table unchanged — when the tier is not compiled in or the CPU lacks it.
bool set_tier(Tier tier);

}  // namespace airfinger::simd
