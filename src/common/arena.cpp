#include "common/arena.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"

namespace airfinger::common {

ScratchArena::ScratchArena(std::size_t initial_bytes)
    : initial_bytes_(std::max<std::size_t>(initial_bytes, 64)) {}

void* ScratchArena::allocate_bytes(std::size_t bytes, std::size_t align) {
  // Try the current and any later (already reserved) blocks first; only
  // when none fits is a new block appended — sized geometrically so the
  // steady state settles into a handful of blocks that are never grown
  // again.
  for (; current_ < blocks_.size(); ++current_) {
    Block& b = blocks_[current_];
    const std::size_t aligned = (b.used + align - 1) & ~(align - 1);
    if (aligned + bytes <= b.size) {
      b.used = aligned + bytes;
      return b.data.get() + aligned;
    }
    // Move on: later blocks were rewound to used == 0.
  }
  const std::size_t last_size = blocks_.empty() ? initial_bytes_ / 2
                                                : blocks_.back().size;
  const std::size_t size = std::max(bytes + align, last_size * 2);
  Block block;
  block.data = std::make_unique<std::byte[]>(size);
  block.size = size;
  block.used = bytes;  // fresh block: base is maximally aligned
  blocks_.push_back(std::move(block));
  current_ = blocks_.size() - 1;
  return blocks_.back().data.get();
}

void ScratchArena::rewind(std::size_t block, std::size_t used) {
  if (blocks_.empty()) return;
  AF_ASSERT(block < blocks_.size(), "arena frame rewinds past the chain");
  for (std::size_t i = block + 1; i < blocks_.size(); ++i)
    blocks_[i].used = 0;
  blocks_[block].used = used;
  current_ = block;
}

std::size_t ScratchArena::capacity_bytes() const {
  std::size_t total = 0;
  for (const Block& b : blocks_) total += b.size;
  return total;
}

}  // namespace airfinger::common
