// Console table rendering used by the benchmark harnesses to print the
// paper's tables and figure data series in aligned, human-readable form.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace airfinger::common {

/// Builds and renders an aligned text table with a header row.
///
/// Cells are stored as strings; numeric helpers format with fixed precision.
/// Rendering pads each column to its widest cell.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Appends a pre-formatted row. Must match the header arity.
  void add_row(std::vector<std::string> cells);

  /// Formats a double with the given number of decimals.
  static std::string num(double v, int decimals = 2);

  /// Formats a ratio as a percentage string ("97.31%").
  static std::string pct(double ratio, int decimals = 2);

  std::size_t row_count() const { return rows_.size(); }

  /// Renders the table (with separators) to the stream.
  void print(std::ostream& os) const;

  /// Renders to a string.
  std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner ("== title ==") used to delimit bench output.
void print_banner(std::ostream& os, const std::string& title);

}  // namespace airfinger::common
