// Shared parallel-execution layer: a lazily-initialized global thread pool
// plus order-preserving parallel_for / parallel_map primitives.
//
// Design contract (see DESIGN.md "Concurrency & determinism"): every loop
// parallelized through this layer must produce bit-identical results at any
// thread count, including 1. The primitives guarantee the scheduling half of
// that contract — each index is executed exactly once and outputs land in
// index order — while callers guarantee the data half by deriving one
// independent Rng stream per index (Rng::split(stream_id)) and reducing any
// floating-point accumulation serially in index order after the parallel
// region.
//
// Worker count: AF_THREADS environment variable when set (>= 1), otherwise
// std::thread::hardware_concurrency(). AF_THREADS=1 (or a 1-sized pool)
// short-circuits every primitive to plain inline loops on the calling
// thread — no worker threads are ever touched.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

namespace airfinger::common {

/// Worker count the global pool is created with: the AF_THREADS environment
/// variable when set to an integer >= 1, else hardware_concurrency (>= 1).
std::size_t resolve_thread_count();

/// Size of the pool the pool-less primitives would dispatch to right now:
/// the active ScopedThreads override when one is installed, else the global
/// pool. Components that own their own threads (the sharded serving host)
/// use this to resolve "auto" widths so AF_THREADS and ScopedThreads keep
/// governing them the same way they govern parallel_for.
std::size_t current_thread_count();

/// Fixed-size worker pool with a shared FIFO task queue.
///
/// A pool of size <= 1 spawns no threads; submit() then runs the task
/// inline. Destruction drains already-submitted tasks before joining.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Logical size (what parallel_for chunks against).
  std::size_t size() const { return size_; }

  /// Enqueues a task (runs inline when the pool has no workers).
  void submit(std::function<void()> task);

  /// True when called from inside one of this process's pool workers.
  /// parallel_for uses it to run nested invocations inline, so tasks may
  /// freely call parallelized code without deadlocking the pool.
  static bool on_worker_thread();

  /// The process-wide pool, created on first use with
  /// resolve_thread_count() workers.
  static ThreadPool& global();

 private:
  struct State;  // queue + synchronization, defined in parallel.cpp
  void worker_loop();

  std::size_t size_ = 1;
  std::unique_ptr<State> state_;
  std::vector<std::thread> workers_;
};

/// Scoped override of the pool used by the pool-less parallel_for /
/// parallel_map overloads below. Intended for tests and benchmarks that
/// compare thread counts within one process (the global pool's size is
/// fixed at creation). Overrides nest; each restores the previous pool on
/// destruction. Not thread-safe: install overrides from the main thread
/// only, outside parallel regions.
class ScopedThreads {
 public:
  explicit ScopedThreads(std::size_t workers);
  ~ScopedThreads();

  ScopedThreads(const ScopedThreads&) = delete;
  ScopedThreads& operator=(const ScopedThreads&) = delete;

 private:
  std::unique_ptr<ThreadPool> owned_;
  ThreadPool* previous_ = nullptr;
};

/// Runs fn(i) for every i in [begin, end) on the given pool with static
/// chunking (at most pool.size() contiguous chunks). Blocks until all
/// indices completed. The first exception thrown by any worker is rethrown
/// on the calling thread after the whole range has been attempted. Runs
/// inline (serial) when the pool has <= 1 workers, the range has a single
/// index, or the caller is itself a pool worker (nested invocation).
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn);

/// parallel_for on the current pool (the active ScopedThreads override,
/// else the global pool).
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn);

/// Order-preserving map: out[i] = fn(items[i]), computed in parallel.
/// Equivalent to std::transform over items for any pool size. The result
/// type must be default-constructible and movable.
template <typename In, typename Fn>
auto parallel_map(ThreadPool& pool, const std::vector<In>& items, Fn&& fn)
    -> std::vector<std::decay_t<decltype(fn(items.front()))>> {
  using Out = std::decay_t<decltype(fn(items.front()))>;
  std::vector<Out> out(items.size());
  parallel_for(pool, 0, items.size(),
               [&](std::size_t i) { out[i] = fn(items[i]); });
  return out;
}

/// parallel_map on the current pool.
template <typename In, typename Fn>
auto parallel_map(const std::vector<In>& items, Fn&& fn)
    -> std::vector<std::decay_t<decltype(fn(items.front()))>>;

namespace detail {
/// The pool the pool-less overloads dispatch to.
ThreadPool& current_pool();
}  // namespace detail

template <typename In, typename Fn>
auto parallel_map(const std::vector<In>& items, Fn&& fn)
    -> std::vector<std::decay_t<decltype(fn(items.front()))>> {
  return parallel_map(detail::current_pool(), items,
                      std::forward<Fn>(fn));
}

}  // namespace airfinger::common
