#include "obs/pipeline.hpp"

#include <algorithm>
#include <ostream>

#include "common/error.hpp"

namespace airfinger::obs {

const char* stage_name(Stage stage) {
  switch (stage) {
    case Stage::kIngest: return "ingest";
    case Stage::kTimingCache: return "timing_cache";
    case Stage::kProbe: return "probe";
    case Stage::kDecide: return "decide";
    case Stage::kFeatures: return "features";
    case Stage::kForest: return "forest";
    case Stage::kZebra: return "zebra";
  }
  return "unknown";
}

const char* kind_name(PipelineEvent::Kind kind) {
  switch (kind) {
    case PipelineEvent::Kind::kSegmentOpen: return "segment_open";
    case PipelineEvent::Kind::kSegmentClose: return "segment_close";
    case PipelineEvent::Kind::kSegmentReject: return "segment_reject";
    case PipelineEvent::Kind::kQuarantineEnter: return "quarantine_enter";
    case PipelineEvent::Kind::kQuarantineExit: return "quarantine_exit";
    case PipelineEvent::Kind::kEmit: return "emit";
    case PipelineEvent::Kind::kArtifact: return "artifact";
  }
  return "unknown";
}

const char* artifact_detail_name(std::uint8_t detail) {
  // Mirrors core::ArtifactClass without depending on af_core (obs sits
  // below core in the layering).
  switch (detail) {
    case 0: return "impulse";
    case 1: return "crackle";
    case 2: return "step";
    case 3: return "drift";
    case 4: return "flicker";
  }
  return "unknown";
}

const char* reject_name(PipelineEvent::Reject reason) {
  switch (reason) {
    case PipelineEvent::Reject::kTooShort: return "too_short";
    case PipelineEvent::Reject::kFiltered: return "filtered";
    case PipelineEvent::Reject::kQuarantined: return "quarantined";
  }
  return "unknown";
}

EventRing::EventRing(std::size_t capacity) {
  AF_EXPECT(capacity >= 1, "event ring needs capacity >= 1");
  ring_.resize(capacity);
}

bool EventRing::push(const PipelineEvent& event) {
  const bool evicted = size_ == ring_.size();
  ring_[head_] = event;
  head_ = (head_ + 1) % ring_.size();
  if (evicted)
    ++dropped_;
  else
    ++size_;
  return !evicted;
}

std::vector<PipelineEvent> EventRing::events() const {
  std::vector<PipelineEvent> out;
  out.reserve(size_);
  // Oldest first: when full the oldest element sits at head_ (the next
  // write position), otherwise the ring started at index 0.
  const std::size_t start = size_ == ring_.size() ? head_ : 0;
  for (std::size_t i = 0; i < size_; ++i)
    out.push_back(ring_[(start + i) % ring_.size()]);
  return out;
}

std::size_t EventRing::copy_recent(PipelineEvent* out, std::size_t max) const {
  const std::size_t n = std::min(size_, max);
  const std::size_t start = size_ == ring_.size() ? head_ : 0;
  const std::size_t skip = size_ - n;  // Oldest events beyond the window.
  for (std::size_t i = 0; i < n; ++i)
    out[i] = ring_[(start + skip + i) % ring_.size()];
  return n;
}

void EventRing::clear() {
  head_ = 0;
  size_ = 0;
  dropped_ = 0;
}

PipelineObservability::PipelineObservability(std::size_t ring_capacity)
    : clock_(std::make_unique<MonotonicClock>()), ring_(ring_capacity) {
  frames = registry_.counter("af_frames_total",
                             "Frames accepted by push_frame");
  events_detect = registry_.counter(
      "af_events_detect_total", "Detect-gesture events emitted");
  events_scroll = registry_.counter(
      "af_events_scroll_total", "Completed scroll events emitted");
  events_direction = registry_.counter(
      "af_events_direction_total", "Early scroll-direction events emitted");
  events_rejected = registry_.counter(
      "af_events_rejected_total", "Segments rejected as non-gestures");
  segments_opened = registry_.counter(
      "af_segments_opened_total", "Candidate segments opened");
  segments_closed = registry_.counter(
      "af_segments_closed_total", "Segments completed and decided");
  segments_abandoned = registry_.counter(
      "af_segments_abandoned_total", "Open segments abandoned (too short)");
  non_finite_samples = registry_.counter(
      "af_fault_non_finite_total", "NaN/Inf samples seen");
  saturated_samples = registry_.counter(
      "af_fault_saturated_total", "Rail-saturated samples seen");
  stuck_samples = registry_.counter(
      "af_fault_stuck_total", "Samples extending a frozen run");
  quarantined_frames = registry_.counter(
      "af_quarantined_frames_total", "Frames consumed while degraded");
  quarantines = registry_.counter(
      "af_quarantines_total", "Healthy-to-quarantined transitions");
  recalibrations = registry_.counter(
      "af_recalibrations_total", "Quarantined-to-healthy recoveries");
  segments_dropped = registry_.counter(
      "af_segments_dropped_total", "Open segments lost to quarantine");
  quarantined =
      registry_.gauge("af_quarantined", "1 while the stream is degraded");
  artifact_impulse_suspect = registry_.counter(
      "af_artifact_impulse_suspect_total",
      "Samples whose derivative z crossed click_sigma (no action taken)");
  artifact_impulsive_suspect = registry_.counter(
      "af_artifact_impulsive_suspect_total",
      "Frames with LPC-residual or kurtosis confidence at threshold");
  artifact_tonal_suspect = registry_.counter(
      "af_artifact_tonal_suspect_total",
      "Frames with spectral-flatness confidence at threshold");
  artifact_impulse_detected = registry_.counter(
      "af_artifact_impulse_detected_total",
      "Impulse hold episodes started by the repair gate");
  artifact_impulse_repaired = registry_.counter(
      "af_artifact_impulse_repaired_total",
      "Impulse episodes repaired in place by interpolation");
  artifact_repaired_frames = registry_.counter(
      "af_artifact_repaired_frames_total",
      "Frames rewritten by glitch repair");
  artifact_crackle_detected = registry_.counter(
      "af_artifact_crackle_detected_total",
      "Crackle-train classifications");
  artifact_step_detected = registry_.counter(
      "af_artifact_step_detected_total",
      "Zipper/step level-shift classifications");
  artifact_drift_detected = registry_.counter(
      "af_artifact_drift_detected_total",
      "Slow-baseline-drift classifications");
  artifact_flicker_detected = registry_.counter(
      "af_artifact_flicker_detected_total",
      "Periodic ambient-flicker classifications");
  artifact_quarantines = registry_.counter(
      "af_artifact_quarantines_total",
      "Quarantines entered via artifact escalation");
  trace_dropped_ = registry_.counter(
      "af_trace_events_dropped_total",
      "Pipeline events evicted from the trace ring");
  // Stage latency histograms: 100 ns .. 1 s, log-spaced. 36 finite buckets
  // = ~5 per decade, enough to separate a 2 us ingest from a 200 us decide
  // without inflating the per-session footprint.
  for (std::size_t s = 0; s < kStageCount; ++s) {
    stage_hist_[s] = registry_.histogram(
        std::string("af_stage_") + stage_name(static_cast<Stage>(s)) + "_ns",
        std::string("Nanoseconds spent in the ") +
            stage_name(static_cast<Stage>(s)) + " stage",
        HistogramSpec{});
  }
  // Gesture-trace series (DESIGN.md §18). Registered unconditionally so the
  // metric schema — and therefore host aggregation — is identical across
  // AF_OBS_TRACE on/off trees; the series only move when tracing records.
  // e2e spans 10 us (tick-clock replay) to 10 s (a live gesture's real
  // duration), log-spaced.
  gesture_e2e_ = registry_.histogram(
      "af_gesture_e2e_seconds",
      "End-to-end first-frame-to-emission latency per gesture segment",
      HistogramSpec{1e-5, 10.0, 24});
  traces_completed_ = registry_.counter(
      "af_gesture_traces_total", "Gesture traces finalized");
  traces_evicted_ = registry_.counter(
      "af_gesture_traces_dropped_total",
      "Completed gesture traces evicted from the per-session trace ring");
  recorder_.resize_exemplars(
      registry_.histogram_bounds(gesture_e2e_).size() + 1);
}

void PipelineObservability::set_clock(std::unique_ptr<Clock> clock) {
  AF_EXPECT(clock != nullptr, "observability clock must not be null");
  clock_ = std::move(clock);
}

void PipelineObservability::set_sample_every(std::uint32_t n) {
  AF_EXPECT(n >= 1, "span sampling rate must be >= 1");
  sample_every_ = n;
  sample_countdown_ = 1;
}

void PipelineObservability::record(PipelineEvent::Kind kind,
                                   std::uint64_t frame, std::uint64_t begin,
                                   std::uint64_t end, std::uint8_t detail) {
  PipelineEvent event;
  event.t_ns = clock_->now_ns();
  event.frame = frame;
  event.begin = begin;
  event.end = end;
  event.kind = kind;
  event.detail = detail;
  if (!ring_.push(event)) registry_.inc(trace_dropped_);
#if AF_OBS_TRACE_ENABLED
  if (trace_enabled_) route_trace(event);
#endif
}

#if AF_OBS_TRACE_ENABLED
void PipelineObservability::route_trace(const PipelineEvent& e) {
  const std::uint64_t completed_before = recorder_.completed_total();
  const std::uint64_t evicted_before = recorder_.dropped();
  switch (e.kind) {
    case PipelineEvent::Kind::kSegmentOpen:
      recorder_.begin(e.frame, e.begin, e.t_ns);
      break;
    case PipelineEvent::Kind::kSegmentClose:
      recorder_.note_close(e.frame, e.end, e.t_ns);
      break;
    case PipelineEvent::Kind::kSegmentReject:
      switch (static_cast<PipelineEvent::Reject>(e.detail)) {
        case PipelineEvent::Reject::kFiltered:
          // The non-gesture emission that follows finalizes the trace.
          recorder_.note_filtered();
          break;
        case PipelineEvent::Reject::kTooShort:
          recorder_.abandon(GestureTrace::Outcome::kAbandoned, e.frame,
                            e.t_ns);
          break;
        case PipelineEvent::Reject::kQuarantined:
          recorder_.abandon(GestureTrace::Outcome::kQuarantined, e.frame,
                            e.t_ns);
          break;
      }
      break;
    case PipelineEvent::Kind::kQuarantineEnter:
      capture_postmortem(FlightReason::kQuarantine, e.frame);
      break;
    case PipelineEvent::Kind::kEmit: {
      const std::int64_t e2e = recorder_.note_emit(e.detail, e.frame, e.t_ns);
      if (e2e >= 0) {
        const double seconds = static_cast<double>(e2e) * 1e-9;
        registry_.observe(gesture_e2e_, seconds);
        const std::vector<double>& bounds =
            registry_.histogram_bounds(gesture_e2e_);
        const auto it =
            std::lower_bound(bounds.begin(), bounds.end(), seconds);
        if (const GestureTrace* done = recorder_.latest())
          recorder_.set_exemplar(
              static_cast<std::size_t>(it - bounds.begin()), done->trace_id);
      }
      break;
    }
    default:
      break;
  }
  if (const std::uint64_t d = recorder_.completed_total() - completed_before)
    registry_.inc(traces_completed_, d);
  if (const std::uint64_t d = recorder_.dropped() - evicted_before)
    registry_.inc(traces_evicted_, d);
}
#endif

void PipelineObservability::capture_postmortem(FlightReason reason,
                                               std::uint64_t frame) {
#if AF_OBS_TRACE_ENABLED
  if (!flight_.begin_capture(reason, frame)) return;
  std::array<PipelineEvent, FlightRecorder::kDefaultEventCapacity> tail;
  const std::size_t n = ring_.copy_recent(tail.data(), tail.size());
  for (std::size_t i = 0; i < n; ++i) {
    FlightEvent fe;
    fe.t_ns = tail[i].t_ns;
    fe.frame = tail[i].frame;
    fe.begin = tail[i].begin;
    fe.end = tail[i].end;
    fe.kind = static_cast<std::uint8_t>(tail[i].kind);
    fe.detail = tail[i].detail;
    flight_.capture_event(fe);
  }
  if (const GestureTrace* last = recorder_.latest())
    flight_.capture_trace(*last);
  if (recorder_.active()) flight_.capture_trace(recorder_.active_trace());
#else
  (void)reason;
  (void)frame;
#endif
}

void PipelineObservability::reset_values() {
  registry_.reset_values();
  ring_.clear();
  recorder_.clear();
  flight_.clear();
  // Restart the sampling phase so a reset session traces exactly like a
  // fresh one (Session::reset() bit-identity).
  sample_countdown_ = 1;
}

void PipelineObservability::dump_events(std::ostream& os) const {
  for (const PipelineEvent& e : ring_.events()) {
    os << "t_ns=" << e.t_ns << " frame=" << e.frame << ' '
       << kind_name(e.kind);
    switch (e.kind) {
      case PipelineEvent::Kind::kSegmentReject:
        os << ' ' << reject_name(static_cast<PipelineEvent::Reject>(e.detail));
        break;
      case PipelineEvent::Kind::kEmit:
        os << " type=" << static_cast<int>(e.detail);
        break;
      case PipelineEvent::Kind::kArtifact:
        os << ' ' << artifact_detail_name(e.detail);
        break;
      default:
        break;
    }
    if (e.kind == PipelineEvent::Kind::kSegmentOpen ||
        e.kind == PipelineEvent::Kind::kSegmentClose ||
        e.kind == PipelineEvent::Kind::kSegmentReject ||
        e.kind == PipelineEvent::Kind::kEmit ||
        e.kind == PipelineEvent::Kind::kArtifact)
      os << " segment=" << e.begin << ".." << e.end;
    os << '\n';
  }
  if (ring_.dropped() > 0)
    os << "(+" << ring_.dropped() << " events dropped)\n";
}

}  // namespace airfinger::obs
