#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace airfinger::obs {

void MetricsSnapshot::add_from(const MetricsSnapshot& other) {
  AF_EXPECT(entries.size() == other.entries.size(),
            "snapshot aggregation requires identical schemas");
  for (std::size_t i = 0; i < entries.size(); ++i) {
    MetricEntry& dst = entries[i];
    const MetricEntry& src = other.entries[i];
    AF_EXPECT(dst.type == src.type && dst.name == src.name &&
                  dst.bounds == src.bounds,
              "snapshot aggregation requires identical schemas (metric '" +
                  dst.name + "')");
    switch (dst.type) {
      case MetricEntry::Type::kCounter:
        dst.count = saturating_add(dst.count, src.count);
        break;
      case MetricEntry::Type::kGauge:
        dst.value += src.value;
        break;
      case MetricEntry::Type::kHistogram:
        if (src.count > 0) {
          dst.min = dst.count > 0 ? std::min(dst.min, src.min) : src.min;
          dst.max = dst.count > 0 ? std::max(dst.max, src.max) : src.max;
        }
        dst.count = saturating_add(dst.count, src.count);
        dst.value += src.value;
        for (std::size_t b = 0; b < dst.buckets.size(); ++b)
          dst.buckets[b] = saturating_add(dst.buckets[b], src.buckets[b]);
        break;
    }
  }
}

const MetricEntry* MetricsSnapshot::find(const std::string& name) const {
  for (const MetricEntry& e : entries)
    if (e.name == name) return &e;
  return nullptr;
}

Registry::Handle Registry::counter(std::string name, std::string help) {
  counters_.push_back({std::move(name), std::move(help), 0});
  order_.push_back({MetricEntry::Type::kCounter,
                    static_cast<std::uint32_t>(counters_.size() - 1)});
  return static_cast<Handle>(counters_.size() - 1);
}

Registry::Handle Registry::gauge(std::string name, std::string help) {
  gauges_.push_back({std::move(name), std::move(help), 0.0});
  order_.push_back({MetricEntry::Type::kGauge,
                    static_cast<std::uint32_t>(gauges_.size() - 1)});
  return static_cast<Handle>(gauges_.size() - 1);
}

Registry::Handle Registry::histogram(std::string name, std::string help,
                                     HistogramSpec spec) {
  AF_EXPECT(spec.buckets >= 2, "histogram needs at least two buckets");
  AF_EXPECT(spec.least > 0.0 && spec.most > spec.least,
            "histogram bounds must satisfy 0 < least < most");
  HistogramState h;
  h.name = std::move(name);
  h.help = std::move(help);
  h.bounds.resize(spec.buckets);
  // Geometric series least..most inclusive: bound[i] = least * r^i with
  // r^(n-1) = most/least. The endpoints are pinned exactly so the schema
  // is reproducible from the spec alone.
  const double ratio = std::pow(spec.most / spec.least,
                                1.0 / static_cast<double>(spec.buckets - 1));
  for (std::size_t i = 0; i < spec.buckets; ++i)
    h.bounds[i] = spec.least * std::pow(ratio, static_cast<double>(i));
  h.bounds.front() = spec.least;
  h.bounds.back() = spec.most;
  h.buckets.assign(spec.buckets + 1, 0);
  histograms_.push_back(std::move(h));
  order_.push_back({MetricEntry::Type::kHistogram,
                    static_cast<std::uint32_t>(histograms_.size() - 1)});
  return static_cast<Handle>(histograms_.size() - 1);
}

void Registry::observe(Handle h, double v) {
  HistogramState& hist = histograms_[h];
  // First finite bound whose value is >= v; +Inf bucket when none.
  const auto it = std::lower_bound(hist.bounds.begin(), hist.bounds.end(), v);
  const auto bucket =
      static_cast<std::size_t>(it - hist.bounds.begin());
  hist.buckets[bucket] = saturating_add(hist.buckets[bucket], 1);
  hist.min = hist.count > 0 ? std::min(hist.min, v) : v;
  hist.max = hist.count > 0 ? std::max(hist.max, v) : v;
  hist.count = saturating_add(hist.count, 1);
  hist.sum += v;
}

void Registry::add_from(const Registry& other) {
  AF_EXPECT(counters_.size() == other.counters_.size() &&
                gauges_.size() == other.gauges_.size() &&
                histograms_.size() == other.histograms_.size(),
            "registry aggregation requires identical schemas");
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    AF_EXPECT(counters_[i].name == other.counters_[i].name,
              "registry aggregation requires identical schemas (counter '" +
                  counters_[i].name + "')");
    counters_[i].value =
        saturating_add(counters_[i].value, other.counters_[i].value);
  }
  for (std::size_t i = 0; i < gauges_.size(); ++i) {
    AF_EXPECT(gauges_[i].name == other.gauges_[i].name,
              "registry aggregation requires identical schemas (gauge '" +
                  gauges_[i].name + "')");
    gauges_[i].value += other.gauges_[i].value;
  }
  for (std::size_t i = 0; i < histograms_.size(); ++i) {
    HistogramState& dst = histograms_[i];
    const HistogramState& src = other.histograms_[i];
    AF_EXPECT(dst.name == src.name && dst.bounds == src.bounds,
              "registry aggregation requires identical schemas (histogram '" +
                  dst.name + "')");
    if (src.count > 0) {
      dst.min = dst.count > 0 ? std::min(dst.min, src.min) : src.min;
      dst.max = dst.count > 0 ? std::max(dst.max, src.max) : src.max;
    }
    dst.count = saturating_add(dst.count, src.count);
    dst.sum += src.sum;
    for (std::size_t b = 0; b < dst.buckets.size(); ++b)
      dst.buckets[b] = saturating_add(dst.buckets[b], src.buckets[b]);
  }
}

void Registry::reset_values() {
  for (auto& c : counters_) c.value = 0;
  for (auto& g : gauges_) g.value = 0.0;
  for (auto& h : histograms_) {
    std::fill(h.buckets.begin(), h.buckets.end(), 0u);
    h.count = 0;
    h.sum = 0.0;
    h.min = 0.0;
    h.max = 0.0;
  }
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  snap.entries.reserve(order_.size());
  for (const Slot& slot : order_) {
    MetricEntry e;
    e.type = slot.type;
    switch (slot.type) {
      case MetricEntry::Type::kCounter: {
        const CounterState& c = counters_[slot.index];
        e.name = c.name;
        e.help = c.help;
        e.count = c.value;
        break;
      }
      case MetricEntry::Type::kGauge: {
        const GaugeState& g = gauges_[slot.index];
        e.name = g.name;
        e.help = g.help;
        e.value = g.value;
        break;
      }
      case MetricEntry::Type::kHistogram: {
        const HistogramState& h = histograms_[slot.index];
        e.name = h.name;
        e.help = h.help;
        e.count = h.count;
        e.value = h.sum;
        e.min = h.min;
        e.max = h.max;
        e.bounds = h.bounds;
        e.buckets = h.buckets;
        break;
      }
    }
    snap.entries.push_back(std::move(e));
  }
  return snap;
}

}  // namespace airfinger::obs
