// Injectable monotonic time source for the observability layer.
//
// Every span and pipeline event timestamp flows through a Clock owned by
// the instrumented component (one per core::Session), never through a
// global. Production uses MonotonicClock (std::chrono::steady_clock);
// tests inject TickClock, which advances by a fixed step per read, so a
// replayed recording produces byte-identical traces and histograms on any
// machine at any thread count — the repo's determinism contract extended
// to the instrumentation itself (DESIGN.md §13).
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>

namespace airfinger::obs {

/// Monotonic nanosecond source. now_ns() is called on the serving hot
/// path, so implementations must not allocate or block.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual std::uint64_t now_ns() = 0;
};

/// Production clock: std::chrono::steady_clock, rebased so the first read
/// of a fresh process does not start at an arbitrary epoch-sized value.
class MonotonicClock final : public Clock {
 public:
  std::uint64_t now_ns() override {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
};

/// Deterministic test clock: starts at `origin_ns` and advances by exactly
/// `step_ns` on every read. A component driven by the same call sequence
/// therefore produces the same timestamps on every run — spans become
/// deterministic durations, histograms become deterministic counts.
class TickClock final : public Clock {
 public:
  explicit TickClock(std::uint64_t step_ns = 1000, std::uint64_t origin_ns = 0)
      : next_(origin_ns), step_(step_ns) {}

  std::uint64_t now_ns() override {
    const std::uint64_t t = next_;
    next_ += step_;
    return t;
  }

 private:
  std::uint64_t next_;
  std::uint64_t step_;
};

}  // namespace airfinger::obs
