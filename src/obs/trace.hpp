// Gesture-scoped tracing, the flight recorder, and Perfetto-loadable
// trace export (DESIGN.md §18).
//
// A gesture trace follows one candidate segment from the frame that opened
// it to the emission (or rejection) that retired it: every stage span the
// session records while the segment is open (ingest → timing_cache →
// probe → decide → features → forest → zebra) lands in the active trace,
// emissions become instant markers, and the finalized trace carries the
// end-to-end first-frame→emission latency that feeds the
// `af_gesture_e2e_seconds` histogram (with exemplar trace ids per bucket).
// Completed traces sit in a fixed-capacity overwrite-oldest ring per
// session; everything here is preallocated at construction, so recording
// preserves the hot path's 0-allocs/frame invariant.
//
// Compile gate: -DAF_OBS_TRACE=OFF defines AF_OBS_TRACE_ENABLED 0 and the
// recording hooks in obs/pipeline.hpp compile away entirely (same
// discipline as AF_OBS_SPANS). When compiled in, a per-session runtime
// switch (`PipelineObservability::set_trace_enabled`) can still silence
// the recorder. Tracing is record-only: it never feeds back into any
// decision, so emissions are byte-identical with tracing on or off —
// tests/trace_test.cpp pins that.
//
// Determinism contract: every timestamp in a trace comes from the owning
// session's Clock, and the session's clock-read sequence is a pure
// function of its input stream. Under TickClock the exported Chrome JSON
// is therefore byte-identical across runs and across host shard counts.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#ifndef AF_OBS_TRACE_ENABLED
#define AF_OBS_TRACE_ENABLED 1
#endif

namespace airfinger::obs {

/// One timed stage span inside a gesture trace. `stage` holds an
/// obs::Stage value, or kTraceStageEmit for emission markers.
struct TraceSpan {
  std::uint64_t t0_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint8_t stage = 0;

  bool operator==(const TraceSpan&) const = default;
};

/// Pseudo-stage used for emission markers (one past the last real Stage).
inline constexpr std::uint8_t kTraceStageEmit = 7;

/// Stage name covering the pseudo-stages too ("emit" for kTraceStageEmit).
const char* trace_stage_name(std::uint8_t stage);

// Span storage is split so a long segment cannot evict its own decision:
// the per-frame stages (ingest/timing_cache/probe/zebra-in-probe) fill the
// frame list and overflow into `spans_dropped`, while the rare
// segment-level stages (decide/features/forest) keep a reserved list.
inline constexpr std::size_t kTraceFrameSpanCapacity = 48;
inline constexpr std::size_t kTraceDecideSpanCapacity = 12;
inline constexpr std::size_t kTraceMarkCapacity = 4;

/// An emission marker: the session delivered a GestureEvent while this
/// trace was live (early scroll-direction mid-segment, or the final
/// emission that retired the segment).
struct TraceMark {
  std::uint64_t t_ns = 0;
  std::uint64_t frame = 0;
  std::uint8_t emit_type = 0;  ///< GestureEvent type code.

  bool operator==(const TraceMark&) const = default;
};

/// One gesture-scoped trace: the span tree of a single candidate segment.
/// Fixed-size POD so the trace ring and the flight recorder copy it
/// without allocating.
struct GestureTrace {
  enum class Outcome : std::uint8_t {
    kOpen = 0,        ///< Still recording (active trace only).
    kEmitted,         ///< Closed and emitted as a gesture.
    kFiltered,        ///< Closed but rejected by the interference filter.
    kAbandoned,       ///< Abandoned by the segmenter (too short).
    kQuarantined,     ///< Dropped when the session entered quarantine.
  };

  std::uint64_t trace_id = 0;     ///< Per-session, starts at 1.
  std::uint64_t stream = 0;       ///< Owning stream id (host lane index).
  std::uint64_t begin = 0;        ///< Segment begin, absolute sample index.
  std::uint64_t end = 0;          ///< Segment end, absolute sample index.
  std::uint64_t open_frame = 0;   ///< Session frame count at open.
  std::uint64_t close_frame = 0;  ///< Session frame count at close/retire.
  std::uint64_t t_open_ns = 0;    ///< Clock at segment open.
  std::uint64_t t_close_ns = 0;   ///< Clock at close (or retire).
  std::uint64_t t_emit_ns = 0;    ///< Clock at the finalizing emission.
  Outcome outcome = Outcome::kOpen;
  std::uint8_t emit_type = 0;     ///< Final emission's GestureEvent type.
  std::uint16_t frame_span_count = 0;
  std::uint16_t decide_span_count = 0;
  std::uint16_t mark_count = 0;
  std::uint32_t spans_dropped = 0;  ///< Spans lost to capacity.
  std::array<TraceSpan, kTraceFrameSpanCapacity> frame_spans{};
  std::array<TraceSpan, kTraceDecideSpanCapacity> decide_spans{};
  std::array<TraceMark, kTraceMarkCapacity> marks{};

  /// End-to-end first-frame→emission nanoseconds; -1 unless kEmitted or
  /// kFiltered (both retire through an emission).
  std::int64_t e2e_ns() const {
    if (outcome != Outcome::kEmitted && outcome != Outcome::kFiltered)
      return -1;
    return static_cast<std::int64_t>(t_emit_ns - t_open_ns);
  }
};

/// Stable lowercase outcome name ("emitted", "filtered", ...).
const char* outcome_name(GestureTrace::Outcome outcome);

/// Records gesture traces for one session: an active trace driven by the
/// pipeline-event stream plus a fixed-capacity overwrite-oldest ring of
/// completed traces. Single writer (the owning session); all storage is
/// preallocated at construction.
class TraceRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 4;

  explicit TraceRecorder(std::size_t capacity = kDefaultCapacity);

  /// Stream identity stamped on every trace (host lane index; 0 for
  /// standalone sessions).
  void set_stream(std::uint64_t stream) { stream_ = stream; }
  std::uint64_t stream() const { return stream_; }

  bool active() const { return active_open_; }
  const GestureTrace& active_trace() const { return active_; }

  // ----------------------------------------------- event-driven lifecycle
  /// Opens a new trace (finalizing a stale active one as abandoned, which
  /// cannot happen on the session's event stream but keeps the recorder
  /// self-consistent).
  void begin(std::uint64_t frame, std::uint64_t begin, std::uint64_t t_ns);

  /// Appends one stage span to the active trace (no-op when idle).
  void add_span(std::uint8_t stage, std::uint64_t t0_ns,
                std::uint64_t dur_ns);

  /// The segment completed and was decided; the trace stays active until
  /// the finalizing emission arrives.
  void note_close(std::uint64_t frame, std::uint64_t end, std::uint64_t t_ns);

  /// The closed segment was rejected by the interference filter; its
  /// (non-gesture) emission still finalizes the trace, with kFiltered.
  void note_filtered();

  /// An emission was delivered. Mid-segment (open, not yet closed) this is
  /// an early-direction marker and returns -1; after note_close it
  /// finalizes the trace and returns the end-to-end nanoseconds.
  std::int64_t note_emit(std::uint8_t type, std::uint64_t frame,
                         std::uint64_t t_ns);

  /// Retires the active trace without an emission (segmenter abandon or
  /// quarantine drop). `outcome` must be kAbandoned or kQuarantined.
  void abandon(GestureTrace::Outcome outcome, std::uint64_t frame,
               std::uint64_t t_ns);

  // ------------------------------------------------------------ the ring
  std::size_t capacity() const { return ring_.size(); }
  std::size_t size() const { return size_; }
  /// Completed traces evicted from the ring.
  std::uint64_t dropped() const { return dropped_; }
  /// Monotone count of traces ever finalized.
  std::uint64_t completed_total() const { return completed_total_; }
  /// Retained completed traces, oldest first (allocates; offline only).
  std::vector<GestureTrace> completed() const;
  /// Most recently completed trace (nullptr when none retained).
  const GestureTrace* latest() const;

  // ------------------------------------------------------------ exemplars
  /// Sizes the exemplar table (one slot per e2e histogram bucket). Called
  /// once by the owning PipelineObservability at construction.
  void resize_exemplars(std::size_t buckets) { exemplars_.assign(buckets, 0); }
  /// Remembers the finalized trace id for the bucket its e2e landed in
  /// (last-wins), so tail-latency buckets carry a concrete trace to pull.
  void set_exemplar(std::size_t bucket, std::uint64_t trace_id);
  /// Per-bucket exemplar trace ids; 0 = no observation in that bucket.
  const std::vector<std::uint64_t>& exemplars() const { return exemplars_; }

  /// Drops all traces and restarts ids/exemplars (capacity retained) —
  /// Session::reset() semantics. The stream id is configuration and stays.
  void clear();

 private:
  void finalize(GestureTrace::Outcome outcome);
  std::size_t latest_index() const;

  std::vector<GestureTrace> ring_;
  std::size_t head_ = 0;  ///< Next write position.
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t completed_total_ = 0;
  GestureTrace active_{};
  bool active_open_ = false;
  bool closed_ = false;    ///< note_close seen; next emit finalizes.
  bool filtered_ = false;  ///< Close-to-emit window saw a filter reject.
  std::uint64_t next_id_ = 1;
  std::uint64_t stream_ = 0;
  std::vector<std::uint64_t> exemplars_;
};

// --------------------------------------------------------------- flight

/// Why a post-mortem capture was triggered.
enum class FlightReason : std::uint8_t {
  kQuarantine = 0,  ///< The session entered degraded mode.
  kLaneFault = 1,   ///< The host isolated the lane after an exception.
};
const char* flight_reason_name(FlightReason reason);

/// A compact copy of one pipeline event (mirrors obs::PipelineEvent
/// without depending on it, so this header stays standalone).
struct FlightEvent {
  std::uint64_t t_ns = 0;
  std::uint64_t frame = 0;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::uint8_t kind = 0;    ///< PipelineEvent::Kind code.
  std::uint8_t detail = 0;  ///< Kind-specific detail code.
};

/// Per-session post-mortem buffer: the first trigger (quarantine entry or
/// lane fault) latches a copy of the last-N pipeline events and the most
/// recent gesture traces; later triggers only count. Capture is pure
/// preallocated copying — safe inside a worker's catch block and under
/// artifact storms — and the artifact renders lazily as text or JSON.
class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultEventCapacity = 64;
  static constexpr std::size_t kTraceCapacity = 2;

  explicit FlightRecorder(std::size_t event_capacity = kDefaultEventCapacity);

  bool captured() const { return captured_; }
  /// Total triggers seen (including ones after the first capture).
  std::uint64_t triggers() const { return triggers_; }
  FlightReason reason() const { return reason_; }
  std::uint64_t frame() const { return frame_; }

  /// Latches the capture; false when one is already held (the trigger is
  /// still counted). The owner then appends events and traces.
  bool begin_capture(FlightReason reason, std::uint64_t frame);
  void capture_event(const FlightEvent& event);
  void capture_trace(const GestureTrace& trace);

  /// Deterministic text artifact (one event per line + trace summaries).
  void dump_text(std::ostream& os) const;
  /// The same artifact as a JSON object.
  void dump_json(std::ostream& os) const;

  void clear();

 private:
  std::vector<FlightEvent> events_;
  std::size_t event_count_ = 0;
  std::vector<GestureTrace> traces_;
  std::size_t trace_count_ = 0;
  FlightReason reason_ = FlightReason::kQuarantine;
  std::uint64_t frame_ = 0;
  bool captured_ = false;
  std::uint64_t triggers_ = 0;
};

// --------------------------------------------------------------- export

/// Completed traces of one stream, ready for a TraceSink.
struct SessionTraces {
  std::uint64_t stream = 0;
  std::vector<GestureTrace> traces;
};

/// Serializes completed gesture traces. Implementations must be
/// deterministic: identical inputs → byte-identical output.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void write(std::ostream& os,
                     const std::vector<SessionTraces>& sessions) = 0;
};

/// Chrome trace-event JSON ("X" duration events per span, "i" instants
/// for emission markers), loadable in Perfetto / chrome://tracing. One
/// pid per stream, one tid per trace. Timestamps are exact microsecond
/// strings rendered from integer nanoseconds (never float-formatted), so
/// the output is byte-identical whenever the traces are.
class ChromeTraceSink final : public TraceSink {
 public:
  void write(std::ostream& os,
             const std::vector<SessionTraces>& sessions) override;
};

/// Convenience wrapper over ChromeTraceSink.
void write_chrome_trace(std::ostream& os,
                        const std::vector<SessionTraces>& sessions);
std::string to_chrome_trace(const std::vector<SessionTraces>& sessions);

}  // namespace airfinger::obs
