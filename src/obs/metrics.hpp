// Fixed-shape, allocation-free metrics registry.
//
// A Registry is built once (all counters/gauges/histograms registered at
// construction time, which is the only moment it allocates) and then
// recorded into through integer handles: `inc`, `set`, and `observe` are
// array writes with no locks, no maps, and no heap traffic — safe on the
// 0-allocs/frame serving hot path (DESIGN.md §11). Registries with the
// same schema (same registration sequence) aggregate by index with
// `add_from`, which is how MultiSessionHost folds N per-session registries
// into one fleet view in deterministic session order.
//
// Counters saturate at UINT64_MAX instead of wrapping: a fleet aggregate
// over long-lived sessions must never report a small number because one
// lane overflowed.
//
// Histograms use log-spaced fixed bucket bounds chosen at registration
// (geometric series from `least` to `most`): latency spans decades, so
// uniform buckets would waste resolution where it matters. Observation is
// a branchless-enough binary search over the precomputed bounds.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace airfinger::obs {

/// Saturating add for metric counters (also used by core::HealthStats).
inline std::uint64_t saturating_add(std::uint64_t a, std::uint64_t b) {
  const std::uint64_t s = a + b;
  return s < a ? std::numeric_limits<std::uint64_t>::max() : s;
}

/// Shape of one log-spaced histogram: `buckets` finite upper bounds in a
/// geometric series from `least` to `most`, plus an implicit +Inf bucket.
struct HistogramSpec {
  double least = 100.0;       ///< First finite upper bound (e.g. 100 ns).
  double most = 1e9;          ///< Last finite upper bound (e.g. 1 s in ns).
  std::size_t buckets = 36;   ///< Finite bucket count (>= 2).
};

/// One metric's state captured by Registry::snapshot(). Counters carry
/// `count`; gauges carry `value`; histograms carry count/sum/min/max plus
/// the per-bucket (non-cumulative) tallies and their upper bounds.
struct MetricEntry {
  enum class Type { kCounter, kGauge, kHistogram };
  Type type = Type::kCounter;
  std::string name;
  std::string help;
  std::uint64_t count = 0;            ///< Counter value / histogram count.
  double value = 0.0;                 ///< Gauge value / histogram sum.
  double min = 0.0;                   ///< Histogram observed minimum.
  double max = 0.0;                   ///< Histogram observed maximum.
  std::vector<double> bounds;         ///< Histogram finite upper bounds.
  std::vector<std::uint64_t> buckets; ///< bounds.size()+1 tallies (+Inf last).

  bool operator==(const MetricEntry&) const = default;
};

/// A point-in-time copy of a registry (or an aggregate of several), ready
/// for exposition (obs/exposition.hpp). Plain data; freely copyable.
struct MetricsSnapshot {
  std::vector<MetricEntry> entries;

  /// Index-wise aggregation; schemas (name/type/bounds) must match.
  void add_from(const MetricsSnapshot& other);

  /// Entry lookup by name (nullptr when absent).
  const MetricEntry* find(const std::string& name) const;

  bool operator==(const MetricsSnapshot&) const = default;
};

/// The fixed-shape registry. Registration returns dense handles; the
/// recording methods are bounds-checked array writes. Not thread-safe by
/// design: each registry has exactly one writer (its Session), and
/// aggregation reads happen between pump() rounds — the same single-writer
/// discipline the rest of the per-session state already follows.
class Registry {
 public:
  using Handle = std::uint32_t;

  /// Registers a monotone counter. Only valid before the first snapshot.
  Handle counter(std::string name, std::string help);
  /// Registers a gauge (a settable instantaneous value).
  Handle gauge(std::string name, std::string help);
  /// Registers a log-spaced histogram.
  Handle histogram(std::string name, std::string help, HistogramSpec spec);

  // ---------------------------------------------------------- hot path
  void inc(Handle h, std::uint64_t n = 1) {
    auto& v = counters_[h].value;
    v = saturating_add(v, n);
  }
  std::uint64_t counter_value(Handle h) const { return counters_[h].value; }

  void set(Handle h, double v) { gauges_[h].value = v; }
  double gauge_value(Handle h) const { return gauges_[h].value; }

  /// Records one observation into a histogram: binary search over the
  /// precomputed bounds, then four scalar updates. No allocation.
  void observe(Handle h, double v);

  /// A histogram's finite upper bounds (registration shape; stable for
  /// the registry's lifetime). Lets callers bucket a value themselves —
  /// the trace layer keys its e2e exemplar table off this.
  const std::vector<double>& histogram_bounds(Handle h) const {
    return histograms_[h].bounds;
  }

  // ------------------------------------------------------- aggregation
  /// Adds every metric of `other` into this registry, index by index.
  /// Requires an identical schema (registration sequence); throws
  /// PreconditionError on any mismatch. Lock-free: plain reads of the
  /// source and plain writes of the destination — callers serialize.
  void add_from(const Registry& other);

  /// Zeroes every counter, gauge, bucket, and histogram stat; the schema
  /// (and all storage) is retained.
  void reset_values();

  /// Deep copy of the current values in registration order.
  MetricsSnapshot snapshot() const;

 private:
  struct CounterState {
    std::string name, help;
    std::uint64_t value = 0;
  };
  struct GaugeState {
    std::string name, help;
    double value = 0.0;
  };
  struct HistogramState {
    std::string name, help;
    std::vector<double> bounds;          ///< Ascending finite upper bounds.
    std::vector<std::uint64_t> buckets;  ///< bounds.size()+1 (+Inf last).
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };
  /// Registration order across all three kinds, so snapshots list metrics
  /// in the order the schema declared them.
  struct Slot {
    MetricEntry::Type type;
    std::uint32_t index;
  };

  std::vector<CounterState> counters_;
  std::vector<GaugeState> gauges_;
  std::vector<HistogramState> histograms_;
  std::vector<Slot> order_;
};

}  // namespace airfinger::obs
