#include "obs/trace.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "obs/pipeline.hpp"

namespace airfinger::obs {

const char* trace_stage_name(std::uint8_t stage) {
  if (stage == kTraceStageEmit) return "emit";
  if (stage < kStageCount) return stage_name(static_cast<Stage>(stage));
  return "unknown";
}

const char* outcome_name(GestureTrace::Outcome outcome) {
  switch (outcome) {
    case GestureTrace::Outcome::kOpen: return "open";
    case GestureTrace::Outcome::kEmitted: return "emitted";
    case GestureTrace::Outcome::kFiltered: return "filtered";
    case GestureTrace::Outcome::kAbandoned: return "abandoned";
    case GestureTrace::Outcome::kQuarantined: return "quarantined";
  }
  return "unknown";
}

const char* flight_reason_name(FlightReason reason) {
  switch (reason) {
    case FlightReason::kQuarantine: return "quarantine";
    case FlightReason::kLaneFault: return "lane_fault";
  }
  return "unknown";
}

// ------------------------------------------------------------- recorder

TraceRecorder::TraceRecorder(std::size_t capacity) {
  AF_EXPECT(capacity >= 1, "trace ring needs capacity >= 1");
  ring_.resize(capacity);
}

void TraceRecorder::begin(std::uint64_t frame, std::uint64_t begin,
                          std::uint64_t t_ns) {
  if (active_open_) {
    active_.close_frame = frame;
    active_.t_close_ns = t_ns;
    finalize(GestureTrace::Outcome::kAbandoned);
  }
  active_ = GestureTrace{};
  active_.trace_id = next_id_++;
  active_.stream = stream_;
  active_.begin = begin;
  active_.open_frame = frame;
  active_.t_open_ns = t_ns;
  active_open_ = true;
  closed_ = false;
  filtered_ = false;
}

void TraceRecorder::add_span(std::uint8_t stage, std::uint64_t t0_ns,
                             std::uint64_t dur_ns) {
  if (!active_open_) return;
  // Segment-level stages keep a reserved list so a long segment's
  // per-frame spans can never evict the decision that retired it.
  const bool segment_level =
      stage == static_cast<std::uint8_t>(Stage::kDecide) ||
      stage == static_cast<std::uint8_t>(Stage::kFeatures) ||
      stage == static_cast<std::uint8_t>(Stage::kForest);
  if (segment_level) {
    if (active_.decide_span_count < kTraceDecideSpanCapacity) {
      active_.decide_spans[active_.decide_span_count++] = {t0_ns, dur_ns,
                                                           stage};
      return;
    }
  } else if (active_.frame_span_count < kTraceFrameSpanCapacity) {
    active_.frame_spans[active_.frame_span_count++] = {t0_ns, dur_ns, stage};
    return;
  }
  ++active_.spans_dropped;
}

void TraceRecorder::note_close(std::uint64_t frame, std::uint64_t end,
                               std::uint64_t t_ns) {
  if (!active_open_) return;
  active_.close_frame = frame;
  active_.end = end;
  active_.t_close_ns = t_ns;
  closed_ = true;
}

void TraceRecorder::note_filtered() {
  if (!active_open_) return;
  filtered_ = true;
}

std::int64_t TraceRecorder::note_emit(std::uint8_t type, std::uint64_t frame,
                                      std::uint64_t t_ns) {
  if (!active_open_) return -1;
  if (active_.mark_count < kTraceMarkCapacity)
    active_.marks[active_.mark_count++] = {t_ns, frame, type};
  if (!closed_) return -1;  // Early-direction marker; the trace stays live.
  active_.emit_type = type;
  active_.t_emit_ns = t_ns;
  finalize(filtered_ ? GestureTrace::Outcome::kFiltered
                     : GestureTrace::Outcome::kEmitted);
  return static_cast<std::int64_t>(t_ns - ring_[latest_index()].t_open_ns);
}

void TraceRecorder::abandon(GestureTrace::Outcome outcome, std::uint64_t frame,
                            std::uint64_t t_ns) {
  if (!active_open_) return;
  active_.close_frame = frame;
  active_.t_close_ns = t_ns;
  finalize(outcome);
}

void TraceRecorder::finalize(GestureTrace::Outcome outcome) {
  active_.outcome = outcome;
  const bool evicted = size_ == ring_.size();
  ring_[head_] = active_;
  head_ = (head_ + 1) % ring_.size();
  if (evicted)
    ++dropped_;
  else
    ++size_;
  ++completed_total_;
  active_open_ = false;
  closed_ = false;
  filtered_ = false;
}

std::size_t TraceRecorder::latest_index() const {
  return (head_ + ring_.size() - 1) % ring_.size();
}

std::vector<GestureTrace> TraceRecorder::completed() const {
  std::vector<GestureTrace> out;
  out.reserve(size_);
  const std::size_t start = size_ == ring_.size() ? head_ : 0;
  for (std::size_t i = 0; i < size_; ++i)
    out.push_back(ring_[(start + i) % ring_.size()]);
  return out;
}

const GestureTrace* TraceRecorder::latest() const {
  if (size_ == 0) return nullptr;
  return &ring_[latest_index()];
}

void TraceRecorder::set_exemplar(std::size_t bucket, std::uint64_t trace_id) {
  if (bucket < exemplars_.size()) exemplars_[bucket] = trace_id;
}

void TraceRecorder::clear() {
  head_ = 0;
  size_ = 0;
  dropped_ = 0;
  completed_total_ = 0;
  active_ = GestureTrace{};
  active_open_ = false;
  closed_ = false;
  filtered_ = false;
  next_id_ = 1;
  std::fill(exemplars_.begin(), exemplars_.end(), 0);
}

// --------------------------------------------------------------- flight

namespace {

/// All spans of one trace in chronological order (allocates; offline
/// rendering only). Stable: frame spans sort before segment-level spans
/// on equal timestamps, which cannot happen under a strictly advancing
/// clock anyway.
std::vector<TraceSpan> sorted_spans(const GestureTrace& t) {
  std::vector<TraceSpan> spans;
  spans.reserve(t.frame_span_count + t.decide_span_count);
  for (std::uint16_t i = 0; i < t.frame_span_count; ++i)
    spans.push_back(t.frame_spans[i]);
  for (std::uint16_t i = 0; i < t.decide_span_count; ++i)
    spans.push_back(t.decide_spans[i]);
  std::stable_sort(spans.begin(), spans.end(),
                   [](const TraceSpan& a, const TraceSpan& b) {
                     return a.t0_ns < b.t0_ns;
                   });
  return spans;
}

void write_flight_event_text(std::ostream& os, const FlightEvent& e) {
  const auto kind = static_cast<PipelineEvent::Kind>(e.kind);
  os << "t_ns=" << e.t_ns << " frame=" << e.frame << ' ' << kind_name(kind);
  switch (kind) {
    case PipelineEvent::Kind::kSegmentReject:
      os << ' ' << reject_name(static_cast<PipelineEvent::Reject>(e.detail));
      break;
    case PipelineEvent::Kind::kEmit:
      os << " type=" << static_cast<int>(e.detail);
      break;
    case PipelineEvent::Kind::kArtifact:
      os << ' ' << artifact_detail_name(e.detail);
      break;
    default:
      break;
  }
  os << " segment=" << e.begin << ".." << e.end;
}

void write_trace_json(std::ostream& os, const GestureTrace& t) {
  os << "{\"trace_id\": " << t.trace_id << ", \"stream\": " << t.stream
     << ", \"outcome\": \"" << outcome_name(t.outcome) << "\""
     << ", \"segment\": [" << t.begin << ", " << t.end << "]"
     << ", \"open_frame\": " << t.open_frame
     << ", \"close_frame\": " << t.close_frame
     << ", \"t_open_ns\": " << t.t_open_ns
     << ", \"t_close_ns\": " << t.t_close_ns
     << ", \"t_emit_ns\": " << t.t_emit_ns
     << ", \"emit_type\": " << static_cast<int>(t.emit_type)
     << ", \"spans_dropped\": " << t.spans_dropped << ", \"spans\": [";
  bool first = true;
  for (const TraceSpan& s : sorted_spans(t)) {
    os << (first ? "" : ", ") << "{\"stage\": \"" << trace_stage_name(s.stage)
       << "\", \"t0_ns\": " << s.t0_ns << ", \"dur_ns\": " << s.dur_ns << "}";
    first = false;
  }
  os << "], \"marks\": [";
  for (std::uint16_t i = 0; i < t.mark_count; ++i) {
    os << (i ? ", " : "") << "{\"t_ns\": " << t.marks[i].t_ns
       << ", \"frame\": " << t.marks[i].frame
       << ", \"type\": " << static_cast<int>(t.marks[i].emit_type) << "}";
  }
  os << "]}";
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t event_capacity) {
  AF_EXPECT(event_capacity >= 1, "flight recorder needs event capacity >= 1");
  events_.resize(event_capacity);
  traces_.resize(kTraceCapacity);
}

bool FlightRecorder::begin_capture(FlightReason reason, std::uint64_t frame) {
  ++triggers_;
  if (captured_) return false;
  captured_ = true;
  reason_ = reason;
  frame_ = frame;
  event_count_ = 0;
  trace_count_ = 0;
  return true;
}

void FlightRecorder::capture_event(const FlightEvent& event) {
  if (event_count_ < events_.size()) events_[event_count_++] = event;
}

void FlightRecorder::capture_trace(const GestureTrace& trace) {
  if (trace_count_ < traces_.size()) traces_[trace_count_++] = trace;
}

void FlightRecorder::dump_text(std::ostream& os) const {
  if (!captured_) {
    os << "flight recorder: no capture\n";
    return;
  }
  os << "flight recorder: reason=" << flight_reason_name(reason_)
     << " frame=" << frame_ << " triggers=" << triggers_ << '\n';
  os << "events (" << event_count_ << "):\n";
  for (std::size_t i = 0; i < event_count_; ++i) {
    os << "  ";
    write_flight_event_text(os, events_[i]);
    os << '\n';
  }
  os << "traces (" << trace_count_ << "):\n";
  for (std::size_t i = 0; i < trace_count_; ++i) {
    const GestureTrace& t = traces_[i];
    os << "  trace " << t.trace_id << " outcome=" << outcome_name(t.outcome)
       << " segment=" << t.begin << ".." << t.end << " frames=" << t.open_frame
       << ".." << t.close_frame << " spans="
       << (t.frame_span_count + t.decide_span_count)
       << " dropped=" << t.spans_dropped << '\n';
    for (const TraceSpan& s : sorted_spans(t))
      os << "    t0=" << s.t0_ns << " dur=" << s.dur_ns << ' '
         << trace_stage_name(s.stage) << '\n';
    for (std::uint16_t m = 0; m < t.mark_count; ++m)
      os << "    t=" << t.marks[m].t_ns << " emit type="
         << static_cast<int>(t.marks[m].emit_type) << '\n';
  }
}

void FlightRecorder::dump_json(std::ostream& os) const {
  os << "{\"flight\": {\"captured\": " << (captured_ ? "true" : "false")
     << ", \"reason\": \"" << flight_reason_name(reason_) << "\""
     << ", \"frame\": " << frame_ << ", \"triggers\": " << triggers_
     << ", \"events\": [";
  for (std::size_t i = 0; i < event_count_; ++i) {
    const FlightEvent& e = events_[i];
    os << (i ? ", " : "") << "{\"t_ns\": " << e.t_ns
       << ", \"frame\": " << e.frame << ", \"kind\": \""
       << kind_name(static_cast<PipelineEvent::Kind>(e.kind))
       << "\", \"detail\": " << static_cast<int>(e.detail)
       << ", \"begin\": " << e.begin << ", \"end\": " << e.end << "}";
  }
  os << "], \"traces\": [";
  for (std::size_t i = 0; i < trace_count_; ++i) {
    if (i) os << ", ";
    write_trace_json(os, traces_[i]);
  }
  os << "]}}\n";
}

void FlightRecorder::clear() {
  event_count_ = 0;
  trace_count_ = 0;
  captured_ = false;
  triggers_ = 0;
  frame_ = 0;
  reason_ = FlightReason::kQuarantine;
}

// --------------------------------------------------------------- export

namespace {

/// Exact microseconds with three decimals from integer nanoseconds —
/// never float-formatted, so the text is a pure function of the input.
void write_us(std::ostream& os, std::uint64_t ns) {
  os << ns / 1000 << '.';
  const std::uint64_t frac = ns % 1000;
  os << static_cast<char>('0' + frac / 100)
     << static_cast<char>('0' + frac / 10 % 10)
     << static_cast<char>('0' + frac % 10);
}

}  // namespace

void ChromeTraceSink::write(std::ostream& os,
                            const std::vector<SessionTraces>& sessions) {
  // Streams export in ascending id order regardless of how the caller
  // collected them, so shard/thread layout cannot reorder the bytes.
  std::vector<const SessionTraces*> ordered;
  ordered.reserve(sessions.size());
  for (const SessionTraces& s : sessions) ordered.push_back(&s);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const SessionTraces* a, const SessionTraces* b) {
                     return a->stream < b->stream;
                   });

  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  const auto sep = [&]() {
    os << (first ? "\n" : ",\n");
    first = false;
  };
  for (const SessionTraces* session : ordered) {
    sep();
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << session->stream
       << ",\"tid\":0,\"args\":{\"name\":\"stream " << session->stream
       << "\"}}";
    for (const GestureTrace& t : session->traces) {
      const std::uint64_t t_end =
          t.e2e_ns() >= 0 ? t.t_emit_ns : t.t_close_ns;
      sep();
      os << "{\"name\":\"gesture\",\"ph\":\"X\",\"pid\":" << session->stream
         << ",\"tid\":" << t.trace_id << ",\"ts\":";
      write_us(os, t.t_open_ns);
      os << ",\"dur\":";
      write_us(os, t_end >= t.t_open_ns ? t_end - t.t_open_ns : 0);
      os << ",\"args\":{\"trace_id\":" << t.trace_id << ",\"outcome\":\""
         << outcome_name(t.outcome) << "\",\"segment\":\"" << t.begin << ".."
         << t.end << "\",\"open_frame\":" << t.open_frame
         << ",\"close_frame\":" << t.close_frame
         << ",\"emit_type\":" << static_cast<int>(t.emit_type)
         << ",\"spans_dropped\":" << t.spans_dropped << "}}";
      for (const TraceSpan& s : sorted_spans(t)) {
        sep();
        os << "{\"name\":\"" << trace_stage_name(s.stage)
           << "\",\"ph\":\"X\",\"pid\":" << session->stream
           << ",\"tid\":" << t.trace_id << ",\"ts\":";
        write_us(os, s.t0_ns);
        os << ",\"dur\":";
        write_us(os, s.dur_ns);
        os << "}";
      }
      for (std::uint16_t m = 0; m < t.mark_count; ++m) {
        sep();
        os << "{\"name\":\"emit\",\"ph\":\"i\",\"s\":\"t\",\"pid\":"
           << session->stream << ",\"tid\":" << t.trace_id << ",\"ts\":";
        write_us(os, t.marks[m].t_ns);
        os << ",\"args\":{\"type\":" << static_cast<int>(t.marks[m].emit_type)
           << ",\"frame\":" << t.marks[m].frame << "}}";
      }
    }
  }
  os << "\n]}\n";
}

void write_chrome_trace(std::ostream& os,
                        const std::vector<SessionTraces>& sessions) {
  ChromeTraceSink sink;
  sink.write(os, sessions);
}

std::string to_chrome_trace(const std::vector<SessionTraces>& sessions) {
  std::ostringstream os;
  write_chrome_trace(os, sessions);
  return os.str();
}

}  // namespace airfinger::obs
