// Per-stream pipeline instrumentation: stage spans, structured pipeline
// events, and the session metric schema over obs/metrics.hpp.
//
// One PipelineObservability lives inside every core::Session. It owns the
// session's Clock, its fixed-shape metric Registry (frame/segment/health
// counters plus one log-spaced nanosecond histogram per pipeline stage),
// and a fixed-capacity ring of structured pipeline events (segment
// open/close/reject with reason, quarantine transitions, emissions) with a
// dropped-event counter. Everything is preallocated at construction: the
// recording paths are allocation-free, preserving the hot path's
// 0-allocs/frame invariant with instrumentation enabled.
//
// Stage timing is captured by RAII Span objects. When the build compiles
// spans out (-DAF_OBS_SPANS=OFF → AF_OBS_SPANS_ENABLED 0), Span is an
// empty type and the hot path carries zero clock reads; when compiled in,
// a per-object runtime switch (`set_spans_enabled`) can still silence them,
// and the per-frame stages are deterministically sampled 1-in-N
// (`set_sample_every`, default 16) so steady-state clock reads stay within
// the tracing overhead budget enforced by tools/run_bench.sh.
// Observability is record-only either way: it never feeds back into any
// decision, so emissions are bit-identical with tracing on or off.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#ifndef AF_OBS_SPANS_ENABLED
#define AF_OBS_SPANS_ENABLED 1
#endif

namespace airfinger::obs {

/// The traced stages of the serving path (Session::push_frame and the
/// bundle's decision core). kDecide brackets the whole decision; kFeatures,
/// kForest, and kZebra are nested inside it (and kZebra also inside
/// kProbe), so their times are included in their parent's.
enum class Stage : std::uint8_t {
  kIngest = 0,   ///< SBC update + history push + segmenter advance.
  kTimingCache,  ///< Incremental open-segment timing advance.
  kProbe,        ///< Early-direction probe (router + ZEBRA on open segment).
  kDecide,       ///< Full decision core on a completed segment.
  kFeatures,     ///< Feature-bank extraction (inside kDecide).
  kForest,       ///< Compiled-forest inference (inside kDecide).
  kZebra,        ///< ZEBRA tracking (inside kDecide or kProbe).
};
inline constexpr std::size_t kStageCount = 7;

/// Stable lowercase stage name ("ingest", "timing_cache", ...).
const char* stage_name(Stage stage);

/// One structured pipeline event. Fixed-size POD so the ring never
/// allocates; `describe` renders the deterministic text form used by
/// tests and `af_inspect --stats`.
struct PipelineEvent {
  enum class Kind : std::uint8_t {
    kSegmentOpen = 0,   ///< Segmenter opened a candidate segment.
    kSegmentClose,      ///< Segment completed and was decided.
    kSegmentReject,     ///< Segment discarded; detail = Reject reason.
    kQuarantineEnter,   ///< Degraded mode engaged (detail unused).
    kQuarantineExit,    ///< Recalibrated back to healthy.
    kEmit,              ///< GestureEvent delivered; detail = its Type.
    kArtifact,          ///< Artifact classified; detail = core::ArtifactClass
                        ///< (begin/end = the affected frame span; end == begin
                        ///< for a detection without a repaired span).
  };
  /// Why a segment was rejected (PipelineEvent::detail for kSegmentReject).
  enum class Reject : std::uint8_t {
    kTooShort = 0,      ///< Segmenter abandoned the open segment.
    kFiltered,          ///< Interference filter called it non-gesture.
    kQuarantined,       ///< Open segment dropped on quarantine entry.
  };

  std::uint64_t t_ns = 0;   ///< Clock timestamp at record time.
  std::uint64_t frame = 0;  ///< Session frame count at record time.
  std::uint64_t begin = 0;  ///< Segment begin (absolute), when applicable.
  std::uint64_t end = 0;    ///< Segment end (absolute), when applicable.
  Kind kind = Kind::kSegmentOpen;
  std::uint8_t detail = 0;  ///< Kind-specific code (Reject / event type).

  bool operator==(const PipelineEvent&) const = default;
};

/// Stable lowercase names for event kinds and their detail codes (shared
/// by dump_events and the flight-recorder artifacts in obs/trace.cpp).
const char* kind_name(PipelineEvent::Kind kind);
const char* artifact_detail_name(std::uint8_t detail);
const char* reject_name(PipelineEvent::Reject reason);

/// Fixed-capacity overwrite-oldest ring of pipeline events. push() is two
/// array writes; once full, each push overwrites the oldest event and the
/// overwritten one counts as dropped.
class EventRing {
 public:
  explicit EventRing(std::size_t capacity);

  /// True when the event was stored without evicting an older one.
  bool push(const PipelineEvent& event);

  std::size_t capacity() const { return ring_.size(); }
  std::size_t size() const { return size_; }
  std::uint64_t dropped() const { return dropped_; }

  /// Retained events, oldest first (allocates; not for the hot path).
  std::vector<PipelineEvent> events() const;

  /// Copies up to `max` of the newest events into `out` (oldest of the
  /// copied window first); returns the count. No allocation — this is the
  /// flight recorder's capture path, callable from a worker's catch block.
  std::size_t copy_recent(PipelineEvent* out, std::size_t max) const;

  void clear();

 private:
  std::vector<PipelineEvent> ring_;
  std::size_t head_ = 0;  ///< Next write position.
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
};

/// The per-session observability bundle: clock + registry + event ring,
/// with the session metric schema pre-registered and handles cached.
class PipelineObservability {
 public:
  explicit PipelineObservability(std::size_t ring_capacity = 256);

  // ------------------------------------------------------ configuration
  /// Replaces the time source (tests inject TickClock for bit-stable
  /// traces). Resets nothing else.
  void set_clock(std::unique_ptr<Clock> clock);
  Clock& clock() { return *clock_; }

  /// Runtime span switch (only meaningful when spans are compiled in).
  void set_spans_enabled(bool enabled) { spans_enabled_ = enabled; }
  bool spans_enabled() const { return AF_OBS_SPANS_ENABLED && spans_enabled_; }

  /// Sampling rate for the per-frame stage spans (ingest / timing_cache /
  /// probe): every n-th frame carries them, starting with the first. The
  /// segment-level spans (decide and its children) are rare and always
  /// record. n == 1 records every frame — offline replay tools use that;
  /// the default keeps steady-state tracing inside the bench's overhead
  /// budget. Restarts the phase so the next frame is sampled.
  void set_sample_every(std::uint32_t n);
  std::uint32_t sample_every() const { return sample_every_; }

  /// Deterministic 1-in-`sample_every()` gate, advanced once per frame by
  /// the session. Purely counter-based, so traces are bit-identical across
  /// runs and thread counts.
  bool sample_frame() {
    if (--sample_countdown_ != 0) return false;
    sample_countdown_ = sample_every_;
    return true;
  }

  static constexpr std::uint32_t kDefaultSampleEvery = 16;

  // ------------------------------------------------------------ tracing
  /// Runtime trace switch (only meaningful when tracing is compiled in;
  /// -DAF_OBS_TRACE=OFF removes the recording hooks entirely). Tracing is
  /// record-only — emissions are byte-identical with it on or off.
  void set_trace_enabled(bool enabled) { trace_enabled_ = enabled; }
  bool trace_enabled() const { return AF_OBS_TRACE_ENABLED && trace_enabled_; }

  /// Stream identity stamped on exported traces and flight artifacts
  /// (the host sets its lane index; standalone sessions keep 0).
  void set_stream_id(std::uint64_t id) { recorder_.set_stream(id); }

  TraceRecorder& tracer() { return recorder_; }
  const TraceRecorder& tracer() const { return recorder_; }
  FlightRecorder& flight() { return flight_; }
  const FlightRecorder& flight() const { return flight_; }

  /// Latches a post-mortem: copies the event-ring tail plus the most
  /// recent gesture traces into the flight recorder (first trigger wins,
  /// later ones only count). Pure preallocated copying — callable from the
  /// host worker's catch block and under artifact storms.
  void capture_postmortem(FlightReason reason, std::uint64_t frame);
  bool has_postmortem() const { return flight_.captured(); }
  void dump_postmortem(std::ostream& os) const { flight_.dump_text(os); }
  void dump_postmortem_json(std::ostream& os) const { flight_.dump_json(os); }

  // ---------------------------------------------------------- recording
  void observe_stage(Stage stage, std::uint64_t ns) {
    registry_.observe(stage_hist_[static_cast<std::size_t>(stage)],
                      static_cast<double>(ns));
  }

  /// Span completion path: feeds the stage histogram and, when a gesture
  /// trace is live, appends the span to it. Compiled down to the bare
  /// histogram observe under -DAF_OBS_TRACE=OFF.
  void observe_span(Stage stage, std::uint64_t t0_ns, std::uint64_t t1_ns) {
    observe_stage(stage, t1_ns - t0_ns);
#if AF_OBS_TRACE_ENABLED
    if (trace_enabled_ && recorder_.active())
      recorder_.add_span(static_cast<std::uint8_t>(stage), t0_ns,
                         t1_ns - t0_ns);
#endif
  }

  /// Records one structured event; timestamps it from the clock and
  /// counts ring evictions into af_trace_events_dropped_total.
  void record(PipelineEvent::Kind kind, std::uint64_t frame,
              std::uint64_t begin = 0, std::uint64_t end = 0,
              std::uint8_t detail = 0);

  // Cached counter handles, incremented directly by the session. Public
  // on purpose: the session is the single writer and the handle table is
  // the schema.
  Registry::Handle frames;
  Registry::Handle events_detect;
  Registry::Handle events_scroll;
  Registry::Handle events_direction;
  Registry::Handle events_rejected;
  Registry::Handle segments_opened;
  Registry::Handle segments_closed;
  Registry::Handle segments_abandoned;
  Registry::Handle non_finite_samples;
  Registry::Handle saturated_samples;
  Registry::Handle stuck_samples;
  Registry::Handle quarantined_frames;
  Registry::Handle quarantines;
  Registry::Handle recalibrations;
  Registry::Handle segments_dropped;
  Registry::Handle quarantined;  ///< Gauge: 1 while degraded.
  // Graded artifact taxonomy (DESIGN.md §17). "suspect" counters are the
  // false-alarm proxies: graded confidence crossed its threshold without any
  // action being taken, so on clean traffic they measure the detector's
  // false-positive pressure directly.
  Registry::Handle artifact_impulse_suspect;   ///< Click z >= click_sigma.
  Registry::Handle artifact_impulsive_suspect; ///< LPC/kurtosis conf >= 1.
  Registry::Handle artifact_tonal_suspect;     ///< Flatness conf >= 1.
  Registry::Handle artifact_impulse_detected;  ///< Hold episodes started.
  Registry::Handle artifact_impulse_repaired;  ///< Episodes repaired in place.
  Registry::Handle artifact_repaired_frames;   ///< Frames rewritten by repair.
  Registry::Handle artifact_crackle_detected;
  Registry::Handle artifact_step_detected;
  Registry::Handle artifact_drift_detected;
  Registry::Handle artifact_flicker_detected;
  Registry::Handle artifact_quarantines;       ///< Quarantines via escalation.

  Registry& registry() { return registry_; }
  const Registry& registry() const { return registry_; }
  const EventRing& ring() const { return ring_; }

  /// Clears every metric value and the event ring (schema retained) —
  /// Session::reset() semantics. The clock is untouched.
  void reset_values();

  /// Writes the retained events as deterministic text, one per line:
  /// `t_ns=<..> frame=<..> <kind> [detail] [segment=<b>..<e>]`.
  void dump_events(std::ostream& os) const;

 private:
#if AF_OBS_TRACE_ENABLED
  /// Interprets one recorded pipeline event as a trace-lifecycle step
  /// (segment open/close/reject/emit, quarantine → flight capture) and
  /// keeps the gesture-trace registry series in step with the recorder.
  void route_trace(const PipelineEvent& event);
#endif

  std::unique_ptr<Clock> clock_;
  Registry registry_;
  EventRing ring_;
  TraceRecorder recorder_;
  FlightRecorder flight_;
  std::array<Registry::Handle, kStageCount> stage_hist_{};
  Registry::Handle trace_dropped_;
  Registry::Handle gesture_e2e_;       ///< af_gesture_e2e_seconds.
  Registry::Handle traces_completed_;  ///< af_gesture_traces_total.
  Registry::Handle traces_evicted_;    ///< af_gesture_traces_dropped_total.
  bool spans_enabled_ = true;
  bool trace_enabled_ = true;
  std::uint32_t sample_every_ = kDefaultSampleEvery;
  std::uint32_t sample_countdown_ = 1;  ///< 1 ⇒ the next frame is sampled.
};

/// RAII stage timer. Construct with the owning component's observability
/// (nullptr tolerated: the span is inert, which is how un-instrumented
/// callers of the bundle's decision core skip tracing). Compiled out
/// entirely under -DAF_OBS_SPANS=OFF.
class Span {
 public:
#if AF_OBS_SPANS_ENABLED
  Span(PipelineObservability* obs, Stage stage) : stage_(stage) {
    if (obs && obs->spans_enabled()) {
      obs_ = obs;
      t0_ = obs->clock().now_ns();
    }
  }
  ~Span() {
    if (obs_) obs_->observe_span(stage_, t0_, obs_->clock().now_ns());
  }
#else
  Span(PipelineObservability*, Stage) {}
#endif
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
#if AF_OBS_SPANS_ENABLED
  PipelineObservability* obs_ = nullptr;
  std::uint64_t t0_ = 0;
  Stage stage_;
#endif
};

}  // namespace airfinger::obs
