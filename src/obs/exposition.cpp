#include "obs/exposition.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace airfinger::obs {

namespace {

/// %.17g: shortest-ish decimal form that still round-trips any double
/// bit-exactly through strtod, so parse(write(snapshot)) == snapshot.
std::string fmt(double v) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  return buffer;
}

double parse_double(const std::string& token) {
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  AF_EXPECT(end != token.c_str() && *end == '\0',
            "exposition: malformed number '" + token + "'");
  return v;
}

std::uint64_t parse_u64(const std::string& token) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
  AF_EXPECT(end != token.c_str() && *end == '\0',
            "exposition: malformed count '" + token + "'");
  return static_cast<std::uint64_t>(v);
}

const char* type_name(MetricEntry::Type type) {
  switch (type) {
    case MetricEntry::Type::kCounter: return "counter";
    case MetricEntry::Type::kGauge: return "gauge";
    case MetricEntry::Type::kHistogram: return "histogram";
  }
  return "untyped";
}

}  // namespace

// ------------------------------------------------------------- prometheus

void write_prometheus(std::ostream& os, const MetricsSnapshot& snapshot) {
  for (const MetricEntry& e : snapshot.entries) {
    AF_EXPECT(e.help.find('\n') == std::string::npos,
              "metric help must be single-line");
    os << "# HELP " << e.name << ' ' << e.help << '\n';
    os << "# TYPE " << e.name << ' ' << type_name(e.type) << '\n';
    switch (e.type) {
      case MetricEntry::Type::kCounter:
        os << e.name << ' ' << e.count << '\n';
        break;
      case MetricEntry::Type::kGauge:
        os << e.name << ' ' << fmt(e.value) << '\n';
        break;
      case MetricEntry::Type::kHistogram: {
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < e.bounds.size(); ++b) {
          cumulative = saturating_add(cumulative, e.buckets[b]);
          os << e.name << "_bucket{le=\"" << fmt(e.bounds[b]) << "\"} "
             << cumulative << '\n';
        }
        os << e.name << "_bucket{le=\"+Inf\"} " << e.count << '\n';
        os << e.name << "_sum " << fmt(e.value) << '\n';
        os << e.name << "_count " << e.count << '\n';
        break;
      }
    }
  }
}

MetricsSnapshot parse_prometheus(std::istream& is) {
  MetricsSnapshot snap;
  std::string line;
  MetricEntry* current = nullptr;
  std::uint64_t previous_cumulative = 0;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (line.rfind("# HELP ", 0) == 0) {
      const std::string rest = line.substr(7);
      const std::size_t space = rest.find(' ');
      AF_EXPECT(space != std::string::npos, "prometheus: malformed HELP line");
      MetricEntry e;
      e.name = rest.substr(0, space);
      e.help = rest.substr(space + 1);
      snap.entries.push_back(std::move(e));
      current = &snap.entries.back();
      previous_cumulative = 0;
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      AF_EXPECT(current != nullptr, "prometheus: TYPE before HELP");
      const std::string rest = line.substr(7);
      const std::size_t space = rest.find(' ');
      AF_EXPECT(space != std::string::npos &&
                    rest.substr(0, space) == current->name,
                "prometheus: TYPE line does not match preceding HELP");
      const std::string type = rest.substr(space + 1);
      if (type == "counter") {
        current->type = MetricEntry::Type::kCounter;
      } else if (type == "gauge") {
        current->type = MetricEntry::Type::kGauge;
      } else if (type == "histogram") {
        current->type = MetricEntry::Type::kHistogram;
      } else {
        AF_EXPECT(false, "prometheus: unsupported metric type '" + type + "'");
      }
      continue;
    }
    AF_EXPECT(current != nullptr, "prometheus: sample before any HELP/TYPE");
    const std::size_t space = line.rfind(' ');
    AF_EXPECT(space != std::string::npos && space + 1 < line.size(),
              "prometheus: malformed sample line");
    const std::string series = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    switch (current->type) {
      case MetricEntry::Type::kCounter:
        AF_EXPECT(series == current->name, "prometheus: stray sample line");
        current->count = parse_u64(value);
        break;
      case MetricEntry::Type::kGauge:
        AF_EXPECT(series == current->name, "prometheus: stray sample line");
        current->value = parse_double(value);
        break;
      case MetricEntry::Type::kHistogram: {
        const std::string bucket_prefix = current->name + "_bucket{le=\"";
        if (series.rfind(bucket_prefix, 0) == 0) {
          AF_EXPECT(series.size() > bucket_prefix.size() + 2 &&
                        series.compare(series.size() - 2, 2, "\"}") == 0,
                    "prometheus: malformed bucket label");
          const std::string le = series.substr(
              bucket_prefix.size(),
              series.size() - bucket_prefix.size() - 2);
          const std::uint64_t cumulative = parse_u64(value);
          AF_EXPECT(cumulative >= previous_cumulative,
                    "prometheus: bucket counts must be cumulative");
          if (le == "+Inf") {
            current->count = cumulative;
            // The +Inf bucket tally is what lies above the last bound.
            current->buckets.push_back(cumulative - previous_cumulative);
          } else {
            current->bounds.push_back(parse_double(le));
            current->buckets.push_back(cumulative - previous_cumulative);
          }
          previous_cumulative = cumulative;
        } else if (series == current->name + "_sum") {
          current->value = parse_double(value);
        } else if (series == current->name + "_count") {
          AF_EXPECT(parse_u64(value) == current->count,
                    "prometheus: _count disagrees with +Inf bucket");
        } else {
          AF_EXPECT(false, "prometheus: stray sample line '" + series + "'");
        }
        break;
      }
    }
  }
  return snap;
}

// ------------------------------------------------------------------- json

void write_json(std::ostream& os, const MetricsSnapshot& snapshot) {
  os << "{\n  \"metrics\": [";
  for (std::size_t i = 0; i < snapshot.entries.size(); ++i) {
    const MetricEntry& e = snapshot.entries[i];
    AF_EXPECT(e.name.find('"') == std::string::npos &&
                  e.help.find('"') == std::string::npos &&
                  e.help.find('\\') == std::string::npos,
              "metric names/help must not need JSON escaping");
    os << (i ? ",\n    " : "\n    ");
    os << "{\"name\": \"" << e.name << "\", \"type\": \"" << type_name(e.type)
       << "\", \"help\": \"" << e.help << "\"";
    switch (e.type) {
      case MetricEntry::Type::kCounter:
        os << ", \"value\": " << e.count;
        break;
      case MetricEntry::Type::kGauge:
        os << ", \"value\": " << fmt(e.value);
        break;
      case MetricEntry::Type::kHistogram: {
        os << ", \"count\": " << e.count << ", \"sum\": " << fmt(e.value)
           << ", \"min\": " << fmt(e.min) << ", \"max\": " << fmt(e.max);
        os << ", \"bounds\": [";
        for (std::size_t b = 0; b < e.bounds.size(); ++b)
          os << (b ? ", " : "") << fmt(e.bounds[b]);
        os << "], \"buckets\": [";
        for (std::size_t b = 0; b < e.buckets.size(); ++b)
          os << (b ? ", " : "") << e.buckets[b];
        os << "]";
        break;
      }
    }
    os << "}";
  }
  os << "\n  ]\n}\n";
}

namespace {

/// Minimal JSON reader for exactly the shape write_json emits.
class JsonCursor {
 public:
  explicit JsonCursor(std::string text) : text_(std::move(text)) {}

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\t' || text_[pos_] == '\r'))
      ++pos_;
  }

  bool peek_is(char c) {
    skip_ws();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  void expect(char c) {
    skip_ws();
    AF_EXPECT(pos_ < text_.size() && text_[pos_] == c,
              std::string("json: expected '") + c + "'");
    ++pos_;
  }

  bool consume(char c) {
    if (!peek_is(c)) return false;
    ++pos_;
    return true;
  }

  std::string string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"')
      out.push_back(text_[pos_++]);
    expect('"');
    return out;
  }

  std::string number_token() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == 'i' ||
            text_[pos_] == 'n' || text_[pos_] == 'f'))
      ++pos_;
    AF_EXPECT(pos_ > start, "json: expected a number");
    return text_.substr(start, pos_ - start);
  }

 private:
  std::string text_;
  std::size_t pos_ = 0;
};

}  // namespace

MetricsSnapshot parse_json(std::istream& is) {
  std::ostringstream buffer;
  buffer << is.rdbuf();
  JsonCursor cur(buffer.str());

  MetricsSnapshot snap;
  cur.expect('{');
  AF_EXPECT(cur.string() == "metrics", "json: expected \"metrics\" key");
  cur.expect(':');
  cur.expect('[');
  if (!cur.consume(']')) {
    do {
      cur.expect('{');
      MetricEntry e;
      do {
        const std::string key = cur.string();
        cur.expect(':');
        if (key == "name") {
          e.name = cur.string();
        } else if (key == "type") {
          const std::string type = cur.string();
          if (type == "counter") e.type = MetricEntry::Type::kCounter;
          else if (type == "gauge") e.type = MetricEntry::Type::kGauge;
          else if (type == "histogram") e.type = MetricEntry::Type::kHistogram;
          else AF_EXPECT(false, "json: unsupported type '" + type + "'");
        } else if (key == "help") {
          e.help = cur.string();
        } else if (key == "value") {
          const std::string token = cur.number_token();
          if (e.type == MetricEntry::Type::kCounter)
            e.count = parse_u64(token);
          else
            e.value = parse_double(token);
        } else if (key == "count") {
          e.count = parse_u64(cur.number_token());
        } else if (key == "sum") {
          e.value = parse_double(cur.number_token());
        } else if (key == "min") {
          e.min = parse_double(cur.number_token());
        } else if (key == "max") {
          e.max = parse_double(cur.number_token());
        } else if (key == "bounds") {
          cur.expect('[');
          if (!cur.consume(']')) {
            do {
              e.bounds.push_back(parse_double(cur.number_token()));
            } while (cur.consume(','));
            cur.expect(']');
          }
        } else if (key == "buckets") {
          cur.expect('[');
          if (!cur.consume(']')) {
            do {
              e.buckets.push_back(parse_u64(cur.number_token()));
            } while (cur.consume(','));
            cur.expect(']');
          }
        } else {
          AF_EXPECT(false, "json: unexpected key '" + key + "'");
        }
      } while (cur.consume(','));
      cur.expect('}');
      snap.entries.push_back(std::move(e));
    } while (cur.consume(','));
    cur.expect(']');
  }
  cur.expect('}');
  return snap;
}

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  write_prometheus(os, snapshot);
  return os.str();
}

std::string to_json(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  write_json(os, snapshot);
  return os.str();
}

double histogram_quantile(const MetricEntry& entry, double q) {
  AF_EXPECT(entry.type == MetricEntry::Type::kHistogram,
            "histogram_quantile needs a histogram entry");
  AF_EXPECT(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
  if (entry.count == 0) return 0.0;
  const double target_rank =
      std::max(1.0, q * static_cast<double>(entry.count));
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < entry.buckets.size(); ++b) {
    const std::uint64_t in_bucket = entry.buckets[b];
    if (static_cast<double>(cumulative + in_bucket) < target_rank) {
      cumulative += in_bucket;
      continue;
    }
    const double lower =
        b == 0 ? entry.min
               : std::max(entry.min, entry.bounds[b - 1]);
    const double upper = b < entry.bounds.size()
                             ? std::min(entry.max, entry.bounds[b])
                             : entry.max;
    if (in_bucket == 0) return std::clamp(lower, entry.min, entry.max);
    const double fraction =
        (target_rank - static_cast<double>(cumulative)) /
        static_cast<double>(in_bucket);
    return std::clamp(lower + (upper - lower) * fraction, entry.min,
                      entry.max);
  }
  return entry.max;
}

}  // namespace airfinger::obs
