// Metric exposition: MetricsSnapshot <-> Prometheus text / JSON.
//
// Both writers are deterministic (metrics in schema order, doubles printed
// with %.17g so they round-trip bit-exactly through strtod) and both have
// matching parsers, so a scraped snapshot can be re-ingested — the
// round-trip is covered by tests/obs_test.cpp. The formats target the two
// consumers a serving deployment actually has: a Prometheus scraper
// (`af_stats --format prometheus`) and structured tooling / dashboards
// (`--format json`, which additionally carries the histogram min/max that
// the Prometheus exposition format has no field for).
#pragma once

#include <iosfwd>
#include <string>

#include "obs/metrics.hpp"

namespace airfinger::obs {

/// Prometheus text exposition format 0.0.4: HELP/TYPE headers, cumulative
/// `_bucket{le="..."}` series plus `_sum`/`_count` for histograms.
void write_prometheus(std::ostream& os, const MetricsSnapshot& snapshot);

/// Parses text produced by write_prometheus back into a snapshot. Not a
/// general scrape parser: it accepts exactly the subset this repo emits
/// and throws PreconditionError on anything else.
MetricsSnapshot parse_prometheus(std::istream& is);

/// JSON object {"metrics": [...]} with one entry per metric; histograms
/// carry bounds/buckets/min/max, so parse_json(write_json(s)) == s.
void write_json(std::ostream& os, const MetricsSnapshot& snapshot);

/// Parses JSON produced by write_json. Same contract as parse_prometheus.
MetricsSnapshot parse_json(std::istream& is);

/// Convenience string forms.
std::string to_prometheus(const MetricsSnapshot& snapshot);
std::string to_json(const MetricsSnapshot& snapshot);

/// Quantile estimate from a histogram entry's buckets (linear
/// interpolation within the winning bucket, clamped to observed min/max).
/// Returns 0 for an empty histogram. `q` in [0, 1].
double histogram_quantile(const MetricEntry& entry, double q);

}  // namespace airfinger::obs
