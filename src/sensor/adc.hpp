// Analog front-end and ADC model.
//
// Models the paper's acquisition chain (transimpedance amplifier feeding an
// Arduino UNO 10-bit ADC): programmable gain, additive thermal noise,
// signal-dependent shot noise, quantization, and rail saturation. Saturation
// is load-bearing: the paper's Sec. VI notes photodiodes saturate under
// strong outdoor sunlight, and the Fig. 15 ambient sweep must reproduce the
// resulting degradation.
#pragma once

#include "common/rng.hpp"

namespace airfinger::sensor {

/// Parameters of the amplifier + ADC chain.
struct AdcSpec {
  double gain = 70.0;           ///< Volts of ADC input per unit photocurrent.
  double offset_v = 0.02;       ///< Analog offset (dark level).
  double vref = 1.0;            ///< Full-scale input voltage.
  int bits = 10;                ///< Resolution (Arduino UNO: 10).
  double thermal_noise_v = 1.2e-3;  ///< Additive Gaussian noise, volts RMS.
  /// Shot (photon) noise is physical noise on the photocurrent, before the
  /// amplifier: σ_i = coeff·sqrt(i). The amplifier scales it together with
  /// the signal, so raising the gain cannot buy back photon-noise SNR —
  /// this is what makes strong ambient light destructive even with an
  /// auto-gain front end (the paper's outdoor saturation discussion).
  double shot_noise_coeff = 2.4e-4;
  /// Probability per sample of an impulsive hardware glitch ("sudden RSS
  /// changes due to hardware", Sec. IV-F).
  double glitch_probability = 0.0;
  double glitch_magnitude_v = 0.15; ///< Peak glitch amplitude, volts.
};

/// Converts analog photocurrent to quantized ADC counts with noise.
class AdcModel {
 public:
  AdcModel() = default;

  /// Requires gain > 0, vref > 0, 1 <= bits <= 24, non-negative noise terms.
  explicit AdcModel(const AdcSpec& spec);

  const AdcSpec& spec() const { return spec_; }

  /// Full-scale count (2^bits - 1).
  double full_scale() const { return full_scale_; }

  /// Converts one analog sample (photocurrent units) to ADC counts, drawing
  /// noise from `rng`. Saturates at [0, full_scale()].
  double convert(double photocurrent, common::Rng& rng) const;

  /// True if the given analog level would saturate the converter.
  bool would_saturate(double photocurrent) const;

 private:
  AdcSpec spec_{};
  double full_scale_ = 1023.0;
};

}  // namespace airfinger::sensor
