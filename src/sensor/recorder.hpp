// Sampling loop: optical scene → quantized multi-channel trace.
//
// The Recorder drives the Scene at a fixed sample rate (100 Hz in the
// paper), querying a caller-supplied scene-state provider for the reflector
// configuration at each sample instant, converting each photodiode's analog
// output through the AdcModel, and accumulating the result into a
// MultiChannelTrace.
#pragma once

#include <functional>

#include "common/rng.hpp"
#include "optics/scene.hpp"
#include "sensor/adc.hpp"
#include "sensor/trace.hpp"

namespace airfinger::sensor {

/// Dynamic state of the scene at one instant.
struct SceneState {
  std::vector<optics::ReflectorPatch> patches;
  optics::DirectInjection direct{};
};

/// Provides the scene state at elapsed time t (seconds).
using SceneStateProvider = std::function<SceneState(double)>;

/// Analog front-end options (the paper's Sec. VI outdoor hardening).
struct FrontEndSpec {
  /// Synchronous (lock-in) detection: the LEDs are modulated with a carrier
  /// well above the gesture band and the photodiode signal is demodulated
  /// before sampling, so only LED-origin light reaches the converter.
  /// Ambient light is attenuated to `ambient_rejection` of its level (a
  /// real synchronous detector leaks a little through filter skirts).
  bool lock_in = false;
  double ambient_rejection = 1e-3;
};

/// Fixed-rate scene sampler.
class Recorder {
 public:
  /// Requires sample_rate_hz > 0.
  Recorder(const optics::Scene& scene, AdcModel adc, double sample_rate_hz,
           FrontEndSpec front_end = {});

  double sample_rate_hz() const { return sample_rate_hz_; }
  const AdcModel& adc() const { return adc_; }

  /// Records `duration_s` seconds starting at scene time `start_time_s`.
  /// Noise is drawn from `rng`; the provider is called once per frame.
  MultiChannelTrace record(const SceneStateProvider& provider,
                           double duration_s, common::Rng& rng,
                           double start_time_s = 0.0) const;

 private:
  const optics::Scene* scene_;  // non-owning; Scene outlives the Recorder
  AdcModel adc_;
  double sample_rate_hz_;
  FrontEndSpec front_end_;
};

}  // namespace airfinger::sensor
