// Deterministic sensor-fault injection for robustness testing.
//
// Models the failure modes the paper and related light-sensing systems
// report for real front ends: dropout/gap runs where the ADC reads a dead
// value, rail-saturation runs under strong ambient light (Sec. VI /
// Fig. 15), impulsive hardware glitches ("sudden RSS changes due to
// hardware", Sec. IV-F), outright corrupt non-finite samples from a broken
// transport, channels frozen at their last value, and frames arriving with
// the wrong channel count — plus the artifact-detector adversaries: crackle
// trains, zipper/step level shifts, slow baseline drift, and periodic
// ambient flicker. Every corruption is drawn from a seeded common::Rng, so
// a given (config, seed, input) triple always produces the same corrupted
// output and the same fault log — the robustness suite replays identical
// fault storms at any thread count.
//
// Each fault class draws from its own split RNG stream (keyed by the class,
// derived via the pure `Rng::split(stream_id)`), so enabling or disabling
// one class never changes the storm another class produces — a detector's
// seeded adversary stays fixed while tests sweep the other rates.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "sensor/trace.hpp"

namespace airfinger::sensor {

/// Per-class injection rates and shapes. A rate of 0 disables the class;
/// with every rate 0 the injector is the identity.
struct FaultInjectorConfig {
  /// Per-sample probability (per channel) that a dropout run starts: the
  /// channel reads `dropout_value` for `dropout_run` samples.
  double dropout_rate = 0.0;
  std::size_t dropout_run = 24;
  double dropout_value = 0.0;

  /// Per-sample probability (per channel) that a rail-saturation run
  /// starts: the channel is clamped to `saturation_level` for
  /// `saturation_run` samples.
  double saturation_rate = 0.0;
  std::size_t saturation_run = 16;
  double saturation_level = 1023.0;  ///< ADC full-scale rail.

  /// Per-sample probability (per channel) of a corrupt non-finite sample
  /// (NaN, +Inf, or -Inf, chosen uniformly).
  double non_finite_rate = 0.0;

  /// Per-sample probability (per channel) of an additive impulse glitch of
  /// ±`glitch_magnitude` counts.
  double glitch_rate = 0.0;
  double glitch_magnitude = 400.0;

  /// Per-channel probability the channel freezes: from a uniformly chosen
  /// sample onward it repeats the value it held there.
  double stuck_channel_rate = 0.0;

  /// Per-frame probability (frames() only) that the frame is emitted with
  /// a wrong arity: one channel short, or one extra zero sample.
  double channel_mismatch_rate = 0.0;

  /// Per-sample probability (per channel) that a crackle train starts:
  /// `crackle_count` alternating-sign impulses of ±`crackle_magnitude`,
  /// spaced `crackle_gap` samples apart — the dense-impulse failure mode a
  /// loose connector or ESD burst produces.
  double crackle_rate = 0.0;
  std::size_t crackle_count = 5;
  std::size_t crackle_gap = 6;
  double crackle_magnitude = 400.0;

  /// Per-sample probability (per channel) of a zipper/step fault: the
  /// channel's DC level jumps by ±`step_magnitude` and stays there (steps
  /// stack, like a failing ADC reference walking between levels).
  double step_rate = 0.0;
  double step_magnitude = 300.0;

  /// Per-sample probability (per channel) that a slow baseline drift
  /// starts: a linear ramp accumulating ±`drift_magnitude` counts over
  /// `drift_run` samples, persisting afterwards — ambient temperature or
  /// sunlight creeping into the photodiode.
  double drift_rate = 0.0;
  std::size_t drift_run = 400;
  double drift_magnitude = 200.0;

  /// Per-sample probability (per channel) that a periodic ambient-flicker
  /// episode starts: an additive sinusoid of amplitude `flicker_magnitude`
  /// and period `flicker_period` samples lasting `flicker_run` samples —
  /// mains-powered lighting bleeding into the NIR band.
  double flicker_rate = 0.0;
  std::size_t flicker_run = 256;
  std::size_t flicker_period = 8;
  double flicker_magnitude = 120.0;
};

/// One injected fault, for test assertions. Ranges are sample indices
/// [begin, end) on `channel` (kChannelMismatch: begin == end == the frame
/// index, channel == the corrupted frame's arity).
struct FaultEvent {
  enum class Kind {
    kDropout,
    kSaturation,
    kNonFinite,
    kGlitch,
    kStuckChannel,
    kChannelMismatch,
    kCrackle,
    kStep,
    kDrift,
    kFlicker,
  };
  Kind kind{};
  std::size_t channel = 0;
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// Seeded corruptor of recorded traces and frame streams.
class FaultInjector {
 public:
  /// Requires rates in [0, 1] and run lengths >= 1.
  FaultInjector(FaultInjectorConfig config, std::uint64_t seed);

  const FaultInjectorConfig& config() const { return config_; }

  /// Returns a corrupted copy of `trace`. Deterministic: a fresh injector
  /// with the same (config, seed) maps the same input to the same output.
  /// Each call advances the injector's stream (call order matters).
  MultiChannelTrace corrupt(const MultiChannelTrace& trace);

  /// Splits `trace` into a frame sequence, applies the same per-sample
  /// corruptions as corrupt(), and additionally emits wrong-arity frames
  /// at `channel_mismatch_rate` — the streaming-ingest torture input for
  /// Session::push_frame validation tests.
  std::vector<std::vector<double>> frames(const MultiChannelTrace& trace);

  /// Faults injected by the most recent corrupt()/frames() call.
  const std::vector<FaultEvent>& log() const { return log_; }

 private:
  /// Applies the per-sample fault classes to channel-major data in place.
  void corrupt_channels(std::vector<std::vector<double>>& channels,
                        common::Rng& rng);

  FaultInjectorConfig config_;
  common::Rng rng_;
  std::vector<FaultEvent> log_;
};

}  // namespace airfinger::sensor
