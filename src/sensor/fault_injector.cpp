#include "sensor/fault_injector.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace airfinger::sensor {

namespace {
void check_rate(double rate, const char* name) {
  AF_EXPECT(rate >= 0.0 && rate <= 1.0,
            std::string("fault rate '") + name + "' must be in [0, 1]");
}

// Stream ids keying each fault class's independent substream. Derived with
// the pure Rng::split(stream_id), so every class sees the same storm no
// matter which other classes are enabled — the determinism contract the
// injector-vs-detector sweeps rely on.
enum ClassStream : std::uint64_t {
  kStreamDropout = 1,
  kStreamSaturation,
  kStreamNonFinite,
  kStreamGlitch,
  kStreamStuck,
  kStreamCrackle,
  kStreamStep,
  kStreamDrift,
  kStreamFlicker,
  kStreamMismatch,
};
}  // namespace

FaultInjector::FaultInjector(FaultInjectorConfig config, std::uint64_t seed)
    : config_(config), rng_(seed) {
  check_rate(config_.dropout_rate, "dropout_rate");
  check_rate(config_.saturation_rate, "saturation_rate");
  check_rate(config_.non_finite_rate, "non_finite_rate");
  check_rate(config_.glitch_rate, "glitch_rate");
  check_rate(config_.stuck_channel_rate, "stuck_channel_rate");
  check_rate(config_.channel_mismatch_rate, "channel_mismatch_rate");
  check_rate(config_.crackle_rate, "crackle_rate");
  check_rate(config_.step_rate, "step_rate");
  check_rate(config_.drift_rate, "drift_rate");
  check_rate(config_.flicker_rate, "flicker_rate");
  AF_EXPECT(config_.dropout_run >= 1 && config_.saturation_run >= 1,
            "fault run lengths must be >= 1");
  AF_EXPECT(config_.crackle_count >= 1 && config_.crackle_gap >= 1,
            "crackle trains need count >= 1 and gap >= 1");
  AF_EXPECT(config_.drift_run >= 1, "drift_run must be >= 1");
  AF_EXPECT(config_.flicker_run >= 1 && config_.flicker_period >= 2,
            "flicker needs run >= 1 and period >= 2");
}

void FaultInjector::corrupt_channels(
    std::vector<std::vector<double>>& channels, common::Rng& rng) {
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const std::size_t n = channels.empty() ? 0 : channels.front().size();
  if (n == 0) return;

  // Class-major passes, each on its own substream. Within a class, draws
  // are consumed in a fixed channel-major order that depends only on that
  // class's own configuration, never on another class's.

  // Run-shaped faults first (dropouts, saturation): a run that starts
  // inside another simply overwrites it, like colliding bursts would.
  if (config_.dropout_rate > 0.0) {
    common::Rng r = rng.split(kStreamDropout);
    for (std::size_t c = 0; c < channels.size(); ++c) {
      std::vector<double>& ch = channels[c];
      for (std::size_t i = 0; i < n; ++i) {
        if (!r.bernoulli(config_.dropout_rate)) continue;
        const std::size_t end = std::min(n, i + config_.dropout_run);
        std::fill(ch.begin() + static_cast<long>(i),
                  ch.begin() + static_cast<long>(end), config_.dropout_value);
        log_.push_back({FaultEvent::Kind::kDropout, c, i, end});
        i = end - 1;
      }
    }
  }
  if (config_.saturation_rate > 0.0) {
    common::Rng r = rng.split(kStreamSaturation);
    for (std::size_t c = 0; c < channels.size(); ++c) {
      std::vector<double>& ch = channels[c];
      for (std::size_t i = 0; i < n; ++i) {
        if (!r.bernoulli(config_.saturation_rate)) continue;
        const std::size_t end = std::min(n, i + config_.saturation_run);
        std::fill(ch.begin() + static_cast<long>(i),
                  ch.begin() + static_cast<long>(end),
                  config_.saturation_level);
        log_.push_back({FaultEvent::Kind::kSaturation, c, i, end});
        i = end - 1;
      }
    }
  }

  // Slow additive corruptions (step, drift, flicker) go before the point
  // faults so an impulse lands on top of the shifted level, as it would in
  // hardware.
  if (config_.step_rate > 0.0) {
    common::Rng r = rng.split(kStreamStep);
    for (std::size_t c = 0; c < channels.size(); ++c) {
      std::vector<double>& ch = channels[c];
      double offset = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        if (r.bernoulli(config_.step_rate)) {
          offset += r.bernoulli(0.5) ? config_.step_magnitude
                                     : -config_.step_magnitude;
          log_.push_back({FaultEvent::Kind::kStep, c, i, n});
        }
        ch[i] += offset;
      }
    }
  }
  if (config_.drift_rate > 0.0) {
    common::Rng r = rng.split(kStreamDrift);
    for (std::size_t c = 0; c < channels.size(); ++c) {
      std::vector<double>& ch = channels[c];
      double offset = 0.0;
      double slope = 0.0;
      std::size_t ramp_remaining = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const bool start = r.bernoulli(config_.drift_rate);
        if (start && ramp_remaining == 0) {
          slope = (r.bernoulli(0.5) ? 1.0 : -1.0) * config_.drift_magnitude /
                  static_cast<double>(config_.drift_run);
          ramp_remaining = config_.drift_run;
          log_.push_back({FaultEvent::Kind::kDrift, c, i,
                          std::min(n, i + config_.drift_run)});
        }
        if (ramp_remaining > 0) {
          offset += slope;
          --ramp_remaining;
        }
        ch[i] += offset;
      }
    }
  }
  if (config_.flicker_rate > 0.0) {
    common::Rng r = rng.split(kStreamFlicker);
    const double omega = 2.0 * M_PI / static_cast<double>(config_.flicker_period);
    for (std::size_t c = 0; c < channels.size(); ++c) {
      std::vector<double>& ch = channels[c];
      std::size_t remaining = 0;
      std::size_t phase = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const bool start = r.bernoulli(config_.flicker_rate);
        if (start && remaining == 0) {
          remaining = config_.flicker_run;
          phase = 0;
          log_.push_back({FaultEvent::Kind::kFlicker, c, i,
                          std::min(n, i + config_.flicker_run)});
        }
        if (remaining > 0) {
          ch[i] +=
              config_.flicker_magnitude * std::sin(omega * static_cast<double>(phase));
          ++phase;
          --remaining;
        }
      }
    }
  }

  // Point faults: impulse glitches, crackle trains, non-finite samples.
  if (config_.glitch_rate > 0.0) {
    common::Rng r = rng.split(kStreamGlitch);
    for (std::size_t c = 0; c < channels.size(); ++c) {
      std::vector<double>& ch = channels[c];
      for (std::size_t i = 0; i < n; ++i) {
        if (!r.bernoulli(config_.glitch_rate)) continue;
        ch[i] += r.bernoulli(0.5) ? config_.glitch_magnitude
                                  : -config_.glitch_magnitude;
        log_.push_back({FaultEvent::Kind::kGlitch, c, i, i + 1});
      }
    }
  }
  if (config_.crackle_rate > 0.0) {
    common::Rng r = rng.split(kStreamCrackle);
    for (std::size_t c = 0; c < channels.size(); ++c) {
      std::vector<double>& ch = channels[c];
      for (std::size_t i = 0; i < n; ++i) {
        if (!r.bernoulli(config_.crackle_rate)) continue;
        double sign = r.bernoulli(0.5) ? 1.0 : -1.0;
        std::size_t end = i + 1;
        for (std::size_t k = 0; k < config_.crackle_count; ++k) {
          const std::size_t pos = i + k * config_.crackle_gap;
          if (pos >= n) break;
          ch[pos] += sign * config_.crackle_magnitude;
          sign = -sign;
          end = pos + 1;
        }
        log_.push_back({FaultEvent::Kind::kCrackle, c, i, end});
        i = end - 1;
      }
    }
  }
  if (config_.non_finite_rate > 0.0) {
    common::Rng r = rng.split(kStreamNonFinite);
    for (std::size_t c = 0; c < channels.size(); ++c) {
      std::vector<double>& ch = channels[c];
      for (std::size_t i = 0; i < n; ++i) {
        if (!r.bernoulli(config_.non_finite_rate)) continue;
        const std::uint64_t pick = r.below(3);
        ch[i] = pick == 0 ? kNaN : (pick == 1 ? kInf : -kInf);
        log_.push_back({FaultEvent::Kind::kNonFinite, c, i, i + 1});
      }
    }
  }

  // Stuck channel: freeze at the value held at a random position.
  if (config_.stuck_channel_rate > 0.0) {
    common::Rng r = rng.split(kStreamStuck);
    for (std::size_t c = 0; c < channels.size(); ++c) {
      std::vector<double>& ch = channels[c];
      if (!r.bernoulli(config_.stuck_channel_rate)) continue;
      const std::size_t at = static_cast<std::size_t>(r.below(n));
      std::fill(ch.begin() + static_cast<long>(at), ch.end(), ch[at]);
      log_.push_back({FaultEvent::Kind::kStuckChannel, c, at, n});
    }
  }
}

MultiChannelTrace FaultInjector::corrupt(const MultiChannelTrace& trace) {
  log_.clear();
  common::Rng rng = rng_.split();
  std::vector<std::vector<double>> channels(trace.channel_count());
  for (std::size_t c = 0; c < trace.channel_count(); ++c) {
    const auto src = trace.channel(c);
    channels[c].assign(src.begin(), src.end());
  }
  corrupt_channels(channels, rng);

  MultiChannelTrace out(trace.channel_count(), trace.sample_rate_hz());
  std::vector<double> frame(trace.channel_count());
  for (std::size_t i = 0; i < trace.sample_count(); ++i) {
    for (std::size_t c = 0; c < channels.size(); ++c) frame[c] = channels[c][i];
    out.push_frame(frame);
  }
  return out;
}

std::vector<std::vector<double>> FaultInjector::frames(
    const MultiChannelTrace& trace) {
  log_.clear();
  common::Rng rng = rng_.split();
  std::vector<std::vector<double>> channels(trace.channel_count());
  for (std::size_t c = 0; c < trace.channel_count(); ++c) {
    const auto src = trace.channel(c);
    channels[c].assign(src.begin(), src.end());
  }
  corrupt_channels(channels, rng);

  common::Rng mismatch_rng = rng.split(kStreamMismatch);
  std::vector<std::vector<double>> out;
  out.reserve(trace.sample_count());
  for (std::size_t i = 0; i < trace.sample_count(); ++i) {
    std::vector<double> frame(channels.size());
    for (std::size_t c = 0; c < channels.size(); ++c) frame[c] = channels[c][i];
    if (config_.channel_mismatch_rate > 0.0 &&
        mismatch_rng.bernoulli(config_.channel_mismatch_rate)) {
      if (mismatch_rng.bernoulli(0.5) && frame.size() > 1)
        frame.pop_back();
      else
        frame.push_back(0.0);
      log_.push_back(
          {FaultEvent::Kind::kChannelMismatch, frame.size(), i, i});
    }
    out.push_back(std::move(frame));
  }
  return out;
}

}  // namespace airfinger::sensor
