#include "sensor/fault_injector.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace airfinger::sensor {

namespace {
void check_rate(double rate, const char* name) {
  AF_EXPECT(rate >= 0.0 && rate <= 1.0,
            std::string("fault rate '") + name + "' must be in [0, 1]");
}
}  // namespace

FaultInjector::FaultInjector(FaultInjectorConfig config, std::uint64_t seed)
    : config_(config), rng_(seed) {
  check_rate(config_.dropout_rate, "dropout_rate");
  check_rate(config_.saturation_rate, "saturation_rate");
  check_rate(config_.non_finite_rate, "non_finite_rate");
  check_rate(config_.glitch_rate, "glitch_rate");
  check_rate(config_.stuck_channel_rate, "stuck_channel_rate");
  check_rate(config_.channel_mismatch_rate, "channel_mismatch_rate");
  AF_EXPECT(config_.dropout_run >= 1 && config_.saturation_run >= 1,
            "fault run lengths must be >= 1");
}

void FaultInjector::corrupt_channels(
    std::vector<std::vector<double>>& channels, common::Rng& rng) {
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  constexpr double kInf = std::numeric_limits<double>::infinity();

  for (std::size_t c = 0; c < channels.size(); ++c) {
    std::vector<double>& ch = channels[c];
    const std::size_t n = ch.size();
    if (n == 0) continue;

    // Run-shaped faults first (dropouts, saturation): a run that starts
    // inside another simply overwrites it, like colliding bursts would.
    for (std::size_t i = 0; i < n; ++i) {
      if (config_.dropout_rate > 0.0 && rng.bernoulli(config_.dropout_rate)) {
        const std::size_t end = std::min(n, i + config_.dropout_run);
        std::fill(ch.begin() + static_cast<long>(i),
                  ch.begin() + static_cast<long>(end), config_.dropout_value);
        log_.push_back({FaultEvent::Kind::kDropout, c, i, end});
        i = end - 1;
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (config_.saturation_rate > 0.0 &&
          rng.bernoulli(config_.saturation_rate)) {
        const std::size_t end = std::min(n, i + config_.saturation_run);
        std::fill(ch.begin() + static_cast<long>(i),
                  ch.begin() + static_cast<long>(end),
                  config_.saturation_level);
        log_.push_back({FaultEvent::Kind::kSaturation, c, i, end});
        i = end - 1;
      }
    }

    // Point faults: impulse glitches and non-finite samples.
    if (config_.glitch_rate > 0.0) {
      for (std::size_t i = 0; i < n; ++i) {
        if (!rng.bernoulli(config_.glitch_rate)) continue;
        ch[i] += rng.bernoulli(0.5) ? config_.glitch_magnitude
                                    : -config_.glitch_magnitude;
        log_.push_back({FaultEvent::Kind::kGlitch, c, i, i + 1});
      }
    }
    if (config_.non_finite_rate > 0.0) {
      for (std::size_t i = 0; i < n; ++i) {
        if (!rng.bernoulli(config_.non_finite_rate)) continue;
        const std::uint64_t pick = rng.below(3);
        ch[i] = pick == 0 ? kNaN : (pick == 1 ? kInf : -kInf);
        log_.push_back({FaultEvent::Kind::kNonFinite, c, i, i + 1});
      }
    }

    // Stuck channel: freeze at the value held at a random position.
    if (config_.stuck_channel_rate > 0.0 &&
        rng.bernoulli(config_.stuck_channel_rate)) {
      const std::size_t at = static_cast<std::size_t>(rng.below(n));
      std::fill(ch.begin() + static_cast<long>(at), ch.end(), ch[at]);
      log_.push_back({FaultEvent::Kind::kStuckChannel, c, at, n});
    }
  }
}

MultiChannelTrace FaultInjector::corrupt(const MultiChannelTrace& trace) {
  log_.clear();
  common::Rng rng = rng_.split();
  std::vector<std::vector<double>> channels(trace.channel_count());
  for (std::size_t c = 0; c < trace.channel_count(); ++c) {
    const auto src = trace.channel(c);
    channels[c].assign(src.begin(), src.end());
  }
  corrupt_channels(channels, rng);

  MultiChannelTrace out(trace.channel_count(), trace.sample_rate_hz());
  std::vector<double> frame(trace.channel_count());
  for (std::size_t i = 0; i < trace.sample_count(); ++i) {
    for (std::size_t c = 0; c < channels.size(); ++c) frame[c] = channels[c][i];
    out.push_frame(frame);
  }
  return out;
}

std::vector<std::vector<double>> FaultInjector::frames(
    const MultiChannelTrace& trace) {
  log_.clear();
  common::Rng rng = rng_.split();
  std::vector<std::vector<double>> channels(trace.channel_count());
  for (std::size_t c = 0; c < trace.channel_count(); ++c) {
    const auto src = trace.channel(c);
    channels[c].assign(src.begin(), src.end());
  }
  corrupt_channels(channels, rng);

  std::vector<std::vector<double>> out;
  out.reserve(trace.sample_count());
  for (std::size_t i = 0; i < trace.sample_count(); ++i) {
    std::vector<double> frame(channels.size());
    for (std::size_t c = 0; c < channels.size(); ++c) frame[c] = channels[c][i];
    if (config_.channel_mismatch_rate > 0.0 &&
        rng.bernoulli(config_.channel_mismatch_rate)) {
      if (rng.bernoulli(0.5) && frame.size() > 1)
        frame.pop_back();
      else
        frame.push_back(0.0);
      log_.push_back({FaultEvent::Kind::kChannelMismatch, frame.size(), i, i});
    }
    out.push_back(std::move(frame));
  }
  return out;
}

}  // namespace airfinger::sensor
