// Allocation-free streaming artifact detectors for the NIR sensing path.
//
// The degraded-mode policy of PR 4 fires on crude burst heuristics
// (saturation/stuck/dropout runs). This header adds the principled toolkit
// the ROADMAP calls for — the detectors krate-audio's artifact-detection
// spec and the reflected-light-wave literature use to separate real signal
// from optical/electrical corruption:
//
//   * derivative-based click/impulse detection with a 5-sigma adaptive
//     threshold (EWMA mean/variance of the absolute first difference);
//   * streaming LPC residual analysis: EWMA autocorrelation lags solved by
//     Levinson–Durbin every `lpc_refresh` samples, the per-sample
//     prediction residual scored against its own adaptive RMS;
//   * windowed excess kurtosis over a fixed ring (impulsivity: crackle and
//     glitch trains are leptokurtic, clean optical noise is not);
//   * spectral flatness + dominant-bin analysis over a hopped window
//     (drift and periodic ambient flicker both collapse flatness; the
//     dominant bin separates DC-heavy drift from AC flicker), plus a
//     slow-baseline velocity tracker as the direct drift measure.
//
// Every detector is streaming and allocation-free after construction: one
// ChannelArtifactDetector per photodiode channel, O(lpc_order) amortized
// work per accepted sample plus an O(W log W) FFT every `spectrum_hop`
// samples into preallocated scratch. Detection is graded: accept() returns
// per-class confidences in [0, 1], where 1.0 means the configured
// threshold (e.g. 5 sigma) was reached — the session's FaultPolicy, not
// the detector, decides what to do about it (core/health.hpp).
//
// The detector deliberately separates *peeking* from *committing*:
// click_z(x) scores a candidate sample against the current adaptive state
// without touching it, so the session can hold a suspected impulse out of
// the stream, repair it, and only then accept() the repaired value — the
// adaptive statistics never learn from corruption that was rejected.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace airfinger::sensor {

/// Hard cap on the streaming LPC order so coefficient and lag-history
/// buffers can live in fixed-size arrays (no per-sample heap use).
inline constexpr std::size_t kMaxLpcOrder = 12;

/// Detector shape and thresholds. Confidences reach 1.0 exactly when the
/// corresponding threshold is met, so policy code compares against 1.0.
struct ArtifactDetectorConfig {
  // -- derivative click/impulse detector
  /// Z-score of |x_t - x_{t-1}| (against the EWMA mean/sigma of the same
  /// quantity) at which click confidence saturates. 5 sigma by default:
  /// clean noise essentially never reaches it, impulses always do.
  double click_sigma = 5.0;
  /// EWMA adaptation rate of the derivative statistics.
  double deriv_alpha = 1.0 / 64.0;
  /// Absolute floor on the adaptive sigma: a perfectly quiet stream must
  /// not collapse the threshold to zero and fire on the first wiggle.
  double sigma_floor = 1e-6;
  /// Samples before any detector reports nonzero confidence — the EWMAs
  /// need this long to mean anything.
  std::size_t warmup_samples = 64;

  // -- streaming LPC residual (Levinson–Durbin)
  std::size_t lpc_order = 4;          ///< 1..kMaxLpcOrder.
  double lpc_alpha = 1.0 / 256.0;     ///< EWMA rate of the lag products.
  std::size_t lpc_refresh = 16;       ///< Samples between coefficient solves.
  /// Residual z (|e| over its adaptive RMS) at which confidence saturates.
  double lpc_sigma = 5.0;

  // -- windowed excess kurtosis
  std::size_t kurtosis_window = 64;
  /// Excess kurtosis at which impulsivity confidence saturates (Gaussian
  /// noise sits near 0, uniform near -1.2; crackle windows run far above).
  double kurtosis_limit = 3.0;

  // -- spectral flatness / flicker (hopped FFT window)
  std::size_t spectrum_window = 64;   ///< Power of two, >= 8.
  std::size_t spectrum_hop = 16;      ///< Samples between FFT evaluations.
  /// Flatness below this floor grades as tonal corruption (confidence
  /// saturates at flatness_floor/2). Broadband sensor noise sits well
  /// above it.
  double flatness_floor = 0.15;
  /// First spectrum bin eligible as a flicker line; bins below carry
  /// legitimate gesture energy (sub-~5 Hz at the paper's 100 Hz rate).
  std::size_t flicker_min_bin = 3;
  /// Fraction of AC spectral power in the dominant eligible bin at which
  /// flicker confidence saturates.
  double flicker_fraction = 0.5;

  // -- slow-baseline drift
  double baseline_alpha = 1.0 / 256.0;  ///< Slow baseline EWMA rate.
  /// Baseline velocity (counts/sample, EWMA) at which drift confidence
  /// saturates. Gestures bend the slow baseline only transiently; a real
  /// ambient drift holds it here for seconds.
  double drift_velocity = 0.35;
};

/// Per-sample graded confidences in [0, 1]; 1.0 = threshold reached.
/// `tonal` and `flicker` refresh every `spectrum_hop` samples and hold
/// their last value in between.
struct ArtifactScores {
  double click = 0.0;     ///< Derivative impulse (this sample).
  double residual = 0.0;  ///< LPC prediction residual (this sample).
  double kurtosis = 0.0;  ///< Windowed impulsivity (trailing window).
  double tonal = 0.0;     ///< Spectral flatness collapse (trailing window).
  double drift = 0.0;     ///< Slow-baseline velocity.
  double flicker = 0.0;   ///< Dominant-AC-bin periodic interference.
};

/// Solves the order-p Yule–Walker equations R a = r by Levinson–Durbin:
/// `r` holds autocorrelation lags r[0..p] (size p+1), `a` receives the p
/// forward-prediction coefficients (x_t ≈ sum a_k x_{t-k}). Returns the
/// final prediction error power; degenerate input (r[0] <= 0 or a
/// non-positive error at any recursion step) zeroes `a` and returns 0.
double levinson_durbin(std::span<const double> r, std::span<double> a);

/// One channel's streaming artifact state. All buffers are sized at
/// construction; click_z() and accept() never allocate.
class ChannelArtifactDetector {
 public:
  explicit ChannelArtifactDetector(ArtifactDetectorConfig config = {});

  const ArtifactDetectorConfig& config() const { return config_; }

  /// Derivative z-score of candidate sample `x` against the current
  /// adaptive statistics, without committing anything. 0 until warmed up.
  double click_z(double x) const;

  /// Commits `x` into every detector and returns this sample's graded
  /// confidences. O(lpc_order) plus amortized window maintenance.
  ArtifactScores accept(double x);

  /// True once `warmup_samples` samples have been accepted.
  bool warmed_up() const { return samples_ >= config_.warmup_samples; }
  /// Samples accepted since construction or reset().
  std::uint64_t samples() const { return samples_; }
  /// The most recently accepted sample (the derivative reference).
  double last() const { return last_; }

  // -- introspection for tests and threshold derivations
  double deriv_mean() const { return deriv_mean_; }
  double deriv_sigma() const;
  /// The adaptive click threshold in sample units:
  /// deriv_mean + click_sigma * deriv_sigma.
  double click_threshold() const;
  /// Current LPC coefficients (config().lpc_order of them).
  std::span<const double> lpc() const { return {lpc_a_, config_.lpc_order}; }
  /// EWMA autocorrelation lags r[0..lpc_order].
  std::span<const double> lags() const { return {lpc_r_, config_.lpc_order + 1}; }
  /// Adaptive RMS of the LPC residual.
  double residual_rms() const;
  /// Excess kurtosis of the trailing window (0 until the window fills).
  double excess_kurtosis() const { return kurtosis_; }
  /// Spectral flatness of the last evaluated window (1.0 = broadband;
  /// starts neutral at 1.0 before the first hop).
  double flatness() const { return flatness_; }
  /// Dominant eligible AC bin of the last evaluated window and its power
  /// fraction of the AC spectrum.
  std::size_t dominant_bin() const { return dominant_bin_; }
  double dominant_fraction() const { return dominant_fraction_; }
  /// EWMA slow baseline and its per-sample velocity.
  double baseline() const { return baseline_; }
  double baseline_velocity() const { return baseline_velocity_; }

  /// Returns the detector to its freshly constructed state.
  void reset();

 private:
  void refresh_lpc();
  void refresh_spectrum();
  void refresh_kurtosis_exact();

  ArtifactDetectorConfig config_;
  std::uint64_t samples_ = 0;
  double last_ = 0.0;

  // Derivative statistics (EWMA of d = |x_t - x_{t-1}| and of d^2).
  double deriv_mean_ = 0.0;
  double deriv_m2_ = 0.0;

  // Slow baseline + velocity.
  double baseline_ = 0.0;
  double baseline_velocity_ = 0.0;

  // Streaming LPC state over the baseline-removed signal.
  double lpc_r_[kMaxLpcOrder + 1] = {};   ///< EWMA autocorrelation lags.
  double lpc_a_[kMaxLpcOrder] = {};       ///< Current coefficients.
  double lpc_hist_[kMaxLpcOrder] = {};    ///< Recent baseline-removed samples
                                          ///< (hist_[0] = newest).
  double residual_ms_ = 0.0;              ///< EWMA of residual^2.
  std::size_t lpc_countdown_ = 1;

  // Kurtosis ring + running raw power sums (exactly recomputed every full
  // ring turn so incremental add/subtract drift cannot accumulate).
  std::vector<double> kurt_ring_;
  std::size_t kurt_head_ = 0;
  std::size_t kurt_fill_ = 0;
  std::size_t kurt_resum_countdown_;
  double kurt_s1_ = 0.0, kurt_s2_ = 0.0, kurt_s3_ = 0.0, kurt_s4_ = 0.0;
  double kurtosis_ = 0.0;

  // Spectrum ring + preallocated FFT scratch and Hann window.
  std::vector<double> spec_ring_;
  std::size_t spec_head_ = 0;
  std::size_t spec_fill_ = 0;
  std::size_t hop_countdown_;
  std::vector<std::complex<double>> fft_scratch_;
  std::vector<double> hann_;
  double flatness_ = 1.0;
  std::size_t dominant_bin_ = 0;
  double dominant_fraction_ = 0.0;
};

}  // namespace airfinger::sensor
