#include "sensor/trace.hpp"

namespace airfinger::sensor {

MultiChannelTrace::MultiChannelTrace(std::size_t channels,
                                     double sample_rate_hz)
    : channels_(channels), sample_rate_hz_(sample_rate_hz) {
  AF_EXPECT(channels >= 1, "trace requires at least one channel");
  AF_EXPECT(sample_rate_hz > 0.0, "sample rate must be positive");
}

void MultiChannelTrace::push_frame(std::span<const double> frame) {
  AF_EXPECT(frame.size() == channels_.size(),
            "frame carries " + std::to_string(frame.size()) +
                " samples but the trace has " +
                std::to_string(channels_.size()) + " channels");
  for (std::size_t i = 0; i < frame.size(); ++i)
    channels_[i].push_back(frame[i]);
}

std::span<const double> MultiChannelTrace::channel(std::size_t i) const {
  AF_EXPECT(i < channels_.size(), "channel index out of range");
  return channels_[i];
}

std::vector<double>& MultiChannelTrace::mutable_channel(std::size_t i) {
  AF_EXPECT(i < channels_.size(), "channel index out of range");
  return channels_[i];
}

std::vector<double> MultiChannelTrace::summed() const {
  std::vector<double> out(sample_count(), 0.0);
  for (const auto& ch : channels_)
    for (std::size_t i = 0; i < ch.size(); ++i) out[i] += ch[i];
  return out;
}

MultiChannelTrace MultiChannelTrace::slice(std::size_t begin,
                                           std::size_t end) const {
  AF_EXPECT(begin <= end && end <= sample_count(),
            "slice range out of bounds");
  MultiChannelTrace out(channel_count(), sample_rate_hz_);
  for (std::size_t c = 0; c < channel_count(); ++c)
    out.channels_[c].assign(channels_[c].begin() + static_cast<long>(begin),
                            channels_[c].begin() + static_cast<long>(end));
  return out;
}

void MultiChannelTrace::append(const MultiChannelTrace& other) {
  AF_EXPECT(other.channel_count() == channel_count(),
            "append: channel count mismatch");
  AF_EXPECT(other.sample_rate_hz() == sample_rate_hz_,
            "append: sample rate mismatch");
  for (std::size_t c = 0; c < channel_count(); ++c)
    channels_[c].insert(channels_[c].end(), other.channels_[c].begin(),
                        other.channels_[c].end());
}

}  // namespace airfinger::sensor
