#include "sensor/trace_io.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/error.hpp"

namespace airfinger::sensor {

namespace {

std::string hex(double v) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%a", v);
  return buffer;
}

double parse_hex(const std::string& token) {
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  AF_EXPECT(end != token.c_str() && *end == '\0',
            "aftrace: malformed number '" + token + "'");
  return v;
}

}  // namespace

std::string serialize_trace(const MultiChannelTrace& trace) {
  std::ostringstream os;
  os << "aftrace 1\n";
  os << "channels " << trace.channel_count() << "\n";
  os << "sample_rate_hz " << hex(trace.sample_rate_hz()) << "\n";
  os << "samples " << trace.sample_count() << "\n";
  for (std::size_t i = 0; i < trace.sample_count(); ++i) {
    for (std::size_t c = 0; c < trace.channel_count(); ++c) {
      if (c) os << ' ';
      os << hex(trace.channel(c)[i]);
    }
    os << "\n";
  }
  return os.str();
}

MultiChannelTrace parse_trace(std::istream& is) {
  std::string tag;
  int version = 0;
  is >> tag >> version;
  AF_EXPECT(tag == "aftrace" && version == 1, "not an aftrace 1 file");
  std::size_t channels = 0;
  std::size_t samples = 0;
  std::string rate_token;
  is >> tag >> channels;
  AF_EXPECT(tag == "channels" && channels >= 1, "malformed aftrace header");
  is >> tag >> rate_token;
  AF_EXPECT(tag == "sample_rate_hz", "malformed aftrace header");
  is >> tag >> samples;
  AF_EXPECT(tag == "samples" && is.good(), "malformed aftrace header");

  MultiChannelTrace trace(channels, parse_hex(rate_token));
  std::vector<double> frame(channels);
  std::string token;
  for (std::size_t i = 0; i < samples; ++i) {
    for (std::size_t c = 0; c < channels; ++c) {
      is >> token;
      AF_EXPECT(!is.fail(), "aftrace truncated");
      frame[c] = parse_hex(token);
    }
    trace.push_frame(frame);
  }
  return trace;
}

MultiChannelTrace load_trace_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  AF_EXPECT(static_cast<bool>(is), "cannot open trace file: " + path);
  return parse_trace(is);
}

void save_trace_file(const std::string& path,
                     const MultiChannelTrace& trace) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  AF_EXPECT(static_cast<bool>(os),
            "cannot open trace file for writing: " + path);
  os << serialize_trace(trace);
  AF_EXPECT(static_cast<bool>(os), "short write to trace file: " + path);
}

}  // namespace airfinger::sensor
