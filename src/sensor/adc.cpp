#include "sensor/adc.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace airfinger::sensor {

AdcModel::AdcModel(const AdcSpec& spec) : spec_(spec) {
  AF_EXPECT(spec.gain > 0.0, "ADC gain must be positive");
  AF_EXPECT(spec.vref > 0.0, "ADC vref must be positive");
  AF_EXPECT(spec.bits >= 1 && spec.bits <= 24, "ADC bits must be in [1,24]");
  AF_EXPECT(spec.thermal_noise_v >= 0.0, "thermal noise must be >= 0");
  AF_EXPECT(spec.shot_noise_coeff >= 0.0, "shot noise coeff must be >= 0");
  AF_EXPECT(spec.glitch_probability >= 0.0 && spec.glitch_probability <= 1.0,
            "glitch probability must lie in [0,1]");
  full_scale_ = std::pow(2.0, spec.bits) - 1.0;
}

double AdcModel::convert(double photocurrent, common::Rng& rng) const {
  double v = spec_.offset_v + spec_.gain * photocurrent;
  // Photon (shot) noise on the photocurrent, amplified with the signal.
  const double shot_sigma =
      spec_.gain * spec_.shot_noise_coeff *
      std::sqrt(std::max(photocurrent, 0.0));
  v += rng.normal(0.0, spec_.thermal_noise_v);
  if (shot_sigma > 0.0) v += rng.normal(0.0, shot_sigma);
  if (spec_.glitch_probability > 0.0 &&
      rng.bernoulli(spec_.glitch_probability)) {
    v += rng.uniform(-spec_.glitch_magnitude_v, spec_.glitch_magnitude_v);
  }
  const double normalized = std::clamp(v / spec_.vref, 0.0, 1.0);
  return std::floor(normalized * full_scale_ + 0.5);
}

bool AdcModel::would_saturate(double photocurrent) const {
  return spec_.offset_v + spec_.gain * photocurrent >= spec_.vref;
}

}  // namespace airfinger::sensor
