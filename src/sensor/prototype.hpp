// Assembly of the paper's prototype: board geometry + ADC chain + 100 Hz
// sampling, bundled so higher layers create one object instead of wiring the
// optics and acquisition pieces by hand.
#pragma once

#include <memory>

#include "optics/scene.hpp"
#include "sensor/recorder.hpp"

namespace airfinger::sensor {

/// Configuration of a complete airFinger sensing prototype.
struct PrototypeSpec {
  optics::BoardLayout board{};
  AdcSpec adc{};
  double sample_rate_hz = 100.0;
  optics::AmbientConditions ambient{};
  FrontEndSpec front_end{};
};

/// The full sensing device: owns the Scene and exposes a Recorder over it.
class Prototype {
 public:
  explicit Prototype(const PrototypeSpec& spec = {});

  const optics::Scene& scene() const { return *scene_; }
  const PrototypeSpec& spec() const { return spec_; }
  double sample_rate_hz() const { return spec_.sample_rate_hz; }
  std::size_t pd_count() const { return scene_->pd_count(); }

  /// Replaces the ambient conditions (time-of-day sweeps).
  void set_ambient(const optics::AmbientConditions& cond);

  /// Records the given dynamic scene for duration_s seconds.
  MultiChannelTrace record(const SceneStateProvider& provider,
                           double duration_s, common::Rng& rng,
                           double start_time_s = 0.0) const;

  /// x-coordinate of photodiode i (used by the ZEBRA tracker's geometry).
  double pd_x(std::size_t i) const;

 private:
  PrototypeSpec spec_;
  std::unique_ptr<optics::Scene> scene_;  // stable address for the Recorder
  std::unique_ptr<Recorder> recorder_;
};

}  // namespace airfinger::sensor
