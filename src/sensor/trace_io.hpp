// Shared `.aftrace` recording (de)serialization.
//
// The line-oriented hex-float trace format was introduced by the golden
// regression suite (tests/golden/, DESIGN.md §12); this helper is the one
// implementation of it, used by the tests, by `af_inspect --stats` replay,
// and by anything else that needs to move recordings between processes.
// Numbers are written with printf "%a" so every double round-trips
// bit-exactly and diffs stay reviewable:
//
//   aftrace 1
//   channels <n>
//   sample_rate_hz <hex-float>
//   samples <m>
//   <hex-float> ... <hex-float>     (one line per frame, n values)
#pragma once

#include <iosfwd>
#include <string>

#include "sensor/trace.hpp"

namespace airfinger::sensor {

/// Renders the trace in the `aftrace 1` text format (bit-exact).
std::string serialize_trace(const MultiChannelTrace& trace);

/// Parses an `aftrace 1` stream; throws PreconditionError on a malformed
/// header, a bad number, or truncation.
MultiChannelTrace parse_trace(std::istream& is);

/// File wrappers (opened std::ios::binary so the hex-float text is
/// byte-identical across platforms). Throw PreconditionError on I/O error.
MultiChannelTrace load_trace_file(const std::string& path);
void save_trace_file(const std::string& path, const MultiChannelTrace& trace);

}  // namespace airfinger::sensor
