#include "sensor/prototype.hpp"

namespace airfinger::sensor {

Prototype::Prototype(const PrototypeSpec& spec) : spec_(spec) {
  scene_ = std::make_unique<optics::Scene>(optics::make_prototype_scene(
      spec.board, optics::AmbientModel(spec.ambient)));
  recorder_ = std::make_unique<Recorder>(*scene_, AdcModel(spec.adc),
                                         spec.sample_rate_hz,
                                         spec.front_end);
}

void Prototype::set_ambient(const optics::AmbientConditions& cond) {
  spec_.ambient = cond;
  scene_->set_ambient(optics::AmbientModel(cond));
}

MultiChannelTrace Prototype::record(const SceneStateProvider& provider,
                                    double duration_s, common::Rng& rng,
                                    double start_time_s) const {
  return recorder_->record(provider, duration_s, rng, start_time_s);
}

double Prototype::pd_x(std::size_t i) const {
  return optics::prototype_pd_x(spec_.board, i);
}

}  // namespace airfinger::sensor
