#include "sensor/recorder.hpp"

#include <cmath>

#include "common/error.hpp"

namespace airfinger::sensor {

Recorder::Recorder(const optics::Scene& scene, AdcModel adc,
                   double sample_rate_hz, FrontEndSpec front_end)
    : scene_(&scene), adc_(std::move(adc)), sample_rate_hz_(sample_rate_hz),
      front_end_(front_end) {
  AF_EXPECT(sample_rate_hz > 0.0, "sample rate must be positive");
  AF_EXPECT(front_end.ambient_rejection >= 0.0 &&
                front_end.ambient_rejection <= 1.0,
            "ambient rejection must lie in [0, 1]");
}

MultiChannelTrace Recorder::record(const SceneStateProvider& provider,
                                   double duration_s, common::Rng& rng,
                                   double start_time_s) const {
  AF_EXPECT(duration_s >= 0.0, "duration must be non-negative");
  AF_EXPECT(static_cast<bool>(provider), "scene state provider is required");

  const auto frames =
      static_cast<std::size_t>(std::llround(duration_s * sample_rate_hz_));
  MultiChannelTrace trace(scene_->pd_count(), sample_rate_hz_);
  std::vector<double> frame(scene_->pd_count());

  for (std::size_t i = 0; i < frames; ++i) {
    const double t =
        start_time_s + static_cast<double>(i) / sample_rate_hz_;
    const SceneState state = provider(t - start_time_s);
    std::vector<double> analog;
    if (front_end_.lock_in) {
      // Synchronous detection: only the LED-origin component (which
      // carries the modulation carrier) passes; ambient leaks at the
      // configured rejection ratio.
      const auto c =
          scene_->evaluate_components(state.patches, t, state.direct);
      analog.resize(c.emitted.size());
      for (std::size_t j = 0; j < analog.size(); ++j)
        analog[j] =
            c.emitted[j] + front_end_.ambient_rejection * c.ambient[j];
    } else {
      analog = scene_->evaluate(state.patches, t, state.direct);
    }
    for (std::size_t c = 0; c < analog.size(); ++c)
      frame[c] = adc_.convert(analog[c], rng);
    trace.push_frame(frame);
  }
  return trace;
}

}  // namespace airfinger::sensor
