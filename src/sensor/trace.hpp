// Multi-channel sampled signal container.
//
// A MultiChannelTrace holds the synchronously sampled output of all
// photodiode channels, in ADC counts, at a fixed sample rate (the paper's
// prototype samples at 100 Hz).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace airfinger::sensor {

/// Synchronously sampled multi-channel recording with value semantics.
class MultiChannelTrace {
 public:
  MultiChannelTrace() = default;

  /// Creates an empty trace with the given channel count and sample rate.
  /// Requires channels >= 1 and rate > 0.
  MultiChannelTrace(std::size_t channels, double sample_rate_hz);

  std::size_t channel_count() const { return channels_.size(); }
  double sample_rate_hz() const { return sample_rate_hz_; }

  /// Number of samples per channel (all channels stay equal length).
  std::size_t sample_count() const {
    return channels_.empty() ? 0 : channels_[0].size();
  }

  /// Trace duration in seconds.
  double duration_s() const {
    return sample_rate_hz_ > 0
               ? static_cast<double>(sample_count()) / sample_rate_hz_
               : 0.0;
  }

  /// Appends one synchronous frame (one sample per channel).
  void push_frame(std::span<const double> frame);

  /// Read-only view of one channel.
  std::span<const double> channel(std::size_t i) const;

  /// Mutable access (used by noise-injection tests).
  std::vector<double>& mutable_channel(std::size_t i);

  /// Sum of all channels, sample by sample (the paper's detect-aimed
  /// pipeline operates on aggregate reflected energy).
  std::vector<double> summed() const;

  /// Extracts the [begin, end) sample range of every channel as a new trace.
  MultiChannelTrace slice(std::size_t begin, std::size_t end) const;

  /// Appends all frames of `other` (same channel count and rate required).
  void append(const MultiChannelTrace& other);

 private:
  std::vector<std::vector<double>> channels_;
  double sample_rate_hz_ = 0.0;
};

}  // namespace airfinger::sensor
