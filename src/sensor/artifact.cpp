#include "sensor/artifact.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "dsp/fft.hpp"

namespace airfinger::sensor {

namespace {
constexpr double kTiny = 1e-12;

double clamp01(double x) { return x < 0.0 ? 0.0 : (x > 1.0 ? 1.0 : x); }

bool is_pow2(std::size_t n) { return n >= 1 && (n & (n - 1)) == 0; }
}  // namespace

double levinson_durbin(std::span<const double> r, std::span<double> a) {
  AF_EXPECT(r.size() >= 2, "levinson_durbin needs lags r[0..p] with p >= 1");
  AF_EXPECT(a.size() + 1 == r.size(),
            "levinson_durbin: a must hold r.size()-1 coefficients");
  const std::size_t p = a.size();
  std::fill(a.begin(), a.end(), 0.0);
  double err = r[0];
  if (!(err > 0.0) || !std::isfinite(err)) return 0.0;
  // In-place recursion: after step m, a[0..m-1] solve the order-m system.
  double prev[kMaxLpcOrder] = {};
  AF_EXPECT(p <= kMaxLpcOrder, "levinson_durbin order exceeds kMaxLpcOrder");
  for (std::size_t m = 0; m < p; ++m) {
    double acc = r[m + 1];
    for (std::size_t k = 0; k < m; ++k) acc -= a[k] * r[m - k];
    const double reflect = acc / err;
    for (std::size_t k = 0; k < m; ++k) prev[k] = a[k];
    a[m] = reflect;
    for (std::size_t k = 0; k < m; ++k)
      a[k] = prev[k] - reflect * prev[m - 1 - k];
    err *= (1.0 - reflect * reflect);
    if (!(err > 0.0) || !std::isfinite(err)) {
      // Degenerate (perfectly predictable or numerically blown) system.
      std::fill(a.begin(), a.end(), 0.0);
      return 0.0;
    }
  }
  return err;
}

ChannelArtifactDetector::ChannelArtifactDetector(ArtifactDetectorConfig config)
    : config_(config) {
  AF_EXPECT(config_.click_sigma > 0.0, "click_sigma must be positive");
  AF_EXPECT(config_.deriv_alpha > 0.0 && config_.deriv_alpha <= 1.0,
            "deriv_alpha must be in (0, 1]");
  AF_EXPECT(config_.sigma_floor > 0.0, "sigma_floor must be positive");
  AF_EXPECT(config_.lpc_order >= 1 && config_.lpc_order <= kMaxLpcOrder,
            "lpc_order must be in [1, kMaxLpcOrder]");
  AF_EXPECT(config_.lpc_alpha > 0.0 && config_.lpc_alpha <= 1.0,
            "lpc_alpha must be in (0, 1]");
  AF_EXPECT(config_.lpc_refresh >= 1, "lpc_refresh must be >= 1");
  AF_EXPECT(config_.lpc_sigma > 0.0, "lpc_sigma must be positive");
  AF_EXPECT(config_.kurtosis_window >= 8, "kurtosis_window must be >= 8");
  AF_EXPECT(config_.kurtosis_limit > 0.0, "kurtosis_limit must be positive");
  AF_EXPECT(is_pow2(config_.spectrum_window) && config_.spectrum_window >= 8,
            "spectrum_window must be a power of two >= 8");
  AF_EXPECT(config_.spectrum_hop >= 1, "spectrum_hop must be >= 1");
  AF_EXPECT(config_.flatness_floor > 0.0 && config_.flatness_floor < 1.0,
            "flatness_floor must be in (0, 1)");
  AF_EXPECT(config_.flicker_min_bin >= 1 &&
                config_.flicker_min_bin <= config_.spectrum_window / 2,
            "flicker_min_bin must be in [1, spectrum_window/2]");
  AF_EXPECT(config_.flicker_fraction > 0.0 && config_.flicker_fraction <= 1.0,
            "flicker_fraction must be in (0, 1]");
  AF_EXPECT(config_.baseline_alpha > 0.0 && config_.baseline_alpha <= 1.0,
            "baseline_alpha must be in (0, 1]");
  AF_EXPECT(config_.drift_velocity > 0.0, "drift_velocity must be positive");

  kurt_ring_.assign(config_.kurtosis_window, 0.0);
  kurt_resum_countdown_ = config_.kurtosis_window;
  spec_ring_.assign(config_.spectrum_window, 0.0);
  hop_countdown_ = config_.spectrum_hop;
  fft_scratch_.assign(config_.spectrum_window, {});
  hann_.resize(config_.spectrum_window);
  const double n1 = static_cast<double>(config_.spectrum_window - 1);
  for (std::size_t i = 0; i < config_.spectrum_window; ++i)
    hann_[i] =
        0.5 * (1.0 - std::cos(2.0 * M_PI * static_cast<double>(i) / n1));
}

double ChannelArtifactDetector::deriv_sigma() const {
  const double var = deriv_m2_ - deriv_mean_ * deriv_mean_;
  return std::max(var > 0.0 ? std::sqrt(var) : 0.0, config_.sigma_floor);
}

double ChannelArtifactDetector::click_threshold() const {
  return deriv_mean_ + config_.click_sigma * deriv_sigma();
}

double ChannelArtifactDetector::click_z(double x) const {
  if (!warmed_up() || samples_ == 0) return 0.0;
  const double d = std::abs(x - last_);
  return (d - deriv_mean_) / deriv_sigma();
}

double ChannelArtifactDetector::residual_rms() const {
  return std::max(residual_ms_ > 0.0 ? std::sqrt(residual_ms_) : 0.0,
                  config_.sigma_floor);
}

void ChannelArtifactDetector::refresh_lpc() {
  levinson_durbin({lpc_r_, config_.lpc_order + 1}, {lpc_a_, config_.lpc_order});
}

void ChannelArtifactDetector::refresh_kurtosis_exact() {
  // Full-ring recompute of the raw power sums: O(W) every W samples, so the
  // amortized cost stays O(1) while incremental add/subtract rounding can
  // never accumulate across long streams.
  kurt_s1_ = kurt_s2_ = kurt_s3_ = kurt_s4_ = 0.0;
  for (std::size_t i = 0; i < kurt_fill_; ++i) {
    const double v = kurt_ring_[i];
    const double v2 = v * v;
    kurt_s1_ += v;
    kurt_s2_ += v2;
    kurt_s3_ += v2 * v;
    kurt_s4_ += v2 * v2;
  }
}

void ChannelArtifactDetector::refresh_spectrum() {
  const std::size_t w = config_.spectrum_window;
  // Unroll the ring oldest-first, remove the window mean (the slow DC level
  // is legitimate signal), and apply the Hann taper.
  double mean = 0.0;
  for (double v : spec_ring_) mean += v;
  mean /= static_cast<double>(w);
  for (std::size_t i = 0; i < w; ++i) {
    const double v = spec_ring_[(spec_head_ + i) % w] - mean;
    fft_scratch_[i] = {v * hann_[i], 0.0};
  }
  dsp::fft_inplace(std::span<std::complex<double>>(fft_scratch_));
  // Geometric vs arithmetic mean of the one-sided power spectrum, DC bin
  // excluded (the mean removal above already zeroed most of it).
  double log_sum = 0.0;
  double sum = 0.0;
  double peak = 0.0;
  std::size_t peak_bin = 0;
  const std::size_t half = w / 2;
  for (std::size_t k = 1; k <= half; ++k) {
    const double p = std::norm(fft_scratch_[k]);
    log_sum += std::log(p + kTiny);
    sum += p;
    if (k >= config_.flicker_min_bin && p > peak) {
      peak = p;
      peak_bin = k;
    }
  }
  const double count = static_cast<double>(half);
  flatness_ = sum <= kTiny
                  ? 1.0
                  : std::exp(log_sum / count) / (sum / count + kTiny);
  flatness_ = clamp01(flatness_);
  dominant_bin_ = peak_bin;
  dominant_fraction_ = sum <= kTiny ? 0.0 : peak / sum;
}

ArtifactScores ChannelArtifactDetector::accept(double x) {
  ArtifactScores s;
  const bool warmed = warmed_up();

  if (samples_ == 0) {
    baseline_ = x;
  } else {
    // Derivative statistics: score the sample against the pre-update state
    // (a spike must not raise the bar it is judged by), then adapt.
    const double d = std::abs(x - last_);
    if (warmed) s.click = clamp01((d - deriv_mean_) / deriv_sigma() /
                                  config_.click_sigma);
    if (samples_ == 1) {
      deriv_mean_ = d;
      deriv_m2_ = d * d;
    } else {
      deriv_mean_ += config_.deriv_alpha * (d - deriv_mean_);
      deriv_m2_ += config_.deriv_alpha * (d * d - deriv_m2_);
    }
    // Slow baseline + velocity (the direct drift measure).
    const double prev_baseline = baseline_;
    baseline_ += config_.baseline_alpha * (x - baseline_);
    baseline_velocity_ += config_.baseline_alpha *
                          ((baseline_ - prev_baseline) - baseline_velocity_);
    if (warmed)
      s.drift = clamp01(std::abs(baseline_velocity_) / config_.drift_velocity);
  }

  // Streaming LPC over the baseline-removed signal: update the EWMA lags
  // from the sample and its short history, score the prediction residual,
  // and re-solve the coefficients every lpc_refresh samples.
  const double y = x - baseline_;
  const std::size_t p = config_.lpc_order;
  if (samples_ >= p) {
    for (std::size_t k = 0; k <= p; ++k) {
      const double prod = y * (k == 0 ? y : lpc_hist_[k - 1]);
      lpc_r_[k] += config_.lpc_alpha * (prod - lpc_r_[k]);
    }
    double pred = 0.0;
    for (std::size_t k = 0; k < p; ++k) pred += lpc_a_[k] * lpc_hist_[k];
    const double e = y - pred;
    if (warmed) s.residual = clamp01(std::abs(e) / residual_rms() /
                                     config_.lpc_sigma);
    // Winsorized residual-power update: a single adversarial spike must not
    // blow up the scale every later sample is judged by.
    const double cap = 64.0 * residual_rms();
    const double e_clamped = std::min(std::abs(e), cap);
    residual_ms_ += config_.lpc_alpha * (e_clamped * e_clamped - residual_ms_);
    if (--lpc_countdown_ == 0) {
      lpc_countdown_ = config_.lpc_refresh;
      refresh_lpc();
    }
  }
  // Shift the short history (hist_[0] = newest).
  for (std::size_t k = p; k-- > 1;) lpc_hist_[k] = lpc_hist_[k - 1];
  if (p >= 1) lpc_hist_[0] = y;

  // Windowed excess kurtosis over the baseline-removed signal.
  {
    const std::size_t w = config_.kurtosis_window;
    const double old = kurt_ring_[kurt_head_];
    kurt_ring_[kurt_head_] = y;
    kurt_head_ = (kurt_head_ + 1) % w;
    if (kurt_fill_ < w) {
      kurt_fill_ += 1;
      const double v2 = y * y;
      kurt_s1_ += y;
      kurt_s2_ += v2;
      kurt_s3_ += v2 * y;
      kurt_s4_ += v2 * v2;
    } else {
      const double o2 = old * old;
      const double v2 = y * y;
      kurt_s1_ += y - old;
      kurt_s2_ += v2 - o2;
      kurt_s3_ += v2 * y - o2 * old;
      kurt_s4_ += v2 * v2 - o2 * o2;
    }
    if (--kurt_resum_countdown_ == 0) {
      kurt_resum_countdown_ = w;
      refresh_kurtosis_exact();
    }
    if (kurt_fill_ == w) {
      const double n = static_cast<double>(w);
      const double mean = kurt_s1_ / n;
      const double m2 = kurt_s2_ / n - mean * mean;
      if (m2 > kTiny) {
        const double m4 = kurt_s4_ / n - 4.0 * mean * (kurt_s3_ / n) +
                          6.0 * mean * mean * (kurt_s2_ / n) -
                          3.0 * mean * mean * mean * mean;
        kurtosis_ = m4 / (m2 * m2) - 3.0;
      } else {
        kurtosis_ = 0.0;
      }
    }
    if (warmed && kurt_fill_ == w)
      s.kurtosis = kurtosis_ > 0.0
                       ? clamp01(kurtosis_ / config_.kurtosis_limit)
                       : 0.0;
  }

  // Spectral window: push and evaluate every spectrum_hop samples once the
  // ring has filled. Scores hold their last value between hops.
  {
    const std::size_t w = config_.spectrum_window;
    spec_ring_[spec_head_] = x;
    spec_head_ = (spec_head_ + 1) % w;
    if (spec_fill_ < w) spec_fill_ += 1;
    if (--hop_countdown_ == 0) {
      hop_countdown_ = config_.spectrum_hop;
      if (spec_fill_ == w) refresh_spectrum();
    }
  }
  if (warmed && spec_fill_ == config_.spectrum_window) {
    // Grades from 0 at the floor to 1 at half the floor, so confidence
    // saturates for any decisively tonal window instead of only at the
    // unreachable flatness == 0.
    s.tonal = clamp01(2.0 * (config_.flatness_floor - flatness_) /
                      config_.flatness_floor);
    if (s.tonal > 0.0 && dominant_bin_ >= config_.flicker_min_bin)
      s.flicker = clamp01(dominant_fraction_ / config_.flicker_fraction);
  }

  last_ = x;
  ++samples_;
  return s;
}

void ChannelArtifactDetector::reset() {
  samples_ = 0;
  last_ = 0.0;
  deriv_mean_ = 0.0;
  deriv_m2_ = 0.0;
  baseline_ = 0.0;
  baseline_velocity_ = 0.0;
  std::fill(std::begin(lpc_r_), std::end(lpc_r_), 0.0);
  std::fill(std::begin(lpc_a_), std::end(lpc_a_), 0.0);
  std::fill(std::begin(lpc_hist_), std::end(lpc_hist_), 0.0);
  residual_ms_ = 0.0;
  lpc_countdown_ = 1;
  std::fill(kurt_ring_.begin(), kurt_ring_.end(), 0.0);
  kurt_head_ = 0;
  kurt_fill_ = 0;
  kurt_resum_countdown_ = config_.kurtosis_window;
  kurt_s1_ = kurt_s2_ = kurt_s3_ = kurt_s4_ = 0.0;
  kurtosis_ = 0.0;
  std::fill(spec_ring_.begin(), spec_ring_.end(), 0.0);
  spec_head_ = 0;
  spec_fill_ = 0;
  hop_countdown_ = config_.spectrum_hop;
  flatness_ = 1.0;
  dominant_bin_ = 0;
  dominant_fraction_ = 0.0;
}

}  // namespace airfinger::sensor
