#include "core/timing_cache.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "dsp/filters.hpp"

namespace airfinger::core {

void OpenSegmentTiming::configure(std::size_t channels,
                                  double sample_rate_hz,
                                  const TimingConfig& config) {
  AF_EXPECT(channels >= 2, "timing cache requires >= 2 channels");
  AF_EXPECT(channels <= kMaxTimingChannels,
            "timing cache supports at most kMaxTimingChannels");
  AF_EXPECT(sample_rate_hz > 0.0, "sample rate must be positive");
  const AscendingConfig& asc = config.ascending;
  AF_EXPECT(asc.rise_fraction > 0.0 && asc.rise_fraction < 1.0,
            "rise fraction must lie in (0,1)");
  AF_EXPECT(asc.floor_quantile >= 0.0 && asc.floor_quantile < 1.0,
            "floor quantile must lie in [0,1)");
  AF_EXPECT(asc.confirm_samples >= 1, "confirm_samples must be >= 1");
  AF_EXPECT(asc.silence_fraction >= 0.0 && asc.silence_fraction < 1.0,
            "silence fraction must lie in [0,1)");

  channel_count_ = channels;
  sample_rate_hz_ = sample_rate_hz;
  config_ = config;
  env_smooth_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::lround(config.envelope_smooth_s * sample_rate_hz)));
  a_smooth_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::lround(config.asymmetry_smooth_s * sample_rate_hz)));
  channels_.resize(channel_count_);
  begin_segment();
}

void OpenSegmentTiming::begin_segment() {
  n_ = 0;
  for (auto& ch : channels_) {
    ch.peak = 0.0;
    ch.energy = 0.0;
    ch.weighted = 0.0;
    ch.sorted.clear();
    ch.smooth.clear();
  }
  envelope_raw_.clear();
  envelope_.clear();
  esum_.clear();
}

void OpenSegmentTiming::append(std::span<const double> deltas) {
  AF_EXPECT(configured(), "timing cache must be configured before use");
  AF_EXPECT(deltas.size() == channel_count_,
            "frame arity must match the configured channel count");
  double summed = 0.0;
  for (std::size_t c = 0; c < channel_count_; ++c) {
    const double v = deltas[c];
    Channel& ch = channels_[c];
    ch.peak = std::max(ch.peak, v);
    ch.energy += v;
    ch.weighted += static_cast<double>(n_) * v;
    ch.sorted.insert(
        std::upper_bound(ch.sorted.begin(), ch.sorted.end(), v), v);
    summed += v;
  }
  envelope_raw_.push_back(summed);
  ++n_;
}

void OpenSegmentTiming::advance_moving_average(std::span<const double> x,
                                               std::size_t w,
                                               std::vector<double>& out) {
  // An entry i of moving_average(x, w) reads x[max(0, i-half) .. i+half];
  // at a previous length m it was final iff i + half + 1 <= m. Recompute
  // only the trailing entries the grow invalidated, through the same
  // AF_SIMD moving_average_range kernel moving_average_into uses, so each
  // revised entry is bit-identical to a full pass.
  const std::size_t half = w / 2;
  const std::size_t m = out.size();
  const std::size_t revise = m > half ? m - half : 0;
  out.resize(x.size());
  dsp::moving_average_range_into(x, w, revise, out);
}

SegmentTiming OpenSegmentTiming::timing(
    std::span<const std::span<const double>> windows,
    common::ScratchArena& arena) {
  AF_EXPECT(configured(), "timing cache must be configured before use");
  AF_EXPECT(windows.size() == channel_count_,
            "window arity must match the configured channel count");
  for (const auto& w : windows)
    AF_EXPECT(w.size() == n_,
              "windows must cover exactly the appended samples");

  // Advance the lazy moving-average caches to the current length, then
  // rebuild the invalidated tail of the summed smoothed energy.
  const std::size_t prev = channels_.front().smooth.size();
  for (std::size_t c = 0; c < channel_count_; ++c)
    advance_moving_average(windows[c], a_smooth_, channels_[c].smooth);
  advance_moving_average(envelope_raw_, env_smooth_, envelope_);
  const std::size_t half_a = a_smooth_ / 2;
  const std::size_t revise = prev > half_a ? prev - half_a : 0;
  esum_.resize(n_);
  for (std::size_t i = revise; i < n_; ++i) {
    double s = 0.0;
    for (const auto& ch : channels_) s += ch.smooth[i];
    esum_[i] = s;
  }

  SegmentTiming out;
  out.active.resize(channel_count_, false);
  out.tau_s.resize(channel_count_, 0.0);

  double strongest = 0.0;
  for (const auto& ch : channels_)
    strongest = std::max(strongest, ch.peak);
  const double silence_level = strongest * config_.ascending.silence_fraction;

  for (std::size_t c = 0; c < channel_count_; ++c) {
    const Channel& ch = channels_[c];
    if (windows[c].empty() || ch.peak <= silence_level || ch.peak <= 0.0)
      continue;
    const double floor =
        common::quantile_sorted(ch.sorted, config_.ascending.floor_quantile);
    const auto onset = detail::ascending_onset(windows[c], ch.peak, floor,
                                               config_.ascending);
    out.active[c] = onset.has_value();
    if (!out.active[c]) continue;
    if (out.first_active < 0) out.first_active = static_cast<int>(c);
    out.last_active = static_cast<int>(c);
    out.tau_s[c] = ch.energy > 0.0
                       ? (ch.weighted / ch.energy) / sample_rate_hz_
                       : 0.0;
  }

  if (out.first_active >= 0 && out.last_active > out.first_active) {
    out.dt_outer_s =
        out.tau_s[static_cast<std::size_t>(out.last_active)] -
        out.tau_s[static_cast<std::size_t>(out.first_active)];
  }

  if (n_ > 0)
    detail::envelope_stats(envelope_, sample_rate_hz_, config_, out);
  if (n_ >= 8)
    detail::asymmetry_stats(channels_.front().smooth,
                            channels_.back().smooth, esum_, sample_rate_hz_,
                            config_, arena, out);
  return out;
}

}  // namespace airfinger::core
