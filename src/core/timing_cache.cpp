#include "core/timing_cache.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>

#include "common/error.hpp"
#include "common/simd.hpp"
#include "common/stats.hpp"
#include "dsp/filters.hpp"

namespace airfinger::core {

namespace {

/// Bitwise equality — the change detector's notion of "same value". Value
/// equality would identify -0.0 with 0.0 and never identify NaN with
/// itself; bit equality is exactly "every downstream fold reproduces its
/// bits".
inline bool same_bits(double x, double y) {
  return std::bit_cast<std::uint64_t>(x) == std::bit_cast<std::uint64_t>(y);
}

}  // namespace

void OpenSegmentTiming::configure(std::size_t channels,
                                  double sample_rate_hz,
                                  const TimingConfig& config) {
  AF_EXPECT(channels >= 2, "timing cache requires >= 2 channels");
  AF_EXPECT(channels <= kMaxTimingChannels,
            "timing cache supports at most kMaxTimingChannels");
  AF_EXPECT(sample_rate_hz > 0.0, "sample rate must be positive");
  const AscendingConfig& asc = config.ascending;
  AF_EXPECT(asc.rise_fraction > 0.0 && asc.rise_fraction < 1.0,
            "rise fraction must lie in (0,1)");
  AF_EXPECT(asc.floor_quantile >= 0.0 && asc.floor_quantile < 1.0,
            "floor quantile must lie in [0,1)");
  AF_EXPECT(asc.confirm_samples >= 1, "confirm_samples must be >= 1");
  AF_EXPECT(asc.silence_fraction >= 0.0 && asc.silence_fraction < 1.0,
            "silence fraction must lie in [0,1)");

  channel_count_ = channels;
  sample_rate_hz_ = sample_rate_hz;
  config_ = config;
  env_smooth_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::lround(config.envelope_smooth_s * sample_rate_hz)));
  a_smooth_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::lround(config.asymmetry_smooth_s * sample_rate_hz)));
  peak_support_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::lround(config.peak_support_s * sample_rate_hz)));
  channels_.resize(channel_count_);
  begin_segment();
}

void OpenSegmentTiming::begin_segment() {
  n_ = 0;
  for (auto& ch : channels_) {
    ch.peak = 0.0;
    ch.energy = 0.0;
    ch.weighted = 0.0;
    ch.sorted.clear();
    ch.smooth.clear();
    ch.rise_level = 0.0;
    ch.rise_valid = false;
    ch.onset_found = false;
    ch.scanned = 0;
    ch.run = 0;
    ch.active = false;
  }
  envelope_raw_.clear();
  envelope_.clear();
  esum_.clear();
  a_.clear();
  w_.clear();
  aw_frontier_ = 0;
  esum_peak_ckpt_ = 0.0;
  total_w_ckpt_ = 0.0;
  max_w_ckpt_ = 0.0;
  last_esum_peak_ = 0.0;
  have_esum_peak_ = false;
  asym_start_ = asym_end_ = asym_delta_ = 0.0;
  asym_transition_s_ = asym_range_ = 0.0;
  asym_reversals_ = 0;
  have_refresh_ = false;
  last_refresh_n_ = 0;
  last_changed_ = true;
  probe_no_emit_ = false;
  env_frontier_ = 0;
  env_peak_ckpt_ = 0.0;
  last_env_level_ = 0.0;
  have_env_level_ = false;
  env_icut_ = peak_support_;
  env_count_prefix_ = 0;
  env_stats_n_ = 0;
  env_peaks_memo_ = 0;
  have_env_stats_ = false;
}

void OpenSegmentTiming::append(std::span<const double> deltas) {
  AF_EXPECT(configured(), "timing cache must be configured before use");
  AF_EXPECT(deltas.size() == channel_count_,
            "frame arity must match the configured channel count");
  double summed = 0.0;
  for (std::size_t c = 0; c < channel_count_; ++c) {
    const double v = deltas[c];
    Channel& ch = channels_[c];
    ch.peak = std::max(ch.peak, v);
    ch.energy += v;
    ch.weighted += static_cast<double>(n_) * v;
    ch.sorted.insert(
        std::upper_bound(ch.sorted.begin(), ch.sorted.end(), v), v);
    summed += v;
  }
  envelope_raw_.push_back(summed);
  ++n_;
}

void OpenSegmentTiming::advance_moving_average(std::span<const double> x,
                                               std::size_t w,
                                               std::vector<double>& out) {
  // An entry i of moving_average(x, w) reads x[max(0, i-half) .. i+half];
  // at a previous length m it was final iff i + half + 1 <= m. Recompute
  // only the trailing entries the grow invalidated, through the same
  // AF_SIMD moving_average_range kernel moving_average_into uses, so each
  // revised entry is bit-identical to a full pass.
  const std::size_t half = w / 2;
  const std::size_t m = out.size();
  const std::size_t revise = m > half ? m - half : 0;
  out.resize(x.size());
  dsp::moving_average_range_into(x, w, revise, out);
}

bool OpenSegmentTiming::refresh(
    std::span<const std::span<const double>> windows) {
  AF_EXPECT(configured(), "timing cache must be configured before use");
  AF_EXPECT(windows.size() == channel_count_,
            "window arity must match the configured channel count");
  for (const auto& w : windows)
    AF_EXPECT(w.size() == n_,
              "windows must cover exactly the appended samples");
  // Grow-only window: at an unchanged length the whole pass below is
  // idempotent, so re-entry (the probe refreshes, then timing() refreshes
  // again on the same frame) returns the memoized verdict.
  if (have_refresh_ && last_refresh_n_ == n_) return last_changed_;

  // Entering (or leaving, which cannot happen under grow-only) the n >= 8
  // regime switches the asymmetry analysis on — decision-relevant.
  bool changed = !have_refresh_ || (n_ >= 8) != (last_refresh_n_ >= 8);

  // Advance the lazy moving-average caches lane by lane — each channel
  // tail goes through the AF_SIMD moving_average_range kernel back to
  // back — then rebuild the invalidated tail of the summed smoothed
  // energy with the accumulate kernel (same channel-order additions as
  // the batch path's esum build).
  const std::size_t prev = channels_.front().smooth.size();
  for (std::size_t c = 0; c < channel_count_; ++c)
    advance_moving_average(windows[c], a_smooth_, channels_[c].smooth);
  const std::size_t half_a = a_smooth_ / 2;
  const std::size_t revise = prev > half_a ? prev - half_a : 0;
  esum_.resize(n_);
  std::fill(esum_.begin() + static_cast<std::ptrdiff_t>(revise), esum_.end(),
            0.0);
  for (std::size_t c = 0; c < channel_count_; ++c)
    simd::kernels().accumulate(esum_.data() + revise,
                               channels_[c].smooth.data() + revise,
                               n_ - revise);

  // ---- active-channel set via memoized ascending-point scans ----------
  double strongest = 0.0;
  for (const auto& ch : channels_)
    strongest = std::max(strongest, ch.peak);
  const double silence_level = strongest * config_.ascending.silence_fraction;

  for (std::size_t c = 0; c < channel_count_; ++c) {
    Channel& ch = channels_[c];
    bool active = false;
    if (!(windows[c].empty() || ch.peak <= silence_level ||
          ch.peak <= 0.0)) {
      const double floor = common::quantile_sorted(
          ch.sorted, config_.ascending.floor_quantile);
      const double rise =
          floor + config_.ascending.rise_fraction * (ch.peak - floor);
      if (!(ch.rise_valid && same_bits(rise, ch.rise_level))) {
        ch.rise_valid = true;
        ch.rise_level = rise;
        ch.onset_found = false;
        ch.scanned = 0;
        ch.run = 0;
      }
      // detail::ascending_onset()'s scan, resumable: the raw window is
      // grow-only and the scan stops at the *first* confirmed run, so
      // while the rise level keeps its bits a found onset is final and
      // an unfinished scan continues from where it stopped.
      if (!ch.onset_found) {
        const auto& w = windows[c];
        std::size_t run = ch.run;
        std::size_t i = ch.scanned;
        for (; i < w.size(); ++i) {
          run = (w[i] >= ch.rise_level) ? run + 1 : 0;
          if (run >= config_.ascending.confirm_samples) {
            ch.onset_found = true;
            ++i;
            break;
          }
        }
        ch.scanned = i;
        ch.run = run;
      }
      active = ch.onset_found;
    }
    if (active != ch.active) changed = true;
    ch.active = active;
  }

  // ---- asymmetry path tail + change detection -------------------------
  // Summed-energy peak: resume the max fold from the finalized-frontier
  // checkpoint (entries left of the frontier can never be revised again).
  const std::size_t frontier = n_ > half_a ? n_ - half_a : 0;
  double m = esum_peak_ckpt_;
  for (std::size_t i = aw_frontier_; i < frontier; ++i)
    if (esum_[i] > m) m = esum_[i];
  const double peak_ckpt = m;
  for (std::size_t i = frontier; i < n_; ++i)
    if (esum_[i] > m) m = esum_[i];
  const double esum_peak = m;

  // ε and the energy gate derive from esum_peak: if its bits moved, every
  // stored a/w entry was computed against stale globals — rebuild all.
  const bool rebuild =
      !have_esum_peak_ || !same_bits(esum_peak, last_esum_peak_);
  const double eps =
      std::max(esum_peak * config_.epsilon_fraction, 1e-12);
  const double energy_gate = esum_peak * config_.energy_gate_fraction;
  const std::size_t old_size = a_.size();
  const std::size_t from = rebuild ? 0 : revise;
  if (rebuild) changed = true;
  a_.resize(n_);
  w_.resize(n_);
  const std::span<const double> e1{channels_.front().smooth};
  const std::span<const double> e3{channels_.back().smooth};
  const std::span<const double> esum{esum_};
  for (std::size_t i = from; i < n_; ++i) {
    const double na = (e3[i] - e1[i]) / (esum[i] + eps);
    const double nw = esum[i] > energy_gate ? std::fabs(e3[i] - e1[i]) : 0.0;
    if (!changed) {
      // A revised or appended sample moves the router's asymmetry
      // statistics only if it carries weight the folds can see: a
      // zero-weight sample is an exact no-op on every fold, whatever its
      // a value.
      if (i >= old_size) {
        if (nw != 0.0) changed = true;
      } else if (!same_bits(nw, w_[i]) ||
                 (nw != 0.0 && !same_bits(na, a_[i]))) {
        changed = true;
      }
    }
    a_[i] = na;
    w_[i] = nw;
  }

  // Advance the weight-fold checkpoints to the new frontier. The entries
  // folded in are final, and the two-step fold (prefix state, then live
  // tail) performs the same ascending additions/comparisons as a full
  // left-to-right pass — bit-identical by construction.
  double total_w = 0.0, max_w = 0.0;
  if (rebuild) {
    double tw = 0.0, mw = 0.0;
    for (std::size_t i = 0; i < frontier; ++i) {
      tw += w_[i];
      if (w_[i] > mw) mw = w_[i];
    }
    total_w_ckpt_ = tw;
    max_w_ckpt_ = mw;
  } else {
    for (std::size_t i = aw_frontier_; i < frontier; ++i) {
      total_w_ckpt_ += w_[i];
      if (w_[i] > max_w_ckpt_) max_w_ckpt_ = w_[i];
    }
  }
  total_w = total_w_ckpt_;
  max_w = max_w_ckpt_;
  for (std::size_t i = frontier; i < n_; ++i) {
    total_w += w_[i];
    if (w_[i] > max_w) max_w = w_[i];
  }
  aw_frontier_ = frontier;
  esum_peak_ckpt_ = peak_ckpt;
  last_esum_peak_ = esum_peak;
  have_esum_peak_ = true;

  // Re-derive the asymmetry outputs only when an input bit moved; on
  // quiescent frames (the decay tail of every gesture, where appended
  // samples fall below the energy gate) the cached figures are provably
  // the ones a full recomputation would produce.
  if (changed) {
    asym_start_ = asym_end_ = asym_delta_ = 0.0;
    asym_transition_s_ = asym_range_ = 0.0;
    asym_reversals_ = 0;
    if (n_ >= 8) {
      SegmentTiming folds;
      detail::asymmetry_folds(a_, w_, total_w, max_w, sample_rate_hz_,
                              config_, folds);
      asym_start_ = folds.asymmetry_start;
      asym_end_ = folds.asymmetry_end;
      asym_delta_ = folds.asymmetry_delta;
      asym_transition_s_ = folds.transition_s;
      asym_range_ = folds.asymmetry_range;
      asym_reversals_ = folds.asymmetry_reversals;
    }
  }

  have_refresh_ = true;
  last_refresh_n_ = n_;
  last_changed_ = changed;
  return changed;
}

void OpenSegmentTiming::envelope_stats_incremental(SegmentTiming& out) {
  if (have_env_stats_ && env_stats_n_ == n_) {
    out.envelope_peaks = env_peaks_memo_;
    return;
  }
  advance_moving_average(envelope_raw_, env_smooth_, envelope_);
  const std::size_t half_env = env_smooth_ / 2;
  const std::size_t frontier = n_ > half_env ? n_ - half_env : 0;

  // Envelope peak: resume the max fold from the finalized frontier.
  double m = env_peak_ckpt_;
  for (std::size_t i = env_frontier_; i < frontier; ++i)
    if (envelope_[i] > m) m = envelope_[i];
  env_peak_ckpt_ = m;
  double peak = m;
  for (std::size_t i = frontier; i < n_; ++i)
    if (envelope_[i] > peak) peak = envelope_[i];
  env_frontier_ = frontier;

  const double level = peak * config_.peak_level;
  const std::size_t support = peak_support_;
  const auto& k = simd::kernels();

  // A peak decision at index i reads envelope[i ± support]; it is frozen
  // once that whole neighbourhood lies left of the frontier. `icut` is
  // the exclusive end of the frozen-decision region.
  const std::size_t icut =
      frontier > 2 * support ? frontier - support : support;
  if (!(have_env_level_ && same_bits(level, last_env_level_))) {
    // The comparison level moved: every frozen decision is stale. Recount
    // the frozen prefix in one kernel pass (slice counts are exact — each
    // per-index decision reads only its own ±support neighbourhood).
    env_count_prefix_ = k.count_peaks_at_least(
        envelope_.data(), std::min(n_, icut + support), support, level);
    env_icut_ = icut;
    have_env_level_ = true;
    last_env_level_ = level;
  } else if (icut > env_icut_) {
    // Freeze the decisions that became final since the last count.
    env_count_prefix_ += k.count_peaks_at_least(
        envelope_.data() + (env_icut_ - support),
        (icut + support) - (env_icut_ - support), support, level);
    env_icut_ = icut;
  }
  // Live tail: decisions in [env_icut_, n - support) may still change.
  std::size_t count = env_count_prefix_;
  count += k.count_peaks_at_least(envelope_.data() + (env_icut_ - support),
                                  n_ - (env_icut_ - support), support, level);
  // A monotone-edged single hump can have its maximum at the window edge
  // where find_peaks cannot see it; count at least one hump when any
  // energy is present (mirrors detail::envelope_stats).
  out.envelope_peaks = std::max<std::size_t>(count, peak > 0.0 ? 1 : 0);
  env_peaks_memo_ = out.envelope_peaks;
  env_stats_n_ = n_;
  have_env_stats_ = true;
}

SegmentTiming OpenSegmentTiming::timing(
    std::span<const std::span<const double>> windows,
    common::ScratchArena& arena) {
  (void)arena;  // Scratch now lives in the cache; kept for API stability.
  refresh(windows);

  SegmentTiming out;
  out.active.resize(channel_count_, false);
  out.tau_s.resize(channel_count_, 0.0);
  for (std::size_t c = 0; c < channel_count_; ++c) {
    const Channel& ch = channels_[c];
    out.active[c] = ch.active;
    if (!ch.active) continue;
    if (out.first_active < 0) out.first_active = static_cast<int>(c);
    out.last_active = static_cast<int>(c);
    out.tau_s[c] = ch.energy > 0.0
                       ? (ch.weighted / ch.energy) / sample_rate_hz_
                       : 0.0;
  }
  if (out.first_active >= 0 && out.last_active > out.first_active) {
    out.dt_outer_s =
        out.tau_s[static_cast<std::size_t>(out.last_active)] -
        out.tau_s[static_cast<std::size_t>(out.first_active)];
  }

  if (n_ > 0) envelope_stats_incremental(out);
  if (n_ >= 8) {
    out.asymmetry_start = asym_start_;
    out.asymmetry_end = asym_end_;
    out.asymmetry_delta = asym_delta_;
    out.transition_s = asym_transition_s_;
    out.asymmetry_range = asym_range_;
    out.asymmetry_reversals = asym_reversals_;
  }
  return out;
}

}  // namespace airfinger::core
