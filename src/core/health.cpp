#include "core/health.hpp"

namespace airfinger::core {

const char* artifact_class_name(ArtifactClass cls) {
  switch (cls) {
    case ArtifactClass::kImpulse: return "impulse";
    case ArtifactClass::kCrackle: return "crackle";
    case ArtifactClass::kStep: return "step";
    case ArtifactClass::kDrift: return "drift";
    case ArtifactClass::kFlicker: return "flicker";
  }
  return "unknown";
}

}  // namespace airfinger::core
