#include "core/ascending.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/reduce.hpp"
#include "common/simd.hpp"
#include "common/stats.hpp"
#include "dsp/filters.hpp"
#include "dsp/xcorr.hpp"

namespace airfinger::core {

AscendingPoints find_ascending_points(
    std::span<const std::span<const double>> windows,
    const AscendingConfig& config, common::ScratchArena& arena) {
  AF_EXPECT(!windows.empty(), "ascending detection requires channels");
  AF_EXPECT(windows.size() <= kMaxTimingChannels,
            "ascending detection supports at most kMaxTimingChannels");
  AF_EXPECT(config.rise_fraction > 0.0 && config.rise_fraction < 1.0,
            "rise fraction must lie in (0,1)");
  AF_EXPECT(config.floor_quantile >= 0.0 && config.floor_quantile < 1.0,
            "floor quantile must lie in [0,1)");
  AF_EXPECT(config.confirm_samples >= 1, "confirm_samples must be >= 1");
  AF_EXPECT(config.silence_fraction >= 0.0 && config.silence_fraction < 1.0,
            "silence fraction must lie in [0,1)");

  AscendingPoints out;
  out.ascending.resize(windows.size());
  out.peaks.resize(windows.size(), 0.0);

  double strongest = 0.0;
  for (std::size_t c = 0; c < windows.size(); ++c) {
    out.peaks[c] = common::reduce::max_with(windows[c], 0.0);
    strongest = std::max(strongest, out.peaks[c]);
  }
  const double silence_level = strongest * config.silence_fraction;

  std::size_t longest = 0;
  for (const auto& w : windows) longest = std::max(longest, w.size());
  const auto scratch_frame = arena.frame();
  const std::span<double> sort_scratch = arena.alloc<double>(longest);

  for (std::size_t c = 0; c < windows.size(); ++c) {
    const auto& w = windows[c];
    if (w.empty() || out.peaks[c] <= silence_level || out.peaks[c] <= 0.0)
      continue;
    const double floor =
        common::quantile_with(w, config.floor_quantile, sort_scratch);
    out.ascending[c] = detail::ascending_onset(w, out.peaks[c], floor, config);
  }
  return out;
}

std::optional<std::size_t> detail::ascending_onset(
    std::span<const double> w, double peak, double floor,
    const AscendingConfig& config) {
  const double rise_level = floor + config.rise_fraction * (peak - floor);
  std::size_t run = 0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    run = (w[i] >= rise_level) ? run + 1 : 0;
    if (run >= config.confirm_samples)
      return i + 1 - run;  // onset = first sample of the run
  }
  return std::nullopt;
}

AscendingPoints find_ascending_points(
    std::span<const std::span<const double>> windows,
    const AscendingConfig& config) {
  common::ScratchArena arena;
  return find_ascending_points(windows, config, arena);
}

dsp::Segment pad_segment(const dsp::Segment& segment, std::size_t limit,
                         double pad_s, double sample_rate_hz) {
  AF_EXPECT(sample_rate_hz > 0.0, "sample rate must be positive");
  const auto pad = static_cast<std::size_t>(
      std::lround(std::max(pad_s, 0.0) * sample_rate_hz));
  dsp::Segment out;
  out.begin = segment.begin >= pad ? segment.begin - pad : 0;
  out.end = std::min(segment.end + pad, limit);
  return out;
}

SegmentTiming segment_timing(std::span<const std::span<const double>> windows,
                             double sample_rate_hz,
                             const TimingConfig& config,
                             common::ScratchArena& arena) {
  AF_EXPECT(windows.size() >= 2, "segment_timing requires >= 2 channels");
  AF_EXPECT(windows.size() <= kMaxTimingChannels,
            "segment_timing supports at most kMaxTimingChannels");
  AF_EXPECT(sample_rate_hz > 0.0, "sample rate must be positive");

  const auto timing_frame = arena.frame();
  const AscendingPoints pts =
      find_ascending_points(windows, config.ascending, arena);
  SegmentTiming out;
  out.active.resize(windows.size(), false);
  out.tau_s.resize(windows.size(), 0.0);

  for (std::size_t c = 0; c < windows.size(); ++c) {
    out.active[c] = pts.ascending[c].has_value();
    if (!out.active[c]) continue;
    if (out.first_active < 0) out.first_active = static_cast<int>(c);
    out.last_active = static_cast<int>(c);
    const double energy = common::reduce::sum(windows[c]);
    const double weighted = common::reduce::weighted_index_sum(windows[c]);
    out.tau_s[c] =
        energy > 0.0 ? (weighted / energy) / sample_rate_hz : 0.0;
  }

  if (out.first_active >= 0 && out.last_active > out.first_active) {
    out.dt_outer_s =
        out.tau_s[static_cast<std::size_t>(out.last_active)] -
        out.tau_s[static_cast<std::size_t>(out.first_active)];
  }

  // Envelope hump count on the smoothed summed energy.
  const std::size_t n = windows.front().size();
  if (n > 0) {
    const std::span<double> envelope_raw = arena.alloc<double>(n);
    for (const auto& w : windows)
      simd::kernels().accumulate(envelope_raw.data(), w.data(),
                                 std::min(n, w.size()));
    const auto smooth = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::lround(config.envelope_smooth_s * sample_rate_hz)));
    const std::span<double> envelope = arena.alloc<double>(n);
    dsp::moving_average_into(envelope_raw, smooth, envelope);
    detail::envelope_stats(envelope, sample_rate_hz, config, out);
  }

  // Spatial asymmetry A(t) between the outer channels.
  if (n >= 8) {
    const auto a_smooth = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::lround(config.asymmetry_smooth_s * sample_rate_hz)));
    const std::span<double> e1 = arena.alloc<double>(n);
    dsp::moving_average_into(windows.front(), a_smooth, e1);
    const std::span<double> e3 = arena.alloc<double>(n);
    dsp::moving_average_into(windows.back(), a_smooth, e3);
    const std::span<double> esum = arena.alloc<double>(n);
    // The sum's outer-channel terms are exactly e1/e3 (same window, same
    // smoothing); reusing them drops two of the five moving averages.
    // Accumulation stays in channel order, so esum keeps its bits.
    for (std::size_t c = 0; c < windows.size(); ++c) {
      if (c == 0) {
        simd::kernels().accumulate(esum.data(), e1.data(), n);
      } else if (c + 1 == windows.size()) {
        simd::kernels().accumulate(esum.data(), e3.data(), n);
      } else {
        const auto channel_frame = arena.frame();
        const std::span<double> es = arena.alloc<double>(n);
        dsp::moving_average_into(windows[c], a_smooth, es);
        simd::kernels().accumulate(esum.data(), es.data(), n);
      }
    }
    detail::asymmetry_stats(e1, e3, esum, sample_rate_hz, config, arena, out);
  }
  return out;
}

void detail::envelope_stats(std::span<const double> envelope,
                            double sample_rate_hz, const TimingConfig& config,
                            SegmentTiming& out) {
  const double peak = common::reduce::max_with(envelope, 0.0);
  const double level = peak * config.peak_level;
  const auto support = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::lround(config.peak_support_s * sample_rate_hz)));
  const std::size_t count =
      dsp::count_peaks_at_least(envelope, support, level);
  // A monotone-edged single hump can have its maximum at the window edge
  // where find_peaks cannot see it; count at least one hump when any
  // energy is present.
  out.envelope_peaks = std::max<std::size_t>(count, peak > 0.0 ? 1 : 0);
}

void detail::asymmetry_stats(std::span<const double> e1,
                             std::span<const double> e3,
                             std::span<const double> esum,
                             double sample_rate_hz, const TimingConfig& config,
                             common::ScratchArena& arena, SegmentTiming& out) {
  const std::size_t n = esum.size();
  const auto asymmetry_frame = arena.frame();
  {
    const double esum_peak = common::reduce::max_with(esum, 0.0);
    const double eps =
        std::max(esum_peak * config.epsilon_fraction, 1e-12);

    const std::span<double> a = arena.alloc<double>(n);
    for (std::size_t i = 0; i < n; ++i)
      a[i] = (e3[i] - e1[i]) / (esum[i] + eps);

    // Asymmetry in *differential-energy* terciles. The weight of a sample
    // is |E_P3 − E_P1|: a scroll concentrates its differential energy at
    // the two zone crossings (first tercile on P1's side, last on P3's),
    // while common-mode events — clicks, lifts, and the centre crossings
    // of cyclic micro gestures — carry almost no differential weight.
    const std::span<double> w = arena.alloc<double>(n);
    double total_w = 0.0;
    {
      // Energy gate: low-energy onset/offset transients show deceptive
      // asymmetry (one zone lights up marginally earlier); exclude them.
      const double energy_gate = esum_peak * config.energy_gate_fraction;
      for (std::size_t i = 0; i < n; ++i) {
        w[i] = esum[i] > energy_gate ? std::fabs(e3[i] - e1[i]) : 0.0;
        total_w += w[i];
      }
    }
    const double max_w = common::reduce::max_with(w, 0.0);
    detail::asymmetry_folds(a, w, total_w, max_w, sample_rate_hz, config, out);
  }
}

void detail::asymmetry_folds(std::span<const double> a,
                             std::span<const double> w, double total_w,
                             double max_w, double sample_rate_hz,
                             const TimingConfig& config, SegmentTiming& out) {
  const std::size_t n = a.size();
  if (total_w <= 0.0) return;

  double cum = 0.0;
  double bin_a[3] = {0, 0, 0}, bin_w[3] = {0, 0, 0}, bin_t[3] = {0, 0, 0};
  for (std::size_t i = 0; i < n; ++i) {
    // Zero-weight samples are exact no-ops on every accumulator here
    // (x += ±0.0 keeps the bits of the non-negative sums this loop
    // builds), so skipping them keeps the fold bit-identical while
    // making the pass O(gated samples).
    if (w[i] == 0.0) continue;
    const double frac = cum / total_w;
    const std::size_t bin = frac < (1.0 / 3.0) ? 0
                            : frac < (2.0 / 3.0) ? 1
                                                 : 2;
    bin_a[bin] += a[i] * w[i];
    bin_t[bin] += static_cast<double>(i) * w[i];
    bin_w[bin] += w[i];
    cum += w[i];
  }
  if (bin_w[0] > 0.0 && bin_w[2] > 0.0) {
    out.asymmetry_start = bin_a[0] / bin_w[0];
    out.asymmetry_end = bin_a[2] / bin_w[2];
    out.asymmetry_delta = out.asymmetry_end - out.asymmetry_start;
    // Transit time: between the weight-centroid times of the first and
    // last terciles, scaled to the full traversal (the terciles span
    // the middle ~2/3 of the differential mass).
    const double t0 = bin_t[0] / bin_w[0];
    const double t2 = bin_t[2] / bin_w[2];
    out.transition_s = 1.5 * std::max(0.0, t2 - t0) / sample_rate_hz;
  }

  // Reversal count over the differential-gated A path: only samples
  // carrying real differential weight contribute; direction changes
  // must retrace more than the hysteresis to count. A monotone sweep
  // (scroll) has 0 reversals; cyclic gestures (rub, circle) whose A
  // returns towards its start have >= 1.
  const double gate = max_w * config.gate_fraction;
  double lo = 0.0, hi = 0.0;
  bool started = false;
  for (std::size_t i = 0; i < n; ++i) {
    if (w[i] <= gate) continue;
    if (!started) {
      started = true;
      lo = hi = a[i];
    } else {
      lo = std::min(lo, a[i]);
      hi = std::max(hi, a[i]);
    }
  }
  out.asymmetry_range = started ? hi - lo : 0.0;
  const double hysteresis = std::max(
      config.reversal_abs, config.reversal_rel * out.asymmetry_range);
  // Zigzag scan with hysteresis.
  int direction = 0;  // +1 rising, -1 falling, 0 undecided
  double path_min = 0.0, path_max = 0.0, extremum = 0.0;
  bool have_first = false;
  std::size_t reversals = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (w[i] <= gate) continue;
    const double v = a[i];
    if (!have_first) {
      have_first = true;
      path_min = path_max = v;
      continue;
    }
    if (direction == 0) {
      path_min = std::min(path_min, v);
      path_max = std::max(path_max, v);
      if (v >= path_min + hysteresis) {
        direction = +1;
        extremum = v;
      } else if (v <= path_max - hysteresis) {
        direction = -1;
        extremum = v;
      }
    } else if (direction > 0) {
      extremum = std::max(extremum, v);
      if (v <= extremum - hysteresis) {
        ++reversals;
        direction = -1;
        extremum = v;
      }
    } else {
      extremum = std::min(extremum, v);
      if (v >= extremum + hysteresis) {
        ++reversals;
        direction = +1;
        extremum = v;
      }
    }
  }
  out.asymmetry_reversals = reversals;
}

SegmentTiming segment_timing(std::span<const std::span<const double>> windows,
                             double sample_rate_hz,
                             const TimingConfig& config) {
  common::ScratchArena arena;
  return segment_timing(windows, sample_rate_hz, config, arena);
}

}  // namespace airfinger::core
