#include "core/session.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>

#include "common/error.hpp"

namespace airfinger::core {

namespace {
dsp::SegmenterConfig session_segmenter_config(
    const std::shared_ptr<const ModelBundle>& bundle) {
  AF_EXPECT(bundle != nullptr, "Session requires a model bundle");
  dsp::SegmenterConfig seg = bundle->config().processing.segmenter;
  seg.sample_rate_hz = bundle->config().sample_rate_hz;
  return seg;
}

// AF_PROBE_INCREMENTAL=0 forces the early-direction probe onto the batch
// segment_timing() path (no cache, no change-detection gate). Emissions
// are bit-identical either way — tools/run_checks.sh replays the golden
// traces with this set to prove it — so the switch exists purely as a
// byte-exact cross-check and an escape hatch.
bool incremental_probe_enabled() {
  static const bool enabled = [] {
    const char* v = std::getenv("AF_PROBE_INCREMENTAL");
    return v == nullptr || !(v[0] == '0' && v[1] == '\0');
  }();
  return enabled;
}
}  // namespace

Session::Session(std::shared_ptr<const ModelBundle> bundle)
    : Session(bundle, bundle ? bundle->config().fault_policy
                             : FaultPolicy{}) {}

Session::Session(std::shared_ptr<const ModelBundle> bundle,
                 FaultPolicy policy)
    : bundle_(std::move(bundle)),
      policy_(policy),
      segmenter_(session_segmenter_config(bundle_)) {
  const DataProcessor processor(config().processing);
  const std::size_t w = processor.window_samples(config().sample_rate_hz);
  for (std::size_t c = 0; c < config().channels; ++c)
    sbc_.emplace_back(w);
  history_.resize(config().channels);
  // Compaction keeps history_limit/2 samples and triggers past
  // history_limit; reserving headroom beyond the trigger keeps steady
  // pushes allocation-free (gestures longer than the headroom still work,
  // they just reallocate).
  for (auto& ch : history_)
    ch.reserve(config().history_limit + config().history_limit / 2);
  open_view_.sample_rate_hz = config().sample_rate_hz;
  open_view_.delta_rss2.resize(config().channels);
  if (config().channels <= kMaxTimingChannels && incremental_probe_enabled())
    timing_cache_.configure(config().channels, config().sample_rate_hz,
                            bundle_->probe_timing_config());
  last_sample_.assign(config().channels,
                      std::numeric_limits<double>::quiet_NaN());
  same_run_.assign(config().channels, 0);
  sat_run_.assign(config().channels, 0);
}

ProcessedTrace Session::window_view(const dsp::Segment& segment) const {
  AF_ASSERT(segment.begin >= history_base_,
            "segment reaches behind the compacted history");
  const std::size_t begin = segment.begin - history_base_;
  const std::size_t end = segment.end - history_base_;
  ProcessedTrace view;
  view.sample_rate_hz = config().sample_rate_hz;
  view.delta_rss2.reserve(history_.size());
  for (const auto& ch : history_) {
    AF_ASSERT(end <= ch.size(), "segment reaches beyond recorded history");
    view.delta_rss2.emplace_back(ch.begin() + static_cast<long>(begin),
                                 ch.begin() + static_cast<long>(end));
  }
  view.energy.assign(segment.length(), 0.0);
  for (const auto& ch : view.delta_rss2)
    for (std::size_t i = 0; i < ch.size(); ++i) view.energy[i] += ch[i];
  return view;
}

void Session::handle_segment(const dsp::Segment& segment,
                             const EventCallback& callback) {
  // Work on the segment window re-based to local indices. A completed (or
  // flushed) segment is always a prefix of the maintained open-segment
  // buffer — its end is the last above-threshold sample + 1, while the
  // buffer extends through the below-threshold gap — so trimming the
  // buffer yields the exact window with no copy.
  GestureEvent event;
  const std::size_t len = segment.length();
  {
    obs::Span span(&obs_, obs::Stage::kDecide);
    if (open_view_valid_ && segment.begin == open_segment_begin_ &&
        len <= open_view_.energy.size()) {
      for (auto& ch : open_view_.delta_rss2) ch.resize(len);
      open_view_.energy.resize(len);
      event = bundle_->decide(open_view_, dsp::Segment{0, len}, workspace_);
    } else {
      const ProcessedTrace view = window_view(segment);
      event = bundle_->decide(view, dsp::Segment{0, len}, workspace_);
    }
  }
  open_view_valid_ = false;
  event.time_s = now();
  event.segment_begin = segment.begin;
  event.segment_end = segment.end;
  obs_.registry().inc(obs_.segments_closed);
  obs_.record(obs::PipelineEvent::Kind::kSegmentClose, frames_,
              segment.begin, segment.end);
  if (event.type == GestureEvent::Type::kNonGesture)
    obs_.record(
        obs::PipelineEvent::Kind::kSegmentReject, frames_, segment.begin,
        segment.end,
        static_cast<std::uint8_t>(obs::PipelineEvent::Reject::kFiltered));
  callback(event);
  note_emission(event);
}

HealthStats Session::health() const {
  const obs::Registry& r = obs_.registry();
  HealthStats h;
  h.frames = r.counter_value(obs_.frames);
  h.non_finite_samples = r.counter_value(obs_.non_finite_samples);
  h.saturated_samples = r.counter_value(obs_.saturated_samples);
  h.stuck_samples = r.counter_value(obs_.stuck_samples);
  h.quarantined_frames = r.counter_value(obs_.quarantined_frames);
  h.quarantines = r.counter_value(obs_.quarantines);
  h.recalibrations = r.counter_value(obs_.recalibrations);
  h.segments_dropped = r.counter_value(obs_.segments_dropped);
  return h;
}

void Session::note_emission(const GestureEvent& event) {
  obs::Registry& r = obs_.registry();
  switch (event.type) {
    case GestureEvent::Type::kDetectGesture:
      r.inc(obs_.events_detect);
      break;
    case GestureEvent::Type::kScrollDetected:
      r.inc(obs_.events_scroll);
      break;
    case GestureEvent::Type::kScrollDirection:
      r.inc(obs_.events_direction);
      break;
    case GestureEvent::Type::kNonGesture:
      r.inc(obs_.events_rejected);
      break;
  }
  obs_.record(obs::PipelineEvent::Kind::kEmit, frames_, event.segment_begin,
              event.segment_end, static_cast<std::uint8_t>(event.type));
}

bool Session::scan_frame(std::span<const double> frame) {
  // Per-channel fault detectors (degraded mode only): O(channels)
  // comparisons, no allocation. Runs saturate at their trigger limit so
  // the counters cannot overflow on arbitrarily long fault bursts.
  bool fault = false;
  for (std::size_t c = 0; c < frame.size(); ++c) {
    const double x = frame[c];
    if (!std::isfinite(x)) {
      obs_.registry().inc(obs_.non_finite_samples);
      // A non-finite value resets the run trackers (NaN compares unequal
      // to everything, including itself).
      last_sample_[c] = x;
      same_run_[c] = 1;
      sat_run_[c] = 0;
      fault = true;
      continue;
    }
    if (x == last_sample_[c]) {
      if (same_run_[c] < policy_.stuck_run_limit) ++same_run_[c];
      if (same_run_[c] >= policy_.stuck_run_limit) {
        obs_.registry().inc(obs_.stuck_samples);
        fault = true;
      }
    } else {
      same_run_[c] = 1;
      last_sample_[c] = x;
    }
    if (std::abs(x) >= policy_.saturation_level) {
      obs_.registry().inc(obs_.saturated_samples);
      if (sat_run_[c] < policy_.saturation_run_limit) ++sat_run_[c];
      if (sat_run_[c] >= policy_.saturation_run_limit) fault = true;
    } else {
      sat_run_[c] = 0;
    }
  }
  return fault;
}

void Session::enter_quarantine() {
  quarantined_ = true;
  clean_run_ = 0;
  obs_.registry().inc(obs_.quarantines);
  obs_.registry().set(obs_.quarantined, 1.0);
  obs_.record(obs::PipelineEvent::Kind::kQuarantineEnter, frames_);
  // Whatever the segmenter had open was built on corrupt samples: drop it.
  // The segmenter itself is re-calibrated from scratch on recovery.
  if (segmenter_.in_gesture()) {
    obs_.registry().inc(obs_.segments_dropped);
    obs_.record(
        obs::PipelineEvent::Kind::kSegmentReject, frames_,
        open_segment_begin_, frames_,
        static_cast<std::uint8_t>(obs::PipelineEvent::Reject::kQuarantined));
  }
  open_view_valid_ = false;
  early_direction_sent_ = false;
}

void Session::recalibrate() {
  quarantined_ = false;
  clean_run_ = 0;
  obs_.registry().inc(obs_.recalibrations);
  obs_.registry().set(obs_.quarantined, 0.0);
  obs_.record(obs::PipelineEvent::Kind::kQuarantineExit, frames_);
  for (auto& s : sbc_) s.reset();
  segmenter_.reset();
  for (auto& ch : history_) ch.clear();
  // Re-base: the segmenter restarts at position 0 while the stream clock
  // (frames_) keeps running, so segmenter-space indices are shifted by
  // segment_offset_ from here on.
  history_base_ = frames_;
  segment_offset_ = frames_;
  open_view_valid_ = false;
  early_direction_sent_ = false;
  if (timing_cache_.configured()) timing_cache_.begin_segment();
}

void Session::push_frame(std::span<const double> frame,
                         const EventCallback& callback) {
  AF_EXPECT(frame.size() == config().channels,
            "frame carries " + std::to_string(frame.size()) +
                " samples but the session expects " +
                std::to_string(config().channels) + " channels");
  AF_EXPECT(static_cast<bool>(callback), "event callback is required");

  // Re-point the workspace's tracing sink at this session every frame (one
  // store): the pointer would dangle after a Session move if set once at
  // construction, and the decision core reads it only underneath us.
  workspace_.obs = &obs_;

  if (policy_.enabled) {
    const bool fault_now = scan_frame(frame);
    if (!quarantined_ && fault_now) enter_quarantine();
    if (quarantined_) {
      // Consume the frame (the stream clock keeps running) but feed
      // nothing downstream; recover after a sustained clean run.
      ++frames_;
      obs_.registry().inc(obs_.frames);
      obs_.registry().inc(obs_.quarantined_frames);
      if (fault_now)
        clean_run_ = 0;
      else if (++clean_run_ >= policy_.recovery_frames)
        recalibrate();
      return;
    }
  } else {
    for (std::size_t c = 0; c < frame.size(); ++c)
      if (!std::isfinite(frame[c]))
        throw StreamFaultError(
            "non-finite sample on channel " + std::to_string(c) +
            " at frame " + std::to_string(frames_) +
            " (enable FaultPolicy for degraded-mode handling)");
  }
  obs_.registry().inc(obs_.frames);

  // Per-frame stage spans (ingest / timing_cache / probe) are sampled
  // 1-in-N on a deterministic counter so steady-state clock reads stay
  // within the tracing overhead budget; segment-level spans always record.
#if AF_OBS_SPANS_ENABLED
  obs::PipelineObservability* const frame_obs =
      obs_.sample_frame() ? &obs_ : nullptr;
#else
  obs::PipelineObservability* const frame_obs = nullptr;
#endif

  double energy = 0.0;
  const bool was_open = segmenter_.in_gesture();
  std::optional<dsp::Segment> completed;
  {
    // Stage span: SBC update + history push + segmenter advance. At most
    // one span per frame, so an idle stream costs at most two clock reads
    // per sampling period.
    obs::Span span(frame_obs, obs::Stage::kIngest);
    for (std::size_t c = 0; c < frame.size(); ++c) {
      const double d = sbc_[c].push(frame[c]);
      history_[c].push_back(d);
      energy += d;
    }
    completed = segmenter_.push(energy);
  }
  ++frames_;
  // Segmenter indices are relative to the last recalibration; events and
  // history lookups use absolute stream indices.
  if (completed) {
    completed->begin += segment_offset_;
    completed->end += segment_offset_;
  }

  if (!was_open && segmenter_.in_gesture()) {
    open_segment_begin_ = frames_ - 1;
    early_direction_sent_ = false;
    for (auto& ch : open_view_.delta_rss2) ch.clear();
    open_view_.energy.clear();
    open_view_valid_ = true;
    if (timing_cache_.configured()) timing_cache_.begin_segment();
    obs_.registry().inc(obs_.segments_opened);
    obs_.record(obs::PipelineEvent::Kind::kSegmentOpen, frames_,
                open_segment_begin_, frames_);
  }

  // Maintain the open-segment view incrementally: O(channels) per frame
  // instead of an O(channels · length) copy per probe.
  if (open_view_valid_ && (was_open || segmenter_.in_gesture())) {
    for (std::size_t c = 0; c < history_.size(); ++c)
      open_view_.delta_rss2[c].push_back(history_[c].back());
    open_view_.energy.push_back(energy);
    // Feed the probe's incremental timing analysis; once the early verdict
    // is out no probe will read it again this segment.
    if (timing_cache_.configured() && !early_direction_sent_) {
      obs::Span span(frame_obs, obs::Stage::kTimingCache);
      double deltas[kMaxTimingChannels];
      for (std::size_t c = 0; c < history_.size(); ++c)
        deltas[c] = history_[c].back();
      timing_cache_.append({deltas, history_.size()});
    }
  }

  // Early scroll-direction verdict: once the open segment is longer than
  // I_g and the router already sees an ordered rise, report direction
  // without waiting for the gesture to finish.
  if (segmenter_.in_gesture() && !early_direction_sent_) {
    const std::size_t open_len = frames_ - open_segment_begin_;
    const auto ig_samples = static_cast<std::size_t>(
        config().router.ig_threshold_s * config().sample_rate_hz);
    if (open_len > 2 * ig_samples + 2) {
      AF_ASSERT(open_view_valid_ &&
                    open_view_.energy.size() == open_len,
                "open-segment view out of sync with the segmenter");
      const dsp::Segment local{0, open_len};
      const auto est = [&] {
        obs::Span span(frame_obs, obs::Stage::kProbe);
        return timing_cache_.configured()
                   ? bundle_->probe_direction(open_view_, local, workspace_,
                                              timing_cache_)
                   : bundle_->probe_direction(open_view_, local, workspace_);
      }();
      if (est) {
        GestureEvent event;
        event.type = GestureEvent::Type::kScrollDirection;
        event.time_s = now();
        event.segment_begin = open_segment_begin_;
        event.segment_end = frames_;
        event.scroll = *est;
        early_direction_sent_ = true;
        callback(event);
        note_emission(event);
      }
    }
  }

  if (completed) handle_segment(*completed, callback);
  // The segmenter may abandon an open segment without completing it (too
  // short): drop the maintained view with it.
  if (!segmenter_.in_gesture()) {
    if (was_open && !completed && open_view_valid_) {
      obs_.registry().inc(obs_.segments_abandoned);
      obs_.record(
          obs::PipelineEvent::Kind::kSegmentReject, frames_,
          open_segment_begin_, frames_,
          static_cast<std::uint8_t>(obs::PipelineEvent::Reject::kTooShort));
    }
    open_view_valid_ = false;
  }

  // Compact old history between gestures (and only after any completed
  // segment has been analysed): keep the most recent half of the limit so
  // any segment the segmenter can still close stays in range.
  if (!segmenter_.in_gesture() &&
      history_.front().size() > config().history_limit) {
    const std::size_t keep = config().history_limit / 2;
    const std::size_t drop = history_.front().size() - keep;
    for (auto& ch : history_)
      ch.erase(ch.begin(), ch.begin() + static_cast<long>(drop));
    history_base_ += drop;
  }
}

void Session::finish(const EventCallback& callback) {
  AF_EXPECT(static_cast<bool>(callback), "event callback is required");
  workspace_.obs = &obs_;
  // A quarantined stream ends without trusting its pre-fault open segment
  // (already counted in segments_dropped when quarantine was entered).
  if (quarantined_) return;
  if (auto open = segmenter_.flush()) {
    open->begin += segment_offset_;
    open->end += segment_offset_;
    handle_segment(*open, callback);
  }
}

void Session::reset() {
  for (auto& s : sbc_) s.reset();
  segmenter_.reset();
  for (auto& ch : history_) ch.clear();
  history_base_ = 0;
  frames_ = 0;
  early_direction_sent_ = false;
  open_segment_begin_ = 0;
  for (auto& ch : open_view_.delta_rss2) ch.clear();
  open_view_.energy.clear();
  open_view_valid_ = false;
  if (timing_cache_.configured()) timing_cache_.begin_segment();
  obs_.reset_values();
  quarantined_ = false;
  clean_run_ = 0;
  segment_offset_ = 0;
  std::fill(last_sample_.begin(), last_sample_.end(),
            std::numeric_limits<double>::quiet_NaN());
  std::fill(same_run_.begin(), same_run_.end(), 0u);
  std::fill(sat_run_.begin(), sat_run_.end(), 0u);
}

std::vector<GestureEvent> Session::process_trace(
    const sensor::MultiChannelTrace& trace) {
  AF_EXPECT(trace.channel_count() == config().channels,
            "trace carries " + std::to_string(trace.channel_count()) +
                " channels but the session expects " +
                std::to_string(config().channels));
  std::vector<GestureEvent> events;
  const auto sink = [&events](const GestureEvent& e) {
    events.push_back(e);
  };
  std::vector<double> frame(trace.channel_count());
  for (std::size_t i = 0; i < trace.sample_count(); ++i) {
    for (std::size_t c = 0; c < frame.size(); ++c)
      frame[c] = trace.channel(c)[i];
    push_frame(frame, sink);
  }
  finish(sink);
  return events;
}

}  // namespace airfinger::core
