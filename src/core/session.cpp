#include "core/session.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>

#include "common/error.hpp"

namespace airfinger::core {

namespace {
dsp::SegmenterConfig session_segmenter_config(
    const std::shared_ptr<const ModelBundle>& bundle) {
  AF_EXPECT(bundle != nullptr, "Session requires a model bundle");
  dsp::SegmenterConfig seg = bundle->config().processing.segmenter;
  seg.sample_rate_hz = bundle->config().sample_rate_hz;
  return seg;
}

// AF_PROBE_INCREMENTAL=0 forces the early-direction probe onto the batch
// segment_timing() path (no cache, no change-detection gate). Emissions
// are bit-identical either way — tools/run_checks.sh replays the golden
// traces with this set to prove it — so the switch exists purely as a
// byte-exact cross-check and an escape hatch.
bool incremental_probe_enabled() {
  static const bool enabled = [] {
    const char* v = std::getenv("AF_PROBE_INCREMENTAL");
    return v == nullptr || !(v[0] == '0' && v[1] == '\0');
  }();
  return enabled;
}
}  // namespace

Session::Session(std::shared_ptr<const ModelBundle> bundle)
    : Session(bundle, bundle ? bundle->config().fault_policy
                             : FaultPolicy{}) {}

Session::Session(std::shared_ptr<const ModelBundle> bundle,
                 FaultPolicy policy)
    : bundle_(std::move(bundle)),
      policy_(policy),
      segmenter_(session_segmenter_config(bundle_)) {
  const DataProcessor processor(config().processing);
  const std::size_t w = processor.window_samples(config().sample_rate_hz);
  for (std::size_t c = 0; c < config().channels; ++c)
    sbc_.emplace_back(w);
  history_.resize(config().channels);
  // Compaction keeps history_limit/2 samples and triggers past
  // history_limit; reserving headroom beyond the trigger keeps steady
  // pushes allocation-free (gestures longer than the headroom still work,
  // they just reallocate).
  for (auto& ch : history_)
    ch.reserve(config().history_limit + config().history_limit / 2);
  open_view_.sample_rate_hz = config().sample_rate_hz;
  open_view_.delta_rss2.resize(config().channels);
  if (config().channels <= kMaxTimingChannels && incremental_probe_enabled())
    timing_cache_.configure(config().channels, config().sample_rate_hz,
                            bundle_->probe_timing_config());
  last_sample_.assign(config().channels,
                      std::numeric_limits<double>::quiet_NaN());
  same_run_.assign(config().channels, 0);
  sat_run_.assign(config().channels, 0);
  if (policy_.enabled && policy_.artifact.detect) {
    const ArtifactPolicy& ap = policy_.artifact;
    AF_EXPECT(ap.repair_z > 0.0, "artifact repair_z must be positive");
    AF_EXPECT(ap.repair_min_step > 0.0,
              "artifact repair_min_step must be positive");
    AF_EXPECT(ap.repair_limit >= 1, "artifact repair_limit must be >= 1");
    AF_EXPECT(ap.crackle_repairs >= 2 && ap.crackle_window >= 1,
              "crackle rate monitor needs repairs >= 2 and window >= 1");
    AF_EXPECT(ap.impulsive_sustain >= 1 && ap.drift_sustain >= 1 &&
                  ap.flicker_sustain >= 1,
              "artifact sustain windows must be >= 1");
    detectors_.reserve(config().channels);
    for (std::size_t c = 0; c < config().channels; ++c)
      detectors_.emplace_back(ap.detector);
    hold_frames_.assign(ap.repair_limit * config().channels, 0.0);
    hold_flag_.assign(config().channels, 0);
    repair_ring_.assign(ap.crackle_repairs, 0);
  }
}

ProcessedTrace Session::window_view(const dsp::Segment& segment) const {
  AF_ASSERT(segment.begin >= history_base_,
            "segment reaches behind the compacted history");
  const std::size_t begin = segment.begin - history_base_;
  const std::size_t end = segment.end - history_base_;
  ProcessedTrace view;
  view.sample_rate_hz = config().sample_rate_hz;
  view.delta_rss2.reserve(history_.size());
  for (const auto& ch : history_) {
    AF_ASSERT(end <= ch.size(), "segment reaches beyond recorded history");
    view.delta_rss2.emplace_back(ch.begin() + static_cast<long>(begin),
                                 ch.begin() + static_cast<long>(end));
  }
  view.energy.assign(segment.length(), 0.0);
  for (const auto& ch : view.delta_rss2)
    for (std::size_t i = 0; i < ch.size(); ++i) view.energy[i] += ch[i];
  return view;
}

void Session::handle_segment(const dsp::Segment& segment,
                             const EventCallback& callback) {
  // Work on the segment window re-based to local indices. A completed (or
  // flushed) segment is always a prefix of the maintained open-segment
  // buffer — its end is the last above-threshold sample + 1, while the
  // buffer extends through the below-threshold gap — so trimming the
  // buffer yields the exact window with no copy.
  GestureEvent event;
  const std::size_t len = segment.length();
  {
    obs::Span span(&obs_, obs::Stage::kDecide);
    if (open_view_valid_ && segment.begin == open_segment_begin_ &&
        len <= open_view_.energy.size()) {
      for (auto& ch : open_view_.delta_rss2) ch.resize(len);
      open_view_.energy.resize(len);
      event = bundle_->decide(open_view_, dsp::Segment{0, len}, workspace_);
    } else {
      const ProcessedTrace view = window_view(segment);
      event = bundle_->decide(view, dsp::Segment{0, len}, workspace_);
    }
  }
  open_view_valid_ = false;
  event.time_s = now();
  event.segment_begin = segment.begin;
  event.segment_end = segment.end;
  obs_.registry().inc(obs_.segments_closed);
  obs_.record(obs::PipelineEvent::Kind::kSegmentClose, frames_,
              segment.begin, segment.end);
  if (event.type == GestureEvent::Type::kNonGesture)
    obs_.record(
        obs::PipelineEvent::Kind::kSegmentReject, frames_, segment.begin,
        segment.end,
        static_cast<std::uint8_t>(obs::PipelineEvent::Reject::kFiltered));
  callback(event);
  note_emission(event);
}

HealthStats Session::health() const {
  const obs::Registry& r = obs_.registry();
  HealthStats h;
  h.frames = r.counter_value(obs_.frames);
  h.non_finite_samples = r.counter_value(obs_.non_finite_samples);
  h.saturated_samples = r.counter_value(obs_.saturated_samples);
  h.stuck_samples = r.counter_value(obs_.stuck_samples);
  h.quarantined_frames = r.counter_value(obs_.quarantined_frames);
  h.quarantines = r.counter_value(obs_.quarantines);
  h.recalibrations = r.counter_value(obs_.recalibrations);
  h.segments_dropped = r.counter_value(obs_.segments_dropped);
  return h;
}

void Session::note_emission(const GestureEvent& event) {
  obs::Registry& r = obs_.registry();
  switch (event.type) {
    case GestureEvent::Type::kDetectGesture:
      r.inc(obs_.events_detect);
      break;
    case GestureEvent::Type::kScrollDetected:
      r.inc(obs_.events_scroll);
      break;
    case GestureEvent::Type::kScrollDirection:
      r.inc(obs_.events_direction);
      break;
    case GestureEvent::Type::kNonGesture:
      r.inc(obs_.events_rejected);
      break;
  }
  obs_.record(obs::PipelineEvent::Kind::kEmit, frames_, event.segment_begin,
              event.segment_end, static_cast<std::uint8_t>(event.type));
}

bool Session::scan_frame(std::span<const double> frame) {
  // Per-channel fault detectors (degraded mode only): O(channels)
  // comparisons, no allocation. Runs saturate at their trigger limit so
  // the counters cannot overflow on arbitrarily long fault bursts.
  bool fault = false;
  for (std::size_t c = 0; c < frame.size(); ++c) {
    const double x = frame[c];
    if (!std::isfinite(x)) {
      obs_.registry().inc(obs_.non_finite_samples);
      // A non-finite value resets the run trackers (NaN compares unequal
      // to everything, including itself).
      last_sample_[c] = x;
      same_run_[c] = 1;
      sat_run_[c] = 0;
      fault = true;
      continue;
    }
    if (x == last_sample_[c]) {
      if (same_run_[c] < policy_.stuck_run_limit) ++same_run_[c];
      if (same_run_[c] >= policy_.stuck_run_limit) {
        obs_.registry().inc(obs_.stuck_samples);
        fault = true;
      }
    } else {
      same_run_[c] = 1;
      last_sample_[c] = x;
    }
    if (std::abs(x) >= policy_.saturation_level) {
      obs_.registry().inc(obs_.saturated_samples);
      if (sat_run_[c] < policy_.saturation_run_limit) ++sat_run_[c];
      if (sat_run_[c] >= policy_.saturation_run_limit) fault = true;
    } else {
      sat_run_[c] = 0;
    }
  }
  return fault;
}

void Session::enter_quarantine() {
  quarantined_ = true;
  clean_run_ = 0;
  obs_.registry().inc(obs_.quarantines);
  obs_.registry().set(obs_.quarantined, 1.0);
  obs_.record(obs::PipelineEvent::Kind::kQuarantineEnter, frames_);
  // Whatever the segmenter had open was built on corrupt samples: drop it.
  // The segmenter itself is re-calibrated from scratch on recovery.
  if (segmenter_.in_gesture()) {
    obs_.registry().inc(obs_.segments_dropped);
    obs_.record(
        obs::PipelineEvent::Kind::kSegmentReject, frames_,
        open_segment_begin_, frames_,
        static_cast<std::uint8_t>(obs::PipelineEvent::Reject::kQuarantined));
  }
  open_view_valid_ = false;
  early_direction_sent_ = false;
}

void Session::recalibrate() {
  quarantined_ = false;
  clean_run_ = 0;
  obs_.registry().inc(obs_.recalibrations);
  obs_.registry().set(obs_.quarantined, 0.0);
  obs_.record(obs::PipelineEvent::Kind::kQuarantineExit, frames_);
  for (auto& s : sbc_) s.reset();
  segmenter_.reset();
  for (auto& ch : history_) ch.clear();
  // Re-base: the segmenter restarts at position 0 while the stream clock
  // (frames_) keeps running, so segmenter-space indices are shifted by
  // segment_offset_ from here on.
  history_base_ = frames_;
  segment_offset_ = frames_;
  open_view_valid_ = false;
  early_direction_sent_ = false;
  if (timing_cache_.configured()) timing_cache_.begin_segment();
  // Recalibration is a fresh start for the artifact layer too: the
  // adaptive statistics re-learn the post-fault signal (warmup keeps them
  // quiet meanwhile), and the sustained-confidence runs restart.
  for (auto& d : detectors_) d.reset();
  impulsive_run_ = drift_run_ = flicker_run_ = 0;
}

void Session::push_frame(std::span<const double> frame,
                         const EventCallback& callback) {
  AF_EXPECT(frame.size() == config().channels,
            "frame carries " + std::to_string(frame.size()) +
                " samples but the session expects " +
                std::to_string(config().channels) + " channels");
  AF_EXPECT(static_cast<bool>(callback), "event callback is required");

  // Re-point the workspace's tracing sink at this session every frame (one
  // store): the pointer would dangle after a Session move if set once at
  // construction, and the decision core reads it only underneath us.
  workspace_.obs = &obs_;

  if (policy_.enabled) {
    const bool fault_now = scan_frame(frame);
    if (!quarantined_ && fault_now) {
      // A burst fault while frames are held back: the hold was corruption
      // after all — drop it with the stream, then quarantine.
      if (hold_len_ > 0) drop_hold();
      enter_quarantine();
    }
    if (quarantined_) {
      // Consume the frame (the stream clock keeps running) but feed
      // nothing downstream; recover after a sustained clean run.
      ++frames_;
      obs_.registry().inc(obs_.frames);
      obs_.registry().inc(obs_.quarantined_frames);
      if (fault_now)
        clean_run_ = 0;
      else if (++clean_run_ >= policy_.recovery_frames)
        recalibrate();
      return;
    }
  } else {
    for (std::size_t c = 0; c < frame.size(); ++c)
      if (!std::isfinite(frame[c]))
        throw StreamFaultError(
            "non-finite sample on channel " + std::to_string(c) +
            " at frame " + std::to_string(frames_) +
            " (enable FaultPolicy for degraded-mode handling)");
  }
  // Every validated frame is accounted here exactly once, whether it is
  // fed now, held for repair, or later dropped by an escalation.
  obs_.registry().inc(obs_.frames);

  if (artifact_active() && artifact_gate(frame, callback)) return;
  ingest(frame, callback);
}

bool Session::artifact_gate(std::span<const double> frame,
                            const EventCallback& callback) {
  const ArtifactPolicy& ap = policy_.artifact;
  if (hold_len_ == 0) {
    // Peek at the candidate frame against the adaptive derivative
    // statistics without committing it. Detection is graded: crossing
    // click_sigma only counts (the clean-traffic false-alarm proxy);
    // holding a frame for repair additionally needs the stricter repair_z
    // *and* the absolute repair_min_step floor.
    bool start = false;
    for (std::size_t c = 0; c < frame.size(); ++c) {
      const double z = detectors_[c].click_z(frame[c]);
      if (z >= ap.detector.click_sigma)
        obs_.registry().inc(obs_.artifact_impulse_suspect);
      if (ap.repair && z >= ap.repair_z &&
          std::abs(frame[c] - detectors_[c].last()) >= ap.repair_min_step) {
        start = true;
        hold_flag_[c] = 1;
      }
    }
    if (!start) return false;
    obs_.registry().inc(obs_.artifact_impulse_detected);
    std::copy(frame.begin(), frame.end(), hold_frames_.begin());
    hold_len_ = 1;
    return true;
  }

  // A hold is pending. Resume when the frame sits within the absolute
  // repair floor of every channel's last accepted value — genuine signal
  // movement stays under repair_min_step across a repair_limit-frame gap
  // by the policy's own threshold derivation; an impulse or a shifted
  // level does not.
  bool resume = true;
  for (std::size_t c = 0; c < frame.size(); ++c)
    if (std::abs(frame[c] - detectors_[c].last()) >= ap.repair_min_step) {
      resume = false;
      break;
    }
  if (resume) {
    repair_hold(frame, callback);
    return true;
  }
  const std::size_t channels = frame.size();
  if (hold_len_ < ap.repair_limit) {
    std::copy(frame.begin(), frame.end(),
              hold_frames_.begin() +
                  static_cast<long>(hold_len_ * channels));
    ++hold_len_;
    return true;
  }

  // Hold overflow: this was never an isolated impulse. With escalation
  // off, release the raw frames through the unchanged pipeline (a pure
  // delay — downstream emissions are identical to never having held).
  if (!ap.escalate) {
    const std::size_t held = hold_len_;
    hold_len_ = 0;
    std::fill(hold_flag_.begin(), hold_flag_.end(), 0);
    for (std::size_t j = 0; j < held; ++j)
      ingest({hold_frames_.data() + j * channels, channels}, callback);
    ingest(frame, callback);
    return true;
  }

  // Escalate: settled held values mean the level jumped and stayed — a
  // zipper/step; unsettled ones are a dense impulse train — crackle.
  // Either way the held frames and this one are corruption: drop them and
  // quarantine (recovery recalibrates onto the new level).
  bool settled = true;
  for (std::size_t c = 0; c < channels && settled; ++c) {
    if (!hold_flag_[c]) continue;
    double prev = hold_frames_[(hold_len_ - 1) * channels + c];
    if (std::abs(frame[c] - prev) >= ap.repair_min_step) settled = false;
    if (hold_len_ >= 2) {
      const double before = hold_frames_[(hold_len_ - 2) * channels + c];
      if (std::abs(prev - before) >= ap.repair_min_step) settled = false;
    }
  }
  const ArtifactClass cls =
      settled ? ArtifactClass::kStep : ArtifactClass::kCrackle;
  note_artifact(cls, frames_, frames_ + hold_len_ + 1);
  obs_.registry().inc(obs_.artifact_quarantines);
  drop_hold();
  ++frames_;
  obs_.registry().inc(obs_.quarantined_frames);
  enter_quarantine();
  return true;
}

void Session::repair_hold(std::span<const double> frame,
                          const EventCallback& callback) {
  const std::size_t channels = frame.size();
  // Linear interpolation across the gap: held frame j (of n) on a flagged
  // channel becomes base + (clean - base) * (j+1)/(n+1), where base is the
  // last accepted sample and clean the resuming one. Channels that never
  // fired keep their recorded values. When the clean signal is itself
  // locally linear the repaired values equal the uncorrupted ones exactly
  // and the downstream byte stream is identical to a clean trace.
  const double n1 = static_cast<double>(hold_len_ + 1);
  for (std::size_t c = 0; c < channels; ++c) {
    if (!hold_flag_[c]) continue;
    const double base = detectors_[c].last();
    const double span = frame[c] - base;
    for (std::size_t j = 0; j < hold_len_; ++j)
      hold_frames_[j * channels + c] =
          base + span * static_cast<double>(j + 1) / n1;
  }
  obs_.registry().inc(obs_.artifact_impulse_repaired);
  obs_.registry().inc(obs_.artifact_repaired_frames, hold_len_);
  note_artifact(ArtifactClass::kImpulse, frames_, frames_ + hold_len_);

  // Crackle rate monitor: too many repair episodes inside a sliding
  // window mean the "isolated" impulses are a train.
  const std::uint64_t pos = frames_;
  repair_ring_[repair_ring_head_] = pos;
  repair_ring_head_ = (repair_ring_head_ + 1) % repair_ring_.size();
  ++repairs_total_;
  const bool crackling =
      policy_.artifact.escalate && repairs_total_ >= repair_ring_.size() &&
      pos - repair_ring_[repair_ring_head_] < policy_.artifact.crackle_window;

  const std::size_t held = hold_len_;
  hold_len_ = 0;
  std::fill(hold_flag_.begin(), hold_flag_.end(), 0);
  for (std::size_t j = 0; j < held; ++j)
    ingest({hold_frames_.data() + j * channels, channels}, callback);
  ingest(frame, callback);

  if (crackling && !quarantined_) {
    note_artifact(ArtifactClass::kCrackle,
                  pos >= policy_.artifact.crackle_window
                      ? pos - policy_.artifact.crackle_window
                      : 0,
                  frames_);
    obs_.registry().inc(obs_.artifact_quarantines);
    enter_quarantine();
  }
}

void Session::drop_hold() {
  if (hold_len_ == 0) return;
  // The held frames were already counted in af_frames_total at push time;
  // consume them as degraded and advance the stream clock past them.
  obs_.registry().inc(obs_.quarantined_frames, hold_len_);
  frames_ += hold_len_;
  hold_len_ = 0;
  std::fill(hold_flag_.begin(), hold_flag_.end(), 0);
}

void Session::note_artifact(ArtifactClass cls, std::uint64_t begin,
                            std::uint64_t end) {
  obs::Registry& r = obs_.registry();
  switch (cls) {
    case ArtifactClass::kImpulse:
      break;  // Detection/repair already counted by the gate.
    case ArtifactClass::kCrackle:
      r.inc(obs_.artifact_crackle_detected);
      break;
    case ArtifactClass::kStep:
      r.inc(obs_.artifact_step_detected);
      break;
    case ArtifactClass::kDrift:
      r.inc(obs_.artifact_drift_detected);
      break;
    case ArtifactClass::kFlicker:
      r.inc(obs_.artifact_flicker_detected);
      break;
  }
  obs_.record(obs::PipelineEvent::Kind::kArtifact, frames_, begin, end,
              static_cast<std::uint8_t>(cls));
}

bool Session::artifact_accept(std::span<const double> frame) {
  const ArtifactPolicy& ap = policy_.artifact;
  double impulsive = 0.0;
  double drift = 0.0;
  double tonal = 0.0;
  double flicker = 0.0;
  for (std::size_t c = 0; c < frame.size(); ++c) {
    const sensor::ArtifactScores s = detectors_[c].accept(frame[c]);
    impulsive = std::max(impulsive, std::max(s.residual, s.kurtosis));
    drift = std::max(drift, s.drift);
    tonal = std::max(tonal, s.tonal);
    flicker = std::max(flicker, s.flicker);
  }
  if (impulsive >= 1.0) {
    obs_.registry().inc(obs_.artifact_impulsive_suspect);
    ++impulsive_run_;
  } else {
    impulsive_run_ = 0;
  }
  if (tonal >= 1.0) obs_.registry().inc(obs_.artifact_tonal_suspect);
  drift_run_ = drift >= 1.0 ? drift_run_ + 1 : 0;
  flicker_run_ = (flicker >= 1.0 && tonal >= 1.0) ? flicker_run_ + 1 : 0;
  if (!ap.escalate) return false;

  // Sustained-confidence escalation, most specific class first. The runs
  // must outlast any clean gesture (the policy's sustain windows are the
  // false-positive guard), so by the time one trips the stream has been
  // corrupt for a while already.
  ArtifactClass cls;
  std::uint64_t run;
  if (flicker_run_ >= ap.flicker_sustain) {
    cls = ArtifactClass::kFlicker;
    run = flicker_run_;
  } else if (drift_run_ >= ap.drift_sustain) {
    cls = ArtifactClass::kDrift;
    run = drift_run_;
  } else if (impulsive_run_ >= ap.impulsive_sustain) {
    cls = ArtifactClass::kCrackle;
    run = impulsive_run_;
  } else {
    return false;
  }
  note_artifact(cls, frames_ >= run ? frames_ - run : 0, frames_ + 1);
  obs_.registry().inc(obs_.artifact_quarantines);
  impulsive_run_ = drift_run_ = flicker_run_ = 0;
  enter_quarantine();
  return true;
}

void Session::ingest(std::span<const double> frame,
                     const EventCallback& callback) {
  // Reachable while quarantined only when a repair released held frames
  // and an escalation fired mid-release: consume the remainder degraded.
  if (quarantined_) {
    ++frames_;
    obs_.registry().inc(obs_.quarantined_frames);
    clean_run_ = 0;
    return;
  }
  if (artifact_active() && artifact_accept(frame)) {
    ++frames_;
    obs_.registry().inc(obs_.quarantined_frames);
    return;
  }

  // Per-frame stage spans (ingest / timing_cache / probe) are sampled
  // 1-in-N on a deterministic counter so steady-state clock reads stay
  // within the tracing overhead budget; segment-level spans always record.
#if AF_OBS_SPANS_ENABLED
  obs::PipelineObservability* const frame_obs =
      obs_.sample_frame() ? &obs_ : nullptr;
#else
  obs::PipelineObservability* const frame_obs = nullptr;
#endif

  double energy = 0.0;
  const bool was_open = segmenter_.in_gesture();
  std::optional<dsp::Segment> completed;
  {
    // Stage span: SBC update + history push + segmenter advance. At most
    // one span per frame, so an idle stream costs at most two clock reads
    // per sampling period.
    obs::Span span(frame_obs, obs::Stage::kIngest);
    for (std::size_t c = 0; c < frame.size(); ++c) {
      const double d = sbc_[c].push(frame[c]);
      history_[c].push_back(d);
      energy += d;
    }
    completed = segmenter_.push(energy);
  }
  ++frames_;
  // Segmenter indices are relative to the last recalibration; events and
  // history lookups use absolute stream indices.
  if (completed) {
    completed->begin += segment_offset_;
    completed->end += segment_offset_;
  }

  if (!was_open && segmenter_.in_gesture()) {
    open_segment_begin_ = frames_ - 1;
    early_direction_sent_ = false;
    for (auto& ch : open_view_.delta_rss2) ch.clear();
    open_view_.energy.clear();
    open_view_valid_ = true;
    if (timing_cache_.configured()) timing_cache_.begin_segment();
    obs_.registry().inc(obs_.segments_opened);
    obs_.record(obs::PipelineEvent::Kind::kSegmentOpen, frames_,
                open_segment_begin_, frames_);
  }

  // Maintain the open-segment view incrementally: O(channels) per frame
  // instead of an O(channels · length) copy per probe.
  if (open_view_valid_ && (was_open || segmenter_.in_gesture())) {
    for (std::size_t c = 0; c < history_.size(); ++c)
      open_view_.delta_rss2[c].push_back(history_[c].back());
    open_view_.energy.push_back(energy);
    // Feed the probe's incremental timing analysis; once the early verdict
    // is out no probe will read it again this segment.
    if (timing_cache_.configured() && !early_direction_sent_) {
      obs::Span span(frame_obs, obs::Stage::kTimingCache);
      double deltas[kMaxTimingChannels];
      for (std::size_t c = 0; c < history_.size(); ++c)
        deltas[c] = history_[c].back();
      timing_cache_.append({deltas, history_.size()});
    }
  }

  // Early scroll-direction verdict: once the open segment is longer than
  // I_g and the router already sees an ordered rise, report direction
  // without waiting for the gesture to finish.
  if (segmenter_.in_gesture() && !early_direction_sent_) {
    const std::size_t open_len = frames_ - open_segment_begin_;
    const auto ig_samples = static_cast<std::size_t>(
        config().router.ig_threshold_s * config().sample_rate_hz);
    if (open_len > 2 * ig_samples + 2) {
      AF_ASSERT(open_view_valid_ &&
                    open_view_.energy.size() == open_len,
                "open-segment view out of sync with the segmenter");
      const dsp::Segment local{0, open_len};
      const auto est = [&] {
        obs::Span span(frame_obs, obs::Stage::kProbe);
        return timing_cache_.configured()
                   ? bundle_->probe_direction(open_view_, local, workspace_,
                                              timing_cache_)
                   : bundle_->probe_direction(open_view_, local, workspace_);
      }();
      if (est) {
        GestureEvent event;
        event.type = GestureEvent::Type::kScrollDirection;
        event.time_s = now();
        event.segment_begin = open_segment_begin_;
        event.segment_end = frames_;
        event.scroll = *est;
        early_direction_sent_ = true;
        callback(event);
        note_emission(event);
      }
    }
  }

  if (completed) handle_segment(*completed, callback);
  // The segmenter may abandon an open segment without completing it (too
  // short): drop the maintained view with it.
  if (!segmenter_.in_gesture()) {
    if (was_open && !completed && open_view_valid_) {
      obs_.registry().inc(obs_.segments_abandoned);
      obs_.record(
          obs::PipelineEvent::Kind::kSegmentReject, frames_,
          open_segment_begin_, frames_,
          static_cast<std::uint8_t>(obs::PipelineEvent::Reject::kTooShort));
    }
    open_view_valid_ = false;
  }

  // Compact old history between gestures (and only after any completed
  // segment has been analysed): keep the most recent half of the limit so
  // any segment the segmenter can still close stays in range.
  if (!segmenter_.in_gesture() &&
      history_.front().size() > config().history_limit) {
    const std::size_t keep = config().history_limit / 2;
    const std::size_t drop = history_.front().size() - keep;
    for (auto& ch : history_)
      ch.erase(ch.begin(), ch.begin() + static_cast<long>(drop));
    history_base_ += drop;
  }
}

void Session::finish(const EventCallback& callback) {
  AF_EXPECT(static_cast<bool>(callback), "event callback is required");
  workspace_.obs = &obs_;
  // A quarantined stream ends without trusting its pre-fault open segment
  // (already counted in segments_dropped when quarantine was entered).
  if (quarantined_) return;
  // A hold pending at end of stream never found its clean resume sample:
  // there is nothing to interpolate toward, so the suspect tail is dropped
  // as degraded rather than fed raw.
  if (hold_len_ > 0) drop_hold();
  if (auto open = segmenter_.flush()) {
    open->begin += segment_offset_;
    open->end += segment_offset_;
    handle_segment(*open, callback);
  }
}

void Session::reset() {
  for (auto& s : sbc_) s.reset();
  segmenter_.reset();
  for (auto& ch : history_) ch.clear();
  history_base_ = 0;
  frames_ = 0;
  early_direction_sent_ = false;
  open_segment_begin_ = 0;
  for (auto& ch : open_view_.delta_rss2) ch.clear();
  open_view_.energy.clear();
  open_view_valid_ = false;
  if (timing_cache_.configured()) timing_cache_.begin_segment();
  obs_.reset_values();
  quarantined_ = false;
  clean_run_ = 0;
  segment_offset_ = 0;
  std::fill(last_sample_.begin(), last_sample_.end(),
            std::numeric_limits<double>::quiet_NaN());
  std::fill(same_run_.begin(), same_run_.end(), 0u);
  std::fill(sat_run_.begin(), sat_run_.end(), 0u);
  for (auto& d : detectors_) d.reset();
  hold_len_ = 0;
  std::fill(hold_flag_.begin(), hold_flag_.end(),
            static_cast<std::uint8_t>(0));
  std::fill(repair_ring_.begin(), repair_ring_.end(), 0u);
  repair_ring_head_ = 0;
  repairs_total_ = 0;
  impulsive_run_ = drift_run_ = flicker_run_ = 0;
}

std::vector<GestureEvent> Session::process_trace(
    const sensor::MultiChannelTrace& trace) {
  AF_EXPECT(trace.channel_count() == config().channels,
            "trace carries " + std::to_string(trace.channel_count()) +
                " channels but the session expects " +
                std::to_string(config().channels));
  std::vector<GestureEvent> events;
  const auto sink = [&events](const GestureEvent& e) {
    events.push_back(e);
  };
  std::vector<double> frame(trace.channel_count());
  for (std::size_t i = 0; i < trace.sample_count(); ++i) {
    for (std::size_t c = 0; c < frame.size(); ++c)
      frame[c] = trace.channel(c)[i];
    push_frame(frame, sink);
  }
  finish(sink);
  return events;
}

}  // namespace airfinger::core
