#include "core/training.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "core/airfinger.hpp"

namespace airfinger::core {

int label_for(synth::MotionKind kind, LabelScheme scheme) {
  using synth::MotionKind;
  switch (scheme) {
    case LabelScheme::kDetectSix:
      return synth::is_detect_aimed(kind) ? static_cast<int>(kind) : -1;
    case LabelScheme::kAllEight:
      return synth::is_gesture(kind) ? static_cast<int>(kind) : -1;
    case LabelScheme::kGestureVsNonGesture:
      return synth::is_gesture(kind) ? 1 : 0;
  }
  return -1;
}

std::vector<std::string> class_names(LabelScheme scheme) {
  std::vector<std::string> names;
  switch (scheme) {
    case LabelScheme::kDetectSix:
      for (auto k : synth::detect_gestures())
        names.emplace_back(synth::motion_name(k));
      break;
    case LabelScheme::kAllEight:
      for (auto k : synth::all_gestures())
        names.emplace_back(synth::motion_name(k));
      break;
    case LabelScheme::kGestureVsNonGesture:
      names = {"non-gesture", "gesture"};
      break;
  }
  return names;
}

int class_count(LabelScheme scheme) {
  switch (scheme) {
    case LabelScheme::kDetectSix: return 6;
    case LabelScheme::kAllEight: return 8;
    case LabelScheme::kGestureVsNonGesture: return 2;
  }
  return 0;
}

ml::SampleSet build_feature_set(const synth::Dataset& dataset,
                                const DataProcessor& processor,
                                const features::FeatureBank& bank,
                                LabelScheme scheme, GroupScheme groups) {
  // Feature extraction is independent per sample (processor and bank are
  // immutable); rows are computed in parallel into per-sample slots, then
  // appended in dataset order so the output is identical to the serial loop.
  struct Row {
    std::vector<double> features;
    int label = -1;
    int group = 0;
    bool valid = false;
  };
  std::vector<Row> rows(dataset.size());
  common::parallel_for(0, dataset.size(), [&](std::size_t i) {
    const auto& sample = dataset.samples[i];
    const int label = label_for(sample.kind, scheme);
    if (label < 0) return;

    const ProcessedTrace processed = processor.process(sample.trace);
    const double rate = sample.trace.sample_rate_hz();
    const auto truth_begin = static_cast<std::size_t>(
        std::lround(sample.gesture_start_s * rate));
    const auto truth_end = static_cast<std::size_t>(
        std::lround(sample.gesture_end_s * rate));
    const dsp::Segment raw_seg =
        DataProcessor::select_segment(processed, truth_begin, truth_end);
    if (raw_seg.length() < 4) return;  // unextractable blip
    const dsp::Segment seg =
        pad_segment(raw_seg, processed.energy.size(),
                    processor.config().feature_pad_s, rate);

    std::vector<std::span<const double>> windows;
    windows.reserve(processed.delta_rss2.size());
    for (const auto& ch : processed.delta_rss2)
      windows.emplace_back(ch.data() + seg.begin, seg.length());
    Row& row = rows[i];
    // One scratch arena per worker thread (DESIGN.md §11): after the first
    // sample sizes it, extraction stops touching the heap. extract_into is
    // bit-identical to extract, so parallel determinism is unaffected.
    thread_local features::Workspace workspace;
    row.features.resize(bank.feature_count());
    bank.extract_into(std::span<const std::span<const double>>(windows),
                      workspace, row.features);
    row.label = label;
    switch (groups) {
      case GroupScheme::kNone: break;
      case GroupScheme::kUser: row.group = sample.user_id; break;
      case GroupScheme::kSession: row.group = sample.session_id; break;
    }
    row.valid = true;
  });

  ml::SampleSet set;
  set.features.reserve(dataset.size());
  set.labels.reserve(dataset.size());
  for (auto& row : rows) {
    if (!row.valid) continue;
    set.features.push_back(std::move(row.features));
    set.labels.push_back(row.label);
    if (groups != GroupScheme::kNone) set.groups.push_back(row.group);
  }
  set.validate();
  return set;
}

SeriesSet build_series_set(const synth::Dataset& dataset,
                           const DataProcessor& processor,
                           LabelScheme scheme) {
  SeriesSet out;
  for (const auto& sample : dataset.samples) {
    const int label = label_for(sample.kind, scheme);
    if (label < 0) continue;
    const ProcessedTrace processed = processor.process(sample.trace);
    const double rate = sample.trace.sample_rate_hz();
    const dsp::Segment raw_seg = DataProcessor::select_segment(
        processed,
        static_cast<std::size_t>(std::lround(sample.gesture_start_s * rate)),
        static_cast<std::size_t>(std::lround(sample.gesture_end_s * rate)));
    if (raw_seg.length() < 4) continue;
    const dsp::Segment seg =
        pad_segment(raw_seg, processed.energy.size(),
                    processor.config().feature_pad_s, rate);
    out.series.emplace_back(processed.energy.begin() +
                                static_cast<long>(seg.begin),
                            processed.energy.begin() +
                                static_cast<long>(seg.end));
    out.labels.push_back(label);
  }
  return out;
}

ml::ConfusionMatrix evaluate_split(ml::Classifier& classifier,
                                   const ml::SampleSet& data,
                                   const ml::Split& split, int num_classes,
                                   std::vector<std::string> names) {
  classifier.fit(data.subset(split.train));
  ml::ConfusionMatrix cm(num_classes, std::move(names));
  for (std::size_t i : split.test)
    cm.add(data.labels[i], classifier.predict(data.features[i]));
  return cm;
}

ml::ConfusionMatrix evaluate_split(DetectRecognizer& recognizer,
                                   const ml::SampleSet& data,
                                   const ml::Split& split, int num_classes,
                                   std::vector<std::string> names) {
  recognizer.fit(data.subset(split.train));
  ml::ConfusionMatrix cm(num_classes, std::move(names));
  for (std::size_t i : split.test)
    cm.add(data.labels[i], recognizer.predict(data.features[i]));
  return cm;
}

PipelineVerdict run_sample(AirFinger& engine,
                           const synth::GestureSample& sample) {
  const std::vector<GestureEvent> events =
      engine.classify_recording(sample.trace);

  const double rate = sample.trace.sample_rate_hz();
  const double mid =
      0.5 * (sample.gesture_start_s + sample.gesture_end_s) * rate;

  PipelineVerdict verdict;
  double best_distance = 1e18;
  for (const auto& e : events) {
    if (e.type == GestureEvent::Type::kScrollDirection)
      continue;  // early hint, not a final verdict
    const double centre =
        0.5 * (static_cast<double>(e.segment_begin) +
               static_cast<double>(e.segment_end));
    const double distance = std::fabs(centre - mid);
    if (distance >= best_distance) continue;
    best_distance = distance;
    verdict.detected = true;
    verdict.rejected = e.type == GestureEvent::Type::kNonGesture;
    verdict.predicted.reset();
    verdict.scroll.reset();
    if (e.type == GestureEvent::Type::kDetectGesture) {
      verdict.predicted = e.gesture;
    } else if (e.type == GestureEvent::Type::kScrollDetected) {
      verdict.scroll = e.scroll;
      verdict.predicted = (e.scroll && e.scroll->direction < 0)
                              ? synth::MotionKind::kScrollDown
                              : synth::MotionKind::kScrollUp;
    }
  }
  return verdict;
}

}  // namespace airfinger::core
