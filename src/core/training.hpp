// Dataset → feature-matrix conversion and evaluation harness helpers shared
// by the benches, examples, and integration tests.
#pragma once

#include <functional>
#include <string>

#include "core/ascending.hpp"
#include "core/data_processor.hpp"
#include "core/detect_recognizer.hpp"
#include "core/zebra.hpp"
#include "features/bank.hpp"
#include "ml/classifier.hpp"
#include "ml/metrics.hpp"
#include "synth/dataset.hpp"

namespace airfinger::core {

/// How raw motion kinds map to training labels.
enum class LabelScheme {
  kDetectSix,          ///< circle..double click → 0..5; others skipped.
  kAllEight,           ///< the eight designed gestures → 0..7.
  kGestureVsNonGesture ///< designed gesture → 1, non-gesture → 0.
};

/// Which sample attribute becomes the group key (for leave-one-group-out).
enum class GroupScheme { kNone, kUser, kSession };

/// Label of a motion kind under a scheme, or -1 when excluded.
int label_for(synth::MotionKind kind, LabelScheme scheme);

/// Display names of the classes of a scheme, in label order.
std::vector<std::string> class_names(LabelScheme scheme);

/// Number of classes of a scheme.
int class_count(LabelScheme scheme);

/// Runs every sample through the data processor, extracts the full feature
/// bank from the segment best matching the ground-truth window, and builds
/// a SampleSet. Samples excluded by the scheme are skipped.
ml::SampleSet build_feature_set(const synth::Dataset& dataset,
                                const DataProcessor& processor,
                                const features::FeatureBank& bank,
                                LabelScheme scheme,
                                GroupScheme groups = GroupScheme::kNone);

/// Raw-series variant for sequence classifiers (DTW): the segmented summed
/// ΔRSS² of each sample plus its label under the scheme.
struct SeriesSet {
  std::vector<std::vector<double>> series;
  std::vector<int> labels;
};
SeriesSet build_series_set(const synth::Dataset& dataset,
                           const DataProcessor& processor,
                           LabelScheme scheme);

/// Trains `classifier` on the train rows of `split` and evaluates on the
/// test rows, returning the confusion matrix.
ml::ConfusionMatrix evaluate_split(ml::Classifier& classifier,
                                   const ml::SampleSet& data,
                                   const ml::Split& split, int num_classes,
                                   std::vector<std::string> names = {});

/// Same but for a DetectRecognizer (which has its own selection stage).
ml::ConfusionMatrix evaluate_split(DetectRecognizer& recognizer,
                                   const ml::SampleSet& data,
                                   const ml::Split& split, int num_classes,
                                   std::vector<std::string> names = {});

/// End-to-end verdict of the streaming engine on one recorded sample.
struct PipelineVerdict {
  bool detected = false;          ///< Any gesture/scroll event was emitted.
  bool rejected = false;          ///< The interference filter rejected it.
  /// Predicted designed gesture (scrolls map to kScrollUp/Down via the
  /// estimated direction). Unset when nothing was detected or rejected.
  std::optional<synth::MotionKind> predicted;
  std::optional<ScrollEstimate> scroll;
};

/// Runs one recorded sample through a (reset) engine and summarizes the
/// event closest to the ground-truth gesture window.
PipelineVerdict run_sample(class AirFinger& engine,
                           const synth::GestureSample& sample);

}  // namespace airfinger::core
