#include "core/data_processor.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace airfinger::core {

DataProcessor::DataProcessor(DataProcessorConfig config) : config_(config) {
  AF_EXPECT(config.sbc_window_s > 0.0, "SBC window must be positive");
}

std::size_t DataProcessor::window_samples(double sample_rate_hz) const {
  return std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::lround(config_.sbc_window_s * sample_rate_hz)));
}

ProcessedTrace DataProcessor::process(
    const sensor::MultiChannelTrace& trace) const {
  AF_EXPECT(trace.channel_count() >= 1, "trace has no channels");
  ProcessedTrace out;
  out.sample_rate_hz = trace.sample_rate_hz();
  const std::size_t w = window_samples(trace.sample_rate_hz());

  out.delta_rss2.reserve(trace.channel_count());
  out.energy.assign(trace.sample_count(), 0.0);
  for (std::size_t c = 0; c < trace.channel_count(); ++c) {
    auto d = dsp::SquareBasedCalculator::apply(trace.channel(c), w);
    for (std::size_t i = 0; i < d.size(); ++i) out.energy[i] += d[i];
    out.delta_rss2.push_back(std::move(d));
  }

  dsp::SegmenterConfig seg = config_.segmenter;
  seg.sample_rate_hz = trace.sample_rate_hz();
  out.segments = dsp::segment_signal(out.energy, seg);
  return out;
}

dsp::Segment DataProcessor::select_segment(const ProcessedTrace& processed,
                                           std::size_t truth_begin,
                                           std::size_t truth_end) {
  if (processed.segments.empty()) return {truth_begin, truth_end};

  const dsp::Segment* best = nullptr;
  std::size_t best_overlap = 0;
  for (const auto& seg : processed.segments) {
    const std::size_t lo = std::max(seg.begin, truth_begin);
    const std::size_t hi = std::min(seg.end, truth_end);
    const std::size_t overlap = hi > lo ? hi - lo : 0;
    if (overlap > best_overlap) {
      best_overlap = overlap;
      best = &seg;
    }
  }
  if (best) return *best;

  // No overlap with the ground truth: fall back to the longest detection.
  best = &processed.segments.front();
  for (const auto& seg : processed.segments)
    if (seg.length() > best->length()) best = &seg;
  return *best;
}

}  // namespace airfinger::core
