// Incremental timing analysis of the currently open segment.
//
// While a gesture is open, the early-direction probe recomputes
// segment_timing() over the whole open window on every frame — an O(n·w)
// cost (dominated by the brute moving averages and the quantile sorts)
// that grows with the window and is paid ~100×/s. OpenSegmentTiming turns
// that into an amortized O(1)–O(n) per frame by exploiting that the window
// only ever *grows at the right edge*:
//
//  - per-channel peaks and the energy / weighted-energy sums are running
//    left-to-right folds — appending one sample extends the identical fold;
//  - the noise-floor quantile reads a maintained sorted array (same value
//    multiset as quantile()'s sort of the window);
//  - a length-w moving average only changes for outputs whose window
//    touches the new sample — the trailing half-window — so the caches
//    recompute just those entries, with the same brute per-output loop
//    moving_average_into() uses. Everything *left* of that half-window is
//    final forever, which makes every left-to-right fold over a smoothed
//    array resumable: the fold state is checkpointed at the finalized
//    frontier and only the live tail is re-folded per frame;
//  - the asymmetry path a(t) and differential weights w(t) are stored and
//    only their live tail recomputed (full rebuild when the global
//    esum-peak — and with it ε and the energy gate — changes bits);
//  - ascending-point scans early-exit at the first confirmed run and are
//    resumed from the last scanned sample while the rise level's bits are
//    unchanged (raw windows are grow-only, so a found onset never moves);
//  - the envelope hump count freezes per-index peak decisions whose
//    ±support neighbourhood is final and recounts only the live tail
//    (full recount when the peak level changes bits).
//
// refresh() additionally *detects change*: it reports whether any
// decision-relevant statistic (the active-channel set and the asymmetry
// figures the detect/track router reads) changed bits since the previous
// frame. Appends that fall below the energy gate — the long decay tail of
// every gesture — leave all of them bit-identical, so the probe can prove
// "same verdict as last frame" without re-deriving it (DESIGN.md §16).
//
// Every derived scalar runs through the same detail:: helpers as
// segment_timing(), so the result is bit-identical to the batch analysis
// of the same window — locked in by timing_cache and probe tests.
#pragma once

#include <vector>

#include "core/ascending.hpp"

namespace airfinger::core {

/// Incrementally maintained segment_timing() over a grow-only window.
/// Not thread-safe; owned by one Session (or test) at a time. Buffers keep
/// their capacity across segments, so steady-state operation performs no
/// heap allocation once sized by the longest gesture seen.
class OpenSegmentTiming {
 public:
  OpenSegmentTiming() = default;

  /// Binds the cache to a channel count / sample rate / timing config.
  /// Must be called before the first append; restarts any open segment.
  void configure(std::size_t channels, double sample_rate_hz,
                 const TimingConfig& config);

  bool configured() const { return channel_count_ > 0; }
  const TimingConfig& config() const { return config_; }

  /// Starts a new open segment: drops all cached state, keeps capacity.
  void begin_segment();

  /// Appends one ΔRSS² sample per channel (the frame just pushed).
  void append(std::span<const double> deltas);

  /// Samples appended since begin_segment().
  std::size_t size() const { return n_; }

  /// Advances the decision-relevant state — the active-channel set and the
  /// asymmetry statistics the detect/track router reads — to the current
  /// window and reports whether any of it changed bits since the previous
  /// refresh of this segment. `windows` as for timing(). A `false` return
  /// proves the router would route this window exactly as it routed the
  /// previous one.
  bool refresh(std::span<const std::span<const double>> windows);

  /// Timing analysis of the full appended window; `windows[c]` must be
  /// channel c's ΔRSS² over exactly the appended samples (the open-segment
  /// view the deltas came from). Bit-identical to
  /// segment_timing(windows, sample_rate_hz, config, arena).
  SegmentTiming timing(std::span<const std::span<const double>> windows,
                       common::ScratchArena& arena);

  /// Verdict memo for the early-direction probe: true iff the last probe
  /// over this segment concluded "no emission" (detect-aimed). Combined
  /// with refresh() == false this lets the probe return its cached nullopt
  /// without routing. Reset by begin_segment()/configure().
  bool probe_verdict_no_emit() const { return probe_no_emit_; }
  void record_probe_verdict_no_emit(bool no_emit) { probe_no_emit_ = no_emit; }

 private:
  /// Recomputes the entries of `out` (a moving average of `x` with width
  /// `w`) that a grow from out.size() to x.size() invalidated.
  static void advance_moving_average(std::span<const double> x, std::size_t w,
                                     std::vector<double>& out);

  /// Envelope hump count (detail::envelope_stats) with frozen-prefix peak
  /// decisions; writes out.envelope_peaks.
  void envelope_stats_incremental(SegmentTiming& out);

  struct Channel {
    double peak = 0.0;      ///< Running max of the window.
    double energy = 0.0;    ///< Σ x[i], appended left to right.
    double weighted = 0.0;  ///< Σ i·x[i], appended left to right.
    std::vector<double> sorted;  ///< Window values, ascending (floor quantile).
    std::vector<double> smooth;  ///< MA(window, a_smooth), lazily advanced.
    // Ascending-point scan memo. Raw windows are grow-only, so while the
    // rise level keeps its bits a scan can resume where the last one
    // stopped (and a found onset is final — the *first* confirmed run
    // can never move under appends).
    double rise_level = 0.0;    ///< Level the memo was scanned at.
    bool rise_valid = false;    ///< rise_level holds a scanned-at value.
    bool onset_found = false;   ///< A confirmed run exists in [0, scanned).
    std::size_t scanned = 0;    ///< Samples consumed by the scan so far.
    std::size_t run = 0;        ///< Trailing ≥-level run length at scanned.
    bool active = false;        ///< Last refresh()'s activity verdict.
  };

  std::size_t channel_count_ = 0;
  double sample_rate_hz_ = 0.0;
  TimingConfig config_{};
  std::size_t env_smooth_ = 1;  ///< Envelope moving-average width, samples.
  std::size_t a_smooth_ = 1;    ///< Asymmetry moving-average width, samples.
  std::size_t peak_support_ = 1;  ///< Envelope hump support, samples.
  std::size_t n_ = 0;
  std::vector<Channel> channels_;
  std::vector<double> envelope_raw_;  ///< Per-sample summed channel energy.
  std::vector<double> envelope_;      ///< MA(envelope_raw_, env_smooth_).
  std::vector<double> esum_;          ///< Σ_c channels_[c].smooth.

  // ---- asymmetry-path state (a_smooth_ finalized frontier) -------------
  std::vector<double> a_;  ///< (e3−e1)/(esum+ε) over the window.
  std::vector<double> w_;  ///< Energy-gated |e3−e1| over the window.
  std::size_t aw_frontier_ = 0;   ///< Entries < frontier are final.
  double esum_peak_ckpt_ = 0.0;   ///< max fold of esum_[0, frontier) from 0.
  double total_w_ckpt_ = 0.0;     ///< sum fold of w_[0, frontier) from 0.
  double max_w_ckpt_ = 0.0;       ///< max fold of w_[0, frontier) from 0.
  double last_esum_peak_ = 0.0;   ///< ε / energy gate derive from this.
  bool have_esum_peak_ = false;
  // Cached asymmetry outputs (detail::asymmetry_folds of the last refresh
  // that saw a change).
  double asym_start_ = 0.0, asym_end_ = 0.0, asym_delta_ = 0.0;
  double asym_transition_s_ = 0.0, asym_range_ = 0.0;
  std::size_t asym_reversals_ = 0;

  // ---- refresh bookkeeping --------------------------------------------
  bool have_refresh_ = false;       ///< A refresh ran this segment.
  std::size_t last_refresh_n_ = 0;  ///< Window length of the last refresh.
  bool last_changed_ = true;        ///< Its change verdict (memoized).
  bool probe_no_emit_ = false;      ///< Last probe verdict was nullopt.

  // ---- envelope state (env_smooth_ finalized frontier) -----------------
  std::size_t env_frontier_ = 0;   ///< envelope_ entries < this are final.
  double env_peak_ckpt_ = 0.0;     ///< max fold of envelope_[0, frontier).
  double last_env_level_ = 0.0;    ///< Peak level the counts were taken at.
  bool have_env_level_ = false;
  std::size_t env_icut_ = 0;       ///< Peak decisions in [support, icut) frozen.
  std::size_t env_count_prefix_ = 0;  ///< Their accumulated count.
  std::size_t env_stats_n_ = 0;    ///< Window length of the last count.
  std::size_t env_peaks_memo_ = 0; ///< envelope_peaks at env_stats_n_.
  bool have_env_stats_ = false;
};

}  // namespace airfinger::core
