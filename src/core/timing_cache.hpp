// Incremental timing analysis of the currently open segment.
//
// While a gesture is open, the early-direction probe recomputes
// segment_timing() over the whole open window on every frame — an O(n·w)
// cost (dominated by the brute moving averages and the quantile sorts)
// that grows with the window and is paid ~100×/s. OpenSegmentTiming turns
// that into an amortized O(n) per frame by exploiting that the window only
// ever *grows at the right edge*:
//
//  - per-channel peaks and the energy / weighted-energy sums are running
//    left-to-right folds — appending one sample extends the identical fold;
//  - the noise-floor quantile reads a maintained sorted array (same value
//    multiset as quantile()'s sort of the window);
//  - a length-w moving average only changes for outputs whose window
//    touches the new sample — the trailing half-window — so the caches
//    recompute just those entries, with the same brute per-output loop
//    moving_average_into() uses.
//
// Every derived scalar then runs through the same detail:: helpers as
// segment_timing(), so the result is bit-identical to the batch analysis
// of the same window — locked in by timing_cache tests.
#pragma once

#include <vector>

#include "core/ascending.hpp"

namespace airfinger::core {

/// Incrementally maintained segment_timing() over a grow-only window.
/// Not thread-safe; owned by one Session (or test) at a time. Buffers keep
/// their capacity across segments, so steady-state operation performs no
/// heap allocation once sized by the longest gesture seen.
class OpenSegmentTiming {
 public:
  OpenSegmentTiming() = default;

  /// Binds the cache to a channel count / sample rate / timing config.
  /// Must be called before the first append; restarts any open segment.
  void configure(std::size_t channels, double sample_rate_hz,
                 const TimingConfig& config);

  bool configured() const { return channel_count_ > 0; }
  const TimingConfig& config() const { return config_; }

  /// Starts a new open segment: drops all cached state, keeps capacity.
  void begin_segment();

  /// Appends one ΔRSS² sample per channel (the frame just pushed).
  void append(std::span<const double> deltas);

  /// Samples appended since begin_segment().
  std::size_t size() const { return n_; }

  /// Timing analysis of the full appended window; `windows[c]` must be
  /// channel c's ΔRSS² over exactly the appended samples (the open-segment
  /// view the deltas came from). Bit-identical to
  /// segment_timing(windows, sample_rate_hz, config, arena).
  SegmentTiming timing(std::span<const std::span<const double>> windows,
                       common::ScratchArena& arena);

 private:
  /// Recomputes the entries of `out` (a moving average of `x` with width
  /// `w`) that a grow from out.size() to x.size() invalidated.
  static void advance_moving_average(std::span<const double> x, std::size_t w,
                                     std::vector<double>& out);

  struct Channel {
    double peak = 0.0;      ///< Running max of the window.
    double energy = 0.0;    ///< Σ x[i], appended left to right.
    double weighted = 0.0;  ///< Σ i·x[i], appended left to right.
    std::vector<double> sorted;  ///< Window values, ascending (floor quantile).
    std::vector<double> smooth;  ///< MA(window, a_smooth), lazily advanced.
  };

  std::size_t channel_count_ = 0;
  double sample_rate_hz_ = 0.0;
  TimingConfig config_{};
  std::size_t env_smooth_ = 1;  ///< Envelope moving-average width, samples.
  std::size_t a_smooth_ = 1;    ///< Asymmetry moving-average width, samples.
  std::size_t n_ = 0;
  std::vector<Channel> channels_;
  std::vector<double> envelope_raw_;  ///< Per-sample summed channel energy.
  std::vector<double> envelope_;      ///< MA(envelope_raw_, env_smooth_).
  std::vector<double> esum_;          ///< Σ_c channels_[c].smooth.
};

}  // namespace airfinger::core
