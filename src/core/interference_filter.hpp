// Interference removal (Sec. IV-F): a binary RF distinguishing designed
// gestures from unintentional motions (scratching, extending, repositioning)
// using the 9 Table I features already extracted for recognition — so the
// filter adds no extra feature-extraction cost at runtime.
#pragma once

#include <iosfwd>

#include "features/bank.hpp"
#include "ml/compiled_forest.hpp"
#include "ml/random_forest.hpp"

namespace airfinger::core {

/// Filter hyper-parameters.
struct InterferenceFilterConfig {
  ml::RandomForestConfig forest{};
  /// Number of features kept (the paper selects 9 kinds by RF importance).
  std::size_t selected_features = 9;
  /// Select by importance feedback from a ranking forest (the paper's
  /// procedure); false = use the bank's fixed Table-I bold subset.
  bool importance_selection = true;
};

/// Binary gesture / non-gesture classifier over the 9-feature subset.
class InterferenceFilter {
 public:
  /// The bank defines the candidate columns of a full feature row.
  InterferenceFilter(const features::FeatureBank& bank,
                     InterferenceFilterConfig config = {});

  /// Trains on full-bank rows; labels: 1 = designed gesture, 0 = non-gesture.
  void fit(const ml::SampleSet& full_features);

  /// True when the full-bank feature row looks like a designed gesture.
  bool is_gesture(std::span<const double> full_feature_row) const;

  /// P(gesture) for one full-bank row.
  double gesture_probability(std::span<const double> full_feature_row) const;

  /// gesture_probability() with the projected row and probabilities drawn
  /// from `arena` scratch and the compiled forest doing the prediction:
  /// allocation-free at the arena's high-water mark, bit-identical result.
  double gesture_probability_with(std::span<const double> full_feature_row,
                                  common::ScratchArena& arena) const;

  bool is_fitted() const { return fitted_; }

  const std::vector<std::size_t>& feature_indices() const {
    return indices_;
  }

  /// Serializes the fitted filter (feature indices + forest).
  void save(std::ostream& os) const;

  /// Reconstructs a filter written by save(); `bank` must match the
  /// training-time bank configuration (validated via the width).
  static InterferenceFilter load(std::istream& is,
                                 const features::FeatureBank& bank,
                                 InterferenceFilterConfig config = {});

 private:
  std::vector<double> project(std::span<const double> row) const;

  InterferenceFilterConfig config_;
  std::vector<std::size_t> indices_;
  std::size_t bank_width_;
  ml::RandomForest forest_;
  ml::CompiledForest compiled_;
  bool fitted_ = false;
};

}  // namespace airfinger::core
