#include "core/zebra.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace airfinger::core {

double ScrollEstimate::displacement_at(double t) const {
  return direction * velocity_mps * std::min(std::max(t, 0.0), duration_s);
}

ZebraTracker::ZebraTracker(ZebraConfig config) : config_(config) {
  AF_EXPECT(config.pd_span_m > 0.0, "PD span must be positive");
  AF_EXPECT(config.experience_velocity_mps > 0.0,
            "experience velocity must be positive");
}

std::optional<ScrollEstimate> ZebraTracker::track(
    const ProcessedTrace& processed, const dsp::Segment& segment) const {
  AF_EXPECT(processed.delta_rss2.size() >= 2,
            "ZEBRA requires at least two photodiode channels");
  AF_EXPECT(segment.end <= processed.energy.size() &&
                segment.begin < segment.end,
            "segment out of range");
  AF_EXPECT(processed.sample_rate_hz > 0.0, "invalid sample rate");

  // Restrict every channel's ΔRSS² to the (padded) gesture window: the
  // asymmetry swing lives partly in the faded approach/exit phases.
  const dsp::Segment padded =
      pad_segment(segment, processed.energy.size(),
                  config_.timing.analysis_pad_s, processed.sample_rate_hz);
  std::vector<std::span<const double>> windows;
  windows.reserve(processed.delta_rss2.size());
  for (const auto& ch : processed.delta_rss2)
    windows.emplace_back(ch.data() + padded.begin, padded.length());

  const SegmentTiming timing =
      segment_timing(windows, processed.sample_rate_hz, config_.timing);
  return track_timing(timing, windows, segment, processed.sample_rate_hz);
}

std::optional<ScrollEstimate> ZebraTracker::track_timing(
    const SegmentTiming& timing,
    std::span<const std::span<const double>> windows,
    const dsp::Segment& segment, double sample_rate_hz) const {
  AF_EXPECT(windows.size() >= 2,
            "ZEBRA requires at least two photodiode channels");
  AF_EXPECT(sample_rate_hz > 0.0, "invalid sample rate");
  const bool p1_active = timing.active.front();
  const bool p3_active = timing.active.back();
  if (timing.first_active < 0) return std::nullopt;  // nothing rose

  ScrollEstimate est;
  est.duration_s =
      static_cast<double>(segment.length()) / sample_rate_hz;

  if (std::fabs(timing.asymmetry_delta) > 0.05 &&
      timing.transition_s > 0.0) {
    // The asymmetry swept: direction from its sign (A rising means the
    // finger moved from P1's side to P3's, i.e. scroll up), velocity from
    // the transit time over the P1→P3 baseline.
    est.direction = (timing.asymmetry_delta > 0.0) ? +1.0 : -1.0;
    est.delta_t_s = timing.transition_s;
    est.velocity_mps = config_.velocity_gain * config_.pd_span_m /
                       timing.transition_s;
  } else if (p1_active && !p3_active) {
    // Finger passed only IL1: scroll up with experience velocity (Alg. 1
    // lines 2–7).
    est.direction = +1.0;
    est.velocity_mps = config_.experience_velocity_mps;
    est.used_experience_velocity = true;
  } else if (!p1_active && p3_active) {
    // Only IL2: scroll down (Alg. 1 lines 14–19).
    est.direction = -1.0;
    est.velocity_mps = config_.experience_velocity_mps;
    est.used_experience_velocity = true;
  } else {
    // Zero arrival-time difference: direction undecidable from timing; use
    // the early-window energy asymmetry as the tie-break.
    double early1 = 0.0, early3 = 0.0;
    const std::size_t half = segment.length() / 2;
    for (std::size_t i = 0; i < half; ++i) {
      early1 += windows.front()[i];
      early3 += windows.back()[i];
    }
    est.direction = (early1 >= early3) ? +1.0 : -1.0;
    est.velocity_mps = config_.experience_velocity_mps;
    est.used_experience_velocity = true;
  }
  return est;
}

}  // namespace airfinger::core
