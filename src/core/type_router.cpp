#include "core/type_router.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace airfinger::core {

TypeRouter::TypeRouter(TypeRouterConfig config) : config_(config) {
  AF_EXPECT(config.ig_threshold_s > 0.0, "I_g must be positive");
}

GestureCategory TypeRouter::route(const ProcessedTrace& processed,
                                  const dsp::Segment& segment) const {
  AF_EXPECT(segment.end <= processed.energy.size() &&
                segment.begin < segment.end,
            "segment out of range");
  AF_EXPECT(processed.sample_rate_hz > 0.0, "invalid sample rate");

  const dsp::Segment padded =
      pad_segment(segment, processed.energy.size(),
                  config_.timing.analysis_pad_s, processed.sample_rate_hz);
  std::vector<std::span<const double>> windows;
  windows.reserve(processed.delta_rss2.size());
  for (const auto& ch : processed.delta_rss2)
    windows.emplace_back(ch.data() + padded.begin, padded.length());

  const SegmentTiming timing =
      segment_timing(windows, processed.sample_rate_hz, config_.timing);
  return route_timing(timing);
}

GestureCategory TypeRouter::route_timing(const SegmentTiming& timing) const {
  // Nothing rose at all: fall back to detect-aimed handling (the
  // recognizer/interference filter deal with degenerate segments).
  if (timing.first_active < 0) return GestureCategory::kDetectAimed;

  // The paper's rule in integral form: a track-aimed gesture sweeps the
  // spatial asymmetry A(t) monotonically (no direction reversals) by a net
  // amount that is both absolutely meaningful and most of the path's range,
  // over a transit time of at least I_g. Detect-aimed gestures either barely
  // move A (clicks), or move it cyclically so that it reverses (circles,
  // rubs).
  const double net = std::fabs(timing.asymmetry_delta);
  const bool monotone = timing.asymmetry_reversals == 0;
  const bool swept =
      net >= config_.asymmetry_threshold &&
      net >= config_.monotone_fraction * timing.asymmetry_range;
  const bool ordered = timing.transition_s >= config_.ig_threshold_s;
  return (monotone && swept && ordered) ? GestureCategory::kTrackAimed
                                        : GestureCategory::kDetectAimed;
}

}  // namespace airfinger::core
