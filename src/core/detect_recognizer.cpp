#include "core/detect_recognizer.hpp"

#include <istream>
#include <ostream>

#include "common/error.hpp"
#include "ml/serialize.hpp"

namespace airfinger::core {

DetectRecognizer::DetectRecognizer(DetectRecognizerConfig config)
    : config_(config), bank_(config.bank), forest_(config.forest) {
  AF_EXPECT(config.selected_features >= 1,
            "must select at least one feature");
}

std::vector<double> DetectRecognizer::extract(
    std::span<const std::span<const double>> channels) const {
  return bank_.extract(channels);
}

std::vector<double> DetectRecognizer::extract(
    std::span<const double> segment) const {
  return bank_.extract(segment);
}

void DetectRecognizer::extract_into(
    std::span<const std::span<const double>> channels,
    features::Workspace& workspace, std::span<double> out) const {
  bank_.extract_into(channels, workspace, out);
}

void DetectRecognizer::fit(const ml::SampleSet& full_features) {
  full_features.validate();
  AF_EXPECT(full_features.feature_count() == bank_.feature_count(),
            "training rows must carry the full candidate bank");

  if (config_.two_stage_selection &&
      config_.selected_features < bank_.feature_count()) {
    // Stage 1: rank the candidate features by forest importance feedback.
    ml::RandomForestConfig ranking_config = config_.forest;
    ranking_config.seed ^= 0x5EED;
    ml::RandomForest ranking_forest(ranking_config);
    ranking_forest.fit(full_features);
    selected_ = ml::top_k_features(ranking_forest,
                                   config_.selected_features);
  } else {
    selected_.resize(bank_.feature_count());
    for (std::size_t i = 0; i < selected_.size(); ++i) selected_[i] = i;
  }

  // Stage 2: final forest on the selected columns only.
  forest_ = ml::RandomForest(config_.forest);
  forest_.fit(full_features.project(selected_));
  compiled_ = ml::CompiledForest(forest_);
  fitted_ = true;
}

std::vector<double> DetectRecognizer::project(
    std::span<const double> row) const {
  AF_EXPECT(row.size() == bank_.feature_count(),
            "prediction rows must carry the full candidate bank");
  std::vector<double> projected;
  projected.reserve(selected_.size());
  for (std::size_t i : selected_) projected.push_back(row[i]);
  return projected;
}

int DetectRecognizer::predict(std::span<const double> row) const {
  AF_EXPECT(fitted_, "predict requires a fitted recognizer");
  return forest_.predict(project(row));
}

std::vector<double> DetectRecognizer::predict_proba(
    std::span<const double> row) const {
  AF_EXPECT(fitted_, "predict requires a fitted recognizer");
  return forest_.predict_proba(project(row));
}

void DetectRecognizer::predict_proba_into(std::span<const double> row,
                                          common::ScratchArena& arena,
                                          std::span<double> out) const {
  AF_EXPECT(fitted_, "predict requires a fitted recognizer");
  AF_EXPECT(row.size() == bank_.feature_count(),
            "prediction rows must carry the full candidate bank");
  const auto project_frame = arena.frame();
  const std::span<double> projected = arena.alloc<double>(selected_.size());
  for (std::size_t i = 0; i < selected_.size(); ++i)
    projected[i] = row[selected_[i]];
  compiled_.predict_proba_into(projected, out);
}

std::size_t DetectRecognizer::num_classes() const {
  AF_EXPECT(fitted_, "class count requires a fitted recognizer");
  return compiled_.num_classes();
}

void DetectRecognizer::save(std::ostream& os) const {
  AF_EXPECT(fitted_, "cannot save an unfitted recognizer");
  os << "af_recognizer 1\n";
  os << "bank_width " << bank_.feature_count() << "\n";
  os << "selected " << selected_.size();
  for (std::size_t idx : selected_) os << ' ' << idx;
  os << "\n";
  forest_.save(os);
}

DetectRecognizer DetectRecognizer::load(std::istream& is,
                                        DetectRecognizerConfig config) {
  ml::detail::expect_tag(is, "af_recognizer");
  int version = 0;
  is >> version;
  AF_EXPECT(version == 1, "unsupported recognizer format version");

  DetectRecognizer rec(config);
  ml::detail::expect_tag(is, "bank_width");
  std::size_t width = 0;
  is >> width;
  AF_EXPECT(width == rec.bank_.feature_count(),
            "serialized recognizer was trained with a different feature "
            "bank configuration");
  ml::detail::expect_tag(is, "selected");
  std::size_t count = 0;
  is >> count;
  AF_EXPECT(count >= 1 && is.good(), "malformed selection in recognizer");
  AF_EXPECT(count <= width,
            "serialized recognizer selects more features than the bank "
            "provides (corrupt input?)");
  rec.selected_.resize(count);
  for (auto& idx : rec.selected_) {
    is >> idx;
    AF_EXPECT(idx < width, "selected feature index out of range");
  }
  rec.forest_ = ml::RandomForest::load(is);
  rec.compiled_ = ml::CompiledForest(rec.forest_);
  rec.fitted_ = true;
  return rec;
}

const std::vector<double>& DetectRecognizer::final_importances() const {
  AF_EXPECT(fitted_, "importances require a fitted recognizer");
  return forest_.feature_importances();
}

}  // namespace airfinger::core
