// Multi-stream serving host: N Sessions over one shared ModelBundle.
//
// The host models the production shape the ROADMAP aims at — one resident
// copy of the trained forests serving many concurrent wearable streams.
// Frames are buffered per stream (`feed`), then `pump()` advances every
// session's buffered frames in parallel on the shared thread pool
// (common/parallel.hpp). Sessions are fully independent (each task touches
// exactly one session's state; the bundle is read-only), so the pump is
// race-free by construction and — per the repo's determinism contract —
// the emitted events are bit-identical at any thread count:
//
//   * within a stream, events land in its queue in emission order,
//     produced by that stream's single task;
//   * across streams, drain() defines the total order as (session index,
//     emission order), which no scheduling can perturb.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/session.hpp"

namespace airfinger::core {

/// One engine event attributed to the stream that produced it.
struct SessionEvent {
  std::size_t session = 0;  ///< Index of the emitting session.
  GestureEvent event;
};

/// Drives many Sessions over one immutable bundle.
class MultiSessionHost {
 public:
  /// Creates `sessions` independent streams sharing `bundle` (no forest
  /// copies; per-stream state only).
  MultiSessionHost(std::shared_ptr<const ModelBundle> bundle,
                   std::size_t sessions);

  std::size_t session_count() const { return lanes_.size(); }
  const std::shared_ptr<const ModelBundle>& bundle() const {
    return bundle_;
  }
  const Session& session(std::size_t i) const;

  /// Buffers one frame (one sample per channel) for stream `session`.
  /// O(channels); no processing happens until pump().
  void feed(std::size_t session, std::span<const double> frame);

  /// Processes every stream's buffered frames, one parallel task per
  /// session. Events are appended to per-session queues in emission order.
  void pump();

  /// Flushes any open segment on every session (parallel, like pump()).
  void finish();

  /// Moves out all queued events in the deterministic (session, emission)
  /// order and clears the queues.
  std::vector<SessionEvent> drain();

  /// Frames processed by pump() so far, across all sessions.
  std::uint64_t frames_processed() const { return frames_processed_; }

  /// Convenience driver: one trace per session, fanned out round-robin —
  /// each turn feeds up to `frames_per_turn` frames to every stream that
  /// still has input, then pumps — emulating interleaved arrival from N
  /// concurrent wearables. Finishes all streams and returns the drained
  /// events.
  std::vector<SessionEvent> run_round_robin(
      const std::vector<sensor::MultiChannelTrace>& traces,
      std::size_t frames_per_turn = 64);

 private:
  struct Lane {
    explicit Lane(std::shared_ptr<const ModelBundle> bundle)
        : session(std::move(bundle)) {}
    Session session;
    std::vector<double> pending;  ///< Buffered frames, frame-major flat.
    std::vector<SessionEvent> events;
  };

  std::shared_ptr<const ModelBundle> bundle_;
  std::vector<Lane> lanes_;
  std::uint64_t frames_processed_ = 0;
};

}  // namespace airfinger::core
