// Multi-stream serving host: N Sessions over one shared ModelBundle.
//
// The host models the production shape the ROADMAP aims at — one resident
// copy of the trained forests serving many concurrent wearable streams.
// Frames are buffered per stream (`feed`), then `pump()` advances every
// session's buffered frames in parallel on the shared thread pool
// (common/parallel.hpp). Sessions are fully independent (each task touches
// exactly one session's state; the bundle is read-only), so the pump is
// race-free by construction and — per the repo's determinism contract —
// the emitted events are bit-identical at any thread count:
//
//   * within a stream, events land in its queue in emission order,
//     produced by that stream's single task;
//   * across streams, drain() defines the total order as (session index,
//     emission order), which no scheduling can perturb.
//
// Fault isolation (DESIGN.md §12): a lane whose session throws during
// pump()/finish() — a corrupt stream in strict mode, say — is marked
// faulted and quarantined by the host instead of poisoning the pump. Its
// remaining input is discarded (and counted), later feeds are dropped, and
// sibling lanes are untouched: their emissions stay bit-identical to a run
// without the faulting neighbour, at any thread count.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/session.hpp"

namespace airfinger::core {

/// One engine event attributed to the stream that produced it.
struct SessionEvent {
  std::size_t session = 0;  ///< Index of the emitting session.
  GestureEvent event;
};

/// Drives many Sessions over one immutable bundle.
class MultiSessionHost {
 public:
  /// Creates `sessions` independent streams sharing `bundle` (no forest
  /// copies; per-stream state only). Each session uses the bundle's
  /// configured fault policy.
  MultiSessionHost(std::shared_ptr<const ModelBundle> bundle,
                   std::size_t sessions);

  /// Same, with an explicit fault policy applied to every session.
  MultiSessionHost(std::shared_ptr<const ModelBundle> bundle,
                   std::size_t sessions, FaultPolicy policy);

  std::size_t session_count() const { return lanes_.size(); }
  const std::shared_ptr<const ModelBundle>& bundle() const {
    return bundle_;
  }
  const Session& session(std::size_t i) const;

  /// Mutable lane access for observability configuration (clock injection,
  /// span toggling) before driving the host. Must not be used to push
  /// frames directly — feed()/pump() own the streaming contract.
  Session& mutable_session(std::size_t i);

  /// Buffers one frame (one sample per channel) for stream `session`.
  /// O(channels); no processing happens until pump(). Frames fed to a
  /// faulted (quarantined) lane are silently dropped and counted in
  /// dropped_frames() — the producing stream keeps running.
  void feed(std::size_t session, std::span<const double> frame);

  /// Processes every stream's buffered frames, one parallel task per
  /// session. Events are appended to per-session queues in emission order.
  void pump();

  /// Flushes any open segment on every session (parallel, like pump()).
  void finish();

  /// Moves out all queued events in the deterministic (session, emission)
  /// order and clears the queues.
  std::vector<SessionEvent> drain();

  /// Frames processed by pump() so far, across all sessions.
  std::uint64_t frames_processed() const { return frames_processed_; }

  // ------------------------------------------------------- stream health

  /// True when the lane's session threw during pump()/finish() and was
  /// quarantined by the host.
  bool session_faulted(std::size_t i) const;

  /// what() of the exception that quarantined the lane ("" while healthy).
  const std::string& session_fault(std::size_t i) const;

  /// Frames discarded because the lane was already faulted (buffered input
  /// at fault time plus everything fed afterwards).
  std::uint64_t dropped_frames(std::size_t i) const;

  /// Number of currently faulted lanes.
  std::size_t faulted_count() const;

  /// Sum of every session's HealthStats (faulted lanes contribute their
  /// counters up to the fault).
  HealthStats aggregate_health() const;

  /// Host-wide metrics view (DESIGN.md §13): every session's registry
  /// snapshot merged in deterministic lane order (index-wise saturating
  /// adds over the shared schema; faulted lanes contribute their counters
  /// up to the fault), followed by host-level series — lane/fault counts,
  /// frames processed and dropped, and the bundle's load time. Lock-free:
  /// call between pump() rounds (sessions are single-writer; the host
  /// reads only quiescent registries).
  obs::MetricsSnapshot aggregate_metrics() const;

  /// Convenience driver: one trace per session, fanned out round-robin —
  /// each turn feeds up to `frames_per_turn` frames to every stream that
  /// still has input, then pumps — emulating interleaved arrival from N
  /// concurrent wearables. Finishes all streams and returns the drained
  /// events.
  std::vector<SessionEvent> run_round_robin(
      const std::vector<sensor::MultiChannelTrace>& traces,
      std::size_t frames_per_turn = 64);

 private:
  struct Lane {
    Lane(std::shared_ptr<const ModelBundle> bundle, FaultPolicy policy)
        : session(std::move(bundle), policy) {}
    Session session;
    std::vector<double> pending;  ///< Buffered frames, frame-major flat.
    std::vector<SessionEvent> events;
    bool faulted = false;         ///< Quarantined by the host.
    std::string fault;            ///< what() of the quarantining exception.
    std::uint64_t dropped = 0;    ///< Frames discarded after the fault.
  };

  std::shared_ptr<const ModelBundle> bundle_;
  std::vector<Lane> lanes_;
  std::uint64_t frames_processed_ = 0;
};

}  // namespace airfinger::core
