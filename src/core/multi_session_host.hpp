// Sharded multi-stream serving host: N Sessions over one shared
// ModelBundle, hashed across S lanes-per-shard worker threads.
//
// The host models the production shape the ROADMAP aims at — one resident
// copy of the trained forests serving thousands of concurrent wearable
// streams. Each session (lane) is hashed to a shard (`index % shards`);
// each shard owns one long-lived worker thread and drains its lanes'
// bounded SPSC ingest rings (common/spsc_ring.hpp) continuously, so the
// producer's `feed()` overlaps with parallel classification instead of
// alternating with it behind a fork/join barrier (the pre-shard design's
// scaling wall, ROADMAP item 1). `pump()` is an epoch barrier: it returns
// once every frame fed so far has been processed and all workers are
// parked, which is when the aggregate views (drain/metrics/health) are
// coherent.
//
// Determinism (DESIGN.md §9/§14): sessions are fully independent and each
// lane's frames are processed in feed order by exactly one thread, so a
// lane's emission stream is a pure function of its input — independent of
// shard count, thread count, ring capacity, and scheduling. drain()
// defines the total order as (session index, emission order), which no
// scheduling can perturb. The host is bit-identical across shard counts,
// including the shardless inline mode (shards == 1: no threads at all,
// frames drain on the caller).
//
// Backpressure & admission (DESIGN.md §14): rings are bounded. When a
// lane's ring is full, Admission::kBlock (default, lossless) makes feed()
// wait for the shard worker to make room (in inline mode the caller drains
// the lane itself), while Admission::kReject makes feed() refuse the frame
// and count it — per-lane rejected/blocked/high-water counters surface
// through aggregate_metrics().
//
// Fault isolation (DESIGN.md §12): a lane whose session throws — a corrupt
// stream in strict mode, say — is marked faulted and quarantined by the
// host instead of poisoning its shard. Its remaining ring input is
// discarded (and counted), later feeds are dropped, and sibling lanes are
// untouched: their emissions stay bit-identical to a run without the
// faulting neighbour, at any shard count.
//
// Threading contract: pump(), finish(), drain(), the lifecycle calls, and
// every read accessor belong to ONE owner thread (the producer). Reads and
// lifecycle mutations quiesce the shards internally, so they are always
// coherent. feed() is normally called from that same owner thread; in
// *threaded* mode (shard_count() >= 2) it may additionally be called from
// several producer threads concurrently, provided each lane has at most
// one feeder at a time — feed() touches only that lane's ring/counters
// plus its shard's park flag, so disjoint-lane feeders never share
// mutable state. (Inline mode drains on the feeding thread through shared
// scratch: single feeder only.) The owner-thread calls may resume only
// after the extra feeders are joined (an external happens-before edge).
// run_round_robin_parallel() packages this pattern.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/spsc_ring.hpp"
#include "core/session.hpp"

namespace airfinger::core {

/// One engine event attributed to the stream that produced it.
struct SessionEvent {
  std::size_t session = 0;  ///< Index of the emitting session.
  GestureEvent event;
};

/// Point-in-time utilization view of one worker shard (DESIGN.md §18).
/// All fields are scheduling-dependent — they describe how the load was
/// actually served, so they legitimately vary across machines, runs, and
/// shard counts (unlike the emission stream, which never does). Counters
/// are cumulative since construction; in inline mode (one shard, no
/// workers) the caller thread plays the worker and parks/busy time stay 0.
struct ShardTelemetry {
  std::size_t shard = 0;             ///< Shard index.
  std::size_t lanes = 0;             ///< Lanes currently hashed to it.
  std::uint64_t parks = 0;           ///< Worker park events.
  std::uint64_t unparks = 0;         ///< Worker wake events.
  std::uint64_t frames_drained = 0;  ///< Frames this shard classified.
  std::uint64_t drain_batches = 0;   ///< Non-empty drain sweeps per lane.
  std::uint64_t idle_passes = 0;     ///< Sweeps that found nothing queued.
  std::uint64_t busy_ns = 0;         ///< Wall time inside draining sweeps.
  std::uint64_t parked_ns = 0;       ///< Wall time parked on the cv.
  double drain_batch_p50 = 0.0;      ///< Median frames per non-empty drain.
  double queue_wait_p50_ns = 0.0;    ///< Median ring residency (ns).
  double queue_wait_p99_ns = 0.0;    ///< Tail ring residency (ns).
  std::size_t occupancy_high_water = 0;  ///< Max frames queued on one lane.

  /// Fraction of accounted wall time spent draining (busy vs parked).
  /// 0 when nothing was accounted yet (or tracing is compiled out).
  double busy_fraction() const {
    const double accounted =
        static_cast<double>(busy_ns) + static_cast<double>(parked_ns);
    return accounted > 0.0 ? static_cast<double>(busy_ns) / accounted : 0.0;
  }
};

/// What feed() does when a lane's ingest ring is full.
enum class Admission : std::uint8_t {
  kBlock = 0,  ///< Lossless: wait for the consumer to make room.
  kReject,     ///< Bounded-latency: refuse the frame and count it.
};

/// Host shape: shard/ring/admission configuration, fixed at construction.
struct HostConfig {
  /// Worker shards. 0 resolves to common::current_thread_count() (so
  /// AF_THREADS / ScopedThreads govern the host like every other parallel
  /// component); the resolved count is capped at the session count.
  /// 1 selects inline mode: no worker threads, frames are drained on the
  /// caller thread — the bit-identical single-thread reference.
  std::size_t shards = 0;
  /// Per-lane ingest ring capacity in frames (>= 1).
  std::size_t ring_frames = 1024;
  Admission admission = Admission::kBlock;
};

/// Drives many Sessions over one immutable bundle.
class MultiSessionHost {
 public:
  /// Creates `sessions` independent streams sharing `bundle` (no forest
  /// copies; per-stream state only). Each session uses the bundle's
  /// configured fault policy.
  MultiSessionHost(std::shared_ptr<const ModelBundle> bundle,
                   std::size_t sessions);

  /// Same, with an explicit fault policy applied to every session.
  MultiSessionHost(std::shared_ptr<const ModelBundle> bundle,
                   std::size_t sessions, FaultPolicy policy);

  /// Full control over policy and host shape.
  MultiSessionHost(std::shared_ptr<const ModelBundle> bundle,
                   std::size_t sessions, FaultPolicy policy,
                   HostConfig config);

  /// Joins the shard workers; any still-queued frames are discarded.
  ~MultiSessionHost();

  MultiSessionHost(const MultiSessionHost&) = delete;
  MultiSessionHost& operator=(const MultiSessionHost&) = delete;

  std::size_t session_count() const { return lanes_.size(); }
  /// Worker shards actually running (1 in inline mode).
  std::size_t shard_count() const { return shard_count_; }
  const HostConfig& host_config() const { return config_; }
  const std::shared_ptr<const ModelBundle>& bundle() const {
    return bundle_;
  }

  /// Quiesces the shards, then returns the lane's session. The lane must
  /// not be retired.
  const Session& session(std::size_t i) const;

  /// Mutable lane access for observability configuration (clock injection,
  /// span toggling) before driving the host. Quiesces first. Must not be
  /// used to push frames directly — feed()/pump() own the streaming
  /// contract.
  Session& mutable_session(std::size_t i);

  /// Enqueues one frame (one sample per channel) for stream `session` on
  /// its shard's ingest ring; the shard worker classifies it
  /// concurrently (inline mode: on the next pump(), or immediately when
  /// the ring fills under kBlock). Returns true when the frame was
  /// accepted. False means the frame was refused and counted: the lane is
  /// faulted (dropped_frames), retired, or its ring was full under
  /// Admission::kReject (rejected_frames). Under kBlock a full ring blocks
  /// until the worker makes room instead.
  bool feed(std::size_t session, std::span<const double> frame);

  /// Epoch barrier: returns once every frame fed so far has been fully
  /// processed and all shard workers are parked. After pump() the host is
  /// quiescent: drain(), metrics, and health views are coherent and
  /// complete.
  void pump();

  /// Quiesces, then flushes any open segment on every healthy session.
  void finish();

  /// Quiesces, then moves out all queued events in the deterministic
  /// (session index, emission order) total order and clears the queues.
  std::vector<SessionEvent> drain();

  /// Frames fully processed so far, across all sessions (quiesces).
  std::uint64_t frames_processed() const;

  // --------------------------------------------------- session lifecycle

  /// Adds one lane (quiesces first), hashed to shard `index % shards`.
  /// Returns the new session index. O(1) against the shared bundle.
  std::size_t add_session();

  /// Retires a lane between epochs (quiesces first): discards and counts
  /// anything still queued, captures the session's final health/metrics
  /// for the aggregate views, and frees its per-stream state. The index
  /// stays valid (indices are stable); feeding a retired lane counts into
  /// rejected_frames(). Idempotent.
  void remove_session(std::size_t i);

  /// True when the lane was retired by remove_session().
  bool session_retired(std::size_t i) const;

  // ------------------------------------------------------- stream health

  /// True when the lane's session threw during processing and was
  /// quarantined by the host.
  bool session_faulted(std::size_t i) const;

  /// what() of the exception that quarantined the lane ("" while healthy).
  const std::string& session_fault(std::size_t i) const;

  /// Frames discarded because the lane could no longer process them:
  /// queued input at fault/retire time plus everything fed afterwards.
  std::uint64_t dropped_frames(std::size_t i) const;

  /// Frames refused by admission control (ring full under
  /// Admission::kReject) or fed to a retired lane.
  std::uint64_t rejected_frames(std::size_t i) const;

  /// feed() calls that had to wait for ring space under Admission::kBlock.
  std::uint64_t blocked_feeds(std::size_t i) const;

  /// Highest ring occupancy (in frames) this lane has seen.
  std::size_t ring_high_water(std::size_t i) const;

  /// Number of currently faulted lanes.
  std::size_t faulted_count() const;

  /// Sum of every session's HealthStats (faulted lanes contribute their
  /// counters up to the fault, retired lanes their final counters).
  HealthStats aggregate_health() const;

  /// Host-wide metrics view (DESIGN.md §13/§14): every session's registry
  /// snapshot merged in deterministic lane order (index-wise saturating
  /// adds over the shared schema; retired lanes contribute the snapshot
  /// captured at retirement), followed by host-level series — lane /
  /// fault / retire counts, frames processed, dropped, and rejected.
  /// Those are all deterministic, so the default exposition keeps the
  /// repo-wide invariance contract: byte-identical at any thread or shard
  /// count. `include_load_series` appends the scheduling-dependent load
  /// series too — shard count, ring capacity, ring high-water, blocked
  /// feeds, and the per-shard utilization series (af_shard<i>_*: parks,
  /// busy/parked time, drain batch sizes, queue wait) — which legitimately
  /// vary across machines and runs. Quiesces the shards first, so the
  /// view is coherent.
  obs::MetricsSnapshot aggregate_metrics(
      bool include_load_series = false) const;

  /// Per-shard utilization counters (quiesces first): park/unpark counts,
  /// busy vs parked wall time, drained frame/batch totals with a batch
  /// size median, queue-wait quantiles from the ingest-stamp side-channel,
  /// and the highest ring occupancy among the shard's lanes. Inline mode
  /// exposes shard 0 (the caller-thread pseudo-shard). Counters only move
  /// when tracing is compiled in (AF_OBS_TRACE, DESIGN.md §18); with it
  /// off, the shape is served with everything zero.
  ShardTelemetry shard_telemetry(std::size_t shard) const;

  /// Convenience driver: one trace per session, fanned out round-robin —
  /// each turn feeds up to `frames_per_turn` frames to every stream that
  /// still has input, emulating interleaved arrival from N concurrent
  /// wearables; shard workers classify concurrently under ring
  /// backpressure. Finishes all streams and returns the drained events.
  std::vector<SessionEvent> run_round_robin(
      const std::vector<sensor::MultiChannelTrace>& traces,
      std::size_t frames_per_turn = 64);

  /// run_round_robin() with one producer thread per shard: feeder s
  /// streams exactly the lanes hashed to shard s (index % shard_count()),
  /// round-robin within them, so the sweep measures the host instead of a
  /// single-threaded producer. Per-lane feed order is identical to
  /// run_round_robin() — the drained events are bit-identical; only the
  /// cross-lane interleaving (which determinism never observes) differs.
  /// Inline mode (no workers) falls back to the single-feeder loop.
  std::vector<SessionEvent> run_round_robin_parallel(
      const std::vector<sensor::MultiChannelTrace>& traces,
      std::size_t frames_per_turn = 64);

 private:
  // Lane field groups are cache-line-separated by ownership: in threaded
  // mode the shard worker bumps `processed` on every frame while the
  // producer bumps `high_water` on every feed *and* polls `faulted` /
  // `retired` — if those lived on one line, each side's writes would keep
  // evicting the other's hot line (false sharing; measured as the
  // inverted 1→4-shard throughput curve this layout fixed). alignas(64)
  // on each group start plus the ring's own 64-byte alignment (which
  // rounds sizeof(Lane) to whole lines) keeps every group private.
  struct Lane {
    /// `stamp_stride` is the ring's ingest-stamp stride: the channel count
    /// when gesture tracing is compiled in (feed() stamps every frame so
    /// queue_wait is measurable), 0 otherwise (no stamp storage at all).
    Lane(std::size_t index, std::shared_ptr<const ModelBundle> bundle,
         FaultPolicy policy, std::size_t ring_capacity,
         std::size_t stamp_stride);

    const std::size_t index;
    common::SpscRing<double> ring;  ///< Frame-aligned ingest queue.

    // ---- consumer-side state: owned by the lane's shard worker (or the
    // caller thread in inline mode / at quiescence).
    alignas(64) std::optional<Session> session;
    std::vector<SessionEvent> events;
    Session::EventCallback sink;    ///< Appends to `events`; built once.
    std::uint64_t processed = 0;    ///< Frames classified successfully.
    std::uint64_t dropped_consumer = 0;  ///< Ring discards after fault/retire.
    std::string fault;              ///< what() of the quarantining exception.

    // ---- flags written at fault/retire time, read by the producer on
    // *every* feed() to short-circuit: they get their own (rarely
    // invalidated) line so the polling stays a shared cache hit.
    // `faulted` flips inside the worker, hence atomic; `retired` flips
    // only at quiescence.
    alignas(64) std::atomic<bool> faulted{false};
    bool retired = false;

    // ---- producer-side counters: only the lane's feeder touches these.
    alignas(64) std::uint64_t dropped_producer = 0;  ///< Refused post-fault.
    std::uint64_t rejected = 0;      ///< Admission rejects + retired feeds.
    std::uint64_t blocked = 0;       ///< feed() waits under kBlock.
    std::size_t high_water = 0;      ///< Max ring occupancy in frames.

    // ---- captured by remove_session() before the session is freed.
    alignas(64) HealthStats final_health;
    obs::MetricsSnapshot final_metrics;
  };

  struct Shard;       // worker state + parking synchronization (in the .cpp)
  struct ShardStats;  // per-shard telemetry registry (in the .cpp)

  /// Drains up to `max_frames` frames from one lane's ring through its
  /// session (or discards them when the lane is faulted/retired). Returns
  /// the number of frames consumed. Caller must own the consumer side.
  /// `stats` (may be null) collects drained-frame/batch counts and the
  /// queue wait of the batch's oldest frame; a lane fault additionally
  /// dumps the session's flight recorder before quarantine.
  static std::size_t drain_lane(Lane& lane, std::span<double> frame,
                                std::size_t max_frames, ShardStats* stats);

  void worker_loop(Shard& shard);
  /// The epoch barrier behind pump() and every read accessor: blocks until
  /// each shard worker is parked with empty rings — or, in inline mode,
  /// drains every lane's ring on the caller. Either way, on return every
  /// frame fed so far has been fully processed. Const because the logical
  /// host state it leaves behind is exactly what the caller already
  /// requested by feeding; lanes are reached through their own indirection.
  void quiesce() const;
  const Lane& lane_at(std::size_t i) const;

  std::shared_ptr<const ModelBundle> bundle_;
  HostConfig config_;
  std::size_t shard_count_ = 1;
  FaultPolicy policy_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::vector<std::unique_ptr<Shard>> shards_;  ///< Empty in inline mode.
  /// One telemetry block per shard, always shard_count_ entries (inline
  /// mode keeps a caller-thread pseudo-shard at index 0). Mutable for the
  /// same reason as scratch_frame_: quiesce() is logically const but the
  /// inline drains it performs are accounted here.
  mutable std::vector<std::unique_ptr<ShardStats>> shard_stats_;
  std::vector<std::thread> workers_;
  /// Caller-side drain scratch (mutable: quiesce() is logically const but
  /// drains inline-mode rings through it).
  mutable std::vector<double> scratch_frame_;
};

}  // namespace airfinger::core
