#include "core/interference_filter.hpp"

#include <istream>
#include <ostream>

#include "common/error.hpp"
#include "ml/serialize.hpp"

namespace airfinger::core {

InterferenceFilter::InterferenceFilter(const features::FeatureBank& bank,
                                       InterferenceFilterConfig config)
    : config_(config),
      indices_(bank.interference_indices()),
      bank_width_(bank.feature_count()),
      forest_(config.forest) {}

void InterferenceFilter::fit(const ml::SampleSet& full_features) {
  full_features.validate();
  AF_EXPECT(full_features.feature_count() == bank_width_,
            "training rows must carry the full candidate bank");
  for (int l : full_features.labels)
    AF_EXPECT(l == 0 || l == 1, "interference labels must be binary");

  if (config_.importance_selection) {
    // The paper's procedure (Sec. IV-F): rank the candidate features by RF
    // importance feedback on the gesture/non-gesture problem and keep the
    // most effective ones.
    ml::RandomForestConfig ranking_config = config_.forest;
    ranking_config.seed ^= 0xF117E5;
    ml::RandomForest ranking(ranking_config);
    ranking.fit(full_features);
    indices_ = ml::top_k_features(ranking, config_.selected_features);
  }
  forest_ = ml::RandomForest(config_.forest);
  forest_.fit(full_features.project(indices_));
  compiled_ = ml::CompiledForest(forest_);
  fitted_ = true;
}

void InterferenceFilter::save(std::ostream& os) const {
  AF_EXPECT(fitted_, "cannot save an unfitted filter");
  os << "af_filter 1\n";
  os << "bank_width " << bank_width_ << "\n";
  os << "indices " << indices_.size();
  for (std::size_t idx : indices_) os << ' ' << idx;
  os << "\n";
  forest_.save(os);
}

InterferenceFilter InterferenceFilter::load(std::istream& is,
                                            const features::FeatureBank& bank,
                                            InterferenceFilterConfig config) {
  ml::detail::expect_tag(is, "af_filter");
  int version = 0;
  is >> version;
  AF_EXPECT(version == 1, "unsupported filter format version");

  InterferenceFilter filter(bank, config);
  ml::detail::expect_tag(is, "bank_width");
  std::size_t width = 0;
  is >> width;
  AF_EXPECT(width == filter.bank_width_,
            "serialized filter was trained with a different feature bank");
  ml::detail::expect_tag(is, "indices");
  std::size_t count = 0;
  is >> count;
  AF_EXPECT(count >= 1 && is.good(), "malformed indices in filter");
  AF_EXPECT(count <= width,
            "serialized filter selects more features than the bank "
            "provides (corrupt input?)");
  filter.indices_.resize(count);
  for (auto& idx : filter.indices_) {
    is >> idx;
    AF_EXPECT(idx < width, "filter feature index out of range");
  }
  filter.forest_ = ml::RandomForest::load(is);
  filter.compiled_ = ml::CompiledForest(filter.forest_);
  filter.fitted_ = true;
  return filter;
}

std::vector<double> InterferenceFilter::project(
    std::span<const double> row) const {
  AF_EXPECT(row.size() == bank_width_,
            "rows must carry the full candidate bank");
  std::vector<double> out;
  out.reserve(indices_.size());
  for (std::size_t i : indices_) out.push_back(row[i]);
  return out;
}

bool InterferenceFilter::is_gesture(std::span<const double> row) const {
  AF_EXPECT(fitted_, "is_gesture requires a fitted filter");
  return forest_.predict(project(row)) == 1;
}

double InterferenceFilter::gesture_probability(
    std::span<const double> row) const {
  AF_EXPECT(fitted_, "gesture_probability requires a fitted filter");
  const auto proba = forest_.predict_proba(project(row));
  return proba.size() > 1 ? proba[1] : 0.0;
}

double InterferenceFilter::gesture_probability_with(
    std::span<const double> row, common::ScratchArena& arena) const {
  AF_EXPECT(fitted_, "gesture_probability requires a fitted filter");
  AF_EXPECT(row.size() == bank_width_,
            "rows must carry the full candidate bank");
  const auto filter_frame = arena.frame();
  const std::span<double> projected = arena.alloc<double>(indices_.size());
  for (std::size_t i = 0; i < indices_.size(); ++i)
    projected[i] = row[indices_[i]];
  const std::span<double> proba =
      arena.alloc<double>(compiled_.num_classes());
  compiled_.predict_proba_into(projected, proba);
  return proba.size() > 1 ? proba[1] : 0.0;
}

}  // namespace airfinger::core
