// Signal-ascending-point detection shared by ZEBRA (Sec. IV-D) and the
// detect/track gesture router (Sec. IV-E).
//
// Within a segmented gesture window, a photodiode channel "has an ascending
// point" when its ΔRSS² rises decisively above its in-window noise floor;
// the paper uses SBC output for this. A channel whose peak stays below a
// fraction of the strongest channel's peak is considered to have no
// ascending point (the finger never entered that photodiode's cone).
#pragma once

#include <optional>
#include <span>

#include "common/arena.hpp"
#include "common/inline_vector.hpp"
#include "dsp/dynamic_threshold.hpp"

namespace airfinger::core {

/// Upper bound on photodiode channels the timing analysis supports. The
/// paper's prototype has 3 (the 2-D cross variant has 5); per-channel
/// results are held inline (no heap) up to this bound.
inline constexpr std::size_t kMaxTimingChannels = 8;

/// Tunables of the ascending-point detector.
struct AscendingConfig {
  /// Onset threshold: floor + rise_fraction · (peak − floor), where floor
  /// is the channel's in-window 20th-percentile level. Detect-aimed
  /// gestures make every channel cross this onset almost simultaneously;
  /// a scrolling finger reaches each photodiode's cone in sequence.
  double rise_fraction = 0.25;
  /// Percentile (0–1) defining the channel noise floor inside the window.
  double floor_quantile = 0.05;
  /// Consecutive samples required above the threshold to confirm a rise
  /// (rejects single-sample noise spikes).
  std::size_t confirm_samples = 2;
  /// Channels whose peak is below this fraction of the strongest channel's
  /// peak are treated as silent (no ascending point).
  double silence_fraction = 0.12;

  bool operator==(const AscendingConfig&) const = default;
};

/// Per-channel ascending-point result for one gesture window. Value type
/// with inline storage: returning one performs no heap allocation.
struct AscendingPoints {
  /// ascending[c] = sample index (relative to the window) of channel c's
  /// ascending point, or nullopt when the channel stayed silent.
  common::InlineVector<std::optional<std::size_t>, kMaxTimingChannels>
      ascending;
  /// Peak ΔRSS² per channel within the window.
  common::InlineVector<double, kMaxTimingChannels> peaks;
};

/// Detects ascending points for all channels over the same window.
/// `windows[c]` is channel c's ΔRSS² restricted to the gesture segment.
/// Internal scratch (quantile sort buffers) comes from `arena`; the arena
/// is restored before returning.
AscendingPoints find_ascending_points(
    std::span<const std::span<const double>> windows,
    const AscendingConfig& config, common::ScratchArena& arena);

/// find_ascending_points() with a transient internal arena.
AscendingPoints find_ascending_points(
    std::span<const std::span<const double>> windows,
    const AscendingConfig& config = {});

/// Integral timing analysis of one gesture window.
///
/// The paper compares single ascending points of P1 and P3; with noisy
/// spiky ΔRSS² the robust integral equivalent is the *energy-centroid time*
/// of each channel, τ_c = Σ t·E_c(t) / Σ E_c(t): for a scrolling finger the
/// channel energies arrive in spatial order, so τ_1 < τ_2 < τ_3 with the
/// outer difference equal to the transit time; for a fixed-spot micro
/// gesture every channel sees the same (scaled) energy profile and all τ_c
/// coincide. The summed-energy envelope's hump count separates single
/// sweeps (scrolls: one hump) from cyclic gestures (several humps).
struct SegmentTiming {
  /// Channel rose above the silence level.
  common::InlineVector<bool, kMaxTimingChannels> active;
  /// Energy-centroid time per channel.
  common::InlineVector<double, kMaxTimingChannels> tau_s;
  int first_active = -1;        ///< Lowest-index active channel.
  int last_active = -1;         ///< Highest-index active channel.
  /// τ(last_active) − τ(first_active); > 0 means energy reached the P1 side
  /// first (finger moved P1 → P3). 0 when fewer than 2 channels are active.
  double dt_outer_s = 0.0;
  /// Number of major humps of the smoothed summed-energy envelope.
  std::size_t envelope_peaks = 0;
  /// Spatial asymmetry A(t) = (E_P3 − E_P1)/(ΣE + ε): net change over the
  /// window. A scroll sweeps A monotonically (|ΔA| large, sign = α); every
  /// fixed-spot or cyclic gesture returns A to its start (ΔA ≈ 0). This is
  /// the integral form of "P1's ascending point precedes P3's".
  double asymmetry_start = 0.0;
  double asymmetry_end = 0.0;
  double asymmetry_delta = 0.0;
  /// Transit time: how long A takes to cross the middle half of its swing
  /// (scaled to the full swing); the Δt of Alg. 1. 0 when ΔA ≈ 0.
  double transition_s = 0.0;
  /// Range of A over the differential-gated path (max − min).
  double asymmetry_range = 0.0;
  /// Direction reversals of the differential-gated A path, counted with
  /// hysteresis: 0 for a monotone sweep (scroll), ≥ 1 for cyclic gestures
  /// whose A returns (rub, circle) or wanders.
  std::size_t asymmetry_reversals = 0;
};

/// Parameters of the integral timing analysis.
struct TimingConfig {
  AscendingConfig ascending{};  ///< Silence detection reuses this.
  double envelope_smooth_s = 0.22;  ///< Envelope moving-average width.
  double peak_level = 0.30;     ///< Humps must exceed this × envelope max.
  double peak_support_s = 0.10; ///< Humps must dominate ± this span.
  double asymmetry_smooth_s = 0.15;  ///< Smoothing before computing A(t).
  /// Fraction of the window averaged to estimate A at each end.
  double edge_fraction = 0.18;
  /// ε floor in the A(t) denominator, as a fraction of the envelope peak
  /// (pulls A towards 0 where no energy is present).
  double epsilon_fraction = 0.05;
  /// Seconds of context added on each side of the detected segment before
  /// the analysis: a scroll's asymmetry swing lives partly in the faded
  /// approach/exit phases just outside the segmented energy burst.
  double analysis_pad_s = 0.25;
  /// Samples participate in the A path only where the differential weight
  /// exceeds this fraction of its in-window maximum.
  double gate_fraction = 0.15;
  /// ...and where the summed energy exceeds this fraction of its peak:
  /// low-energy onset/offset transients carry deceptive asymmetry.
  double energy_gate_fraction = 0.08;
  /// Reversal hysteresis: a direction change must retrace at least
  /// max(reversal_abs, reversal_rel × range) to count.
  double reversal_abs = 0.22;
  double reversal_rel = 0.40;

  /// Exact equality lets the decision core prove that two analyses (router
  /// and ZEBRA) would compute the same SegmentTiming and share one.
  bool operator==(const TimingConfig&) const = default;
};

/// Expands a segment by the config's analysis padding, clamped to the
/// signal length.
dsp::Segment pad_segment(const dsp::Segment& segment, std::size_t limit,
                         double pad_s, double sample_rate_hz);

/// Computes the integral timing of a gesture window at `sample_rate_hz`.
/// All working arrays (envelopes, smoothed channels, the asymmetry path)
/// come from `arena`, which is restored before returning: once the arena
/// reaches its high-water mark the analysis is allocation-free. Results
/// are bit-identical to the arena-less overload.
SegmentTiming segment_timing(std::span<const std::span<const double>> windows,
                             double sample_rate_hz,
                             const TimingConfig& config,
                             common::ScratchArena& arena);

/// segment_timing() with a transient internal arena.
SegmentTiming segment_timing(std::span<const std::span<const double>> windows,
                             double sample_rate_hz,
                             const TimingConfig& config = {});

namespace detail {
// Building blocks of segment_timing(), shared with the incremental
// open-segment cache (timing_cache.hpp) so both paths run the *same* scalar
// code on the same intermediate arrays — bit-identity by construction.

/// Ascending-point run scan of one channel at a known peak and noise floor.
std::optional<std::size_t> ascending_onset(std::span<const double> w,
                                           double peak, double floor,
                                           const AscendingConfig& config);

/// Envelope hump count from the smoothed summed-energy envelope.
void envelope_stats(std::span<const double> envelope, double sample_rate_hz,
                    const TimingConfig& config, SegmentTiming& out);

/// Asymmetry-path statistics (ΔA, transit, range, reversals) from the
/// smoothed outer-channel and summed energies. Scratch from `arena`.
void asymmetry_stats(std::span<const double> e1, std::span<const double> e3,
                     std::span<const double> esum, double sample_rate_hz,
                     const TimingConfig& config, common::ScratchArena& arena,
                     SegmentTiming& out);

/// The tercile / transit / range / reversal folds of asymmetry_stats()
/// over a precomputed asymmetry path `a` and differential-weight sequence
/// `w`. `total_w` / `max_w` must be the ascending-order fold results over
/// `w` (sum from 0.0 / max with 0.0). Shared with the incremental
/// open-segment cache, which stores a/w and resumes the weight folds from
/// finalized-frontier checkpoints — running the *same* fold code here is
/// what makes the two paths bit-identical by construction.
void asymmetry_folds(std::span<const double> a, std::span<const double> w,
                     double total_w, double max_w, double sample_rate_hz,
                     const TimingConfig& config, SegmentTiming& out);
}  // namespace detail

}  // namespace airfinger::core
