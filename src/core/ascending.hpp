// Signal-ascending-point detection shared by ZEBRA (Sec. IV-D) and the
// detect/track gesture router (Sec. IV-E).
//
// Within a segmented gesture window, a photodiode channel "has an ascending
// point" when its ΔRSS² rises decisively above its in-window noise floor;
// the paper uses SBC output for this. A channel whose peak stays below a
// fraction of the strongest channel's peak is considered to have no
// ascending point (the finger never entered that photodiode's cone).
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "dsp/dynamic_threshold.hpp"

namespace airfinger::core {

/// Tunables of the ascending-point detector.
struct AscendingConfig {
  /// Onset threshold: floor + rise_fraction · (peak − floor), where floor
  /// is the channel's in-window 20th-percentile level. Detect-aimed
  /// gestures make every channel cross this onset almost simultaneously;
  /// a scrolling finger reaches each photodiode's cone in sequence.
  double rise_fraction = 0.25;
  /// Percentile (0–1) defining the channel noise floor inside the window.
  double floor_quantile = 0.05;
  /// Consecutive samples required above the threshold to confirm a rise
  /// (rejects single-sample noise spikes).
  std::size_t confirm_samples = 2;
  /// Channels whose peak is below this fraction of the strongest channel's
  /// peak are treated as silent (no ascending point).
  double silence_fraction = 0.12;
};

/// Per-channel ascending-point result for one gesture window.
struct AscendingPoints {
  /// ascending[c] = sample index (relative to the window) of channel c's
  /// ascending point, or nullopt when the channel stayed silent.
  std::vector<std::optional<std::size_t>> ascending;
  /// Peak ΔRSS² per channel within the window.
  std::vector<double> peaks;
};

/// Detects ascending points for all channels over the same window.
/// `windows[c]` is channel c's ΔRSS² restricted to the gesture segment.
AscendingPoints find_ascending_points(
    std::span<const std::span<const double>> windows,
    const AscendingConfig& config = {});

/// Integral timing analysis of one gesture window.
///
/// The paper compares single ascending points of P1 and P3; with noisy
/// spiky ΔRSS² the robust integral equivalent is the *energy-centroid time*
/// of each channel, τ_c = Σ t·E_c(t) / Σ E_c(t): for a scrolling finger the
/// channel energies arrive in spatial order, so τ_1 < τ_2 < τ_3 with the
/// outer difference equal to the transit time; for a fixed-spot micro
/// gesture every channel sees the same (scaled) energy profile and all τ_c
/// coincide. The summed-energy envelope's hump count separates single
/// sweeps (scrolls: one hump) from cyclic gestures (several humps).
struct SegmentTiming {
  std::vector<bool> active;     ///< Channel rose above the silence level.
  std::vector<double> tau_s;    ///< Energy-centroid time per channel.
  int first_active = -1;        ///< Lowest-index active channel.
  int last_active = -1;         ///< Highest-index active channel.
  /// τ(last_active) − τ(first_active); > 0 means energy reached the P1 side
  /// first (finger moved P1 → P3). 0 when fewer than 2 channels are active.
  double dt_outer_s = 0.0;
  /// Number of major humps of the smoothed summed-energy envelope.
  std::size_t envelope_peaks = 0;
  /// Spatial asymmetry A(t) = (E_P3 − E_P1)/(ΣE + ε): net change over the
  /// window. A scroll sweeps A monotonically (|ΔA| large, sign = α); every
  /// fixed-spot or cyclic gesture returns A to its start (ΔA ≈ 0). This is
  /// the integral form of "P1's ascending point precedes P3's".
  double asymmetry_start = 0.0;
  double asymmetry_end = 0.0;
  double asymmetry_delta = 0.0;
  /// Transit time: how long A takes to cross the middle half of its swing
  /// (scaled to the full swing); the Δt of Alg. 1. 0 when ΔA ≈ 0.
  double transition_s = 0.0;
  /// Range of A over the differential-gated path (max − min).
  double asymmetry_range = 0.0;
  /// Direction reversals of the differential-gated A path, counted with
  /// hysteresis: 0 for a monotone sweep (scroll), ≥ 1 for cyclic gestures
  /// whose A returns (rub, circle) or wanders.
  std::size_t asymmetry_reversals = 0;
};

/// Parameters of the integral timing analysis.
struct TimingConfig {
  AscendingConfig ascending{};  ///< Silence detection reuses this.
  double envelope_smooth_s = 0.22;  ///< Envelope moving-average width.
  double peak_level = 0.30;     ///< Humps must exceed this × envelope max.
  double peak_support_s = 0.10; ///< Humps must dominate ± this span.
  double asymmetry_smooth_s = 0.15;  ///< Smoothing before computing A(t).
  /// Fraction of the window averaged to estimate A at each end.
  double edge_fraction = 0.18;
  /// ε floor in the A(t) denominator, as a fraction of the envelope peak
  /// (pulls A towards 0 where no energy is present).
  double epsilon_fraction = 0.05;
  /// Seconds of context added on each side of the detected segment before
  /// the analysis: a scroll's asymmetry swing lives partly in the faded
  /// approach/exit phases just outside the segmented energy burst.
  double analysis_pad_s = 0.25;
  /// Samples participate in the A path only where the differential weight
  /// exceeds this fraction of its in-window maximum.
  double gate_fraction = 0.15;
  /// ...and where the summed energy exceeds this fraction of its peak:
  /// low-energy onset/offset transients carry deceptive asymmetry.
  double energy_gate_fraction = 0.08;
  /// Reversal hysteresis: a direction change must retrace at least
  /// max(reversal_abs, reversal_rel × range) to count.
  double reversal_abs = 0.22;
  double reversal_rel = 0.40;
};

/// Expands a segment by the config's analysis padding, clamped to the
/// signal length.
dsp::Segment pad_segment(const dsp::Segment& segment, std::size_t limit,
                         double pad_s, double sample_rate_hz);

/// Computes the integral timing of a gesture window at `sample_rate_hz`.
SegmentTiming segment_timing(std::span<const std::span<const double>> windows,
                             double sample_rate_hz,
                             const TimingConfig& config = {});

}  // namespace airfinger::core
