#include "core/multi_session_host.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/parallel.hpp"

namespace airfinger::core {

MultiSessionHost::MultiSessionHost(std::shared_ptr<const ModelBundle> bundle,
                                   std::size_t sessions)
    : bundle_(std::move(bundle)) {
  AF_EXPECT(bundle_ != nullptr, "MultiSessionHost requires a model bundle");
  AF_EXPECT(sessions >= 1, "MultiSessionHost requires at least one session");
  lanes_.reserve(sessions);
  for (std::size_t i = 0; i < sessions; ++i) lanes_.emplace_back(bundle_);
}

const Session& MultiSessionHost::session(std::size_t i) const {
  AF_EXPECT(i < lanes_.size(), "session index out of range");
  return lanes_[i].session;
}

void MultiSessionHost::feed(std::size_t session,
                            std::span<const double> frame) {
  AF_EXPECT(session < lanes_.size(), "session index out of range");
  AF_EXPECT(frame.size() == bundle_->config().channels,
            "frame arity must match channel count");
  Lane& lane = lanes_[session];
  lane.pending.insert(lane.pending.end(), frame.begin(), frame.end());
}

void MultiSessionHost::pump() {
  const std::size_t channels = bundle_->config().channels;
  // Account frames serially before the parallel region (the counter is
  // shared; the lanes are not).
  for (const Lane& lane : lanes_)
    frames_processed_ += lane.pending.size() / channels;
  common::parallel_for(0, lanes_.size(), [&](std::size_t i) {
    Lane& lane = lanes_[i];
    const std::size_t frames = lane.pending.size() / channels;
    const auto sink = [&lane, i](const GestureEvent& e) {
      lane.events.push_back(SessionEvent{i, e});
    };
    for (std::size_t f = 0; f < frames; ++f)
      lane.session.push_frame(
          std::span<const double>(lane.pending.data() + f * channels,
                                  channels),
          sink);
    lane.pending.clear();
  });
}

void MultiSessionHost::finish() {
  // Deliver any still-buffered frames first so no input is dropped.
  pump();
  common::parallel_for(0, lanes_.size(), [&](std::size_t i) {
    Lane& lane = lanes_[i];
    lane.session.finish([&lane, i](const GestureEvent& e) {
      lane.events.push_back(SessionEvent{i, e});
    });
  });
}

std::vector<SessionEvent> MultiSessionHost::drain() {
  std::size_t total = 0;
  for (const Lane& lane : lanes_) total += lane.events.size();
  std::vector<SessionEvent> out;
  out.reserve(total);
  for (Lane& lane : lanes_) {
    out.insert(out.end(), std::make_move_iterator(lane.events.begin()),
               std::make_move_iterator(lane.events.end()));
    lane.events.clear();
  }
  return out;
}

std::vector<SessionEvent> MultiSessionHost::run_round_robin(
    const std::vector<sensor::MultiChannelTrace>& traces,
    std::size_t frames_per_turn) {
  AF_EXPECT(traces.size() == lanes_.size(),
            "round-robin needs exactly one trace per session");
  AF_EXPECT(frames_per_turn >= 1, "frames_per_turn must be >= 1");
  const std::size_t channels = bundle_->config().channels;
  for (const auto& trace : traces)
    AF_EXPECT(trace.channel_count() == channels,
              "trace channel count mismatch");

  std::vector<std::size_t> cursor(traces.size(), 0);
  std::vector<double> frame(channels);
  bool pending_input = true;
  while (pending_input) {
    pending_input = false;
    for (std::size_t i = 0; i < traces.size(); ++i) {
      const std::size_t total = traces[i].sample_count();
      const std::size_t take =
          std::min(frames_per_turn, total - cursor[i]);
      for (std::size_t f = 0; f < take; ++f) {
        for (std::size_t c = 0; c < channels; ++c)
          frame[c] = traces[i].channel(c)[cursor[i] + f];
        feed(i, frame);
      }
      cursor[i] += take;
      if (cursor[i] < total) pending_input = true;
    }
    pump();
  }
  finish();
  return drain();
}

}  // namespace airfinger::core
