#include "core/multi_session_host.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <limits>
#include <mutex>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "obs/exposition.hpp"
#include "obs/metrics.hpp"

namespace airfinger::core {

namespace {
/// Frames drained from one lane per worker sweep pass, so a deep backlog
/// on one lane cannot starve its shard siblings' latency.
constexpr std::size_t kSweepChunk = 256;
constexpr std::size_t kAllFrames = std::numeric_limits<std::size_t>::max();

/// Wall clock for the shard telemetry and the ingest stamps. Deliberately
/// NOT the session's injectable clock: queue wait and busy fractions
/// describe real scheduling on this machine, are exposed only behind
/// include_load_series, and must never add reads to the per-session
/// clock sequence (which the determinism goldens pin).
std::uint64_t host_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

// ------------------------------------------------------- shard telemetry

/// Per-shard utilization registry (DESIGN.md §18). Written by exactly one
/// thread — the shard's worker, or the caller thread for the inline
/// pseudo-shard — and read only at quiescence, so it follows the same
/// single-writer discipline as the per-session registries. Series are
/// shard-index-named (there are no labels) and merged into
/// aggregate_metrics() only under include_load_series, keeping the default
/// exposition shard-count-invariant.
struct MultiSessionHost::ShardStats {
  obs::Registry registry;
  obs::Registry::Handle parks, unparks, frames_drained, drain_batches,
      idle_passes, busy_ns, parked_ns;
  obs::Registry::Handle batch_hist, wait_hist;

  explicit ShardStats(std::size_t shard_index) {
    const std::string p = "af_shard" + std::to_string(shard_index) + "_";
    parks = registry.counter(p + "parks_total",
                             "Times this shard's worker parked idle.");
    unparks = registry.counter(p + "unparks_total",
                               "Times this shard's worker was woken.");
    frames_drained =
        registry.counter(p + "frames_drained_total",
                         "Frames this shard pulled off its lanes' rings.");
    drain_batches =
        registry.counter(p + "drain_batches_total",
                         "Per-lane drain sweeps that found queued frames.");
    idle_passes =
        registry.counter(p + "idle_passes_total",
                         "Full sweeps over the shard's lanes that found "
                         "nothing queued.");
    busy_ns = registry.counter(
        p + "busy_ns_total",
        "Wall nanoseconds spent inside draining sweeps.");
    parked_ns = registry.counter(
        p + "parked_ns_total",
        "Wall nanoseconds spent parked waiting for frames.");
    batch_hist = registry.histogram(
        p + "drain_batch_frames",
        "Frames consumed per non-empty per-lane drain sweep.",
        obs::HistogramSpec{1.0, 1024.0, 20});
    wait_hist = registry.histogram(
        p + "queue_wait_ns",
        "Ring residency of the oldest frame in each drained batch, from "
        "its feed()-time ingest stamp.",
        obs::HistogramSpec{});
  }
};

// --------------------------------------------------------------- shard

/// One worker shard: the lanes it owns (lane index % shard count) and the
/// park/unpark synchronization between its worker thread, the producer's
/// feed(), and the host's quiesce().
///
/// The parking protocol is a Dekker handshake over the `parked` flag: the
/// worker sets `parked`, issues a seq_cst fence, and re-checks its rings —
/// while the producer pushes a frame, issues a seq_cst fence, and checks
/// `parked`. The paired fences guarantee at least one side sees the other,
/// so a frame can never land unseen in a parked shard's ring (no lost
/// wakeup) and the worker never parks while work is visible. The mutex is
/// only taken when a park or unpark actually happens — the steady-state
/// feed/drain path is lock-free.
struct MultiSessionHost::Shard {
  std::vector<Lane*> owned;  ///< Mutated only while the worker is parked.
  std::mutex m;
  std::condition_variable cv;       ///< Wakes the parked worker.
  std::condition_variable idle_cv;  ///< Wakes quiesce().
  bool stop = false;                ///< Guarded by m.
  std::vector<double> frame;        ///< Worker-side pop scratch (channels).
  ShardStats* stats = nullptr;      ///< Worker-written telemetry block.

  // Blocked producers spin-poll `parked` while the worker reads `owned` /
  // `frame` headers every pop; its own line (and the alignas-rounded
  // sizeof) keeps that polling off the worker's hot fields and off the
  // neighbouring shard in the shard array.
  alignas(64) std::atomic<bool> parked{false};

  bool rings_empty() const {
    for (const Lane* lane : owned)
      if (!lane->ring.empty()) return false;
    return true;
  }
};

// ---------------------------------------------------------------- lane

MultiSessionHost::Lane::Lane(std::size_t idx,
                             std::shared_ptr<const ModelBundle> bundle,
                             FaultPolicy policy, std::size_t ring_capacity,
                             std::size_t stamp_stride)
    : index(idx),
      ring(ring_capacity, stamp_stride),
      session(std::in_place, std::move(bundle), policy) {
  events.reserve(16);
  sink = [this](const GestureEvent& e) {
    events.push_back(SessionEvent{index, e});
  };
  // Stamp exported traces with the lane index, so a merged Perfetto view
  // groups spans per stream. Pure metadata: no clock reads, no series.
  session->observability().set_stream_id(idx);
}

// --------------------------------------------------------- construction

MultiSessionHost::MultiSessionHost(std::shared_ptr<const ModelBundle> bundle,
                                   std::size_t sessions)
    : MultiSessionHost(bundle, sessions,
                       bundle ? bundle->config().fault_policy
                              : FaultPolicy{},
                       HostConfig{}) {}

MultiSessionHost::MultiSessionHost(std::shared_ptr<const ModelBundle> bundle,
                                   std::size_t sessions, FaultPolicy policy)
    : MultiSessionHost(std::move(bundle), sessions, policy, HostConfig{}) {}

MultiSessionHost::MultiSessionHost(std::shared_ptr<const ModelBundle> bundle,
                                   std::size_t sessions, FaultPolicy policy,
                                   HostConfig config)
    : bundle_(std::move(bundle)), config_(config), policy_(policy) {
  AF_EXPECT(bundle_ != nullptr, "MultiSessionHost requires a model bundle");
  AF_EXPECT(sessions >= 1, "MultiSessionHost requires at least one session");
  AF_EXPECT(config_.ring_frames >= 1,
            "MultiSessionHost ring capacity must be >= 1 frame");
  const std::size_t channels = bundle_->config().channels;
  scratch_frame_.resize(channels);

  shard_count_ = config_.shards != 0 ? config_.shards
                                     : common::current_thread_count();
  shard_count_ = std::clamp<std::size_t>(shard_count_, 1, sessions);

  // Ingest stamps cost one uint64 per ring frame; only pay for them when
  // the tracing layer that reads them back is compiled in.
  const std::size_t stamp_stride = AF_OBS_TRACE_ENABLED ? channels : 0;
  lanes_.reserve(sessions);
  for (std::size_t i = 0; i < sessions; ++i)
    lanes_.push_back(std::make_unique<Lane>(
        i, bundle_, policy_, config_.ring_frames * channels, stamp_stride));

  shard_stats_.reserve(shard_count_);
  for (std::size_t s = 0; s < shard_count_; ++s)
    shard_stats_.push_back(std::make_unique<ShardStats>(s));

  if (shard_count_ < 2) return;  // inline mode: no worker threads at all
  shards_.reserve(shard_count_);
  for (std::size_t s = 0; s < shard_count_; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->frame.resize(channels);
    shard->stats = shard_stats_[s].get();
    shards_.push_back(std::move(shard));
  }
  for (std::size_t i = 0; i < sessions; ++i)
    shards_[i % shard_count_]->owned.push_back(lanes_[i].get());
  workers_.reserve(shard_count_);
  for (std::size_t s = 0; s < shard_count_; ++s)
    workers_.emplace_back([this, s] { worker_loop(*shards_[s]); });
}

MultiSessionHost::~MultiSessionHost() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->m);
    shard->stop = true;
    shard->parked.store(false, std::memory_order_relaxed);
    shard->cv.notify_one();
  }
  for (auto& worker : workers_) worker.join();
}

// ------------------------------------------------------- worker / drain

std::size_t MultiSessionHost::drain_lane(Lane& lane, std::span<double> frame,
                                         std::size_t max_frames,
                                         ShardStats* stats) {
  const std::size_t channels = frame.size();
  if (lane.faulted.load(std::memory_order_relaxed) || lane.retired) {
    // Quarantined or retired: the ring is a sink. Count what the lane can
    // no longer process so dropped totals stay exact.
    const std::size_t frames = lane.ring.discard_all() / channels;
    lane.dropped_consumer += frames;
    return frames;
  }
  std::size_t consumed = 0;
  std::uint64_t oldest_stamp = 0;
  while (consumed < max_frames &&
         lane.ring.try_pop(frame, consumed == 0 ? &oldest_stamp : nullptr)) {
    ++consumed;
    try {
      lane.session->push_frame(frame, lane.sink);
      ++lane.processed;
    } catch (const std::exception& e) {
      // Quarantine this lane only; shard siblings never observe the fault.
      // Latch the session's flight recorder first: the last-N events and
      // traces around the throwing frame are the post-mortem artifact.
      lane.session->observability().capture_postmortem(
          obs::FlightReason::kLaneFault, lane.processed);
      lane.fault = e.what();
      lane.faulted.store(true, std::memory_order_relaxed);
      ++lane.dropped_consumer;  // the frame that threw
      lane.dropped_consumer += lane.ring.discard_all() / channels;
      break;
    } catch (...) {
      lane.session->observability().capture_postmortem(
          obs::FlightReason::kLaneFault, lane.processed);
      lane.fault = "unknown stream fault";
      lane.faulted.store(true, std::memory_order_relaxed);
      ++lane.dropped_consumer;
      lane.dropped_consumer += lane.ring.discard_all() / channels;
      break;
    }
  }
#if AF_OBS_TRACE_ENABLED
  if (stats != nullptr && consumed != 0) {
    // One queue-wait sample per non-empty batch: the first (oldest) frame
    // popped, which bounds the residency of everything behind it.
    if (oldest_stamp != 0) {
      const std::uint64_t now = host_now_ns();
      stats->registry.observe(
          stats->wait_hist,
          now > oldest_stamp ? static_cast<double>(now - oldest_stamp)
                             : 0.0);
    }
    stats->registry.inc(stats->frames_drained, consumed);
    stats->registry.inc(stats->drain_batches);
    stats->registry.observe(stats->batch_hist,
                            static_cast<double>(consumed));
  }
#else
  (void)stats;
  (void)oldest_stamp;
#endif
  return consumed;
}

void MultiSessionHost::worker_loop(Shard& shard) {
  ShardStats* stats = shard.stats;
  for (;;) {
#if AF_OBS_TRACE_ENABLED
    const std::uint64_t sweep_t0 = host_now_ns();
#endif
    std::size_t did = 0;
    for (Lane* lane : shard.owned)
      did += drain_lane(*lane, shard.frame, kSweepChunk, stats);
#if AF_OBS_TRACE_ENABLED
    if (did != 0)
      stats->registry.inc(stats->busy_ns, host_now_ns() - sweep_t0);
    else
      stats->registry.inc(stats->idle_passes);
#endif
    if (did != 0) continue;

    std::unique_lock<std::mutex> lock(shard.m);
    if (shard.stop) return;
    shard.parked.store(true, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (!shard.rings_empty()) {
      // A frame raced in between the sweep and the park: un-park and go
      // get it (the fence pairing with feed() makes this check reliable).
      shard.parked.store(false, std::memory_order_relaxed);
      continue;
    }
#if AF_OBS_TRACE_ENABLED
    stats->registry.inc(stats->parks);
    const std::uint64_t park_t0 = host_now_ns();
#endif
    shard.idle_cv.notify_all();
    shard.cv.wait(lock, [&] {
      return shard.stop || !shard.parked.load(std::memory_order_relaxed);
    });
#if AF_OBS_TRACE_ENABLED
    stats->registry.inc(stats->parked_ns, host_now_ns() - park_t0);
    stats->registry.inc(stats->unparks);
#endif
    if (shard.stop) return;
  }
}

void MultiSessionHost::quiesce() const {
  if (workers_.empty()) {
    // Inline mode: the caller is the consumer, so the barrier IS the
    // drain (through the lanes' own indirection; see the header note).
    for (const auto& lane : lanes_)
      drain_lane(*lane, scratch_frame_, kAllFrames,
                 shard_stats_.front().get());
    return;
  }
  for (const auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::unique_lock<std::mutex> lock(shard.m);
    shard.idle_cv.wait(lock, [&] {
      return shard.parked.load(std::memory_order_relaxed) &&
             shard.rings_empty();
    });
  }
}

// ------------------------------------------------------------ streaming

bool MultiSessionHost::feed(std::size_t session,
                            std::span<const double> frame) {
  AF_EXPECT(session < lanes_.size(), "session index out of range");
  AF_EXPECT(frame.size() == bundle_->config().channels,
            "frame carries " + std::to_string(frame.size()) +
                " samples but the host expects " +
                std::to_string(bundle_->config().channels) + " channels");
  Lane& lane = *lanes_[session];
  if (lane.retired) {
    ++lane.rejected;
    return false;
  }
  if (lane.faulted.load(std::memory_order_relaxed)) {
    // Isolation: the producer keeps streaming; the lane just counts what
    // it can no longer process.
    ++lane.dropped_producer;
    return false;
  }

#if AF_OBS_TRACE_ENABLED
  // Ingest stamp: rides the ring's side-channel so the consumer can turn
  // this frame's ring residency into the measured queue_wait stage.
  const std::uint64_t ingest_tick = host_now_ns();
#else
  const std::uint64_t ingest_tick = 0;  // stride 0: the ring ignores it
#endif

  if (workers_.empty()) {
    // Inline mode: the caller is the consumer. A full ring under kBlock is
    // drained in place (deterministic: this lane's frames in feed order).
    if (!lane.ring.try_push(frame, ingest_tick)) {
      if (config_.admission == Admission::kReject) {
        ++lane.rejected;
        return false;
      }
      ++lane.blocked;
      drain_lane(lane, scratch_frame_, kAllFrames,
                 shard_stats_.front().get());
      if (lane.faulted.load(std::memory_order_relaxed)) {
        ++lane.dropped_producer;
        return false;
      }
      // Ring was just emptied; cannot fail.
      lane.ring.try_push(frame, ingest_tick);
    }
    lane.high_water =
        std::max(lane.high_water, lane.ring.size() / frame.size());
    return true;
  }

  Shard& shard = *shards_[session % shard_count_];
  if (!lane.ring.try_push(frame, ingest_tick)) {
    if (config_.admission == Admission::kReject) {
      ++lane.rejected;
      return false;
    }
    // Lossless backpressure: wait for the shard worker to make room. The
    // worker cannot be parked while this ring is full (it only parks on
    // empty rings, and the fence pairing below closes the race), so spin
    // and yield rather than sleep — but re-wake it defensively anyway in
    // case it parked between our failed push and now.
    ++lane.blocked;
    std::size_t spins = 0;
    for (;;) {
      std::atomic_thread_fence(std::memory_order_seq_cst);
      if (shard.parked.load(std::memory_order_relaxed)) {
        std::lock_guard<std::mutex> lock(shard.m);
        shard.parked.store(false, std::memory_order_relaxed);
        shard.cv.notify_one();
      }
      if (lane.faulted.load(std::memory_order_relaxed)) {
        // The lane died while we waited; its ring is being discarded.
        ++lane.dropped_producer;
        return false;
      }
      if (lane.ring.try_push(frame, ingest_tick)) break;
      if (++spins >= 64) std::this_thread::yield();
    }
  }
  lane.high_water =
      std::max(lane.high_water, lane.ring.size() / frame.size());

  // Dekker publish: make the push visible to a parking worker, or see its
  // parked flag — one of the two is guaranteed (see Shard).
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (shard.parked.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lock(shard.m);
    shard.parked.store(false, std::memory_order_relaxed);
    shard.cv.notify_one();
  }
  return true;
}

void MultiSessionHost::pump() { quiesce(); }

void MultiSessionHost::finish() {
  quiesce();
  // All workers are parked (streaming) or all rings drained (inline), so
  // the caller owns every lane's consumer side until the next feed().
  for (auto& lane_ptr : lanes_) {
    Lane& lane = *lane_ptr;
    if (lane.retired || lane.faulted.load(std::memory_order_relaxed))
      continue;
    try {
      lane.session->finish(lane.sink);
    } catch (const std::exception& e) {
      lane.fault = e.what();
      lane.faulted.store(true, std::memory_order_relaxed);
    } catch (...) {
      lane.fault = "unknown stream fault";
      lane.faulted.store(true, std::memory_order_relaxed);
    }
  }
}

std::vector<SessionEvent> MultiSessionHost::drain() {
  quiesce();
  std::size_t total = 0;
  for (const auto& lane : lanes_) total += lane->events.size();
  std::vector<SessionEvent> out;
  out.reserve(total);
  for (auto& lane : lanes_) {
    out.insert(out.end(), std::make_move_iterator(lane->events.begin()),
               std::make_move_iterator(lane->events.end()));
    lane->events.clear();
  }
  return out;
}

std::uint64_t MultiSessionHost::frames_processed() const {
  quiesce();
  std::uint64_t total = 0;
  for (const auto& lane : lanes_) total += lane->processed;
  return total;
}

// --------------------------------------------------- session lifecycle

std::size_t MultiSessionHost::add_session() {
  quiesce();
  const std::size_t index = lanes_.size();
  const std::size_t channels = bundle_->config().channels;
  lanes_.push_back(std::make_unique<Lane>(
      index, bundle_, policy_, config_.ring_frames * channels,
      AF_OBS_TRACE_ENABLED ? channels : 0));
  if (!shards_.empty()) {
    Shard& shard = *shards_[index % shard_count_];
    // The worker is parked (quiesce() above); owned is mutated under its
    // mutex so the next un-park observes the new lane.
    std::lock_guard<std::mutex> lock(shard.m);
    shard.owned.push_back(lanes_.back().get());
  }
  return index;
}

void MultiSessionHost::remove_session(std::size_t i) {
  AF_EXPECT(i < lanes_.size(), "session index out of range");
  quiesce();
  Lane& lane = *lanes_[i];
  if (lane.retired) return;
  if (lane.session.has_value()) {
    lane.final_health = lane.session->health();
    lane.final_metrics =
        lane.session->observability().registry().snapshot();
  }
  lane.retired = true;
  lane.session.reset();  // frees the per-stream buffers
  if (!shards_.empty()) {
    Shard& shard = *shards_[i % shard_count_];
    std::lock_guard<std::mutex> lock(shard.m);
    std::erase(shard.owned, &lane);
  }
}

bool MultiSessionHost::session_retired(std::size_t i) const {
  return lane_at(i).retired;
}

// ------------------------------------------------------- health / views

const MultiSessionHost::Lane& MultiSessionHost::lane_at(
    std::size_t i) const {
  AF_EXPECT(i < lanes_.size(), "session index out of range");
  return *lanes_[i];
}

const Session& MultiSessionHost::session(std::size_t i) const {
  const Lane& lane = lane_at(i);
  quiesce();
  AF_EXPECT(lane.session.has_value(),
            "session " + std::to_string(i) + " is retired");
  return *lane.session;
}

Session& MultiSessionHost::mutable_session(std::size_t i) {
  AF_EXPECT(i < lanes_.size(), "session index out of range");
  quiesce();
  Lane& lane = *lanes_[i];
  AF_EXPECT(lane.session.has_value(),
            "session " + std::to_string(i) + " is retired");
  return *lane.session;
}

bool MultiSessionHost::session_faulted(std::size_t i) const {
  const Lane& lane = lane_at(i);
  quiesce();
  return lane.faulted.load(std::memory_order_relaxed);
}

const std::string& MultiSessionHost::session_fault(std::size_t i) const {
  const Lane& lane = lane_at(i);
  quiesce();
  return lane.fault;
}

std::uint64_t MultiSessionHost::dropped_frames(std::size_t i) const {
  const Lane& lane = lane_at(i);
  quiesce();
  return lane.dropped_producer + lane.dropped_consumer;
}

std::uint64_t MultiSessionHost::rejected_frames(std::size_t i) const {
  return lane_at(i).rejected;
}

std::uint64_t MultiSessionHost::blocked_feeds(std::size_t i) const {
  return lane_at(i).blocked;
}

std::size_t MultiSessionHost::ring_high_water(std::size_t i) const {
  return lane_at(i).high_water;
}

std::size_t MultiSessionHost::faulted_count() const {
  quiesce();
  std::size_t n = 0;
  for (const auto& lane : lanes_)
    if (lane->faulted.load(std::memory_order_relaxed)) ++n;
  return n;
}

HealthStats MultiSessionHost::aggregate_health() const {
  quiesce();
  HealthStats total;
  for (const auto& lane : lanes_)
    total += lane->session.has_value() ? lane->session->health()
                                       : lane->final_health;
  return total;
}

ShardTelemetry MultiSessionHost::shard_telemetry(std::size_t shard) const {
  AF_EXPECT(shard < shard_count_, "shard index out of range");
  quiesce();
  const ShardStats& stats = *shard_stats_[shard];
  ShardTelemetry t;
  t.shard = shard;
  for (const auto& lane : lanes_) {
    if (lane->index % shard_count_ != shard || lane->retired) continue;
    ++t.lanes;
    t.occupancy_high_water =
        std::max(t.occupancy_high_water, lane->high_water);
  }
  const obs::Registry& r = stats.registry;
  t.parks = r.counter_value(stats.parks);
  t.unparks = r.counter_value(stats.unparks);
  t.frames_drained = r.counter_value(stats.frames_drained);
  t.drain_batches = r.counter_value(stats.drain_batches);
  t.idle_passes = r.counter_value(stats.idle_passes);
  t.busy_ns = r.counter_value(stats.busy_ns);
  t.parked_ns = r.counter_value(stats.parked_ns);
  // Quantiles come off a snapshot: histogram_quantile() works on entries,
  // and a telemetry read is far off the hot path.
  const obs::MetricsSnapshot snap = r.snapshot();
  for (const obs::MetricEntry& e : snap.entries) {
    if (e.type != obs::MetricEntry::Type::kHistogram) continue;
    if (e.name.ends_with("_drain_batch_frames"))
      t.drain_batch_p50 = obs::histogram_quantile(e, 0.5);
    else if (e.name.ends_with("_queue_wait_ns")) {
      t.queue_wait_p50_ns = obs::histogram_quantile(e, 0.5);
      t.queue_wait_p99_ns = obs::histogram_quantile(e, 0.99);
    }
  }
  return t;
}

obs::MetricsSnapshot MultiSessionHost::aggregate_metrics(
    bool include_load_series) const {
  quiesce();
  const auto lane_snapshot = [](const Lane& lane) {
    return lane.session.has_value()
               ? lane.session->observability().registry().snapshot()
               : lane.final_metrics;
  };
  obs::MetricsSnapshot total = lane_snapshot(*lanes_.front());
  for (std::size_t i = 1; i < lanes_.size(); ++i)
    total.add_from(lane_snapshot(*lanes_[i]));

  std::uint64_t processed = 0, dropped = 0, rejected = 0, blocked = 0;
  std::size_t retired = 0, high_water = 0;
  for (const auto& lane : lanes_) {
    processed += lane->processed;
    dropped += lane->dropped_producer + lane->dropped_consumer;
    rejected += lane->rejected;
    blocked += lane->blocked;
    if (lane->retired) ++retired;
    high_water = std::max(high_water, lane->high_water);
  }

  const auto gauge = [&total](std::string name, std::string help, double v) {
    obs::MetricEntry e;
    e.type = obs::MetricEntry::Type::kGauge;
    e.name = std::move(name);
    e.help = std::move(help);
    e.value = v;
    total.entries.push_back(std::move(e));
  };
  const auto counter = [&total](std::string name, std::string help,
                                std::uint64_t v) {
    obs::MetricEntry e;
    e.type = obs::MetricEntry::Type::kCounter;
    e.name = std::move(name);
    e.help = std::move(help);
    e.count = v;
    total.entries.push_back(std::move(e));
  };
  gauge("af_host_sessions", "Lanes configured on this host.",
        static_cast<double>(lanes_.size()));
  gauge("af_host_faulted_sessions",
        "Lanes currently quarantined by the host.",
        static_cast<double>(faulted_count()));
  gauge("af_host_retired_sessions",
        "Lanes retired by remove_session().",
        static_cast<double>(retired));
  counter("af_host_frames_processed_total",
          "Frames processed across all lanes.", processed);
  counter("af_host_dropped_frames_total",
          "Frames discarded because their lane was faulted or retired.",
          dropped);
  counter("af_host_rejected_frames_total",
          "Frames refused by admission control (full ring under kReject) "
          "or fed to a retired lane.",
          rejected);
  if (include_load_series) {
    // Scheduling-dependent series: real occupancy and contention, which
    // legitimately vary with shard count and machine load. Opt-in so the
    // default exposition keeps the thread-count-invariance contract
    // (DESIGN.md §13) that af_stats and the determinism suite rely on.
    gauge("af_host_shards", "Worker shards driving the lanes.",
          static_cast<double>(shard_count_));
    gauge("af_host_ring_capacity_frames",
          "Per-lane ingest ring capacity in frames.",
          static_cast<double>(config_.ring_frames));
    gauge("af_host_ring_high_water_frames",
          "Highest per-lane ring occupancy observed, in frames.",
          static_cast<double>(high_water));
    counter("af_host_blocked_feeds_total",
            "feed() calls that waited for ring space under kBlock.",
            blocked);
    // Per-shard utilization (DESIGN.md §18): each shard's telemetry
    // registry appended whole, in shard order, plus an occupancy gauge
    // over the shard's lanes. Series are shard-index-named, so the merged
    // snapshot stays uniquely keyed.
    for (std::size_t s = 0; s < shard_count_; ++s) {
      obs::MetricsSnapshot shard_snap = shard_stats_[s]->registry.snapshot();
      for (auto& entry : shard_snap.entries)
        total.entries.push_back(std::move(entry));
      std::size_t shard_high_water = 0;
      for (const auto& lane : lanes_)
        if (lane->index % shard_count_ == s)
          shard_high_water = std::max(shard_high_water, lane->high_water);
      gauge("af_shard" + std::to_string(s) + "_occupancy_high_water_frames",
            "Highest ring occupancy among this shard's lanes, in frames.",
            static_cast<double>(shard_high_water));
    }
  }
  gauge("af_bundle_load_seconds",
        "Wall-clock time load() spent verifying and parsing the bundle.",
        static_cast<double>(bundle_->load_ns()) * 1e-9);
  return total;
}

std::vector<SessionEvent> MultiSessionHost::run_round_robin(
    const std::vector<sensor::MultiChannelTrace>& traces,
    std::size_t frames_per_turn) {
  AF_EXPECT(traces.size() == lanes_.size(),
            "round-robin needs exactly one trace per session");
  AF_EXPECT(frames_per_turn >= 1, "frames_per_turn must be >= 1");
  const std::size_t channels = bundle_->config().channels;
  for (const auto& trace : traces)
    AF_EXPECT(trace.channel_count() == channels,
              "trace carries " + std::to_string(trace.channel_count()) +
                  " channels but the host expects " +
                  std::to_string(channels));

  std::vector<std::size_t> cursor(traces.size(), 0);
  std::vector<double> frame(channels);
  bool pending_input = true;
  while (pending_input) {
    pending_input = false;
    for (std::size_t i = 0; i < traces.size(); ++i) {
      const std::size_t total = traces[i].sample_count();
      const std::size_t take =
          std::min(frames_per_turn, total - cursor[i]);
      for (std::size_t f = 0; f < take; ++f) {
        for (std::size_t c = 0; c < channels; ++c)
          frame[c] = traces[i].channel(c)[cursor[i] + f];
        feed(i, frame);
      }
      cursor[i] += take;
      if (cursor[i] < total) pending_input = true;
    }
    // No per-turn barrier: shard workers classify concurrently while the
    // next turn is fed; ring backpressure throttles the fan-out. (Inline
    // mode drains under feed pressure and in the final finish().)
  }
  finish();
  return drain();
}

std::vector<SessionEvent> MultiSessionHost::run_round_robin_parallel(
    const std::vector<sensor::MultiChannelTrace>& traces,
    std::size_t frames_per_turn) {
  // Inline mode has one shared drain scratch, so it admits only one feeder.
  if (workers_.empty()) return run_round_robin(traces, frames_per_turn);

  AF_EXPECT(traces.size() == lanes_.size(),
            "round-robin needs exactly one trace per session");
  AF_EXPECT(frames_per_turn >= 1, "frames_per_turn must be >= 1");
  const std::size_t channels = bundle_->config().channels;
  for (const auto& trace : traces)
    AF_EXPECT(trace.channel_count() == channels,
              "trace carries " + std::to_string(trace.channel_count()) +
                  " channels but the host expects " +
                  std::to_string(channels));

  // One producer thread per shard; feeder s owns exactly the lanes of
  // shard s (index % shard_count_), so every lane keeps a single feeder
  // and the disjoint-lane concurrent-feed contract holds. Per-lane order
  // matches run_round_robin() exactly: the same frames_per_turn bursts in
  // ascending lane order within the feeder's subset.
  std::vector<std::thread> feeders;
  feeders.reserve(shard_count_);
  for (std::size_t s = 0; s < shard_count_; ++s) {
    feeders.emplace_back([this, s, &traces, frames_per_turn, channels] {
      std::vector<std::size_t> mine;
      for (std::size_t i = s; i < traces.size(); i += shard_count_)
        mine.push_back(i);
      std::vector<std::size_t> cursor(mine.size(), 0);
      std::vector<double> frame(channels);
      bool pending_input = !mine.empty();
      while (pending_input) {
        pending_input = false;
        for (std::size_t k = 0; k < mine.size(); ++k) {
          const std::size_t lane = mine[k];
          const std::size_t total = traces[lane].sample_count();
          const std::size_t take =
              std::min(frames_per_turn, total - cursor[k]);
          for (std::size_t f = 0; f < take; ++f) {
            for (std::size_t c = 0; c < channels; ++c)
              frame[c] = traces[lane].channel(c)[cursor[k] + f];
            feed(lane, frame);
          }
          cursor[k] += take;
          if (cursor[k] < total) pending_input = true;
        }
      }
    });
  }
  for (auto& t : feeders) t.join();  // happens-before the owner resuming
  finish();
  return drain();
}

}  // namespace airfinger::core
