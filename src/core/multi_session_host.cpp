#include "core/multi_session_host.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/parallel.hpp"

namespace airfinger::core {

MultiSessionHost::MultiSessionHost(std::shared_ptr<const ModelBundle> bundle,
                                   std::size_t sessions)
    : MultiSessionHost(bundle,
                       sessions,
                       bundle ? bundle->config().fault_policy
                              : FaultPolicy{}) {}

MultiSessionHost::MultiSessionHost(std::shared_ptr<const ModelBundle> bundle,
                                   std::size_t sessions, FaultPolicy policy)
    : bundle_(std::move(bundle)) {
  AF_EXPECT(bundle_ != nullptr, "MultiSessionHost requires a model bundle");
  AF_EXPECT(sessions >= 1, "MultiSessionHost requires at least one session");
  lanes_.reserve(sessions);
  for (std::size_t i = 0; i < sessions; ++i)
    lanes_.emplace_back(bundle_, policy);
}

const Session& MultiSessionHost::session(std::size_t i) const {
  AF_EXPECT(i < lanes_.size(), "session index out of range");
  return lanes_[i].session;
}

Session& MultiSessionHost::mutable_session(std::size_t i) {
  AF_EXPECT(i < lanes_.size(), "session index out of range");
  return lanes_[i].session;
}

void MultiSessionHost::feed(std::size_t session,
                            std::span<const double> frame) {
  AF_EXPECT(session < lanes_.size(), "session index out of range");
  AF_EXPECT(frame.size() == bundle_->config().channels,
            "frame carries " + std::to_string(frame.size()) +
                " samples but the host expects " +
                std::to_string(bundle_->config().channels) + " channels");
  Lane& lane = lanes_[session];
  if (lane.faulted) {
    // Isolation: the producer keeps streaming; the lane just counts what
    // it can no longer process.
    ++lane.dropped;
    return;
  }
  lane.pending.insert(lane.pending.end(), frame.begin(), frame.end());
}

void MultiSessionHost::pump() {
  const std::size_t channels = bundle_->config().channels;
  // Per-lane consumption is recorded by each task and reduced serially in
  // lane order after the parallel region (the counter is shared; the
  // lanes are not), so the total is thread-count independent.
  std::vector<std::uint64_t> consumed(lanes_.size(), 0);
  common::parallel_for(0, lanes_.size(), [&](std::size_t i) {
    Lane& lane = lanes_[i];
    const std::size_t frames = lane.pending.size() / channels;
    const auto sink = [&lane, i](const GestureEvent& e) {
      lane.events.push_back(SessionEvent{i, e});
    };
    std::size_t f = 0;
    try {
      for (; f < frames; ++f)
        lane.session.push_frame(
            std::span<const double>(lane.pending.data() + f * channels,
                                    channels),
            sink);
      consumed[i] = frames;
    } catch (const std::exception& e) {
      // Quarantine this lane only; siblings never observe the fault.
      lane.faulted = true;
      lane.fault = e.what();
      lane.dropped += frames - f;
      consumed[i] = f;
    } catch (...) {
      lane.faulted = true;
      lane.fault = "unknown stream fault";
      lane.dropped += frames - f;
      consumed[i] = f;
    }
    lane.pending.clear();
  });
  for (const std::uint64_t c : consumed) frames_processed_ += c;
}

void MultiSessionHost::finish() {
  // Deliver any still-buffered frames first so no input is dropped.
  pump();
  common::parallel_for(0, lanes_.size(), [&](std::size_t i) {
    Lane& lane = lanes_[i];
    if (lane.faulted) return;
    try {
      lane.session.finish([&lane, i](const GestureEvent& e) {
        lane.events.push_back(SessionEvent{i, e});
      });
    } catch (const std::exception& e) {
      lane.faulted = true;
      lane.fault = e.what();
    } catch (...) {
      lane.faulted = true;
      lane.fault = "unknown stream fault";
    }
  });
}

std::vector<SessionEvent> MultiSessionHost::drain() {
  std::size_t total = 0;
  for (const Lane& lane : lanes_) total += lane.events.size();
  std::vector<SessionEvent> out;
  out.reserve(total);
  for (Lane& lane : lanes_) {
    out.insert(out.end(), std::make_move_iterator(lane.events.begin()),
               std::make_move_iterator(lane.events.end()));
    lane.events.clear();
  }
  return out;
}

bool MultiSessionHost::session_faulted(std::size_t i) const {
  AF_EXPECT(i < lanes_.size(), "session index out of range");
  return lanes_[i].faulted;
}

const std::string& MultiSessionHost::session_fault(std::size_t i) const {
  AF_EXPECT(i < lanes_.size(), "session index out of range");
  return lanes_[i].fault;
}

std::uint64_t MultiSessionHost::dropped_frames(std::size_t i) const {
  AF_EXPECT(i < lanes_.size(), "session index out of range");
  return lanes_[i].dropped;
}

std::size_t MultiSessionHost::faulted_count() const {
  std::size_t n = 0;
  for (const Lane& lane : lanes_)
    if (lane.faulted) ++n;
  return n;
}

HealthStats MultiSessionHost::aggregate_health() const {
  HealthStats total;
  for (const Lane& lane : lanes_) total += lane.session.health();
  return total;
}

obs::MetricsSnapshot MultiSessionHost::aggregate_metrics() const {
  obs::MetricsSnapshot total =
      lanes_.front().session.observability().registry().snapshot();
  for (std::size_t i = 1; i < lanes_.size(); ++i)
    total.add_from(
        lanes_[i].session.observability().registry().snapshot());

  std::uint64_t dropped = 0;
  for (const Lane& lane : lanes_) dropped += lane.dropped;

  const auto gauge = [&total](std::string name, std::string help, double v) {
    obs::MetricEntry e;
    e.type = obs::MetricEntry::Type::kGauge;
    e.name = std::move(name);
    e.help = std::move(help);
    e.value = v;
    total.entries.push_back(std::move(e));
  };
  const auto counter = [&total](std::string name, std::string help,
                                std::uint64_t v) {
    obs::MetricEntry e;
    e.type = obs::MetricEntry::Type::kCounter;
    e.name = std::move(name);
    e.help = std::move(help);
    e.count = v;
    total.entries.push_back(std::move(e));
  };
  gauge("af_host_sessions", "Lanes configured on this host.",
        static_cast<double>(lanes_.size()));
  gauge("af_host_faulted_sessions",
        "Lanes currently quarantined by the host.",
        static_cast<double>(faulted_count()));
  counter("af_host_frames_processed_total",
          "Frames processed by pump() across all lanes.",
          frames_processed_);
  counter("af_host_dropped_frames_total",
          "Frames discarded because their lane was faulted.", dropped);
  gauge("af_bundle_load_seconds",
        "Wall-clock time load() spent verifying and parsing the bundle.",
        static_cast<double>(bundle_->load_ns()) * 1e-9);
  return total;
}

std::vector<SessionEvent> MultiSessionHost::run_round_robin(
    const std::vector<sensor::MultiChannelTrace>& traces,
    std::size_t frames_per_turn) {
  AF_EXPECT(traces.size() == lanes_.size(),
            "round-robin needs exactly one trace per session");
  AF_EXPECT(frames_per_turn >= 1, "frames_per_turn must be >= 1");
  const std::size_t channels = bundle_->config().channels;
  for (const auto& trace : traces)
    AF_EXPECT(trace.channel_count() == channels,
              "trace carries " + std::to_string(trace.channel_count()) +
                  " channels but the host expects " +
                  std::to_string(channels));

  std::vector<std::size_t> cursor(traces.size(), 0);
  std::vector<double> frame(channels);
  bool pending_input = true;
  while (pending_input) {
    pending_input = false;
    for (std::size_t i = 0; i < traces.size(); ++i) {
      const std::size_t total = traces[i].sample_count();
      const std::size_t take =
          std::min(frames_per_turn, total - cursor[i]);
      for (std::size_t f = 0; f < take; ++f) {
        for (std::size_t c = 0; c < channels; ++c)
          frame[c] = traces[i].channel(c)[cursor[i] + f];
        feed(i, frame);
      }
      cursor[i] += take;
      if (cursor[i] < total) pending_input = true;
    }
    pump();
  }
  finish();
  return drain();
}

}  // namespace airfinger::core
