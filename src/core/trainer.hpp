// One-call training flow: synthesize (or accept) datasets, fit the detect
// recognizer and the interference filter, and assemble the frozen
// ModelBundle (or a ready AirFinger engine over it). This is the entry
// point the examples use.
#pragma once

#include "core/airfinger.hpp"
#include "synth/dataset.hpp"

namespace airfinger::core {

/// Training-set sizing for build_engine.
struct TrainerConfig {
  AirFingerConfig engine{};
  /// Gesture training protocol (defaults: a reduced version of Sec. V-B
  /// sized for interactive use; raise for paper-scale training).
  int users = 4;
  int sessions = 2;
  int repetitions = 8;
  /// Non-gesture repetitions per user/session for the filter.
  int non_gesture_repetitions = 8;
  std::uint64_t seed = 11;
};

/// Result of a training run.
struct TrainingReport {
  std::size_t gesture_samples = 0;
  std::size_t non_gesture_samples = 0;
  std::vector<std::string> selected_feature_names;
};

/// Trains both models on synthesized data and returns the frozen bundle
/// (the deployable artifact: save with ModelBundle::save_file, share
/// across any number of Sessions).
std::shared_ptr<const ModelBundle> build_bundle(
    const TrainerConfig& config, TrainingReport* report = nullptr);

/// Trains both models from externally built datasets (e.g. in benches that
/// need custom collection protocols). `gestures` must contain the designed
/// gesture kinds; `non_gestures` the unintentional-motion kinds.
std::shared_ptr<const ModelBundle> build_bundle_from(
    const AirFingerConfig& engine_config, const synth::Dataset& gestures,
    const synth::Dataset& non_gestures, TrainingReport* report = nullptr);

/// Trains both models on synthesized data and returns a ready engine
/// (build_bundle + one Session).
AirFinger build_engine(const TrainerConfig& config,
                       TrainingReport* report = nullptr);

/// build_bundle_from + one Session.
AirFinger build_engine_from(const AirFingerConfig& engine_config,
                            const synth::Dataset& gestures,
                            const synth::Dataset& non_gestures,
                            TrainingReport* report = nullptr);

}  // namespace airfinger::core
