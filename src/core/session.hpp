// Per-stream streaming state over a shared immutable ModelBundle.
//
// A Session owns everything that changes as frames arrive from one sensor
// stream: the per-channel SBC delay lines, the dynamic-threshold segmenter
// calibration, the bounded ΔRSS² history, and the early-direction
// bookkeeping for the currently open segment. Construction from a
// `shared_ptr<const ModelBundle>` is O(1) — it allocates only the small
// per-stream buffers and copies no forest data — so a serving host can
// spin up one Session per connected wearable against one resident copy of
// the trained models. Sessions over the same bundle are independent:
// driving them from different threads needs no synchronization beyond the
// bundle's shared (read-only) ownership.
#pragma once

#include <functional>
#include <memory>

#include "core/health.hpp"
#include "core/model_bundle.hpp"
#include "dsp/sbc.hpp"
#include "features/workspace.hpp"
#include "obs/pipeline.hpp"

namespace airfinger::core {

/// One sensor stream's state machine. Frames (one sample per photodiode)
/// are pushed in; the session runs SBC per channel, streams the summed
/// ΔRSS² through the dynamic-threshold segmenter, and hands each completed
/// segment to the bundle's decision core. Results are delivered as events
/// through a caller-supplied callback, including early scroll-direction
/// events emitted before the gesture ends (Sec. IV-D-1).
class Session {
 public:
  using EventCallback = std::function<void(const GestureEvent&)>;

  /// O(1): shares the bundle, allocates only the per-stream buffers. The
  /// fault policy is taken from the bundle's config.
  explicit Session(std::shared_ptr<const ModelBundle> bundle);

  /// Same, with an explicit per-stream fault policy override.
  Session(std::shared_ptr<const ModelBundle> bundle, FaultPolicy policy);

  const ModelBundle& bundle() const { return *bundle_; }
  const std::shared_ptr<const ModelBundle>& bundle_ptr() const {
    return bundle_;
  }
  const AirFingerConfig& config() const { return bundle_->config(); }

  /// Feeds one frame (one RSS sample per channel). Events triggered by
  /// this frame are delivered synchronously through `callback`.
  ///
  /// Input validation: a wrong-width frame raises PreconditionError
  /// (reporting the observed and expected channel counts) and leaves the
  /// session untouched. A non-finite sample raises StreamFaultError in
  /// strict mode (policy().enabled == false); with the degraded-mode
  /// policy enabled it instead quarantines the segmenter until the stream
  /// has been clean for policy().recovery_frames, then re-calibrates (see
  /// DESIGN.md §12). On clean input both modes are bit-identical.
  void push_frame(std::span<const double> frame,
                  const EventCallback& callback);

  /// Flushes any open segment at end of stream.
  void finish(const EventCallback& callback);

  /// Processes a whole recorded trace through the streaming path,
  /// returning all events.
  std::vector<GestureEvent> process_trace(
      const sensor::MultiChannelTrace& trace);

  /// Samples consumed so far.
  std::size_t frames_seen() const { return frames_; }

  /// The active degraded-mode policy (see core/health.hpp).
  const FaultPolicy& policy() const { return policy_; }

  /// Stream-health counters since construction or the last reset(),
  /// assembled from the session's metric registry (the counters live
  /// there since the observability layer subsumed the standalone struct;
  /// see DESIGN.md §13).
  HealthStats health() const;

  /// The session's observability bundle: metric registry, stage-latency
  /// histograms, and the structured pipeline-event ring. Mutable access
  /// is for configuration (clock injection, span toggling) — recording is
  /// the session's own job. Single-writer like all per-session state.
  obs::PipelineObservability& observability() { return obs_; }
  const obs::PipelineObservability& observability() const { return obs_; }

  /// True while the degraded-mode policy has the segmenter quarantined.
  bool quarantined() const { return quarantined_; }

  /// Clears all streaming state (SBC delay lines, segmenter calibration,
  /// ΔRSS² history, quarantine state, health counters) so the session can
  /// process an unrelated recording. The shared bundle is untouched.
  void reset();

 private:
  /// Updates fault detectors for one frame; true when a fault fired.
  bool scan_frame(std::span<const double> frame);
  /// Feeds one validated frame through the pipeline body (detector accept,
  /// SBC, segmenter, probe, decide). The caller has already counted the
  /// frame in af_frames_total; this advances the stream clock. Called once
  /// per frame on the clean path and again for each held frame a repair
  /// releases — feeding repaired values through here is what makes an
  /// exact repair byte-identical to the uncorrupted trace.
  void ingest(std::span<const double> frame, const EventCallback& callback);
  /// True when the policy-enabled session runs the streaming artifact
  /// detectors (policy().artifact.detect and channels fit).
  bool artifact_active() const { return !detectors_.empty(); }
  /// The impulse repair gate: inspects the candidate frame against the
  /// detectors without committing it. Returns true when the frame was
  /// consumed (held, repaired-and-fed, or escalated); false hands the
  /// frame to the normal ingest path.
  bool artifact_gate(std::span<const double> frame,
                     const EventCallback& callback);
  /// Detector accept + sustained-confidence escalation for one fed frame;
  /// true when the frame triggered an artifact quarantine instead of
  /// being interpreted.
  bool artifact_accept(std::span<const double> frame);
  /// Resolves the current hold by linear interpolation and feeds the held
  /// frames (then `frame`) through ingest().
  void repair_hold(std::span<const double> frame,
                   const EventCallback& callback);
  /// Drops the held frames as quarantined (hold unresolved at a burst
  /// fault, escalation, or finish()).
  void drop_hold();
  /// Records one artifact classification (event + per-class counter).
  void note_artifact(ArtifactClass cls, std::uint64_t begin,
                     std::uint64_t end);
  void enter_quarantine();
  /// Leaves quarantine: fresh SBC delay lines, segmenter calibration, and
  /// history, re-based at the current stream position.
  void recalibrate();
  void handle_segment(const dsp::Segment& segment,
                      const EventCallback& callback);
  /// Counts and trace-records one delivered GestureEvent.
  void note_emission(const GestureEvent& event);
  ProcessedTrace window_view(const dsp::Segment& segment) const;
  double now() const {
    return static_cast<double>(frames_) / config().sample_rate_hz;
  }

  std::shared_ptr<const ModelBundle> bundle_;
  FaultPolicy policy_;
  std::vector<dsp::SquareBasedCalculator> sbc_;
  dsp::DynamicThresholdSegmenter segmenter_;
  /// Recent ΔRSS² per channel. Indexing is absolute sample counts; the
  /// vectors hold samples [history_base_, frames_) and are compacted
  /// between gestures so memory stays bounded (config().history_limit).
  /// Reserved up front (and compacted by erase, which keeps capacity) so
  /// steady-state frames never reallocate.
  std::vector<std::vector<double>> history_;
  std::size_t history_base_ = 0;
  std::size_t frames_ = 0;
  /// Early-direction bookkeeping for the currently open segment.
  bool early_direction_sent_ = false;
  std::size_t open_segment_begin_ = 0;
  /// Local-index view of the currently open segment, maintained
  /// incrementally (O(channels) per frame) instead of re-copied per probe.
  /// Valid from segment open until the segment is decided or abandoned;
  /// spans [open_segment_begin_, frames_) while valid.
  ProcessedTrace open_view_;
  bool open_view_valid_ = false;
  /// Per-session scratch arena for the decision core and feature bank; at
  /// its high-water mark, probing and deciding allocate nothing.
  features::Workspace workspace_;
  /// Incremental timing analysis over the open segment: fed one frame at a
  /// time so each early-direction probe costs amortized O(n) instead of
  /// recomputing segment_timing() from scratch. Configured from the
  /// bundle's probe timing config when the channel count supports it.
  OpenSegmentTiming timing_cache_;
  /// Metrics, stage spans, and the pipeline-event ring (DESIGN.md §13).
  /// Record-only: nothing in here feeds back into any decision, so
  /// emissions are bit-identical with instrumentation on or off.
  obs::PipelineObservability obs_;
  // ---- degraded-mode state (core/health.hpp; inert when policy_ is off).
  bool quarantined_ = false;
  /// Clean frames seen in a row while quarantined (recovery progress).
  std::size_t clean_run_ = 0;
  /// Absolute sample index the segmenter's position 0 corresponds to.
  /// 0 until the first recalibration; segmenter-space segment indices are
  /// shifted by this before any history lookup or event emission.
  std::size_t segment_offset_ = 0;
  /// Per-channel fault detectors: last sample value and the lengths of the
  /// current identical-value and saturated runs. Fixed-size, allocated at
  /// construction — the per-frame scan touches no heap.
  std::vector<double> last_sample_;
  std::vector<std::uint32_t> same_run_;
  std::vector<std::uint32_t> sat_run_;
  // ---- graded artifact state (DESIGN.md §17; empty when detect is off).
  /// One streaming detector per channel (sensor/artifact.hpp); all buffers
  /// preallocated, so the per-frame artifact path stays 0-alloc.
  std::vector<sensor::ChannelArtifactDetector> detectors_;
  /// Hold buffer for suspected impulses: up to repair_limit frames
  /// (channel-major, flat) withheld from the pipeline until repaired or
  /// escalated.
  std::vector<double> hold_frames_;
  std::vector<std::uint8_t> hold_flag_;  ///< Per channel: impulse-flagged.
  std::size_t hold_len_ = 0;
  /// Stream positions of recent repair episodes (ring of
  /// crackle_repairs entries) for the crackle rate monitor.
  std::vector<std::uint64_t> repair_ring_;
  std::size_t repair_ring_head_ = 0;
  std::uint64_t repairs_total_ = 0;
  /// Sustained-confidence run lengths for the slow escalation classes.
  std::uint32_t impulsive_run_ = 0;
  std::uint32_t drift_run_ = 0;
  std::uint32_t flicker_run_ = 0;
};

}  // namespace airfinger::core
