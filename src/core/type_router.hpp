// Detect-aimed vs track-aimed gesture distinction (Sec. IV-E).
//
// For a detect-aimed gesture the ascending points of all photodiodes occur
// almost simultaneously; for a track-aimed gesture they occur in order. The
// router compares the spread of ascending points against the threshold
// I_g (30 ms in Sec. V-A).
#pragma once

#include "core/ascending.hpp"
#include "core/data_processor.hpp"

namespace airfinger::core {

/// Router tunables.
struct TypeRouterConfig {
  double ig_threshold_s = 0.030;  ///< I_g.
  /// Minimum net swing of the spatial asymmetry A(t) for a segment to be
  /// track-aimed (A spans [-1, 1]).
  double asymmetry_threshold = 0.25;
  /// The net swing must also be at least this fraction of the A path's
  /// total range (monotone sweep, not an oscillation that happens to end
  /// off-centre).
  double monotone_fraction = 0.30;
  TimingConfig timing{};
};

/// Gesture category decided at the start of gesture performance.
enum class GestureCategory { kDetectAimed, kTrackAimed };

/// Stateless router.
class TypeRouter {
 public:
  explicit TypeRouter(TypeRouterConfig config = {});

  const TypeRouterConfig& config() const { return config_; }

  /// Classifies the gesture in `segment`: track-aimed when the energy is a
  /// single sweep (unimodal envelope) whose per-channel arrival times are
  /// ordered with an outer difference of at least I_g; detect-aimed
  /// otherwise (simultaneous arrivals or a cyclic multi-hump envelope).
  GestureCategory route(const ProcessedTrace& processed,
                        const dsp::Segment& segment) const;

  /// The routing decision on a precomputed timing analysis (which must
  /// have been produced with this router's TimingConfig over the padded
  /// segment windows). Lets the decision core compute one SegmentTiming
  /// and share it between routing and ZEBRA tracking.
  ///
  /// Contract (load-bearing for the probe's change-detection gate,
  /// DESIGN.md §16): the verdict is a pure function of `timing.active`,
  /// `timing.first_active`, and the asymmetry figures — it reads nothing
  /// else, so bit-identical values of those fields imply the identical
  /// verdict. OpenSegmentTiming::refresh() tracks exactly this field set;
  /// widening route_timing()'s inputs requires widening the gate.
  GestureCategory route_timing(const SegmentTiming& timing) const;

 private:
  TypeRouterConfig config_;
};

}  // namespace airfinger::core
