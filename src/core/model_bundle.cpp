#include "core/model_bundle.hpp"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <string_view>

#include <chrono>

#include "common/error.hpp"
#include "ml/serialize.hpp"
#include "obs/pipeline.hpp"

namespace airfinger::core {

std::string GestureEvent::describe() const {
  std::ostringstream os;
  os.precision(3);
  os << std::fixed << "[t=" << time_s << "s] ";
  switch (type) {
    case Type::kDetectGesture:
      os << "gesture: " << (gesture ? synth::motion_name(*gesture) : "?");
      break;
    case Type::kScrollDetected:
      os << "scroll "
         << (scroll && scroll->direction > 0 ? "up" : "down")
         << " v=" << (scroll ? scroll->velocity_mps * 1000.0 : 0.0)
         << "mm/s D=" << (scroll ? scroll->final_displacement() * 1000.0 : 0.0)
         << "mm";
      break;
    case Type::kScrollDirection:
      os << "scroll direction: "
         << (scroll && scroll->direction > 0 ? "up" : "down")
         << " (early)";
      break;
    case Type::kNonGesture:
      os << "rejected non-gesture";
      break;
  }
  return os.str();
}

ModelBundle::ModelBundle(AirFingerConfig config, DetectRecognizer recognizer,
                         std::optional<InterferenceFilter> filter)
    : config_(config),
      recognizer_(std::move(recognizer)),
      filter_(std::move(filter)),
      router_(config.router),
      zebra_(config.zebra),
      timing_shared_(config.router.timing == config.zebra.timing) {
  AF_EXPECT(config_.sample_rate_hz > 0.0, "sample rate must be positive");
  AF_EXPECT(config_.channels >= 2, "engine requires at least two channels");
  AF_EXPECT(recognizer_.is_fitted(),
            "ModelBundle requires a fitted recognizer");
  AF_EXPECT(!config_.interference_filtering || (filter_ &&
                filter_->is_fitted()),
            "interference filtering enabled but no fitted filter given");
}

std::shared_ptr<const ModelBundle> ModelBundle::create(
    AirFingerConfig config, DetectRecognizer recognizer,
    std::optional<InterferenceFilter> filter) {
  return std::make_shared<const ModelBundle>(config, std::move(recognizer),
                                             std::move(filter));
}

GestureEvent ModelBundle::decide(const ProcessedTrace& view,
                                 const dsp::Segment& local) const {
  features::Workspace workspace;
  return decide(view, local, workspace);
}

namespace {

/// Per-channel span views of a padded segment window, held in the arena.
std::span<const std::span<const double>> window_spans(
    const ProcessedTrace& view, const dsp::Segment& padded,
    common::ScratchArena& arena) {
  const auto windows =
      arena.alloc<std::span<const double>>(view.delta_rss2.size());
  for (std::size_t c = 0; c < windows.size(); ++c)
    windows[c] = {view.delta_rss2[c].data() + padded.begin, padded.length()};
  return windows;
}

}  // namespace

std::optional<ScrollEstimate> ModelBundle::probe_direction(
    const ProcessedTrace& view, const dsp::Segment& local,
    features::Workspace& workspace) const {
  AF_EXPECT(local.end <= view.energy.size() && local.begin < local.end,
            "segment out of range");
  AF_EXPECT(view.sample_rate_hz > 0.0, "invalid sample rate");
  common::ScratchArena& arena = workspace.arena;
  const auto probe_frame = arena.frame();

  const dsp::Segment padded =
      pad_segment(local, view.energy.size(),
                  router_.config().timing.analysis_pad_s, view.sample_rate_hz);
  const auto windows = window_spans(view, padded, arena);
  const SegmentTiming timing = segment_timing(
      windows, view.sample_rate_hz, router_.config().timing, arena);
  if (router_.route_timing(timing) != GestureCategory::kTrackAimed)
    return std::nullopt;
  obs::Span zebra_span(workspace.obs, obs::Stage::kZebra);
  if (timing_shared_)
    return zebra_.track_timing(timing, windows, local, view.sample_rate_hz);
  return zebra_.track(view, local);
}

std::optional<ScrollEstimate> ModelBundle::probe_direction(
    const ProcessedTrace& view, const dsp::Segment& local,
    features::Workspace& workspace, OpenSegmentTiming& cache) const {
  AF_EXPECT(local.end <= view.energy.size() && local.begin < local.end,
            "segment out of range");
  AF_EXPECT(view.sample_rate_hz > 0.0, "invalid sample rate");
  common::ScratchArena& arena = workspace.arena;
  const auto probe_frame = arena.frame();

  // The probe always analyses the full open-segment view, so the analysis
  // padding cannot extend past it — the padded window is the view itself,
  // which is exactly what the incremental cache covers.
  const dsp::Segment padded =
      pad_segment(local, view.energy.size(),
                  router_.config().timing.analysis_pad_s, view.sample_rate_hz);
  AF_ASSERT(padded.begin == 0 && padded.end == view.energy.size() &&
                cache.size() == view.energy.size(),
            "timing cache out of sync with the open-segment view");
  const auto windows = window_spans(view, padded, arena);
  // Change-detection gate: refresh() advances the cache's decision state
  // and proves whether anything the router reads moved bits since the
  // previous probe. If nothing did and that probe concluded "no emission",
  // this one would too (the verdict is a pure function of the unchanged
  // statistics) — return the cached nullopt without routing. Emission
  // verdicts are never short-circuited: the estimate's duration grows
  // with the window even when the timing state does not.
  const bool changed = cache.refresh(windows);
  if (!changed && cache.probe_verdict_no_emit()) return std::nullopt;
  const SegmentTiming timing = cache.timing(windows, arena);
  if (router_.route_timing(timing) != GestureCategory::kTrackAimed) {
    cache.record_probe_verdict_no_emit(true);
    return std::nullopt;
  }
  cache.record_probe_verdict_no_emit(false);
  obs::Span zebra_span(workspace.obs, obs::Stage::kZebra);
  if (timing_shared_)
    return zebra_.track_timing(timing, windows, local, view.sample_rate_hz);
  return zebra_.track(view, local);
}

GestureEvent ModelBundle::decide(const ProcessedTrace& view,
                                 const dsp::Segment& local,
                                 features::Workspace& workspace) const {
  AF_EXPECT(local.end <= view.energy.size() && local.begin < local.end,
            "segment out of range");
  AF_EXPECT(view.sample_rate_hz > 0.0, "invalid sample rate");
  common::ScratchArena& arena = workspace.arena;
  const auto decide_frame = arena.frame();

  GestureEvent event;
  const dsp::Segment padded_route =
      pad_segment(local, view.energy.size(),
                  router_.config().timing.analysis_pad_s, view.sample_rate_hz);
  const auto route_windows = window_spans(view, padded_route, arena);
  const SegmentTiming timing = segment_timing(
      route_windows, view.sample_rate_hz, router_.config().timing, arena);
  GestureCategory category = router_.route_timing(timing);

  // Hybrid routing: let the eight-class recognizer veto the rule when it
  // is confident the rule misrouted (see AirFingerConfig::hybrid_routing).
  // The feature row and probabilities live in the arena until this decide
  // frame unwinds.
  std::span<double> row;
  std::span<double> proba;
  auto ensure_classified = [&] {
    if (row.empty()) {
      const dsp::Segment padded =
          pad_segment(local, view.energy.size(),
                      config_.processing.feature_pad_s, view.sample_rate_hz);
      const auto windows = window_spans(view, padded, arena);
      row = arena.alloc<double>(recognizer_.bank().feature_count());
      {
        obs::Span span(workspace.obs, obs::Stage::kFeatures);
        recognizer_.extract_into(windows, workspace, row);
      }
      proba = arena.alloc<double>(recognizer_.num_classes());
      {
        obs::Span span(workspace.obs, obs::Stage::kForest);
        recognizer_.predict_proba_into(row, arena, proba);
      }
    }
  };
  if (config_.hybrid_routing) {
    ensure_classified();
    const int best = static_cast<int>(
        std::max_element(proba.begin(), proba.end()) - proba.begin());
    const double margin = proba[static_cast<std::size_t>(best)];
    const bool classifier_says_track =
        synth::is_track_aimed(static_cast<synth::MotionKind>(best));
    if (margin >= config_.hybrid_override_margin) {
      category = classifier_says_track ? GestureCategory::kTrackAimed
                                       : GestureCategory::kDetectAimed;
    }
  }

  if (category == GestureCategory::kTrackAimed) {
    // When router and ZEBRA share one TimingConfig the routing timing is
    // exactly what ZEBRA would recompute — reuse it.
    const auto estimate = [&] {
      obs::Span span(workspace.obs, obs::Stage::kZebra);
      return timing_shared_ ? zebra_.track_timing(timing, route_windows,
                                                  local, view.sample_rate_hz)
                            : zebra_.track(view, local);
    }();
    if (estimate) {
      event.type = GestureEvent::Type::kScrollDetected;
      event.scroll = *estimate;
      return event;
    }
    // ZEBRA saw nothing decisive: fall through to the detect path.
  }

  ensure_classified();
  if (filter_ && config_.interference_filtering &&
      filter_->gesture_probability_with(row, arena) <
          config_.rejection_threshold) {
    event.type = GestureEvent::Type::kNonGesture;
    return event;
  }

  int label = static_cast<int>(
      std::max_element(proba.begin(), proba.end()) - proba.begin());
  if (synth::is_track_aimed(static_cast<synth::MotionKind>(label))) {
    // The recognizer itself says scroll (rule and veto disagreed): pick the
    // best detect-aimed class instead.
    double best_p = -1.0;
    int best_label = 0;
    for (std::size_t c = 0; c < proba.size(); ++c) {
      if (synth::is_track_aimed(static_cast<synth::MotionKind>(c))) continue;
      if (proba[c] > best_p) {
        best_p = proba[c];
        best_label = static_cast<int>(c);
      }
    }
    label = best_label;
  }
  event.type = GestureEvent::Type::kDetectGesture;
  event.gesture = static_cast<synth::MotionKind>(label);
  return event;
}

std::vector<GestureEvent> ModelBundle::classify_recording(
    const sensor::MultiChannelTrace& trace) const {
  AF_EXPECT(trace.channel_count() == config_.channels,
            "trace channel count mismatch");
  DataProcessorConfig proc_config = config_.processing;
  proc_config.segmenter.sample_rate_hz = trace.sample_rate_hz();
  const DataProcessor processor(proc_config);
  const ProcessedTrace processed = processor.process(trace);

  std::vector<GestureEvent> events;
  features::Workspace workspace;  // reused across the recording's segments
  for (const auto& segment : processed.segments) {
    GestureEvent event = decide(processed, segment, workspace);
    event.time_s =
        static_cast<double>(segment.end) / trace.sample_rate_hz();
    event.segment_begin = segment.begin;
    event.segment_end = segment.end;
    events.push_back(event);
  }
  return events;
}

// -------------------------------------------------------------- artifact

namespace {

void write_scalar(std::ostream& os, const char* key, double v) {
  os << key << ' ';
  ml::detail::write_double(os, v);
  os << "\n";
}

double read_scalar(std::istream& is, const char* key) {
  ml::detail::expect_tag(is, key);
  return ml::detail::read_double(is);
}

void write_count(std::ostream& os, const char* key, std::size_t v) {
  os << key << ' ' << v << "\n";
}

std::size_t read_count(std::istream& is, const char* key) {
  ml::detail::expect_tag(is, key);
  std::size_t v = 0;
  is >> v;
  AF_EXPECT(is.good(), std::string("serialized bundle: malformed '") + key +
                           "' value");
  return v;
}

void write_flag(std::ostream& os, const char* key, bool v) {
  os << key << ' ' << (v ? 1 : 0) << "\n";
}

bool read_flag(std::istream& is, const char* key) {
  const std::size_t v = read_count(is, key);
  AF_EXPECT(v <= 1, std::string("serialized bundle: '") + key +
                        "' must be 0 or 1");
  return v == 1;
}

/// FNV-1a 64-bit over the artifact payload. The footer this feeds lets
/// load() reject any bit corruption before a single model byte is parsed.
std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

constexpr const char kChecksumKey[] = "checksum ";

}  // namespace

void ModelBundle::save(std::ostream& os) const {
  // The artifact is written as payload + integrity footer: a final line
  // `checksum <decimal FNV-1a64 of every preceding byte>`. load() verifies
  // the footer before parsing, so truncation or bit corruption anywhere in
  // the file is rejected up front instead of surfacing as a half-parsed
  // model (or an absurd allocation from a corrupted count).
  std::ostringstream payload;
  save_payload(payload);
  const std::string bytes = payload.str();
  os << bytes << kChecksumKey << fnv1a64(bytes) << "\n";
}

void ModelBundle::save_payload(std::ostream& os) const {
  os << "afbundle " << kFormatVersion << "\n";
  // Engine-level scalars. Train-time outputs (notably the fitted ZEBRA
  // velocity gain) travel with the artifact; structural configuration is
  // re-supplied at load (see the header contract).
  write_scalar(os, "sample_rate_hz", config_.sample_rate_hz);
  write_count(os, "channels", config_.channels);
  write_flag(os, "interference_filtering", config_.interference_filtering);
  write_flag(os, "hybrid_routing", config_.hybrid_routing);
  write_scalar(os, "hybrid_override_margin", config_.hybrid_override_margin);
  write_count(os, "history_limit", config_.history_limit);
  write_scalar(os, "rejection_threshold", config_.rejection_threshold);
  write_scalar(os, "sbc_window_s", config_.processing.sbc_window_s);
  write_scalar(os, "feature_pad_s", config_.processing.feature_pad_s);
  write_scalar(os, "ig_threshold_s", config_.router.ig_threshold_s);
  write_scalar(os, "asymmetry_threshold",
               config_.router.asymmetry_threshold);
  write_scalar(os, "monotone_fraction", config_.router.monotone_fraction);
  write_scalar(os, "pd_span_m", config_.zebra.pd_span_m);
  write_scalar(os, "experience_velocity_mps",
               config_.zebra.experience_velocity_mps);
  write_scalar(os, "velocity_gain", config_.zebra.velocity_gain);
  os << "recognizer\n";
  recognizer_.save(os);
  write_flag(os, "filter", filter_.has_value());
  if (filter_) filter_->save(os);
  os << "end\n";
}

void ModelBundle::save_file(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  AF_EXPECT(static_cast<bool>(os),
            "cannot open bundle file for writing: " + path);
  save(os);
  AF_EXPECT(static_cast<bool>(os), "failed writing bundle file: " + path);
}

std::shared_ptr<const ModelBundle> ModelBundle::load(std::istream& is,
                                                     AirFingerConfig base) {
  const auto load_start = std::chrono::steady_clock::now();
  // Slurp and verify the integrity footer before parsing anything: a
  // corrupted artifact must never reach the model loaders (where a flipped
  // count would otherwise trigger absurd allocations or a half-built
  // bundle). Artifacts are small (one trained model set), so buffering the
  // whole stream is cheap.
  std::string blob{std::istreambuf_iterator<char>(is),
                   std::istreambuf_iterator<char>()};
  AF_EXPECT(!blob.empty(), "bundle artifact is empty");
  AF_EXPECT(blob.back() == '\n',
            "bundle artifact is truncated (missing trailing newline)");
  const std::size_t key_len = std::string_view(kChecksumKey).size();
  const std::size_t pos = blob.rfind(kChecksumKey);
  AF_EXPECT(pos != std::string::npos && pos > 0 && blob[pos - 1] == '\n',
            "bundle artifact is missing its integrity footer");
  AF_EXPECT(blob.find('\n', pos) == blob.size() - 1,
            "bundle artifact has data after its integrity footer");
  const std::string_view digits(blob.data() + pos + key_len,
                                blob.size() - 1 - (pos + key_len));
  std::uint64_t stored = 0;
  const auto [ptr, ec] =
      std::from_chars(digits.data(), digits.data() + digits.size(), stored);
  AF_EXPECT(ec == std::errc{} && ptr == digits.data() + digits.size() &&
                !digits.empty(),
            "bundle artifact has a malformed integrity footer");
  const std::string_view payload(blob.data(), pos);
  AF_EXPECT(fnv1a64(payload) == stored,
            "bundle artifact failed its integrity check (corrupt or "
            "truncated)");
  std::istringstream payload_stream{std::string(payload)};
  auto bundle = load_payload(payload_stream, base);
  bundle->load_ns_ = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - load_start)
          .count());
  return bundle;
}

std::shared_ptr<ModelBundle> ModelBundle::load_payload(std::istream& is,
                                                       AirFingerConfig base) {
  ml::detail::expect_tag(is, "afbundle");
  int version = 0;
  is >> version;
  AF_EXPECT(is.good() && version == kFormatVersion,
            "unsupported bundle format version");

  AirFingerConfig config = base;
  config.sample_rate_hz = read_scalar(is, "sample_rate_hz");
  config.channels = read_count(is, "channels");
  config.interference_filtering = read_flag(is, "interference_filtering");
  config.hybrid_routing = read_flag(is, "hybrid_routing");
  config.hybrid_override_margin =
      read_scalar(is, "hybrid_override_margin");
  config.history_limit = read_count(is, "history_limit");
  config.rejection_threshold = read_scalar(is, "rejection_threshold");
  config.processing.sbc_window_s = read_scalar(is, "sbc_window_s");
  config.processing.feature_pad_s = read_scalar(is, "feature_pad_s");
  config.router.ig_threshold_s = read_scalar(is, "ig_threshold_s");
  config.router.asymmetry_threshold =
      read_scalar(is, "asymmetry_threshold");
  config.router.monotone_fraction = read_scalar(is, "monotone_fraction");
  config.zebra.pd_span_m = read_scalar(is, "pd_span_m");
  config.zebra.experience_velocity_mps =
      read_scalar(is, "experience_velocity_mps");
  config.zebra.velocity_gain = read_scalar(is, "velocity_gain");

  ml::detail::expect_tag(is, "recognizer");
  DetectRecognizer recognizer =
      DetectRecognizer::load(is, config.recognizer);
  std::optional<InterferenceFilter> filter;
  if (read_flag(is, "filter"))
    filter = InterferenceFilter::load(is, recognizer.bank(),
                                      config.interference);
  ml::detail::expect_tag(is, "end");
  return std::make_shared<ModelBundle>(config, std::move(recognizer),
                                       std::move(filter));
}

std::shared_ptr<const ModelBundle> ModelBundle::load_file(
    const std::string& path, AirFingerConfig base) {
  std::ifstream is(path, std::ios::binary);
  AF_EXPECT(static_cast<bool>(is), "cannot open bundle file: " + path);
  return load(is, base);
}

std::shared_ptr<const ModelBundle> ModelBundle::load_legacy(
    std::istream& recognizer_stream, std::istream* filter_stream,
    AirFingerConfig base) {
  AirFingerConfig config = base;
  DetectRecognizer recognizer =
      DetectRecognizer::load(recognizer_stream, config.recognizer);
  std::optional<InterferenceFilter> filter;
  if (filter_stream) {
    filter = InterferenceFilter::load(*filter_stream, recognizer.bank(),
                                      config.interference);
  } else {
    config.interference_filtering = false;
  }
  return create(config, std::move(recognizer), std::move(filter));
}

bool ModelBundle::sniff_bundle(std::istream& is) {
  const auto start = is.tellg();
  std::string tag;
  is >> tag;
  is.clear();
  is.seekg(start);
  return tag == "afbundle";
}

}  // namespace airfinger::core
