#include "core/airfinger.hpp"

namespace airfinger::core {

AirFinger::AirFinger(AirFingerConfig config, DetectRecognizer recognizer,
                     std::optional<InterferenceFilter> filter)
    : session_(ModelBundle::create(config, std::move(recognizer),
                                   std::move(filter))) {}

AirFinger::AirFinger(std::shared_ptr<const ModelBundle> bundle)
    : session_(std::move(bundle)) {}

}  // namespace airfinger::core
