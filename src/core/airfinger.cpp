#include "core/airfinger.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"

namespace airfinger::core {

std::string GestureEvent::describe() const {
  std::ostringstream os;
  os.precision(3);
  os << std::fixed << "[t=" << time_s << "s] ";
  switch (type) {
    case Type::kDetectGesture:
      os << "gesture: " << (gesture ? synth::motion_name(*gesture) : "?");
      break;
    case Type::kScrollDetected:
      os << "scroll "
         << (scroll && scroll->direction > 0 ? "up" : "down")
         << " v=" << (scroll ? scroll->velocity_mps * 1000.0 : 0.0)
         << "mm/s D=" << (scroll ? scroll->final_displacement() * 1000.0 : 0.0)
         << "mm";
      break;
    case Type::kScrollDirection:
      os << "scroll direction: "
         << (scroll && scroll->direction > 0 ? "up" : "down")
         << " (early)";
      break;
    case Type::kNonGesture:
      os << "rejected non-gesture";
      break;
  }
  return os.str();
}

AirFinger::AirFinger(AirFingerConfig config, DetectRecognizer recognizer,
                     std::optional<InterferenceFilter> filter)
    : config_(config),
      recognizer_(std::move(recognizer)),
      filter_(std::move(filter)),
      router_(config.router),
      zebra_(config.zebra),
      segmenter_([&config] {
        dsp::SegmenterConfig seg = config.processing.segmenter;
        seg.sample_rate_hz = config.sample_rate_hz;
        return seg;
      }()) {
  AF_EXPECT(config_.sample_rate_hz > 0.0, "sample rate must be positive");
  AF_EXPECT(config_.channels >= 2, "engine requires at least two channels");
  AF_EXPECT(recognizer_.is_fitted(),
            "AirFinger requires a fitted recognizer");
  AF_EXPECT(!config_.interference_filtering || (filter_ &&
                filter_->is_fitted()),
            "interference filtering enabled but no fitted filter given");

  const DataProcessor processor(config_.processing);
  const std::size_t w = processor.window_samples(config_.sample_rate_hz);
  for (std::size_t c = 0; c < config_.channels; ++c)
    sbc_.emplace_back(w);
  history_.resize(config_.channels);
}

ProcessedTrace AirFinger::window_view(const dsp::Segment& segment) const {
  AF_ASSERT(segment.begin >= history_base_,
            "segment reaches behind the compacted history");
  const std::size_t begin = segment.begin - history_base_;
  const std::size_t end = segment.end - history_base_;
  ProcessedTrace view;
  view.sample_rate_hz = config_.sample_rate_hz;
  view.delta_rss2.reserve(history_.size());
  for (const auto& ch : history_) {
    AF_ASSERT(end <= ch.size(), "segment reaches beyond recorded history");
    view.delta_rss2.emplace_back(ch.begin() + static_cast<long>(begin),
                                 ch.begin() + static_cast<long>(end));
  }
  view.energy.assign(segment.length(), 0.0);
  for (const auto& ch : view.delta_rss2)
    for (std::size_t i = 0; i < ch.size(); ++i) view.energy[i] += ch[i];
  return view;
}

GestureEvent AirFinger::decide(const ProcessedTrace& view,
                               const dsp::Segment& local) const {
  GestureEvent event;
  GestureCategory category = router_.route(view, local);

  // Hybrid routing: let the eight-class recognizer veto the rule when it
  // is confident the rule misrouted (see AirFingerConfig::hybrid_routing).
  std::vector<double> row;
  std::vector<double> proba;
  auto ensure_classified = [&] {
    if (row.empty()) {
      const dsp::Segment padded =
          pad_segment(local, view.energy.size(),
                      config_.processing.feature_pad_s, view.sample_rate_hz);
      std::vector<std::span<const double>> windows;
      windows.reserve(view.delta_rss2.size());
      for (const auto& ch : view.delta_rss2)
        windows.emplace_back(ch.data() + padded.begin, padded.length());
      row = recognizer_.extract(
          std::span<const std::span<const double>>(windows));
      proba = recognizer_.predict_proba(row);
    }
  };
  if (config_.hybrid_routing) {
    ensure_classified();
    const int best = static_cast<int>(
        std::max_element(proba.begin(), proba.end()) - proba.begin());
    const double margin = proba[static_cast<std::size_t>(best)];
    const bool classifier_says_track =
        synth::is_track_aimed(static_cast<synth::MotionKind>(best));
    if (margin >= config_.hybrid_override_margin) {
      category = classifier_says_track ? GestureCategory::kTrackAimed
                                       : GestureCategory::kDetectAimed;
    }
  }

  if (category == GestureCategory::kTrackAimed) {
    if (const auto estimate = zebra_.track(view, local)) {
      event.type = GestureEvent::Type::kScrollDetected;
      event.scroll = *estimate;
      return event;
    }
    // ZEBRA saw nothing decisive: fall through to the detect path.
  }

  ensure_classified();
  if (filter_ && config_.interference_filtering &&
      filter_->gesture_probability(row) < config_.rejection_threshold) {
    event.type = GestureEvent::Type::kNonGesture;
    return event;
  }

  int label = static_cast<int>(
      std::max_element(proba.begin(), proba.end()) - proba.begin());
  if (synth::is_track_aimed(static_cast<synth::MotionKind>(label))) {
    // The recognizer itself says scroll (rule and veto disagreed): pick the
    // best detect-aimed class instead.
    double best_p = -1.0;
    int best_label = 0;
    for (std::size_t c = 0; c < proba.size(); ++c) {
      if (synth::is_track_aimed(static_cast<synth::MotionKind>(c))) continue;
      if (proba[c] > best_p) {
        best_p = proba[c];
        best_label = static_cast<int>(c);
      }
    }
    label = best_label;
  }
  event.type = GestureEvent::Type::kDetectGesture;
  event.gesture = static_cast<synth::MotionKind>(label);
  return event;
}

void AirFinger::handle_segment(const dsp::Segment& segment,
                               const EventCallback& callback) {
  // Work on the segment window re-based to local indices.
  const ProcessedTrace view = window_view(segment);
  GestureEvent event = decide(view, dsp::Segment{0, segment.length()});
  event.time_s = now();
  event.segment_begin = segment.begin;
  event.segment_end = segment.end;
  callback(event);
}

void AirFinger::push_frame(std::span<const double> frame,
                           const EventCallback& callback) {
  AF_EXPECT(frame.size() == config_.channels,
            "frame arity must match channel count");
  AF_EXPECT(static_cast<bool>(callback), "event callback is required");

  double energy = 0.0;
  for (std::size_t c = 0; c < frame.size(); ++c) {
    const double d = sbc_[c].push(frame[c]);
    history_[c].push_back(d);
    energy += d;
  }

  const bool was_open = segmenter_.in_gesture();
  const auto completed = segmenter_.push(energy);
  ++frames_;

  if (!was_open && segmenter_.in_gesture()) {
    open_segment_begin_ = frames_ - 1;
    early_direction_sent_ = false;
  }

  // Early scroll-direction verdict: once the open segment is longer than
  // I_g and the router already sees an ordered rise, report direction
  // without waiting for the gesture to finish.
  if (segmenter_.in_gesture() && !early_direction_sent_) {
    const std::size_t open_len = frames_ - open_segment_begin_;
    const auto ig_samples = static_cast<std::size_t>(
        config_.router.ig_threshold_s * config_.sample_rate_hz);
    if (open_len > 2 * ig_samples + 2) {
      const dsp::Segment open_seg{open_segment_begin_, frames_};
      ProcessedTrace view = window_view(open_seg);
      const dsp::Segment local{0, open_seg.length()};
      if (router_.route(view, local) == GestureCategory::kTrackAimed) {
        if (const auto est = zebra_.track(view, local)) {
          GestureEvent event;
          event.type = GestureEvent::Type::kScrollDirection;
          event.time_s = now();
          event.segment_begin = open_seg.begin;
          event.segment_end = open_seg.end;
          event.scroll = *est;
          early_direction_sent_ = true;
          callback(event);
        }
      }
    }
  }

  if (completed) handle_segment(*completed, callback);

  // Compact old history between gestures (and only after any completed
  // segment has been analysed): keep the most recent half of the limit so
  // any segment the segmenter can still close stays in range.
  if (!segmenter_.in_gesture() &&
      history_.front().size() > config_.history_limit) {
    const std::size_t keep = config_.history_limit / 2;
    const std::size_t drop = history_.front().size() - keep;
    for (auto& ch : history_)
      ch.erase(ch.begin(), ch.begin() + static_cast<long>(drop));
    history_base_ += drop;
  }
}

void AirFinger::finish(const EventCallback& callback) {
  AF_EXPECT(static_cast<bool>(callback), "event callback is required");
  if (const auto open = segmenter_.flush()) handle_segment(*open, callback);
}

void AirFinger::reset() {
  for (auto& s : sbc_) s.reset();
  segmenter_.reset();
  for (auto& ch : history_) ch.clear();
  history_base_ = 0;
  frames_ = 0;
  early_direction_sent_ = false;
  open_segment_begin_ = 0;
}

std::vector<GestureEvent> AirFinger::process_trace(
    const sensor::MultiChannelTrace& trace) {
  AF_EXPECT(trace.channel_count() == config_.channels,
            "trace channel count mismatch");
  std::vector<GestureEvent> events;
  const auto sink = [&events](const GestureEvent& e) {
    events.push_back(e);
  };
  std::vector<double> frame(trace.channel_count());
  for (std::size_t i = 0; i < trace.sample_count(); ++i) {
    for (std::size_t c = 0; c < frame.size(); ++c)
      frame[c] = trace.channel(c)[i];
    push_frame(frame, sink);
  }
  finish(sink);
  return events;
}

std::vector<GestureEvent> AirFinger::classify_recording(
    const sensor::MultiChannelTrace& trace) const {
  AF_EXPECT(trace.channel_count() == config_.channels,
            "trace channel count mismatch");
  DataProcessorConfig proc_config = config_.processing;
  proc_config.segmenter.sample_rate_hz = trace.sample_rate_hz();
  const DataProcessor processor(proc_config);
  const ProcessedTrace processed = processor.process(trace);

  std::vector<GestureEvent> events;
  for (const auto& segment : processed.segments) {
    GestureEvent event = decide(processed, segment);
    event.time_s =
        static_cast<double>(segment.end) / trace.sample_rate_hz();
    event.segment_begin = segment.begin;
    event.segment_end = segment.end;
    events.push_back(event);
  }
  return events;
}

}  // namespace airfinger::core
