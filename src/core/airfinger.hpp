// The airFinger engine: real-time streaming recognition and tracking.
//
// Since the bundle/session split (DESIGN.md §10) the engine is a thin
// compatibility façade: an immutable, shareable core::ModelBundle (config +
// fitted recognizer + optional interference filter + the stateless router
// and ZEBRA analyzers) driven by one core::Session holding the per-stream
// mutable state (SBC delay lines, segmenter calibration, ΔRSS² history).
// Existing call sites keep working unchanged; code that serves many
// concurrent streams should hold the bundle once and construct Sessions —
// or use core::MultiSessionHost — instead of cloning engines.
//
// Frames (one sample per photodiode) are pushed in; the engine runs SBC per
// channel, streams the summed ΔRSS² through the dynamic-threshold segmenter,
// and on each completed segment: routes it (detect- vs track-aimed),
// suppresses unintentional motions with the interference filter, classifies
// detect-aimed gestures with the RF recognizer, and tracks track-aimed ones
// with ZEBRA. Results are delivered as events through a caller-supplied
// callback, including early scroll-direction events emitted before the
// gesture ends (Sec. IV-D-1: direction is available as soon as the
// ascending order is known).
#pragma once

#include "core/model_bundle.hpp"
#include "core/session.hpp"

namespace airfinger::core {

/// Streaming recognition engine: one ModelBundle + one Session. Construct
/// with pre-trained models (see core/training.hpp and the quickstart
/// example for the training flow) or adopt an already-shared bundle.
class AirFinger {
 public:
  using EventCallback = Session::EventCallback;

  /// Requires fitted recognizer and (when filtering is enabled) filter.
  /// Packages the models into a fresh bundle.
  AirFinger(AirFingerConfig config, DetectRecognizer recognizer,
            std::optional<InterferenceFilter> filter);

  /// Adopts a shared bundle (O(1), no forest copies) — e.g. one loaded
  /// with ModelBundle::load_file and already serving other sessions.
  explicit AirFinger(std::shared_ptr<const ModelBundle> bundle);

  const AirFingerConfig& config() const { return session_.config(); }

  /// The shared immutable model layer.
  const std::shared_ptr<const ModelBundle>& bundle() const {
    return session_.bundle_ptr();
  }

  /// Feeds one frame (one RSS sample per channel). Events triggered by this
  /// frame are delivered synchronously through `callback`.
  void push_frame(std::span<const double> frame,
                  const EventCallback& callback) {
    session_.push_frame(frame, callback);
  }

  /// Flushes any open segment at end of stream.
  void finish(const EventCallback& callback) { session_.finish(callback); }

  /// Processes a whole recorded trace through the streaming path,
  /// returning all events.
  std::vector<GestureEvent> process_trace(
      const sensor::MultiChannelTrace& trace) {
    return session_.process_trace(trace);
  }

  /// Offline classification of a recorded trace: batch SBC + batch DT
  /// segmentation (identical to the training-time processing), then the
  /// same routing/recognition logic as the streaming path. One event per
  /// detected segment. This is the paper's offline evaluation protocol.
  std::vector<GestureEvent> classify_recording(
      const sensor::MultiChannelTrace& trace) const {
    return session_.bundle().classify_recording(trace);
  }

  /// Samples consumed so far.
  std::size_t frames_seen() const { return session_.frames_seen(); }

  /// Clears all streaming state (SBC delay lines, segmenter calibration,
  /// ΔRSS² history) so the engine can process an unrelated recording.
  /// Trained models are kept.
  void reset() { session_.reset(); }

 private:
  Session session_;
};

}  // namespace airfinger::core
