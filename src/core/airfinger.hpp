// The airFinger engine: real-time streaming recognition and tracking.
//
// Frames (one sample per photodiode) are pushed in; the engine runs SBC per
// channel, streams the summed ΔRSS² through the dynamic-threshold segmenter,
// and on each completed segment: routes it (detect- vs track-aimed),
// suppresses unintentional motions with the interference filter, classifies
// detect-aimed gestures with the RF recognizer, and tracks track-aimed ones
// with ZEBRA. Results are delivered as events through a caller-supplied
// callback, including early scroll-direction events emitted before the
// gesture ends (Sec. IV-D-1: direction is available as soon as the
// ascending order is known).
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "core/data_processor.hpp"
#include "core/detect_recognizer.hpp"
#include "core/interference_filter.hpp"
#include "core/type_router.hpp"
#include "core/zebra.hpp"
#include "synth/motion_kind.hpp"

namespace airfinger::core {

/// Engine configuration.
struct AirFingerConfig {
  double sample_rate_hz = 100.0;
  std::size_t channels = 3;
  DataProcessorConfig processing{};
  TypeRouterConfig router{};
  ZebraConfig zebra{};
  DetectRecognizerConfig recognizer{};
  InterferenceFilterConfig interference{};
  bool interference_filtering = true;  ///< Enable the non-gesture filter.
  /// Hybrid routing: the recognizer is trained on all eight gestures and
  /// cross-checks the rule-based router — a track-routed segment that the
  /// classifier confidently calls a detect gesture is re-labelled, and a
  /// detect-routed segment classified as a scroll is handed to ZEBRA. This
  /// recovers rule misroutes at the cost of one extra classification; the
  /// rule-only mode reproduces the paper's architecture exactly.
  bool hybrid_routing = true;
  /// Classifier probability needed to override the rule-based router.
  double hybrid_override_margin = 0.50;
  /// Streaming-history bound (samples per channel). The engine keeps at
  /// least this much recent ΔRSS² for segment analysis and compacts older
  /// history between gestures, so a session of any length runs in constant
  /// memory. Must comfortably exceed the longest gesture plus analysis
  /// padding; ~40 s at 100 Hz by default.
  std::size_t history_limit = 4096;
  /// A segment is rejected as unintentional motion only when the filter's
  /// P(gesture) falls below this (biasing towards keeping real gestures,
  /// as false rejections are costlier than an occasional false accept).
  double rejection_threshold = 0.40;
};

/// An event emitted by the engine.
struct GestureEvent {
  enum class Type {
    kDetectGesture,   ///< A detect-aimed gesture was recognized.
    kScrollDetected,  ///< A track-aimed gesture completed (full estimate).
    kScrollDirection, ///< Early direction verdict (before gesture end).
    kNonGesture,      ///< A segment was rejected as unintentional motion.
  };
  Type type{};
  double time_s = 0.0;          ///< Engine time at emission.
  /// kDetectGesture: the recognized detect-aimed gesture.
  std::optional<synth::MotionKind> gesture;
  /// kScroll*: tracking estimate (direction always set; velocity/duration
  /// only on kScrollDetected).
  std::optional<ScrollEstimate> scroll;
  /// Segment bounds in absolute sample indices.
  std::size_t segment_begin = 0;
  std::size_t segment_end = 0;

  std::string describe() const;
};

/// Streaming recognition engine. Construct with pre-trained models (see
/// core/training.hpp and the quickstart example for the training flow).
class AirFinger {
 public:
  using EventCallback = std::function<void(const GestureEvent&)>;

  /// Requires fitted recognizer and (when filtering is enabled) filter.
  AirFinger(AirFingerConfig config, DetectRecognizer recognizer,
            std::optional<InterferenceFilter> filter);

  const AirFingerConfig& config() const { return config_; }

  /// Feeds one frame (one RSS sample per channel). Events triggered by this
  /// frame are delivered synchronously through `callback`.
  void push_frame(std::span<const double> frame,
                  const EventCallback& callback);

  /// Flushes any open segment at end of stream.
  void finish(const EventCallback& callback);

  /// Processes a whole recorded trace through the streaming path,
  /// returning all events.
  std::vector<GestureEvent> process_trace(
      const sensor::MultiChannelTrace& trace);

  /// Offline classification of a recorded trace: batch SBC + batch DT
  /// segmentation (identical to the training-time processing), then the
  /// same routing/recognition logic as the streaming path. One event per
  /// detected segment. This is the paper's offline evaluation protocol.
  std::vector<GestureEvent> classify_recording(
      const sensor::MultiChannelTrace& trace) const;

  /// Samples consumed so far.
  std::size_t frames_seen() const { return frames_; }

  /// Clears all streaming state (SBC delay lines, segmenter calibration,
  /// ΔRSS² history) so the engine can process an unrelated recording.
  /// Trained models are kept.
  void reset();

 private:
  void handle_segment(const dsp::Segment& segment,
                      const EventCallback& callback);
  /// Shared decision core: routes, filters, classifies one segment view.
  GestureEvent decide(const ProcessedTrace& view,
                      const dsp::Segment& local) const;
  ProcessedTrace window_view(const dsp::Segment& segment) const;
  double now() const {
    return static_cast<double>(frames_) / config_.sample_rate_hz;
  }

  AirFingerConfig config_;
  DetectRecognizer recognizer_;
  std::optional<InterferenceFilter> filter_;
  TypeRouter router_;
  ZebraTracker zebra_;

  std::vector<dsp::SquareBasedCalculator> sbc_;
  dsp::DynamicThresholdSegmenter segmenter_;
  /// Recent ΔRSS² per channel. Indexing is absolute sample counts; the
  /// vectors hold samples [history_base_, frames_) and are compacted
  /// between gestures so memory stays bounded (config_.history_limit).
  std::vector<std::vector<double>> history_;
  std::size_t history_base_ = 0;
  std::size_t frames_ = 0;
  /// Early-direction bookkeeping for the currently open segment.
  bool early_direction_sent_ = false;
  std::size_t open_segment_begin_ = 0;
};

}  // namespace airfinger::core
