// Stream-health accounting and the graceful-degradation policy.
//
// The paper's own evaluation stresses the system under hardware glitches
// ("sudden RSS changes due to hardware", Sec. IV-F) and outdoor photodiode
// saturation (Sec. VI); a serving deployment additionally sees dropouts,
// stuck channels, and outright corrupt frames. This header defines the two
// small value types the streaming path uses to survive those inputs:
//
//   * HealthStats — per-session counters of what the stream actually
//     delivered (non-finite samples, rail-saturation runs, stuck/dropout
//     runs, quarantine transitions). Plain counters: observing them never
//     changes emission behavior.
//   * FaultPolicy — the degraded-mode knobs. Disabled (the default) the
//     session is strict: frames must be well-formed and finite, and a
//     corrupt sample raises StreamFaultError for the host to handle.
//     Enabled, detected fault bursts quarantine the segmenter instead:
//     frames are consumed but not interpreted until the stream has been
//     clean for `recovery_frames`, then the session re-calibrates (fresh
//     SBC delay lines and segmenter threshold) and resumes.
//
// Contract: with no faults in the input, a policy-enabled session is
// bit-identical to a policy-disabled one (detection thresholds are
// unreachable by clean traces), and the per-frame cost is a handful of
// comparisons — no allocation (see DESIGN.md §12).
#pragma once

#include <cstdint>
#include <limits>

#include "obs/metrics.hpp"
#include "sensor/artifact.hpp"

namespace airfinger::core {

/// Artifact taxonomy used by the graded policy: which corruption class a
/// detection or escalation was attributed to. Also the `detail` payload of
/// obs::PipelineEvent::Kind::kArtifact records.
enum class ArtifactClass : std::uint8_t {
  kImpulse = 0,  ///< Isolated click/glitch — repairable by interpolation.
  kCrackle,      ///< Dense impulse train — sustained, quarantine.
  kStep,         ///< Zipper/step level shift — recalibrate via quarantine.
  kDrift,        ///< Slow baseline drift — recalibrate via quarantine.
  kFlicker,      ///< Periodic ambient interference — quarantine.
};

/// Stable lowercase class name ("impulse", "crackle", ...).
const char* artifact_class_name(ArtifactClass cls);

/// Graded artifact handling (DESIGN.md §17), layered on top of the burst
/// heuristics below when the policy is enabled. Detection is always
/// record-only (counters and graded confidences); the *actions* — in-place
/// impulse repair and artifact-classified quarantine — are gated so the
/// defaults cannot fire on clean input:
///
///   * repair needs both an adaptive trigger (derivative z >= repair_z)
///     and an absolute one (|dx| >= repair_min_step, default infinity);
///   * escalation (crackle/step/drift/flicker -> quarantine) is off until
///     `escalate` is set.
///
/// Deployments measure their clean corpus (max |dx|, detector confidences)
/// and set repair_min_step above the clean ceiling, exactly like
/// FaultPolicy::saturation_level — bench/robustness.cpp shows the recipe
/// and measures the resulting detection/false-positive rates.
struct ArtifactPolicy {
  /// Run the streaming detectors and keep per-class counters. Record-only:
  /// turning this off only loses the counters.
  bool detect = true;

  /// Repair isolated impulses in place: a suspect frame is held back, and
  /// once a plausible clean sample arrives the flagged channels are
  /// linearly interpolated across the gap and the held frames are fed
  /// through the unchanged pipeline. When the interpolated values equal
  /// the clean ones the downstream byte stream is identical to an
  /// uncorrupted trace.
  bool repair = true;
  /// Adaptive repair trigger: derivative z-score (against the detector's
  /// EWMA statistics) a sample must reach to be held as an impulse.
  double repair_z = 8.0;
  /// Absolute repair trigger: minimum |x_t - x_{t-1}| in counts. Both
  /// triggers must fire. The default (infinity) keeps repair unreachable
  /// until a deployment sets its clean-trace ceiling.
  double repair_min_step = std::numeric_limits<double>::infinity();
  /// Frames held back waiting for a clean resume before the episode
  /// escalates (classified step if the held values settled, else crackle).
  std::size_t repair_limit = 4;

  /// Allow artifact classifications to enter the existing
  /// quarantine/recover path. Off by default: detection and repair alone
  /// cannot quarantine.
  bool escalate = false;
  /// Crackle via repair rate: this many repair episodes within
  /// `crackle_window` frames classify the stream as crackling.
  std::size_t crackle_repairs = 4;
  std::size_t crackle_window = 256;
  /// Sustained-confidence windows (frames at confidence >= 1) for the
  /// slow classes. Each must exceed the longest clean gesture so a real
  /// gesture can never look like corruption.
  std::size_t impulsive_sustain = 96;   ///< LPC residual / kurtosis.
  std::size_t drift_sustain = 300;      ///< Baseline velocity.
  std::size_t flicker_sustain = 200;    ///< Tonal + dominant AC bin.

  /// Detector shape and grading thresholds (sensor/artifact.hpp).
  sensor::ArtifactDetectorConfig detector{};
};

/// Per-stream robustness counters, exposed by Session::health() and
/// aggregated across streams by MultiSessionHost::aggregate_health().
struct HealthStats {
  std::uint64_t frames = 0;             ///< Frames accepted by push_frame.
  std::uint64_t non_finite_samples = 0; ///< NaN/±Inf samples seen.
  std::uint64_t saturated_samples = 0;  ///< |sample| at/above the rail.
  std::uint64_t stuck_samples = 0;      ///< Samples extending a frozen run.
  std::uint64_t quarantined_frames = 0; ///< Frames consumed while degraded.
  std::uint64_t quarantines = 0;        ///< Healthy → quarantined entries.
  std::uint64_t recalibrations = 0;     ///< Quarantined → healthy recoveries.
  std::uint64_t segments_dropped = 0;   ///< Open segments lost to quarantine.

  /// Saturating aggregation: a fleet total over long-lived lanes must
  /// clamp at UINT64_MAX, never wrap back to a small number.
  HealthStats& operator+=(const HealthStats& o) {
    frames = obs::saturating_add(frames, o.frames);
    non_finite_samples =
        obs::saturating_add(non_finite_samples, o.non_finite_samples);
    saturated_samples =
        obs::saturating_add(saturated_samples, o.saturated_samples);
    stuck_samples = obs::saturating_add(stuck_samples, o.stuck_samples);
    quarantined_frames =
        obs::saturating_add(quarantined_frames, o.quarantined_frames);
    quarantines = obs::saturating_add(quarantines, o.quarantines);
    recalibrations = obs::saturating_add(recalibrations, o.recalibrations);
    segments_dropped =
        obs::saturating_add(segments_dropped, o.segments_dropped);
    return *this;
  }

  /// True when every fault counter is zero (the stream looked clean).
  bool clean() const {
    return non_finite_samples == 0 && saturated_samples == 0 &&
           stuck_samples == 0 && quarantined_frames == 0 &&
           quarantines == 0 && recalibrations == 0 && segments_dropped == 0;
  }

  bool operator==(const HealthStats&) const = default;
};

/// Degraded-mode configuration of one Session. The defaults keep every
/// detector unreachable on clean input so enabling the policy alone cannot
/// perturb emissions; deployments lower `saturation_level` to their ADC
/// rail and tune the run limits to their front end.
struct FaultPolicy {
  /// Off (default): strict mode — non-finite samples raise
  /// StreamFaultError. On: detected fault bursts quarantine the segmenter
  /// and the session re-calibrates once the stream recovers.
  bool enabled = false;
  /// A sample with |x| >= this counts as rail-saturated. The default
  /// (infinity) disables saturation detection.
  double saturation_level = std::numeric_limits<double>::infinity();
  /// Consecutive saturated samples on one channel that trigger quarantine.
  std::size_t saturation_run_limit = 8;
  /// Consecutive bit-identical samples on one channel that count as a
  /// stuck channel / dropout and trigger quarantine. Clean optical traces
  /// carry continuous noise, so runs this long do not occur organically.
  std::size_t stuck_run_limit = 64;
  /// Clean frames required after a fault burst before the session
  /// re-calibrates and resumes emitting.
  std::size_t recovery_frames = 64;
  /// Graded artifact detection, repair, and escalation (DESIGN.md §17).
  ArtifactPolicy artifact{};
};

}  // namespace airfinger::core
