// ZEBRA-2D — two-axis swipe tracking on the cross board (the paper's
// Sec. VI "multi-dimensional sensing area" extension, implemented).
//
// Runs the 1-D integral timing analysis (core/ascending.hpp) independently
// on the x arm (channels x−, centre, x+) and the y arm (y−, centre, y+) of
// a cross-board recording and fuses the two asymmetry sweeps into a 2-D
// swipe direction, an angle, and a per-axis velocity estimate.
#pragma once

#include <optional>

#include "core/ascending.hpp"
#include "core/data_processor.hpp"
#include "optics/cross_board.hpp"

namespace airfinger::core {

/// 2-D swipe estimate.
struct Swipe2d {
  double direction_x = 0.0;  ///< Net asymmetry sweep along x (±).
  double direction_y = 0.0;  ///< Net asymmetry sweep along y (±).
  double angle_rad = 0.0;    ///< atan2(y, x): 0 = +x, π/2 = +y.
  double velocity_x_mps = 0.0;
  double velocity_y_mps = 0.0;
  double speed_mps = 0.0;    ///< Euclidean magnitude of the velocity.
};

/// Eight compass directions for coarse classification.
enum class SwipeDirection8 {
  kEast = 0,      // +x
  kNorthEast = 1,
  kNorth = 2,     // +y
  kNorthWest = 3,
  kWest = 4,      // -x
  kSouthWest = 5,
  kSouth = 6,     // -y
  kSouthEast = 7,
};

/// Nearest compass direction of a swipe angle.
SwipeDirection8 to_direction8(double angle_rad);

/// Tunables of the 2-D tracker.
struct Zebra2dConfig {
  double pd_span_m = 0.016;   ///< Outer-PD distance along each arm.
  double velocity_gain = 1.0;
  /// Minimum |net asymmetry sweep| on an axis for it to count as moving.
  double axis_threshold = 0.15;
  TimingConfig timing{};
};

/// 2-D tracker over cross-board recordings (5 channels, CrossChannel
/// order).
class Zebra2dTracker {
 public:
  explicit Zebra2dTracker(Zebra2dConfig config = {});

  const Zebra2dConfig& config() const { return config_; }

  /// Analyses one segment of a processed 5-channel cross recording.
  /// Returns nullopt when neither axis saw a decisive sweep.
  std::optional<Swipe2d> track(const ProcessedTrace& processed,
                               const dsp::Segment& segment) const;

 private:
  Zebra2dConfig config_;
};

}  // namespace airfinger::core
