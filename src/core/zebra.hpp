// ZEBRA — track-aimed gesture recognition (Alg. 1, Sec. IV-D).
//
// Determines scroll direction from the order of ascending points of the
// outer photodiodes P1 and P3, velocity from the time difference Δt between
// them (the P1–P3 physical distance is fixed), and displacement
// D_t = α · v(Δt) · min{t, T}. When only one outer photodiode rose (the
// finger passed only IL1 or only IL2), the experience velocity v' is used,
// exactly as in the paper.
#pragma once

#include <optional>

#include "core/ascending.hpp"
#include "core/data_processor.hpp"

namespace airfinger::core {

/// ZEBRA tunables (defaults from Sec. V-A / V-G).
struct ZebraConfig {
  double pd_span_m = 0.016;          ///< Physical distance P1 → P3 (4 mm pitch).
  double experience_velocity_mps = 0.080;  ///< v' = 80 mm/s.
  /// Calibration gain on pd_span / Δt. The paper only requires velocity to
  /// be proportional to the measured time difference (Alg. 1 line 11 reads
  /// "v(Δt) = Δt"); the energy-centroid Δt underestimates the geometric
  /// transit slightly, so a fitted gain maps it to physical units.
  double velocity_gain = 1.0;
  TimingConfig timing{};
};

/// Tracking verdict for one segmented gesture.
struct ScrollEstimate {
  double direction = 0.0;      ///< α: +1 up, -1 down, 0 undecidable.
  double velocity_mps = 0.0;   ///< v(Δt) or v'.
  double duration_s = 0.0;     ///< T.
  bool used_experience_velocity = false;  ///< True when Δt was incalculable.
  std::optional<double> delta_t_s;        ///< Δt when both PDs rose.

  /// Displacement D_t at elapsed time t since gesture start (Eq. 5).
  double displacement_at(double t) const;

  /// Final displacement D_T.
  double final_displacement() const { return displacement_at(duration_s); }
};

/// ZEBRA tracker bound to a processed trace's geometry.
class ZebraTracker {
 public:
  explicit ZebraTracker(ZebraConfig config = {});

  const ZebraConfig& config() const { return config_; }

  /// Applies Alg. 1 to one gesture segment of a processed trace.
  /// Requires >= 2 channels; P1 = channel 0, P3 = last channel.
  /// Returns nullopt when neither outer photodiode rose (no scroll).
  std::optional<ScrollEstimate> track(const ProcessedTrace& processed,
                                      const dsp::Segment& segment) const;

  /// Alg. 1 on a precomputed timing analysis. `timing` must come from this
  /// tracker's TimingConfig over `windows` (the padded per-channel views of
  /// the gesture); `segment` is the unpadded segment (duration and the
  /// early-energy tie-break read it). Lets the decision core share one
  /// SegmentTiming between routing and tracking.
  ///
  /// Unlike the routing verdict, the estimate is NOT a pure function of
  /// the gated timing fields: duration_s grows with the window even when
  /// every routed statistic keeps its bits, which is why the probe's
  /// change-detection gate (DESIGN.md §16) may cache "no emission" but
  /// never a ScrollEstimate.
  std::optional<ScrollEstimate> track_timing(
      const SegmentTiming& timing,
      std::span<const std::span<const double>> windows,
      const dsp::Segment& segment, double sample_rate_hz) const;

 private:
  ZebraConfig config_;
};

}  // namespace airfinger::core
