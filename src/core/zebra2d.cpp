#include "core/zebra2d.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace airfinger::core {

SwipeDirection8 to_direction8(double angle_rad) {
  // Sector width π/4, centred on the compass directions.
  const double tau = 2.0 * std::numbers::pi;
  double a = std::fmod(angle_rad, tau);
  if (a < 0) a += tau;
  const int sector =
      static_cast<int>(std::floor((a + tau / 16.0) / (tau / 8.0))) % 8;
  return static_cast<SwipeDirection8>(sector);
}

Zebra2dTracker::Zebra2dTracker(Zebra2dConfig config) : config_(config) {
  AF_EXPECT(config.pd_span_m > 0.0, "PD span must be positive");
  AF_EXPECT(config.axis_threshold > 0.0 && config.axis_threshold < 2.0,
            "axis threshold must lie in (0, 2)");
}

std::optional<Swipe2d> Zebra2dTracker::track(
    const ProcessedTrace& processed, const dsp::Segment& segment) const {
  AF_EXPECT(processed.delta_rss2.size() == optics::kCrossChannelCount,
            "ZEBRA-2D requires a 5-channel cross recording");
  AF_EXPECT(segment.end <= processed.energy.size() &&
                segment.begin < segment.end,
            "segment out of range");

  const dsp::Segment padded =
      pad_segment(segment, processed.energy.size(),
                  config_.timing.analysis_pad_s, processed.sample_rate_hz);
  auto window = [&](optics::CrossChannel c) {
    const auto& ch =
        processed.delta_rss2[static_cast<std::size_t>(c)];
    return std::span<const double>(ch.data() + padded.begin,
                                   padded.length());
  };

  // Each arm is analysed as an independent 1-D P1/P2/P3 triple.
  using optics::CrossChannel;
  const std::span<const double> x_arm[] = {window(CrossChannel::kXMinus),
                                           window(CrossChannel::kCentre),
                                           window(CrossChannel::kXPlus)};
  const std::span<const double> y_arm[] = {window(CrossChannel::kYMinus),
                                           window(CrossChannel::kCentre),
                                           window(CrossChannel::kYPlus)};
  const SegmentTiming tx =
      segment_timing(x_arm, processed.sample_rate_hz, config_.timing);
  const SegmentTiming ty =
      segment_timing(y_arm, processed.sample_rate_hz, config_.timing);

  const bool x_moving =
      std::fabs(tx.asymmetry_delta) >= config_.axis_threshold &&
      tx.transition_s > 0.0;
  const bool y_moving =
      std::fabs(ty.asymmetry_delta) >= config_.axis_threshold &&
      ty.transition_s > 0.0;
  if (!x_moving && !y_moving) return std::nullopt;

  Swipe2d swipe;
  swipe.direction_x = x_moving ? tx.asymmetry_delta : 0.0;
  swipe.direction_y = y_moving ? ty.asymmetry_delta : 0.0;
  if (x_moving)
    swipe.velocity_x_mps = (tx.asymmetry_delta > 0 ? 1.0 : -1.0) *
                           config_.velocity_gain * config_.pd_span_m /
                           tx.transition_s;
  if (y_moving)
    swipe.velocity_y_mps = (ty.asymmetry_delta > 0 ? 1.0 : -1.0) *
                           config_.velocity_gain * config_.pd_span_m /
                           ty.transition_s;
  swipe.angle_rad = std::atan2(swipe.direction_y, swipe.direction_x);
  swipe.speed_mps = std::hypot(swipe.velocity_x_mps, swipe.velocity_y_mps);
  return swipe;
}

}  // namespace airfinger::core
