// Data Processing stage (Sec. IV-B): SBC noise mitigation + DT segmentation.
//
// Converts a raw multi-channel RSS trace into per-channel ΔRSS² signals, the
// summed motion-energy signal, and the set of detected gesture segments.
#pragma once

#include "dsp/dynamic_threshold.hpp"
#include "dsp/sbc.hpp"
#include "sensor/trace.hpp"

namespace airfinger::core {

/// Pipeline parameters (defaults follow Sec. V-A: w = 10 ms, t_e = 100 ms).
struct DataProcessorConfig {
  double sbc_window_s = 0.010;  ///< w.
  dsp::SegmenterConfig segmenter{};
  /// Context added around a detected segment before feature extraction:
  /// hysteresis can clip weak gesture phases (ramp-in/out of cyclic
  /// gestures), and the clipped energy still carries class information.
  double feature_pad_s = 0.20;
};

/// Output of the processing stage for one trace.
struct ProcessedTrace {
  std::vector<std::vector<double>> delta_rss2;  ///< Per-channel ΔRSS².
  std::vector<double> energy;                   ///< Sum across channels.
  std::vector<dsp::Segment> segments;           ///< Detected gestures.
  double sample_rate_hz = 0.0;
};

/// Batch data processor. Stateless; thread-compatible.
class DataProcessor {
 public:
  explicit DataProcessor(DataProcessorConfig config = {});

  const DataProcessorConfig& config() const { return config_; }

  /// SBC window in samples for the given rate (>= 1).
  std::size_t window_samples(double sample_rate_hz) const;

  /// Full processing of one recorded trace.
  ProcessedTrace process(const sensor::MultiChannelTrace& trace) const;

  /// Returns the detected segment that best overlaps [start, end) (sample
  /// indices); falls back to the longest segment, and to the whole given
  /// window when nothing was detected.
  static dsp::Segment select_segment(const ProcessedTrace& processed,
                                     std::size_t truth_begin,
                                     std::size_t truth_end);

 private:
  DataProcessorConfig config_;
};

}  // namespace airfinger::core
