// Detect-aimed gesture recognition (Sec. IV-C): tsfresh-style feature bank,
// RF-importance feedback feature selection (top 25), and an RF classifier.
//
// Training is two-stage, mirroring the paper: a first forest is fitted on
// the full candidate bank, its importance feedback ranks the features, the
// top-k are kept, and the final forest is retrained on the selected columns.
#pragma once

#include <iosfwd>
#include <memory>

#include "features/bank.hpp"
#include "ml/compiled_forest.hpp"
#include "ml/random_forest.hpp"

namespace airfinger::core {

/// Recognizer hyper-parameters.
struct DetectRecognizerConfig {
  features::FeatureBankOptions bank{};
  ml::RandomForestConfig forest{};
  std::size_t selected_features = 25;  ///< The paper keeps 25 kinds.
  bool two_stage_selection = true;     ///< false = train on the full bank.
};

/// Trained detect-aimed gesture classifier.
class DetectRecognizer {
 public:
  explicit DetectRecognizer(DetectRecognizerConfig config = {});

  const DetectRecognizerConfig& config() const { return config_; }
  const features::FeatureBank& bank() const { return bank_; }

  /// Extracts the full candidate feature vector for one multi-channel
  /// ΔRSS² window.
  std::vector<double> extract(
      std::span<const std::span<const double>> channels) const;

  /// Single-channel convenience (cross-channel features become zeros).
  std::vector<double> extract(std::span<const double> segment) const;

  /// extract() into caller storage of size bank().feature_count(), drawing
  /// scratch from `workspace` (allocation-free at the arena's high-water
  /// mark; bit-identical to extract()).
  void extract_into(std::span<const std::span<const double>> channels,
                    features::Workspace& workspace,
                    std::span<double> out) const;

  /// Trains on full-bank feature rows (as produced by extract()).
  void fit(const ml::SampleSet& full_features);

  /// Predicts the gesture label of one full-bank feature row.
  int predict(std::span<const double> full_feature_row) const;

  /// Class probabilities for one full-bank feature row.
  std::vector<double> predict_proba(
      std::span<const double> full_feature_row) const;

  /// predict_proba() into caller storage of size num_classes(), using the
  /// compiled forest and projecting the row through `arena` scratch.
  /// Bit-identical to predict_proba().
  void predict_proba_into(std::span<const double> full_feature_row,
                          common::ScratchArena& arena,
                          std::span<double> out) const;

  /// Number of gesture classes of the fitted forest.
  std::size_t num_classes() const;

  /// The flattened (SoA) forest the hot path predicts with; compiled from
  /// the reference forest after fit() and load().
  const ml::CompiledForest& compiled_forest() const { return compiled_; }

  /// Indices (into the full bank) of the selected features. Valid after
  /// fit(); equals the identity when two-stage selection is disabled.
  const std::vector<std::size_t>& selected_features() const {
    return selected_;
  }

  /// Importance of each selected feature in the final forest.
  const std::vector<double>& final_importances() const;

  bool is_fitted() const { return fitted_; }

  /// Serializes the fitted recognizer (selected features + final forest).
  /// The feature-bank structure is not stored: load() must be given the
  /// same bank configuration the recognizer was trained with (validated
  /// via the bank width).
  void save(std::ostream& os) const;

  /// Reconstructs a recognizer written by save().
  static DetectRecognizer load(std::istream& is,
                               DetectRecognizerConfig config = {});

 private:
  std::vector<double> project(std::span<const double> row) const;

  DetectRecognizerConfig config_;
  features::FeatureBank bank_;
  ml::RandomForest forest_;
  ml::CompiledForest compiled_;
  std::vector<std::size_t> selected_;
  bool fitted_ = false;
};

}  // namespace airfinger::core
