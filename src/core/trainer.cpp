#include "core/trainer.hpp"

#include "common/error.hpp"
#include "common/parallel.hpp"
#include <cmath>

#include "core/training.hpp"
#include "core/zebra.hpp"

namespace airfinger::core {

std::shared_ptr<const ModelBundle> build_bundle_from(
    const AirFingerConfig& engine_config, const synth::Dataset& gestures,
    const synth::Dataset& non_gestures, TrainingReport* report) {
  AF_EXPECT(!gestures.samples.empty(), "gesture training set is empty");

  const DataProcessor processor(engine_config.processing);
  DetectRecognizer recognizer(engine_config.recognizer);
  const features::FeatureBank& bank = recognizer.bank();

  // Gesture recognizer: eight-class when hybrid routing needs the scroll
  // classes as a cross-check, six-class (the paper's detect-aimed problem)
  // otherwise.
  const LabelScheme scheme = engine_config.hybrid_routing
                                 ? LabelScheme::kAllEight
                                 : LabelScheme::kDetectSix;
  const ml::SampleSet detect_set =
      build_feature_set(gestures, processor, bank, scheme);
  AF_EXPECT(!detect_set.features.empty(),
            "no detect-aimed samples in the gesture training set");
  recognizer.fit(detect_set);

  // Interference filter: binary over gestures + non-gestures.
  std::optional<InterferenceFilter> filter;
  if (engine_config.interference_filtering) {
    AF_EXPECT(!non_gestures.samples.empty(),
              "interference filtering enabled but no non-gesture data");
    synth::Dataset combined;
    combined.samples = gestures.samples;
    combined.samples.insert(combined.samples.end(),
                            non_gestures.samples.begin(),
                            non_gestures.samples.end());
    const ml::SampleSet binary_set = build_feature_set(
        combined, processor, bank, LabelScheme::kGestureVsNonGesture);
    filter.emplace(bank, engine_config.interference);
    filter->fit(binary_set);
  }

  // Velocity calibration: ZEBRA's Δt (asymmetry transit time) tracks the
  // true scroll velocity up to a systematic gain; fit that gain on the
  // training scrolls (least squares through the origin) and bake it into
  // the engine, so reported velocities/displacements are in physical
  // units. The paper's Alg. 1 only claims proportionality ("v(Δt) = Δt");
  // this is the application-side mapping it defers.
  AirFingerConfig config = engine_config;
  {
    const ZebraTracker zebra(config.zebra);
    // Per-sample contributions are tracked in parallel (tracker and
    // processor are immutable), then the least-squares sums are reduced
    // serially in sample order — floating-point addition order is part of
    // the bit-identical determinism contract.
    struct Contribution {
      double num = 0.0;
      double den = 0.0;
    };
    std::vector<Contribution> contributions(gestures.samples.size());
    common::parallel_for(0, gestures.samples.size(), [&](std::size_t i) {
      const auto& sample = gestures.samples[i];
      if (!sample.scroll) return;
      const ProcessedTrace processed = processor.process(sample.trace);
      const double rate = sample.trace.sample_rate_hz();
      const dsp::Segment seg = DataProcessor::select_segment(
          processed,
          static_cast<std::size_t>(
              std::lround(sample.gesture_start_s * rate)),
          static_cast<std::size_t>(
              std::lround(sample.gesture_end_s * rate)));
      if (seg.length() < 8) return;
      const auto est = zebra.track(processed, seg);
      if (!est || est->used_experience_velocity) return;
      contributions[i] = {
          sample.scroll->mean_velocity_mps * est->velocity_mps,
          est->velocity_mps * est->velocity_mps};
    });
    double num = 0.0, den = 0.0;
    for (const auto& c : contributions) {
      num += c.num;
      den += c.den;
    }
    if (den > 0.0 && num > 0.0)
      config.zebra.velocity_gain = engine_config.zebra.velocity_gain *
                                   (num / den);
  }

  if (report) {
    report->gesture_samples = gestures.samples.size();
    report->non_gesture_samples = non_gestures.samples.size();
    report->selected_feature_names.clear();
    for (std::size_t idx : recognizer.selected_features())
      report->selected_feature_names.push_back(bank.names()[idx]);
  }
  return ModelBundle::create(config, std::move(recognizer),
                             std::move(filter));
}

std::shared_ptr<const ModelBundle> build_bundle(const TrainerConfig& config,
                                                TrainingReport* report) {
  synth::CollectionConfig gesture_config;
  gesture_config.users = config.users;
  gesture_config.sessions = config.sessions;
  gesture_config.repetitions = config.repetitions;
  gesture_config.seed = config.seed;
  const synth::Dataset gestures =
      synth::DatasetBuilder(gesture_config).collect();

  synth::CollectionConfig non_gesture_config = gesture_config;
  non_gesture_config.kinds = {synth::non_gestures().begin(),
                              synth::non_gestures().end()};
  non_gesture_config.repetitions = config.non_gesture_repetitions;
  non_gesture_config.seed = config.seed ^ 0xBADF00D;
  const synth::Dataset non =
      synth::DatasetBuilder(non_gesture_config).collect();

  return build_bundle_from(config.engine, gestures, non, report);
}

AirFinger build_engine(const TrainerConfig& config, TrainingReport* report) {
  return AirFinger(build_bundle(config, report));
}

AirFinger build_engine_from(const AirFingerConfig& engine_config,
                            const synth::Dataset& gestures,
                            const synth::Dataset& non_gestures,
                            TrainingReport* report) {
  return AirFinger(
      build_bundle_from(engine_config, gestures, non_gestures, report));
}

}  // namespace airfinger::core
