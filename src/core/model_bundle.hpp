// The immutable model layer of the engine: everything that is trained
// offline and then frozen for deployment — configuration, the fitted
// detect recognizer, and the optional interference filter — packaged as a
// single shareable object.
//
// A ModelBundle is reference-counted (`std::shared_ptr<const ModelBundle>`)
// and never mutated after construction, so any number of concurrent
// Sessions (see core/session.hpp) can serve independent sensor streams
// from one copy of the forests. The bundle also owns the *decision core*:
// routing, interference filtering, and classification of one segmented
// gesture window are pure functions of the trained models, so they live
// here rather than in the per-stream Session.
//
// Persistence: a bundle serializes to one versioned artifact (tagged
// header `afbundle 1`, ml/serialize-style line-oriented text with exact
// hex-float doubles). Loaders also accept the legacy two-file layout
// (`recognizer.af` + optional `filter.af`) written by pre-bundle tools.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>

#include "core/data_processor.hpp"
#include "core/detect_recognizer.hpp"
#include "core/health.hpp"
#include "core/interference_filter.hpp"
#include "core/timing_cache.hpp"
#include "core/type_router.hpp"
#include "core/zebra.hpp"
#include "synth/motion_kind.hpp"

namespace airfinger::core {

/// Engine configuration.
struct AirFingerConfig {
  double sample_rate_hz = 100.0;
  std::size_t channels = 3;
  DataProcessorConfig processing{};
  TypeRouterConfig router{};
  ZebraConfig zebra{};
  DetectRecognizerConfig recognizer{};
  InterferenceFilterConfig interference{};
  bool interference_filtering = true;  ///< Enable the non-gesture filter.
  /// Hybrid routing: the recognizer is trained on all eight gestures and
  /// cross-checks the rule-based router — a track-routed segment that the
  /// classifier confidently calls a detect gesture is re-labelled, and a
  /// detect-routed segment classified as a scroll is handed to ZEBRA. This
  /// recovers rule misroutes at the cost of one extra classification; the
  /// rule-only mode reproduces the paper's architecture exactly.
  bool hybrid_routing = true;
  /// Classifier probability needed to override the rule-based router.
  double hybrid_override_margin = 0.50;
  /// Streaming-history bound (samples per channel). A session keeps at
  /// least this much recent ΔRSS² for segment analysis and compacts older
  /// history between gestures, so a session of any length runs in constant
  /// memory. Must comfortably exceed the longest gesture plus analysis
  /// padding; ~40 s at 100 Hz by default.
  std::size_t history_limit = 4096;
  /// A segment is rejected as unintentional motion only when the filter's
  /// P(gesture) falls below this (biasing towards keeping real gestures,
  /// as false rejections are costlier than an occasional false accept).
  double rejection_threshold = 0.40;
  /// Degraded-mode handling of corrupt input streams (see core/health.hpp).
  /// A deploy-time concern like the structural configuration: not stored
  /// in the serialized artifact, and overridable per Session.
  FaultPolicy fault_policy{};
};

/// An event emitted by the engine.
struct GestureEvent {
  enum class Type {
    kDetectGesture,   ///< A detect-aimed gesture was recognized.
    kScrollDetected,  ///< A track-aimed gesture completed (full estimate).
    kScrollDirection, ///< Early direction verdict (before gesture end).
    kNonGesture,      ///< A segment was rejected as unintentional motion.
  };
  Type type{};
  double time_s = 0.0;          ///< Engine time at emission.
  /// kDetectGesture: the recognized detect-aimed gesture.
  std::optional<synth::MotionKind> gesture;
  /// kScroll*: tracking estimate (direction always set; velocity/duration
  /// only on kScrollDetected).
  std::optional<ScrollEstimate> scroll;
  /// Segment bounds in absolute sample indices.
  std::size_t segment_begin = 0;
  std::size_t segment_end = 0;

  std::string describe() const;
};

/// The frozen train-time output: config + fitted models + the stateless
/// analyzers (router, ZEBRA) they parameterize. Immutable and shareable;
/// construct once, serve many Sessions.
class ModelBundle {
 public:
  /// Serialized artifact version written/accepted by save()/load().
  static constexpr int kFormatVersion = 1;

  /// Requires a fitted recognizer and (when filtering is enabled) a fitted
  /// filter; validates the configuration.
  ModelBundle(AirFingerConfig config, DetectRecognizer recognizer,
              std::optional<InterferenceFilter> filter);

  /// Convenience: constructs directly into shared ownership.
  static std::shared_ptr<const ModelBundle> create(
      AirFingerConfig config, DetectRecognizer recognizer,
      std::optional<InterferenceFilter> filter);

  const AirFingerConfig& config() const { return config_; }
  const DetectRecognizer& recognizer() const { return recognizer_; }
  const std::optional<InterferenceFilter>& filter() const { return filter_; }
  const TypeRouter& router() const { return router_; }
  const ZebraTracker& zebra() const { return zebra_; }

  /// Decision core: routes one segmented window (detect- vs track-aimed),
  /// applies hybrid-routing vetoes and the interference filter, and either
  /// classifies (RF) or tracks (ZEBRA) it. Pure w.r.t. the bundle — safe
  /// to call from any number of threads concurrently. `local` is the
  /// segment in `view`'s local sample indices; the returned event carries
  /// no time/segment bookkeeping (the caller owns stream positions).
  GestureEvent decide(const ProcessedTrace& view,
                      const dsp::Segment& local) const;

  /// decide() drawing every working array (timing scratch, feature row,
  /// probabilities) from the caller's workspace arena: once the arena
  /// reaches its high-water mark the call is allocation-free. When router
  /// and ZEBRA share one TimingConfig (the default) the segment timing is
  /// computed once and reused. Results are bit-identical to decide()
  /// without a workspace. The workspace must not be shared across threads.
  GestureEvent decide(const ProcessedTrace& view, const dsp::Segment& local,
                      features::Workspace& workspace) const;

  /// The early-direction probe of the streaming path: routes the (still
  /// open) segment and, when it is track-aimed, runs ZEBRA on it — sharing
  /// one SegmentTiming between the two when their configs agree. Returns
  /// nullopt for detect-aimed or undecidable windows. Allocation-free at
  /// the workspace's high-water mark; bit-identical to
  /// `router().route(...) == kTrackAimed ? zebra().track(...) : nullopt`.
  std::optional<ScrollEstimate> probe_direction(
      const ProcessedTrace& view, const dsp::Segment& local,
      features::Workspace& workspace) const;

  /// probe_direction() reading the segment timing from an incrementally
  /// maintained cache instead of recomputing it over the whole open window:
  /// amortized O(n) per probe instead of O(n·w). `cache` must be configured
  /// with probe_timing_config() and contain exactly the samples of
  /// `view`/`local` (which must span the full view). Bit-identical to the
  /// cacheless overload.
  std::optional<ScrollEstimate> probe_direction(
      const ProcessedTrace& view, const dsp::Segment& local,
      features::Workspace& workspace, OpenSegmentTiming& cache) const;

  /// The TimingConfig the early-direction probe analyses windows with —
  /// what a per-session OpenSegmentTiming cache must be configured with.
  const TimingConfig& probe_timing_config() const {
    return router_.config().timing;
  }

  /// Offline classification of a recorded trace: batch SBC + batch DT
  /// segmentation (identical to the training-time processing), then the
  /// same routing/recognition logic as the streaming path. One event per
  /// detected segment. This is the paper's offline evaluation protocol.
  std::vector<GestureEvent> classify_recording(
      const sensor::MultiChannelTrace& trace) const;

  // ------------------------------------------------------------ artifact

  /// Writes the single-file `afbundle 1` artifact: header, the scalar
  /// engine/router/ZEBRA parameters (hex-float exact — including the
  /// trained velocity gain), the recognizer, the optional filter, and a
  /// trailing integrity footer (`checksum <FNV-1a64 of the payload>`)
  /// that load() verifies before parsing. Structural configuration
  /// (feature-bank layout, forest topology) is not stored: load() must be
  /// given the same structural config the models were trained with,
  /// validated via the serialized bank width — the same contract as
  /// DetectRecognizer::load.
  void save(std::ostream& os) const;

  /// save() to a file (opened std::ios::binary so hex-float round-trips
  /// are byte-identical across platforms). Throws PreconditionError when
  /// the file cannot be written.
  void save_file(const std::string& path) const;

  /// Reads an artifact written by save(). `base` supplies the structural
  /// configuration (bank/forest/processing); the serialized scalars
  /// overwrite the corresponding fields of `base`. The integrity footer is
  /// verified over the full payload before any parsing, so *any*
  /// truncation or bit corruption throws PreconditionError — never a
  /// crash, hang, runaway allocation, or partially constructed bundle.
  static std::shared_ptr<const ModelBundle> load(std::istream& is,
                                                 AirFingerConfig base = {});

  /// load() from a file (opened std::ios::binary).
  static std::shared_ptr<const ModelBundle> load_file(
      const std::string& path, AirFingerConfig base = {});

  /// Legacy two-file layout: a recognizer stream written by
  /// DetectRecognizer::save plus an optional filter stream written by
  /// InterferenceFilter::save. When `filter_stream` is null, interference
  /// filtering is disabled in the resulting bundle's config.
  static std::shared_ptr<const ModelBundle> load_legacy(
      std::istream& recognizer_stream, std::istream* filter_stream,
      AirFingerConfig base = {});

  /// True when the stream starts with the `afbundle` tag (the stream
  /// position is restored). Lets tools accept either artifact format.
  static bool sniff_bundle(std::istream& is);

  /// Wall-clock nanoseconds load() spent verifying and parsing this
  /// artifact (0 for bundles built in-process). Deploy diagnostics:
  /// af_inspect and af_stats surface it, hosts export it as the
  /// af_bundle_load_seconds gauge.
  std::uint64_t load_ns() const { return load_ns_; }

 private:
  /// Artifact body without the integrity footer (save() appends it).
  void save_payload(std::ostream& os) const;
  /// Parses a footer-verified payload (the pre-footer parse pipeline).
  static std::shared_ptr<ModelBundle> load_payload(std::istream& is,
                                                   AirFingerConfig base);

  AirFingerConfig config_;
  DetectRecognizer recognizer_;
  std::optional<InterferenceFilter> filter_;
  TypeRouter router_;
  ZebraTracker zebra_;
  /// Router and ZEBRA were configured with the same TimingConfig, so one
  /// SegmentTiming (over the same padded windows) serves both.
  bool timing_shared_ = false;
  /// Wall-clock cost of the load() that produced this bundle (see load_ns).
  std::uint64_t load_ns_ = 0;
};

}  // namespace airfinger::core
