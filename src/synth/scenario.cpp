#include "synth/scenario.hpp"

#include <cmath>
#include <memory>
#include <numbers>

#include "common/error.hpp"
#include "synth/smooth_noise.hpp"

namespace airfinger::synth {

using optics::ReflectorPatch;
using optics::Vec3;

MotionParams resolve_params(const ScenarioSpec& spec) {
  const auto& u = spec.user;
  const auto& s = spec.session;
  const auto& r = spec.repetition;
  MotionParams p;

  double style_speed = 1.0, style_amp = 1.0, style_phase = 0.0;
  if (is_gesture(spec.kind)) {
    const auto& style = u.styles[static_cast<std::size_t>(spec.kind)];
    style_speed = style.speed_factor;
    style_amp = style.amplitude_factor;
    style_phase = style.phase_offset;
  }

  p.speed = u.speed_factor * s.speed_drift * r.speed * style_speed;
  p.amplitude = u.amplitude_factor * s.amplitude_drift * r.amplitude *
                style_amp;
  p.standoff_m = (spec.standoff_override_m >= 0.0)
                     ? spec.standoff_override_m
                     : u.standoff_m + s.standoff_drift_m + r.standoff_m;
  p.standoff_m = std::max(p.standoff_m, 0.004);
  p.tilt_rad = u.tilt_rad + s.tilt_drift_rad;
  p.phase = style_phase + r.phase;
  p.center_offset = u.center_offset + s.center_drift + r.center;
  p.mirror_y = spec.non_dominant_hand;
  p.partial_extent = spec.partial_extent;
  if (spec.non_dominant_hand) {
    // The off hand is less practiced: slower and slightly larger movements.
    p.speed *= 0.92;
    p.amplitude *= 1.06;
  }
  return p;
}

namespace {

constexpr double kPi = std::numbers::pi;

/// Body-motion displacement for the wristband conditions (Fig. 17).
struct ActivityMotion {
  double sway_amp = 0.0;    ///< metres
  double sway_hz = 0.0;
  double jitter_scale = 1.0;  ///< multiplies tremor amplitude
};

ActivityMotion activity_motion(Activity a) {
  switch (a) {
    case Activity::kSitting: return {0.0, 0.0, 1.0};
    case Activity::kStanding: return {0.00025, 0.4, 1.2};
    case Activity::kWalking: return {0.0008, 1.8, 1.6};
  }
  return {};
}

}  // namespace

Scenario make_scenario(const ScenarioSpec& spec, common::Rng& rng) {
  const MotionParams params = resolve_params(spec);
  Motion motion = make_motion(spec.kind, params, rng);

  Scenario sc;
  sc.params = params;
  sc.gesture_start_s = spec.repetition.pre_idle_s;
  sc.gesture_end_s = sc.gesture_start_s + motion.duration_s();
  sc.duration_s = sc.gesture_end_s + spec.repetition.post_idle_s;
  if (is_track_aimed(spec.kind)) sc.scroll = scroll_truth(spec.kind, params);

  const auto& user = spec.user;
  const ActivityMotion act = activity_motion(spec.activity);
  const double non_dominant_jitter = spec.non_dominant_hand ? 1.5 : 1.0;

  auto tremor = std::make_shared<SmoothNoise3>(
      rng, 6.0, 12.0,
      user.tremor_amplitude_m * act.jitter_scale * non_dominant_jitter, 4);
  auto sway_phase = rng.uniform(0.0, 2.0 * kPi);

  // Optional far-field passer-by: a large reflector ~1 m away, slowly moving.
  std::shared_ptr<SmoothNoise3> passer_noise;
  Vec3 passer_base{0.0, rng.uniform(0.5, 2.0), rng.uniform(0.2, 0.8)};
  if (spec.interference.passer_by)
    passer_noise = std::make_shared<SmoothNoise3>(rng, 0.3, 1.2, 0.25, 3);

  const double ir_irradiance = spec.interference.ir_remote_irradiance;
  const double ir_phase = rng.uniform(0.0, 0.1);

  const double gesture_start = sc.gesture_start_s;
  const double motion_T = motion.duration_s();
  auto motion_ptr = std::make_shared<Motion>(std::move(motion));

  sc.provider = [=](double t) {
    sensor::SceneState state;

    // Fingertip pose: hold the start pose during pre-idle, follow the
    // motion, hold the end pose during post-idle. Tremor rides throughout.
    const double mt = t - gesture_start;
    FingertipPose pose = motion_ptr->at(std::clamp(mt, 0.0, motion_T));
    Vec3 tip = pose.position + tremor->at(t);

    // Body sway (wristband conditions) moves the whole hand relative to the
    // board mostly vertically, with a smaller lateral component.
    if (act.sway_amp > 0.0) {
      const double sway =
          act.sway_amp * std::sin(2.0 * kPi * act.sway_hz * t + sway_phase);
      tip.z += sway;
      tip.x += 0.4 * sway;
    }

    ReflectorPatch finger;
    finger.position = tip;
    finger.normal = pose.normal;
    finger.area_m2 = user.fingertip_area_m2 * pose.area_scale;
    finger.reflectivity = user.skin_reflectivity;
    state.patches.push_back(finger);

    // Rest of the hand: larger patch that follows the gesture centre and a
    // fraction of the fingertip displacement (the palm barely moves during
    // micro gestures) — this is the paper's N_static term.
    const Vec3 center = params.center_offset + Vec3{0, 0, params.standoff_m};
    ReflectorPatch hand;
    hand.position = center + (tip - center) * 0.25 + user.hand_offset;
    hand.normal = Vec3{0, -0.3, -1}.normalized();
    hand.area_m2 = user.hand_area_m2;
    hand.reflectivity = user.skin_reflectivity * 0.9;
    state.patches.push_back(hand);

    if (passer_noise) {
      ReflectorPatch passer;
      passer.position = passer_base + passer_noise->at(t);
      passer.normal = Vec3{0, -1, -0.2}.normalized();
      passer.area_m2 = 0.35;  // torso-scale reflector
      passer.reflectivity = 0.4;
      state.patches.push_back(passer);
    }

    if (ir_irradiance > 0.0) {
      // Remote-control bursts: ~10 Hz gating of a strong carrier. The 38 kHz
      // carrier itself aliases to a quasi-constant level at 100 Hz sampling;
      // what the PDs see is the burst envelope.
      const double gate = std::sin(2.0 * kPi * 9.7 * (t + ir_phase));
      if (gate > 0.2) state.direct.irradiance = ir_irradiance;
    }

    return state;
  };
  return sc;
}

}  // namespace airfinger::synth
