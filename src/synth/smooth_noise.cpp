#include "synth/smooth_noise.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace airfinger::synth {

SmoothNoise::SmoothNoise(common::Rng& rng, double min_freq_hz,
                         double max_freq_hz, double scale, int components) {
  AF_EXPECT(min_freq_hz > 0.0 && max_freq_hz >= min_freq_hz,
            "invalid SmoothNoise frequency band");
  AF_EXPECT(components >= 1, "SmoothNoise needs at least one component");
  components_.reserve(static_cast<std::size_t>(components));
  for (int k = 0; k < components; ++k) {
    Component c{};
    c.freq_hz = rng.uniform(min_freq_hz, max_freq_hz);
    c.phase = rng.uniform(0.0, 2.0 * std::numbers::pi);
    c.amplitude = scale / static_cast<double>(k + 1);
    components_.push_back(c);
  }
}

double SmoothNoise::at(double t) const {
  double v = 0.0;
  for (const auto& c : components_)
    v += c.amplitude *
         std::sin(2.0 * std::numbers::pi * c.freq_hz * t + c.phase);
  return v;
}

SmoothNoise3::SmoothNoise3(common::Rng& rng, double min_freq_hz,
                           double max_freq_hz, double scale, int components)
    : x_(rng, min_freq_hz, max_freq_hz, scale, components),
      y_(rng, min_freq_hz, max_freq_hz, scale, components),
      z_(rng, min_freq_hz, max_freq_hz, scale, components) {}

optics::Vec3 SmoothNoise3::at(double t) const {
  return {x_.at(t), y_.at(t), z_.at(t)};
}

}  // namespace airfinger::synth
