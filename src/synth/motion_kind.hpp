// Taxonomy of synthesized motions.
//
// The paper's gesture set (Fig. 2) has six detect-aimed gestures (circle,
// double circle, rub, double rub, click, double click) and two track-aimed
// gestures (scroll up, scroll down). Unintentional motions — scratching,
// extending, repositioning (Sec. V-J-1) — are modelled as non-gesture kinds.
#pragma once

#include <array>
#include <span>
#include <string_view>

namespace airfinger::synth {

/// Every motion the synthesizer can produce.
enum class MotionKind : int {
  kCircle = 0,
  kDoubleCircle = 1,
  kRub = 2,
  kDoubleRub = 3,
  kClick = 4,
  kDoubleClick = 5,
  kScrollUp = 6,
  kScrollDown = 7,
  // Non-gesture (unintentional) motions:
  kScratch = 8,
  kExtend = 9,
  kReposition = 10,
};

inline constexpr int kGestureCount = 8;        ///< Designed gestures.
inline constexpr int kDetectGestureCount = 6;  ///< Detect-aimed subset.
inline constexpr int kMotionKindCount = 11;    ///< Including non-gestures.

/// True for the eight designed gestures.
constexpr bool is_gesture(MotionKind k) {
  return static_cast<int>(k) < kGestureCount;
}

/// True for scroll up / scroll down (tracked via ZEBRA).
constexpr bool is_track_aimed(MotionKind k) {
  return k == MotionKind::kScrollUp || k == MotionKind::kScrollDown;
}

/// True for the six detect-aimed gestures.
constexpr bool is_detect_aimed(MotionKind k) {
  return is_gesture(k) && !is_track_aimed(k);
}

/// Human-readable name ("circle", "scroll up", "scratch", ...).
std::string_view motion_name(MotionKind k);

/// The eight designed gestures in paper order.
std::span<const MotionKind> all_gestures();

/// The six detect-aimed gestures in paper order.
std::span<const MotionKind> detect_gestures();

/// The two track-aimed gestures.
std::span<const MotionKind> track_gestures();

/// The three unintentional-motion kinds.
std::span<const MotionKind> non_gestures();

}  // namespace airfinger::synth
