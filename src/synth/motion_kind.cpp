#include "synth/motion_kind.hpp"

namespace airfinger::synth {

namespace {
constexpr std::array kAllGestures = {
    MotionKind::kCircle,     MotionKind::kDoubleCircle,
    MotionKind::kRub,        MotionKind::kDoubleRub,
    MotionKind::kClick,      MotionKind::kDoubleClick,
    MotionKind::kScrollUp,   MotionKind::kScrollDown,
};
constexpr std::array kDetect = {
    MotionKind::kCircle, MotionKind::kDoubleCircle, MotionKind::kRub,
    MotionKind::kDoubleRub, MotionKind::kClick, MotionKind::kDoubleClick,
};
constexpr std::array kTrack = {MotionKind::kScrollUp,
                               MotionKind::kScrollDown};
constexpr std::array kNonGestures = {
    MotionKind::kScratch, MotionKind::kExtend, MotionKind::kReposition};
}  // namespace

std::string_view motion_name(MotionKind k) {
  switch (k) {
    case MotionKind::kCircle: return "circle";
    case MotionKind::kDoubleCircle: return "double circle";
    case MotionKind::kRub: return "rub";
    case MotionKind::kDoubleRub: return "double rub";
    case MotionKind::kClick: return "click";
    case MotionKind::kDoubleClick: return "double click";
    case MotionKind::kScrollUp: return "scroll up";
    case MotionKind::kScrollDown: return "scroll down";
    case MotionKind::kScratch: return "scratch";
    case MotionKind::kExtend: return "extend";
    case MotionKind::kReposition: return "reposition";
  }
  return "unknown";
}

std::span<const MotionKind> all_gestures() { return kAllGestures; }
std::span<const MotionKind> detect_gestures() { return kDetect; }
std::span<const MotionKind> track_gestures() { return kTrack; }
std::span<const MotionKind> non_gestures() { return kNonGestures; }

}  // namespace airfinger::synth
