#include <cstdio>
#include <cstdlib>
#include "synth/dataset.hpp"

#include <algorithm>
#include <memory>
#include <cmath>
#include <set>

#include "common/error.hpp"
#include "common/parallel.hpp"

namespace airfinger::synth {

std::vector<int> Dataset::user_ids() const {
  std::set<int> ids;
  for (const auto& s : samples) ids.insert(s.user_id);
  return {ids.begin(), ids.end()};
}

std::vector<int> Dataset::session_ids() const {
  std::set<int> ids;
  for (const auto& s : samples) ids.insert(s.session_id);
  return {ids.begin(), ids.end()};
}

DatasetBuilder::DatasetBuilder(CollectionConfig config)
    : config_(std::move(config)) {
  AF_EXPECT(config_.users >= 1, "at least one user required");
  AF_EXPECT(config_.sessions >= 1, "at least one session required");
  AF_EXPECT(config_.repetitions >= 1, "at least one repetition required");
  AF_EXPECT(!config_.kinds.empty(), "at least one motion kind required");
  AF_EXPECT(!config_.session_hours.empty(), "session hours must be set");
}

std::vector<UserProfile> DatasetBuilder::roster() const {
  common::Rng rng(config_.seed);
  std::vector<UserProfile> users;
  users.reserve(static_cast<std::size_t>(config_.users));
  for (int u = 0; u < config_.users; ++u)
    users.push_back(UserProfile::sample(u, rng));
  return users;
}

SessionContext DatasetBuilder::make_session(int session_id,
                                            common::Rng& rng) const {
  const double hour =
      config_.fixed_hour.value_or(config_.session_hours[static_cast<
          std::size_t>(session_id) % config_.session_hours.size()]);
  return SessionContext::sample(session_id, hour, rng);
}

GestureSample DatasetBuilder::record_one(MotionKind kind,
                                         const UserProfile& user,
                                         const SessionContext& session,
                                         int repetition,
                                         common::Rng& rng) const {
  ScenarioSpec spec;
  spec.kind = kind;
  spec.user = user;
  spec.session = session;
  spec.repetition = RepetitionJitter::sample(rng);
  spec.activity = config_.activity;
  spec.non_dominant_hand = config_.non_dominant_hand;
  spec.interference = config_.interference;
  spec.standoff_override_m = config_.standoff_override_m;
  if (is_track_aimed(kind) &&
      rng.bernoulli(config_.partial_scroll_probability))
    spec.partial_extent = rng.uniform(0.35, 0.55);

  const Scenario sc = make_scenario(spec, rng);

  // Session ambient conditions: time of day plus a per-repetition drift
  // phase so consecutive repetitions do not share the exact flicker.
  sensor::PrototypeSpec proto_spec = config_.prototype;
  proto_spec.ambient.hour_of_day = session.hour_of_day;
  proto_spec.ambient.drift_phase = rng.uniform(0.0, 6.28318);

  // Adjustable amplifier (the paper's Sec. VI): the acquisition chain
  // calibrates its gain against the idle reflection level so the 10-bit
  // converter neither rails at close standoffs nor starves at far ones.
  // Target: idle at ~30% of full scale.
  if (config_.auto_gain) {
    sensor::Prototype probe(proto_spec);
    const auto idle = sc.provider(0.0);
    std::vector<double> analog;
    if (proto_spec.front_end.lock_in) {
      analog = probe.scene()
                   .evaluate_components(idle.patches, 0.0)
                   .emitted;
    } else {
      analog = probe.scene().evaluate(idle.patches, 0.0);
    }
    double peak = 0.0;
    for (double v : analog) peak = std::max(peak, v);
    if (peak > 0.0) {
      const double target_v = 0.30 * proto_spec.adc.vref;
      proto_spec.adc.gain =
          std::clamp(target_v / peak, 4.0, 250.0);
      if (getenv("AF_DEBUG_GAIN"))
        fprintf(stderr, "autogain: peak=%g gain=%g\n", peak,
                proto_spec.adc.gain);
    }
  }
  sensor::Prototype prototype(proto_spec);

  GestureSample sample;
  sample.trace = prototype.record(sc.provider, sc.duration_s, rng);
  sample.kind = kind;
  sample.user_id = user.user_id;
  sample.session_id = session.session_id;
  sample.repetition = repetition;
  sample.gesture_start_s = sc.gesture_start_s;
  sample.gesture_end_s = sc.gesture_end_s;
  sample.standoff_m = sc.params.standoff_m;
  sample.scroll = sc.scroll;
  return sample;
}

Dataset DatasetBuilder::collect() const {
  const common::Rng master(config_.seed);
  const std::vector<UserProfile> users = roster();
  const std::size_t kinds = config_.kinds.size();
  const std::size_t reps = static_cast<std::size_t>(config_.repetitions);
  const std::size_t sessions = static_cast<std::size_t>(config_.sessions);

  // Indexed RNG splitting instead of serial stream consumption: user u gets
  // stream u of the master, session s gets stream s of the user, and every
  // repetition gets its own stream of the session (id 0 is reserved for the
  // session context itself). Each repetition is therefore a pure function
  // of (seed, u, s, kind, rep), so recording order — and thread count — can
  // never change a single sample bit.
  struct WorkItem {
    const UserProfile* user = nullptr;
    const SessionContext* session = nullptr;
    MotionKind kind = MotionKind::kCircle;
    int repetition = 0;
    common::Rng rng;
  };

  std::vector<SessionContext> session_contexts;
  session_contexts.reserve(users.size() * sessions);
  std::vector<WorkItem> items;
  items.reserve(users.size() * sessions * kinds * reps);
  for (std::size_t u = 0; u < users.size(); ++u) {
    const common::Rng user_rng = master.split(u);
    for (std::size_t sess = 0; sess < sessions; ++sess) {
      const common::Rng sess_rng = user_rng.split(sess);
      common::Rng ctx_rng = sess_rng.split(0);
      session_contexts.push_back(
          make_session(static_cast<int>(sess), ctx_rng));
      const SessionContext* session = &session_contexts.back();
      for (std::size_t k = 0; k < kinds; ++k) {
        for (std::size_t rep = 0; rep < reps; ++rep) {
          items.push_back({&users[u], session, config_.kinds[k],
                           static_cast<int>(rep),
                           sess_rng.split(1 + k * reps + rep)});
        }
      }
    }
  }

  Dataset out;
  out.samples.resize(items.size());
  common::parallel_for(0, items.size(), [&](std::size_t i) {
    WorkItem& item = items[i];
    out.samples[i] = record_one(item.kind, *item.user, *item.session,
                                item.repetition, item.rng);
  });
  return out;
}

GestureStream make_gesture_stream(const CollectionConfig& config,
                                  const std::vector<MotionKind>& kinds,
                                  std::uint64_t seed) {
  AF_EXPECT(!kinds.empty(), "stream requires at least one gesture");
  common::Rng rng(seed);
  DatasetBuilder builder(config);
  const auto users = builder.roster();
  const UserProfile& user = users.front();
  const SessionContext session = SessionContext::sample(0, 11.0, rng);

  // One continuous recording: a single acquisition chain (one auto-gain
  // calibration, one ambient realization) sees the whole episode, exactly
  // like a live device would. Scenario providers are sequenced in time.
  std::vector<Scenario> scenarios;
  std::vector<double> offsets;
  double total = 0.0;
  for (MotionKind kind : kinds) {
    ScenarioSpec spec;
    spec.kind = kind;
    spec.user = user;
    spec.session = session;
    spec.repetition = RepetitionJitter::sample(rng);
    spec.activity = config.activity;
    spec.non_dominant_hand = config.non_dominant_hand;
    spec.interference = config.interference;
    spec.standoff_override_m = config.standoff_override_m;
    offsets.push_back(total);
    scenarios.push_back(make_scenario(spec, rng));
    total += scenarios.back().duration_s;
  }

  auto shared = std::make_shared<std::vector<Scenario>>(std::move(scenarios));
  auto shared_offsets = std::make_shared<std::vector<double>>(offsets);
  sensor::SceneStateProvider provider = [shared,
                                         shared_offsets](double t) {
    std::size_t idx = shared->size() - 1;
    for (std::size_t i = 0; i + 1 < shared_offsets->size(); ++i) {
      if (t < (*shared_offsets)[i + 1]) {
        idx = i;
        break;
      }
    }
    if (shared_offsets->size() == 1) idx = 0;
    return (*shared)[idx].provider(t - (*shared_offsets)[idx]);
  };

  sensor::PrototypeSpec proto_spec = config.prototype;
  proto_spec.ambient.hour_of_day = session.hour_of_day;
  proto_spec.ambient.drift_phase = rng.uniform(0.0, 6.28318);
  if (config.auto_gain) {
    sensor::Prototype probe(proto_spec);
    const auto idle = provider(0.0);
    std::vector<double> analog;
    if (proto_spec.front_end.lock_in) {
      analog = probe.scene()
                   .evaluate_components(idle.patches, 0.0)
                   .emitted;
    } else {
      analog = probe.scene().evaluate(idle.patches, 0.0);
    }
    double peak = 0.0;
    for (double v : analog) peak = std::max(peak, v);
    if (peak > 0.0)
      proto_spec.adc.gain =
          std::clamp(0.30 * proto_spec.adc.vref / peak, 4.0, 250.0);
  }
  sensor::Prototype prototype(proto_spec);

  GestureStream stream;
  const double rate = proto_spec.sample_rate_hz;
  stream.trace = prototype.record(provider, total, rng);
  for (std::size_t i = 0; i < shared->size(); ++i) {
    const double start = (*shared_offsets)[i] + (*shared)[i].gesture_start_s;
    const double end = (*shared_offsets)[i] + (*shared)[i].gesture_end_s;
    stream.gesture_bounds.emplace_back(
        static_cast<std::size_t>(std::llround(start * rate)),
        static_cast<std::size_t>(std::llround(end * rate)));
  }
  stream.kinds = kinds;
  return stream;
}

}  // namespace airfinger::synth
