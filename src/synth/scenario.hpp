// Scenario assembly: motion + behavioural layers → scene state over time.
//
// A Scenario is the complete recordable episode for one repetition: idle
// padding before and after the gesture, physiological tremor, the static
// hand reflector (the paper's N_static), body-activity modulation (the
// wristband experiment's sitting/standing/walking), optional far-field
// passers-by, and optional direct IR-remote interference bursts.
#pragma once

#include <optional>

#include "sensor/recorder.hpp"
#include "synth/motion_kind.hpp"
#include "synth/trajectory.hpp"
#include "synth/user.hpp"

namespace airfinger::synth {

/// Optional environmental interferers layered onto a scenario.
struct InterferenceOptions {
  /// A second person moving 0.5–2 m away ("Other Human Interferences").
  bool passer_by = false;
  /// IR remote control: burst irradiance (mW/m^2) directly onto the board;
  /// 0 disables. Bursts follow a ~38 kHz carrier envelope gated at ~10 Hz.
  double ir_remote_irradiance = 0.0;
};

/// Everything needed to record one repetition.
struct ScenarioSpec {
  MotionKind kind = MotionKind::kCircle;
  UserProfile user{};
  SessionContext session{};
  RepetitionJitter repetition{};
  Activity activity = Activity::kSitting;
  bool non_dominant_hand = false;
  InterferenceOptions interference{};
  /// Overrides the user's habitual standoff when >= 0 (distance sweeps).
  double standoff_override_m = -1.0;
  /// Scrolls: fraction of the full sweep (see MotionParams::partial_extent).
  double partial_extent = 1.0;
};

/// A recordable episode: provider plus ground-truth annotations.
struct Scenario {
  sensor::SceneStateProvider provider;
  double duration_s = 0.0;         ///< Total episode length incl. padding.
  double gesture_start_s = 0.0;    ///< Ground-truth motion onset.
  double gesture_end_s = 0.0;      ///< Ground-truth motion offset.
  MotionParams params{};           ///< Resolved kinematic parameters.
  std::optional<ScrollTruth> scroll;  ///< Set for track-aimed kinds.
};

/// Resolves the layered behavioural parameters into MotionParams.
MotionParams resolve_params(const ScenarioSpec& spec);

/// Builds the full scenario; all randomness is drawn from `rng`.
Scenario make_scenario(const ScenarioSpec& spec, common::Rng& rng);

}  // namespace airfinger::synth
