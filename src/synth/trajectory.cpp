#include "synth/trajectory.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "synth/smooth_noise.hpp"

namespace airfinger::synth {

using optics::Vec3;

Motion::Motion(double duration_s, std::function<FingertipPose(double)> fn)
    : duration_s_(duration_s), pose_fn_(std::move(fn)) {
  AF_EXPECT(duration_s > 0.0, "motion duration must be positive");
  AF_EXPECT(static_cast<bool>(pose_fn_), "motion requires a pose function");
}

FingertipPose Motion::at(double t) const {
  return pose_fn_(std::clamp(t, 0.0, duration_s_));
}

double minimum_jerk(double s) {
  s = std::clamp(s, 0.0, 1.0);
  return s * s * s * (10.0 + s * (-15.0 + 6.0 * s));
}

namespace {

constexpr double kPi = std::numbers::pi;

/// In-plane unit vectors of the (tilted) gesture frame.
struct Frame {
  Vec3 u;  ///< Tilted x direction.
  Vec3 v;  ///< Tilted y direction.
};

Frame tilted_frame(double tilt_rad, bool mirror_y) {
  const double c = std::cos(tilt_rad), s = std::sin(tilt_rad);
  Frame f;
  f.u = {c, s, 0.0};
  f.v = {-s, c, 0.0};
  if (mirror_y) {
    f.u.y = -f.u.y;
    f.v.y = -f.v.y;
  }
  return f;
}

Vec3 pad_normal(double tilt_rad) {
  return Vec3{0.12 * std::sin(tilt_rad), 0.15, -1.0}.normalized();
}

/// Hann window over [0,1]; zero at both ends.
double hann(double s) {
  s = std::clamp(s, 0.0, 1.0);
  return 0.5 * (1.0 - std::cos(2.0 * kPi * s));
}

Motion make_circle(const MotionParams& p, common::Rng& rng, int turns) {
  const double T = (turns == 1 ? 0.8 : 1.5) / p.speed;
  const double r = 0.0022 * p.amplitude;
  const Frame f = tilted_frame(p.tilt_rad, p.mirror_y);
  // Mostly in-plane circle (as when drawing on a virtual trackpad) with a
  // mild out-of-plane component: in-plane speed is constant around the
  // circle, so the RSS modulation never stalls, matching the paper's
  // continuous circle waveform (Fig. 3).
  const Vec3 w = (f.v * 0.75 + Vec3{0, 0, 0.55}).normalized();
  const Vec3 c = p.center_offset + Vec3{0, 0, p.standoff_m};
  const Vec3 n = pad_normal(p.tilt_rad);
  const double phase = p.phase;
  // Small per-repetition ellipse eccentricity.
  const double ecc = rng.uniform(0.85, 1.15);
  const double roll = rng.uniform(0.30, 0.45);  // thumb-pad roll depth
  const double omega = 2.0 * kPi * turns / T;
  return Motion(T, [=](double t) {
    const double phi = phase + omega * t;
    // Hann ramp so the gesture starts and ends at the centre pose.
    const double env = std::min(1.0, 5.0 * hann(t / T));
    FingertipPose pose;
    pose.position = c + (f.u * (r * ecc * std::cos(phi)) +
                         w * (r * std::sin(phi))) *
                            env;
    // Drawing a circle rolls the thumb pad, so the presented area and the
    // pad normal modulate 90° out of phase with the height: the RSS keeps
    // changing even where the vertical velocity crosses zero.
    pose.normal =
        (n + f.u * (0.35 * std::cos(phi)) + f.v * (0.2 * std::sin(phi)))
            .normalized();
    pose.area_scale = 1.0 + roll * std::cos(phi) * env;
    return pose;
  });
}

Motion make_rub(const MotionParams& p, common::Rng& rng, int pairs) {
  // A rub is a burst of quick strokes (~3 back-and-forths per unit, double
  // rub = two units), markedly faster than the smooth circle glide — the
  // tempo difference is the paper's Fig. 3 rub-vs-circle signature.
  const double T = (pairs == 1 ? 0.7 : 1.3) / p.speed;
  const double r = 0.0025 * p.amplitude;
  const Frame f = tilted_frame(p.tilt_rad, p.mirror_y);
  const Vec3 c = p.center_offset + Vec3{0, 0, p.standoff_m};
  const Vec3 n = pad_normal(p.tilt_rad);
  const double bob = rng.uniform(0.15, 0.30) * r;  // slight z bob per stroke
  const double roll = rng.uniform(0.20, 0.35);     // pad slide depth
  const double omega = 2.0 * kPi * 3.0 * pairs / T;
  return Motion(T, [=](double t) {
    const double s = omega * t;
    // Rounded-triangle stroke profile: rubbing moves at near-constant
    // speed with quick reversals, unlike the sinusoidal glide of a circle;
    // the reversals put brief deep nulls into ΔRSS² (the Fig. 3 rub
    // signature).
    const double tri = std::asin(std::sin(s) * 0.98) / std::asin(0.98);
    FingertipPose pose;
    pose.position = c + f.u * (r * tri);
    // The thumb presses slightly harder mid-stroke: small vertical bob at
    // twice the stroke frequency.
    pose.position.z -= bob * 0.5 * (1.0 - std::cos(2.0 * s));
    // Rubbing slides the pad over the index tip: the presented area and
    // normal modulate with the stroke.
    pose.area_scale = 1.0 + roll * tri;
    pose.normal = (n + f.u * (0.3 * tri)).normalized();
    return pose;
  });
}

Motion make_click(const MotionParams& p, common::Rng& rng, int clicks) {
  const double T = (clicks == 1 ? 0.35 : 0.65) / p.speed;
  const double depth =
      std::min(p.standoff_m * 0.75, 0.014 * p.amplitude);
  const Frame f = tilted_frame(p.tilt_rad, p.mirror_y);
  const Vec3 c = p.center_offset + Vec3{0, 0, p.standoff_m};
  const Vec3 n = pad_normal(p.tilt_rad);
  const double drift = rng.uniform(-0.002, 0.002);
  return Motion(T, [=](double t) {
    const double s = t / T;
    // One dip: sin²(πs); two dips: sin²(2πs) peaks at s=1/4 and 3/4.
    const double dip = (clicks == 1) ? std::sin(kPi * s)
                                     : std::sin(2.0 * kPi * s);
    FingertipPose pose;
    pose.position = c + f.u * (drift * std::sin(kPi * s));
    pose.position.z -= depth * dip * dip;
    pose.normal = n;
    return pose;
  });
}

Motion make_scroll(const MotionParams& p, common::Rng& rng, bool up) {
  const double T = 0.55 / p.speed;
  const double half = kScrollHalfSpanM * p.amplitude;
  const double extent = std::clamp(p.partial_extent, 0.1, 1.0);
  // Scroll up passes P1 (at -x) first: sweep from -half towards +half.
  // Partial scrolls stop after `extent` of the full span.
  const double x0 = up ? -half : +half;
  const double x1 = x0 + (up ? 1.0 : -1.0) * 2.0 * half * extent;
  const Frame f = tilted_frame(p.tilt_rad * 0.4, p.mirror_y);
  const Vec3 c = p.center_offset + Vec3{0, 0, p.standoff_m};
  const Vec3 n = pad_normal(p.tilt_rad);
  const double z_arc = rng.uniform(0.0, 0.003);  // slight height arc
  // Swipe entry/exit: the finger descends into the sweep and lifts away at
  // the end (users do not hover at the scroll endpoints), so the idle
  // padding around a scroll is optically dark.
  const double z_lift = rng.uniform(0.020, 0.032);
  return Motion(T, [=](double t) {
    const double s = minimum_jerk(t / T);
    FingertipPose pose;
    pose.position = c + f.u * (x0 + (x1 - x0) * s);
    pose.position.z += z_arc * std::sin(kPi * t / T);
    const double raw_s = t / T;
    const double entry = std::max(0.0, 1.0 - raw_s / 0.22);
    const double exit = std::max(0.0, (raw_s - 0.78) / 0.22);
    pose.position.z += z_lift * (entry * entry + exit * exit);
    pose.normal = n;
    return pose;
  });
}

Motion make_scratch(const MotionParams& p, common::Rng& rng) {
  const double T = rng.uniform(0.4, 1.2) / p.speed;
  const auto noise = std::make_shared<SmoothNoise3>(
      rng, 4.0, 9.0, 0.005 * p.amplitude, 5);
  const Vec3 c = p.center_offset + Vec3{0, 0, p.standoff_m};
  const Vec3 n = pad_normal(p.tilt_rad);
  return Motion(T, [=](double t) {
    FingertipPose pose;
    pose.position = c + noise->at(t) * hann(t / T);
    pose.normal = n;
    return pose;
  });
}

Motion make_extend(const MotionParams& p, common::Rng& rng) {
  const double T = 0.8 / p.speed;
  const double rise = rng.uniform(0.04, 0.07);
  const double drift_x = rng.uniform(-0.012, 0.012);
  const Vec3 c = p.center_offset + Vec3{0, 0, p.standoff_m};
  const Vec3 n = pad_normal(p.tilt_rad);
  return Motion(T, [=](double t) {
    const double s = minimum_jerk(t / T);
    FingertipPose pose;
    pose.position = c + Vec3{drift_x * s, 0.0, rise * s};
    pose.normal = n;
    return pose;
  });
}

Motion make_reposition(const MotionParams& p, common::Rng& rng) {
  const double T = 1.2 / p.speed;
  const Vec3 from{rng.uniform(-0.025, -0.012), rng.uniform(-0.012, 0.0), 0};
  const Vec3 to{rng.uniform(0.012, 0.025), rng.uniform(0.0, 0.015), 0};
  const double hump = rng.uniform(0.004, 0.012);
  const Vec3 c = p.center_offset + Vec3{0, 0, p.standoff_m};
  const Vec3 n = pad_normal(p.tilt_rad);
  return Motion(T, [=](double t) {
    const double s = minimum_jerk(t / T);
    FingertipPose pose;
    pose.position = c + from + (to - from) * s;
    pose.position.z += hump * std::sin(kPi * s);
    pose.normal = n;
    return pose;
  });
}

}  // namespace

Motion make_motion(MotionKind kind, const MotionParams& p, common::Rng& rng) {
  AF_EXPECT(p.speed > 0.0, "motion speed must be positive");
  AF_EXPECT(p.amplitude > 0.0, "motion amplitude must be positive");
  AF_EXPECT(p.standoff_m > 0.0, "standoff must be positive");
  switch (kind) {
    case MotionKind::kCircle: return make_circle(p, rng, 1);
    case MotionKind::kDoubleCircle: return make_circle(p, rng, 2);
    case MotionKind::kRub: return make_rub(p, rng, 1);
    case MotionKind::kDoubleRub: return make_rub(p, rng, 2);
    case MotionKind::kClick: return make_click(p, rng, 1);
    case MotionKind::kDoubleClick: return make_click(p, rng, 2);
    case MotionKind::kScrollUp: return make_scroll(p, rng, true);
    case MotionKind::kScrollDown: return make_scroll(p, rng, false);
    case MotionKind::kScratch: return make_scratch(p, rng);
    case MotionKind::kExtend: return make_extend(p, rng);
    case MotionKind::kReposition: return make_reposition(p, rng);
  }
  throw PreconditionError("unknown motion kind");
}

ScrollTruth scroll_truth(MotionKind kind, const MotionParams& p) {
  AF_EXPECT(is_track_aimed(kind), "scroll_truth requires a track-aimed kind");
  ScrollTruth truth;
  truth.direction = (kind == MotionKind::kScrollUp) ? +1.0 : -1.0;
  const double half = kScrollHalfSpanM * p.amplitude;
  const double extent = std::clamp(p.partial_extent, 0.1, 1.0);
  truth.displacement_m = 2.0 * half * extent;
  truth.duration_s = 0.55 / p.speed;
  truth.mean_velocity_mps = truth.displacement_m / truth.duration_s;
  return truth;
}

}  // namespace airfinger::synth
