// Dataset container and the collection-protocol builder.
//
// DatasetBuilder reproduces the paper's data collection (Sec. V-B): N users
// × M sessions × R repetitions per gesture, each repetition recorded as an
// independent multi-channel trace with idle padding and ground-truth
// annotations. Variants cover every evaluation scenario: distance sweeps
// (Fig. 8), time-of-day sweeps (Fig. 15), non-dominant hand (Fig. 16),
// wristband activities (Fig. 17), and unintentional-motion sets (Fig. 14).
#pragma once

#include <optional>
#include <vector>

#include "sensor/prototype.hpp"
#include "synth/scenario.hpp"

namespace airfinger::synth {

/// One recorded repetition with its ground truth.
struct GestureSample {
  sensor::MultiChannelTrace trace;  ///< Raw multi-PD recording (ADC counts).
  MotionKind kind = MotionKind::kCircle;
  int user_id = 0;
  int session_id = 0;
  int repetition = 0;
  double gesture_start_s = 0.0;  ///< Ground-truth onset within the trace.
  double gesture_end_s = 0.0;    ///< Ground-truth offset within the trace.
  double standoff_m = 0.0;       ///< Actual fingertip standoff used.
  std::optional<ScrollTruth> scroll;  ///< Tracking ground truth (scrolls).
};

/// A labelled collection of samples.
struct Dataset {
  std::vector<GestureSample> samples;

  std::size_t size() const { return samples.size(); }

  /// Distinct user ids present, ascending.
  std::vector<int> user_ids() const;

  /// Distinct session ids present, ascending.
  std::vector<int> session_ids() const;
};

/// Collection-protocol configuration (defaults follow Sec. V-B).
struct CollectionConfig {
  int users = 10;
  int sessions = 5;
  int repetitions = 25;
  std::vector<MotionKind> kinds{all_gestures().begin(), all_gestures().end()};
  std::uint64_t seed = 7;
  sensor::PrototypeSpec prototype{};
  /// Auto-gain calibration of the amplifier before each recording (the
  /// paper's Sec. VI "adjustable amplifiers"). false = the fixed gain in
  /// `prototype.adc.gain`, like the paper's actual Arduino prototype.
  bool auto_gain = true;
  Activity activity = Activity::kSitting;
  bool non_dominant_hand = false;
  InterferenceOptions interference{};
  /// When >= 0, every repetition uses this standoff (distance study).
  double standoff_override_m = -1.0;
  /// Probability that a scroll is partial (passes only P1 or only P3).
  double partial_scroll_probability = 0.15;
  /// Session start hours (cycled if fewer than `sessions`).
  std::vector<double> session_hours{9.0, 11.0, 14.0, 16.0, 19.0};
  /// When set, overrides session hours with a single fixed hour.
  std::optional<double> fixed_hour;
};

/// Builds datasets following the paper's protocol. Deterministic in seed:
/// every repetition draws from its own indexed Rng substream, so collect()
/// is bit-identical at any thread count (see common/parallel.hpp).
class DatasetBuilder {
 public:
  explicit DatasetBuilder(CollectionConfig config);

  const CollectionConfig& config() const { return config_; }

  /// Runs the full protocol: users × sessions × kinds × repetitions.
  /// Repetitions are synthesized in parallel on the shared pool.
  Dataset collect() const;

  /// Records a single repetition for an explicit user/session pair.
  GestureSample record_one(MotionKind kind, const UserProfile& user,
                           const SessionContext& session, int repetition,
                           common::Rng& rng) const;

  /// The synthetic volunteer roster used by collect() (stable given seed).
  std::vector<UserProfile> roster() const;

 private:
  SessionContext make_session(int session_id, common::Rng& rng) const;

  CollectionConfig config_;
};

/// Convenience: a continuous stream containing several gestures separated by
/// idle gaps, for segmentation experiments (Fig. 5). Returns the
/// concatenated trace plus ground-truth [start,end) sample indices of each
/// gesture within it.
struct GestureStream {
  sensor::MultiChannelTrace trace;
  std::vector<std::pair<std::size_t, std::size_t>> gesture_bounds;
  std::vector<MotionKind> kinds;
};

GestureStream make_gesture_stream(const CollectionConfig& config,
                                  const std::vector<MotionKind>& kinds,
                                  std::uint64_t seed);

}  // namespace airfinger::synth
