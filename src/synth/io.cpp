#include "synth/io.hpp"

#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "common/csv.hpp"
#include "common/error.hpp"

namespace airfinger::synth {

namespace {

std::string format_double(double v) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  return buffer;
}

double parse_double(const std::string& field, const char* what) {
  char* end = nullptr;
  const double v = std::strtod(field.c_str(), &end);
  AF_EXPECT(end != field.c_str(),
            std::string("dataset CSV: malformed ") + what);
  return v;
}

int parse_int(const std::string& field, const char* what) {
  return static_cast<int>(parse_double(field, what));
}

}  // namespace

void save_dataset_csv(const Dataset& dataset, const std::string& path) {
  AF_EXPECT(!dataset.samples.empty(), "cannot save an empty dataset");
  const std::size_t channels = dataset.samples.front().trace.channel_count();

  std::vector<std::string> header{
      "sample",          "kind",         "user",
      "session",         "repetition",   "gesture_start_s",
      "gesture_end_s",   "standoff_m",   "scroll_dir",
      "scroll_vel_mps",  "scroll_disp_m", "frame"};
  for (std::size_t c = 0; c < channels; ++c)
    header.push_back("p" + std::to_string(c + 1));
  common::CsvWriter csv(path, header);

  for (std::size_t idx = 0; idx < dataset.samples.size(); ++idx) {
    const auto& s = dataset.samples[idx];
    AF_EXPECT(s.trace.channel_count() == channels,
              "dataset mixes channel counts");
    for (std::size_t frame = 0; frame < s.trace.sample_count(); ++frame) {
      std::vector<std::string> row{
          std::to_string(idx),
          std::to_string(static_cast<int>(s.kind)),
          std::to_string(s.user_id),
          std::to_string(s.session_id),
          std::to_string(s.repetition),
          format_double(s.gesture_start_s),
          format_double(s.gesture_end_s),
          format_double(s.standoff_m),
          s.scroll ? format_double(s.scroll->direction) : "",
          s.scroll ? format_double(s.scroll->mean_velocity_mps) : "",
          s.scroll ? format_double(s.scroll->displacement_m) : "",
          std::to_string(frame)};
      for (std::size_t c = 0; c < channels; ++c)
        row.push_back(format_double(s.trace.channel(c)[frame]));
      csv.write_row(row);
    }
  }
}

Dataset load_dataset_csv(const std::string& path, double sample_rate_hz) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_dataset_csv: cannot open " + path);

  std::string line;
  AF_EXPECT(static_cast<bool>(std::getline(in, line)),
            "dataset CSV is empty");
  const auto header = common::csv_split(line);
  AF_EXPECT(header.size() > 12 && header[0] == "sample" &&
                header[11] == "frame",
            "unrecognized dataset CSV header");
  const std::size_t channels = header.size() - 12;

  Dataset dataset;
  long long current = -1;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto fields = common::csv_split(line);
    AF_EXPECT(fields.size() == header.size(),
              "dataset CSV row arity mismatch");
    const long long sample_idx = parse_int(fields[0], "sample index");
    if (sample_idx != current) {
      AF_EXPECT(sample_idx == current + 1,
                "dataset CSV sample indices must be contiguous");
      current = sample_idx;
      GestureSample s;
      s.trace = sensor::MultiChannelTrace(channels, sample_rate_hz);
      s.kind = static_cast<MotionKind>(parse_int(fields[1], "kind"));
      s.user_id = parse_int(fields[2], "user");
      s.session_id = parse_int(fields[3], "session");
      s.repetition = parse_int(fields[4], "repetition");
      s.gesture_start_s = parse_double(fields[5], "gesture_start_s");
      s.gesture_end_s = parse_double(fields[6], "gesture_end_s");
      s.standoff_m = parse_double(fields[7], "standoff_m");
      if (!fields[8].empty()) {
        ScrollTruth truth;
        truth.direction = parse_double(fields[8], "scroll_dir");
        truth.mean_velocity_mps = parse_double(fields[9], "scroll_vel");
        truth.displacement_m = parse_double(fields[10], "scroll_disp");
        truth.duration_s = s.gesture_end_s - s.gesture_start_s;
        s.scroll = truth;
      }
      dataset.samples.push_back(std::move(s));
    }
    std::vector<double> frame(channels);
    for (std::size_t c = 0; c < channels; ++c)
      frame[c] = parse_double(fields[12 + c], "channel value");
    dataset.samples.back().trace.push_frame(frame);
  }
  AF_EXPECT(!dataset.samples.empty(), "dataset CSV contains no samples");
  return dataset;
}

}  // namespace airfinger::synth
