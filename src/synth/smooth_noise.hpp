// Band-limited smooth random processes used for physiological tremor,
// scratching jitter, and body sway. Implemented as a sum of sinusoids with
// random frequencies and phases: infinitely differentiable, cheap to
// evaluate at arbitrary t, and fully determined by the Rng at construction.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "optics/vec3.hpp"

namespace airfinger::synth {

/// One-dimensional band-limited noise, zero-mean, unit-ish RMS before scale.
class SmoothNoise {
 public:
  /// Draws `components` sinusoids with frequencies uniform in
  /// [min_freq_hz, max_freq_hz], random phases, and amplitudes ~1/k so the
  /// process is dominated by its lower band. `scale` multiplies the output.
  SmoothNoise(common::Rng& rng, double min_freq_hz, double max_freq_hz,
              double scale, int components = 4);

  /// Value at time t (seconds).
  double at(double t) const;

 private:
  struct Component {
    double freq_hz;
    double phase;
    double amplitude;
  };
  std::vector<Component> components_;
};

/// Independent smooth noise on each axis.
class SmoothNoise3 {
 public:
  SmoothNoise3(common::Rng& rng, double min_freq_hz, double max_freq_hz,
               double scale, int components = 4);

  optics::Vec3 at(double t) const;

 private:
  SmoothNoise x_, y_, z_;
};

}  // namespace airfinger::synth
