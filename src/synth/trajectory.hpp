// Parametric fingertip kinematics for every motion kind.
//
// Each designed gesture of Fig. 2 is modelled as a smooth 3-D fingertip
// trajectory above the sensor board (board plane z=0, parts facing +z):
//   circle / double circle  — one/two revolutions in a tilted plane with a
//                             substantial out-of-plane (z) component, as when
//                             drawing against the index fingertip;
//   rub / double rub        — one/two lateral back-and-forth stroke pairs;
//   click / double click    — one/two quick dips towards the board;
//   scroll up / down        — minimum-jerk sweep along the board's x axis
//                             (up = towards +x, i.e. past P1 first), with
//                             optional partial extent (the paper's "scroll
//                             passing only P1" case);
//   scratch / extend / reposition — unintentional motions of Sec. V-J-1.
#pragma once

#include <functional>
#include <memory>

#include "common/rng.hpp"
#include "optics/vec3.hpp"
#include "synth/motion_kind.hpp"

namespace airfinger::synth {

/// Instantaneous fingertip pose.
struct FingertipPose {
  optics::Vec3 position;
  optics::Vec3 normal{0, 0, -1};  ///< Pad normal, towards the board.
  /// Effective reflecting-area multiplier: the presented pad area changes
  /// as the thumb rolls while drawing (1 = the user's nominal area).
  double area_scale = 1.0;
};

/// A continuous finger motion over [0, duration]. Evaluation outside the
/// interval clamps to the endpoints (finger holds its pose).
class Motion {
 public:
  Motion(double duration_s, std::function<FingertipPose(double)> pose_fn);

  double duration_s() const { return duration_s_; }

  /// Pose at time t; t is clamped into [0, duration].
  FingertipPose at(double t) const;

 private:
  double duration_s_;
  std::function<FingertipPose(double)> pose_fn_;
};

/// Shape parameters resolved from user × session × repetition layers.
struct MotionParams {
  double speed = 1.0;        ///< Tempo multiplier (duration divides by it).
  double amplitude = 1.0;    ///< Size multiplier.
  double standoff_m = 0.02;  ///< Fingertip height above the board.
  double tilt_rad = 0.0;     ///< Rotation of the gesture plane about z.
  double phase = 0.0;        ///< Starting phase for cyclic gestures.
  optics::Vec3 center_offset{};  ///< Gesture centre offset in the xy plane.
  bool mirror_y = false;     ///< Non-dominant hand (mirrored across x axis).
  /// For scrolls: fraction of the full sweep performed, in (0, 1]. Values
  /// around 0.45 reproduce the "passes only P1 (or P3)" case of Sec. IV-D.
  double partial_extent = 1.0;
};

/// Quintic minimum-jerk interpolation s ∈ [0,1] → [0,1].
double minimum_jerk(double s);

/// Builds the trajectory for `kind`. `rng` seeds shape irregularities (and
/// the random course of the non-gesture motions). Deterministic given the
/// rng state.
Motion make_motion(MotionKind kind, const MotionParams& p, common::Rng& rng);

/// Ground truth for track-aimed gestures; used to score ZEBRA.
struct ScrollTruth {
  double direction = 0.0;       ///< +1 scroll up, -1 scroll down.
  double mean_velocity_mps = 0.0;
  double displacement_m = 0.0;  ///< |sweep| actually performed.
  double duration_s = 0.0;
};

/// Computes the ground truth of a scroll produced by make_motion with the
/// same parameters. Requires is_track_aimed(kind).
ScrollTruth scroll_truth(MotionKind kind, const MotionParams& p);

/// Full sweep half-length (metres) of a scroll at amplitude 1.
inline constexpr double kScrollHalfSpanM = 0.028;

}  // namespace airfinger::synth
