// Dataset persistence: CSV export/import of recorded gesture samples.
//
// The exported corpus is a single flat CSV — one row per frame, with the
// per-sample metadata repeated on each row — trivially loadable into
// pandas/R for inspection, and round-trippable back into a Dataset so
// experiments can run on a frozen corpus instead of regenerating.
#pragma once

#include <string>

#include "synth/dataset.hpp"

namespace airfinger::synth {

/// Writes a dataset to a CSV file. Columns: sample, kind, user, session,
/// repetition, gesture_start_s, gesture_end_s, standoff_m, scroll_dir,
/// scroll_vel_mps, scroll_disp_m, frame, p1..pN.
/// Throws std::runtime_error on I/O failure.
void save_dataset_csv(const Dataset& dataset, const std::string& path);

/// Loads a dataset written by save_dataset_csv. Validates the header and
/// per-row arity; throws PreconditionError on malformed input.
Dataset load_dataset_csv(const std::string& path,
                         double sample_rate_hz = 100.0);

}  // namespace airfinger::synth
