// Individual diversity and gesture inconsistency models.
//
// The paper's key robustness experiments hinge on two sources of variation:
//   - *individual diversity* (Sec. V-F-2): different people exhibit
//     systematically different RSS patterns for the same gesture;
//   - *gesture inconsistency* (Sec. V-F-3): the same person performs a
//     gesture slightly differently from session to session and rep to rep.
// We model this as a hierarchy: user-level parameter draws have the largest
// variance, session-level drifts are smaller, and repetition-level jitter is
// smallest. This ordering is what makes leave-one-user-out measurably harder
// than leave-one-session-out, as in the paper (83.6% vs 97.1%).
#pragma once

#include <array>

#include "common/rng.hpp"
#include "optics/vec3.hpp"
#include "synth/motion_kind.hpp"

namespace airfinger::synth {

/// Per-gesture idiosyncrasy of one user (habitual tempo/size quirks).
struct GestureStyle {
  double speed_factor = 1.0;
  double amplitude_factor = 1.0;
  double phase_offset = 0.0;  ///< Where in the cycle the user starts.
};

/// Stable physical and behavioural traits of one (synthetic) volunteer.
struct UserProfile {
  int user_id = 0;
  double speed_factor = 1.0;        ///< Overall gesture tempo multiplier.
  double amplitude_factor = 1.0;    ///< Overall gesture size multiplier.
  double standoff_m = 0.02;         ///< Habitual finger-to-board distance.
  double tilt_rad = 0.0;            ///< Habitual hand axis rotation.
  double skin_reflectivity = 0.6;   ///< Diffuse albedo at 940 nm.
  double fingertip_area_m2 = 1.2e-4;
  double hand_area_m2 = 7.0e-4;     ///< Rest-of-hand static reflector.
  optics::Vec3 hand_offset{0.012, 0.02, 0.018};  ///< Palm relative to tip.
  optics::Vec3 center_offset{};     ///< Habitual gesture centre offset.
  double tremor_amplitude_m = 1e-4; ///< Physiological tremor (~0.1 mm).
  std::array<GestureStyle, kGestureCount> styles{};

  /// Draws a random volunteer. Deterministic given the rng state.
  static UserProfile sample(int user_id, common::Rng& rng);
};

/// Session-level drift applied on top of a UserProfile.
struct SessionContext {
  int session_id = 0;
  double speed_drift = 1.0;
  double amplitude_drift = 1.0;
  double standoff_drift_m = 0.0;
  double tilt_drift_rad = 0.0;
  optics::Vec3 center_drift{};
  double hour_of_day = 11.0;  ///< When the session took place.

  static SessionContext sample(int session_id, double hour_of_day,
                               common::Rng& rng);
};

/// Repetition-level jitter: the smallest layer of variation.
struct RepetitionJitter {
  double speed = 1.0;
  double amplitude = 1.0;
  double standoff_m = 0.0;
  optics::Vec3 center{};
  double phase = 0.0;
  double pre_idle_s = 0.4;   ///< Idle padding recorded before the gesture.
  double post_idle_s = 0.4;  ///< Idle padding recorded after the gesture.

  static RepetitionJitter sample(common::Rng& rng);
};

/// Body-activity condition of the wristband experiment (Fig. 17).
enum class Activity { kSitting, kStanding, kWalking };

std::string_view activity_name(Activity a);

}  // namespace airfinger::synth
