#include "synth/user.hpp"

#include <numbers>

namespace airfinger::synth {

UserProfile UserProfile::sample(int user_id, common::Rng& rng) {
  UserProfile u;
  u.user_id = user_id;
  u.speed_factor = rng.uniform(0.75, 1.35);
  u.amplitude_factor = rng.uniform(0.75, 1.30);
  u.standoff_m = rng.uniform(0.013, 0.024);
  u.tilt_rad = rng.uniform(-0.35, 0.35);
  u.skin_reflectivity = rng.uniform(0.45, 0.72);
  u.fingertip_area_m2 = rng.uniform(1.0e-4, 1.5e-4);
  u.hand_area_m2 = rng.uniform(5.0e-4, 9.0e-4);
  u.hand_offset = {rng.uniform(0.008, 0.016), rng.uniform(0.014, 0.028),
                   rng.uniform(0.012, 0.024)};
  u.center_offset = {rng.uniform(-0.003, 0.003), rng.uniform(-0.003, 0.003),
                     0.0};
  u.tremor_amplitude_m = rng.uniform(5e-5, 2e-4);
  for (auto& s : u.styles) {
    s.speed_factor = rng.normal(1.0, 0.08);
    s.amplitude_factor = rng.normal(1.0, 0.08);
    s.phase_offset = rng.uniform(0.0, 2.0 * std::numbers::pi);
  }
  return u;
}

SessionContext SessionContext::sample(int session_id, double hour_of_day,
                                      common::Rng& rng) {
  SessionContext s;
  s.session_id = session_id;
  s.speed_drift = rng.normal(1.0, 0.05);
  s.amplitude_drift = rng.normal(1.0, 0.05);
  s.standoff_drift_m = rng.normal(0.0, 0.002);
  s.tilt_drift_rad = rng.normal(0.0, 0.05);
  s.center_drift = {rng.normal(0.0, 0.002), rng.normal(0.0, 0.002), 0.0};
  s.hour_of_day = hour_of_day;
  return s;
}

RepetitionJitter RepetitionJitter::sample(common::Rng& rng) {
  RepetitionJitter r;
  r.speed = rng.normal(1.0, 0.03);
  r.amplitude = rng.normal(1.0, 0.03);
  r.standoff_m = rng.normal(0.0, 0.001);
  r.center = {rng.normal(0.0, 0.0015), rng.normal(0.0, 0.0015), 0.0};
  r.phase = rng.uniform(0.0, 2.0 * std::numbers::pi);
  r.pre_idle_s = rng.uniform(0.3, 0.8);
  r.post_idle_s = rng.uniform(0.3, 0.8);
  return r;
}

std::string_view activity_name(Activity a) {
  switch (a) {
    case Activity::kSitting: return "sitting";
    case Activity::kStanding: return "standing";
    case Activity::kWalking: return "walking";
  }
  return "unknown";
}

}  // namespace airfinger::synth
