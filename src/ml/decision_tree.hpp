// CART decision tree with Gini impurity.
//
// Serves both as the paper's standalone DT baseline and as the base learner
// of the random forest (feature subsampling per node is exposed for that
// purpose). Training accumulates impurity-decrease feature importances.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <optional>

#include "common/rng.hpp"
#include "ml/classifier.hpp"

namespace airfinger::ml {

/// Hyper-parameters of one CART tree.
struct DecisionTreeConfig {
  std::size_t max_depth = 16;
  std::size_t min_samples_split = 4;
  std::size_t min_samples_leaf = 2;
  /// Features considered per split; 0 = all (plain CART). The forest sets
  /// this to ~sqrt(feature_count).
  std::size_t max_features = 0;
  std::uint64_t seed = 1;
};

/// A trained CART tree.
class DecisionTree final : public Classifier {
 public:
  struct Node {
    // Internal nodes: split on feature < threshold → left, else right.
    int feature = -1;
    double threshold = 0.0;
    std::int32_t left = -1;
    std::int32_t right = -1;
    // Leaves: class distribution (normalized counts).
    std::vector<double> distribution;
    bool is_leaf() const { return feature < 0; }
  };

  explicit DecisionTree(DecisionTreeConfig config = {});

  void fit(const SampleSet& data) override;
  int predict(std::span<const double> x) const override;
  std::string name() const override { return "DT"; }

  /// Class-probability estimate from the reached leaf's label histogram.
  std::vector<double> predict_proba(std::span<const double> x) const;

  /// predict_proba() writing into caller storage; out.size() must equal
  /// num_classes(). Performs no heap allocation.
  void predict_proba_into(std::span<const double> x,
                          std::span<double> out) const;

  /// The reached leaf's distribution as a view into the tree — the
  /// allocation-free primitive both predict overloads build on.
  std::span<const double> leaf_distribution(std::span<const double> x) const;

  /// Node storage in construction order (root at index 0). Lets
  /// CompiledForest flatten fitted trees without re-walking the format.
  const std::vector<Node>& nodes() const { return nodes_; }

  /// Impurity-decrease importance per feature (sums to 1 when any split
  /// was made). Valid after fit().
  const std::vector<double>& feature_importances() const {
    return importances_;
  }

  std::size_t node_count() const { return nodes_.size(); }
  int num_classes() const { return num_classes_; }

  /// Serializes the fitted tree (text format, exact round-trip).
  /// Requires a prior fit().
  void save(std::ostream& os) const;

  /// Reconstructs a tree written by save(). Throws PreconditionError on
  /// malformed input.
  static DecisionTree load(std::istream& is);

 private:
  struct SplitCandidate {
    std::size_t feature = 0;
    double threshold = 0.0;
    double impurity_decrease = 0.0;
  };

  std::int32_t build(const SampleSet& data, std::vector<std::size_t>& rows,
                     std::size_t depth, common::Rng& rng);
  std::optional<SplitCandidate> best_split(
      const SampleSet& data, std::span<const std::size_t> rows,
      common::Rng& rng) const;
  std::int32_t make_leaf(const SampleSet& data,
                         std::span<const std::size_t> rows);

  DecisionTreeConfig config_;
  std::vector<Node> nodes_;
  std::vector<double> importances_;
  int num_classes_ = 0;
};

/// Gini impurity of a label histogram with `total` entries.
double gini_impurity(std::span<const double> class_counts, double total);

}  // namespace airfinger::ml
