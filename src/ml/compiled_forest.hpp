// Compiled SoA random forest for the inference hot path (DESIGN.md §11).
//
// A fitted RandomForest stores each tree as a vector of nodes that each own
// a heap-allocated leaf distribution; traversal chases pointers across many
// small allocations and predict_proba() builds a fresh vector per call. A
// CompiledForest flattens every tree of the forest into contiguous
// structure-of-arrays node storage — feature index, threshold, first-child
// index, and leaf-distribution offset each in their own array — plus one
// concatenated leaf-distribution block. Traversal touches four dense arrays
// and predict_proba_into() writes into caller storage, so steady-state
// prediction performs zero heap allocations.
//
// Layout notes:
//   - Children of an internal node are adjacent (left at child_[i], right at
//     child_[i] + 1), so the branch reduces to an index add.
//   - Leaf distributions are padded with zeros to the forest-wide class
//     count. Distributions are non-negative, so accumulating the padding
//     zeros is bit-identical to the reference path that skips the missing
//     classes (only -0.0 + 0.0 could differ, and -0.0 never occurs).
//   - predict_proba_into descends trees in chunks through the AF_SIMD
//     forest_leaves kernel (a lane-group of trees advances one level per
//     step on vector tiers); every lane follows the exact scalar branch
//     rule and the leaf accumulation stays in tree order, so batching does
//     not disturb the bit-identity invariant below.
//
// Invariant (locked by tests/compiled_forest_test.cpp): predictions are
// bit-identical to RandomForest::predict/predict_proba on the same input.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/random_forest.hpp"

namespace airfinger::ml {

/// Immutable flattened view of a fitted RandomForest. Safe to share across
/// threads once constructed.
class CompiledForest {
 public:
  /// An empty (not yet compiled) forest; predict* calls are invalid.
  CompiledForest() = default;

  /// Flattens `forest`, which must be fitted.
  explicit CompiledForest(const RandomForest& forest);

  bool compiled() const { return !roots_.empty(); }
  std::size_t tree_count() const { return roots_.size(); }
  std::size_t node_count() const { return feature_.size(); }
  std::size_t num_classes() const { return num_classes_; }

  /// Mean class-probability across trees, written into caller storage of
  /// size num_classes(). Allocation-free and bit-identical to
  /// RandomForest::predict_proba.
  void predict_proba_into(std::span<const double> x,
                          std::span<double> out) const;

  /// Allocating conveniences mirroring the RandomForest surface.
  std::vector<double> predict_proba(std::span<const double> x) const;
  int predict(std::span<const double> x) const;

 private:
  std::size_t flatten(const DecisionTree& tree);

  // SoA node storage. feature_[i] < 0 marks a leaf whose distribution lives
  // at leaf_dist_[leaf_offset_[i] .. leaf_offset_[i] + num_classes_).
  std::vector<std::int32_t> feature_;
  std::vector<double> threshold_;
  std::vector<std::int32_t> child_;        // first (left) child index
  std::vector<std::int32_t> leaf_offset_;  // into leaf_dist_, leaves only
  std::vector<double> leaf_dist_;          // concatenated padded leaves
  std::vector<std::int32_t> roots_;        // root node index per tree
  std::size_t num_classes_ = 0;
};

}  // namespace airfinger::ml
