#include "ml/logistic.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace airfinger::ml {

LogisticRegression::LogisticRegression(LogisticRegressionConfig config)
    : config_(config) {
  AF_EXPECT(config.learning_rate > 0.0, "learning rate must be positive");
  AF_EXPECT(config.l2 >= 0.0, "l2 must be non-negative");
  AF_EXPECT(config.epochs >= 1, "epochs must be >= 1");
  AF_EXPECT(config.batch_size >= 1, "batch size must be >= 1");
}

std::vector<double> LogisticRegression::standardize(
    std::span<const double> x) const {
  std::vector<double> z(x.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    z[i] = (x[i] - feature_mean_[i]) / feature_scale_[i];
  return z;
}

std::vector<double> LogisticRegression::logits(
    std::span<const double> z) const {
  std::vector<double> out(weights_.size());
  for (std::size_t c = 0; c < weights_.size(); ++c) {
    double s = biases_[c];
    const auto& w = weights_[c];
    for (std::size_t i = 0; i < z.size(); ++i) s += w[i] * z[i];
    out[c] = s;
  }
  return out;
}

void LogisticRegression::fit(const SampleSet& data) {
  data.validate();
  AF_EXPECT(data.size() >= 2, "fit requires at least two samples");
  num_classes_ = data.num_classes();
  AF_EXPECT(num_classes_ >= 2, "LR requires at least two classes");
  const std::size_t p = data.feature_count();

  // Standardization parameters from the training data.
  feature_mean_.assign(p, 0.0);
  feature_scale_.assign(p, 1.0);
  for (const auto& row : data.features)
    for (std::size_t i = 0; i < p; ++i) feature_mean_[i] += row[i];
  for (double& m : feature_mean_) m /= static_cast<double>(data.size());
  std::vector<double> var(p, 0.0);
  for (const auto& row : data.features)
    for (std::size_t i = 0; i < p; ++i) {
      const double d = row[i] - feature_mean_[i];
      var[i] += d * d;
    }
  for (std::size_t i = 0; i < p; ++i) {
    const double sd = std::sqrt(var[i] / static_cast<double>(data.size()));
    feature_scale_[i] = sd > 1e-12 ? sd : 1.0;
  }

  // Pre-standardize the training matrix once.
  std::vector<std::vector<double>> z;
  z.reserve(data.size());
  for (const auto& row : data.features) z.push_back(standardize(row));

  const auto k = static_cast<std::size_t>(num_classes_);
  weights_.assign(k, std::vector<double>(p, 0.0));
  biases_.assign(k, 0.0);

  common::Rng rng(config_.seed);
  std::vector<std::size_t> order(data.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.shuffle(order);
    // Simple 1/sqrt schedule keeps late epochs from oscillating.
    const double lr =
        config_.learning_rate / std::sqrt(1.0 + epoch * 0.25);
    for (std::size_t start = 0; start < order.size();
         start += config_.batch_size) {
      const std::size_t end =
          std::min(start + config_.batch_size, order.size());
      std::vector<std::vector<double>> grad_w(k,
                                              std::vector<double>(p, 0.0));
      std::vector<double> grad_b(k, 0.0);

      for (std::size_t bi = start; bi < end; ++bi) {
        const std::size_t r = order[bi];
        auto l = logits(z[r]);
        const double m = *std::max_element(l.begin(), l.end());
        double denom = 0.0;
        for (double& v : l) {
          v = std::exp(v - m);
          denom += v;
        }
        for (std::size_t c = 0; c < k; ++c) {
          const double prob = l[c] / denom;
          const double err =
              prob - (static_cast<int>(c) == data.labels[r] ? 1.0 : 0.0);
          grad_b[c] += err;
          for (std::size_t i = 0; i < p; ++i)
            grad_w[c][i] += err * z[r][i];
        }
      }

      const double inv_batch = 1.0 / static_cast<double>(end - start);
      for (std::size_t c = 0; c < k; ++c) {
        biases_[c] -= lr * grad_b[c] * inv_batch;
        for (std::size_t i = 0; i < p; ++i)
          weights_[c][i] -= lr * (grad_w[c][i] * inv_batch +
                                  config_.l2 * weights_[c][i]);
      }
    }
  }
}

std::vector<double> LogisticRegression::predict_proba(
    std::span<const double> x) const {
  AF_EXPECT(!weights_.empty(), "predict requires a fitted model");
  AF_EXPECT(x.size() == feature_mean_.size(), "input arity mismatch");
  auto l = logits(standardize(x));
  const double m = *std::max_element(l.begin(), l.end());
  double denom = 0.0;
  for (double& v : l) {
    v = std::exp(v - m);
    denom += v;
  }
  for (double& v : l) v /= denom;
  return l;
}

int LogisticRegression::predict(std::span<const double> x) const {
  const auto p = predict_proba(x);
  return static_cast<int>(std::max_element(p.begin(), p.end()) - p.begin());
}

}  // namespace airfinger::ml
