// Random forest: bagged CART trees with per-node feature subsampling and
// impurity-based feature importances (the importance feedback the paper uses
// to select its 25 features, Sec. IV-C-1).
#pragma once

#include <iosfwd>

#include "ml/decision_tree.hpp"

namespace airfinger::ml {

/// Forest hyper-parameters.
struct RandomForestConfig {
  std::size_t num_trees = 50;
  std::size_t max_depth = 14;
  std::size_t min_samples_leaf = 2;
  std::size_t min_samples_split = 4;
  /// Features per split; 0 = floor(sqrt(feature_count)).
  std::size_t max_features = 0;
  std::uint64_t seed = 17;
};

/// A trained random forest (majority vote over tree distributions).
class RandomForest final : public Classifier {
 public:
  explicit RandomForest(RandomForestConfig config = {});

  void fit(const SampleSet& data) override;
  int predict(std::span<const double> x) const override;
  std::string name() const override { return "RF"; }

  /// Mean class-probability across trees.
  std::vector<double> predict_proba(std::span<const double> x) const;

  /// predict_proba() writing into caller storage; out.size() must equal
  /// num_classes(). Accumulates leaf-distribution views tree by tree, so no
  /// heap allocation happens.
  void predict_proba_into(std::span<const double> x,
                          std::span<double> out) const;

  /// Mean impurity-decrease importance per feature (sums to ~1).
  const std::vector<double>& feature_importances() const {
    return importances_;
  }

  std::size_t tree_count() const { return trees_.size(); }
  int num_classes() const { return num_classes_; }
  const RandomForestConfig& config() const { return config_; }

  /// The fitted trees (empty before fit()/load()). CompiledForest flattens
  /// these into its SoA node arrays.
  const std::vector<DecisionTree>& trees() const { return trees_; }

  /// Serializes the fitted forest (text format, exact round-trip).
  void save(std::ostream& os) const;

  /// Reconstructs a forest written by save().
  static RandomForest load(std::istream& is);

 private:
  RandomForestConfig config_;
  std::vector<DecisionTree> trees_;
  std::vector<double> importances_;
  int num_classes_ = 0;
};

/// Returns feature indices sorted by descending forest importance, keeping
/// the top `k` (the paper keeps 25). Requires a fitted forest.
std::vector<std::size_t> top_k_features(const RandomForest& forest,
                                        std::size_t k);

}  // namespace airfinger::ml
