#include "ml/dtw.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "dsp/filters.hpp"

namespace airfinger::ml {

double dtw_distance(std::span<const double> a, std::span<const double> b,
                    std::size_t band) {
  AF_EXPECT(!a.empty() && !b.empty(), "dtw_distance requires non-empty input");
  const std::size_t n = a.size(), m = b.size();
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // Two-row dynamic program over the banded alignment matrix.
  std::vector<double> prev(m + 1, kInf), curr(m + 1, kInf);
  prev[0] = 0.0;
  for (std::size_t i = 1; i <= n; ++i) {
    std::fill(curr.begin(), curr.end(), kInf);
    // Band around the diagonal, rescaled for unequal lengths.
    const double centre = static_cast<double>(i) * static_cast<double>(m) /
                          static_cast<double>(n);
    const std::size_t lo = centre > static_cast<double>(band) + 1.0
                               ? static_cast<std::size_t>(centre - band)
                               : 1;
    const std::size_t hi =
        std::min(m, static_cast<std::size_t>(centre + band) + 1);
    for (std::size_t j = lo; j <= hi; ++j) {
      const double d = a[i - 1] - b[j - 1];
      const double best =
          std::min({prev[j], curr[j - 1], prev[j - 1]});
      if (best < kInf) curr[j] = d * d + best;
    }
    std::swap(prev, curr);
  }
  return std::sqrt(prev[m]);
}

DtwClassifier::DtwClassifier(DtwClassifierConfig config) : config_(config) {
  AF_EXPECT(config.resample_length >= 8,
            "DTW template length must be >= 8");
  AF_EXPECT(config.band >= 1, "DTW band must be >= 1");
}

std::vector<double> DtwClassifier::canonicalize(
    std::span<const double> series) const {
  // Same canonical form as the feature bank: log-compressed, fixed length,
  // z-normalized — so DTW compares shapes, not amplitudes.
  std::vector<double> logv(series.size());
  for (std::size_t i = 0; i < series.size(); ++i)
    logv[i] = std::log1p(std::max(series[i], 0.0));
  return common::znormalize(
      dsp::resample_linear(logv, config_.resample_length));
}

void DtwClassifier::fit(const std::vector<std::vector<double>>& series,
                        const std::vector<int>& labels) {
  AF_EXPECT(series.size() == labels.size(),
            "series/label count mismatch");
  AF_EXPECT(!series.empty(), "fit requires at least one series");

  templates_.clear();
  template_labels_.clear();
  std::map<int, std::size_t> per_class;
  for (std::size_t i = 0; i < series.size(); ++i) {
    AF_EXPECT(labels[i] >= 0, "labels must be non-negative");
    if (series[i].size() < 4) continue;
    auto& count = per_class[labels[i]];
    if (config_.max_templates_per_class != 0 &&
        count >= config_.max_templates_per_class)
      continue;
    ++count;
    templates_.push_back(canonicalize(series[i]));
    template_labels_.push_back(labels[i]);
  }
  AF_EXPECT(!templates_.empty(), "no usable training series");
}

int DtwClassifier::predict(std::span<const double> series) const {
  AF_EXPECT(!templates_.empty(), "predict requires a fitted classifier");
  const std::vector<double> query = canonicalize(series);
  double best = std::numeric_limits<double>::infinity();
  int label = template_labels_.front();
  for (std::size_t t = 0; t < templates_.size(); ++t) {
    const double d = dtw_distance(query, templates_[t], config_.band);
    if (d < best) {
      best = d;
      label = template_labels_[t];
    }
  }
  return label;
}

}  // namespace airfinger::ml
