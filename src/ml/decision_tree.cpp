#include "ml/decision_tree.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace airfinger::ml {

double gini_impurity(std::span<const double> class_counts, double total) {
  if (total <= 0.0) return 0.0;
  double sum_sq = 0.0;
  for (double c : class_counts) sum_sq += (c / total) * (c / total);
  return 1.0 - sum_sq;
}

DecisionTree::DecisionTree(DecisionTreeConfig config) : config_(config) {
  AF_EXPECT(config.max_depth >= 1, "max_depth must be >= 1");
  AF_EXPECT(config.min_samples_split >= 2, "min_samples_split must be >= 2");
  AF_EXPECT(config.min_samples_leaf >= 1, "min_samples_leaf must be >= 1");
}

void DecisionTree::fit(const SampleSet& data) {
  data.validate();
  AF_EXPECT(data.size() >= 1, "fit requires at least one sample");
  num_classes_ = data.num_classes();
  AF_EXPECT(num_classes_ >= 1, "fit requires at least one class");
  nodes_.clear();
  importances_.assign(data.feature_count(), 0.0);

  std::vector<std::size_t> rows(data.size());
  for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  common::Rng rng(config_.seed);
  build(data, rows, 0, rng);

  // Normalize importances to sum to 1 for cross-model comparability.
  double total = 0.0;
  for (double v : importances_) total += v;
  if (total > 0.0)
    for (double& v : importances_) v /= total;
}

std::int32_t DecisionTree::make_leaf(const SampleSet& data,
                                     std::span<const std::size_t> rows) {
  Node leaf;
  leaf.distribution.assign(static_cast<std::size_t>(num_classes_), 0.0);
  for (std::size_t r : rows)
    leaf.distribution[static_cast<std::size_t>(data.labels[r])] += 1.0;
  const double total = static_cast<double>(rows.size());
  if (total > 0.0)
    for (double& v : leaf.distribution) v /= total;
  nodes_.push_back(std::move(leaf));
  return static_cast<std::int32_t>(nodes_.size() - 1);
}

std::optional<DecisionTree::SplitCandidate> DecisionTree::best_split(
    const SampleSet& data, std::span<const std::size_t> rows,
    common::Rng& rng) const {
  const std::size_t n_features = data.feature_count();
  if (n_features == 0 || rows.size() < config_.min_samples_split)
    return std::nullopt;

  // Candidate feature set: all, or a random subset of max_features.
  std::vector<std::size_t> candidates;
  if (config_.max_features == 0 || config_.max_features >= n_features) {
    candidates.resize(n_features);
    for (std::size_t i = 0; i < n_features; ++i) candidates[i] = i;
  } else {
    candidates = rng.permutation(n_features);
    candidates.resize(config_.max_features);
  }

  const auto k = static_cast<std::size_t>(num_classes_);
  std::vector<double> total_counts(k, 0.0);
  for (std::size_t r : rows)
    total_counts[static_cast<std::size_t>(data.labels[r])] += 1.0;
  const double n = static_cast<double>(rows.size());
  const double parent_impurity = gini_impurity(total_counts, n);
  if (parent_impurity <= 0.0) return std::nullopt;  // pure node

  std::optional<SplitCandidate> best;
  std::vector<std::pair<double, int>> values;  // (feature value, label)
  values.reserve(rows.size());

  for (std::size_t f : candidates) {
    values.clear();
    for (std::size_t r : rows)
      values.emplace_back(data.features[r][f], data.labels[r]);
    std::sort(values.begin(), values.end());
    if (values.front().first == values.back().first) continue;  // constant

    std::vector<double> left_counts(k, 0.0);
    std::vector<double> right_counts = total_counts;
    for (std::size_t i = 0; i + 1 < values.size(); ++i) {
      const auto label = static_cast<std::size_t>(values[i].second);
      left_counts[label] += 1.0;
      right_counts[label] -= 1.0;
      if (values[i].first == values[i + 1].first) continue;  // same value
      const double n_left = static_cast<double>(i + 1);
      const double n_right = n - n_left;
      if (n_left < static_cast<double>(config_.min_samples_leaf) ||
          n_right < static_cast<double>(config_.min_samples_leaf))
        continue;
      const double child_impurity =
          (n_left / n) * gini_impurity(left_counts, n_left) +
          (n_right / n) * gini_impurity(right_counts, n_right);
      const double decrease = parent_impurity - child_impurity;
      if (!best || decrease > best->impurity_decrease) {
        best = SplitCandidate{
            f, 0.5 * (values[i].first + values[i + 1].first), decrease};
      }
    }
  }
  if (best && best->impurity_decrease <= 1e-12) return std::nullopt;
  return best;
}

std::int32_t DecisionTree::build(const SampleSet& data,
                                 std::vector<std::size_t>& rows,
                                 std::size_t depth, common::Rng& rng) {
  if (depth >= config_.max_depth || rows.size() < config_.min_samples_split)
    return make_leaf(data, rows);

  const auto split = best_split(data, rows, rng);
  if (!split) return make_leaf(data, rows);

  std::vector<std::size_t> left_rows, right_rows;
  for (std::size_t r : rows) {
    (data.features[r][split->feature] < split->threshold ? left_rows
                                                         : right_rows)
        .push_back(r);
  }
  if (left_rows.empty() || right_rows.empty())
    return make_leaf(data, rows);

  importances_[split->feature] +=
      split->impurity_decrease * static_cast<double>(rows.size());

  // Reserve this node's slot before recursing (children indices come later).
  nodes_.emplace_back();
  const auto index = static_cast<std::int32_t>(nodes_.size() - 1);
  rows.clear();
  rows.shrink_to_fit();

  const std::int32_t left = build(data, left_rows, depth + 1, rng);
  const std::int32_t right = build(data, right_rows, depth + 1, rng);
  Node& node = nodes_[static_cast<std::size_t>(index)];
  node.feature = static_cast<int>(split->feature);
  node.threshold = split->threshold;
  node.left = left;
  node.right = right;
  return index;
}

std::span<const double> DecisionTree::leaf_distribution(
    std::span<const double> x) const {
  AF_EXPECT(!nodes_.empty(), "predict requires a fitted tree");
  std::size_t idx = 0;
  for (;;) {
    const Node& node = nodes_[idx];
    if (node.is_leaf()) return node.distribution;
    AF_ASSERT(static_cast<std::size_t>(node.feature) < x.size(),
              "feature index exceeds input arity");
    idx = static_cast<std::size_t>(
        x[static_cast<std::size_t>(node.feature)] < node.threshold
            ? node.left
            : node.right);
  }
}

std::vector<double> DecisionTree::predict_proba(
    std::span<const double> x) const {
  const auto dist = leaf_distribution(x);
  return {dist.begin(), dist.end()};
}

void DecisionTree::predict_proba_into(std::span<const double> x,
                                      std::span<double> out) const {
  const auto dist = leaf_distribution(x);
  AF_EXPECT(out.size() == dist.size(),
            "predict_proba output size must match the class count");
  std::copy(dist.begin(), dist.end(), out.begin());
}

int DecisionTree::predict(std::span<const double> x) const {
  const auto proba = leaf_distribution(x);
  return static_cast<int>(
      std::max_element(proba.begin(), proba.end()) - proba.begin());
}

}  // namespace airfinger::ml
