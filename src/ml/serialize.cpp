#include "ml/serialize.hpp"

#include "ml/logistic.hpp"
#include "ml/naive_bayes.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "common/error.hpp"

namespace airfinger::ml {

namespace detail {

void write_double(std::ostream& os, double v) {
  // Hex-float representation: exact round-trip, locale-independent.
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%a", v);
  os << buffer;
}

double read_double(std::istream& is) {
  std::string token;
  is >> token;
  AF_EXPECT(!token.empty(), "serialized model truncated (double expected)");
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  AF_EXPECT(end != token.c_str(), "malformed double in serialized model");
  return v;
}

void expect_tag(std::istream& is, const char* expected) {
  std::string tag;
  is >> tag;
  AF_EXPECT(tag == expected, std::string("serialized model: expected tag '") +
                                 expected + "', found '" + tag + "'");
}

namespace {
/// Plausibility ceiling for any serialized element count. Real models are
/// orders of magnitude below this; a corrupted count above it must throw
/// instead of driving a multi-gigabyte resize (the legacy two-file format
/// carries no integrity footer, so loaders defend themselves).
constexpr std::size_t kMaxSerializedCount = std::size_t{1} << 24;

std::size_t read_capped_count(std::istream& is, const char* what) {
  std::size_t n = 0;
  is >> n;
  AF_EXPECT(is.good() || (is.eof() && !is.fail()),
            std::string("serialized model: malformed ") + what + " count");
  AF_EXPECT(n <= kMaxSerializedCount,
            std::string("serialized model: implausible ") + what +
                " count (corrupt input?)");
  return n;
}
}  // namespace

}  // namespace detail

void save_tree(std::ostream& os, const DecisionTree& tree) {
  tree.save(os);
}

DecisionTree load_tree(std::istream& is) { return DecisionTree::load(is); }

void save_forest(std::ostream& os, const RandomForest& forest) {
  forest.save(os);
}

RandomForest load_forest(std::istream& is) {
  return RandomForest::load(is);
}

// ---------------------------------------------------------------- tree

void DecisionTree::save(std::ostream& os) const {
  AF_EXPECT(!nodes_.empty(), "cannot save an unfitted tree");
  os << "af_tree 1\n";
  os << "classes " << num_classes_ << "\n";
  os << "importances " << importances_.size();
  for (double v : importances_) {
    os << ' ';
    detail::write_double(os, v);
  }
  os << "\n";
  os << "nodes " << nodes_.size() << "\n";
  for (const auto& node : nodes_) {
    os << node.feature << ' ';
    detail::write_double(os, node.threshold);
    os << ' ' << node.left << ' ' << node.right << ' '
       << node.distribution.size();
    for (double v : node.distribution) {
      os << ' ';
      detail::write_double(os, v);
    }
    os << "\n";
  }
}

DecisionTree DecisionTree::load(std::istream& is) {
  detail::expect_tag(is, "af_tree");
  int version = 0;
  is >> version;
  AF_EXPECT(version == 1, "unsupported tree format version");

  DecisionTree tree;
  detail::expect_tag(is, "classes");
  is >> tree.num_classes_;
  AF_EXPECT(tree.num_classes_ >= 1 && is.good(),
            "malformed class count in serialized tree");

  detail::expect_tag(is, "importances");
  const std::size_t importance_count =
      detail::read_capped_count(is, "tree importance");
  tree.importances_.resize(importance_count);
  for (auto& v : tree.importances_) v = detail::read_double(is);

  detail::expect_tag(is, "nodes");
  const std::size_t node_count = detail::read_capped_count(is, "tree node");
  AF_EXPECT(node_count >= 1, "serialized tree has no nodes");
  tree.nodes_.resize(node_count);
  for (auto& node : tree.nodes_) {
    is >> node.feature;
    node.threshold = detail::read_double(is);
    std::size_t dist = 0;
    is >> node.left >> node.right >> dist;
    AF_EXPECT(is.good(), "truncated node in serialized tree");
    AF_EXPECT(dist <= static_cast<std::size_t>(tree.num_classes_),
              "serialized tree node distribution wider than class count");
    node.distribution.resize(dist);
    for (auto& v : node.distribution) v = detail::read_double(is);
    const auto limit = static_cast<std::int32_t>(node_count);
    AF_EXPECT(node.left < limit && node.right < limit,
              "serialized tree has out-of-range child indices");
  }
  return tree;
}

// ---------------------------------------------------------------- forest

void RandomForest::save(std::ostream& os) const {
  AF_EXPECT(!trees_.empty(), "cannot save an unfitted forest");
  os << "af_forest 1\n";
  os << "classes " << num_classes_ << "\n";
  os << "importances " << importances_.size();
  for (double v : importances_) {
    os << ' ';
    detail::write_double(os, v);
  }
  os << "\n";
  os << "trees " << trees_.size() << "\n";
  for (const auto& tree : trees_) tree.save(os);
}

RandomForest RandomForest::load(std::istream& is) {
  detail::expect_tag(is, "af_forest");
  int version = 0;
  is >> version;
  AF_EXPECT(version == 1, "unsupported forest format version");

  RandomForest forest;
  detail::expect_tag(is, "classes");
  is >> forest.num_classes_;
  AF_EXPECT(forest.num_classes_ >= 1 && is.good(),
            "malformed class count in serialized forest");

  detail::expect_tag(is, "importances");
  const std::size_t importance_count =
      detail::read_capped_count(is, "forest importance");
  forest.importances_.resize(importance_count);
  for (auto& v : forest.importances_) v = detail::read_double(is);

  detail::expect_tag(is, "trees");
  const std::size_t tree_count = detail::read_capped_count(is, "forest tree");
  AF_EXPECT(tree_count >= 1, "serialized forest has no trees");
  forest.trees_.reserve(tree_count);
  for (std::size_t t = 0; t < tree_count; ++t)
    forest.trees_.push_back(DecisionTree::load(is));
  forest.config_.num_trees = tree_count;
  return forest;
}

// ---------------------------------------------------------------- LR

namespace detail {
namespace {
void write_vector(std::ostream& os, const std::vector<double>& v) {
  os << v.size();
  for (double x : v) {
    os << ' ';
    write_double(os, x);
  }
  os << "\n";
}

std::vector<double> read_vector(std::istream& is) {
  const std::size_t n = read_capped_count(is, "vector element");
  std::vector<double> v(n);
  for (auto& x : v) x = read_double(is);
  return v;
}
}  // namespace
}  // namespace detail

void LogisticRegression::save(std::ostream& os) const {
  AF_EXPECT(!weights_.empty(), "cannot save an unfitted model");
  os << "af_logistic 1\n";
  os << "classes " << num_classes_ << "\n";
  os << "mean ";
  detail::write_vector(os, feature_mean_);
  os << "scale ";
  detail::write_vector(os, feature_scale_);
  os << "biases ";
  detail::write_vector(os, biases_);
  os << "weights " << weights_.size() << "\n";
  for (const auto& row : weights_) detail::write_vector(os, row);
}

LogisticRegression LogisticRegression::load(std::istream& is) {
  detail::expect_tag(is, "af_logistic");
  int version = 0;
  is >> version;
  AF_EXPECT(version == 1, "unsupported logistic format version");
  LogisticRegression model;
  detail::expect_tag(is, "classes");
  is >> model.num_classes_;
  AF_EXPECT(model.num_classes_ >= 2 && is.good(),
            "malformed class count in serialized model");
  detail::expect_tag(is, "mean");
  model.feature_mean_ = detail::read_vector(is);
  detail::expect_tag(is, "scale");
  model.feature_scale_ = detail::read_vector(is);
  detail::expect_tag(is, "biases");
  model.biases_ = detail::read_vector(is);
  detail::expect_tag(is, "weights");
  std::size_t rows = 0;
  is >> rows;
  AF_EXPECT(rows == model.biases_.size(),
            "serialized logistic weight/bias arity mismatch");
  model.weights_.clear();
  for (std::size_t r = 0; r < rows; ++r)
    model.weights_.push_back(detail::read_vector(is));
  return model;
}

// ---------------------------------------------------------------- BNB

void BernoulliNaiveBayes::save(std::ostream& os) const {
  AF_EXPECT(!log_prior_.empty(), "cannot save an unfitted model");
  os << "af_bnb 1\n";
  os << "thresholds ";
  detail::write_vector(os, thresholds_);
  os << "prior ";
  detail::write_vector(os, log_prior_);
  os << "p " << log_p_.size() << "\n";
  for (const auto& row : log_p_) detail::write_vector(os, row);
  os << "q " << log_q_.size() << "\n";
  for (const auto& row : log_q_) detail::write_vector(os, row);
}

BernoulliNaiveBayes BernoulliNaiveBayes::load(std::istream& is) {
  detail::expect_tag(is, "af_bnb");
  int version = 0;
  is >> version;
  AF_EXPECT(version == 1, "unsupported BNB format version");
  BernoulliNaiveBayes model;
  detail::expect_tag(is, "thresholds");
  model.thresholds_ = detail::read_vector(is);
  detail::expect_tag(is, "prior");
  model.log_prior_ = detail::read_vector(is);
  detail::expect_tag(is, "p");
  std::size_t rows = 0;
  is >> rows;
  AF_EXPECT(rows == model.log_prior_.size(),
            "serialized BNB prior/emission arity mismatch");
  model.log_p_.clear();
  for (std::size_t r = 0; r < rows; ++r)
    model.log_p_.push_back(detail::read_vector(is));
  detail::expect_tag(is, "q");
  is >> rows;
  AF_EXPECT(rows == model.log_prior_.size(),
            "serialized BNB q arity mismatch");
  model.log_q_.clear();
  for (std::size_t r = 0; r < rows; ++r)
    model.log_q_.push_back(detail::read_vector(is));
  return model;
}

}  // namespace airfinger::ml
