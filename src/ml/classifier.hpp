// Abstract classifier interface shared by RF / LR / DT / BNB, enabling the
// like-for-like comparison of Fig. 9.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ml/data.hpp"

namespace airfinger::ml {

/// Interface for multiclass classifiers (C.121: interface = pure virtuals).
class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Trains on the given data. Requires non-empty data with >= 2 classes.
  virtual void fit(const SampleSet& data) = 0;

  /// Predicts the class of one observation. Requires a prior fit().
  virtual int predict(std::span<const double> x) const = 0;

  /// Short display name ("RF", "LR", ...).
  virtual std::string name() const = 0;

  /// Batch prediction convenience.
  std::vector<int> predict_all(const SampleSet& data) const;
};

}  // namespace airfinger::ml
