#include "ml/metrics.hpp"

#include <sstream>

#include "common/error.hpp"
#include "common/table.hpp"

namespace airfinger::ml {

ConfusionMatrix::ConfusionMatrix(int num_classes,
                                 std::vector<std::string> class_names)
    : num_classes_(num_classes), names_(std::move(class_names)) {
  AF_EXPECT(num_classes >= 1, "confusion matrix requires >= 1 class");
  AF_EXPECT(names_.empty() ||
                names_.size() == static_cast<std::size_t>(num_classes),
            "class name count must match num_classes");
  counts_.assign(static_cast<std::size_t>(num_classes) *
                     static_cast<std::size_t>(num_classes),
                 0);
}

void ConfusionMatrix::add(int truth, int predicted) {
  AF_EXPECT(truth >= 0 && truth < num_classes_, "truth label out of range");
  AF_EXPECT(predicted >= 0 && predicted < num_classes_,
            "predicted label out of range");
  ++counts_[static_cast<std::size_t>(truth) *
                static_cast<std::size_t>(num_classes_) +
            static_cast<std::size_t>(predicted)];
  ++total_;
}

void ConfusionMatrix::merge(const ConfusionMatrix& other) {
  AF_EXPECT(other.num_classes_ == num_classes_,
            "cannot merge matrices of different arity");
  for (std::size_t i = 0; i < counts_.size(); ++i)
    counts_[i] += other.counts_[i];
  total_ += other.total_;
}

std::size_t ConfusionMatrix::count(int truth, int predicted) const {
  AF_EXPECT(truth >= 0 && truth < num_classes_ && predicted >= 0 &&
                predicted < num_classes_,
            "confusion matrix index out of range");
  return counts_[static_cast<std::size_t>(truth) *
                     static_cast<std::size_t>(num_classes_) +
                 static_cast<std::size_t>(predicted)];
}

double ConfusionMatrix::rate(int truth, int predicted) const {
  std::size_t row_total = 0;
  for (int c = 0; c < num_classes_; ++c)
    row_total += count(truth, c);
  return row_total > 0 ? static_cast<double>(count(truth, predicted)) /
                             static_cast<double>(row_total)
                       : 0.0;
}

double ConfusionMatrix::accuracy() const {
  if (total_ == 0) return 0.0;
  std::size_t correct = 0;
  for (int c = 0; c < num_classes_; ++c) correct += count(c, c);
  return static_cast<double>(correct) / static_cast<double>(total_);
}

double ConfusionMatrix::recall(int label) const {
  std::size_t actual = 0;
  for (int c = 0; c < num_classes_; ++c) actual += count(label, c);
  return actual > 0 ? static_cast<double>(count(label, label)) /
                          static_cast<double>(actual)
                    : 0.0;
}

double ConfusionMatrix::precision(int label) const {
  std::size_t predicted = 0;
  for (int c = 0; c < num_classes_; ++c) predicted += count(c, label);
  return predicted > 0 ? static_cast<double>(count(label, label)) /
                             static_cast<double>(predicted)
                       : 0.0;
}

namespace {
template <typename Fn>
double macro_over_present(const ConfusionMatrix& cm, int k, Fn fn) {
  double sum = 0.0;
  int present = 0;
  for (int c = 0; c < k; ++c) {
    std::size_t actual = 0;
    for (int j = 0; j < k; ++j) actual += cm.count(c, j);
    if (actual == 0) continue;
    sum += fn(c);
    ++present;
  }
  return present > 0 ? sum / present : 0.0;
}
}  // namespace

double ConfusionMatrix::macro_recall() const {
  return macro_over_present(*this, num_classes_,
                            [this](int c) { return recall(c); });
}

double ConfusionMatrix::macro_precision() const {
  return macro_over_present(*this, num_classes_,
                            [this](int c) { return precision(c); });
}

double ConfusionMatrix::class_accuracy(int label) const {
  if (total_ == 0) return 0.0;
  std::size_t errors = 0;
  for (int c = 0; c < num_classes_; ++c) {
    if (c == label) continue;
    errors += count(label, c);  // false negatives
    errors += count(c, label);  // false positives
  }
  return static_cast<double>(total_ - errors) /
         static_cast<double>(total_);
}

std::string ConfusionMatrix::to_string() const {
  auto label = [this](int c) {
    return names_.empty() ? "class " + std::to_string(c)
                          : names_[static_cast<std::size_t>(c)];
  };
  std::vector<std::string> headers{"truth \\ predicted"};
  for (int c = 0; c < num_classes_; ++c) headers.push_back(label(c));
  common::Table table(std::move(headers));
  for (int r = 0; r < num_classes_; ++r) {
    std::vector<std::string> row{label(r)};
    for (int c = 0; c < num_classes_; ++c)
      row.push_back(common::Table::pct(rate(r, c), 1));
    table.add_row(std::move(row));
  }
  return table.to_string();
}

ConfusionMatrix evaluate(std::span<const int> truth,
                         std::span<const int> predicted, int num_classes,
                         std::vector<std::string> class_names) {
  AF_EXPECT(truth.size() == predicted.size(),
            "truth/prediction size mismatch");
  ConfusionMatrix cm(num_classes, std::move(class_names));
  for (std::size_t i = 0; i < truth.size(); ++i)
    cm.add(truth[i], predicted[i]);
  return cm;
}

}  // namespace airfinger::ml
