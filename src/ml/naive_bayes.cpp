#include "ml/naive_bayes.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace airfinger::ml {

BernoulliNaiveBayes::BernoulliNaiveBayes(BernoulliNaiveBayesConfig config)
    : config_(config) {
  AF_EXPECT(config.alpha > 0.0, "Laplace alpha must be positive");
}

void BernoulliNaiveBayes::fit(const SampleSet& data) {
  data.validate();
  AF_EXPECT(data.size() >= 2, "fit requires at least two samples");
  const int k = data.num_classes();
  AF_EXPECT(k >= 2, "BNB requires at least two classes");
  const std::size_t p = data.feature_count();

  // Per-feature binarization threshold: training median.
  thresholds_.assign(p, 0.0);
  std::vector<double> column(data.size());
  for (std::size_t f = 0; f < p; ++f) {
    for (std::size_t r = 0; r < data.size(); ++r)
      column[r] = data.features[r][f];
    thresholds_[f] = common::median(column);
  }

  const auto kc = static_cast<std::size_t>(k);
  std::vector<double> class_count(kc, 0.0);
  std::vector<std::vector<double>> ones(kc, std::vector<double>(p, 0.0));
  for (std::size_t r = 0; r < data.size(); ++r) {
    const auto c = static_cast<std::size_t>(data.labels[r]);
    class_count[c] += 1.0;
    for (std::size_t f = 0; f < p; ++f)
      if (data.features[r][f] > thresholds_[f]) ones[c][f] += 1.0;
  }

  log_prior_.assign(kc, 0.0);
  log_p_.assign(kc, std::vector<double>(p, 0.0));
  log_q_.assign(kc, std::vector<double>(p, 0.0));
  const double n = static_cast<double>(data.size());
  for (std::size_t c = 0; c < kc; ++c) {
    log_prior_[c] = std::log((class_count[c] + config_.alpha) /
                             (n + config_.alpha * static_cast<double>(kc)));
    for (std::size_t f = 0; f < p; ++f) {
      const double prob = (ones[c][f] + config_.alpha) /
                          (class_count[c] + 2.0 * config_.alpha);
      log_p_[c][f] = std::log(prob);
      log_q_[c][f] = std::log1p(-prob);
    }
  }
}

std::vector<double> BernoulliNaiveBayes::log_posterior(
    std::span<const double> x) const {
  AF_EXPECT(!log_prior_.empty(), "predict requires a fitted model");
  AF_EXPECT(x.size() == thresholds_.size(), "input arity mismatch");
  std::vector<double> out(log_prior_);
  for (std::size_t c = 0; c < out.size(); ++c)
    for (std::size_t f = 0; f < x.size(); ++f)
      out[c] += (x[f] > thresholds_[f]) ? log_p_[c][f] : log_q_[c][f];
  return out;
}

int BernoulliNaiveBayes::predict(std::span<const double> x) const {
  const auto lp = log_posterior(x);
  return static_cast<int>(
      std::max_element(lp.begin(), lp.end()) - lp.begin());
}

}  // namespace airfinger::ml
