#include "ml/random_forest.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/parallel.hpp"

namespace airfinger::ml {

RandomForest::RandomForest(RandomForestConfig config) : config_(config) {
  AF_EXPECT(config.num_trees >= 1, "forest requires at least one tree");
}

void RandomForest::fit(const SampleSet& data) {
  data.validate();
  AF_EXPECT(data.size() >= 2, "fit requires at least two samples");
  num_classes_ = data.num_classes();
  importances_.assign(data.feature_count(), 0.0);

  const std::size_t mtry =
      config_.max_features != 0
          ? config_.max_features
          : static_cast<std::size_t>(
                std::max(1.0, std::floor(std::sqrt(static_cast<double>(
                                  data.feature_count())))));

  // Tree t draws its bootstrap and node-level feature subsampling from
  // stream t of the forest seed, so fitting is bit-identical at any thread
  // count (and tree t is the same whether or not trees 0..t-1 exist).
  const common::Rng root(config_.seed);
  std::vector<DecisionTree> fitted(config_.num_trees);
  common::parallel_for(0, config_.num_trees, [&](std::size_t t) {
    common::Rng tree_rng = root.split(t);
    // Bootstrap sample (with replacement, same size as the training set).
    std::vector<std::size_t> bootstrap(data.size());
    for (auto& idx : bootstrap)
      idx = static_cast<std::size_t>(tree_rng.below(data.size()));
    SampleSet bag = data.subset(bootstrap);

    DecisionTreeConfig tree_config;
    tree_config.max_depth = config_.max_depth;
    tree_config.min_samples_leaf = config_.min_samples_leaf;
    tree_config.min_samples_split = config_.min_samples_split;
    tree_config.max_features = mtry;
    tree_config.seed = tree_rng();
    DecisionTree tree(tree_config);
    tree.fit(bag);
    fitted[t] = std::move(tree);
  });

  // Importances are reduced serially in tree order after the parallel fit:
  // floating-point addition is not associative, so the accumulation order
  // is part of the determinism contract.
  for (const auto& tree : fitted) {
    const auto& imp = tree.feature_importances();
    for (std::size_t f = 0; f < imp.size(); ++f) importances_[f] += imp[f];
  }
  trees_ = std::move(fitted);

  double total = 0.0;
  for (double v : importances_) total += v;
  if (total > 0.0)
    for (double& v : importances_) v /= total;
}

std::vector<double> RandomForest::predict_proba(
    std::span<const double> x) const {
  std::vector<double> acc(static_cast<std::size_t>(num_classes_), 0.0);
  predict_proba_into(x, acc);
  return acc;
}

void RandomForest::predict_proba_into(std::span<const double> x,
                                      std::span<double> out) const {
  AF_EXPECT(!trees_.empty(), "predict requires a fitted forest");
  AF_EXPECT(out.size() == static_cast<std::size_t>(num_classes_),
            "predict_proba output size must match the class count");
  for (double& v : out) v = 0.0;
  for (const auto& tree : trees_) {
    const auto p = tree.leaf_distribution(x);
    for (std::size_t c = 0; c < p.size() && c < out.size(); ++c)
      out[c] += p[c];
  }
  for (double& v : out) v /= static_cast<double>(trees_.size());
}

int RandomForest::predict(std::span<const double> x) const {
  const auto proba = predict_proba(x);
  return static_cast<int>(
      std::max_element(proba.begin(), proba.end()) - proba.begin());
}

std::vector<std::size_t> top_k_features(const RandomForest& forest,
                                        std::size_t k) {
  const auto& imp = forest.feature_importances();
  AF_EXPECT(!imp.empty(), "top_k_features requires a fitted forest");
  std::vector<std::size_t> order(imp.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&imp](std::size_t a, std::size_t b) {
                     return imp[a] > imp[b];
                   });
  order.resize(std::min(k, order.size()));
  return order;
}

}  // namespace airfinger::ml
