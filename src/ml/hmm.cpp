#include "ml/hmm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "dsp/filters.hpp"

namespace airfinger::ml {

DiscreteHmm::DiscreteHmm(std::size_t states, std::size_t symbols,
                         std::uint64_t seed) {
  AF_EXPECT(states >= 2, "HMM needs at least two states");
  AF_EXPECT(symbols >= 2, "HMM needs at least two symbols");
  common::Rng rng(seed);

  // Left-right topology: each state loops or advances.
  a_.assign(states, std::vector<double>(states, 0.0));
  for (std::size_t i = 0; i < states; ++i) {
    if (i + 1 < states) {
      const double advance = rng.uniform(0.35, 0.65);
      a_[i][i] = 1.0 - advance;
      a_[i][i + 1] = advance;
    } else {
      a_[i][i] = 1.0;
    }
  }
  // Near-uniform emissions with slight symmetry breaking.
  b_.assign(states, std::vector<double>(symbols, 0.0));
  for (auto& row : b_) {
    double total = 0.0;
    for (auto& v : row) {
      v = 1.0 + rng.uniform(0.0, 0.2);
      total += v;
    }
    for (auto& v : row) v /= total;
  }
  pi_.assign(states, 0.0);
  pi_[0] = 1.0;
}

namespace {

/// Scaled forward pass. Returns log P(seq) and fills alpha/scales when the
/// output pointers are given.
double forward(const std::vector<std::vector<double>>& a,
               const std::vector<std::vector<double>>& b,
               const std::vector<double>& pi,
               std::span<const std::size_t> seq,
               std::vector<std::vector<double>>* alpha_out,
               std::vector<double>* scale_out) {
  const std::size_t n = a.size();
  const std::size_t t_max = seq.size();
  std::vector<std::vector<double>> alpha(t_max, std::vector<double>(n));
  std::vector<double> scale(t_max, 0.0);

  for (std::size_t i = 0; i < n; ++i)
    alpha[0][i] = pi[i] * b[i][seq[0]];
  for (double v : alpha[0]) scale[0] += v;
  if (scale[0] <= 0.0) return -std::numeric_limits<double>::infinity();
  for (double& v : alpha[0]) v /= scale[0];

  for (std::size_t t = 1; t < t_max; ++t) {
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::size_t i = 0; i < n; ++i) s += alpha[t - 1][i] * a[i][j];
      alpha[t][j] = s * b[j][seq[t]];
    }
    for (double v : alpha[t]) scale[t] += v;
    if (scale[t] <= 0.0) return -std::numeric_limits<double>::infinity();
    for (double& v : alpha[t]) v /= scale[t];
  }

  double log_likelihood = 0.0;
  for (double s : scale) log_likelihood += std::log(s);
  if (alpha_out) *alpha_out = std::move(alpha);
  if (scale_out) *scale_out = std::move(scale);
  return log_likelihood;
}

}  // namespace

double DiscreteHmm::log_likelihood(
    std::span<const std::size_t> sequence) const {
  AF_EXPECT(!sequence.empty(), "log_likelihood requires a sequence");
  return forward(a_, b_, pi_, sequence, nullptr, nullptr);
}

void DiscreteHmm::train(
    const std::vector<std::vector<std::size_t>>& sequences,
    std::size_t iterations, double smoothing) {
  AF_EXPECT(!sequences.empty(), "HMM training requires sequences");
  const std::size_t n = a_.size();
  const std::size_t m = b_.front().size();

  for (std::size_t iter = 0; iter < iterations; ++iter) {
    std::vector<std::vector<double>> a_num(n, std::vector<double>(n, 0.0));
    std::vector<double> a_den(n, 0.0);
    std::vector<std::vector<double>> b_num(n, std::vector<double>(m, 0.0));
    std::vector<double> b_den(n, 0.0);

    for (const auto& seq : sequences) {
      if (seq.size() < 2) continue;
      std::vector<std::vector<double>> alpha;
      std::vector<double> scale;
      const double ll = forward(a_, b_, pi_, seq, &alpha, &scale);
      if (!std::isfinite(ll)) continue;

      // Scaled backward pass.
      const std::size_t t_max = seq.size();
      std::vector<std::vector<double>> beta(t_max,
                                            std::vector<double>(n, 1.0));
      for (std::size_t t = t_max - 1; t-- > 0;) {
        for (std::size_t i = 0; i < n; ++i) {
          double s = 0.0;
          for (std::size_t j = 0; j < n; ++j)
            s += a_[i][j] * b_[j][seq[t + 1]] * beta[t + 1][j];
          beta[t][i] = s / scale[t + 1];
        }
      }

      // Accumulate expected counts.
      for (std::size_t t = 0; t + 1 < t_max; ++t) {
        for (std::size_t i = 0; i < n; ++i) {
          const double gamma = alpha[t][i] * beta[t][i];
          a_den[i] += gamma;
          b_num[i][seq[t]] += gamma;
          b_den[i] += gamma;
          for (std::size_t j = 0; j < n; ++j)
            a_num[i][j] += alpha[t][i] * a_[i][j] * b_[j][seq[t + 1]] *
                           beta[t + 1][j] / scale[t + 1];
        }
      }
      for (std::size_t i = 0; i < n; ++i) {
        const double gamma = alpha[t_max - 1][i] * beta[t_max - 1][i];
        b_num[i][seq[t_max - 1]] += gamma;
        b_den[i] += gamma;
      }
    }

    // Re-estimate with the left-right mask and a probability floor.
    for (std::size_t i = 0; i < n; ++i) {
      if (a_den[i] > 0.0) {
        double total = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
          const bool allowed = (j == i) || (j == i + 1);
          a_[i][j] = allowed ? a_num[i][j] / a_den[i] + smoothing : 0.0;
          total += a_[i][j];
        }
        for (std::size_t j = 0; j < n; ++j) a_[i][j] /= total;
      }
      if (b_den[i] > 0.0) {
        double total = 0.0;
        for (std::size_t k = 0; k < m; ++k) {
          b_[i][k] = b_num[i][k] / b_den[i] + smoothing;
          total += b_[i][k];
        }
        for (std::size_t k = 0; k < m; ++k) b_[i][k] /= total;
      }
    }
  }
}

HmmClassifier::HmmClassifier(HmmClassifierConfig config) : config_(config) {
  AF_EXPECT(config.resample_length >= 8, "HMM series length must be >= 8");
}

std::vector<std::size_t> HmmClassifier::quantize(
    std::span<const double> series) const {
  std::vector<double> logv(series.size());
  for (std::size_t i = 0; i < series.size(); ++i)
    logv[i] = std::log1p(std::max(series[i], 0.0));
  const auto canon =
      dsp::resample_linear(logv, config_.resample_length);
  std::vector<std::size_t> symbols(canon.size());
  for (std::size_t i = 0; i < canon.size(); ++i) {
    std::size_t s = 0;
    while (s < bin_edges_.size() && canon[i] > bin_edges_[s]) ++s;
    symbols[i] = s;
  }
  return symbols;
}

void HmmClassifier::fit(const std::vector<std::vector<double>>& series,
                        const std::vector<int>& labels) {
  AF_EXPECT(series.size() == labels.size(), "series/label count mismatch");
  AF_EXPECT(!series.empty(), "fit requires at least one series");

  // Global quantile bin edges over the canonicalized training values.
  std::vector<double> pool;
  for (const auto& s : series) {
    if (s.size() < 4) continue;
    std::vector<double> logv(s.size());
    for (std::size_t i = 0; i < s.size(); ++i)
      logv[i] = std::log1p(std::max(s[i], 0.0));
    const auto canon = dsp::resample_linear(logv, config_.resample_length);
    pool.insert(pool.end(), canon.begin(), canon.end());
  }
  AF_EXPECT(!pool.empty(), "no usable training series");
  bin_edges_.clear();
  for (std::size_t k = 1; k < config_.symbols; ++k)
    bin_edges_.push_back(common::quantile(
        pool, static_cast<double>(k) / static_cast<double>(config_.symbols)));

  int num_classes = 0;
  for (int l : labels) {
    AF_EXPECT(l >= 0, "labels must be non-negative");
    num_classes = std::max(num_classes, l + 1);
  }

  models_.clear();
  for (int c = 0; c < num_classes; ++c) {
    std::vector<std::vector<std::size_t>> class_sequences;
    for (std::size_t i = 0; i < series.size(); ++i) {
      if (labels[i] != c || series[i].size() < 4) continue;
      class_sequences.push_back(quantize(series[i]));
    }
    DiscreteHmm model(config_.states, config_.symbols,
                      0xD15EA5E + static_cast<std::uint64_t>(c));
    if (!class_sequences.empty())
      model.train(class_sequences, config_.baum_welch_iterations,
                  config_.smoothing);
    models_.push_back(std::move(model));
  }
}

int HmmClassifier::predict(std::span<const double> series) const {
  AF_EXPECT(!models_.empty(), "predict requires a fitted classifier");
  const auto symbols = quantize(series);
  double best = -std::numeric_limits<double>::infinity();
  int label = 0;
  for (std::size_t c = 0; c < models_.size(); ++c) {
    const double ll = models_[c].log_likelihood(symbols);
    if (ll > best) {
      best = ll;
      label = static_cast<int>(c);
    }
  }
  return label;
}

}  // namespace airfinger::ml
