// Bernoulli naive Bayes (the paper's "BNB" baseline, Fig. 9).
//
// Continuous features are binarized at the per-feature training median, then
// a standard Bernoulli NB with Laplace smoothing is applied.
#pragma once

#include <iosfwd>

#include "ml/classifier.hpp"

namespace airfinger::ml {

/// BNB hyper-parameters.
struct BernoulliNaiveBayesConfig {
  double alpha = 1.0;  ///< Laplace smoothing strength.
};

/// Trained Bernoulli NB classifier.
class BernoulliNaiveBayes final : public Classifier {
 public:
  explicit BernoulliNaiveBayes(BernoulliNaiveBayesConfig config = {});

  void fit(const SampleSet& data) override;
  int predict(std::span<const double> x) const override;
  std::string name() const override { return "BNB"; }

  /// Log-posterior (unnormalized) per class.
  std::vector<double> log_posterior(std::span<const double> x) const;

  /// Serializes the fitted model (text, exact round-trip).
  void save(std::ostream& os) const;

  /// Reconstructs a model written by save().
  static BernoulliNaiveBayes load(std::istream& is);

 private:
  BernoulliNaiveBayesConfig config_;
  std::vector<double> thresholds_;  ///< Per-feature binarization threshold.
  std::vector<double> log_prior_;
  // log_p_[c][f] = log P(x_f = 1 | c); log_q_ the complement.
  std::vector<std::vector<double>> log_p_;
  std::vector<std::vector<double>> log_q_;
};

}  // namespace airfinger::ml
