// Small 1-D convolutional network classifier.
//
// The third sequence baseline the paper rules out on cost grounds
// (Sec. IV-C-2). A compact two-convolution network trained from scratch
// (manual backpropagation, SGD) over canonicalized ΔRSS² series:
//   conv(1→C1, k) → ReLU → maxpool(2) → conv(C1→C2, k) → ReLU →
//   global average pool → dense(C2→classes) → softmax.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace airfinger::ml {

/// Network and training hyper-parameters.
struct CnnClassifierConfig {
  std::size_t resample_length = 64;  ///< Canonical input length.
  std::size_t conv1_filters = 8;
  std::size_t conv2_filters = 16;
  std::size_t kernel = 5;
  int epochs = 40;
  double learning_rate = 0.05;
  std::size_t batch_size = 16;
  std::uint64_t seed = 99;
};

/// Trained CNN sequence classifier.
class CnnClassifier {
 public:
  explicit CnnClassifier(CnnClassifierConfig config = {});

  /// Trains from scratch on (raw positive) series. Labels dense 0-based.
  void fit(const std::vector<std::vector<double>>& series,
           const std::vector<int>& labels);

  /// Predicts the label of one series. Requires a prior fit().
  int predict(std::span<const double> series) const;

  /// Softmax class probabilities for one series.
  std::vector<double> predict_proba(std::span<const double> series) const;

  int num_classes() const { return num_classes_; }

 private:
  struct Activations;  // forward-pass intermediates (defined in .cpp)

  std::vector<double> canonicalize(std::span<const double> series) const;
  void forward(const std::vector<double>& input, Activations& act) const;

  CnnClassifierConfig config_;
  int num_classes_ = 0;
  // conv1: [filter][tap]; conv2: [filter][in_channel][tap]; dense:
  // [class][channel]. Biases per filter/class.
  std::vector<std::vector<double>> conv1_w_;
  std::vector<double> conv1_b_;
  std::vector<std::vector<std::vector<double>>> conv2_w_;
  std::vector<double> conv2_b_;
  std::vector<std::vector<double>> dense_w_;
  std::vector<double> dense_b_;
};

}  // namespace airfinger::ml
