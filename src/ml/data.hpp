// Tabular training data and split utilities for the classifiers.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.hpp"

namespace airfinger::ml {

/// Feature matrix + integer labels (0-based, dense class ids).
struct SampleSet {
  std::vector<std::vector<double>> features;  ///< Row-major observations.
  std::vector<int> labels;                    ///< One label per row.
  /// Optional grouping key per row (user id, session id) for
  /// leave-one-group-out evaluation. Empty = no groups.
  std::vector<int> groups;

  std::size_t size() const { return features.size(); }
  std::size_t feature_count() const {
    return features.empty() ? 0 : features.front().size();
  }

  /// Number of distinct labels (max label + 1). 0 when empty.
  int num_classes() const;

  /// Subset by row indices.
  SampleSet subset(std::span<const std::size_t> indices) const;

  /// Keeps only the listed feature columns (in the given order).
  SampleSet project(std::span<const std::size_t> columns) const;

  /// Validates internal consistency (equal row lengths, labels >= 0).
  void validate() const;
};

/// Train/test split keeping per-class proportions (stratified).
struct Split {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
};

/// Stratified split with `test_fraction` of each class in the test set.
Split stratified_split(const SampleSet& data, double test_fraction,
                       common::Rng& rng);

/// K stratified folds; fold f is the test set of combination f.
std::vector<Split> stratified_kfold(const SampleSet& data, int folds,
                                    common::Rng& rng);

/// One split per distinct group value: that group is the test set.
std::vector<Split> leave_one_group_out(const SampleSet& data);

}  // namespace airfinger::ml
