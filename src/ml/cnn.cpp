#include "ml/cnn.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "dsp/filters.hpp"

namespace airfinger::ml {

struct CnnClassifier::Activations {
  std::vector<double> input;                      // L0
  std::vector<std::vector<double>> conv1;         // [C1][L1], post-ReLU
  std::vector<std::vector<double>> pool;          // [C1][L2]
  std::vector<std::vector<std::size_t>> pool_arg; // winner index into conv1
  std::vector<std::vector<double>> conv2;         // [C2][L3], post-ReLU
  std::vector<double> gap;                        // [C2]
  std::vector<double> probs;                      // [classes]
};

CnnClassifier::CnnClassifier(CnnClassifierConfig config) : config_(config) {
  AF_EXPECT(config.resample_length >= 16, "CNN input length must be >= 16");
  AF_EXPECT(config.kernel >= 2 && config.kernel < config.resample_length / 2,
            "CNN kernel size out of range");
  AF_EXPECT(config.conv1_filters >= 1 && config.conv2_filters >= 1,
            "CNN needs at least one filter per layer");
  AF_EXPECT(config.epochs >= 1 && config.batch_size >= 1,
            "CNN training parameters out of range");
}

std::vector<double> CnnClassifier::canonicalize(
    std::span<const double> series) const {
  std::vector<double> logv(series.size());
  for (std::size_t i = 0; i < series.size(); ++i)
    logv[i] = std::log1p(std::max(series[i], 0.0));
  return common::znormalize(
      dsp::resample_linear(logv, config_.resample_length));
}

void CnnClassifier::forward(const std::vector<double>& input,
                            Activations& act) const {
  const std::size_t k = config_.kernel;
  const std::size_t l1 = input.size() - k + 1;
  const std::size_t l2 = l1 / 2;
  const std::size_t l3 = l2 - k + 1;
  const std::size_t c1 = config_.conv1_filters;
  const std::size_t c2 = config_.conv2_filters;

  act.input = input;
  act.conv1.assign(c1, std::vector<double>(l1, 0.0));
  act.pool.assign(c1, std::vector<double>(l2, 0.0));
  act.pool_arg.assign(c1, std::vector<std::size_t>(l2, 0));
  act.conv2.assign(c2, std::vector<double>(l3, 0.0));
  act.gap.assign(c2, 0.0);

  for (std::size_t f = 0; f < c1; ++f) {
    for (std::size_t t = 0; t < l1; ++t) {
      double s = conv1_b_[f];
      for (std::size_t j = 0; j < k; ++j)
        s += conv1_w_[f][j] * input[t + j];
      act.conv1[f][t] = std::max(s, 0.0);
    }
    for (std::size_t t = 0; t < l2; ++t) {
      const std::size_t a = 2 * t, b = 2 * t + 1;
      if (act.conv1[f][a] >= act.conv1[f][b]) {
        act.pool[f][t] = act.conv1[f][a];
        act.pool_arg[f][t] = a;
      } else {
        act.pool[f][t] = act.conv1[f][b];
        act.pool_arg[f][t] = b;
      }
    }
  }
  for (std::size_t g = 0; g < c2; ++g) {
    double mean = 0.0;
    for (std::size_t t = 0; t < l3; ++t) {
      double s = conv2_b_[g];
      for (std::size_t f = 0; f < c1; ++f)
        for (std::size_t j = 0; j < k; ++j)
          s += conv2_w_[g][f][j] * act.pool[f][t + j];
      act.conv2[g][t] = std::max(s, 0.0);
      mean += act.conv2[g][t];
    }
    act.gap[g] = mean / static_cast<double>(l3);
  }

  act.probs.assign(static_cast<std::size_t>(num_classes_), 0.0);
  double peak = -1e300;
  for (int c = 0; c < num_classes_; ++c) {
    double s = dense_b_[static_cast<std::size_t>(c)];
    for (std::size_t g = 0; g < c2; ++g)
      s += dense_w_[static_cast<std::size_t>(c)][g] * act.gap[g];
    act.probs[static_cast<std::size_t>(c)] = s;
    peak = std::max(peak, s);
  }
  double denom = 0.0;
  for (double& p : act.probs) {
    p = std::exp(p - peak);
    denom += p;
  }
  for (double& p : act.probs) p /= denom;
}

void CnnClassifier::fit(const std::vector<std::vector<double>>& series,
                        const std::vector<int>& labels) {
  AF_EXPECT(series.size() == labels.size(), "series/label count mismatch");
  AF_EXPECT(!series.empty(), "fit requires at least one series");
  num_classes_ = 0;
  for (int l : labels) {
    AF_EXPECT(l >= 0, "labels must be non-negative");
    num_classes_ = std::max(num_classes_, l + 1);
  }
  AF_EXPECT(num_classes_ >= 2, "CNN requires at least two classes");

  const std::size_t k = config_.kernel;
  const std::size_t c1 = config_.conv1_filters;
  const std::size_t c2 = config_.conv2_filters;
  common::Rng rng(config_.seed);
  auto he = [&rng](std::size_t fan_in) {
    return rng.normal(0.0, std::sqrt(2.0 / static_cast<double>(fan_in)));
  };
  conv1_w_.assign(c1, std::vector<double>(k));
  conv1_b_.assign(c1, 0.0);
  for (auto& f : conv1_w_)
    for (auto& w : f) w = he(k);
  conv2_w_.assign(c2, std::vector<std::vector<double>>(
                          c1, std::vector<double>(k)));
  conv2_b_.assign(c2, 0.0);
  for (auto& g : conv2_w_)
    for (auto& f : g)
      for (auto& w : f) w = he(k * c1);
  dense_w_.assign(static_cast<std::size_t>(num_classes_),
                  std::vector<double>(c2));
  dense_b_.assign(static_cast<std::size_t>(num_classes_), 0.0);
  for (auto& row : dense_w_)
    for (auto& w : row) w = he(c2);

  // Pre-canonicalize once.
  std::vector<std::vector<double>> inputs;
  std::vector<int> targets;
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (series[i].size() < 4) continue;
    inputs.push_back(canonicalize(series[i]));
    targets.push_back(labels[i]);
  }
  AF_EXPECT(!inputs.empty(), "no usable training series");

  const std::size_t l1 = config_.resample_length - k + 1;
  const std::size_t l2 = l1 / 2;
  const std::size_t l3 = l2 - k + 1;

  std::vector<std::size_t> order(inputs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  Activations act;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.shuffle(order);
    const double lr =
        config_.learning_rate / std::sqrt(1.0 + 0.3 * epoch);
    for (std::size_t start = 0; start < order.size();
         start += config_.batch_size) {
      const std::size_t end =
          std::min(start + config_.batch_size, order.size());

      auto g_conv1_w = conv1_w_;
      auto g_conv2_w = conv2_w_;
      auto g_dense_w = dense_w_;
      for (auto& f : g_conv1_w) std::fill(f.begin(), f.end(), 0.0);
      for (auto& g : g_conv2_w)
        for (auto& f : g) std::fill(f.begin(), f.end(), 0.0);
      for (auto& row : g_dense_w) std::fill(row.begin(), row.end(), 0.0);
      std::vector<double> g_conv1_b(c1, 0.0), g_conv2_b(c2, 0.0),
          g_dense_b(static_cast<std::size_t>(num_classes_), 0.0);

      for (std::size_t bi = start; bi < end; ++bi) {
        const auto idx = order[bi];
        forward(inputs[idx], act);

        // dL/dlogits for cross-entropy + softmax.
        std::vector<double> d_logits(act.probs);
        d_logits[static_cast<std::size_t>(targets[idx])] -= 1.0;

        // Dense layer.
        std::vector<double> d_gap(c2, 0.0);
        for (int c = 0; c < num_classes_; ++c) {
          const auto cc = static_cast<std::size_t>(c);
          g_dense_b[cc] += d_logits[cc];
          for (std::size_t g = 0; g < c2; ++g) {
            g_dense_w[cc][g] += d_logits[cc] * act.gap[g];
            d_gap[g] += d_logits[cc] * dense_w_[cc][g];
          }
        }

        // GAP + conv2 (ReLU mask) back to pool.
        std::vector<std::vector<double>> d_pool(
            c1, std::vector<double>(l2, 0.0));
        for (std::size_t g = 0; g < c2; ++g) {
          const double d_mean = d_gap[g] / static_cast<double>(l3);
          for (std::size_t t = 0; t < l3; ++t) {
            if (act.conv2[g][t] <= 0.0) continue;
            g_conv2_b[g] += d_mean;
            for (std::size_t f = 0; f < c1; ++f)
              for (std::size_t j = 0; j < k; ++j) {
                g_conv2_w[g][f][j] += d_mean * act.pool[f][t + j];
                d_pool[f][t + j] += d_mean * conv2_w_[g][f][j];
              }
          }
        }

        // Max-pool routing + conv1 (ReLU mask) back to weights.
        for (std::size_t f = 0; f < c1; ++f) {
          for (std::size_t t = 0; t < l2; ++t) {
            const double d = d_pool[f][t];
            if (d == 0.0) continue;
            const std::size_t src = act.pool_arg[f][t];
            if (act.conv1[f][src] <= 0.0) continue;
            g_conv1_b[f] += d;
            for (std::size_t j = 0; j < k; ++j)
              g_conv1_w[f][j] += d * act.input[src + j];
          }
        }
      }

      const double scale = lr / static_cast<double>(end - start);
      for (std::size_t f = 0; f < c1; ++f) {
        conv1_b_[f] -= scale * g_conv1_b[f];
        for (std::size_t j = 0; j < k; ++j)
          conv1_w_[f][j] -= scale * g_conv1_w[f][j];
      }
      for (std::size_t g = 0; g < c2; ++g) {
        conv2_b_[g] -= scale * g_conv2_b[g];
        for (std::size_t f = 0; f < c1; ++f)
          for (std::size_t j = 0; j < k; ++j)
            conv2_w_[g][f][j] -= scale * g_conv2_w[g][f][j];
      }
      for (int c = 0; c < num_classes_; ++c) {
        const auto cc = static_cast<std::size_t>(c);
        dense_b_[cc] -= scale * g_dense_b[cc];
        for (std::size_t g = 0; g < c2; ++g)
          dense_w_[cc][g] -= scale * g_dense_w[cc][g];
      }
    }
  }
}

std::vector<double> CnnClassifier::predict_proba(
    std::span<const double> series) const {
  AF_EXPECT(num_classes_ >= 2, "predict requires a fitted network");
  Activations act;
  forward(canonicalize(series), act);
  return act.probs;
}

int CnnClassifier::predict(std::span<const double> series) const {
  const auto p = predict_proba(series);
  return static_cast<int>(std::max_element(p.begin(), p.end()) - p.begin());
}

}  // namespace airfinger::ml
