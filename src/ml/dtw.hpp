// Dynamic Time Warping 1-NN classifier.
//
// The paper dismisses DTW (with HMM and CNN) as more expensive than a
// random forest for real-time recognition (Sec. IV-C-2); this baseline
// makes the comparison concrete. It classifies raw (canonicalized) ΔRSS²
// series by nearest neighbour under a Sakoe–Chiba-banded DTW distance.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace airfinger::ml {

/// Banded DTW distance between two sequences (squared-difference local
/// cost, symmetric step pattern). `band` limits |i - j| (Sakoe–Chiba);
/// band >= max(len_a, len_b) is unconstrained. Requires non-empty inputs.
double dtw_distance(std::span<const double> a, std::span<const double> b,
                    std::size_t band);

/// Configuration of the DTW 1-NN classifier.
struct DtwClassifierConfig {
  std::size_t resample_length = 64;  ///< Canonical template length.
  std::size_t band = 8;              ///< Sakoe–Chiba band, in samples.
  /// Cap on stored templates per class (subsampled deterministically);
  /// 0 = keep everything. DTW inference cost is linear in this.
  std::size_t max_templates_per_class = 60;
};

/// 1-nearest-neighbour DTW classifier over univariate series.
class DtwClassifier {
 public:
  explicit DtwClassifier(DtwClassifierConfig config = {});

  /// Stores (canonicalized) training series. Labels must be dense 0-based.
  void fit(const std::vector<std::vector<double>>& series,
           const std::vector<int>& labels);

  /// Predicts the label of one series. Requires a prior fit().
  int predict(std::span<const double> series) const;

  std::size_t template_count() const { return templates_.size(); }

 private:
  std::vector<double> canonicalize(std::span<const double> series) const;

  DtwClassifierConfig config_;
  std::vector<std::vector<double>> templates_;
  std::vector<int> template_labels_;
};

}  // namespace airfinger::ml
