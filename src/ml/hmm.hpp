// Discrete-observation hidden Markov model classifier.
//
// The second sequence baseline the paper rules out on cost grounds
// (Sec. IV-C-2). One left-right HMM per gesture class is trained with
// Baum–Welch on quantized canonical ΔRSS² series; classification picks the
// class whose model assigns the highest length-normalized log-likelihood.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace airfinger::ml {

/// Configuration of the HMM classifier.
struct HmmClassifierConfig {
  std::size_t states = 6;            ///< Left-right chain length.
  std::size_t symbols = 8;           ///< Observation alphabet size.
  std::size_t resample_length = 64;  ///< Canonical series length.
  std::size_t baum_welch_iterations = 15;
  double smoothing = 1e-3;  ///< Probability floor (avoids zero rows).
};

/// A single trained discrete HMM (left-right topology).
class DiscreteHmm {
 public:
  /// Initializes a left-right model (deterministic, slight symmetry
  /// breaking derived from `seed`).
  DiscreteHmm(std::size_t states, std::size_t symbols, std::uint64_t seed);

  /// Baum–Welch re-estimation over the observation sequences.
  /// Sequences must contain symbols < `symbols`; empty ones are skipped.
  void train(const std::vector<std::vector<std::size_t>>& sequences,
             std::size_t iterations, double smoothing);

  /// Scaled-forward log-likelihood of one sequence.
  double log_likelihood(std::span<const std::size_t> sequence) const;

  std::size_t state_count() const { return a_.size(); }

 private:
  // a_[i][j] transition, b_[i][k] emission, pi_[i] initial.
  std::vector<std::vector<double>> a_;
  std::vector<std::vector<double>> b_;
  std::vector<double> pi_;
};

/// One-HMM-per-class sequence classifier over raw (positive) series.
class HmmClassifier {
 public:
  explicit HmmClassifier(HmmClassifierConfig config = {});

  /// Trains per-class models. Labels must be dense 0-based.
  void fit(const std::vector<std::vector<double>>& series,
           const std::vector<int>& labels);

  /// Predicts the label of one series. Requires a prior fit().
  int predict(std::span<const double> series) const;

  int num_classes() const { return static_cast<int>(models_.size()); }

 private:
  std::vector<std::size_t> quantize(std::span<const double> series) const;

  HmmClassifierConfig config_;
  std::vector<double> bin_edges_;  ///< symbols-1 quantile edges.
  std::vector<DiscreteHmm> models_;
};

}  // namespace airfinger::ml
