#include "ml/data.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"

namespace airfinger::ml {

int SampleSet::num_classes() const {
  int max_label = -1;
  for (int l : labels) max_label = std::max(max_label, l);
  return max_label + 1;
}

SampleSet SampleSet::subset(std::span<const std::size_t> indices) const {
  SampleSet out;
  out.features.reserve(indices.size());
  out.labels.reserve(indices.size());
  for (std::size_t i : indices) {
    AF_EXPECT(i < size(), "subset index out of range");
    out.features.push_back(features[i]);
    out.labels.push_back(labels[i]);
    if (!groups.empty()) out.groups.push_back(groups[i]);
  }
  return out;
}

SampleSet SampleSet::project(std::span<const std::size_t> columns) const {
  SampleSet out;
  out.labels = labels;
  out.groups = groups;
  out.features.reserve(size());
  for (const auto& row : features) {
    std::vector<double> projected;
    projected.reserve(columns.size());
    for (std::size_t c : columns) {
      AF_EXPECT(c < row.size(), "projected column out of range");
      projected.push_back(row[c]);
    }
    out.features.push_back(std::move(projected));
  }
  return out;
}

void SampleSet::validate() const {
  AF_EXPECT(features.size() == labels.size(),
            "feature/label row count mismatch");
  AF_EXPECT(groups.empty() || groups.size() == labels.size(),
            "group row count mismatch");
  const std::size_t width = feature_count();
  for (const auto& row : features)
    AF_EXPECT(row.size() == width, "ragged feature rows");
  for (int l : labels) AF_EXPECT(l >= 0, "labels must be non-negative");
}

namespace {
std::map<int, std::vector<std::size_t>> by_class(const SampleSet& data) {
  std::map<int, std::vector<std::size_t>> index;
  for (std::size_t i = 0; i < data.size(); ++i)
    index[data.labels[i]].push_back(i);
  return index;
}
}  // namespace

Split stratified_split(const SampleSet& data, double test_fraction,
                       common::Rng& rng) {
  AF_EXPECT(test_fraction > 0.0 && test_fraction < 1.0,
            "test fraction must lie in (0,1)");
  AF_EXPECT(data.size() >= 2, "need at least two samples to split");
  Split split;
  for (auto& [label, indices] : by_class(data)) {
    rng.shuffle(indices);
    const auto n_test = std::max<std::size_t>(
        1, static_cast<std::size_t>(test_fraction *
                                    static_cast<double>(indices.size())));
    for (std::size_t i = 0; i < indices.size(); ++i)
      (i < n_test ? split.test : split.train).push_back(indices[i]);
  }
  rng.shuffle(split.train);
  rng.shuffle(split.test);
  return split;
}

std::vector<Split> stratified_kfold(const SampleSet& data, int folds,
                                    common::Rng& rng) {
  AF_EXPECT(folds >= 2, "kfold requires folds >= 2");
  std::vector<std::vector<std::size_t>> fold_members(
      static_cast<std::size_t>(folds));
  for (auto& [label, indices] : by_class(data)) {
    rng.shuffle(indices);
    for (std::size_t i = 0; i < indices.size(); ++i)
      fold_members[i % static_cast<std::size_t>(folds)].push_back(indices[i]);
  }
  std::vector<Split> splits(static_cast<std::size_t>(folds));
  for (std::size_t f = 0; f < splits.size(); ++f) {
    splits[f].test = fold_members[f];
    for (std::size_t g = 0; g < fold_members.size(); ++g)
      if (g != f)
        splits[f].train.insert(splits[f].train.end(),
                               fold_members[g].begin(),
                               fold_members[g].end());
    rng.shuffle(splits[f].train);
  }
  return splits;
}

std::vector<Split> leave_one_group_out(const SampleSet& data) {
  AF_EXPECT(!data.groups.empty(), "leave_one_group_out requires groups");
  std::map<int, std::vector<std::size_t>> by_group;
  for (std::size_t i = 0; i < data.size(); ++i)
    by_group[data.groups[i]].push_back(i);
  AF_EXPECT(by_group.size() >= 2, "need at least two groups");

  std::vector<Split> splits;
  for (const auto& [group, members] : by_group) {
    Split s;
    s.test = members;
    for (const auto& [other, other_members] : by_group)
      if (other != group)
        s.train.insert(s.train.end(), other_members.begin(),
                       other_members.end());
    splits.push_back(std::move(s));
  }
  return splits;
}

}  // namespace airfinger::ml
