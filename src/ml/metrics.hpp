// Evaluation metrics following the paper's definitions (Sec. V-C):
// confusion matrix (rows = ground truth, columns = predictions), accuracy,
// per-class recall and precision.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace airfinger::ml {

/// Accumulating confusion matrix over integer class labels.
class ConfusionMatrix {
 public:
  /// Requires num_classes >= 1. Class names are optional display labels.
  explicit ConfusionMatrix(int num_classes,
                           std::vector<std::string> class_names = {});

  /// Records one (truth, prediction) pair. Labels must be in range.
  void add(int truth, int predicted);

  /// Merges counts from another matrix of the same arity.
  void merge(const ConfusionMatrix& other);

  int num_classes() const { return num_classes_; }
  std::size_t total() const { return total_; }
  std::size_t count(int truth, int predicted) const;

  /// Row-normalized entry (the paper's confusion-matrix definition):
  /// fraction of class-`truth` samples predicted as `predicted`.
  double rate(int truth, int predicted) const;

  /// Overall accuracy: correct / total. 0 when empty.
  double accuracy() const;

  /// Recall of one class: correct_g / actual_g. 0 when class unseen.
  double recall(int label) const;

  /// Precision of one class: correct_g / predicted_g. 0 when never predicted.
  double precision(int label) const;

  /// Macro averages across classes that actually appear.
  double macro_recall() const;
  double macro_precision() const;

  /// Per-class accuracy in the one-vs-rest sense:
  /// (TP + TN) / total for this label.
  double class_accuracy(int label) const;

  /// Renders the row-normalized matrix as an aligned text table.
  std::string to_string() const;

 private:
  int num_classes_;
  std::vector<std::string> names_;
  std::vector<std::size_t> counts_;  // row-major truth × predicted
  std::size_t total_ = 0;
};

/// Builds a confusion matrix from parallel truth/prediction vectors.
ConfusionMatrix evaluate(std::span<const int> truth,
                         std::span<const int> predicted, int num_classes,
                         std::vector<std::string> class_names = {});

}  // namespace airfinger::ml
