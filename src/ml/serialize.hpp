// Model persistence: text-based serialization of the trained classifiers.
//
// A deployable wearable cannot retrain on boot; models are trained offline
// and shipped. The format is line-oriented UTF-8 with a tagged header per
// object and full double precision (hex floats), so round-trips are exact
// and files remain diffable. Readers validate tags and sizes and throw
// PreconditionError on malformed input.
#pragma once

#include <iosfwd>

#include "ml/decision_tree.hpp"
#include "ml/logistic.hpp"
#include "ml/naive_bayes.hpp"
#include "ml/random_forest.hpp"

namespace airfinger::ml {

/// Writes a fitted decision tree. Requires a prior fit().
void save_tree(std::ostream& os, const DecisionTree& tree);

/// Reads a tree written by save_tree. Throws on malformed input.
DecisionTree load_tree(std::istream& is);

/// Writes a fitted random forest. Requires a prior fit().
void save_forest(std::ostream& os, const RandomForest& forest);

/// Reads a forest written by save_forest.
RandomForest load_forest(std::istream& is);

namespace detail {
/// Writes/reads a double exactly (hexadecimal float form).
void write_double(std::ostream& os, double v);
double read_double(std::istream& is);
/// Reads a token and checks it equals `expected`; throws otherwise.
void expect_tag(std::istream& is, const char* expected);
}  // namespace detail

}  // namespace airfinger::ml
