#include "ml/compiled_forest.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/simd.hpp"

namespace airfinger::ml {

CompiledForest::CompiledForest(const RandomForest& forest)
    : num_classes_(static_cast<std::size_t>(forest.num_classes())) {
  AF_EXPECT(forest.tree_count() >= 1,
            "CompiledForest requires a fitted forest");
  AF_EXPECT(num_classes_ >= 1, "CompiledForest requires at least one class");
  std::size_t total_nodes = 0;
  for (const auto& tree : forest.trees()) total_nodes += tree.node_count();
  feature_.reserve(total_nodes);
  threshold_.reserve(total_nodes);
  child_.reserve(total_nodes);
  leaf_offset_.reserve(total_nodes);
  roots_.reserve(forest.tree_count());
  for (const auto& tree : forest.trees())
    roots_.push_back(static_cast<std::int32_t>(flatten(tree)));
}

std::size_t CompiledForest::flatten(const DecisionTree& tree) {
  const std::vector<DecisionTree::Node>& nodes = tree.nodes();
  AF_EXPECT(!nodes.empty(), "CompiledForest requires fitted trees");
  const std::size_t base = feature_.size();

  // Breadth-first re-numbering placing each internal node's two children
  // adjacently, so traversal computes child_[i] + (went_right ? 1 : 0).
  // DecisionTree stores its root at index 0.
  std::vector<std::size_t> order{0};
  std::vector<std::int32_t> renumbered(nodes.size(), -1);
  renumbered[0] = static_cast<std::int32_t>(base);
  for (std::size_t head = 0; head < order.size(); ++head) {
    const DecisionTree::Node& node = nodes[order[head]];
    if (node.is_leaf()) continue;
    const auto left = static_cast<std::size_t>(node.left);
    const auto right = static_cast<std::size_t>(node.right);
    renumbered[left] =
        static_cast<std::int32_t>(base + order.size());
    renumbered[right] =
        static_cast<std::int32_t>(base + order.size() + 1);
    order.push_back(left);
    order.push_back(right);
  }

  for (std::size_t old_idx : order) {
    const DecisionTree::Node& node = nodes[old_idx];
    if (node.is_leaf()) {
      AF_EXPECT(node.distribution.size() <= num_classes_,
                "tree class count exceeds the forest's");
      feature_.push_back(-1);
      threshold_.push_back(0.0);
      child_.push_back(-1);
      leaf_offset_.push_back(static_cast<std::int32_t>(leaf_dist_.size()));
      leaf_dist_.insert(leaf_dist_.end(), node.distribution.begin(),
                        node.distribution.end());
      leaf_dist_.resize(leaf_dist_.size() +
                            (num_classes_ - node.distribution.size()),
                        0.0);
    } else {
      feature_.push_back(node.feature);
      threshold_.push_back(node.threshold);
      child_.push_back(renumbered[static_cast<std::size_t>(node.left)]);
      leaf_offset_.push_back(-1);
    }
  }
  return base;
}

void CompiledForest::predict_proba_into(std::span<const double> x,
                                        std::span<double> out) const {
  AF_EXPECT(compiled(), "predict requires a compiled forest");
  AF_EXPECT(out.size() == num_classes_,
            "predict_proba output size must match the class count");
  const std::int32_t* feature = feature_.data();
  const double* threshold = threshold_.data();
  const std::int32_t* child = child_.data();
  const double* leaves = leaf_dist_.data();
  for (double& v : out) v = 0.0;
  // Batch-wise traversal: the forest_leaves kernel descends a chunk of
  // trees breadth-wise (an AF_SIMD lane-group of trees per step), then the
  // leaf distributions accumulate in tree order — the same order the old
  // one-tree-at-a-time loop used, so the probabilities stay bit-identical.
  constexpr std::size_t kChunk = 64;
  std::int32_t leaf[kChunk];
  const auto& k = simd::kernels();
  for (std::size_t t0 = 0; t0 < roots_.size(); t0 += kChunk) {
    const std::size_t count = std::min(kChunk, roots_.size() - t0);
    std::copy(roots_.begin() + static_cast<std::ptrdiff_t>(t0),
              roots_.begin() + static_cast<std::ptrdiff_t>(t0 + count), leaf);
    k.forest_leaves(feature, threshold, child, x.data(), leaf, count);
    for (std::size_t t = 0; t < count; ++t) {
      const auto idx = static_cast<std::size_t>(leaf[t]);
      const double* dist =
          leaves + static_cast<std::size_t>(leaf_offset_[idx]);
      k.accumulate(out.data(), dist, out.size());
    }
  }
  const auto total = static_cast<double>(roots_.size());
  for (double& v : out) v /= total;
}

std::vector<double> CompiledForest::predict_proba(
    std::span<const double> x) const {
  std::vector<double> out(num_classes_, 0.0);
  predict_proba_into(x, out);
  return out;
}

int CompiledForest::predict(std::span<const double> x) const {
  const auto proba = predict_proba(x);
  return static_cast<int>(
      std::max_element(proba.begin(), proba.end()) - proba.begin());
}

}  // namespace airfinger::ml
