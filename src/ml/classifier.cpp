#include "ml/classifier.hpp"

namespace airfinger::ml {

std::vector<int> Classifier::predict_all(const SampleSet& data) const {
  std::vector<int> out;
  out.reserve(data.size());
  for (const auto& row : data.features) out.push_back(predict(row));
  return out;
}

}  // namespace airfinger::ml
