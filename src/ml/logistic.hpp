// Multinomial logistic regression (softmax) trained by mini-batch gradient
// descent with L2 regularization and internal feature standardization.
// This is the paper's "LR" baseline of Fig. 9.
#pragma once

#include <iosfwd>

#include "ml/classifier.hpp"

namespace airfinger::ml {

/// LR hyper-parameters.
struct LogisticRegressionConfig {
  double learning_rate = 0.1;
  double l2 = 1e-4;
  int epochs = 200;
  std::size_t batch_size = 64;
  std::uint64_t seed = 23;
};

/// Trained softmax classifier.
class LogisticRegression final : public Classifier {
 public:
  explicit LogisticRegression(LogisticRegressionConfig config = {});

  void fit(const SampleSet& data) override;
  int predict(std::span<const double> x) const override;
  std::string name() const override { return "LR"; }

  /// Softmax class probabilities.
  std::vector<double> predict_proba(std::span<const double> x) const;

  /// Serializes the fitted model (text, exact round-trip).
  void save(std::ostream& os) const;

  /// Reconstructs a model written by save().
  static LogisticRegression load(std::istream& is);

 private:
  std::vector<double> standardize(std::span<const double> x) const;
  std::vector<double> logits(std::span<const double> z) const;

  LogisticRegressionConfig config_;
  // weights_[c] holds the weight vector of class c; biases_[c] its bias.
  std::vector<std::vector<double>> weights_;
  std::vector<double> biases_;
  std::vector<double> feature_mean_;
  std::vector<double> feature_scale_;
  int num_classes_ = 0;
};

}  // namespace airfinger::ml
