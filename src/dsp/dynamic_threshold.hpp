// Dynamic Threshold (DT) gesture segmentation — Sec. IV-B-2.
//
// The paper adapts Otsu's method (background/foreground separation) to the
// ΔRSS² stream: the threshold I_seg is iteratively recomputed to maximize
// the inter-class variance ω0·ω1·(μ0-μ1)² between gesture and non-gesture
// samples, then start/end points are detected by threshold crossings and
// segments closer than t_e are clustered into one gesture.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

namespace airfinger::dsp {

/// A half-open sample range [begin, end) within a signal.
struct Segment {
  std::size_t begin = 0;
  std::size_t end = 0;

  std::size_t length() const { return end - begin; }
  bool operator==(const Segment&) const = default;
};

/// Otsu's threshold over raw (non-histogrammed) values: exhaustively
/// evaluates candidate thresholds at the sorted unique values and returns
/// the one maximizing inter-class variance. O(n log n).
/// Requires non-empty input. Returns max(x) when all values are equal
/// (nothing separable → nothing exceeds the threshold).
double otsu_threshold(std::span<const double> x);

/// Histogram-based Otsu (O(n + bins²)); used by the streaming segmenter
/// where the exhaustive form would be too slow. Requires bins >= 2.
double otsu_threshold_hist(std::span<const double> x, int bins = 64);

/// otsu_threshold_hist() with caller-provided histogram scratch (both spans
/// sized >= bins), so recalibration inside the streaming segmenter does not
/// touch the heap.
double otsu_threshold_hist_with(std::span<const double> x, int bins,
                                std::span<double> count_scratch,
                                std::span<double> value_sum_scratch);

/// Configuration shared by the batch and streaming segmenters.
struct SegmenterConfig {
  double sample_rate_hz = 100.0;
  double initial_threshold = 10.0;  ///< I'_seg before any calibration.
  /// t_e: merge segments closer than this. The paper learned 100 ms for its
  /// hardware; re-learning the parameter on the simulated substrate (same
  /// procedure, Sec. V-A) gives 280 ms — our optical lulls between gesture
  /// phases are longer than theirs.
  double cluster_gap_s = 0.28;
  double min_duration_s = 0.12;     ///< Discard shorter detections (blips).
  /// ΔRSS² is spiky (it dips to zero at every motion reversal) and heavy-
  /// tailed; segmentation therefore runs on a short moving average of the
  /// energy, thresholded in the log1p domain where the gesture/noise
  /// histogram is bimodal and Otsu is well behaved.
  double smooth_window_s = 0.14;
  /// Hysteresis: a segment opens when the signal exceeds I_seg but only
  /// closes when it falls below μ_noise + exit_ratio·(I_seg - μ_noise).
  /// Gestures whose weak phases hover just under the entry threshold would
  /// otherwise be chopped into fragments.
  double exit_ratio = 0.25;
  /// Bimodality guard: Otsu always produces *a* threshold, even on pure
  /// noise. A split is only accepted when the class means (in the log1p
  /// domain) are at least this far apart; otherwise the window is treated
  /// as all-noise and nothing is segmented.
  double min_log_separation = 1.2;
  /// Streaming only: how many recent values feed threshold updates.
  std::size_t history_capacity = 1024;
  /// Streaming only: recompute the threshold every this many samples.
  std::size_t update_interval = 32;
  /// Streaming only: no segment may open before this many samples were
  /// seen (the threshold is uncalibrated until then).
  std::size_t warmup_samples = 16;
};

/// Batch segmentation of a complete ΔRSS² signal.
std::vector<Segment> segment_signal(std::span<const double> delta_rss2,
                                    const SegmenterConfig& config);

/// Streaming segmenter: feed ΔRSS² one sample at a time; completed gesture
/// segments are returned as they are finalized (i.e. once the signal has
/// stayed below threshold for longer than t_e).
class DynamicThresholdSegmenter {
 public:
  explicit DynamicThresholdSegmenter(const SegmenterConfig& config);

  /// Feeds one ΔRSS² value; returns a completed segment when one closes.
  std::optional<Segment> push(double value);

  /// Finalizes and returns any open segment (end of stream).
  std::optional<Segment> flush();

  /// The currently calibrated I_seg (in ΔRSS² units).
  double threshold() const { return threshold_; }

  /// Index of the next sample to be pushed.
  std::size_t position() const { return position_; }

  /// True while inside a candidate gesture.
  bool in_gesture() const { return in_gesture_; }

  void reset();

 private:
  void maybe_update_threshold();
  std::optional<Segment> finalize();

  SegmenterConfig config_;
  std::vector<double> history_;  // ring of log1p(smoothed) values
  std::size_t history_head_ = 0;
  bool history_full_ = false;
  double threshold_;       // in raw ΔRSS² units (for reporting)
  double log_threshold_;   // internal compare domain (entry)
  double log_exit_ = 0.0;  // hysteresis exit level (log domain)
  std::size_t position_ = 0;
  bool in_gesture_ = false;
  std::size_t segment_begin_ = 0;
  std::size_t last_above_ = 0;  // last sample index that exceeded threshold
  std::size_t gap_samples_;
  std::size_t min_samples_;
  // Incremental moving average of the incoming energy.
  std::vector<double> smooth_ring_;
  std::size_t smooth_head_ = 0;
  std::size_t smooth_count_ = 0;
  double smooth_sum_ = 0.0;
  // Histogram scratch reused across threshold recalibrations.
  std::vector<double> otsu_count_;
  std::vector<double> otsu_sum_;
};

}  // namespace airfinger::dsp
