// Normalized cross-correlation and best-lag estimation.
//
// Used by the gesture-type router and the ZEBRA tracker: a scrolling finger
// produces on P3 a time-shifted copy of P1's waveform (lag = transit time
// over the P1→P3 baseline), while a fixed-spot micro gesture produces
// near-proportional waveforms on all photodiodes (lag ≈ 0). Estimating the
// lag from the whole waveform is the noise-robust generalization of
// comparing single ascending points.
#pragma once

#include <cstddef>
#include <span>

namespace airfinger::dsp {

/// Result of a lag search.
struct LagEstimate {
  /// Best lag in samples: positive means `b` lags `a` (a leads).
  std::ptrdiff_t lag = 0;
  /// Normalized correlation at the best lag, in [-1, 1].
  double correlation = 0.0;
};

/// Pearson correlation of a and b at the given lag (b shifted right by
/// `lag`), computed over the overlapping region. Returns 0 when the overlap
/// is shorter than 4 samples or either side is constant.
double correlation_at_lag(std::span<const double> a, std::span<const double> b,
                          std::ptrdiff_t lag);

/// Scans lags in [-max_lag, +max_lag] and returns the lag maximizing the
/// normalized correlation. Requires equal-length non-empty inputs.
LagEstimate best_lag(std::span<const double> a, std::span<const double> b,
                     std::size_t max_lag);

}  // namespace airfinger::dsp
