// Goertzel single-bin DFT — the building block of the modulated-LED
// synchronous detector (the paper's Sec. VI frequency-modulation hardening).
//
// A real lock-in front end multiplies the photodiode signal by the carrier
// and low-passes; equivalently, the carrier-bin magnitude of a short window
// can be evaluated with the Goertzel recurrence at O(1) state per sample.
// `sensor::FrontEndSpec` models the detector's *effect* (ambient
// rejection); this is the reference implementation of the mechanism, used
// by the tests to show carrier extraction from a contaminated signal.
#pragma once

#include <cstddef>
#include <span>

namespace airfinger::dsp {

/// One-shot Goertzel: magnitude of the DFT bin nearest `frequency_hz` over
/// the whole window. Requires non-empty input and 0 < frequency < rate/2.
double goertzel_magnitude(std::span<const double> x, double frequency_hz,
                          double sample_rate_hz);

/// Batched one-shot Goertzel: out[f] = goertzel_magnitude(x,
/// frequencies_hz[f], rate), bit-identically, with the recurrences of up
/// to an AF_SIMD lane-group of frequencies advanced in lockstep per
/// sample. Requires out.size() == frequencies_hz.size().
void goertzel_magnitudes(std::span<const double> x,
                         std::span<const double> frequencies_hz,
                         double sample_rate_hz, std::span<double> out);

/// Streaming Goertzel over fixed-size blocks: push samples, read the
/// carrier magnitude of each completed block.
class GoertzelDetector {
 public:
  /// Requires block_size >= 8 and 0 < frequency < rate/2.
  GoertzelDetector(double frequency_hz, double sample_rate_hz,
                   std::size_t block_size);

  /// Feeds one sample. Returns true when a block completed (its magnitude
  /// is then available via last_magnitude()).
  bool push(double sample);

  /// Carrier magnitude of the last completed block.
  double last_magnitude() const { return last_magnitude_; }

  std::size_t block_size() const { return block_size_; }

  void reset();

 private:
  double coeff_;
  std::size_t block_size_;
  std::size_t filled_ = 0;
  double s1_ = 0.0;
  double s2_ = 0.0;
  double last_magnitude_ = 0.0;
};

}  // namespace airfinger::dsp
