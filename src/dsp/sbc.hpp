// Square Based Calculation (SBC) — the paper's noise-mitigation transform
// (Sec. IV-B-1).
//
// SBC slides a window of size w over the RSS stream, subtracts the value one
// window back, and squares the difference: ΔRSS²[i] = (x[i] - x[i-w])².
// Differencing removes the static component N_static exactly; squaring
// relatively suppresses the low-magnitude dynamic noise N_dyn while
// enhancing the gesture signal S_ges. O(1) per sample.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace airfinger::dsp {

/// Streaming SBC filter over one channel.
class SquareBasedCalculator {
 public:
  /// `window` is w in samples (the paper uses 10 ms = 1 sample at 100 Hz).
  /// Requires window >= 1.
  explicit SquareBasedCalculator(std::size_t window);

  std::size_t window() const { return window_; }

  /// Feeds one sample; returns ΔRSS² (0 until w samples have been seen).
  double push(double rss);

  /// Resets the internal delay line.
  void reset();

  /// Batch form: out[i] = (x[i] - x[i-w])² for i >= w, else 0.
  static std::vector<double> apply(std::span<const double> x,
                                   std::size_t window);

 private:
  std::size_t window_;
  std::vector<double> delay_;   // ring buffer of the last w samples
  std::size_t head_ = 0;
  std::size_t seen_ = 0;
};

/// Applies SBC per channel and sums the results — the aggregate motion
/// energy signal the detect-aimed pipeline operates on.
std::vector<double> sbc_energy(
    std::span<const std::span<const double>> channels, std::size_t window);

}  // namespace airfinger::dsp
