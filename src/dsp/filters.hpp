// Small filtering/resampling utilities shared by the pipeline and the
// feature extractors.
#pragma once

#include <span>
#include <vector>

namespace airfinger::dsp {

/// Centred moving average of window w (odd windows recommended); edges use
/// the available neighbourhood. Requires w >= 1 and non-empty input.
std::vector<double> moving_average(std::span<const double> x, std::size_t w);

/// moving_average writing into caller storage; out.size() == x.size().
/// Routed through the AF_SIMD moving_average_range kernel, whose lane
/// groups each reproduce the brute per-sample accumulation order — a
/// sliding-sum rewrite would change the floating-point addition order and
/// break the bit-exact determinism contract (DESIGN.md §9, §15).
void moving_average_into(std::span<const double> x, std::size_t w,
                         std::span<double> out);

/// moving_average_into restricted to out[from..n): recomputes only the
/// suffix (bit-identical to the same positions of a full pass). Used by
/// the streaming timing cache; tolerates empty x when from == 0.
void moving_average_range_into(std::span<const double> x, std::size_t w,
                               std::size_t from, std::span<double> out);

/// Exponential smoothing with factor alpha in (0, 1]. out[0] = x[0].
std::vector<double> exponential_smooth(std::span<const double> x,
                                       double alpha);

/// Centred median filter of window w (w >= 1, odd enforced by rounding up).
std::vector<double> median_filter(std::span<const double> x, std::size_t w);

/// Linear resampling of x (length n) to `target` samples (target >= 1).
std::vector<double> resample_linear(std::span<const double> x,
                                    std::size_t target);

/// resample_linear writing into caller storage; target = out.size() (>= 1).
void resample_linear_into(std::span<const double> x, std::span<double> out);

/// First difference: out[i] = x[i+1] - x[i]; length n-1 (n >= 2 required).
std::vector<double> diff(std::span<const double> x);

/// Indices of local maxima strictly greater than their `support` neighbours
/// on both sides (tsfresh's number_peaks definition).
std::vector<std::size_t> find_peaks(std::span<const double> x,
                                    std::size_t support);

/// find_peaks().size() without materializing the index list.
std::size_t count_peaks(std::span<const double> x, std::size_t support);

/// Number of find_peaks() peaks whose value is >= level.
std::size_t count_peaks_at_least(std::span<const double> x,
                                 std::size_t support, double level);

}  // namespace airfinger::dsp
