#include "dsp/dynamic_threshold.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace airfinger::dsp {

double otsu_threshold(std::span<const double> x) {
  AF_EXPECT(!x.empty(), "otsu_threshold requires non-empty input");
  std::vector<double> sorted(x.begin(), x.end());
  std::sort(sorted.begin(), sorted.end());
  const double n = static_cast<double>(sorted.size());

  // Prefix sums let every candidate split be evaluated in O(1).
  std::vector<double> prefix(sorted.size() + 1, 0.0);
  for (std::size_t i = 0; i < sorted.size(); ++i)
    prefix[i + 1] = prefix[i] + sorted[i];
  const double total = prefix.back();

  double best_sep = -1.0, best_threshold = sorted.back();
  // Candidate thresholds between consecutive distinct values: class NG gets
  // values <= candidate, class G gets values > candidate (Eq. 1).
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i] == sorted[i - 1]) continue;
    const double n_ng = static_cast<double>(i);
    const double n_g = n - n_ng;
    const double mu_ng = prefix[i] / n_ng;
    const double mu_g = (total - prefix[i]) / n_g;
    const double w0 = n_g / n, w1 = n_ng / n;
    const double sep = w0 * w1 * (mu_g - mu_ng) * (mu_g - mu_ng);
    if (sep > best_sep) {
      best_sep = sep;
      best_threshold = 0.5 * (sorted[i - 1] + sorted[i]);
    }
  }
  return best_threshold;
}

double otsu_threshold_hist(std::span<const double> x, int bins) {
  AF_EXPECT(bins >= 2, "otsu_threshold_hist requires bins >= 2");
  std::vector<double> count(static_cast<std::size_t>(bins), 0.0);
  std::vector<double> value_sum(static_cast<std::size_t>(bins), 0.0);
  return otsu_threshold_hist_with(x, bins, count, value_sum);
}

double otsu_threshold_hist_with(std::span<const double> x, int bins,
                                std::span<double> count_scratch,
                                std::span<double> value_sum_scratch) {
  AF_EXPECT(!x.empty(), "otsu_threshold_hist requires non-empty input");
  AF_EXPECT(bins >= 2, "otsu_threshold_hist requires bins >= 2");
  AF_EXPECT(count_scratch.size() >= static_cast<std::size_t>(bins) &&
                value_sum_scratch.size() >= static_cast<std::size_t>(bins),
            "otsu_threshold_hist scratch too small");
  const auto [lo_it, hi_it] = std::minmax_element(x.begin(), x.end());
  const double lo = *lo_it, hi = *hi_it;
  if (hi <= lo) return hi;

  const auto b = static_cast<std::size_t>(bins);
  const std::span<double> count = count_scratch.first(b);
  const std::span<double> value_sum = value_sum_scratch.first(b);
  std::fill(count.begin(), count.end(), 0.0);
  std::fill(value_sum.begin(), value_sum.end(), 0.0);
  const double scale = static_cast<double>(bins) / (hi - lo);
  for (double v : x) {
    auto idx = static_cast<std::size_t>((v - lo) * scale);
    idx = std::min(idx, b - 1);
    count[idx] += 1.0;
    value_sum[idx] += v;
  }
  const double n = static_cast<double>(x.size());
  const double total = value_sum.empty() ? 0.0 : [&] {
    double s = 0.0;
    for (double v : value_sum) s += v;
    return s;
  }();

  // Between well-separated clusters the objective is flat (empty bins), so
  // follow the standard Otsu convention and take the midpoint of the tied
  // argmax range instead of its first bin.
  double best_sep = -1.0;
  double first_tie = hi, last_tie = hi;
  double cum_n = 0.0, cum_sum = 0.0;
  for (std::size_t i = 0; i + 1 < b; ++i) {
    cum_n += count[i];
    cum_sum += value_sum[i];
    if (cum_n == 0.0 || cum_n == n) continue;
    const double mu_ng = cum_sum / cum_n;
    const double mu_g = (total - cum_sum) / (n - cum_n);
    const double w1 = cum_n / n, w0 = 1.0 - w1;
    const double sep = w0 * w1 * (mu_g - mu_ng) * (mu_g - mu_ng);
    const double threshold = lo + (static_cast<double>(i) + 1.0) / scale;
    if (sep > best_sep * (1.0 + 1e-12)) {
      best_sep = sep;
      first_tie = last_tie = threshold;
    } else if (sep >= best_sep * (1.0 - 1e-12)) {
      last_tie = threshold;
    }
  }
  return 0.5 * (first_tie + last_tie);
}

namespace {
std::vector<double> smooth_log_energy(std::span<const double> delta_rss2,
                                      const SegmenterConfig& config) {
  const auto w = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::lround(config.smooth_window_s * config.sample_rate_hz)));
  std::vector<double> smoothed(delta_rss2.begin(), delta_rss2.end());
  if (w > 1) {
    std::vector<double> tmp(smoothed.size());
    double sum = 0.0;
    for (std::size_t i = 0; i < smoothed.size(); ++i) {
      sum += smoothed[i];
      if (i >= w) sum -= smoothed[i - w];
      tmp[i] = sum / static_cast<double>(std::min(i + 1, w));
    }
    smoothed.swap(tmp);
  }
  for (double& v : smoothed) v = std::log1p(std::max(v, 0.0));
  return smoothed;
}

/// Class means on either side of a threshold; used by the bimodality guard
/// and the hysteresis exit level.
struct ClassMeans {
  double mu_lo = 0.0;
  double mu_hi = 0.0;
  std::size_t n_lo = 0;
  std::size_t n_hi = 0;
};

ClassMeans class_means(std::span<const double> logv, double threshold) {
  ClassMeans m;
  double sum_lo = 0.0, sum_hi = 0.0;
  for (double v : logv) {
    if (v > threshold) {
      sum_hi += v;
      ++m.n_hi;
    } else {
      sum_lo += v;
      ++m.n_lo;
    }
  }
  if (m.n_lo) m.mu_lo = sum_lo / static_cast<double>(m.n_lo);
  if (m.n_hi) m.mu_hi = sum_hi / static_cast<double>(m.n_hi);
  return m;
}

/// True when the threshold separates two genuinely distinct modes.
bool split_is_bimodal(const ClassMeans& m, double min_separation) {
  if (m.n_lo == 0 || m.n_hi == 0) return false;
  return m.mu_hi - m.mu_lo >= min_separation;
}
}  // namespace

std::vector<Segment> segment_signal(std::span<const double> delta_rss2,
                                    const SegmenterConfig& config) {
  AF_EXPECT(config.sample_rate_hz > 0.0, "sample rate must be positive");
  if (delta_rss2.empty()) return {};
  const std::vector<double> logv = smooth_log_energy(delta_rss2, config);
  const double threshold = otsu_threshold(logv);
  const ClassMeans means = class_means(logv, threshold);
  if (!split_is_bimodal(means, config.min_log_separation)) return {};
  const double exit_threshold =
      means.mu_lo + config.exit_ratio * (threshold - means.mu_lo);

  const auto gap = static_cast<std::size_t>(
      std::lround(config.cluster_gap_s * config.sample_rate_hz));
  // Smoothing widens every above-threshold run by roughly the window, so
  // the minimum-duration rule accounts for it.
  const auto smooth_w = static_cast<std::size_t>(
      std::lround(config.smooth_window_s * config.sample_rate_hz));
  const auto min_len = static_cast<std::size_t>(std::lround(
                           config.min_duration_s * config.sample_rate_hz)) +
                       smooth_w;

  std::vector<Segment> raw;
  bool inside = false;
  std::size_t begin = 0;
  for (std::size_t i = 0; i < logv.size(); ++i) {
    // Hysteresis: open above the Otsu threshold, stay open until the signal
    // drops below the exit level.
    const bool above = logv[i] > (inside ? exit_threshold : threshold);
    if (above && !inside) {
      inside = true;
      begin = i;
    } else if (!above && inside) {
      inside = false;
      raw.push_back({begin, i});
    }
  }
  if (inside) raw.push_back({begin, delta_rss2.size()});

  // Cluster segments separated by less than t_e into one gesture.
  std::vector<Segment> merged;
  for (const auto& seg : raw) {
    if (!merged.empty() && seg.begin - merged.back().end <= gap)
      merged.back().end = seg.end;
    else
      merged.push_back(seg);
  }

  std::vector<Segment> out;
  for (const auto& seg : merged)
    if (seg.length() >= min_len) out.push_back(seg);
  return out;
}

DynamicThresholdSegmenter::DynamicThresholdSegmenter(
    const SegmenterConfig& config)
    : config_(config),
      threshold_(config.initial_threshold),
      log_threshold_(std::log1p(std::max(config.initial_threshold, 0.0))),
      log_exit_(log_threshold_) {
  AF_EXPECT(config.sample_rate_hz > 0.0, "sample rate must be positive");
  AF_EXPECT(config.history_capacity >= 16,
            "history capacity too small to calibrate a threshold");
  AF_EXPECT(config.update_interval >= 1, "update interval must be >= 1");
  history_.reserve(config.history_capacity);
  gap_samples_ = static_cast<std::size_t>(
      std::lround(config.cluster_gap_s * config.sample_rate_hz));
  const auto smooth_w = static_cast<std::size_t>(
      std::lround(config.smooth_window_s * config.sample_rate_hz));
  min_samples_ = static_cast<std::size_t>(std::lround(
                     config.min_duration_s * config.sample_rate_hz)) +
                 smooth_w;
  const auto w = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::lround(config.smooth_window_s * config.sample_rate_hz)));
  smooth_ring_.assign(w, 0.0);
  otsu_count_.assign(64, 0.0);
  otsu_sum_.assign(64, 0.0);
}

void DynamicThresholdSegmenter::maybe_update_threshold() {
  if (position_ % config_.update_interval != 0) return;
  const std::size_t n = history_full_ ? history_.size() : history_head_;
  if (n < 16) return;  // not enough evidence yet; keep I'_seg
  const std::span<const double> window(history_.data(), n);
  const double candidate =
      otsu_threshold_hist_with(window, 64, otsu_count_, otsu_sum_);
  const ClassMeans means = class_means(window, candidate);
  if (split_is_bimodal(means, config_.min_log_separation)) {
    log_threshold_ = candidate;
    log_exit_ = means.mu_lo + config_.exit_ratio * (candidate - means.mu_lo);
  } else {
    // All-noise history: hold the threshold above everything seen so far
    // so idle noise cannot open segments.
    double peak = 0.0;
    for (double v : window) peak = std::max(peak, v);
    log_threshold_ = peak + 0.5;
    log_exit_ = log_threshold_;
  }
  threshold_ = std::expm1(log_threshold_);
}

std::optional<Segment> DynamicThresholdSegmenter::finalize() {
  in_gesture_ = false;
  const Segment seg{segment_begin_, last_above_ + 1};
  if (seg.length() >= min_samples_) return seg;
  return std::nullopt;
}

std::optional<Segment> DynamicThresholdSegmenter::push(double value) {
  // Incremental moving average, then log compression (matching
  // segment_signal's preprocessing).
  smooth_sum_ += value - smooth_ring_[smooth_head_];
  smooth_ring_[smooth_head_] = value;
  smooth_head_ = (smooth_head_ + 1) % smooth_ring_.size();
  smooth_count_ = std::min(smooth_count_ + 1, smooth_ring_.size());
  const double smoothed =
      std::max(smooth_sum_, 0.0) / static_cast<double>(smooth_count_);
  const double logv = std::log1p(smoothed);

  // Accumulate calibration history (ring buffer).
  if (history_.size() < config_.history_capacity) {
    history_.push_back(logv);
    history_head_ = history_.size();
  } else {
    history_full_ = true;
    history_[history_head_ % history_.size()] = logv;
    ++history_head_;
  }
  maybe_update_threshold();

  std::optional<Segment> completed;
  const bool above =
      logv > (in_gesture_ ? log_exit_ : log_threshold_) &&
      position_ >= config_.warmup_samples;
  if (above) {
    if (!in_gesture_) {
      in_gesture_ = true;
      segment_begin_ = position_;
    }
    last_above_ = position_;
  } else if (in_gesture_ && position_ - last_above_ > gap_samples_) {
    completed = finalize();
  }
  ++position_;
  return completed;
}

std::optional<Segment> DynamicThresholdSegmenter::flush() {
  if (!in_gesture_) return std::nullopt;
  return finalize();
}

void DynamicThresholdSegmenter::reset() {
  history_.clear();
  history_head_ = 0;
  history_full_ = false;
  threshold_ = config_.initial_threshold;
  log_threshold_ = std::log1p(std::max(config_.initial_threshold, 0.0));
  log_exit_ = log_threshold_;
  position_ = 0;
  in_gesture_ = false;
  smooth_ring_.assign(smooth_ring_.size(), 0.0);
  smooth_head_ = 0;
  smooth_count_ = 0;
  smooth_sum_ = 0.0;
}

}  // namespace airfinger::dsp
