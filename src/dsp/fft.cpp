#include "dsp/fft.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "common/simd.hpp"

namespace airfinger::dsp {

namespace {

// Twiddle factors are the same for every block of a stage (the serial
// w *= wlen chain restarts at 1 per block), so stages up to this many
// butterflies hoist them into a stack buffer once and hand the blocks to
// the AF_SIMD fft_stage kernel. The chain itself stays the serial
// std::complex product — bit-identical to the former in-loop updates.
constexpr std::size_t kMaxStackTwiddles = 512;

}  // namespace

std::size_t next_pow2(std::size_t n) {
  AF_EXPECT(n >= 1, "next_pow2 requires n >= 1");
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft_inplace(std::vector<std::complex<double>>& x, bool inverse) {
  fft_inplace(std::span<std::complex<double>>(x), inverse);
}

void fft_inplace(std::span<std::complex<double>> x, bool inverse) {
  const std::size_t n = x.size();
  AF_EXPECT(n >= 1 && (n & (n - 1)) == 0,
            "fft_inplace requires power-of-two length");
  if (n == 1) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(x[i], x[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = 2.0 * std::numbers::pi / static_cast<double>(len) *
                         (inverse ? 1.0 : -1.0);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    const std::size_t half = len / 2;
    if (half <= kMaxStackTwiddles) {
      double tw[2 * kMaxStackTwiddles];
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < half; ++k) {
        tw[2 * k] = w.real();
        tw[2 * k + 1] = w.imag();
        w *= wlen;
      }
      simd::kernels().fft_stage(reinterpret_cast<double*>(x.data()), n, len,
                                tw);
    } else {
      for (std::size_t i = 0; i < n; i += len) {
        std::complex<double> w(1.0, 0.0);
        for (std::size_t k = 0; k < half; ++k) {
          const std::complex<double> u = x[i + k];
          const std::complex<double> v = x[i + k + half] * w;
          x[i + k] = u + v;
          x[i + k + half] = u - v;
          w *= wlen;
        }
      }
    }
  }
  if (inverse) {
    for (auto& v : x) v /= static_cast<double>(n);
  }
}

std::vector<std::complex<double>> fft_real(std::span<const double> x) {
  AF_EXPECT(!x.empty(), "fft_real requires non-empty input");
  std::vector<std::complex<double>> buf(next_pow2(x.size()));
  for (std::size_t i = 0; i < x.size(); ++i) buf[i] = {x[i], 0.0};
  fft_inplace(buf);
  return buf;
}

std::span<const std::complex<double>> fft_real_scratch(
    std::span<const double> x, common::ScratchArena& arena) {
  AF_EXPECT(!x.empty(), "fft_real requires non-empty input");
  const std::span<std::complex<double>> buf =
      arena.alloc<std::complex<double>>(next_pow2(x.size()));
  for (std::size_t i = 0; i < x.size(); ++i) buf[i] = {x[i], 0.0};
  fft_inplace(buf);
  return buf;
}

std::vector<double> fft_magnitudes(std::span<const double> x,
                                   std::size_t count) {
  std::vector<double> out(count, 0.0);
  if (x.empty()) return out;
  const auto spec = fft_real(x);
  fft_magnitudes_from(spec, out);
  return out;
}

void fft_magnitudes_from(std::span<const std::complex<double>> spec,
                         std::span<double> out) {
  for (double& o : out) o = 0.0;
  const std::size_t usable = std::min(out.size(), spec.size() / 2 + 1);
  for (std::size_t i = 0; i < usable; ++i) out[i] = std::abs(spec[i]);
}

double spectral_centroid(std::span<const double> x) {
  if (x.size() < 2) return 0.0;
  const auto spec = fft_real(x);
  return spectral_centroid_from(spec);
}

double spectral_centroid_from(
    std::span<const std::complex<double>> spec) {
  const std::size_t half = spec.size() / 2;
  double num = 0.0, den = 0.0;
  for (std::size_t i = 1; i <= half; ++i) {  // skip DC
    const double p = std::norm(spec[i]);
    const double f = static_cast<double>(i) / static_cast<double>(spec.size());
    num += f * p;
    den += p;
  }
  return den > 0.0 ? num / den : 0.0;
}

double spectral_energy_ratio(std::span<const double> x, double fraction) {
  AF_EXPECT(fraction >= 0.0 && fraction <= 1.0,
            "spectral_energy_ratio fraction must lie in [0,1]");
  if (x.size() < 2) return 0.0;
  const auto spec = fft_real(x);
  return spectral_energy_ratio_from(spec, fraction);
}

double spectral_energy_ratio_from(std::span<const std::complex<double>> spec,
                                  double fraction) {
  AF_EXPECT(fraction >= 0.0 && fraction <= 1.0,
            "spectral_energy_ratio fraction must lie in [0,1]");
  const std::size_t half = spec.size() / 2;
  const auto cutoff = static_cast<std::size_t>(
      fraction * static_cast<double>(half));
  double below = 0.0, total = 0.0;
  for (std::size_t i = 1; i <= half; ++i) {
    const double p = std::norm(spec[i]);
    total += p;
    if (i <= cutoff) below += p;
  }
  return total > 0.0 ? below / total : 0.0;
}

}  // namespace airfinger::dsp
