#include "dsp/filters.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/simd.hpp"

namespace airfinger::dsp {

std::vector<double> moving_average(std::span<const double> x, std::size_t w) {
  std::vector<double> out(x.size());
  moving_average_into(x, w, out);
  return out;
}

void moving_average_into(std::span<const double> x, std::size_t w,
                         std::span<double> out) {
  AF_EXPECT(!x.empty(), "moving_average requires non-empty input");
  AF_EXPECT(w >= 1, "moving_average requires w >= 1");
  AF_EXPECT(out.size() == x.size(), "moving_average output size mismatch");
  simd::kernels().moving_average_range(x.data(), x.size(), w, 0, x.size(),
                                       out.data());
}

void moving_average_range_into(std::span<const double> x, std::size_t w,
                               std::size_t from, std::span<double> out) {
  AF_EXPECT(w >= 1, "moving_average requires w >= 1");
  AF_EXPECT(out.size() == x.size(), "moving_average output size mismatch");
  AF_EXPECT(from <= x.size(), "moving_average range start out of bounds");
  simd::kernels().moving_average_range(x.data(), x.size(), w, from, x.size(),
                                       out.data());
}

std::vector<double> exponential_smooth(std::span<const double> x,
                                       double alpha) {
  AF_EXPECT(!x.empty(), "exponential_smooth requires non-empty input");
  AF_EXPECT(alpha > 0.0 && alpha <= 1.0, "alpha must lie in (0,1]");
  std::vector<double> out(x.size());
  out[0] = x[0];
  for (std::size_t i = 1; i < x.size(); ++i)
    out[i] = alpha * x[i] + (1.0 - alpha) * out[i - 1];
  return out;
}

std::vector<double> median_filter(std::span<const double> x, std::size_t w) {
  AF_EXPECT(!x.empty(), "median_filter requires non-empty input");
  AF_EXPECT(w >= 1, "median_filter requires w >= 1");
  if (w % 2 == 0) ++w;
  const std::size_t half = w / 2;
  std::vector<double> out(x.size());
  std::vector<double> window;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const std::size_t lo = i >= half ? i - half : 0;
    const std::size_t hi = std::min(i + half + 1, x.size());
    window.assign(x.begin() + static_cast<long>(lo),
                  x.begin() + static_cast<long>(hi));
    std::nth_element(window.begin(),
                     window.begin() + static_cast<long>(window.size() / 2),
                     window.end());
    out[i] = window[window.size() / 2];
  }
  return out;
}

std::vector<double> resample_linear(std::span<const double> x,
                                    std::size_t target) {
  std::vector<double> out(target);
  resample_linear_into(x, out);
  return out;
}

void resample_linear_into(std::span<const double> x, std::span<double> out) {
  AF_EXPECT(!x.empty(), "resample_linear requires non-empty input");
  const std::size_t target = out.size();
  AF_EXPECT(target >= 1, "resample_linear requires target >= 1");
  if (target == 1) {
    out[0] = x[0];
    return;
  }
  for (std::size_t i = 0; i < target; ++i) {
    const double pos = static_cast<double>(i) *
                       static_cast<double>(x.size() - 1) /
                       static_cast<double>(target - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(lo);
    out[i] = (lo + 1 < x.size()) ? x[lo] * (1.0 - frac) + x[lo + 1] * frac
                                 : x[lo];
  }
}

std::vector<double> diff(std::span<const double> x) {
  AF_EXPECT(x.size() >= 2, "diff requires n >= 2");
  std::vector<double> out(x.size() - 1);
  for (std::size_t i = 0; i + 1 < x.size(); ++i) out[i] = x[i + 1] - x[i];
  return out;
}

std::vector<std::size_t> find_peaks(std::span<const double> x,
                                    std::size_t support) {
  AF_EXPECT(support >= 1, "find_peaks requires support >= 1");
  std::vector<std::size_t> peaks;
  if (x.size() < 2 * support + 1) return peaks;
  for (std::size_t i = support; i + support < x.size(); ++i) {
    bool is_peak = true;
    for (std::size_t k = 1; k <= support && is_peak; ++k)
      is_peak = x[i] > x[i - k] && x[i] > x[i + k];
    if (is_peak) peaks.push_back(i);
  }
  return peaks;
}

std::size_t count_peaks(std::span<const double> x, std::size_t support) {
  AF_EXPECT(support >= 1, "find_peaks requires support >= 1");
  // level = -HUGE_VAL admits every peak: a centre that is -inf (or NaN)
  // can never be strictly above a neighbour, so the >= level test only
  // ever sees finite peaks it accepts.
  return simd::kernels().count_peaks_at_least(x.data(), x.size(), support,
                                              -HUGE_VAL);
}

std::size_t count_peaks_at_least(std::span<const double> x,
                                 std::size_t support, double level) {
  AF_EXPECT(support >= 1, "find_peaks requires support >= 1");
  return simd::kernels().count_peaks_at_least(x.data(), x.size(), support,
                                              level);
}

}  // namespace airfinger::dsp
