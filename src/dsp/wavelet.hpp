// Continuous Wavelet Transform with the Ricker ("Mexican hat") wavelet.
//
// Table I lists "Continuous Wavelet transform" among the frequency-domain
// features; like tsfresh's cwt_coefficients, we convolve the signal with
// Ricker wavelets at several widths and sample the resulting coefficients.
#pragma once

#include <span>
#include <vector>

#include "common/arena.hpp"

namespace airfinger::dsp {

/// Ricker wavelet value ψ_a(t) with width parameter a > 0.
double ricker(double t, double a);

/// Discrete Ricker wavelet of `points` samples centred at the middle, with
/// width `a` (in samples). Requires points >= 1, a > 0.
std::vector<double> ricker_wavelet(std::size_t points, double a);

/// CWT row: convolution (same-size, zero-padded) of x with the Ricker
/// wavelet of width `a`. Requires non-empty x.
std::vector<double> cwt_row(std::span<const double> x, double a);

/// cwt_row() writing into caller storage (out.size() == x.size()); the
/// sampled wavelet comes from `arena` and is released before returning.
void cwt_row_into(std::span<const double> x, double a,
                  common::ScratchArena& arena, std::span<double> out);

/// cwt_row_into() with a caller-provided sampled wavelet (odd length, as
/// produced by ricker_wavelet(2*half+1, a)) — lets hot paths precompute
/// the transcendental-heavy wavelet once and reuse it every frame.
void cwt_row_with_wavelet_into(std::span<const double> x,
                               std::span<const double> w,
                               std::span<double> out);

/// CWT matrix for the given set of widths; result[w] is cwt_row(x, w).
std::vector<std::vector<double>> cwt(std::span<const double> x,
                                     std::span<const double> widths);

}  // namespace airfinger::dsp
