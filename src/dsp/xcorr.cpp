#include "dsp/xcorr.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/reduce.hpp"

namespace airfinger::dsp {

double correlation_at_lag(std::span<const double> a,
                          std::span<const double> b, std::ptrdiff_t lag) {
  // Positive lag means b lags a: compare a[i] with b[i + lag].
  const auto n = static_cast<std::ptrdiff_t>(a.size());
  const auto m = static_cast<std::ptrdiff_t>(b.size());
  const std::ptrdiff_t i0 = std::max<std::ptrdiff_t>(0, -lag);
  const std::ptrdiff_t i1 = std::min<std::ptrdiff_t>(n, m - lag);
  if (i1 - i0 < 4) return 0.0;

  const auto len = static_cast<std::size_t>(i1 - i0);
  const double count = static_cast<double>(i1 - i0);
  // Each mean is its own serial accumulator; splitting the formerly
  // interleaved loop into two reductions keeps both orders unchanged.
  const double ma =
      common::reduce::sum(a.subspan(static_cast<std::size_t>(i0), len)) /
      count;
  const double mb =
      common::reduce::sum(b.subspan(static_cast<std::size_t>(i0 + lag), len)) /
      count;
  double saa = 0.0, sbb = 0.0, sab = 0.0;
  for (std::ptrdiff_t i = i0; i < i1; ++i) {
    const double da = a[static_cast<std::size_t>(i)] - ma;
    const double db = b[static_cast<std::size_t>(i + lag)] - mb;
    saa += da * da;
    sbb += db * db;
    sab += da * db;
  }
  if (saa <= 0.0 || sbb <= 0.0) return 0.0;
  return sab / std::sqrt(saa * sbb);
}

LagEstimate best_lag(std::span<const double> a, std::span<const double> b,
                     std::size_t max_lag) {
  AF_EXPECT(!a.empty() && a.size() == b.size(),
            "best_lag requires equal-length non-empty inputs");
  LagEstimate best;
  best.correlation = -2.0;
  const auto limit = static_cast<std::ptrdiff_t>(max_lag);
  for (std::ptrdiff_t lag = -limit; lag <= limit; ++lag) {
    const double c = correlation_at_lag(a, b, lag);
    if (c > best.correlation) {
      best.correlation = c;
      best.lag = lag;
    }
  }
  if (best.correlation < -1.0) best = LagEstimate{};  // nothing valid
  return best;
}

}  // namespace airfinger::dsp
