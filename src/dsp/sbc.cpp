#include "dsp/sbc.hpp"

#include "common/error.hpp"

namespace airfinger::dsp {

SquareBasedCalculator::SquareBasedCalculator(std::size_t window)
    : window_(window), delay_(window, 0.0) {
  AF_EXPECT(window >= 1, "SBC window must be >= 1 sample");
}

double SquareBasedCalculator::push(double rss) {
  double out = 0.0;
  if (seen_ >= window_) {
    const double prev = delay_[head_];
    const double d = rss - prev;
    out = d * d;
  }
  delay_[head_] = rss;
  head_ = (head_ + 1) % window_;
  ++seen_;
  return out;
}

void SquareBasedCalculator::reset() {
  delay_.assign(window_, 0.0);
  head_ = 0;
  seen_ = 0;
}

std::vector<double> SquareBasedCalculator::apply(std::span<const double> x,
                                                 std::size_t window) {
  AF_EXPECT(window >= 1, "SBC window must be >= 1 sample");
  std::vector<double> out(x.size(), 0.0);
  for (std::size_t i = window; i < x.size(); ++i) {
    const double d = x[i] - x[i - window];
    out[i] = d * d;
  }
  return out;
}

std::vector<double> sbc_energy(
    std::span<const std::span<const double>> channels, std::size_t window) {
  AF_EXPECT(!channels.empty(), "sbc_energy requires at least one channel");
  std::vector<double> out(channels[0].size(), 0.0);
  for (const auto& ch : channels) {
    AF_EXPECT(ch.size() == out.size(),
              "sbc_energy requires equal-length channels");
    const std::vector<double> e = SquareBasedCalculator::apply(ch, window);
    for (std::size_t i = 0; i < e.size(); ++i) out[i] += e[i];
  }
  return out;
}

}  // namespace airfinger::dsp
