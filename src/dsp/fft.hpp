// Radix-2 FFT and real-signal spectrum helpers.
//
// Table I's frequency-domain features ("Fast Fourier Transform") are
// computed from the magnitude/phase of the first FFT coefficients of the
// segmented ΔRSS² signal. Inputs of non-power-of-two length are zero-padded.
#pragma once

#include <complex>
#include <span>
#include <vector>

#include "common/arena.hpp"

namespace airfinger::dsp {

/// In-place iterative radix-2 Cooley-Tukey FFT.
/// Requires x.size() to be a power of two (>= 1).
void fft_inplace(std::span<std::complex<double>> x, bool inverse = false);
void fft_inplace(std::vector<std::complex<double>>& x, bool inverse = false);

/// FFT of a real signal, zero-padded to the next power of two.
/// Returns the full complex spectrum (padded length).
std::vector<std::complex<double>> fft_real(std::span<const double> x);

/// fft_real() with the spectrum allocated from `arena`; the span stays
/// valid until the caller's enclosing arena frame is rewound. Lets one
/// spectrum feed fft_magnitudes_from / spectral_centroid_from /
/// spectral_energy_ratio_from without repeating the transform.
std::span<const std::complex<double>> fft_real_scratch(
    std::span<const double> x, common::ScratchArena& arena);

/// Coefficient magnitudes from a precomputed spectrum (out pre-sized to the
/// requested count; missing coefficients are set to 0).
void fft_magnitudes_from(std::span<const std::complex<double>> spec,
                         std::span<double> out);

/// Spectral centroid from a precomputed spectrum. Callers replicate
/// spectral_centroid()'s x.size() < 2 guard themselves.
double spectral_centroid_from(std::span<const std::complex<double>> spec);

/// Low-band power fraction from a precomputed spectrum (same guard note).
double spectral_energy_ratio_from(std::span<const std::complex<double>> spec,
                                  double fraction);

/// Smallest power of two >= n (n >= 1).
std::size_t next_pow2(std::size_t n);

/// Magnitudes of the first `count` FFT coefficients of a real signal
/// (zero-padded); missing coefficients (signal too short) are 0.
std::vector<double> fft_magnitudes(std::span<const double> x,
                                   std::size_t count);

/// Spectral centroid (power-weighted mean normalized frequency in [0, 0.5])
/// of a real signal; 0 for empty/constant input.
double spectral_centroid(std::span<const double> x);

/// Fraction of spectral power below `fraction` of the Nyquist band.
double spectral_energy_ratio(std::span<const double> x, double fraction);

}  // namespace airfinger::dsp
