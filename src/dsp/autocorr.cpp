#include "dsp/autocorr.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/reduce.hpp"
#include "common/simd.hpp"
#include "common/stats.hpp"

namespace airfinger::dsp {

double autocorrelation(std::span<const double> x, std::size_t lag) {
  AF_EXPECT(!x.empty(), "autocorrelation requires non-empty input");
  if (lag >= x.size()) return 0.0;
  const double m = common::mean(x);
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double d = x[i] - m;
    den += d * d;
    if (i + lag < x.size()) num += d * (x[i + lag] - m);
  }
  return den > 0.0 ? num / den : 0.0;
}

std::vector<double> acf(std::span<const double> x, std::size_t max_lag) {
  std::vector<double> out(max_lag + 1, 0.0);
  acf_into(x, out);
  return out;
}

void acf_into(std::span<const double> x, std::span<double> out) {
  AF_EXPECT(!out.empty(), "acf output must hold at least lag 0");
  const std::size_t max_lag = out.size() - 1;
  for (std::size_t k = 0; k <= max_lag; ++k) out[k] = autocorrelation(x, k);
  if (out[0] == 0.0 && !x.empty()) out[0] = 1.0;  // zero-variance convention
}

void acf_into(std::span<const double> x, common::ScratchArena& arena,
              std::span<double> out) {
  AF_EXPECT(!out.empty(), "acf output must hold at least lag 0");
  AF_EXPECT(!x.empty(), "acf requires non-empty input");
  const std::size_t n = x.size();
  const std::size_t max_lag = out.size() - 1;
  const auto frame = arena.frame();
  const std::span<double> d = arena.alloc<double>(n);
  const double m = common::mean(x);
  for (std::size_t i = 0; i < n; ++i) d[i] = x[i] - m;
  const double den = common::reduce::energy(d);
  if (den > 0.0) {
    const std::size_t lags = std::min(max_lag, n - 1);
    simd::kernels().acf_numerators(d.data(), n, 0, lags + 1, out.data());
    for (std::size_t k = 0; k <= lags; ++k) out[k] /= den;
    for (std::size_t k = lags + 1; k <= max_lag; ++k) out[k] = 0.0;
  } else {
    for (double& o : out) o = 0.0;
  }
  if (out[0] == 0.0) out[0] = 1.0;  // zero-variance convention
}

std::vector<double> pacf(std::span<const double> x, std::size_t max_lag) {
  AF_EXPECT(max_lag >= 1, "pacf requires max_lag >= 1");
  std::vector<double> out(max_lag, 0.0);
  common::ScratchArena arena(3 * (max_lag + 1) * sizeof(double) + 64);
  pacf_into(x, arena, out);
  return out;
}

void pacf_into(std::span<const double> x, common::ScratchArena& arena,
               std::span<double> out) {
  const std::size_t max_lag = out.size();
  AF_EXPECT(max_lag >= 1, "pacf requires max_lag >= 1");
  const auto frame = arena.frame();
  const std::span<double> rho = arena.alloc<double>(max_lag + 1);
  acf_into(x, arena, rho);
  for (double& o : out) o = 0.0;

  // Durbin–Levinson: phi[k][k] is the PACF at lag k.
  const std::span<double> phi_prev = arena.alloc<double>(max_lag + 1);
  const std::span<double> phi = arena.alloc<double>(max_lag + 1);
  double v = 1.0;  // prediction error variance (normalized)
  for (std::size_t k = 1; k <= max_lag; ++k) {
    double num = rho[k];
    for (std::size_t j = 1; j < k; ++j) num -= phi_prev[j] * rho[k - j];
    if (std::fabs(v) < 1e-12) break;  // degenerate: remaining PACF = 0
    const double a = num / v;
    phi[k] = a;
    for (std::size_t j = 1; j < k; ++j)
      phi[j] = phi_prev[j] - a * phi_prev[k - j];
    v *= (1.0 - a * a);
    out[k - 1] = a;
    std::copy(phi.begin(), phi.end(), phi_prev.begin());
  }
}

std::vector<double> ar_coefficients(std::span<const double> x,
                                    std::size_t p) {
  AF_EXPECT(p >= 1, "ar_coefficients requires p >= 1");
  std::vector<double> out(p, 0.0);
  common::ScratchArena arena(3 * (p + 1) * sizeof(double) + 64);
  ar_coefficients_into(x, arena, out);
  return out;
}

void ar_coefficients_into(std::span<const double> x,
                          common::ScratchArena& arena,
                          std::span<double> out) {
  const std::size_t p = out.size();
  AF_EXPECT(p >= 1, "ar_coefficients requires p >= 1");
  const auto frame = arena.frame();
  const std::span<double> rho = arena.alloc<double>(p + 1);
  acf_into(x, arena, rho);
  // Levinson recursion on the Yule–Walker equations.
  const std::span<double> phi_prev = arena.alloc<double>(p + 1);
  const std::span<double> phi = arena.alloc<double>(p + 1);
  double v = 1.0;
  for (std::size_t k = 1; k <= p; ++k) {
    double num = rho[k];
    for (std::size_t j = 1; j < k; ++j) num -= phi_prev[j] * rho[k - j];
    if (std::fabs(v) < 1e-12) {
      for (double& f : phi) f = 0.0;
      break;
    }
    const double a = num / v;
    phi[k] = a;
    for (std::size_t j = 1; j < k; ++j)
      phi[j] = phi_prev[j] - a * phi_prev[k - j];
    v *= (1.0 - a * a);
    std::copy(phi.begin(), phi.end(), phi_prev.begin());
  }
  std::copy(phi.begin() + 1, phi.end(), out.begin());
}

}  // namespace airfinger::dsp
