#include "dsp/goertzel.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "common/simd.hpp"

namespace airfinger::dsp {

namespace {
double goertzel_coefficient(double frequency_hz, double sample_rate_hz) {
  AF_EXPECT(sample_rate_hz > 0.0, "sample rate must be positive");
  AF_EXPECT(frequency_hz > 0.0 && frequency_hz < sample_rate_hz / 2.0,
            "Goertzel frequency must lie in (0, rate/2)");
  return 2.0 * std::cos(2.0 * std::numbers::pi * frequency_hz /
                        sample_rate_hz);
}

double block_magnitude(double s1, double s2, double coeff, std::size_t n) {
  const double power = s1 * s1 + s2 * s2 - coeff * s1 * s2;
  return std::sqrt(std::max(power, 0.0)) * 2.0 / static_cast<double>(n);
}
}  // namespace

double goertzel_magnitude(std::span<const double> x, double frequency_hz,
                          double sample_rate_hz) {
  AF_EXPECT(!x.empty(), "goertzel_magnitude requires non-empty input");
  const double coeff = goertzel_coefficient(frequency_hz, sample_rate_hz);
  double s1 = 0.0, s2 = 0.0;
  for (double v : x) {
    const double s0 = v + coeff * s1 - s2;
    s2 = s1;
    s1 = s0;
  }
  return block_magnitude(s1, s2, coeff, x.size());
}

void goertzel_magnitudes(std::span<const double> x,
                         std::span<const double> frequencies_hz,
                         double sample_rate_hz, std::span<double> out) {
  AF_EXPECT(!x.empty(), "goertzel_magnitude requires non-empty input");
  AF_EXPECT(out.size() == frequencies_hz.size(),
            "goertzel_magnitudes output size mismatch");
  constexpr std::size_t kChunk = 32;
  double coeff[kChunk];
  double s1[kChunk];
  double s2[kChunk];
  for (std::size_t f0 = 0; f0 < frequencies_hz.size(); f0 += kChunk) {
    const std::size_t k = std::min(kChunk, frequencies_hz.size() - f0);
    for (std::size_t f = 0; f < k; ++f)
      coeff[f] = goertzel_coefficient(frequencies_hz[f0 + f], sample_rate_hz);
    simd::kernels().goertzel_batch(x.data(), x.size(), coeff, k, s1, s2);
    for (std::size_t f = 0; f < k; ++f)
      out[f0 + f] = block_magnitude(s1[f], s2[f], coeff[f], x.size());
  }
}

GoertzelDetector::GoertzelDetector(double frequency_hz,
                                   double sample_rate_hz,
                                   std::size_t block_size)
    : coeff_(goertzel_coefficient(frequency_hz, sample_rate_hz)),
      block_size_(block_size) {
  AF_EXPECT(block_size >= 8, "Goertzel block size must be >= 8");
}

bool GoertzelDetector::push(double sample) {
  const double s0 = sample + coeff_ * s1_ - s2_;
  s2_ = s1_;
  s1_ = s0;
  if (++filled_ < block_size_) return false;
  last_magnitude_ = block_magnitude(s1_, s2_, coeff_, block_size_);
  filled_ = 0;
  s1_ = s2_ = 0.0;
  return true;
}

void GoertzelDetector::reset() {
  filled_ = 0;
  s1_ = s2_ = 0.0;
  last_magnitude_ = 0.0;
}

}  // namespace airfinger::dsp
