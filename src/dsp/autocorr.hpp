// Autocorrelation, partial autocorrelation, and autoregressive fits.
//
// Backing math for Table I's "Autocorrelation", "Partial autocorrelation",
// and "AR" features: sample ACF, Durbin–Levinson recursion for the PACF,
// and Yule–Walker AR coefficient estimation.
#pragma once

#include <span>
#include <vector>

#include "common/arena.hpp"

namespace airfinger::dsp {

/// Sample autocorrelation at one lag, normalized by the lag-0 variance.
/// Returns 0 when the variance is 0 or lag >= n. Requires non-empty input.
double autocorrelation(std::span<const double> x, std::size_t lag);

/// ACF for lags 0..max_lag (inclusive). acf[0] == 1 unless variance is 0.
std::vector<double> acf(std::span<const double> x, std::size_t max_lag);

/// acf() writing into caller storage; max_lag = out.size() - 1 (out
/// non-empty). Reference implementation: one autocorrelation() pass per
/// lag, recentring the signal every time.
void acf_into(std::span<const double> x, std::span<double> out);

/// acf_into() with the centred signal hoisted into `arena` scratch: the
/// mean and the lag-0 denominator are computed once and the per-lag
/// numerators run through the AF_SIMD acf_numerators kernel. Bit-identical
/// to the per-lag reference — each accumulator keeps its own serial order
/// and d[i] = x[i] - m is the same value the reference recomputes.
/// Requires non-empty x.
void acf_into(std::span<const double> x, common::ScratchArena& arena,
              std::span<double> out);

/// Partial autocorrelation for lags 1..max_lag via Durbin–Levinson.
/// Entry [k-1] is the PACF at lag k. Degenerate recursions yield 0 entries.
std::vector<double> pacf(std::span<const double> x, std::size_t max_lag);

/// pacf() writing into caller storage; max_lag = out.size() (>= 1). The
/// recursion's intermediates come from `arena` (released before returning).
void pacf_into(std::span<const double> x, common::ScratchArena& arena,
               std::span<double> out);

/// Yule–Walker AR(p) coefficients φ_1..φ_p. Returns zeros when the signal
/// variance is 0 or the recursion degenerates. Requires p >= 1.
std::vector<double> ar_coefficients(std::span<const double> x, std::size_t p);

/// ar_coefficients() writing into caller storage; p = out.size() (>= 1).
void ar_coefficients_into(std::span<const double> x,
                          common::ScratchArena& arena, std::span<double> out);

}  // namespace airfinger::dsp
