#include "dsp/wavelet.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "common/simd.hpp"

namespace airfinger::dsp {

double ricker(double t, double a) {
  AF_EXPECT(a > 0.0, "ricker width must be positive");
  const double norm =
      2.0 / (std::sqrt(3.0 * a) * std::pow(std::numbers::pi, 0.25));
  const double u = t / a;
  return norm * (1.0 - u * u) * std::exp(-0.5 * u * u);
}

std::vector<double> ricker_wavelet(std::size_t points, double a) {
  AF_EXPECT(points >= 1, "ricker_wavelet requires points >= 1");
  std::vector<double> w(points);
  const double mid = (static_cast<double>(points) - 1.0) / 2.0;
  for (std::size_t i = 0; i < points; ++i)
    w[i] = ricker(static_cast<double>(i) - mid, a);
  return w;
}

std::vector<double> cwt_row(std::span<const double> x, double a) {
  std::vector<double> out(x.size(), 0.0);
  common::ScratchArena arena;
  cwt_row_into(x, a, arena, out);
  return out;
}

void cwt_row_into(std::span<const double> x, double a,
                  common::ScratchArena& arena, std::span<double> out) {
  // Support of the wavelet: ±5 widths captures >99.99% of its energy.
  const auto half = static_cast<std::size_t>(std::ceil(5.0 * a));
  const std::size_t wlen = 2 * half + 1;
  const auto frame = arena.frame();
  const std::span<double> w = arena.alloc<double>(wlen);
  const double mid = (static_cast<double>(wlen) - 1.0) / 2.0;
  for (std::size_t i = 0; i < wlen; ++i)
    w[i] = ricker(static_cast<double>(i) - mid, a);
  cwt_row_with_wavelet_into(x, w, out);
}

void cwt_row_with_wavelet_into(std::span<const double> x,
                               std::span<const double> w,
                               std::span<double> out) {
  AF_EXPECT(!x.empty(), "cwt_row requires non-empty input");
  AF_EXPECT(out.size() == x.size(), "cwt_row output size mismatch");
  AF_EXPECT(w.size() % 2 == 1, "cwt_row wavelet length must be odd");
  // The kernel iterates only the in-range taps of each output, in the same
  // ascending order as the historical skip-with-continue loop.
  simd::kernels().conv_clipped(x.data(), x.size(), w.data(), w.size() / 2,
                               out.data());
}

std::vector<std::vector<double>> cwt(std::span<const double> x,
                                     std::span<const double> widths) {
  std::vector<std::vector<double>> rows;
  rows.reserve(widths.size());
  for (double a : widths) rows.push_back(cwt_row(x, a));
  return rows;
}

}  // namespace airfinger::dsp
