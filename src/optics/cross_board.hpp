// Two-dimensional "cross" sensor board — the paper's Sec. VI extension:
// "a sensor with more LEDs and PDs along other posited distributions to
// construct a multi-dimensional sensing area".
//
// Layout: two linear arms sharing the centre photodiode,
//
//                    P_y+            y
//                    L_y+            ▲
//        P_x-  L_x-  P_c   L_x+  P_x+  ──► x
//                    L_y-
//                    P_y-
//
// i.e. five photodiodes (x−, y−, centre, y+, x+) and four LEDs. The x arm
// reproduces the paper's linear prototype exactly; the y arm adds the
// orthogonal axis, enabling 2-D swipe tracking (see core/zebra2d.hpp).
#pragma once

#include "optics/scene.hpp"

namespace airfinger::optics {

/// Geometry of the cross board.
struct CrossBoardLayout {
  double pitch_m = 0.004;  ///< Centre-to-centre pitch along each arm.
  NirLedSpec led_spec{};
  NirPhotodiodeSpec pd_spec{};
};

/// Photodiode channel order of the cross board.
enum class CrossChannel : std::size_t {
  kXMinus = 0,
  kYMinus = 1,
  kCentre = 2,
  kYPlus = 3,
  kXPlus = 4,
};
inline constexpr std::size_t kCrossChannelCount = 5;

/// Builds the cross Scene. Channel order follows CrossChannel.
Scene make_cross_scene(const CrossBoardLayout& layout = {},
                       const AmbientModel& ambient = AmbientModel{});

/// Position of a cross-board photodiode.
Vec3 cross_pd_position(const CrossBoardLayout& layout, CrossChannel channel);

}  // namespace airfinger::optics
