// NIR photodiode response model.
//
// Models the 304PT photodiode of the paper's prototype (700–1000 nm spectral
// response, 80° viewing angle). The paper adds a 3D-printed black shield
// that narrows the field of view and attenuates off-axis ambient light; the
// shield is part of the photodiode model here.
#pragma once

#include "optics/vec3.hpp"

namespace airfinger::optics {

/// Specification of a single NIR photodiode plus its shield.
struct NirPhotodiodeSpec {
  double active_area_mm2 = 0.6;    ///< Photosensitive area.
  double viewing_angle_deg = 80;   ///< Full viewing angle without shield.
  double responsivity = 1.0;       ///< Photocurrent per incident mW (a.u.).
  /// Shield factor in (0, 1]: the shield transmits fully inside
  /// factor × half-angle and occludes completely ~10° beyond it.
  double shield_fov_factor = 0.6;
  /// Fraction of isotropic ambient irradiance the shield lets through.
  double shield_ambient_transmission = 0.35;
};

/// A placed, oriented photodiode converting incident flux to a signal.
class NirPhotodiode {
 public:
  /// Creates a PD at `position` facing along `normal` (normalized inside).
  NirPhotodiode(const NirPhotodiodeSpec& spec, const Vec3& position,
                const Vec3& normal);

  const Vec3& position() const { return position_; }
  const Vec3& normal() const { return normal_; }
  const NirPhotodiodeSpec& spec() const { return spec_; }

  /// Angular acceptance cos^p(θ) in [0,1] for light arriving from `point`,
  /// where p makes the response fall to 1/2 at the (shielded) half-angle.
  /// 0 behind the sensor plane.
  double acceptance_from(const Vec3& point) const;

  /// Signal contribution from a small Lambertian reflector at `point` that
  /// re-emits `reflected_radiosity` (mW/m^2 leaving the patch) over area
  /// `patch_area_m2`. Applies the inverse-square law, the reflector's
  /// emission cosine, and this PD's acceptance.
  double signal_from_patch(const Vec3& point, const Vec3& patch_normal,
                           double reflected_radiosity,
                           double patch_area_m2) const;

  /// Signal contribution from isotropic ambient irradiance (mW/m^2) after
  /// shield attenuation.
  double signal_from_ambient(double ambient_irradiance) const;

 private:
  NirPhotodiodeSpec spec_;
  Vec3 position_;
  Vec3 normal_;
  double response_order_;    // p in the cos^p angular response
  double shield_angle_rad_;  // full transmission inside this angle
  double area_m2_;
};

}  // namespace airfinger::optics
