#include "optics/photodiode.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace airfinger::optics {

NirPhotodiode::NirPhotodiode(const NirPhotodiodeSpec& spec,
                             const Vec3& position, const Vec3& normal)
    : spec_(spec), position_(position), normal_(normal.normalized()) {
  AF_EXPECT(spec.active_area_mm2 > 0.0, "PD active area must be positive");
  AF_EXPECT(spec.viewing_angle_deg > 0.0 && spec.viewing_angle_deg <= 180.0,
            "PD viewing angle must lie in (0, 180]");
  AF_EXPECT(spec.shield_fov_factor > 0.0 && spec.shield_fov_factor <= 1.0,
            "shield FoV factor must lie in (0, 1]");
  AF_EXPECT(spec.shield_ambient_transmission >= 0.0 &&
                spec.shield_ambient_transmission <= 1.0,
            "shield ambient transmission must lie in [0, 1]");
  AF_EXPECT(normal.norm() > 0.0, "PD normal must be non-zero");

  // Bare photodiodes have a smooth cos-like angular response (datasheet
  // viewing angle = half-power point): model it as cos^p(θ) with
  // response(half_angle) = 1/2. The 3D-printed black shield is a tube in
  // front of the die: inside the shield angle it transmits fully, beyond it
  // the walls occlude the die over a ~10° taper, then block completely —
  // this sharp cutoff is what confines each PD to "its" side of the board
  // and gives the ZEBRA ordering its geometric meaning.
  const double half_angle_rad =
      spec.viewing_angle_deg * 0.5 * std::numbers::pi / 180.0;
  const double cos_half =
      std::cos(std::min(half_angle_rad, 0.49 * std::numbers::pi));
  response_order_ = (cos_half >= 1.0 || cos_half <= 0.0)
                        ? 1.0
                        : -std::numbers::ln2 / std::log(cos_half);
  shield_angle_rad_ = half_angle_rad * spec.shield_fov_factor;
  area_m2_ = spec.active_area_mm2 * 1e-6;
}

double NirPhotodiode::acceptance_from(const Vec3& point) const {
  const Vec3 to_point = point - position_;
  const double d = to_point.norm();
  if (d <= 0.0) return 0.0;
  const double cos_theta = to_point.dot(normal_) / d;
  if (cos_theta <= 0.0) return 0.0;  // behind the sensor plane
  const double response = std::pow(cos_theta, response_order_);
  // Shield occlusion taper.
  constexpr double kTaperRad = 10.0 * std::numbers::pi / 180.0;
  const double theta = std::acos(std::min(cos_theta, 1.0));
  if (theta >= shield_angle_rad_ + kTaperRad) return 0.0;
  if (theta <= shield_angle_rad_) return response;
  const double t = (theta - shield_angle_rad_) / kTaperRad;
  return response * 0.5 * (1.0 + std::cos(std::numbers::pi * t));
}

double NirPhotodiode::signal_from_patch(const Vec3& point,
                                        const Vec3& patch_normal,
                                        double reflected_radiosity,
                                        double patch_area_m2) const {
  if (reflected_radiosity <= 0.0 || patch_area_m2 <= 0.0) return 0.0;
  const double accept = acceptance_from(point);
  if (accept <= 0.0) return 0.0;

  const Vec3 to_pd = position_ - point;
  const double d2 = to_pd.norm2();
  if (d2 <= 0.0) return 0.0;
  const double d = std::sqrt(d2);
  // Lambertian re-emission cosine at the patch.
  const Vec3 pn = patch_normal.normalized();
  const double cos_out = std::max(0.0, to_pd.dot(pn) / d);
  // Radiance L = radiosity / π; flux at PD = L · A_patch · cos_out ·
  // (A_pd · cos_in / d²).
  const double radiance = reflected_radiosity / std::numbers::pi;
  const double flux =
      radiance * patch_area_m2 * cos_out * area_m2_ * accept / d2;
  return spec_.responsivity * flux;
}

double NirPhotodiode::signal_from_ambient(double ambient_irradiance) const {
  if (ambient_irradiance <= 0.0) return 0.0;
  return spec_.responsivity * ambient_irradiance * area_m2_ *
         spec_.shield_ambient_transmission;
}

}  // namespace airfinger::optics
