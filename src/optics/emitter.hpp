// NIR LED emission model.
//
// Models the 304IRC-94 emitter used by the paper's prototype: a 940 nm LED
// with a 20° viewing angle. Emission follows the generalized Lambertian
// pattern I(θ) = I0 · cos^m(θ), where m is derived from the half-power
// half-angle; radiation beyond the mechanical field of view is cut off.
#pragma once

#include "optics/vec3.hpp"

namespace airfinger::optics {

/// Specification of a single NIR LED.
struct NirLedSpec {
  double power_mw = 25.0;         ///< Radiated optical power, milliwatts.
  double viewing_angle_deg = 20;  ///< Full viewing angle (2 × half-angle).
  double wavelength_nm = 940.0;   ///< Peak emission wavelength.
};

/// A placed, oriented NIR LED evaluating radiant intensity toward a point.
class NirLed {
 public:
  /// Creates a LED at `position` facing along `normal` (normalized inside).
  /// Requires spec.power_mw >= 0 and 0 < viewing_angle_deg <= 180.
  NirLed(const NirLedSpec& spec, const Vec3& position, const Vec3& normal);

  const Vec3& position() const { return position_; }
  const Vec3& normal() const { return normal_; }
  const NirLedSpec& spec() const { return spec_; }

  /// Lambertian mode number m such that cos^m(half_angle) = 1/2.
  double lambertian_order() const { return order_; }

  /// Irradiance (mW per m^2) produced at `point`, following the generalized
  /// Lambertian model with inverse-square falloff. Returns 0 for points
  /// behind the LED or outside its field of view.
  double irradiance_at(const Vec3& point) const;

 private:
  NirLedSpec spec_;
  Vec3 position_;
  Vec3 normal_;
  double order_;          // Lambertian exponent m
  double cos_fov_;        // cosine of the mechanical FoV half-angle cutoff
  double peak_intensity_; // I0 = P (m+1) / (2π), mW/sr
};

}  // namespace airfinger::optics
