#include "optics/ambient.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace airfinger::optics {

AmbientModel::AmbientModel(const AmbientConditions& cond) : cond_(cond) {
  AF_EXPECT(cond.hour_of_day >= 0.0 && cond.hour_of_day <= 24.0,
            "hour_of_day must lie in [0, 24]");
  AF_EXPECT(cond.indoor_attenuation >= 0.0 && cond.indoor_attenuation <= 1.0,
            "indoor_attenuation must lie in [0, 1]");
  AF_EXPECT(cond.drift_period_s > 0.0, "drift_period_s must be positive");
  base_ = solar_nir_irradiance(cond.hour_of_day) * cond.indoor_attenuation;
}

double AmbientModel::solar_nir_irradiance(double hour_of_day) {
  // Daylight window ~6:00–20:00, peak near 13:00. Peak clear-sky NIR-band
  // irradiance is on the order of 3e5 mW/m^2 (300 W/m^2 in 700–1000 nm).
  constexpr double kPeak = 3.0e5;
  constexpr double kSunrise = 6.0, kSunset = 20.0, kPeakHour = 13.0;
  if (hour_of_day <= kSunrise || hour_of_day >= kSunset) return 0.0;
  const double half_span = (hour_of_day < kPeakHour)
                               ? (kPeakHour - kSunrise)
                               : (kSunset - kPeakHour);
  const double phase = (hour_of_day - kPeakHour) / half_span;  // [-1, 1]
  return kPeak * 0.5 * (1.0 + std::cos(std::numbers::pi * phase));
}

double AmbientModel::irradiance_at(double time_s) const {
  const double drift =
      1.0 + cond_.drift_fraction *
                std::sin(2.0 * std::numbers::pi * time_s /
                             cond_.drift_period_s +
                         cond_.drift_phase);
  const double flicker =
      1.0 + cond_.flicker_fraction *
                std::sin(2.0 * std::numbers::pi * cond_.flicker_hz * time_s);
  return base_ * drift * flicker;
}

}  // namespace airfinger::optics
