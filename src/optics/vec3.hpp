// Small constexpr 3-D vector type used by the photometric model.
//
// Coordinates are metres. The sensor board lies in the z=0 plane with parts
// facing +z; x runs along the board (the scroll axis), y across it.
#pragma once

#include <cmath>

namespace airfinger::optics {

/// Plain 3-D vector with value semantics (struct per C.2: no invariant).
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3 operator+(const Vec3& o) const {
    return {x + o.x, y + o.y, z + o.z};
  }
  constexpr Vec3 operator-(const Vec3& o) const {
    return {x - o.x, y - o.y, z - o.z};
  }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }
  constexpr Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }

  constexpr double dot(const Vec3& o) const {
    return x * o.x + y * o.y + z * o.z;
  }
  constexpr Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  constexpr double norm2() const { return dot(*this); }
  double norm() const { return std::sqrt(norm2()); }

  /// Unit vector in the same direction; the zero vector maps to itself.
  Vec3 normalized() const {
    const double n = norm();
    return n > 0.0 ? (*this) / n : Vec3{};
  }
};

constexpr Vec3 operator*(double s, const Vec3& v) { return v * s; }

/// Euclidean distance between two points.
inline double distance(const Vec3& a, const Vec3& b) { return (a - b).norm(); }

}  // namespace airfinger::optics
