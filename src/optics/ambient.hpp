// Ambient NIR illumination model.
//
// Sunlight carries substantial power in the 700–1000 nm band sensed by the
// photodiodes; the paper's Fig. 15 experiment varies time of day from 8:00 to
// 20:00 to stress exactly this. The model combines a solar elevation curve,
// indoor attenuation, slow drift (clouds / posture), and AC-lighting flicker.
#pragma once

namespace airfinger::optics {

/// Parameters of the ambient NIR field.
struct AmbientConditions {
  double hour_of_day = 12.0;        ///< Local time, 0–24 h.
  double indoor_attenuation = 0.015; ///< Fraction of outdoor NIR indoors.
  double flicker_fraction = 0.01;   ///< Relative amplitude of lamp flicker.
  double flicker_hz = 100.0;        ///< Rectified-mains flicker frequency.
  double drift_fraction = 0.03;     ///< Relative amplitude of slow drift.
  double drift_period_s = 40.0;     ///< Period of the slow drift.
  double drift_phase = 0.0;         ///< Phase offset of the slow drift.
};

/// Deterministic, time-parameterized ambient NIR irradiance (mW/m^2).
class AmbientModel {
 public:
  AmbientModel() = default;
  explicit AmbientModel(const AmbientConditions& cond);

  const AmbientConditions& conditions() const { return cond_; }

  /// Clear-sky NIR-band irradiance (mW/m^2) at the given hour; a raised
  /// cosine over daylight hours peaking near 13:00, zero at night.
  static double solar_nir_irradiance(double hour_of_day);

  /// Ambient irradiance reaching the sensor plane at elapsed time t.
  double irradiance_at(double time_s) const;

 private:
  AmbientConditions cond_;
  double base_ = 0.0;
};

}  // namespace airfinger::optics
