#include "optics/scene.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace airfinger::optics {

Scene::Scene(std::vector<NirLed> leds, std::vector<NirPhotodiode> pds,
             AmbientModel ambient)
    : leds_(std::move(leds)), pds_(std::move(pds)),
      ambient_(std::move(ambient)) {
  AF_EXPECT(!leds_.empty(), "Scene requires at least one LED");
  AF_EXPECT(!pds_.empty(), "Scene requires at least one photodiode");
}

double Scene::incident_irradiance(const ReflectorPatch& patch) const {
  double total = 0.0;
  const Vec3 pn = patch.normal.normalized();
  for (const auto& led : leds_) {
    const double e = led.irradiance_at(patch.position);
    if (e <= 0.0) continue;
    const Vec3 from_led = (patch.position - led.position()).normalized();
    // Incidence cosine on the patch: light arrives along from_led, the patch
    // faces -from_led-ish when pointing at the board.
    const double cos_inc = std::max(0.0, -from_led.dot(pn));
    total += e * cos_inc;
  }
  return total;
}

double Scene::ambient_shadow_factor(
    const NirPhotodiode& pd, std::span<const ReflectorPatch> patches) const {
  // Each patch blocks roughly area/(2π d²) of the skylight hemisphere above
  // the PD; close fingers noticeably modulate ambient coupling (the paper's
  // N_dyn "other NIR sources are affected along with the finger movements").
  double blocked = 0.0;
  for (const auto& patch : patches) {
    const double d2 = (patch.position - pd.position()).norm2();
    if (d2 <= 0.0) continue;
    blocked += patch.area_m2 / (2.0 * std::numbers::pi * d2);
  }
  return std::clamp(blocked, 0.0, 0.9);
}

Scene::Components Scene::evaluate_components(
    std::span<const ReflectorPatch> patches, double time_s,
    const DirectInjection& direct) const {
  AF_EXPECT(direct.pd_weights.empty() ||
                direct.pd_weights.size() == pds_.size(),
            "DirectInjection weights must match pd_count");

  const double ambient_e = ambient_.irradiance_at(time_s);
  Components out;
  out.emitted.assign(pds_.size(), 0.0);
  out.ambient.assign(pds_.size(), 0.0);

  for (std::size_t j = 0; j < pds_.size(); ++j) {
    const auto& pd = pds_[j];

    // Reflected light per patch, split by origin: the LED irradiance is
    // carrier-modulated, the ambient irradiance on the patch is not.
    for (const auto& patch : patches) {
      const double e_led = incident_irradiance(patch);
      const double e_amb = ambient_e * 0.5;  // patch sees half the sky
      out.emitted[j] += pd.signal_from_patch(
          patch.position, patch.normal, patch.reflectivity * e_led,
          patch.area_m2);
      out.ambient[j] += pd.signal_from_patch(
          patch.position, patch.normal, patch.reflectivity * e_amb,
          patch.area_m2);
    }

    // Ambient skylight coupling, shadowed by nearby patches.
    const double shadow = ambient_shadow_factor(pd, patches);
    out.ambient[j] += pd.signal_from_ambient(ambient_e * (1.0 - shadow));

    // Direct interferer injection (e.g. IR remote pointed at the board).
    if (direct.irradiance > 0.0) {
      const double w =
          direct.pd_weights.empty() ? 1.0 : direct.pd_weights[j];
      out.ambient[j] += pd.signal_from_ambient(direct.irradiance) * w;
    }
  }
  return out;
}

std::vector<double> Scene::evaluate(std::span<const ReflectorPatch> patches,
                                    double time_s,
                                    const DirectInjection& direct) const {
  const Components c = evaluate_components(patches, time_s, direct);
  std::vector<double> out(pds_.size());
  for (std::size_t j = 0; j < out.size(); ++j)
    out[j] = c.emitted[j] + c.ambient[j];
  return out;
}

double prototype_pd_x(const BoardLayout& layout, std::size_t i) {
  AF_EXPECT(i < layout.pd_count, "photodiode index out of range");
  // Parts alternate P, L, P, L, P, ... centred on the origin.
  const std::size_t total = layout.pd_count + layout.led_count;
  const double origin = -0.5 * static_cast<double>(total - 1) * layout.pitch_m;
  return origin + static_cast<double>(2 * i) * layout.pitch_m;
}

double prototype_led_x(const BoardLayout& layout, std::size_t i) {
  AF_EXPECT(i < layout.led_count, "LED index out of range");
  const std::size_t total = layout.pd_count + layout.led_count;
  const double origin = -0.5 * static_cast<double>(total - 1) * layout.pitch_m;
  return origin + static_cast<double>(2 * i + 1) * layout.pitch_m;
}

Scene make_prototype_scene(const BoardLayout& layout,
                           const AmbientModel& ambient) {
  AF_EXPECT(layout.pd_count == layout.led_count + 1,
            "alternating layout requires pd_count == led_count + 1");
  AF_EXPECT(layout.pitch_m > 0.0, "board pitch must be positive");

  const Vec3 up{0, 0, 1};
  std::vector<NirLed> leds;
  leds.reserve(layout.led_count);
  for (std::size_t i = 0; i < layout.led_count; ++i)
    leds.emplace_back(layout.led_spec,
                      Vec3{prototype_led_x(layout, i), 0.0, 0.0}, up);

  std::vector<NirPhotodiode> pds;
  pds.reserve(layout.pd_count);
  for (std::size_t i = 0; i < layout.pd_count; ++i)
    pds.emplace_back(layout.pd_spec,
                     Vec3{prototype_pd_x(layout, i), 0.0, 0.0}, up);

  return Scene(std::move(leds), std::move(pds), ambient);
}

}  // namespace airfinger::optics
