#include "optics/emitter.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace airfinger::optics {

NirLed::NirLed(const NirLedSpec& spec, const Vec3& position,
               const Vec3& normal)
    : spec_(spec), position_(position), normal_(normal.normalized()) {
  AF_EXPECT(spec.power_mw >= 0.0, "LED power must be non-negative");
  AF_EXPECT(spec.viewing_angle_deg > 0.0 && spec.viewing_angle_deg <= 180.0,
            "LED viewing angle must lie in (0, 180]");
  AF_EXPECT(normal.norm() > 0.0, "LED normal must be non-zero");

  const double half_angle_rad =
      spec.viewing_angle_deg * 0.5 * std::numbers::pi / 180.0;
  const double cos_half = std::cos(half_angle_rad);
  // m from cos^m(θ_1/2) = 1/2 (datasheet half-power definition).
  order_ = (cos_half >= 1.0 || cos_half <= 0.0)
               ? 1.0
               : -std::numbers::ln2 / std::log(cos_half);
  // No mechanical cutoff inside the hemisphere: the cos^m falloff already
  // concentrates >93% of the power inside the datasheet viewing angle, and
  // a hard cutoff would create unphysical blind wedges between parts.
  cos_fov_ = 0.0;
  peak_intensity_ =
      spec.power_mw * (order_ + 1.0) / (2.0 * std::numbers::pi);
}

double NirLed::irradiance_at(const Vec3& point) const {
  const Vec3 to_point = point - position_;
  const double d2 = to_point.norm2();
  if (d2 <= 0.0) return 0.0;
  const double d = std::sqrt(d2);
  const double cos_theta = to_point.dot(normal_) / d;
  if (cos_theta <= cos_fov_) return 0.0;  // behind or outside the beam
  const double intensity = peak_intensity_ * std::pow(cos_theta, order_);
  return intensity / d2;
}

}  // namespace airfinger::optics
