#include "optics/cross_board.hpp"

#include "common/error.hpp"

namespace airfinger::optics {

Vec3 cross_pd_position(const CrossBoardLayout& layout,
                       CrossChannel channel) {
  const double p = layout.pitch_m;
  switch (channel) {
    case CrossChannel::kXMinus: return {-2.0 * p, 0.0, 0.0};
    case CrossChannel::kYMinus: return {0.0, -2.0 * p, 0.0};
    case CrossChannel::kCentre: return {0.0, 0.0, 0.0};
    case CrossChannel::kYPlus: return {0.0, 2.0 * p, 0.0};
    case CrossChannel::kXPlus: return {2.0 * p, 0.0, 0.0};
  }
  throw PreconditionError("unknown cross channel");
}

Scene make_cross_scene(const CrossBoardLayout& layout,
                       const AmbientModel& ambient) {
  AF_EXPECT(layout.pitch_m > 0.0, "cross board pitch must be positive");
  const Vec3 up{0, 0, 1};
  const double p = layout.pitch_m;

  std::vector<NirLed> leds;
  leds.emplace_back(layout.led_spec, Vec3{-p, 0.0, 0.0}, up);  // L_x-
  leds.emplace_back(layout.led_spec, Vec3{+p, 0.0, 0.0}, up);  // L_x+
  leds.emplace_back(layout.led_spec, Vec3{0.0, -p, 0.0}, up);  // L_y-
  leds.emplace_back(layout.led_spec, Vec3{0.0, +p, 0.0}, up);  // L_y+

  std::vector<NirPhotodiode> pds;
  for (std::size_t c = 0; c < kCrossChannelCount; ++c)
    pds.emplace_back(layout.pd_spec,
                     cross_pd_position(layout, static_cast<CrossChannel>(c)),
                     up);
  return Scene(std::move(leds), std::move(pds), ambient);
}

}  // namespace airfinger::optics
