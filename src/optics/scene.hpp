// Scene composition: board + reflectors + ambient → per-photodiode RSS.
//
// The scene evaluates, at one instant, the optical signal each photodiode
// receives. Contributions, matching the paper's RSS = S_ges + N_static +
// N_dyn decomposition:
//   - S_ges:     emitted NIR reflected by the moving fingertip patch(es)
//   - N_static:  emitted NIR reflected by quasi-static reflectors (the rest
//                of the hand) and the constant part of ambient coupling
//   - N_dyn:     ambient drift/flicker, ambient shadowing by the moving
//                finger, far-field passers-by, and direct interferers (IR
//                remote bursts)
// Single-bounce photometry only; multiple scattering between skin patches is
// negligible at these geometries.
#pragma once

#include <span>
#include <vector>

#include "optics/ambient.hpp"
#include "optics/emitter.hpp"
#include "optics/photodiode.hpp"
#include "optics/vec3.hpp"

namespace airfinger::optics {

/// A small diffuse (Lambertian) reflector, e.g. a fingertip pad.
struct ReflectorPatch {
  Vec3 position;             ///< Patch centre, metres.
  Vec3 normal{0, 0, -1};     ///< Outward normal (towards the board).
  double area_m2 = 1.2e-4;   ///< Effective reflecting area (~fingertip pad).
  double reflectivity = 0.6; ///< Diffuse skin albedo at 940 nm.
};

/// Direct (non-reflected) irradiance injected onto the photodiodes, e.g. an
/// IR remote control pointed at the sensor.
struct DirectInjection {
  double irradiance = 0.0;            ///< mW/m^2 on the sensor plane.
  std::vector<double> pd_weights;     ///< Per-PD coupling; empty = all 1.
};

/// Immutable optical scene: fixed board geometry + ambient model.
class Scene {
 public:
  /// Requires at least one LED and one photodiode.
  Scene(std::vector<NirLed> leds, std::vector<NirPhotodiode> pds,
        AmbientModel ambient);

  std::size_t led_count() const { return leds_.size(); }
  std::size_t pd_count() const { return pds_.size(); }
  const std::vector<NirLed>& leds() const { return leds_; }
  const std::vector<NirPhotodiode>& pds() const { return pds_; }
  const AmbientModel& ambient() const { return ambient_; }

  /// Replaces the ambient model (used by the time-of-day sweeps).
  void set_ambient(AmbientModel ambient) { ambient_ = std::move(ambient); }

  /// Evaluates per-photodiode received signal strength at elapsed time
  /// `time_s` with the given set of dynamic reflectors present.
  /// The result has pd_count() entries in photocurrent units (a.u.).
  std::vector<double> evaluate(std::span<const ReflectorPatch> patches,
                               double time_s,
                               const DirectInjection& direct = {}) const;

  /// Per-photodiode signal split into its physical components: light that
  /// originated from the board's own (modulatable) LEDs vs everything of
  /// ambient origin (skylight coupling, ambient reflected by skin, direct
  /// interferers). A synchronous (lock-in) front end can separate exactly
  /// these two, because only the LED component carries the carrier.
  struct Components {
    std::vector<double> emitted;  ///< LED-origin photocurrent per PD.
    std::vector<double> ambient;  ///< Ambient-origin photocurrent per PD.
  };
  Components evaluate_components(std::span<const ReflectorPatch> patches,
                                 double time_s,
                                 const DirectInjection& direct = {}) const;

  /// Total LED irradiance incident on a patch (used by tests and by the
  /// tracker's geometric analysis).
  double incident_irradiance(const ReflectorPatch& patch) const;

 private:
  /// Fraction of the ambient hemisphere a patch occludes as seen from a PD.
  double ambient_shadow_factor(const NirPhotodiode& pd,
                               std::span<const ReflectorPatch> patches) const;

  std::vector<NirLed> leds_;
  std::vector<NirPhotodiode> pds_;
  AmbientModel ambient_;
};

/// Geometry of the paper's prototype board: photodiodes and LEDs alternating
/// along the x axis (P1, L1, P2, L2, P3 by default), all facing +z, with the
/// given centre-to-centre pitch.
struct BoardLayout {
  std::size_t pd_count = 3;
  std::size_t led_count = 2;
  double pitch_m = 0.004;  ///< 4 mm pitch between adjacent 3 mm parts.
  NirLedSpec led_spec{};
  NirPhotodiodeSpec pd_spec{};
};

/// Builds the prototype Scene described in Sec. V-A of the paper.
/// Requires pd_count == led_count + 1 (alternating layout).
Scene make_prototype_scene(const BoardLayout& layout = {},
                           const AmbientModel& ambient = AmbientModel{});

/// x-coordinate (metres) of photodiode `i` in the prototype layout.
double prototype_pd_x(const BoardLayout& layout, std::size_t i);

/// x-coordinate (metres) of LED `i` in the prototype layout.
double prototype_led_x(const BoardLayout& layout, std::size_t i);

}  // namespace airfinger::optics
