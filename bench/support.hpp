// Shared harness for the paper-reproduction benches: common flags, dataset
// protocols, evaluation loops, and paper-vs-measured reporting.
#pragma once

#include <iostream>
#include <optional>
#include <string>

#include "common/cli.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/multi_session_host.hpp"
#include "core/trainer.hpp"
#include "core/training.hpp"
#include "ml/metrics.hpp"
#include "synth/dataset.hpp"

namespace airfinger::bench {

/// Common bench flags: every bench accepts --seed, --users, --sessions,
/// --reps (so the full paper protocol `--users 10 --sessions 5 --reps 25`
/// can be requested; defaults are a faithful but faster reduction).
struct BenchArgs {
  std::uint64_t seed = 7;
  int users = 10;
  int sessions = 5;
  int reps = 8;
  bool parsed = true;
};

/// Parses the standard flags; returns nullopt when --help was printed.
std::optional<BenchArgs> parse_args(int argc, const char* const* argv,
                                    const std::string& name,
                                    const std::string& description,
                                    common::Cli* extra = nullptr);

/// Builds the paper's collection protocol with the bench scaling.
synth::CollectionConfig protocol(const BenchArgs& args);

/// Trains one frozen ModelBundle for serving-shaped benches (interactive
/// trainer scale, seeded from the bench args). The bundle is immutable and
/// shared: host benches spin up Sessions against it instead of retraining
/// or copying forests per stream.
std::shared_ptr<const core::ModelBundle> train_bundle(
    const BenchArgs& args, core::TrainingReport* report = nullptr);

/// Extracts the full-bank feature set for a dataset (batch processing,
/// ground-truth-guided segment choice — the paper's offline protocol).
ml::SampleSet featurize(const synth::Dataset& data,
                        core::LabelScheme scheme,
                        core::GroupScheme groups = core::GroupScheme::kNone);

/// Trains a fresh DetectRecognizer per split and accumulates one confusion
/// matrix over all splits (the paper's "average over all combinations").
ml::ConfusionMatrix cross_validate(const ml::SampleSet& set,
                                   const std::vector<ml::Split>& splits,
                                   core::LabelScheme scheme,
                                   bool verbose = true);

/// Prints the standard summary block (accuracy, macro recall/precision)
/// together with the paper's reported value for the same experiment.
void print_summary(const std::string& experiment,
                   const ml::ConfusionMatrix& cm, double paper_accuracy);

/// Prints a one-line paper-vs-measured comparison.
void print_comparison(const std::string& metric, double paper,
                      double measured);

/// Feeds `sessions` host lanes from a shared trace pool (lane % pool
/// size), up to `frames_per_stream` frames each in `burst`-frame
/// interleaved chunks — the big-workload producer shape shared by the
/// serving benches. In threaded mode one feeder thread per shard streams
/// exactly that shard's lanes (lane % shard_count(), mirroring the host's
/// own hashing), so wide hosts are measured instead of a single-threaded
/// producer; inline mode keeps the one-feeder loop the host's concurrency
/// contract requires. Per-lane feed order is identical either way, so the
/// drained events stay bit-identical across shard counts. Does not call
/// finish()/drain(): timing stays the caller's business.
void feed_pooled(core::MultiSessionHost& host,
                 const std::vector<sensor::MultiChannelTrace>& traces,
                 std::size_t sessions, std::size_t frames_per_stream,
                 std::size_t burst);

}  // namespace airfinger::bench
